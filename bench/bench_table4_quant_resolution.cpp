// Table IV reproduction: resolution of the quantized Tiny-VBF on the FPGA
// datapath (simulated) across quantization levels, for simulation and
// phantom data. Shape target: 24-bit/20-bit/hybrids track the float model;
// resolution stays within a few hundredths of a millimetre.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/resolution.hpp"
#include "quant/quantized_tiny_vbf.hpp"

namespace {

using namespace tvbf;

struct PaperRow {
  double sim_ax, sim_lat, ph_ax, ph_lat;
};

const std::map<std::string, PaperRow> kPaper = {
    {"Float", {0.303, 0.45, 0.444, 0.48}},
    {"24 bits", {0.303, 0.45, 0.444, 0.48}},
    {"20 bits", {0.310, 0.45, 0.421, 0.54}},
    {"16 bits", {-1, -1, -1, -1}},  // paper: image quality degraded
    {"Hybrid-1", {0.309, 0.45, 0.429, 0.54}},
    {"Hybrid-2", {0.309, 0.45, 0.429, 0.54}},
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchx::want_full(argc, argv);
  const auto scene = benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Table IV (resolution vs quantization)\n");
  const auto models = benchx::get_trained_models(scene);

  const us::Phantom phantom = benchx::resolution_phantom(scene);
  // Quantized inference consumes the normalized RF cube directly.
  auto run_case = [&](bool vitro) {
    const us::Acquisition acq = us::simulate_plane_wave(
        scene.probe, phantom, 0.0, benchx::sim_preset(scene, vitro));
    const us::TofCube rf = us::tof_correct(acq, scene.grid, {});
    return models::normalized_input(rf);
  };
  const Tensor in_sim = run_case(false);
  const Tensor in_vitro = run_case(true);

  benchx::print_header(
      "Table IV — FWHM (mm) vs quantization (paper sim ax/lat, phantom "
      "ax/lat | measured)");
  for (const auto& scheme : quant::QuantScheme::paper_levels()) {
    const quant::QuantizedTinyVbf q(*models.vbf, scheme);
    const Tensor env_sim = dsp::envelope_iq(q.infer(in_sim));
    const Tensor env_vitro = dsp::envelope_iq(q.infer(in_vitro));
    const auto w_sim =
        metrics::mean_psf_widths(env_sim, scene.grid, phantom.points, 2.0);
    const auto w_vitro =
        metrics::mean_psf_widths(env_vitro, scene.grid, phantom.points, 2.0);
    const auto& p = kPaper.at(scheme.name);
    if (p.sim_ax > 0)
      std::printf("%-9s  paper %5.3f %5.3f | %5.3f %5.3f    measured %5.3f "
                  "%5.3f | %5.3f %5.3f\n",
                  scheme.name.c_str(), p.sim_ax, p.sim_lat, p.ph_ax, p.ph_lat,
                  w_sim.axial_mm, w_sim.lateral_mm, w_vitro.axial_mm,
                  w_vitro.lateral_mm);
    else
      std::printf("%-9s  paper   (degraded image)       measured %5.3f %5.3f "
                  "| %5.3f %5.3f\n",
                  scheme.name.c_str(), w_sim.axial_mm, w_sim.lateral_mm,
                  w_vitro.axial_mm, w_vitro.lateral_mm);
  }
  std::printf("\nshape check: 24-bit and hybrid FWHM within 20%% of float.\n");
  return 0;
}
