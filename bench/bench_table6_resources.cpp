// Table VI + Fig 1b reproduction: modelled FPGA resource utilization of the
// Tiny-VBF accelerator at every quantization level vs the paper's
// post-implementation reports for the ZCU104.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "accel/resource_model.hpp"
#include "bench_common.hpp"

namespace {

struct PaperRow {
  double lut, ff, bram, dsp, lutram, power;
};

const std::map<std::string, PaperRow> kPaper = {
    {"Float", {124935, 91470, 161.5, 533, 17589, 4.489}},
    {"24 bits", {88457, 50454, 158, 279, 11556, 4.369}},
    {"20 bits", {84594, 43333, 156, 148, 9442, 4.174}},
    {"16 bits", {59840, 34920, 82, 274, 6795, 3.989}},
    {"Hybrid-1", {72415, 38287, 150, 146, 5352, 4.229}},
    {"Hybrid-2", {61951, 29105, 110, 274, 5324, 4.174}},
};

void print_metric(const char* name,
                  const std::vector<tvbf::accel::ResourceReport>& reports,
                  double PaperRow::*paper_field,
                  double tvbf::accel::ResourceReport::*model_field) {
  std::printf("%-9s", name);
  for (const auto& r : reports) {
    const auto& p = kPaper.at(r.scheme);
    std::printf("  %8.0f/%-8.0f", p.*paper_field, r.*model_field);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace tvbf;
  const accel::ResourceModel model;
  const auto reports = model.estimate_paper_levels();

  benchx::print_header("Table VI — resource utilization (paper/model)");
  std::printf("%-9s", "");
  for (const auto& r : reports) std::printf("  %-17s", r.scheme.c_str());
  std::printf("\n");
  print_metric("LUT", reports, &PaperRow::lut, &accel::ResourceReport::lut);
  print_metric("FF", reports, &PaperRow::ff, &accel::ResourceReport::ff);
  print_metric("BRAM", reports, &PaperRow::bram, &accel::ResourceReport::bram36);
  print_metric("DSP", reports, &PaperRow::dsp, &accel::ResourceReport::dsp);
  print_metric("LUTRAM", reports, &PaperRow::lutram,
               &accel::ResourceReport::lutram);
  std::printf("%-9s", "Power W");
  for (const auto& r : reports) {
    const auto& p = kPaper.at(r.scheme);
    std::printf("  %8.3f/%-8.3f", p.power, r.power_w);
  }
  std::printf("\n");

  benchx::print_header("Fig 1b — Float vs Hybrid-2 resource reduction");
  const auto& f = reports[0];
  const auto& h2 = reports[5];
  auto pct = [](double a, double b) { return 100.0 * (1.0 - b / a); };
  std::printf("LUT    -%.0f%%   FF -%.0f%%   LUTRAM -%.0f%%   BRAM -%.0f%%   "
              "DSP -%.0f%%\n",
              pct(f.lut, h2.lut), pct(f.ff, h2.ff), pct(f.lutram, h2.lutram),
              pct(f.bram36, h2.bram36), pct(f.dsp, h2.dsp));
  std::printf("paper claim: > 50%% overall reduction for Hybrid-2 -> %s\n",
              (pct(f.ff, h2.ff) > 50.0 && pct(f.lut, h2.lut) > 45.0) ? "reproduced"
                                                                     : "NOT met");

  benchx::print_header("ZCU104 utilization fractions (model)");
  const auto cap = accel::ResourceModel::zcu104();
  for (const auto& r : reports)
    std::printf("%-9s  LUT %4.1f%%  FF %4.1f%%  BRAM %4.1f%%  DSP %4.1f%%\n",
                r.scheme.c_str(), 100.0 * r.lut / cap.lut,
                100.0 * r.ff / cap.ff, 100.0 * r.bram36 / cap.bram36,
                100.0 * r.dsp / cap.dsp);
  return 0;
}
