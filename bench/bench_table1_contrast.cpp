// Table I reproduction: contrast metrics (CR / CNR / GCNR) of DAS, MVDR,
// Tiny-CNN and Tiny-VBF on in-silico and in-vitro contrast phantoms.
//
// Shape targets (paper): CR ordering MVDR > Tiny-VBF > DAS ~ Tiny-CNN on
// both datasets; CNR/GCNR highest for DAS/Tiny-CNN (speckle statistics are
// preserved by non-adaptive beamformers).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "metrics/image_quality.hpp"

namespace {

using namespace tvbf;

struct PaperRow {
  double cr, cnr, gcnr;
};

const std::map<std::string, PaperRow> kPaperSim = {
    {"DAS", {13.78, 2.37, 0.83}},
    {"MVDR", {21.66, 1.95, 0.78}},
    {"Tiny-CNN", {13.45, 2.04, 0.83}},
    {"Tiny-VBF", {14.89, 1.75, 0.74}},
};
const std::map<std::string, PaperRow> kPaperVitro = {
    {"DAS", {11.70, 1.04, 0.83}},
    {"MVDR", {15.09, 2.63, 0.72}},
    {"Tiny-CNN", {11.30, 1.05, 0.79}},
    {"Tiny-VBF", {12.20, 1.39, 0.67}},
};

void run(const benchx::Scene& scene, const benchx::ModelSet& models,
         bool vitro) {
  const auto& paper = vitro ? kPaperVitro : kPaperSim;
  benchx::print_header(std::string("Table I — contrast metrics, ") +
                       (vitro ? "phantom (in-vitro preset)" : "simulation"));
  const us::Phantom phantom = benchx::contrast_phantom(scene, vitro);
  const auto envs = benchx::envelopes_for_phantom(
      scene, models, phantom, benchx::sim_preset(scene, vitro));
  std::printf("%-12s %28s %40s\n", "", "paper (CR dB, CNR, GCNR)",
              "measured (CR dB, CNR, GCNR)");
  double cr_das = 0.0, cr_vbf = 0.0, cr_mvdr = 0.0, cr_cnn = 0.0;
  for (const auto& [name, env] : envs) {
    const auto m =
        metrics::mean_contrast(env, scene.grid, phantom.cysts, 60.0);
    const auto& p = paper.at(name);
    std::printf("%-12s  %8.2f %6.2f %6.2f   |   %8.2f %6.2f %6.2f\n",
                name.c_str(), p.cr, p.cnr, p.gcnr, m.cr_db, m.cnr, m.gcnr);
    if (name == "DAS") cr_das = m.cr_db;
    if (name == "MVDR") cr_mvdr = m.cr_db;
    if (name == "Tiny-CNN") cr_cnn = m.cr_db;
    if (name == "Tiny-VBF") cr_vbf = m.cr_db;
  }
  std::printf("shape check: MVDR > Tiny-VBF: %s | Tiny-VBF > DAS: %s | "
              "Tiny-CNN ~ DAS (|diff| < 3 dB): %s\n",
              cr_mvdr > cr_vbf ? "yes" : "NO",
              cr_vbf > cr_das ? "yes" : "NO",
              std::abs(cr_cnn - cr_das) < 3.0 ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = tvbf::benchx::want_full(argc, argv);
  const auto scene = tvbf::benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Table I (contrast), scale %s "
              "(%lldch, %lldx%lld grid)\n",
              full ? "FULL" : "reduced",
              static_cast<long long>(scene.probe.num_elements),
              static_cast<long long>(scene.grid.nz),
              static_cast<long long>(scene.grid.nx));
  const auto models = tvbf::benchx::get_trained_models(scene);
  run(scene, models, /*vitro=*/false);
  run(scene, models, /*vitro=*/true);
  return 0;
}
