#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dsp/hilbert.hpp"
#include "io/writers.hpp"
#include "nn/serialize.hpp"

namespace tvbf::benchx {

bool want_full(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  return false;
}

Scene make_scene(bool full) {
  Scene s;
  s.full = full;
  if (full) {
    s.probe = us::Probe::l11_5v();
    s.grid = us::ImagingGrid::paper(s.probe);
    s.mvdr.subaperture = 64;
    s.cyst_depths = {13e-3, 25e-3, 37e-3};
    s.point_row_depths = {15e-3, 35e-3};
    s.cyst_radius = 4e-3;
  } else {
    s.probe = us::Probe::test_probe(32);
    s.grid = us::ImagingGrid::reduced(s.probe, 192, 64, 8e-3, 42e-3);
    // L = 12 of 32 channels: best contrast/resolution trade-off at this
    // scale (see EXPERIMENTS.md calibration notes).
    s.mvdr.subaperture = 12;
    s.cyst_depths = {13e-3, 25e-3, 37e-3};
    s.point_row_depths = {15e-3, 35e-3};
    // The reduced probe aperture is ~9.3 mm: keep cysts inside the image.
    s.cyst_radius = 2.5e-3;
  }
  return s;
}

us::SimParams sim_preset(const Scene& scene, bool vitro) {
  us::SimParams p = vitro ? us::SimParams::in_vitro()
                          : us::SimParams::in_silico();
  p.max_depth = scene.grid.z_end() + 3e-3;
  return p;
}

namespace {

us::Region scene_region(const Scene& scene) {
  us::Region r;
  r.x_min = scene.grid.x0;
  r.x_max = scene.grid.x_end();
  r.z_min = scene.grid.z0;
  r.z_max = scene.grid.z_end();
  return r;
}

models::TinyVbfConfig vbf_config(const Scene& scene) {
  models::TinyVbfConfig c;
  c.in_channels = scene.probe.num_elements;
  c.num_lateral = scene.grid.nx;
  // patch_size 2: sub-patch lateral detail is what narrows the PSF toward
  // MVDR (Table II); 4-pixel patches bottleneck the decoder laterally.
  c.patch_size = 2;
  c.d_model = 24;
  c.num_heads = 2;
  c.mlp_hidden = 48;
  c.num_blocks = 2;
  c.decoder_hidden = 48;
  return c;
}

models::TinyCnnConfig cnn_config(const Scene& scene) {
  models::TinyCnnConfig c;
  c.in_channels = scene.probe.num_elements;
  c.kernel = scene.full ? 5 : 3;
  c.hidden1 = scene.full ? 16 : 8;
  c.hidden2 = scene.full ? 16 : 8;
  return c;
}

models::FcnnConfig fcnn_config(const Scene& scene) {
  models::FcnnConfig c;
  c.in_channels = scene.probe.num_elements;
  c.hidden = scene.probe.num_elements / 2;
  return c;
}

std::string cache_path(const Scene& scene, const std::string& model) {
  return std::string(kOutDir) + "/" + model + "_" +
         std::to_string(scene.probe.num_elements) + "ch_" +
         std::to_string(scene.grid.nz) + "x" +
         std::to_string(scene.grid.nx) + ".weights";
}

bool try_load(std::vector<nn::Variable> params, const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  try {
    nn::load_parameters(params, path);
    return true;
  } catch (const std::exception& e) {
    std::printf("  (cache %s unusable: %s)\n", path.c_str(), e.what());
    return false;
  }
}

}  // namespace

us::Phantom contrast_phantom(const Scene& scene, bool vitro) {
  Rng rng(vitro ? 97531 : 13579);
  us::SpeckleOptions opt;
  opt.density_per_mm2 = scene.full ? 2.0 : 2.0;
  return us::make_contrast_phantom(rng, scene.cyst_depths, scene.cyst_radius,
                                   scene_region(scene), opt);
}

us::Phantom resolution_phantom(const Scene& scene) {
  const us::Region region = scene_region(scene);
  const double span = 0.6 * region.width();
  return us::make_resolution_phantom(scene.point_row_depths,
                                     scene.full ? 5 : 3, span, region);
}

ModelSet get_trained_models(const Scene& scene, std::int64_t train_frames,
                            std::int64_t epochs, bool verbose) {
  io::ensure_directory(kOutDir);
  Rng rng(20240131);
  ModelSet set;
  set.vbf = std::make_shared<models::TinyVbf>(vbf_config(scene), rng);
  set.cnn = std::make_shared<models::TinyCnn>(cnn_config(scene), rng);
  set.fcnn = std::make_shared<models::Fcnn>(fcnn_config(scene), rng);

  const std::string vbf_path = cache_path(scene, "tiny_vbf");
  const std::string cnn_path = cache_path(scene, "tiny_cnn");
  const std::string fcnn_path = cache_path(scene, "fcnn");
  const bool have_vbf = try_load(set.vbf->parameters(), vbf_path);
  const bool have_cnn = try_load(set.cnn->parameters(), cnn_path);
  const bool have_fcnn = try_load(set.fcnn->parameters(), fcnn_path);
  if (have_vbf && have_cnn && have_fcnn) {
    if (verbose) std::printf("[models] loaded cached weights from %s/\n", kOutDir);
    return set;
  }

  if (verbose)
    std::printf("[models] training on %lld synthetic frames (%lld epochs; "
                "MVDR labels)...\n",
                static_cast<long long>(train_frames),
                static_cast<long long>(epochs));
  models::DatasetParams dp;
  dp.sim = sim_preset(scene, /*vitro=*/false);
  dp.mvdr = scene.mvdr;
  dp.seed = 777;
  dp.alternate_in_vitro = true;
  Timer t;
  auto frames =
      models::make_training_set(scene.probe, scene.grid, train_frames, dp);
  // Two dedicated point-target frames (wire-phantom style) supervise the
  // PSF directly — without them the lateral mainlobe narrowing the paper
  // reports does not emerge from speckle-dominated frames alone.
  {
    const us::Region region{scene.grid.x0, scene.grid.x_end(), scene.grid.z0,
                            scene.grid.z_end()};
    const double span = 0.6 * region.width();
    for (int k = 0; k < 2; ++k) {
      const std::vector<double> depths =
          k == 0 ? std::vector<double>{14e-3, 26e-3, 38e-3}
                 : std::vector<double>{11e-3, 20e-3, 32e-3};
      const us::Phantom ph =
          us::make_resolution_phantom(depths, 3, span, region);
      models::DatasetParams p = dp;
      p.sim.seed = dp.seed + 1000 + static_cast<std::uint64_t>(k);
      frames.push_back(models::make_frame(scene.probe, scene.grid, ph, p));
    }
  }
  if (verbose)
    std::printf("[models] dataset built in %.1f s\n", t.seconds());

  models::TrainOptions opt;
  opt.epochs = epochs;
  // The paper's 1e-4..1e-6 schedule over 1000 epochs is rescaled to the
  // shorter horizon used here.
  opt.initial_lr = 2e-3;
  opt.final_lr = 1e-5;
  opt.cyclic = true;

  if (!have_vbf) {
    t.reset();
    // The transformer starts from a much higher loss than the
    // apodization-weight baselines (whose output is structurally near-DAS
    // at init) and needs a longer horizon to push its MSE floor below the
    // cyst level. Three warm restarts (fresh Adam state + schedule) drive
    // the loss low enough to reproduce the paper's contrast ordering — the
    // cyclic-restart analogue of the paper's 1000-epoch schedule.
    double first_loss = 0.0, last_loss = 0.0;
    for (int round = 0; round < 4; ++round) {
      const auto rep = models::train_model(
          [&](const Tensor& in) { return set.vbf->forward(nn::constant(in)); },
          set.vbf->parameters(), frames, models::TargetKind::kIq, opt);
      if (round == 0) first_loss = rep.epoch_loss.front();
      last_loss = rep.final_loss;
    }
    nn::save_parameters(set.vbf->parameters(), vbf_path);
    if (verbose)
      std::printf("[models] Tiny-VBF: loss %.5f -> %.5f (%.1f s)\n",
                  first_loss, last_loss, t.seconds());
  }
  if (!have_cnn) {
    t.reset();
    const auto rep = models::train_model(
        [&](const Tensor& in) { return set.cnn->forward(nn::constant(in)); },
        set.cnn->parameters(), frames, models::TargetKind::kRf, opt);
    nn::save_parameters(set.cnn->parameters(), cnn_path);
    if (verbose)
      std::printf("[models] Tiny-CNN: loss %.5f -> %.5f (%.1f s)\n",
                  rep.epoch_loss.front(), rep.final_loss, t.seconds());
  }
  if (!have_fcnn) {
    t.reset();
    const auto rep = models::train_model(
        [&](const Tensor& in) { return set.fcnn->forward(nn::constant(in)); },
        set.fcnn->parameters(), frames, models::TargetKind::kRf, opt);
    nn::save_parameters(set.fcnn->parameters(), fcnn_path);
    if (verbose)
      std::printf("[models] FCNN: loss %.5f -> %.5f (%.1f s)\n",
                  rep.epoch_loss.front(), rep.final_loss, t.seconds());
  }
  return set;
}

std::vector<std::pair<std::string, Tensor>> envelopes_for_phantom(
    const Scene& scene, const ModelSet& models, const us::Phantom& phantom,
    const us::SimParams& sim) {
  const us::Acquisition acq =
      us::simulate_plane_wave(scene.probe, phantom, 0.0, sim);
  const us::TofCube rf = us::tof_correct(acq, scene.grid, {});
  const us::TofCube iq =
      us::tof_correct(acq, scene.grid, {.analytic = true});

  const bf::DasBeamformer das(scene.probe);
  const bf::MvdrBeamformer mvdr(scene.mvdr);
  const models::TinyCnnBeamformer cnn_bf(models.cnn);
  const models::TinyVbfBeamformer vbf_bf(models.vbf);

  std::vector<std::pair<std::string, Tensor>> out;
  out.emplace_back("DAS", dsp::envelope_iq(das.beamform(rf)));
  out.emplace_back("MVDR", dsp::envelope_iq(mvdr.beamform(iq)));
  out.emplace_back("Tiny-CNN", dsp::envelope_iq(cnn_bf.beamform(rf)));
  out.emplace_back("Tiny-VBF", dsp::envelope_iq(vbf_bf.beamform(rf)));
  return out;
}

void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void print_row(const std::string& name,
               const std::vector<std::pair<std::string, double>>& cells) {
  std::printf("%-12s", name.c_str());
  for (const auto& [label, value] : cells)
    std::printf("  %s=%8.3f", label.c_str(), value);
  std::printf("\n");
}

void BenchJson::add(const std::string& part, const std::string& name,
                    double value, const std::string& unit) {
  entries_.push_back({part, name, unit, value});
}

std::string BenchJson::write(const std::string& file) const {
  io::ensure_directory(kOutDir);
  const std::string path = std::string(kOutDir) + "/" + file;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("[bench] could not write %s\n", path.c_str());
    return path;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    std::fprintf(f,
                 "  {\"part\": \"%s\", \"name\": \"%s\", \"value\": %.9g, "
                 "\"unit\": \"%s\"}%s\n",
                 e.part.c_str(), e.name.c_str(), e.value, e.unit.c_str(),
                 i + 1 < entries_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("[bench] wrote %s (%zu results)\n", path.c_str(),
              entries_.size());
  return path;
}

}  // namespace tvbf::benchx
