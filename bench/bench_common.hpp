// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary reconstructs the paper's pipeline at a reduced default
// scale (32 channels, 192 x 64 grid) so the whole suite runs in minutes;
// passing --full escalates to the paper's 368 x 128 frame with 128 channels.
// Trained model weights are cached in bench_out/ so the first bench that
// needs them trains once and the rest reload.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "beamform/das.hpp"
#include "beamform/mvdr.hpp"
#include "models/dataset.hpp"
#include "models/neural_beamformer.hpp"
#include "models/trainer.hpp"
#include "us/tof.hpp"

namespace tvbf::benchx {

/// Output directory for figures/CSVs/weight caches.
inline const char* kOutDir = "bench_out";

/// Experiment scale + physics configuration.
struct Scene {
  us::Probe probe;
  us::ImagingGrid grid;
  bf::MvdrParams mvdr;
  bool full = false;

  /// Depths (m) for the contrast cysts / resolution rows, scaled to the
  /// grid's depth range.
  std::vector<double> cyst_depths;
  std::vector<double> point_row_depths;
  double cyst_radius = 4e-3;
};

/// Builds the default (reduced) or --full (paper-scale) scene.
Scene make_scene(bool full);

/// True when argv contains --full.
bool want_full(int argc, char** argv);

/// The four trained/loaded models of the comparison.
struct ModelSet {
  std::shared_ptr<models::TinyVbf> vbf;
  std::shared_ptr<models::TinyCnn> cnn;
  std::shared_ptr<models::Fcnn> fcnn;
};

/// Trains (or loads cached) models for the scene. Training uses random
/// speckle/cyst/point phantoms with MVDR labels, per the paper's recipe.
ModelSet get_trained_models(const Scene& scene, std::int64_t train_frames = 8,
                            std::int64_t epochs = 60, bool verbose = true);

/// Envelope image of each method for one phantom acquisition, keyed by
/// method name in the paper's order: DAS, MVDR, Tiny-CNN, Tiny-VBF.
std::vector<std::pair<std::string, Tensor>> envelopes_for_phantom(
    const Scene& scene, const ModelSet& models, const us::Phantom& phantom,
    const us::SimParams& sim);

/// In-silico / in-vitro simulator presets bounded to the scene depth.
us::SimParams sim_preset(const Scene& scene, bool vitro);

/// Contrast phantom for the scene (cysts at scene.cyst_depths).
us::Phantom contrast_phantom(const Scene& scene, bool vitro);

/// Resolution phantom for the scene (rows at scene.point_row_depths).
us::Phantom resolution_phantom(const Scene& scene);

// ---- table formatting -------------------------------------------------------

/// Prints a section header.
void print_header(const std::string& title);

/// Prints one "name: paper=... measured=..." row of a reproduction table.
void print_row(const std::string& name,
               const std::vector<std::pair<std::string, double>>& cells);

// ---- machine-readable results ----------------------------------------------

/// Collects per-part scalar results and writes them as a JSON array, so
/// the perf trajectory is tracked across PRs instead of living only in
/// log text:
///   [{"part": "...", "name": "...", "value": 1.23, "unit": "fps"}, ...]
class BenchJson {
 public:
  void add(const std::string& part, const std::string& name, double value,
           const std::string& unit);
  /// Writes to `<kOutDir>/<file>` (creates the directory); returns the
  /// full path.
  std::string write(const std::string& file) const;

 private:
  struct Entry {
    std::string part, name, unit;
    double value;
  };
  std::vector<Entry> entries_;
};

}  // namespace tvbf::benchx
