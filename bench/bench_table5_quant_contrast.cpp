// Table V reproduction: contrast metrics of the quantized Tiny-VBF across
// quantization levels, simulation and phantom data. Shape target: CR/CNR/
// GCNR at 24/20-bit and hybrid levels stay close to float; 16-bit drifts.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/image_quality.hpp"
#include "quant/quantized_tiny_vbf.hpp"

namespace {

using namespace tvbf;

struct PaperRow {
  double sim_cr, sim_cnr, sim_gcnr, ph_cr, ph_cnr, ph_gcnr;
};

const std::map<std::string, PaperRow> kPaper = {
    {"Float", {14.89, 1.75, 0.74, 12.20, 1.39, 0.67}},
    {"24 bits", {14.07, 1.84, 0.75, 13.00, 1.22, 0.69}},
    {"20 bits", {14.30, 1.45, 0.73, 13.05, 1.22, 0.67}},
    {"16 bits", {-1, -1, -1, -1, -1, -1}},  // paper: degraded
    {"Hybrid-1", {13.34, 1.74, 0.73, 12.72, 1.37, 0.68}},
    {"Hybrid-2", {13.26, 1.75, 0.72, 12.62, 1.40, 0.67}},
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchx::want_full(argc, argv);
  const auto scene = benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Table V (contrast vs quantization)\n");
  const auto models = benchx::get_trained_models(scene);

  auto make_input = [&](bool vitro, us::Phantom& out_ph) {
    out_ph = benchx::contrast_phantom(scene, vitro);
    const us::Acquisition acq = us::simulate_plane_wave(
        scene.probe, out_ph, 0.0, benchx::sim_preset(scene, vitro));
    return models::normalized_input(us::tof_correct(acq, scene.grid, {}));
  };
  us::Phantom ph_sim, ph_vitro;
  const Tensor in_sim = make_input(false, ph_sim);
  const Tensor in_vitro = make_input(true, ph_vitro);

  benchx::print_header(
      "Table V — contrast vs quantization (paper sim CR/CNR/GCNR, phantom "
      "CR/CNR/GCNR | measured)");
  double float_cr_sim = 0.0;
  for (const auto& scheme : quant::QuantScheme::paper_levels()) {
    const quant::QuantizedTinyVbf q(*models.vbf, scheme);
    const auto m_sim = metrics::mean_contrast(
        dsp::envelope_iq(q.infer(in_sim)), scene.grid, ph_sim.cysts);
    const auto m_vitro = metrics::mean_contrast(
        dsp::envelope_iq(q.infer(in_vitro)), scene.grid, ph_vitro.cysts);
    if (scheme.is_float) float_cr_sim = m_sim.cr_db;
    const auto& p = kPaper.at(scheme.name);
    if (p.sim_cr > 0)
      std::printf("%-9s  paper %5.2f %4.2f %4.2f | %5.2f %4.2f %4.2f   "
                  "measured %5.2f %4.2f %4.2f | %5.2f %4.2f %4.2f\n",
                  scheme.name.c_str(), p.sim_cr, p.sim_cnr, p.sim_gcnr,
                  p.ph_cr, p.ph_cnr, p.ph_gcnr, m_sim.cr_db, m_sim.cnr,
                  m_sim.gcnr, m_vitro.cr_db, m_vitro.cnr, m_vitro.gcnr);
    else
      std::printf("%-9s  paper     (degraded)            measured %5.2f %4.2f "
                  "%4.2f | %5.2f %4.2f %4.2f\n",
                  scheme.name.c_str(), m_sim.cr_db, m_sim.cnr, m_sim.gcnr,
                  m_vitro.cr_db, m_vitro.cnr, m_vitro.gcnr);
  }
  std::printf("\nfloat sim CR reference: %.2f dB; shape: wide datapaths stay "
              "within ~1.5 dB, 16-bit drifts furthest.\n",
              float_cr_sim);
  return 0;
}
