// Figs 12 and 14 reproduction: lateral point-spread-function profiles at the
// two point-row depths (normalized amplitude vs lateral position), for
// simulation and in-vitro presets. CSVs land in bench_out/; the printed
// summary reports mainlobe width and peak sidelobe level per method —
// the paper's claim is that MVDR and Tiny-VBF shrink both vs DAS/Tiny-CNN.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "io/writers.hpp"
#include "metrics/resolution.hpp"

namespace {

using namespace tvbf;

/// Peak sidelobe level (dB below mainlobe) of a normalized profile.
double sidelobe_db(const std::vector<float>& prof) {
  // Find the mainlobe peak, walk to its -inf edges, then take the max
  // outside.
  const auto peak_it = std::max_element(prof.begin(), prof.end());
  const std::int64_t peak =
      static_cast<std::int64_t>(std::distance(prof.begin(), peak_it));
  std::int64_t lo = peak, hi = peak;
  while (lo > 0 && prof[static_cast<std::size_t>(lo - 1)] <
                       prof[static_cast<std::size_t>(lo)])
    --lo;
  while (hi + 1 < static_cast<std::int64_t>(prof.size()) &&
         prof[static_cast<std::size_t>(hi + 1)] <
             prof[static_cast<std::size_t>(hi)])
    ++hi;
  float side = 0.0f;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(prof.size()); ++i)
    if (i < lo || i > hi) side = std::max(side, prof[static_cast<std::size_t>(i)]);
  if (side <= 0.0f) return -120.0;
  return 20.0 * std::log10(side / *peak_it);
}

void run(const benchx::Scene& scene, const benchx::ModelSet& models,
         bool vitro) {
  const char* tag = vitro ? "vitro" : "silico";
  const char* fig = vitro ? "fig14" : "fig12";
  const us::Phantom phantom = benchx::resolution_phantom(scene);
  const auto envs = benchx::envelopes_for_phantom(
      scene, models, phantom, benchx::sim_preset(scene, vitro));

  for (double depth : scene.point_row_depths) {
    std::vector<std::string> names{"lateral_mm"};
    std::vector<std::vector<double>> cols;
    std::vector<double> x;
    for (std::int64_t ix = 0; ix < scene.grid.nx; ++ix)
      x.push_back(scene.grid.x_at(ix) * 1e3);
    cols.push_back(x);
    benchx::print_header(std::string(fig) + " — lateral PSF at " +
                         std::to_string(depth * 1e3) + " mm (" + tag + ")");
    for (const auto& [name, env] : envs) {
      const auto prof = metrics::lateral_profile(env, scene.grid, depth);
      names.push_back(name);
      cols.emplace_back(prof.begin(), prof.end());
      std::printf("%-10s  peak sidelobe %7.1f dB\n", name.c_str(),
                  sidelobe_db(prof));
    }
    std::string csv = std::string(benchx::kOutDir) + "/" + fig + "_" + tag +
                      "_" + std::to_string(static_cast<int>(depth * 1e3)) +
                      "mm.csv";
    io::write_csv(csv, names, cols);
    std::printf("wrote %s\n", csv.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchx::want_full(argc, argv);
  const auto scene = benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Figs 12/14 (lateral PSF profiles)\n");
  io::ensure_directory(benchx::kOutDir);
  const auto models = benchx::get_trained_models(scene);
  run(scene, models, /*vitro=*/false);
  run(scene, models, /*vitro=*/true);
  return 0;
}
