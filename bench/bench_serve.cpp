// Multi-session serving benchmark: quantifies the two serving-layer wins.
//
// Part 1 runs N concurrent DAS sessions through the Server (round-robin
// scheduling, per-session frame state, block backpressure) against the
// baseline of running the same N sessions sequentially as solo Pipelines on
// the same pool — the aggregate-throughput question a multi-client scanner
// server has to answer. Part 2 runs N sessions of the learned Tiny-VBF
// beamformer through the same inference engine one-frame-at-a-time
// (max_batch 1) and cross-session batched — the batcher stacks every ready
// frame into one forward pass, amortizing per-pass fixed cost (autograd
// graph, GEMM packing, pool fan-out) the way the PlanCache amortizes
// geometry. Part 3 checks
// that served per-session output stays bit-identical to a solo
// Pipeline::run of the same source, DAS and Tiny-VBF alike. Part 4 A/Bs
// the two server schedulers on a mixed DAS + Tiny-VBF session load:
// legacy per-session round-robin vs readiness-scheduled frame graphs
// (Scheduling::kGraph), asserting both lanes deliver identical frames.
// Part 5 A/Bs the device backends' batching decisions on the same mixed
// load: the CPU cost model vs the accelerator cycle model feed the
// batcher's preferred-batch sizing, so the accel lane should justify
// deeper quorums while both lanes stay bit-identical (AccelDevice
// executes on the same CPU kernels; only the estimates differ).
// Part 6 measures the telemetry layer itself: the mixed-session load runs
// with instruments enabled vs disabled (enabled must stay >= 0.97x of
// disabled on >= 4-core hosts), and the enabled run's registry yields
// per-session frame-latency quantiles plus the device's measured-vs-
// estimated latency error per command kind. Part 7 measures the full ops
// plane the same way: frame-lineage trace capture armed, stall watchdog
// polling and the localhost introspection endpoint bound, vs the part-6
// enabled lane (>= 0.97x on >= 4-core hosts, bit-identical frames).
//
// Every part's scalar results are also written to
// bench_out/BENCH_serve.json so the perf trajectory is tracked across PRs.
//
//   ./bench_serve [--sessions N] [--frames N] [--full]
//
// Defaults to the reduced scene (32 channels, 192 x 64 grid); --full runs
// the paper-scale frame (128 channels, 368 x 128).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "beamform/das.hpp"
#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "accel/accel_device.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "models/neural_beamformer.hpp"
#include "models/tiny_vbf.hpp"
#include "runtime/pipeline.hpp"
#include "us/plan_cache.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"
#include "us/tof.hpp"

namespace {

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [--sessions N] [--frames N] [--full] [--help]\n"
      "  --sessions N  concurrent imaging sessions (default 8)\n"
      "  --frames N    frames per session and part (default 12)\n"
      "  --full        paper-scale frame (128 channels, 368 x 128 grid)\n"
      "                instead of the reduced bench scale\n"
      "  --help        show this message\n",
      argv0);
}

struct SessionFps {
  double min_fps = 0.0;
  double max_fps = 0.0;
};

SessionFps session_spread(const tvbf::serve::ServerReport& report) {
  SessionFps s;
  bool first = true;
  for (const auto& sess : report.sessions) {
    const double fps =
        report.wall_s > 0.0
            ? static_cast<double>(sess.frames) / report.wall_s
            : 0.0;
    if (first || fps < s.min_fps) s.min_fps = fps;
    if (first || fps > s.max_fps) s.max_fps = fps;
    first = false;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tvbf;
  serve::tune_allocator();  // serving-process malloc tuning (see header)
  int num_sessions = 8;
  std::int64_t frames = 12;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      num_sessions = std::atoi(argv[++i]);
      if (num_sessions < 1) {
        std::fprintf(stderr, "%s: --sessions needs a positive count\n",
                     argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoll(argv[++i]);
      if (frames < 1) {
        std::fprintf(stderr, "%s: --frames needs a positive count\n", argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      print_usage(argv[0]);
      return 1;
    }
  }

  const us::Probe probe =
      full ? us::Probe::l11_5v() : us::Probe::test_probe(32);
  const us::ImagingGrid grid = full ? us::ImagingGrid::paper(probe)
                                    : us::ImagingGrid::reduced(probe, 192, 64);
  std::printf("scene: %lld channels, %lld x %lld grid (%s); %d sessions x "
              "%lld frames; pool: %zu thread(s)\n",
              static_cast<long long>(probe.num_elements),
              static_cast<long long>(grid.nz),
              static_cast<long long>(grid.nx),
              full ? "paper scale" : "reduced",
              num_sessions, static_cast<long long>(frames),
              hardware_threads());

  Rng rng(7);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  us::SpeckleOptions speckle;
  speckle.density_per_mm2 = 0.5;
  const us::Phantom phantom = us::make_contrast_phantom(
      rng, {0.35 * grid.z_end(), 0.7 * grid.z_end()}, 2.5e-3, region, speckle);
  us::SimParams sim = us::SimParams::in_silico();
  sim.max_depth = grid.z_end() + 3e-3;
  Timer t;
  const us::Acquisition acq = us::simulate_plane_wave(probe, phantom, 0.0, sim);
  std::printf("simulated %lld samples x %lld channels in %.2f s\n\n",
              static_cast<long long>(acq.num_samples()),
              static_cast<long long>(acq.num_channels()), t.seconds());

  auto das = std::make_shared<bf::DasBeamformer>(probe);
  auto make_source = [&] {
    return std::make_shared<rt::ReplaySource>(
        std::vector<us::Acquisition>{acq}, frames);
  };
  rt::PipelineConfig cfg;
  cfg.grid = grid;

  // ---- part 1: N concurrent DAS sessions vs the same N run sequentially ----
  us::PlanCache::instance().clear();
  {  // warm the plan cache so both lanes pay zero geometry passes
    const auto plan = us::PlanCache::instance().get_for(acq, grid);
    (void)plan;
  }

  t.reset();
  for (int s = 0; s < num_sessions; ++s) {
    rt::Pipeline pipeline(make_source(), das, cfg);
    pipeline.run();
  }
  const double sequential_s = t.seconds();
  const double sequential_fps =
      static_cast<double>(num_sessions) * static_cast<double>(frames) /
      sequential_s;

  serve::ServerConfig das_cfg;
  // Pin throughput mode: this part measures the many-sessions regime where
  // serialized per-worker frames are the designed configuration.
  das_cfg.frame_parallelism = serve::FrameParallelism::kSerialPerWorker;
  serve::Server server(das_cfg);
  for (int s = 0; s < num_sessions; ++s)
    server.add_session({make_source(), das, cfg, {}});
  const serve::ServerReport das_report = server.run();
  const SessionFps spread = session_spread(das_report);
  const double das_ratio = das_report.aggregate_fps() / sequential_fps;

  std::printf("DAS serving (%d sessions, aggregate frames/s):\n",
              num_sessions);
  std::printf("  sequential pipelines   %8.1f fps  (%.2f s)\n",
              sequential_fps, sequential_s);
  std::printf("  concurrent server      %8.1f fps  (%.2f s)  -> %.2fx\n",
              das_report.aggregate_fps(), das_report.wall_s, das_ratio);
  std::printf("  per-session fps spread %.1f .. %.1f (round-robin fairness)\n\n",
              spread.min_fps, spread.max_fps);

  // ---- part 2: cross-session batched Tiny-VBF inference --------------------
  Rng model_rng(11);
  const models::TinyVbfConfig vbf_cfg = models::TinyVbfConfig::test(
      probe.num_elements, grid.nx);
  auto model = std::make_shared<models::TinyVbf>(vbf_cfg, model_rng);
  auto vbf = std::make_shared<models::TinyVbfBeamformer>(model);

  // Both lanes run on the same inference engine; only the batch cap
  // differs, so the ratio isolates cross-session stacking itself. The
  // cost-aware quorum cap is disabled here for that reason — the device
  // cost models get their own A/B in part 5.
  auto run_vbf = [&](std::size_t max_batch) {
    serve::ServerConfig scfg;
    scfg.max_batch = max_batch;
    scfg.cost_aware_batching = false;
    serve::Server vbf_server(scfg);
    for (int s = 0; s < num_sessions; ++s)
      vbf_server.add_session({make_source(), vbf, cfg, {}});
    return vbf_server.run();
  };
  const serve::ServerReport unbatched = run_vbf(1);
  const serve::ServerReport batched =
      run_vbf(static_cast<std::size_t>(num_sessions));
  const double batch_ratio =
      batched.aggregate_fps() / unbatched.aggregate_fps();

  std::printf("Tiny-VBF serving (%d sessions, aggregate frames/s):\n",
              num_sessions);
  std::printf("  one-at-a-time          %8.1f fps  (%.2f s)\n",
              unbatched.aggregate_fps(), unbatched.wall_s);
  std::printf("  cross-session batched  %8.1f fps  (%.2f s)  -> %.2fx\n",
              batched.aggregate_fps(), batched.wall_s, batch_ratio);
  std::printf("  batches: %lld, mean size %.1f, max %lld\n\n",
              static_cast<long long>(batched.batches.batches),
              batched.batches.mean_batch(),
              static_cast<long long>(batched.batches.max_batch));

  // ---- part 3: served output == solo pipeline output -----------------------
  auto served_frame = [&](std::shared_ptr<const bf::Beamformer> beamformer) {
    serve::Server check;
    Tensor last;
    check.add_session({make_source(), beamformer, cfg,
                       [&](const rt::FrameOutput& out) { last = out.db; }});
    check.run();
    return last;
  };
  auto solo_frame = [&](std::shared_ptr<const bf::Beamformer> beamformer) {
    rt::Pipeline pipeline(make_source(), std::move(beamformer), cfg);
    Tensor last;
    pipeline.run([&](const rt::FrameOutput& out) { last = out.db; });
    return last;
  };
  const Tensor das_solo = solo_frame(das);
  const Tensor vbf_solo = solo_frame(vbf);
  const float das_diff = max_abs_diff(served_frame(das), das_solo);
  const float vbf_diff = max_abs_diff(served_frame(vbf), vbf_solo);
  const bool match = das_diff == 0.0f && vbf_diff == 0.0f;
  std::printf("served vs solo B-mode: DAS max |diff| %.3g dB, Tiny-VBF max "
              "|diff| %.3g dB -> %s\n\n",
              static_cast<double>(das_diff), static_cast<double>(vbf_diff),
              match ? "MATCH" : "MISMATCH");

  // ---- part 4: round-robin vs graph readiness scheduling -------------------
  // Mixed load: alternating DAS and batch-capable Tiny-VBF sessions. Under
  // round-robin a session parked behind the inference-batch quorum wastes
  // its scheduler turn; readiness scheduling lets any runnable stage of any
  // session fill that gap. Both lanes must produce identical frames.
  auto run_mixed = [&](const serve::ServerConfig& scfg) {
    serve::Server mixed(scfg);
    std::vector<Tensor> last(static_cast<std::size_t>(num_sessions));
    for (int s = 0; s < num_sessions; ++s) {
      const std::shared_ptr<const bf::Beamformer> beamformer =
          s % 2 == 0 ? std::shared_ptr<const bf::Beamformer>(das)
                     : std::shared_ptr<const bf::Beamformer>(vbf);
      Tensor& into = last[static_cast<std::size_t>(s)];
      mixed.add_session({make_source(), beamformer, cfg,
                         [&into](const rt::FrameOutput& out) {
                           into = out.db;
                         }});
    }
    const serve::ServerReport report = mixed.run();
    return std::make_pair(report, std::move(last));
  };
  auto sched_cfg = [](serve::Scheduling scheduling) {
    serve::ServerConfig scfg;
    scfg.scheduling = scheduling;
    return scfg;
  };
  const auto [rr_report, rr_frames] =
      run_mixed(sched_cfg(serve::Scheduling::kRoundRobin));
  const auto [graph_report, graph_frames] =
      run_mixed(sched_cfg(serve::Scheduling::kGraph));
  float sched_diff = 0.0f;
  for (std::size_t s = 0; s < rr_frames.size(); ++s) {
    const float d = max_abs_diff(rr_frames[s], graph_frames[s]);
    if (d > sched_diff) sched_diff = d;
    // Graph scheduling must also stay pinned to the solo reference.
    const float solo_d =
        max_abs_diff(graph_frames[s], s % 2 == 0 ? das_solo : vbf_solo);
    if (solo_d > sched_diff) sched_diff = solo_d;
  }
  const double sched_ratio =
      rr_report.aggregate_fps() > 0.0
          ? graph_report.aggregate_fps() / rr_report.aggregate_fps()
          : 0.0;
  std::printf("mixed DAS + Tiny-VBF scheduling (%d sessions, aggregate "
              "frames/s):\n",
              num_sessions);
  std::printf("  round-robin            %8.1f fps  (%.2f s)\n",
              rr_report.aggregate_fps(), rr_report.wall_s);
  std::printf("  graph readiness        %8.1f fps  (%.2f s)  -> %.2fx\n",
              graph_report.aggregate_fps(), graph_report.wall_s, sched_ratio);
  std::printf("  scheduler max |diff|: %.3g dB -> %s\n",
              static_cast<double>(sched_diff),
              sched_diff == 0.0f ? "MATCH" : "MISMATCH");

  // ---- part 5: cpu vs accel cost models driving the batcher ----------------
  // Same mixed load, two device backends. The accelerator cycle model prices
  // a 1 ms dispatch per command list, so the batcher should justify a deeper
  // quorum than under the CPU cost model — while frames stay bit-identical,
  // because AccelDevice executes through the same CPU kernels and only the
  // latency estimates differ.
  auto run_backend = [&](std::shared_ptr<device::Device> dev) {
    rt::PipelineConfig backend_cfg = cfg;
    backend_cfg.device = std::move(dev);
    serve::Server backend_server;
    std::vector<Tensor> last(static_cast<std::size_t>(num_sessions));
    for (int s = 0; s < num_sessions; ++s) {
      const std::shared_ptr<const bf::Beamformer> beamformer =
          s % 2 == 0 ? std::shared_ptr<const bf::Beamformer>(das)
                     : std::shared_ptr<const bf::Beamformer>(vbf);
      Tensor& into = last[static_cast<std::size_t>(s)];
      backend_server.add_session({make_source(), beamformer, backend_cfg,
                                  [&into](const rt::FrameOutput& out) {
                                    into = out.db;
                                  }});
    }
    const serve::ServerReport report = backend_server.run();
    return std::make_pair(report, std::move(last));
  };
  const auto [cpu_report, cpu_frames] = run_backend(nullptr);
  const auto [accel_report, accel_frames] =
      run_backend(std::make_shared<accel::AccelDevice>());
  float backend_diff = 0.0f;
  for (std::size_t s = 0; s < cpu_frames.size(); ++s) {
    const float d = max_abs_diff(cpu_frames[s], accel_frames[s]);
    if (d > backend_diff) backend_diff = d;
  }
  std::printf("device backends on the mixed load (batching decisions):\n");
  std::printf("  cpu cost model         preferred batch %lld; %lld batches, "
              "mean %.1f, max %lld\n",
              static_cast<long long>(cpu_report.batches.preferred_batch),
              static_cast<long long>(cpu_report.batches.batches),
              cpu_report.batches.mean_batch(),
              static_cast<long long>(cpu_report.batches.max_batch));
  std::printf("  accel cycle model      preferred batch %lld; %lld batches, "
              "mean %.1f, max %lld\n",
              static_cast<long long>(accel_report.batches.preferred_batch),
              static_cast<long long>(accel_report.batches.batches),
              accel_report.batches.mean_batch(),
              static_cast<long long>(accel_report.batches.max_batch));
  std::printf("  backend max |diff|: %.3g dB -> %s\n\n",
              static_cast<double>(backend_diff),
              backend_diff == 0.0f ? "MATCH" : "MISMATCH");

  // ---- part 6: telemetry overhead on the mixed load ------------------------
  // The same mixed-session load, instruments enabled (the default) vs
  // disabled (relaxed load + branch per record site). The registry is reset
  // before the enabled lane so its histograms hold exactly that run.
  telemetry::Registry::instance().reset();
  const auto [tel_on_report, tel_on_frames] =
      run_mixed(sched_cfg(serve::Scheduling::kGraph));
  const telemetry::Snapshot tel_snap =
      telemetry::Registry::instance().snapshot();
  telemetry::set_enabled(false);
  const auto [tel_off_report, tel_off_frames] =
      run_mixed(sched_cfg(serve::Scheduling::kGraph));
  telemetry::set_enabled(true);
  float tel_diff = 0.0f;
  for (std::size_t s = 0; s < tel_on_frames.size(); ++s) {
    const float d = max_abs_diff(tel_on_frames[s], tel_off_frames[s]);
    if (d > tel_diff) tel_diff = d;
  }
  const double telemetry_ratio =
      tel_off_report.aggregate_fps() > 0.0
          ? tel_on_report.aggregate_fps() / tel_off_report.aggregate_fps()
          : 0.0;
  std::printf("telemetry overhead on the mixed load (aggregate frames/s):\n");
  std::printf("  instruments disabled   %8.1f fps  (%.2f s)\n",
              tel_off_report.aggregate_fps(), tel_off_report.wall_s);
  std::printf("  instruments enabled    %8.1f fps  (%.2f s)  -> %.3fx\n",
              tel_on_report.aggregate_fps(), tel_on_report.wall_s,
              telemetry_ratio);
  std::printf("  per-session frame latency (dispatch -> delivery, ms):\n");
  for (int s = 0; s < num_sessions; ++s) {
    const auto* h = tel_snap.histogram("serve.session." + std::to_string(s) +
                                       ".frame_s");
    if (h == nullptr || h->count == 0) continue;
    std::printf("    session %-2d  p50 %8.3f  p99 %8.3f  (%lld frames)\n", s,
                h->p50_s * 1e3, h->p99_s * 1e3,
                static_cast<long long>(h->count));
  }
  std::printf("  device submit latency, measured vs cost-model estimate:\n");
  for (std::size_t k = 0; k < device::kNumCommandKinds; ++k) {
    const std::string base =
        std::string("device.submit.") + device::command_kind_name(k);
    const auto* measured = tel_snap.counter(base + ".measured_ns");
    const auto* estimated = tel_snap.counter(base + ".estimated_ns");
    if (measured == nullptr || measured->value <= 0) continue;
    const double err = static_cast<double>(estimated->value) /
                           static_cast<double>(measured->value) -
                       1.0;
    std::printf("    %-18s measured %8.3f ms  estimated %8.3f ms  "
                "error %+6.1f%%\n",
                device::command_kind_name(k),
                static_cast<double>(measured->value) * 1e-6,
                static_cast<double>(estimated->value) * 1e-6, err * 100.0);
  }
  std::printf("\n");

  // ---- part 7: ops-plane overhead on the mixed load ------------------------
  // The same mixed load with the full ops plane live: frame-lineage trace
  // capture armed, the stall watchdog polling, and the localhost
  // introspection endpoint bound and scrape-ready. Observability that
  // perturbs the server — in throughput or, worse, in output — is not
  // deployable; the part-6 enabled lane is the baseline (telemetry on,
  // ops plane off).
  serve::ServerConfig ops_cfg = sched_cfg(serve::Scheduling::kGraph);
  ops_cfg.ops_port = 0;            // ephemeral localhost endpoint
  ops_cfg.watchdog_stall_s = 1.0;  // armed; a live run never trips it
  telemetry::trace_start(1 << 16);
  const auto [ops_report, ops_frames] = run_mixed(ops_cfg);
  telemetry::trace_stop();
  float ops_diff = 0.0f;
  for (std::size_t s = 0; s < ops_frames.size(); ++s) {
    const float d = max_abs_diff(ops_frames[s], tel_on_frames[s]);
    if (d > ops_diff) ops_diff = d;
  }
  const double ops_ratio =
      tel_on_report.aggregate_fps() > 0.0
          ? ops_report.aggregate_fps() / tel_on_report.aggregate_fps()
          : 0.0;
  std::printf("ops-plane overhead on the mixed load (aggregate frames/s):\n");
  std::printf("  ops plane off          %8.1f fps  (%.2f s)\n",
              tel_on_report.aggregate_fps(), tel_on_report.wall_s);
  std::printf("  ops plane on           %8.1f fps  (%.2f s)  -> %.3fx\n",
              ops_report.aggregate_fps(), ops_report.wall_s, ops_ratio);
  std::printf("  (trace armed, watchdog polling, endpoint bound; dropped "
              "spans %lld)\n",
              static_cast<long long>(telemetry::trace_dropped()));
  std::printf("  ops max |diff|: %.3g dB -> %s\n\n",
              static_cast<double>(ops_diff),
              ops_diff == 0.0f ? "MATCH" : "MISMATCH");

  // ---- machine-readable results --------------------------------------------
  benchx::BenchJson json;
  json.add("das_serving", "sequential_fps", sequential_fps, "fps");
  json.add("das_serving", "server_fps", das_report.aggregate_fps(), "fps");
  json.add("das_serving", "speedup", das_ratio, "x");
  json.add("vbf_batching", "unbatched_fps", unbatched.aggregate_fps(), "fps");
  json.add("vbf_batching", "batched_fps", batched.aggregate_fps(), "fps");
  json.add("vbf_batching", "speedup", batch_ratio, "x");
  json.add("served_vs_solo", "das_max_diff", static_cast<double>(das_diff),
           "dB");
  json.add("served_vs_solo", "vbf_max_diff", static_cast<double>(vbf_diff),
           "dB");
  json.add("scheduling", "round_robin_fps", rr_report.aggregate_fps(), "fps");
  json.add("scheduling", "graph_fps", graph_report.aggregate_fps(), "fps");
  json.add("scheduling", "graph_vs_rr", sched_ratio, "x");
  json.add("backends", "cpu_preferred_batch",
           static_cast<double>(cpu_report.batches.preferred_batch), "frames");
  json.add("backends", "accel_preferred_batch",
           static_cast<double>(accel_report.batches.preferred_batch),
           "frames");
  json.add("telemetry", "enabled_fps", tel_on_report.aggregate_fps(), "fps");
  json.add("telemetry", "disabled_fps", tel_off_report.aggregate_fps(),
           "fps");
  json.add("telemetry", "enabled_over_disabled", telemetry_ratio, "x");
  if (const auto* h = tel_snap.histogram("serve.frame_s");
      h != nullptr && h->count > 0) {
    json.add("telemetry", "frame_latency_p50", h->p50_s * 1e3, "ms");
    json.add("telemetry", "frame_latency_p99", h->p99_s * 1e3, "ms");
  }
  json.add("ops_plane", "disabled_fps", tel_on_report.aggregate_fps(), "fps");
  json.add("ops_plane", "enabled_fps", ops_report.aggregate_fps(), "fps");
  json.add("ops_plane", "enabled_over_disabled", ops_ratio, "x");
  json.add("ops_plane", "dropped_spans",
           static_cast<double>(telemetry::trace_dropped()), "spans");
  json.write("BENCH_serve.json");

  // Gates. The concurrency ratio needs real cores; on single-core hosts the
  // server cannot beat sequential and the gate is informational only.
  bool ok = match && sched_diff == 0.0f && backend_diff == 0.0f &&
            tel_diff == 0.0f && ops_diff == 0.0f;
  if (accel_report.batches.preferred_batch <
      cpu_report.batches.preferred_batch) {
    // The dispatch overhead should never make shallower batching look
    // cheaper; a flip means the cost models disagree with their design.
    std::printf("WARNING: accel cost model preferred a shallower batch than "
                "cpu\n");
    ok = false;
  }
  if (hardware_threads() >= 4) {
    if (das_ratio < 3.0) {
      std::printf("WARNING: concurrent DAS serving below 3x sequential\n");
      ok = false;
    }
  } else {
    std::printf("note: %zu pool thread(s) — concurrency gate skipped "
                "(needs >= 4 cores)\n",
                hardware_threads());
  }
  if (hardware_threads() >= 4 && batch_ratio <= 1.0) {
    // Stacking amortizes per-pass fixed cost; its pool fan-out share only
    // exists with real worker threads, so the gate needs cores too.
    std::printf("WARNING: batched inference did not beat one-at-a-time\n");
    ok = false;
  }
  if (hardware_threads() >= 4 && sched_ratio < 0.8) {
    // Readiness scheduling should at worst tie round-robin on a mixed
    // load; a big regression means the executor is starving sessions.
    std::printf("WARNING: graph scheduling well below round-robin\n");
    ok = false;
  }
  if (hardware_threads() >= 4) {
    if (telemetry_ratio < 0.97) {
      // The instruments must be cheap enough to stay on in production.
      std::printf("WARNING: telemetry overhead ratio %.3f below 0.97x\n",
                  telemetry_ratio);
      ok = false;
    }
  } else {
    std::printf("note: %zu pool thread(s) — telemetry overhead gate "
                "informational (ratio %.3f; needs >= 4 cores)\n",
                hardware_threads(), telemetry_ratio);
  }
  if (hardware_threads() >= 4) {
    if (ops_ratio < 0.97) {
      // Lineage tracing + watchdog + endpoint must be cheap enough to
      // stay on wherever the server runs.
      std::printf("WARNING: ops-plane overhead ratio %.3f below 0.97x\n",
                  ops_ratio);
      ok = false;
    }
  } else {
    std::printf("note: %zu pool thread(s) — ops-plane overhead gate "
                "informational (ratio %.3f; needs >= 4 cores)\n",
                hardware_threads(), ops_ratio);
  }
  return ok ? 0 : 1;
}
