// Streaming-runtime benchmark: quantifies the cached-ToF-plan win.
//
// Part 1 times the ToF stage alone — per-frame us::tof_correct (geometry
// rebuilt every frame, the pre-runtime behavior) against us::TofPlan::apply
// through the plan cache (geometry built once, every frame pays only the
// gather). Part 2 runs the full source -> ToF -> DAS -> envelope/log
// pipeline both ways and prints per-stage latency. Part 3 checks that the
// streamed B-mode frame is numerically identical to the one-shot path.
// Results are also written to bench_out/BENCH_pipeline.json so the perf
// trajectory can be tracked across PRs.
//
//   ./bench_pipeline [--quick] [--frames N]
//
// Defaults to the paper-scale frame (128 channels, 368 x 128 grid);
// --quick switches to the reduced bench scale (32 channels, 192 x 64).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "beamform/das.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dsp/hilbert.hpp"
#include "runtime/pipeline.hpp"
#include "us/plan_cache.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/tof.hpp"

namespace {

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [--quick] [--frames N] [--help]\n"
      "  --quick     reduced scene (32 channels, 192 x 64 grid) instead of\n"
      "              the paper-scale frame (128 channels, 368 x 128)\n"
      "  --frames N  frames per timed pipeline run (default 16)\n"
      "  --help      show this message\n",
      argv0);
}

void print_stage_table(const tvbf::rt::PipelineReport& rep) {
  std::printf("    %-12s %8s %8s %8s\n", "stage", "mean ms", "min ms",
              "max ms");
  for (const auto& s : rep.stages) {
    if (s.frames == 0) continue;
    std::printf("    %-12s %8.2f %8.2f %8.2f\n", s.name.c_str(),
                s.mean_s() * 1e3, s.min_s * 1e3, s.max_s * 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tvbf;
  bool quick = false;
  std::int64_t pipeline_frames = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      pipeline_frames = std::atoll(argv[++i]);
      if (pipeline_frames < 1) {
        std::fprintf(stderr, "%s: --frames needs a positive count\n", argv[0]);
        return 1;
      }
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      print_usage(argv[0]);
      return 1;
    }
  }

  const us::Probe probe = quick ? us::Probe::test_probe(32)
                                : us::Probe::l11_5v();
  const us::ImagingGrid grid =
      quick ? us::ImagingGrid::reduced(probe, 192, 64)
            : us::ImagingGrid::paper(probe);
  std::printf("scene: %lld channels, %lld x %lld grid (%s)\n",
              static_cast<long long>(probe.num_elements),
              static_cast<long long>(grid.nz),
              static_cast<long long>(grid.nx),
              quick ? "reduced" : "paper scale");

  // One acquisition, replayed as the frame stream. Sparse speckle keeps the
  // one-time simulation cheap; the ToF/beamform cost is phantom independent.
  Rng rng(7);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  us::SpeckleOptions speckle;
  speckle.density_per_mm2 = 0.5;
  const us::Phantom phantom = us::make_contrast_phantom(
      rng, {0.35 * grid.z_end(), 0.7 * grid.z_end()}, 2.5e-3, region, speckle);
  us::SimParams sim = us::SimParams::in_silico();
  sim.max_depth = grid.z_end() + 3e-3;
  Timer t;
  const us::Acquisition acq = us::simulate_plane_wave(probe, phantom, 0.0, sim);
  std::printf("simulated %lld samples x %lld channels in %.2f s\n\n",
              static_cast<long long>(acq.num_samples()),
              static_cast<long long>(acq.num_channels()), t.seconds());

  // ---- part 1: ToF stage, per-frame geometry vs cached plan ---------------
  us::PlanCache::instance().clear();
  const std::int64_t n_base = quick ? 10 : 5;
  const std::int64_t n_cached = quick ? 50 : 25;

  us::TofCube scratch = us::tof_correct(acq, grid, {});  // warm-up
  t.reset();
  for (std::int64_t i = 0; i < n_base; ++i)
    scratch = us::tof_correct(acq, grid, {});
  const double per_frame_s = t.seconds() / static_cast<double>(n_base);

  const auto plan = us::PlanCache::instance().get_for(acq, grid);
  us::ChannelWorkspace workspace;
  us::TofCube cached_cube;
  plan->apply(acq, false, cached_cube, &workspace);  // warm-up + buffers
  t.reset();
  for (std::int64_t i = 0; i < n_cached; ++i)
    plan->apply(acq, false, cached_cube, &workspace);
  const double cached_s = t.seconds() / static_cast<double>(n_cached);

  const float tof_diff = max_abs_diff(scratch.real, cached_cube.real);
  std::printf("ToF stage (per frame):\n");
  std::printf("  per-frame tof_correct  %8.2f ms  (%6.1f frames/s)\n",
              per_frame_s * 1e3, 1.0 / per_frame_s);
  std::printf("  cached TofPlan::apply  %8.2f ms  (%6.1f frames/s)\n",
              cached_s * 1e3, 1.0 / cached_s);
  std::printf("  speedup %.2fx, max |diff| %.3g\n\n", per_frame_s / cached_s,
              static_cast<double>(tof_diff));

  // ---- part 2: full streaming pipeline, both ToF paths --------------------
  auto das = std::make_shared<bf::DasBeamformer>(probe);
  auto make_source = [&] {
    return std::make_shared<rt::ReplaySource>(
        std::vector<us::Acquisition>{acq}, pipeline_frames);
  };
  rt::PipelineConfig cfg;
  cfg.grid = grid;

  cfg.use_plan_cache = false;
  cfg.overlap = false;
  rt::Pipeline baseline(make_source(), das, cfg);
  const auto rep_base = baseline.run();

  cfg.use_plan_cache = true;
  cfg.overlap = true;
  rt::Pipeline streaming(make_source(), das, cfg);
  const auto rep_stream = streaming.run();

  std::printf("full pipeline (%lld frames, source -> ToF -> DAS -> "
              "envelope/log):\n",
              static_cast<long long>(pipeline_frames));
  std::printf("  per-frame tof_correct  %6.1f frames/s\n", rep_base.fps());
  print_stage_table(rep_base);
  std::printf("  plan-cached streaming  %6.1f frames/s  (cache: %llu hits, "
              "%llu misses)\n",
              rep_stream.fps(),
              static_cast<unsigned long long>(rep_stream.plan_cache_hits),
              static_cast<unsigned long long>(rep_stream.plan_cache_misses));
  print_stage_table(rep_stream);
  std::printf("  end-to-end speedup %.2fx\n\n",
              rep_stream.fps() / rep_base.fps());

  // ---- part 3: streamed output == one-shot image --------------------------
  Tensor streamed_db;
  rt::Pipeline check(make_source(), das, cfg);
  check.run([&](const rt::FrameOutput& out) { streamed_db = out.db; });
  const Tensor reference_db = dsp::log_compress(
      dsp::envelope_iq(das->beamform(us::tof_correct(acq, grid, {}))), 60.0);
  const float db_diff = max_abs_diff(streamed_db, reference_db);
  const bool match = db_diff <= 1e-4f;
  std::printf("streamed vs one-shot B-mode: max |diff| %.3g dB -> %s\n",
              static_cast<double>(db_diff), match ? "MATCH" : "MISMATCH");

  benchx::BenchJson json;
  json.add("tof_stage", "per_frame_ms", per_frame_s * 1e3, "ms");
  json.add("tof_stage", "cached_plan_ms", cached_s * 1e3, "ms");
  json.add("tof_stage", "speedup", per_frame_s / cached_s, "x");
  json.add("pipeline", "baseline_fps", rep_base.fps(), "fps");
  json.add("pipeline", "streaming_fps", rep_stream.fps(), "fps");
  json.add("pipeline", "speedup", rep_stream.fps() / rep_base.fps(), "x");
  json.add("parity", "streamed_vs_oneshot_max_diff",
           static_cast<double>(db_diff), "dB");
  json.write("BENCH_pipeline.json");

  const bool tof_fast_enough = per_frame_s / cached_s >= 2.0;
  if (!tof_fast_enough)
    std::printf("WARNING: plan-cached ToF speedup below 2x\n");
  return match && tof_fast_enough ? 0 : 1;
}
