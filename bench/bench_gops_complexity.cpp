// Computational-complexity comparison (the paper's headline numbers):
// Tiny-VBF 0.34, FCNN 1.4, Tiny-CNN 11.7, CNN[8] 50, MVDR 98.78,
// CNN[9] 199 GOPs/frame at 368 x 128.
#include <cstdio>

#include "bench_common.hpp"
#include "models/complexity.hpp"

int main() {
  using namespace tvbf;
  const std::int64_t nz = 368, nx = 128, nch = 128;
  Rng rng(1);
  const models::TinyVbf vbf(models::TinyVbfConfig::paper(), rng);
  const models::TinyCnn cnn(models::TinyCnnConfig::paper(), rng);
  const models::Fcnn fcnn(models::FcnnConfig::paper(), rng);

  benchx::print_header("GOPs/frame at 368 x 128 (paper vs measured count)");
  std::printf("%-28s %10s %12s   %s\n", "method", "paper", "measured", "note");
  std::printf("%-28s %10.2f %12.3f   %s\n", "Tiny-VBF (ours)", 0.34,
              static_cast<double>(vbf.ops_per_frame(nz)) / 1e9,
              "counted from config");
  std::printf("%-28s %10.2f %12.3f   %s\n", "FCNN [6]", 1.4,
              static_cast<double>(fcnn.ops_per_frame(nz, nx)) / 1e9,
              "counted from config");
  std::printf("%-28s %10.2f %12.3f   %s\n", "Tiny-CNN [7]", 11.7,
              static_cast<double>(cnn.ops_per_frame(nz, nx)) / 1e9,
              "counted from config");
  std::printf("%-28s %10.2f %12.3f   %s\n", "DAS", 0.0,
              static_cast<double>(models::das_ops_per_frame(nz, nx, nch)) / 1e9,
              "classical reference (paper omits)");
  std::printf("%-28s %10.2f %12.3f   %s\n", "MVDR (subaperture 64)", 98.78,
              static_cast<double>(models::mvdr_ops_per_frame(nz, nx, nch, 64)) /
                  1e9,
              "counted from our implementation");
  for (const auto& e : models::literature_complexity())
    if (!e.measured && e.name.find("MVDR") == std::string::npos)
      std::printf("%-28s %10.2f %12s   %s\n", e.name.c_str(),
                  e.gops_per_frame, "-", e.note.c_str());

  benchx::print_header("Parameter counts");
  std::printf("Tiny-VBF: %lld weights (paper: 1,507,922 — dimensions not "
              "published; see EXPERIMENTS.md)\n",
              static_cast<long long>(vbf.num_parameters()));
  std::printf("Tiny-CNN: %lld weights, FCNN: %lld weights\n",
              static_cast<long long>(cnn.num_parameters()),
              static_cast<long long>(fcnn.num_parameters()));

  const double vbf_g = static_cast<double>(vbf.ops_per_frame(nz)) / 1e9;
  const double cnn_g = static_cast<double>(cnn.ops_per_frame(nz, nx)) / 1e9;
  const double fcnn_g = static_cast<double>(fcnn.ops_per_frame(nz, nx)) / 1e9;
  std::printf("\nshape check: Tiny-VBF < FCNN < Tiny-CNN: %s\n",
              (vbf_g < fcnn_g && fcnn_g < cnn_g) ? "yes" : "NO");
  return 0;
}
