// Inference-time comparison (Section IV text): per-frame CPU time of
// Tiny-VBF vs Tiny-CNN vs FCNN vs DAS vs MVDR. The paper quotes, at
// 368 x 128 on a Xeon 2vCPU: Tiny-VBF 0.230 s, Tiny-CNN 0.520 s, CNN[8] 4 s,
// MVDR 240 s. Shape target: Tiny-VBF < Tiny-CNN << MVDR.
//
// google-benchmark binary; paper-scale cases run a single iteration each
// (MVDR at full scale is deliberately expensive — that is the point).
#include <benchmark/benchmark.h>

#include "beamform/das.hpp"
#include "beamform/mvdr.hpp"
#include "common/rng.hpp"
#include "models/fcnn.hpp"
#include "models/tiny_cnn.hpp"
#include "models/tiny_vbf.hpp"
#include "us/tof.hpp"

namespace {

using namespace tvbf;

Tensor random_cube(std::int64_t nz, std::int64_t nx, std::int64_t nch,
                   std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({nz, nx, nch});
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

us::TofCube random_tof_cube(std::int64_t nz, std::int64_t nx, std::int64_t nch,
                            bool analytic) {
  us::TofCube cube;
  cube.grid = us::ImagingGrid::reduced(us::Probe::test_probe(nch), nz, nx);
  cube.real = random_cube(nz, nx, nch, 1);
  if (analytic) cube.imag = random_cube(nz, nx, nch, 2);
  return cube;
}

// ---- paper scale (368 x 128, 128 channels), one iteration each ------------

void BM_TinyVbf_PaperScale(benchmark::State& state) {
  Rng rng(1);
  const models::TinyVbf model(models::TinyVbfConfig::paper(), rng);
  const Tensor input = random_cube(368, 128, 128, 3);
  for (auto _ : state) benchmark::DoNotOptimize(model.infer(input));
  state.counters["GOPs/frame"] =
      static_cast<double>(model.ops_per_frame(368)) / 1e9;
}
BENCHMARK(BM_TinyVbf_PaperScale)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TinyCnn_PaperScale(benchmark::State& state) {
  Rng rng(1);
  const models::TinyCnn model(models::TinyCnnConfig::paper(), rng);
  const Tensor input = random_cube(368, 128, 128, 3);
  for (auto _ : state) benchmark::DoNotOptimize(model.infer(input));
  state.counters["GOPs/frame"] =
      static_cast<double>(model.ops_per_frame(368, 128)) / 1e9;
}
BENCHMARK(BM_TinyCnn_PaperScale)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Fcnn_PaperScale(benchmark::State& state) {
  Rng rng(1);
  const models::Fcnn model(models::FcnnConfig::paper(), rng);
  const Tensor input = random_cube(368, 128, 128, 3);
  for (auto _ : state) benchmark::DoNotOptimize(model.infer(input));
  state.counters["GOPs/frame"] =
      static_cast<double>(model.ops_per_frame(368, 128)) / 1e9;
}
BENCHMARK(BM_Fcnn_PaperScale)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Das_PaperScale(benchmark::State& state) {
  const us::Probe probe = us::Probe::l11_5v();
  const bf::DasBeamformer das(probe);
  us::TofCube cube = random_tof_cube(368, 128, 128, false);
  cube.grid = us::ImagingGrid::paper(probe);
  for (auto _ : state) benchmark::DoNotOptimize(das.beamform(cube));
}
BENCHMARK(BM_Das_PaperScale)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Mvdr_PaperScale(benchmark::State& state) {
  // Paper quotes 240 s/frame for MVDR on CPU; ours is threaded, but the
  // O(L^3) per-pixel cost still dominates the whole comparison.
  bf::MvdrParams params;
  params.subaperture = 64;
  const bf::MvdrBeamformer mvdr(params);
  const us::TofCube cube = random_tof_cube(368, 128, 128, true);
  for (auto _ : state) benchmark::DoNotOptimize(mvdr.beamform(cube));
}
BENCHMARK(BM_Mvdr_PaperScale)->Unit(benchmark::kMillisecond)->Iterations(1);

// ---- reduced scale (192 x 64, 32 channels), statistically sampled ----------

void BM_TinyVbf_Reduced(benchmark::State& state) {
  Rng rng(1);
  models::TinyVbfConfig cfg;
  cfg.in_channels = 32;
  cfg.num_lateral = 64;
  const models::TinyVbf model(cfg, rng);
  const Tensor input = random_cube(192, 64, 32, 3);
  for (auto _ : state) benchmark::DoNotOptimize(model.infer(input));
}
BENCHMARK(BM_TinyVbf_Reduced)->Unit(benchmark::kMillisecond);

void BM_Mvdr_Reduced(benchmark::State& state) {
  bf::MvdrParams params;
  params.subaperture = 12;
  const bf::MvdrBeamformer mvdr(params);
  const us::TofCube cube = random_tof_cube(192, 64, 32, true);
  for (auto _ : state) benchmark::DoNotOptimize(mvdr.beamform(cube));
}
BENCHMARK(BM_Mvdr_Reduced)->Unit(benchmark::kMillisecond);

void BM_Das_Reduced(benchmark::State& state) {
  const bf::DasBeamformer das(us::Probe::test_probe(32));
  const us::TofCube cube = random_tof_cube(192, 64, 32, false);
  for (auto _ : state) benchmark::DoNotOptimize(das.beamform(cube));
}
BENCHMARK(BM_Das_Reduced)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
