// Table III reproduction: the hybrid quantization bit-width assignments.
// This bench echoes the implemented schemes next to the published table and
// verifies the derived fixed-point formats.
#include <cstdio>

#include "bench_common.hpp"
#include "quant/scheme.hpp"

int main() {
  using tvbf::quant::QuantScheme;
  tvbf::benchx::print_header("Table III — hybrid quantization bit-widths");
  std::printf("%-22s %10s %10s\n", "", "Hybrid-1", "Hybrid-2");
  const QuantScheme h1 = QuantScheme::hybrid1();
  const QuantScheme h2 = QuantScheme::hybrid2();
  std::printf("%-22s %7d    %7d     (paper: 8 / 8)\n", "Weights [bits]",
              h1.weight_bits, h2.weight_bits);
  std::printf("%-22s %7d    %7d     (paper: 24 / 24)\n", "Softmax [bits]",
              h1.softmax_bits, h2.softmax_bits);
  std::printf("%-22s %7d    %7d     (paper: 20 / 16)\n", "Mul/Add ops [bits]",
              h1.op_bits, h2.op_bits);
  std::printf("%-22s %7d    %7d     (paper: 20 / 16)\n",
              "Intermediate [bits]", h1.inter_bits, h2.inter_bits);

  std::printf("\nDerived fixed-point formats (bits, fractional bits):\n");
  for (const auto& s : QuantScheme::paper_levels()) {
    if (s.is_float) {
      std::printf("  %-10s float32 everywhere\n", s.name.c_str());
      continue;
    }
    const auto op = s.op_format();
    const auto inter = s.inter_format();
    const auto sm = s.softmax_format();
    std::printf("  %-10s op Q%d.%d   intermediate Q%d.%d   softmax Q%d.%d\n",
                s.name.c_str(), op.bits - op.frac_bits, op.frac_bits,
                inter.bits - inter.frac_bits, inter.frac_bits,
                sm.bits - sm.frac_bits, sm.frac_bits);
  }
  return 0;
}
