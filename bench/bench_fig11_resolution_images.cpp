// Figs 11 and 13 reproduction: B-mode images of the resolution-distortion
// datasets (point-target rows at two depths) for all four beamformers,
// written as PGMs into bench_out/.
#include <cstdio>

#include "bench_common.hpp"
#include "io/writers.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"

namespace {

using namespace tvbf;

void run(const benchx::Scene& scene, const benchx::ModelSet& models,
         bool vitro) {
  const char* tag = vitro ? "vitro" : "silico";
  const char* fig = vitro ? "fig13" : "fig11";
  const us::Phantom phantom = benchx::resolution_phantom(scene);
  const auto envs = benchx::envelopes_for_phantom(
      scene, models, phantom, benchx::sim_preset(scene, vitro));
  benchx::print_header(std::string(fig) + " — point-target B-mode (" + tag +
                       ")");
  for (const auto& [name, env] : envs) {
    const Tensor db = metrics::bmode_db(env, 60.0);
    std::string fname = std::string(benchx::kOutDir) + "/" + fig + "_" + tag +
                        "_" + name + ".pgm";
    for (auto& c : fname)
      if (c == ' ') c = '_';
    io::write_pgm_db(fname, db, 60.0);
    const auto w =
        metrics::mean_psf_widths(env, scene.grid, phantom.points, 2.0);
    std::printf("%-10s wrote %-44s  FWHM ax %.3f mm lat %.3f mm\n",
                name.c_str(), fname.c_str(), w.axial_mm, w.lateral_mm);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchx::want_full(argc, argv);
  const auto scene = benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Figs 11/13 (resolution B-mode images)\n");
  io::ensure_directory(benchx::kOutDir);
  const auto models = benchx::get_trained_models(scene);
  run(scene, models, /*vitro=*/false);
  run(scene, models, /*vitro=*/true);
  return 0;
}
