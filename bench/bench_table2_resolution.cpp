// Table II reproduction: axial / lateral FWHM resolution of the four
// beamformers on in-silico and in-vitro point-target phantoms.
//
// Shape targets (paper): MVDR ~ Tiny-VBF < DAS ~ Tiny-CNN on both axes.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "metrics/resolution.hpp"

namespace {

using namespace tvbf;

struct PaperRow {
  double axial, lateral;
};

const std::map<std::string, PaperRow> kPaperSim = {
    {"DAS", {0.364, 0.60}},
    {"MVDR", {0.297, 0.45}},
    {"Tiny-CNN", {0.368, 0.60}},
    {"Tiny-VBF", {0.303, 0.45}},
};
const std::map<std::string, PaperRow> kPaperVitro = {
    {"DAS", {0.459, 0.60}},
    {"MVDR", {0.459, 0.48}},
    {"Tiny-CNN", {0.466, 0.72}},
    {"Tiny-VBF", {0.444, 0.48}},
};

void run(const benchx::Scene& scene, const benchx::ModelSet& models,
         bool vitro) {
  const auto& paper = vitro ? kPaperVitro : kPaperSim;
  benchx::print_header(std::string("Table II — resolution (FWHM mm), ") +
                       (vitro ? "phantom (in-vitro preset)" : "simulation"));
  const us::Phantom phantom = benchx::resolution_phantom(scene);
  const auto envs = benchx::envelopes_for_phantom(
      scene, models, phantom, benchx::sim_preset(scene, vitro));
  std::printf("%-12s %24s %30s\n", "", "paper (axial, lateral)",
              "measured (axial, lateral)");
  double lat_das = 0.0, lat_vbf = 0.0, lat_mvdr = 0.0;
  for (const auto& [name, env] : envs) {
    const auto w = metrics::mean_psf_widths(env, scene.grid, phantom.points,
                                            /*search_mm=*/2.0);
    const auto& p = paper.at(name);
    std::printf("%-12s   %8.3f %8.3f      |    %8.3f %8.3f\n", name.c_str(),
                p.axial, p.lateral, w.axial_mm, w.lateral_mm);
    if (name == "DAS") lat_das = w.lateral_mm;
    if (name == "MVDR") lat_mvdr = w.lateral_mm;
    if (name == "Tiny-VBF") lat_vbf = w.lateral_mm;
  }
  std::printf("shape check: Tiny-VBF lateral <= DAS: %s | MVDR <= DAS: %s\n",
              lat_vbf <= lat_das ? "yes" : "NO",
              lat_mvdr <= lat_das ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = tvbf::benchx::want_full(argc, argv);
  const auto scene = tvbf::benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Table II (resolution), scale %s\n",
              full ? "FULL" : "reduced");
  const auto models = tvbf::benchx::get_trained_models(scene);
  run(scene, models, /*vitro=*/false);
  run(scene, models, /*vitro=*/true);
  return 0;
}
