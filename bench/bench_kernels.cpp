// Micro-benchmarks of the substrate kernels: FFT, analytic signal, matmul,
// conv2d, ToF correction, PE dot products, fixed-point quantization.
#include <benchmark/benchmark.h>

#include "accel/pe.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/hilbert.hpp"
#include "kernels/conv.hpp"
#include "kernels/gemm.hpp"
#include "nn/modules.hpp"
#include "quant/fixed_point.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"
#include "us/simulator.hpp"
#include "us/tof.hpp"

namespace {

using namespace tvbf;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_AnalyticSignal(benchmark::State& state) {
  Rng rng(2);
  std::vector<float> x(static_cast<std::size_t>(state.range(0)));
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(dsp::analytic_signal(x));
}
BENCHMARK(BM_AnalyticSignal)->Arg(1024)->Arg(4096);

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor a({n, n}), b({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// ---- blocked kernels vs the preserved reference implementations ----------
// Single-threaded by construction: the serial `_rows` entry points are
// invoked directly, so new-vs-reference is a pure kernel comparison with no
// pool scheduling in either lane.

void BM_GemmBlockedSingle(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(30);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    kernels::gemm_rows(a.raw(), b.raw(), c.raw(), n, n, n, 0, n);
    benchmark::DoNotOptimize(c.raw());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmBlockedSingle)->Arg(128)->Arg(256);

void BM_GemmReferenceSingle(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(30);
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    kernels::gemm_reference_rows(a.raw(), b.raw(), c.raw(), n, n, n, 0, n);
    benchmark::DoNotOptimize(c.raw());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmReferenceSingle)->Arg(128)->Arg(256);

kernels::Conv2dShape conv_bench_shape() {
  return {.H = 96, .W = 64, .Ci = 32, .kh = 3, .kw = 3, .Co = 8};
}

void BM_Conv2dBlockedSingle(benchmark::State& state) {
  Rng rng(31);
  const kernels::Conv2dShape s = conv_bench_shape();
  Tensor x({s.H, s.W, s.Ci}), k({s.kh, s.kw, s.Ci, s.Co}),
      out({s.H, s.W, s.Co});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : k.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    kernels::conv2d_same_forward_rows(x.raw(), k.raw(), out.raw(), s, 0, s.H);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_Conv2dBlockedSingle)->Unit(benchmark::kMillisecond);

void BM_Conv2dReferenceSingle(benchmark::State& state) {
  Rng rng(31);
  const kernels::Conv2dShape s = conv_bench_shape();
  Tensor x({s.H, s.W, s.Ci}), k({s.kh, s.kw, s.Ci, s.Co}),
      out({s.H, s.W, s.Co});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : k.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    kernels::conv2d_same_forward_reference(x.raw(), k.raw(), out.raw(), s);
    benchmark::DoNotOptimize(out.raw());
  }
}
BENCHMARK(BM_Conv2dReferenceSingle)->Unit(benchmark::kMillisecond);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  const nn::Conv2D conv(3, 3, 32, 8, rng);
  Tensor x({96, 64, 32});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state)
    benchmark::DoNotOptimize(conv.forward(nn::constant(x)).value());
}
BENCHMARK(BM_Conv2dForward)->Unit(benchmark::kMillisecond);

void BM_PlaneWaveSim(benchmark::State& state) {
  const us::Probe probe = us::Probe::test_probe(32);
  Rng rng(5);
  us::Region region;
  us::SpeckleOptions opt;
  opt.density_per_mm2 = 1.0;
  const us::Phantom ph = us::make_speckle(region, opt, rng);
  us::SimParams params = us::SimParams::in_silico();
  for (auto _ : state)
    benchmark::DoNotOptimize(us::simulate_plane_wave(probe, ph, 0.0, params));
  state.counters["scatterers"] = static_cast<double>(ph.size());
}
BENCHMARK(BM_PlaneWaveSim)->Unit(benchmark::kMillisecond);

void BM_TofCorrection(benchmark::State& state) {
  const us::Probe probe = us::Probe::test_probe(32);
  const us::ImagingGrid grid = us::ImagingGrid::reduced(probe, 192, 64);
  const us::Phantom ph = us::make_single_point(20e-3);
  const us::Acquisition acq =
      us::simulate_plane_wave(probe, ph, 0.0, us::SimParams::in_silico());
  const bool analytic = state.range(0) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        us::tof_correct(acq, grid, {.analytic = analytic}));
}
BENCHMARK(BM_TofCorrection)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PeDot16(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> a(16), b(16);
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal());
    b[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal());
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(accel::ProcessingElement::dot16(a, b));
}
BENCHMARK(BM_PeDot16);

void BM_QuantizeTensor(benchmark::State& state) {
  Rng rng(7);
  Tensor t({512, 512});
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  const quant::FixedFormat fmt = quant::activation_format(16, 4);
  for (auto _ : state) {
    Tensor q = t;
    quant::quantize_tensor_inplace(q, fmt);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QuantizeTensor)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
