// Accelerator schedule report: per-layer cycles on the 4-PE array for a
// paper-scale Tiny-VBF frame (Figs 5-8 dataflow), frame latency at 100 MHz,
// and the comparison against the CPU inference times quoted in the paper.
#include <cstdio>

#include "accel/accelerator.hpp"
#include "bench_common.hpp"

int main() {
  using namespace tvbf;
  const accel::AcceleratorSim sim;
  const auto cfg = models::TinyVbfConfig::paper();
  const auto rep = sim.run_tiny_vbf(cfg, 368);

  benchx::print_header("Accelerator schedule — Tiny-VBF 368 x 128 frame");
  std::printf("%-16s %14s %12s\n", "op", "MACs", "cycles");
  // Per-layer lines for the first block plus totals (block 1 repeats).
  std::int64_t shown = 0;
  for (const auto& op : rep.ops) {
    if (op.name.rfind("blk1.", 0) == 0) continue;  // identical to blk0
    std::printf("%-16s %14lld %12lld\n", op.name.c_str(),
                static_cast<long long>(op.macs),
                static_cast<long long>(op.cycles));
    ++shown;
  }
  std::printf("(block 1 repeats block 0; %zu ops total)\n", rep.ops.size());
  std::printf("\ntotal: %lld MACs, %lld cycles, %.3f ms/frame @ 100 MHz, "
              "PE utilization %.1f%%\n",
              static_cast<long long>(rep.total_macs),
              static_cast<long long>(rep.total_cycles),
              rep.latency_seconds * 1e3, rep.utilization * 100.0);
  std::printf("=> %.0f frames/s on the accelerator vs the paper's CPU "
              "baselines: Tiny-VBF 0.230 s, Tiny-CNN 0.520 s, CNN[8] 4 s, "
              "MVDR 240 s per frame\n",
              1.0 / rep.latency_seconds);

  benchx::print_header("Scaling with PE count (ablation)");
  for (std::int64_t pes : {1, 2, 4, 8}) {
    accel::AccelConfig c;
    c.num_pes = pes;
    const accel::AcceleratorSim s(c);
    const auto r = s.run_tiny_vbf(cfg, 368);
    std::printf("%lld PEs: %8.3f ms/frame, utilization %.1f%%\n",
                static_cast<long long>(pes), r.latency_seconds * 1e3,
                r.utilization * 100.0);
  }
  return 0;
}
