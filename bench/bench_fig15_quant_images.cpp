// Fig 15 reproduction: B-mode images produced by the (simulated) FPGA
// datapath at every quantization level, simulation and phantom contrast
// data. The paper's observation — "significant degradation in image quality
// with 16-bit quantization" — is checked via the image-level error vs float.
#include <cstdio>

#include "bench_common.hpp"
#include "dsp/hilbert.hpp"
#include "io/writers.hpp"
#include "metrics/image_quality.hpp"
#include "quant/quantized_tiny_vbf.hpp"
#include "tensor/tensor_ops.hpp"

namespace {

using namespace tvbf;

void run(const benchx::Scene& scene, const benchx::ModelSet& models,
         bool vitro) {
  const char* tag = vitro ? "vitro" : "silico";
  const us::Phantom phantom = benchx::contrast_phantom(scene, vitro);
  const us::Acquisition acq = us::simulate_plane_wave(
      scene.probe, phantom, 0.0, benchx::sim_preset(scene, vitro));
  const Tensor input =
      models::normalized_input(us::tof_correct(acq, scene.grid, {}));

  benchx::print_header(std::string("Fig 15 — quantized B-mode images (") +
                       tag + ")");
  Tensor float_iq;
  for (const auto& scheme : quant::QuantScheme::paper_levels()) {
    const quant::QuantizedTinyVbf q(*models.vbf, scheme);
    const Tensor iq = q.infer(input);
    if (scheme.is_float) float_iq = iq;
    const Tensor db = metrics::bmode_db(dsp::envelope_iq(iq), 60.0);
    std::string fname = std::string(benchx::kOutDir) + "/fig15_" + tag + "_" +
                        scheme.name + ".pgm";
    for (auto& c : fname)
      if (c == ' ') c = '_';
    io::write_pgm_db(fname, db, 60.0);
    const double err = quant::rms_quant_error(float_iq, iq);
    std::printf("%-9s wrote %-40s  IQ RMS error vs float: %.5f%s\n",
                scheme.name.c_str(), fname.c_str(), err,
                scheme.is_float ? " (reference)" : "");
  }
  std::printf("shape: 24/20-bit and hybrids stay close to float; 16-bit "
              "shows the largest deviation.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchx::want_full(argc, argv);
  const auto scene = benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Fig 15 (quantized B-mode images)\n");
  io::ensure_directory(benchx::kOutDir);
  const auto models = benchx::get_trained_models(scene);
  run(scene, models, /*vitro=*/false);
  run(scene, models, /*vitro=*/true);
  return 0;
}
