// Ablation bench (beyond the paper's tables): design choices DESIGN.md
// calls out.
//  1. CPWC angle sweep — the frame-rate/quality trade-off the paper's
//     introduction uses to motivate single-angle learned beamforming.
//  2. DAS apodization window and f-number ablation.
//  3. Coherence-factor DAS as a cheap adaptive middle ground.
//  4. MVDR subaperture sweep (resolution vs speckle statistics).
#include <cstdio>

#include "beamform/coherence_factor.hpp"
#include "beamform/compounding.hpp"
#include "bench_common.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"

int main(int argc, char** argv) {
  using namespace tvbf;
  const auto scene = benchx::make_scene(benchx::want_full(argc, argv));
  const us::SimParams sim = benchx::sim_preset(scene, /*vitro=*/false);
  const us::Phantom cysts = benchx::contrast_phantom(scene, false);
  const us::Phantom points = benchx::resolution_phantom(scene);

  // --- 1. CPWC angle sweep --------------------------------------------------
  benchx::print_header("CPWC: image quality vs transmit angles (frame-rate "
                       "trade-off)");
  std::printf("%7s %10s %10s %12s %14s\n", "angles", "CR [dB]", "CNR",
              "lat FWHM", "rel frame rate");
  for (std::int64_t n : {1, 3, 5, 9}) {
    bf::CompoundingParams p;
    p.num_angles = n;
    const Tensor iq_c =
        bf::compound_plane_waves(scene.probe, cysts, scene.grid, sim, p);
    const auto m = metrics::mean_contrast(dsp::envelope_iq(iq_c), scene.grid,
                                          cysts.cysts);
    const Tensor iq_p =
        bf::compound_plane_waves(scene.probe, points, scene.grid, sim, p);
    const auto w = metrics::mean_psf_widths(dsp::envelope_iq(iq_p),
                                            scene.grid, points.points, 2.0);
    std::printf("%7lld %10.2f %10.2f %9.3f mm %13.2fx\n",
                static_cast<long long>(n), m.cr_db, m.cnr, w.lateral_mm,
                1.0 / static_cast<double>(n));
  }
  std::printf("(single-angle Tiny-VBF targets the 1-angle row's frame rate "
              "with multi-angle-like quality)\n");

  const us::Acquisition acq =
      us::simulate_plane_wave(scene.probe, cysts, 0.0, sim);
  const us::TofCube rf = us::tof_correct(acq, scene.grid, {});
  const us::TofCube iq_cube =
      us::tof_correct(acq, scene.grid, {.analytic = true});

  // --- 2. DAS apodization ablation -------------------------------------------
  benchx::print_header("DAS apodization ablation (single angle)");
  const us::Acquisition acq_pt =
      us::simulate_plane_wave(scene.probe, points, 0.0, sim);
  const us::TofCube rf_pt = us::tof_correct(acq_pt, scene.grid, {});
  for (const auto& [label, wk, fnum] :
       {std::tuple{"boxcar f/1.75", dsp::WindowKind::kBoxcar, 1.75},
        std::tuple{"hann   f/1.75", dsp::WindowKind::kHann, 1.75},
        std::tuple{"tukey  f/1.75", dsp::WindowKind::kTukey25, 1.75},
        std::tuple{"boxcar f/1.00", dsp::WindowKind::kBoxcar, 1.0},
        std::tuple{"boxcar full  ", dsp::WindowKind::kBoxcar, 0.0}}) {
    bf::ApodizationParams ap;
    ap.window = wk;
    ap.f_number = fnum;
    const bf::DasBeamformer das(scene.probe, ap);
    const auto m = metrics::mean_contrast(
        dsp::envelope_iq(das.beamform(rf)), scene.grid, cysts.cysts);
    const auto w = metrics::mean_psf_widths(
        dsp::envelope_iq(das.beamform(rf_pt)), scene.grid, points.points, 2.0);
    std::printf("%s  CR %6.2f dB  CNR %5.2f  lat %6.3f mm\n", label, m.cr_db,
                m.cnr, w.lateral_mm);
  }

  // --- 3. Coherence-factor DAS ----------------------------------------------
  benchx::print_header("Coherence-factor DAS (adaptive, O(N) per pixel)");
  const us::TofCube iq_pt =
      us::tof_correct(acq_pt, scene.grid, {.analytic = true});
  for (double gamma : {0.5, 1.0, 2.0}) {
    const bf::CoherenceFactorBeamformer cf(scene.probe, gamma);
    const auto m = metrics::mean_contrast(
        dsp::envelope_iq(cf.beamform(iq_cube)), scene.grid, cysts.cysts);
    const auto w = metrics::mean_psf_widths(
        dsp::envelope_iq(cf.beamform(iq_pt)), scene.grid, points.points, 2.0);
    std::printf("gamma %.1f  CR %6.2f dB  CNR %5.2f  lat %6.3f mm\n", gamma,
                m.cr_db, m.cnr, w.lateral_mm);
  }

  // --- 4. MVDR subaperture sweep ---------------------------------------------
  benchx::print_header("MVDR subaperture sweep (resolution vs statistics)");
  const std::int64_t nch = scene.probe.num_elements;
  for (std::int64_t L : {nch / 4, 3 * nch / 8, nch / 2, 3 * nch / 4}) {
    bf::MvdrParams mp = scene.mvdr;
    mp.subaperture = L;
    const bf::MvdrBeamformer mvdr(mp);
    const auto m = metrics::mean_contrast(
        dsp::envelope_iq(mvdr.beamform(iq_cube)), scene.grid, cysts.cysts);
    const auto w = metrics::mean_psf_widths(
        dsp::envelope_iq(mvdr.beamform(iq_pt)), scene.grid, points.points,
        2.0);
    std::printf("L = %2lld  CR %6.2f dB  CNR %5.2f  lat %6.3f mm\n",
                static_cast<long long>(L), m.cr_db, m.cnr, w.lateral_mm);
  }
  return 0;
}
