// Figs 1a, 9a, 9b and 10 reproduction: B-mode images of the contrast
// datasets for all four beamformers (written as PGM files into bench_out/)
// plus the lateral variation across the deepest cyst (CSV).
#include <cstdio>

#include "bench_common.hpp"
#include "io/writers.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"

namespace {

using namespace tvbf;

void run(const benchx::Scene& scene, const benchx::ModelSet& models,
         bool vitro) {
  const char* tag = vitro ? "vitro" : "silico";
  const us::Phantom phantom = benchx::contrast_phantom(scene, vitro);
  const auto envs = benchx::envelopes_for_phantom(
      scene, models, phantom, benchx::sim_preset(scene, vitro));

  // Lateral variation across the deepest cyst (Fig 9b).
  const double profile_depth = scene.cyst_depths.back();
  std::vector<std::string> csv_names{"lateral_mm"};
  std::vector<std::vector<double>> csv_cols;
  std::vector<double> xcol;
  for (std::int64_t ix = 0; ix < scene.grid.nx; ++ix)
    xcol.push_back(scene.grid.x_at(ix) * 1e3);
  csv_cols.push_back(xcol);

  for (const auto& [name, env] : envs) {
    const Tensor db = metrics::bmode_db(env, 60.0);
    std::string fname = std::string(benchx::kOutDir) + "/fig9_" + tag + "_" +
                        name + ".pgm";
    for (auto& c : fname)
      if (c == ' ') c = '_';
    io::write_pgm_db(fname, db, 60.0);
    std::printf("wrote %s\n", fname.c_str());

    const auto profile =
        metrics::lateral_profile_db(env, scene.grid, profile_depth, 60.0);
    csv_names.push_back(name);
    csv_cols.emplace_back(profile.begin(), profile.end());
  }
  const std::string csv = std::string(benchx::kOutDir) + "/fig9b_lateral_" +
                          tag + ".csv";
  io::write_csv(csv, csv_names, csv_cols);
  std::printf("wrote %s (lateral variation at %.0f mm)\n", csv.c_str(),
              profile_depth * 1e3);

  // Edge-sharpness proxy printed for the shape check: the dB drop from the
  // background into the cyst along the lateral profile.
  benchx::print_header(std::string("Fig 9b/10 edge contrast (") + tag + ")");
  for (std::size_t i = 1; i < csv_names.size(); ++i) {
    const auto& prof = csv_cols[i];
    const std::int64_t center = scene.grid.column_of(0.0);
    double inside = prof[static_cast<std::size_t>(center)];
    double outside = -120.0;
    for (double v : prof) outside = std::max(outside, v);
    std::printf("%-10s  cyst floor %7.1f dB, background peak %6.1f dB, "
                "depth of cyst dip %6.1f dB\n",
                csv_names[i].c_str(), inside, outside, outside - inside);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchx::want_full(argc, argv);
  const auto scene = benchx::make_scene(full);
  std::printf("Tiny-VBF reproduction — Figs 1a/9/10 (contrast B-mode images)\n");
  io::ensure_directory(benchx::kOutDir);
  const auto models = benchx::get_trained_models(scene);
  run(scene, models, /*vitro=*/false);
  run(scene, models, /*vitro=*/true);
  return 0;
}
