// Train a Tiny-VBF beamformer from scratch on simulated data, exactly as the
// paper describes: ToF-corrected single-angle RF in, MVDR IQ labels, MSE
// loss, Adam with polynomial-decay learning rate — then compare the trained
// network against DAS on a held-out cyst phantom.
//
//   ./train_beamformer [epochs] [frames]
//
// Defaults (40 epochs, 4 frames) run in about a minute; the bench suite
// (bench/) does the full-strength version of this with caching.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "beamform/das.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/image_quality.hpp"
#include "models/dataset.hpp"
#include "models/neural_beamformer.hpp"
#include "models/trainer.hpp"

int main(int argc, char** argv) {
  using namespace tvbf;
  std::int64_t epochs = 40, n_frames = 4;
  int positionals = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [epochs] [frames]\n", argv[0]);
      return 0;
    }
    const std::int64_t value = std::atoll(argv[i]);
    if (argv[i][0] == '-' || value < 1 || positionals >= 2) {
      std::fprintf(stderr,
                   "%s: unknown argument '%s'\nusage: %s [epochs] [frames]\n",
                   argv[0], argv[i], argv[0]);
      return 1;
    }
    (positionals == 0 ? epochs : n_frames) = value;
    ++positionals;
  }

  const us::Probe probe = us::Probe::test_probe(32);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 128, 64, 10e-3, 34e-3);

  // Training corpus: random speckle/cyst/point phantoms, MVDR labels.
  models::DatasetParams dp;
  dp.sim.max_depth = grid.z_end() + 3e-3;
  dp.mvdr.subaperture = 12;
  dp.seed = 2024;
  std::printf("building %lld training frames (this simulates RF and runs "
              "MVDR per frame)...\n",
              static_cast<long long>(n_frames));
  Timer t;
  const auto frames = models::make_training_set(probe, grid, n_frames, dp);
  std::printf("  %.1f s\n", t.seconds());

  // The network: paper architecture at reduced width.
  models::TinyVbfConfig cfg;
  cfg.in_channels = probe.num_elements;
  cfg.num_lateral = grid.nx;
  cfg.patch_size = 2;
  cfg.d_model = 16;
  Rng rng(7);
  auto model = std::make_shared<models::TinyVbf>(cfg, rng);
  std::printf("Tiny-VBF with %lld trainable weights\n",
              static_cast<long long>(model->num_parameters()));

  // Train with the paper's recipe (Adam + polynomial decay, MSE on IQ).
  models::TrainOptions opt;
  opt.epochs = epochs;
  opt.initial_lr = 2e-3;
  opt.final_lr = 1e-5;
  opt.log = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  t.reset();
  const auto report = models::train_model(
      [&](const Tensor& in) { return model->forward(nn::constant(in)); },
      model->parameters(), frames, models::TargetKind::kIq, opt);
  std::printf("trained %lld epochs in %.1f s; loss %.5f -> %.5f\n",
              static_cast<long long>(epochs), t.seconds(),
              report.epoch_loss.front(), report.final_loss);

  // Held-out evaluation: one cyst phantom, Tiny-VBF vs DAS.
  Rng eval_rng(99);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  const us::Phantom phantom =
      us::make_contrast_phantom(eval_rng, {16e-3, 27e-3}, 2.5e-3, region, {});
  us::SimParams sim = us::SimParams::in_silico();
  sim.max_depth = grid.z_end() + 3e-3;
  const us::Acquisition acq = us::simulate_plane_wave(probe, phantom, 0.0, sim);
  const us::TofCube rf = us::tof_correct(acq, grid, {});

  const bf::DasBeamformer das(probe);
  const models::TinyVbfBeamformer vbf(model);
  const auto m_das = metrics::mean_contrast(
      dsp::envelope_iq(das.beamform(rf)), grid, phantom.cysts);
  const auto m_vbf = metrics::mean_contrast(
      dsp::envelope_iq(vbf.beamform(rf)), grid, phantom.cysts);
  std::printf("\nheld-out cyst phantom:\n");
  std::printf("  DAS      CR %.2f dB  CNR %.2f  GCNR %.2f\n", m_das.cr_db,
              m_das.cnr, m_das.gcnr);
  std::printf("  Tiny-VBF CR %.2f dB  CNR %.2f  GCNR %.2f\n", m_vbf.cr_db,
              m_vbf.cnr, m_vbf.gcnr);
  std::printf("(train longer — e.g. 180+ epochs as the bench suite does — "
              "for the paper's full contrast margin)\n");
  return 0;
}
