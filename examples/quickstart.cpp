// Quickstart: simulate a single-angle plane-wave acquisition of a cyst
// phantom, beamform it with DAS and MVDR, and write B-mode images.
//
//   ./quickstart [output_dir]
//
// This walks the library's core pipeline end to end:
//   phantom -> RF simulation -> ToF correction -> beamforming ->
//   envelope -> log compression -> PGM image + contrast metrics.
#include <cstdio>
#include <cstring>
#include <string>

#include "beamform/das.hpp"
#include "beamform/mvdr.hpp"
#include "common/rng.hpp"
#include "dsp/hilbert.hpp"
#include "io/writers.hpp"
#include "metrics/image_quality.hpp"
#include "us/tof.hpp"

int main(int argc, char** argv) {
  using namespace tvbf;
  std::string out_dir = "quickstart_out";
  bool have_dir = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [output_dir]\n", argv[0]);
      return 0;
    }
    if (argv[i][0] == '-' || have_dir) {
      std::fprintf(stderr, "%s: unknown argument '%s'\nusage: %s [output_dir]\n",
                   argv[0], argv[i], argv[0]);
      return 1;
    }
    out_dir = argv[i];
    have_dir = true;
  }
  io::ensure_directory(out_dir);

  // 1. A 32-element linear probe and a 192 x 64 pixel imaging grid.
  const us::Probe probe = us::Probe::test_probe(32);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 192, 64, 8e-3, 42e-3);

  // 2. A contrast phantom: three anechoic cysts embedded in speckle.
  Rng rng(42);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  const us::Phantom phantom = us::make_contrast_phantom(
      rng, {13e-3, 25e-3, 37e-3}, 2.5e-3, region, {});
  std::printf("phantom: %lld scatterers, %zu cysts\n",
              static_cast<long long>(phantom.size()), phantom.cysts.size());

  // 3. Single-angle (0 degree) plane-wave transmit/receive.
  us::SimParams sim = us::SimParams::in_silico();
  sim.max_depth = grid.z_end() + 3e-3;
  const us::Acquisition acq = us::simulate_plane_wave(probe, phantom, 0.0, sim);
  std::printf("acquired %lld samples x %lld channels\n",
              static_cast<long long>(acq.num_samples()),
              static_cast<long long>(acq.num_channels()));

  // 4. Time-of-flight correction (RF for DAS, analytic for MVDR).
  const us::TofCube rf_cube = us::tof_correct(acq, grid, {});
  const us::TofCube iq_cube =
      us::tof_correct(acq, grid, {.analytic = true});

  // 5. Beamform, detect the envelope, log-compress and save.
  const bf::DasBeamformer das(probe);
  const bf::MvdrBeamformer mvdr({.subaperture = 12});
  for (const auto& [name, iq] :
       {std::pair{std::string("das"), das.beamform(rf_cube)},
        std::pair{std::string("mvdr"), mvdr.beamform(iq_cube)}}) {
    const Tensor env = dsp::envelope_iq(iq);
    const Tensor db = dsp::log_compress(env, 60.0);
    const std::string path = out_dir + "/" + name + ".pgm";
    io::write_pgm_db(path, db, 60.0);
    const auto m = metrics::mean_contrast(env, grid, phantom.cysts);
    std::printf("%-5s -> %s   CR %.2f dB, CNR %.2f, GCNR %.2f\n", name.c_str(),
                path.c_str(), m.cr_db, m.cnr, m.gcnr);
  }
  std::printf("done. View the PGMs with any image viewer.\n");
  return 0;
}
