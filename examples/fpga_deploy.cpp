// FPGA deployment walkthrough: quantize a Tiny-VBF model with the paper's
// hybrid schemes, run it through the fixed-point datapath and the
// cycle-approximate accelerator simulator, and print the resource budget —
// the full Section III-D / IV-A flow without a physical ZCU104.
//
//   ./fpga_deploy
#include <cstdio>
#include <cstring>

#include "accel/accelerator.hpp"
#include "accel/pe.hpp"
#include "accel/resource_model.hpp"
#include "common/rng.hpp"
#include "models/tiny_vbf.hpp"
#include "quant/quantized_tiny_vbf.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace tvbf;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s\n(no options; prints the quantization, "
                  "accelerator and resource walkthrough)\n",
                  argv[0]);
      return 0;
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\nusage: %s\n", argv[0],
                 argv[i], argv[0]);
    return 1;
  }

  // An (untrained) paper-scale Tiny-VBF; deployment mechanics are weight
  // agnostic. Swap in nn::load_parameters(...) for a trained checkpoint.
  Rng rng(11);
  const models::TinyVbf model(models::TinyVbfConfig::paper(), rng);
  std::printf("Tiny-VBF: %lld weights, %.3f GOPs/frame at 368x128\n",
              static_cast<long long>(model.num_parameters()),
              static_cast<double>(model.ops_per_frame(368)) / 1e9);

  // 1. Quantize and measure the numerical impact of every scheme.
  Rng drng(12);
  Tensor input({64, 128, 128});
  for (auto& v : input.data()) v = static_cast<float>(drng.uniform(-1.0, 1.0));
  const Tensor reference = model.infer(input);
  std::printf("\nquantization error vs float (64-row tile):\n");
  for (const auto& scheme : quant::QuantScheme::paper_levels()) {
    const quant::QuantizedTinyVbf q(model, scheme);
    const double err = quant::relative_quant_error(reference, q.infer(input));
    std::printf("  %-9s weights %2d b, ops %2d b, softmax %2d b -> "
                "rel. error %.2e, weight storage %.1f KiB\n",
                scheme.name.c_str(), scheme.is_float ? 32 : scheme.weight_bits,
                scheme.is_float ? 32 : scheme.op_bits,
                scheme.is_float ? 32 : scheme.softmax_bits, err,
                static_cast<double>(q.weight_storage_bits()) / 8.0 / 1024.0);
  }

  // 2. Schedule a frame on the 4-PE accelerator (Figs 5-8 dataflow).
  const accel::AcceleratorSim sim;
  const auto rep = sim.run_tiny_vbf(model.config(), 368);
  std::printf("\naccelerator @ %.0f MHz: %lld cycles/frame = %.3f ms "
              "(%.0f fps), PE utilization %.1f%%\n",
              sim.config().clock_hz / 1e6,
              static_cast<long long>(rep.total_cycles),
              rep.latency_seconds * 1e3, 1.0 / rep.latency_seconds,
              rep.utilization * 100.0);

  // 3. Resource budget on the ZCU104 for the hybrid-2 scheme (Fig 1b).
  const accel::ResourceModel rm;
  const auto fl = rm.estimate(quant::QuantScheme::float_reference());
  const auto h2 = rm.estimate(quant::QuantScheme::hybrid2());
  const auto cap = accel::ResourceModel::zcu104();
  std::printf("\nresources (modelled)      float      hybrid-2   saving\n");
  auto line = [&](const char* n, double a, double b, double c) {
    std::printf("  %-8s %14.0f %10.0f   %4.0f%%  (%.0f%% of ZCU104)\n", n, a,
                b, 100.0 * (1.0 - b / a), 100.0 * b / c);
  };
  line("LUT", fl.lut, h2.lut, cap.lut);
  line("FF", fl.ff, h2.ff, cap.ff);
  line("BRAM", fl.bram36, h2.bram36, cap.bram36);
  line("DSP", fl.dsp, h2.dsp, cap.dsp);
  std::printf("  power    %10.3f W %8.3f W\n", fl.power_w, h2.power_w);

  // 4. Bit-exactness spot check of the PE's fixed-point adder tree.
  const quant::FixedFormat fmt = quant::QuantScheme::hybrid2().op_format();
  std::vector<float> a(16), b(16);
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(drng.uniform(-1, 1));
    b[static_cast<std::size_t>(i)] = static_cast<float>(drng.uniform(-1, 1));
  }
  std::printf("\nPE dot16: float %.6f vs Q%d.%d fixed %.6f\n",
              accel::ProcessingElement::dot16(a, b), fmt.bits - fmt.frac_bits,
              fmt.frac_bits, accel::ProcessingElement::dot16_fixed(a, b, fmt));
  return 0;
}
