// PICMUS-style evaluation: run all four beamformers (DAS, MVDR, Tiny-CNN,
// Tiny-VBF) on the contrast and resolution phantoms and print a compact
// quality report — the programmatic version of the paper's Tables I & II.
// Trained weights are reused from the bench cache when available (run any
// bench_table* binary first for a fully trained Tiny-VBF); otherwise the
// models are freshly trained at reduced strength.
//
//   ./picmus_eval [--quick]
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"

int main(int argc, char** argv) {
  using namespace tvbf;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--quick]\n"
                  "  --quick  reduced training strength (fast smoke run)\n",
                  argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\nusage: %s [--quick]\n",
                   argv[0], argv[i], argv[0]);
      return 1;
    }
  }

  const auto scene = benchx::make_scene(/*full=*/false);
  const auto models =
      quick ? benchx::get_trained_models(scene, 2, 20)
            : benchx::get_trained_models(scene);

  for (bool vitro : {false, true}) {
    const char* tag = vitro ? "in-vitro preset" : "in-silico";
    benchx::print_header(std::string("contrast phantom (") + tag + ")");
    const us::Phantom cysts = benchx::contrast_phantom(scene, vitro);
    for (const auto& [name, env] : benchx::envelopes_for_phantom(
             scene, models, cysts, benchx::sim_preset(scene, vitro))) {
      const auto m = metrics::mean_contrast(env, scene.grid, cysts.cysts);
      std::printf("  %-10s CR %6.2f dB   CNR %5.2f   GCNR %5.2f\n",
                  name.c_str(), m.cr_db, m.cnr, m.gcnr);
    }
    benchx::print_header(std::string("resolution phantom (") + tag + ")");
    const us::Phantom points = benchx::resolution_phantom(scene);
    for (const auto& [name, env] : benchx::envelopes_for_phantom(
             scene, models, points, benchx::sim_preset(scene, vitro))) {
      const auto w =
          metrics::mean_psf_widths(env, scene.grid, points.points, 2.0);
      std::printf("  %-10s axial %5.3f mm   lateral %5.3f mm\n", name.c_str(),
                  w.axial_mm, w.lateral_mm);
    }
  }
  std::printf("\nExpected shape (paper): MVDR best CR, Tiny-VBF between MVDR "
              "and DAS; Tiny-VBF/MVDR sharpest PSFs.\n");
  return 0;
}
