// Multi-session imaging server demo: four concurrent streams — two DAS
// cine loops (one RF, one analytic), plus two Tiny-VBF sessions sharing one
// model so their frames ride the cross-session inference batcher — each
// writing its B-mode frames through its own AsyncSink writer thread.
//
//   ./serve_demo [--frames N] [--angles N] [--out DIR] [--drop]
//                [--no-batch] [--backend cpu|accel] [--metrics]
//                [--ops-port P]
//
// The report prints one row per session (frames, drops, fps, stage means)
// plus the batcher and plan-cache counters. --metrics additionally prints
// the process telemetry table at exit and writes telemetry.json plus a
// Chrome trace.json (load at chrome://tracing) into the output directory.
// --ops-port starts the full ops plane for the run: a localhost
// introspection endpoint (/metrics, /healthz, /sessions, /dump; 0 picks an
// ephemeral port, printed at startup), the stall watchdog, and a crash
// hook + end-of-run flight-recorder dump (flight.json in the output dir).
// The Tiny-VBF model is randomly initialized — this demo exercises the
// serving machinery, not image quality (train_beamformer covers training).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "beamform/compounding.hpp"
#include "beamform/das.hpp"
#include "common/rng.hpp"
#include "accel/accel_device.hpp"
#include "io/writers.hpp"
#include "models/neural_beamformer.hpp"
#include "models/tiny_vbf.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/async_sink.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "us/phantom.hpp"

namespace {

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [--frames N] [--angles N] [--out DIR] [--drop]\n"
      "       [--no-batch] [--backend cpu|accel] [--metrics]\n"
      "       [--ops-port P] [--help]\n"
      "  --frames N  cine frames per session (default 8)\n"
      "  --angles N  steered plane waves compounded per frame (default 1;\n"
      "              N > 1 adds parallel ToF graph nodes per session)\n"
      "  --out DIR   output directory (default serve_out)\n"
      "  --drop      drop-oldest backpressure instead of blocking\n"
      "  --no-batch  disable cross-session batched inference\n"
      "  --backend B device backend for every session: cpu (reference) or\n"
      "              accel (FPGA cycle model; identical pixels, its latency\n"
      "              estimates drive the batcher's quorum sizing)\n"
      "  --metrics   print the telemetry table at exit and write\n"
      "              telemetry.json + Chrome trace.json into the output dir\n"
      "  --ops-port P\n"
      "              serve the ops plane on 127.0.0.1:P for the run\n"
      "              (0 = ephemeral, printed at startup): /metrics,\n"
      "              /healthz, /sessions, /dump; plus the stall watchdog\n"
      "              and a flight-recorder dump (flight.json) at exit\n"
      "  --help      show this message\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tvbf;
  serve::tune_allocator();
  std::int64_t frames = 8;
  std::int64_t angles = 1;
  std::string out_dir = "serve_out";
  bool drop = false;
  bool batch = true;
  bool metrics = false;
  int ops_port = -1;
  std::string backend = "cpu";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoll(argv[++i]);
      if (frames < 1) {
        std::fprintf(stderr, "%s: --frames needs a positive count\n", argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--angles") == 0 && i + 1 < argc) {
      angles = std::atoll(argv[++i]);
      if (angles < 1) {
        std::fprintf(stderr, "%s: --angles needs a positive count\n", argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--drop") == 0) {
      drop = true;
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      batch = false;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--ops-port") == 0 && i + 1 < argc) {
      ops_port = std::atoi(argv[++i]);
      if (ops_port < 0 || ops_port > 65535) {
        std::fprintf(stderr, "%s: --ops-port needs a port in [0, 65535]\n",
                     argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend = argv[++i];
      if (backend != "cpu" && backend != "accel") {
        std::fprintf(stderr, "%s: --backend must be 'cpu' or 'accel'\n",
                     argv[0]);
        return 1;
      }
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      print_usage(argv[0]);
      return 1;
    }
  }
  io::ensure_directory(out_dir);

  const us::Probe probe = us::Probe::test_probe(16);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 96, 32, 10e-3, 28e-3);
  us::SimParams sim = us::SimParams::in_silico();
  sim.max_depth = grid.z_end() + 3e-3;

  // One cine source per session, cysts at staggered depths so the four
  // B-mode movies are visibly distinct.
  auto make_cine = [&](int index) {
    Rng rng(100 + index);
    us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
    us::SpeckleOptions speckle;
    speckle.density_per_mm2 = 0.8;
    const double span = grid.z_end() - grid.z0;
    const us::Phantom phantom = us::make_contrast_phantom(
        rng, {grid.z0 + (0.3 + 0.12 * index) * span}, 2.2e-3, region,
        speckle);
    rt::CineParams cine;
    cine.num_frames = frames;
    cine.frame_rate_hz = 20.0;
    cine.lateral_speed_m_s = 3e-3;
    cine.axial_amplitude_m = 0.4e-3;
    cine.sim = sim;
    if (angles > 1) {
      bf::CompoundingParams compounding;
      compounding.num_angles = angles;
      cine.compound_angles_rad = compounding.angles();
    }
    return std::make_shared<rt::CineSource>(probe, phantom, cine);
  };

  Rng model_rng(11);
  auto model = std::make_shared<models::TinyVbf>(
      models::TinyVbfConfig::test(probe.num_elements, grid.nx), model_rng);
  auto vbf = std::make_shared<models::TinyVbfBeamformer>(model);
  auto das = std::make_shared<bf::DasBeamformer>(probe);

  rt::PipelineConfig rf_cfg;
  rf_cfg.grid = grid;
  if (backend == "accel") {
    // One shared cycle-model device across the sessions (it is stateless
    // per submission; only its cost model matters to the server).
    rf_cfg.device = std::make_shared<accel::AccelDevice>();
  }
  rt::PipelineConfig analytic_cfg = rf_cfg;
  analytic_cfg.tof.analytic = true;

  struct Stream {
    std::string label;
    std::shared_ptr<const bf::Beamformer> beamformer;
    rt::PipelineConfig config;
  };
  const std::vector<Stream> streams = {
      {"das_rf", das, rf_cfg},
      {"das_iq", das, analytic_cfg},
      {"vbf_a", vbf, rf_cfg},
      {"vbf_b", vbf, rf_cfg},
  };

  serve::ServerConfig server_cfg;
  server_cfg.backpressure =
      drop ? serve::Backpressure::kDropOldest : serve::Backpressure::kBlock;
  server_cfg.batch_inference = batch;
  const std::string flight_path = out_dir + "/flight.json";
  if (ops_port >= 0) {
    server_cfg.ops_port = ops_port;
    server_cfg.watchdog_stall_s = 5.0;
    server_cfg.watchdog_dump_path = flight_path;
    obs::install_crash_dump(flight_path);
  }
  serve::Server server(server_cfg);

  // One async writer per session: PGM output never blocks the schedulers.
  std::vector<std::unique_ptr<serve::AsyncSink>> sinks;
  for (const Stream& stream : streams) {
    const std::string dir = out_dir + "/" + stream.label;
    io::ensure_directory(dir);
    sinks.push_back(std::make_unique<serve::AsyncSink>(
        [dir](const serve::SinkFrame& frame) {
          char name[64];
          std::snprintf(name, sizeof(name), "/frame_%03lld.pgm",
                        static_cast<long long>(frame.index));
          io::write_pgm_db(dir + name, frame.db, 60.0);
        }));
    server.add_session({make_cine(static_cast<int>(sinks.size()) - 1),
                        stream.beamformer, stream.config,
                        sinks.back()->sink()});
  }

  std::printf("serving %zu sessions x %lld cine frames (%lld channels, "
              "%lld x %lld grid, %lld angle%s/frame, %s backpressure, "
              "batching %s, %s backend)...\n",
              streams.size(), static_cast<long long>(frames),
              static_cast<long long>(probe.num_elements),
              static_cast<long long>(grid.nz),
              static_cast<long long>(grid.nx), static_cast<long long>(angles),
              angles == 1 ? "" : "s", drop ? "drop-oldest" : "block",
              batch ? "on" : "off", backend.c_str());

  if (metrics) {
    // Scope the capture to the serve run: fresh instruments, armed trace.
    telemetry::Registry::instance().reset();
    telemetry::trace_start();
  }
  // The endpoint binds inside run() (ephemeral when --ops-port 0), so a
  // short-lived reporter polls for the bound port and prints it.
  std::thread port_reporter;
  if (ops_port >= 0) {
    port_reporter = std::thread([&server] {
      for (int i = 0; i < 200; ++i) {
        if (const int port = server.ops_port(); port >= 0) {
          std::printf("ops endpoint live: curl http://127.0.0.1:%d/metrics "
                      "(/healthz /sessions /dump)\n", port);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      std::printf("ops endpoint did not come up (bind failed?)\n");
    });
  }
  const serve::ServerReport report = server.run();
  for (auto& sink : sinks) sink->close();
  if (port_reporter.joinable()) port_reporter.join();
  if (metrics) telemetry::trace_stop();

  std::printf("\n%lld frames in %.2f s -> %.1f frames/s aggregate "
              "(%lld dropped)\n",
              static_cast<long long>(report.frames), report.wall_s,
              report.aggregate_fps(), static_cast<long long>(report.dropped));
  std::printf("plan cache: %llu hits, %llu misses; batches: %lld "
              "(mean size %.1f)\n\n",
              static_cast<unsigned long long>(report.plan_cache_hits),
              static_cast<unsigned long long>(report.plan_cache_misses),
              static_cast<long long>(report.batches.batches),
              report.batches.mean_batch());
  std::printf("%-8s %-18s %7s %7s %8s %8s %8s %8s\n", "session", "beamformer",
              "frames", "dropped", "tof ms", "bf ms", "post ms", "sink ms");
  for (std::size_t s = 0; s < report.sessions.size(); ++s) {
    const auto& sess = report.sessions[s];
    std::printf("%-8s %-18s %7lld %7lld %8.2f %8.2f %8.2f %8.2f\n",
                streams[s].label.c_str(), sess.beamformer.c_str(),
                static_cast<long long>(sess.frames),
                static_cast<long long>(sess.dropped),
                sess.stage("tof").mean_s() * 1e3,
                sess.stage("beamform").mean_s() * 1e3,
                sess.stage("postprocess").mean_s() * 1e3,
                sess.stage("sink").mean_s() * 1e3);
  }
  std::printf("\nwrote %s/<session>/frame_000.pgm ... frame_%03lld.pgm\n",
              out_dir.c_str(), static_cast<long long>(frames - 1));

  if (metrics) {
    const telemetry::Snapshot snap = telemetry::Registry::instance().snapshot();
    std::printf("\n%s", telemetry::render_table(snap).c_str());
    io::write_text(out_dir + "/telemetry.json", telemetry::to_json(snap));
    io::write_text(out_dir + "/trace.json", telemetry::trace_export_json());
    std::printf("wrote %s/telemetry.json and %s/trace.json",
                out_dir.c_str(), out_dir.c_str());
    if (const std::int64_t lost = telemetry::trace_dropped(); lost > 0)
      std::printf(" (%lld spans dropped)", static_cast<long long>(lost));
    std::printf("\n");
  }
  if (ops_port >= 0 && obs::write_flight_dump(flight_path))
    std::printf("wrote %s (flight-recorder dump, %lld events recorded)\n",
                flight_path.c_str(),
                static_cast<long long>(
                    obs::FlightRecorder::instance().total_recorded()));
  return 0;
}
