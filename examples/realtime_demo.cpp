// Real-time B-mode demo: stream a moving-phantom cine loop through the
// runtime pipeline (cached ToF plan -> DAS -> envelope/log-compression)
// and write one PGM per frame — flip through them for a B-mode movie of
// cysts drifting laterally while the tissue breathes axially.
//
//   ./realtime_demo [--frames N] [--angles N] [--out DIR] [--full]
//                   [--no-overlap] [--serial-sink] [--backend cpu|accel]
//                   [--metrics]
//
// The per-stage latency report at the end is the runtime's answer to the
// paper's real-time question: after the first frame builds the ToF plan,
// every later frame pays only sampling + beamforming. PGMs go through a
// serve::AsyncSink writer thread by default, so the sink stage only pays
// the frame copy; --serial-sink restores inline writing for the A/B.
// --metrics prints the process telemetry table at exit and writes
// telemetry.json plus a Chrome trace.json into the output directory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "beamform/compounding.hpp"
#include "beamform/das.hpp"
#include "common/rng.hpp"
#include "accel/accel_device.hpp"
#include "io/writers.hpp"
#include "runtime/pipeline.hpp"
#include "serve/async_sink.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "us/phantom.hpp"

namespace {

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [--frames N] [--angles N] [--out DIR] [--full]\n"
      "       [--no-overlap] [--serial-sink] [--backend cpu|accel]\n"
      "       [--metrics] [--help]\n"
      "  --frames N    cine frames to stream (default 24)\n"
      "  --angles N    steered plane waves compounded per frame (default 1;\n"
      "                N > 1 runs CPWC through parallel ToF graph nodes)\n"
      "  --out DIR     output directory for frame PGMs (default\n"
      "                realtime_out)\n"
      "  --full        paper-scale frame (128 channels, 368 x 128 grid)\n"
      "                instead of the reduced demo scale\n"
      "  --no-overlap  process frames strictly serially (for latency A/B)\n"
      "  --serial-sink write PGMs inline on the frame clock instead of\n"
      "                through the async writer thread (for latency A/B)\n"
      "  --backend B   device backend: cpu (reference) or accel (FPGA cycle\n"
      "                model; identical pixels, modeled latency estimates)\n"
      "  --metrics     print the telemetry table at exit and write\n"
      "                telemetry.json + Chrome trace.json into the output\n"
      "                directory\n"
      "  --help        show this message\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tvbf;
  std::int64_t frames = 24;
  std::int64_t angles = 1;
  std::string out_dir = "realtime_out";
  bool full = false;
  bool overlap = true;
  bool async_sink = true;
  bool metrics = false;
  std::string backend = "cpu";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoll(argv[++i]);
      if (frames < 1) {
        std::fprintf(stderr, "%s: --frames needs a positive count\n", argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--angles") == 0 && i + 1 < argc) {
      angles = std::atoll(argv[++i]);
      if (angles < 1) {
        std::fprintf(stderr, "%s: --angles needs a positive count\n", argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--no-overlap") == 0) {
      overlap = false;
    } else if (std::strcmp(argv[i], "--serial-sink") == 0) {
      async_sink = false;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend = argv[++i];
      if (backend != "cpu" && backend != "accel") {
        std::fprintf(stderr, "%s: --backend must be 'cpu' or 'accel'\n",
                     argv[0]);
        return 1;
      }
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      print_usage(argv[0]);
      return 1;
    }
  }
  io::ensure_directory(out_dir);

  // Scene: contrast cysts in speckle, drifting laterally at 3 mm/s with a
  // breathing-like 0.5 mm axial oscillation, imaged at 20 fps cine time.
  const us::Probe probe =
      full ? us::Probe::l11_5v() : us::Probe::test_probe(32);
  const us::ImagingGrid grid =
      full ? us::ImagingGrid::paper(probe)
           : us::ImagingGrid::reduced(probe, 192, 64, 8e-3, 42e-3);
  Rng rng(42);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  us::SpeckleOptions speckle;
  speckle.density_per_mm2 = full ? 0.5 : 1.0;
  const us::Phantom phantom = us::make_contrast_phantom(
      rng, {0.35 * grid.z_end(), 0.7 * grid.z_end()}, 2.5e-3, region, speckle);

  rt::CineParams cine;
  cine.num_frames = frames;
  cine.frame_rate_hz = 20.0;
  cine.lateral_speed_m_s = 3e-3;
  cine.axial_amplitude_m = 0.5e-3;
  cine.axial_period_s = 1.0;
  cine.sim.max_depth = grid.z_end() + 3e-3;
  if (angles > 1) {
    bf::CompoundingParams compounding;
    compounding.num_angles = angles;
    cine.compound_angles_rad = compounding.angles();
  }
  auto source = std::make_shared<rt::CineSource>(probe, phantom, cine);

  rt::PipelineConfig cfg;
  cfg.grid = grid;
  cfg.overlap = overlap;
  if (backend == "accel")
    cfg.device = std::make_shared<accel::AccelDevice>();
  rt::Pipeline pipeline(source, std::make_shared<bf::DasBeamformer>(probe),
                        cfg);

  std::printf("streaming %lld cine frames (%lld channels, %lld x %lld "
              "grid, %lld angle%s/frame, %s backend)...\n",
              static_cast<long long>(frames),
              static_cast<long long>(probe.num_elements),
              static_cast<long long>(grid.nz),
              static_cast<long long>(grid.nx), static_cast<long long>(angles),
              angles == 1 ? "" : "s", backend.c_str());
  const auto write_frame = [&](std::int64_t index, const Tensor& db) {
    char name[64];
    std::snprintf(name, sizeof(name), "/frame_%03lld.pgm",
                  static_cast<long long>(index));
    io::write_pgm_db(out_dir + name, db, 60.0);
  };

  if (metrics) {
    // Scope the capture to the streaming run: fresh instruments, armed
    // trace.
    telemetry::Registry::instance().reset();
    telemetry::trace_start();
  }
  rt::PipelineReport report;
  serve::AsyncSink::Stats sink_stats;
  if (async_sink) {
    // Double-buffered writer thread: the pipeline's sink stage pays only
    // the frame copy; disk I/O overlaps the next frame's compute.
    serve::AsyncSink sink(
        [&](const serve::SinkFrame& f) { write_frame(f.index, f.db); });
    report = pipeline.run(sink.sink());
    sink.close();
    sink_stats = sink.stats();
  } else {
    report = pipeline.run(
        [&](const rt::FrameOutput& out) { write_frame(out.index, out.db); });
  }
  if (metrics) telemetry::trace_stop();

  std::printf("\n%lld frames in %.2f s -> %.1f frames/s (%s, %s sink)\n",
              static_cast<long long>(report.frames), report.wall_s,
              report.fps(), overlap ? "overlapped" : "serial",
              async_sink ? "async" : "serial");
  std::printf("plan cache: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(report.plan_cache_hits),
              static_cast<unsigned long long>(report.plan_cache_misses));
  std::printf("%-12s %9s %9s %9s\n", "stage", "mean ms", "min ms", "max ms");
  for (const auto& s : report.stages) {
    if (s.frames == 0) continue;
    std::printf("%-12s %9.2f %9.2f %9.2f\n", s.name.c_str(), s.mean_s() * 1e3,
                s.min_s * 1e3, s.max_s * 1e3);
  }
  if (async_sink && sink_stats.written > 0) {
    std::printf("async writer: %lld frames, %.2f ms/write off the frame "
                "clock (%.2f ms blocked total)\n",
                static_cast<long long>(sink_stats.written),
                sink_stats.write_s / static_cast<double>(sink_stats.written) *
                    1e3,
                sink_stats.blocked_s * 1e3);
  }
  std::printf("\nwrote %s/frame_000.pgm ... frame_%03lld.pgm\n",
              out_dir.c_str(), static_cast<long long>(report.frames - 1));

  if (metrics) {
    const telemetry::Snapshot snap = telemetry::Registry::instance().snapshot();
    std::printf("\n%s", telemetry::render_table(snap).c_str());
    io::write_text(out_dir + "/telemetry.json", telemetry::to_json(snap));
    io::write_text(out_dir + "/trace.json", telemetry::trace_export_json());
    std::printf("wrote %s/telemetry.json and %s/trace.json",
                out_dir.c_str(), out_dir.c_str());
    if (const std::int64_t lost = telemetry::trace_dropped(); lost > 0)
      std::printf(" (%lld spans dropped)", static_cast<long long>(lost));
    std::printf("\n");
  }
  return 0;
}
