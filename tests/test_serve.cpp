// Tests for the multi-session imaging server: session scheduling with
// backpressure, cross-session batched Tiny-VBF inference, the async sink,
// fair-share pool tagging, and PlanCache single-flight / contention
// behavior. This suite carries the `serve` ctest label and runs under the
// tsan CI preset — it is the concurrency-soundness gate for the serving
// layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "beamform/das.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "accel/accel_device.hpp"
#include "models/neural_beamformer.hpp"
#include "models/tiny_vbf.hpp"
#include "quant/quantized_tiny_vbf.hpp"
#include "runtime/frame_source.hpp"
#include "runtime/pipeline.hpp"
#include "us/plan_cache.hpp"
#include "serve/async_sink.hpp"
#include "serve/inference_batcher.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"
#include "us/tof.hpp"

namespace tvbf::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    us::PlanCache::instance().clear();
    default_capacity_ = us::PlanCache::instance().stats().capacity_bytes;
  }
  void TearDown() override {
    us::PlanCache::instance().set_capacity(default_capacity_);
    us::PlanCache::instance().clear();
  }

  std::shared_ptr<rt::CineSource> cine(std::int64_t frames,
                                       double z = 18e-3) const {
    us::Region region{-4e-3, 4e-3, 12e-3, 24e-3};
    rt::CineParams p;
    p.num_frames = frames;
    p.frame_rate_hz = 10.0;
    p.lateral_speed_m_s = 5e-3;
    p.axial_amplitude_m = 0.4e-3;
    p.axial_period_s = 0.8;
    p.sim = clean_;
    return std::make_shared<rt::CineSource>(
        probe_, us::make_single_point(z, 0.0, region), p);
  }

  std::shared_ptr<rt::ReplaySource> replay(std::int64_t frames) const {
    return std::make_shared<rt::ReplaySource>(
        std::vector<us::Acquisition>{acq_}, frames);
  }

  std::shared_ptr<bf::DasBeamformer> das() const {
    return std::make_shared<bf::DasBeamformer>(probe_);
  }

  rt::PipelineConfig pipeline_config() const {
    rt::PipelineConfig cfg;
    cfg.grid = grid_;
    return cfg;
  }

  /// Reference frames from a solo Pipeline::run of an identical source.
  std::vector<Tensor> solo_frames(std::shared_ptr<rt::FrameSource> source,
                                  std::shared_ptr<const bf::Beamformer> bf,
                                  rt::PipelineConfig cfg) const {
    std::vector<Tensor> out;
    rt::Pipeline pipeline(std::move(source), std::move(bf), cfg);
    pipeline.run([&](const rt::FrameOutput& f) { out.push_back(f.db); });
    return out;
  }

  /// Sink capturing per-frame dB images (frames of one session arrive in
  /// order, one at a time — no locking needed per the Session contract).
  static rt::Pipeline::Sink capture(std::vector<Tensor>& into) {
    return [&into](const rt::FrameOutput& f) { into.push_back(f.db); };
  }

  us::Probe probe_ = us::Probe::test_probe(16);
  us::SimParams clean_ = [] {
    us::SimParams p = us::SimParams::in_silico();
    p.add_noise = false;
    p.max_depth = 26e-3;
    return p;
  }();
  us::ImagingGrid grid_ =
      us::ImagingGrid::reduced(probe_, 40, 32, 12e-3, 24e-3);
  us::Acquisition acq_ = us::simulate_plane_wave(
      probe_, us::make_single_point(18e-3), 0.0, clean_);
  std::size_t default_capacity_ = 0;
};

// ---- server: DAS sessions --------------------------------------------------

TEST_F(ServeTest, SingleSessionMatchesSoloPipeline) {
  const std::vector<Tensor> expected =
      solo_frames(cine(3), das(), pipeline_config());

  Server server;
  std::vector<Tensor> got;
  server.add_session({cine(3), das(), pipeline_config(), capture(got)});
  const ServerReport report = server.run();

  EXPECT_EQ(report.frames, 3);
  EXPECT_EQ(report.dropped, 0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < got.size(); ++k)
    EXPECT_EQ(max_abs_diff(got[k], expected[k]), 0.0f) << "frame " << k;
}

TEST_F(ServeTest, ConcurrentSessionsBitIdenticalToSoloRuns) {
  constexpr int kSessions = 4;
  constexpr std::int64_t kFrames = 3;
  std::vector<std::vector<Tensor>> expected(kSessions);
  for (int s = 0; s < kSessions; ++s)
    expected[s] = solo_frames(cine(kFrames, 15e-3 + 2e-3 * s), das(),
                              pipeline_config());

  ServerConfig cfg;
  cfg.num_workers = 3;  // force worker concurrency even on small hosts
  // Pin throughput mode so the ScopedSerial path is exercised regardless
  // of how many cores the host has (kAuto would pick pool mode here).
  cfg.frame_parallelism = FrameParallelism::kSerialPerWorker;
  Server server(cfg);
  std::vector<std::vector<Tensor>> got(kSessions);
  for (int s = 0; s < kSessions; ++s)
    server.add_session({cine(kFrames, 15e-3 + 2e-3 * s), das(),
                        pipeline_config(), capture(got[s])});
  const ServerReport report = server.run();

  EXPECT_EQ(report.frames, kSessions * kFrames);
  ASSERT_EQ(report.sessions.size(), static_cast<std::size_t>(kSessions));
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(report.sessions[s].frames, kFrames);
    ASSERT_EQ(got[s].size(), expected[s].size()) << "session " << s;
    for (std::size_t k = 0; k < got[s].size(); ++k)
      EXPECT_EQ(max_abs_diff(got[s][k], expected[s][k]), 0.0f)
          << "session " << s << " frame " << k;
  }
}

TEST_F(ServeTest, MixedGridsAndCubeFlavors) {
  // Two sessions with different grids, one of them analytic: per-session
  // state must not bleed across sessions.
  rt::PipelineConfig rf_cfg = pipeline_config();
  rt::PipelineConfig an_cfg = pipeline_config();
  an_cfg.grid = us::ImagingGrid::reduced(probe_, 32, 24, 13e-3, 23e-3);
  an_cfg.tof.analytic = true;

  const std::vector<Tensor> expected_rf = solo_frames(replay(2), das(), rf_cfg);
  const std::vector<Tensor> expected_an = solo_frames(replay(2), das(), an_cfg);

  ServerConfig cfg;
  cfg.num_workers = 2;
  Server server(cfg);
  std::vector<Tensor> got_rf, got_an;
  server.add_session({replay(2), das(), rf_cfg, capture(got_rf)});
  server.add_session({replay(2), das(), an_cfg, capture(got_an)});
  server.run();

  ASSERT_EQ(got_rf.size(), 2u);
  ASSERT_EQ(got_an.size(), 2u);
  for (int k = 0; k < 2; ++k) {
    EXPECT_EQ(max_abs_diff(got_rf[k], expected_rf[k]), 0.0f);
    EXPECT_EQ(max_abs_diff(got_an[k], expected_an[k]), 0.0f);
  }
}

TEST_F(ServeTest, BlockPolicyIsLossless) {
  ServerConfig cfg;
  cfg.max_in_flight = 1;
  cfg.backpressure = Backpressure::kBlock;
  Server server(cfg);
  std::vector<Tensor> got;
  server.add_session({replay(8), das(), pipeline_config(), capture(got)});
  const ServerReport report = server.run();
  EXPECT_EQ(report.frames, 8);
  EXPECT_EQ(report.dropped, 0);
  EXPECT_EQ(got.size(), 8u);
}

TEST_F(ServeTest, DropOldestPolicyDropsUnderSlowSink) {
  ServerConfig cfg;
  cfg.max_in_flight = 1;
  cfg.backpressure = Backpressure::kDropOldest;
  Server server(cfg);
  std::vector<std::int64_t> indices;
  server.add_session(
      {replay(24), das(), pipeline_config(), [&](const rt::FrameOutput& f) {
         std::this_thread::sleep_for(std::chrono::milliseconds(5));
         indices.push_back(f.index);
       }});
  const ServerReport report = server.run();

  // Replay is far faster than the throttled consumer, so the bounded queue
  // must overflow and drop; what does get processed stays in order.
  EXPECT_GT(report.dropped, 0);
  EXPECT_EQ(report.frames + report.dropped, 24);
  EXPECT_EQ(indices.size(), static_cast<std::size_t>(report.frames));
  for (std::size_t k = 1; k < indices.size(); ++k)
    EXPECT_LT(indices[k - 1], indices[k]);
}

TEST_F(ServeTest, SinkExceptionStopsAllSessionsAndPropagates) {
  ServerConfig cfg;
  cfg.num_workers = 2;
  Server server(cfg);
  server.add_session({replay(50), das(), pipeline_config(),
                      [](const rt::FrameOutput& f) {
                        if (f.index == 1)
                          throw std::runtime_error("sink failed");
                      }});
  server.add_session({replay(50), das(), pipeline_config(), {}});
  EXPECT_THROW(server.run(), std::runtime_error);
}

TEST_F(ServeTest, RejectsBadConfigurationAndReuse) {
  EXPECT_THROW(Server(ServerConfig{.max_in_flight = 0}), InvalidArgument);
  Server empty;
  EXPECT_THROW(empty.run(), InvalidArgument);

  Server server;
  server.add_session({replay(1), das(), pipeline_config(), {}});
  EXPECT_THROW(
      server.add_session({nullptr, das(), pipeline_config(), {}}),
      InvalidArgument);
  server.run();
  EXPECT_THROW(server.run(), InvalidArgument);
  EXPECT_THROW(server.add_session({replay(1), das(), pipeline_config(), {}}),
               InvalidArgument);
}

TEST_F(ServeTest, IntraFrameParallelismModeMatchesSolo) {
  const std::vector<Tensor> expected =
      solo_frames(cine(2), das(), pipeline_config());
  ServerConfig cfg;
  cfg.frame_parallelism = FrameParallelism::kPool;  // latency: pool + tags
  cfg.num_workers = 2;
  Server server(cfg);
  std::vector<Tensor> got;
  server.add_session({cine(2), das(), pipeline_config(), capture(got)});
  server.add_session({cine(2, 16e-3), das(), pipeline_config(), {}});
  server.run();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < got.size(); ++k)
    EXPECT_EQ(max_abs_diff(got[k], expected[k]), 0.0f);
}

// ---- cross-session batched inference ---------------------------------------

class ServeModelTest : public ServeTest {
 protected:
  ServeModelTest() {
    Rng rng(11);
    model_ = std::make_shared<models::TinyVbf>(
        models::TinyVbfConfig::test(16, 32), rng);
    beamformer_ = std::make_shared<models::TinyVbfBeamformer>(model_);
  }

  std::shared_ptr<models::TinyVbf> model_;
  std::shared_ptr<models::TinyVbfBeamformer> beamformer_;
};

TEST_F(ServeModelTest, InferBatchBitIdenticalToPerFrame) {
  // Different depth extents in one batch; each split result must equal the
  // solo forward pass bit for bit (depth rows are independent).
  Rng rng(3);
  std::vector<Tensor> inputs;
  for (const std::int64_t nz : {7, 12, 5}) {
    Tensor t({nz, 32, 16});
    for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, 0.3));
    inputs.push_back(std::move(t));
  }
  std::vector<const Tensor*> ptrs;
  for (const Tensor& t : inputs) ptrs.push_back(&t);

  const std::vector<Tensor> batched = model_->infer_batch(ptrs);
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor solo = model_->infer(inputs[i]);
    ASSERT_EQ(batched[i].shape(), solo.shape());
    EXPECT_EQ(max_abs_diff(batched[i], solo), 0.0f) << "frame " << i;
  }
}

TEST_F(ServeModelTest, QuantizedInferBatchBitIdenticalToPerFrame) {
  const auto quantized = std::make_shared<quant::QuantizedTinyVbf>(
      *model_, quant::QuantScheme::uniform(16));
  Rng rng(4);
  std::vector<Tensor> inputs;
  for (const std::int64_t nz : {6, 9}) {
    Tensor t({nz, 32, 16});
    for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, 0.3));
    inputs.push_back(std::move(t));
  }
  std::vector<const Tensor*> ptrs;
  for (const Tensor& t : inputs) ptrs.push_back(&t);

  const std::vector<Tensor> batched = quantized->infer_batch(ptrs);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(max_abs_diff(batched[i], quantized->infer(inputs[i])), 0.0f);
}

TEST_F(ServeModelTest, BatcherDispatchMatchesPerCubeBeamform) {
  std::vector<us::TofCube> cubes;
  for (const double z : {15e-3, 18e-3, 21e-3}) {
    const us::Acquisition a = us::simulate_plane_wave(
        probe_, us::make_single_point(z), 0.0, clean_);
    cubes.push_back(us::tof_correct(a, grid_, {}));
  }
  std::vector<const us::TofCube*> ptrs;
  for (const us::TofCube& c : cubes) ptrs.push_back(&c);

  InferenceBatcher batcher(2);  // forces chunking: batches of 2 + 1
  const std::vector<Tensor> batched = batcher.dispatch(*beamformer_, ptrs);
  ASSERT_EQ(batched.size(), cubes.size());
  for (std::size_t i = 0; i < cubes.size(); ++i)
    EXPECT_EQ(max_abs_diff(batched[i], beamformer_->beamform(cubes[i])), 0.0f);

  const InferenceBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.frames, 3);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.max_batch, 2);
  EXPECT_NEAR(stats.mean_batch(), 1.5, 1e-12);
}

TEST_F(ServeModelTest, BatchedSessionsBitIdenticalToSoloPipeline) {
  constexpr int kSessions = 3;
  constexpr std::int64_t kFrames = 3;
  std::vector<std::vector<Tensor>> expected(kSessions);
  for (int s = 0; s < kSessions; ++s)
    expected[s] = solo_frames(cine(kFrames, 15e-3 + 2e-3 * s), beamformer_,
                              pipeline_config());

  Server server;  // batching on by default
  std::vector<std::vector<Tensor>> got(kSessions);
  for (int s = 0; s < kSessions; ++s)
    server.add_session({cine(kFrames, 15e-3 + 2e-3 * s), beamformer_,
                        pipeline_config(), capture(got[s])});
  const ServerReport report = server.run();

  EXPECT_EQ(report.frames, kSessions * kFrames);
  EXPECT_EQ(report.batches.frames, kSessions * kFrames);
  EXPECT_GE(report.batches.batches, 1);
  EXPECT_LE(report.batches.max_batch, kSessions);
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(got[s].size(), expected[s].size()) << "session " << s;
    for (std::size_t k = 0; k < got[s].size(); ++k)
      EXPECT_EQ(max_abs_diff(got[s][k], expected[s][k]), 0.0f)
          << "session " << s << " frame " << k;
  }
}

TEST_F(ServeModelTest, UnbatchedServerMatchesBatchedServer) {
  auto run_server = [&](bool batch) {
    ServerConfig cfg;
    cfg.batch_inference = batch;
    Server server(cfg);
    std::vector<Tensor> got;
    server.add_session(
        {cine(2), beamformer_, pipeline_config(), capture(got)});
    const ServerReport report = server.run();
    if (!batch) {
      EXPECT_EQ(report.batches.frames, 0);
    }
    return got;
  };
  const std::vector<Tensor> batched = run_server(true);
  const std::vector<Tensor> unbatched = run_server(false);
  ASSERT_EQ(batched.size(), unbatched.size());
  for (std::size_t k = 0; k < batched.size(); ++k)
    EXPECT_EQ(max_abs_diff(batched[k], unbatched[k]), 0.0f);
}

TEST_F(ServeModelTest, AccelBackendPrefersDeeperBatchesWithIdenticalOutput) {
  // Same sessions on the CPU reference backend and the accelerator cycle
  // model: pixels must be bit-identical (backends only differ in cost
  // estimates), while the cost-aware gate must plan a deeper batch under
  // the accelerator's host-DMA dispatch overhead. Both preferred batches
  // are pure dimension arithmetic, hence exact values are deterministic
  // regardless of scheduling noise.
  constexpr int kSessions = 2;
  constexpr std::int64_t kFrames = 3;
  auto run_backend = [&](std::shared_ptr<device::Device> dev,
                         std::vector<std::vector<Tensor>>& got) {
    rt::PipelineConfig cfg = pipeline_config();
    cfg.device = std::move(dev);
    Server server;
    got.assign(kSessions, {});
    for (int s = 0; s < kSessions; ++s)
      server.add_session(
          {cine(kFrames, 15e-3 + 2e-3 * s), beamformer_, cfg,
           capture(got[s])});
    return server.run();
  };

  std::vector<std::vector<Tensor>> on_cpu, on_accel;
  const ServerReport cpu_report = run_backend(nullptr, on_cpu);
  const ServerReport accel_report =
      run_backend(std::make_shared<accel::AccelDevice>(), on_accel);

  EXPECT_EQ(cpu_report.frames, kSessions * kFrames);
  EXPECT_EQ(accel_report.frames, kSessions * kFrames);
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(on_accel[s].size(), on_cpu[s].size()) << "session " << s;
    for (std::size_t k = 0; k < on_cpu[s].size(); ++k)
      EXPECT_EQ(max_abs_diff(on_accel[s][k], on_cpu[s][k]), 0.0f)
          << "session " << s << " frame " << k;
  }
  EXPECT_GE(cpu_report.batches.preferred_batch, 1);
  EXPECT_GT(accel_report.batches.preferred_batch,
            cpu_report.batches.preferred_batch);
}

TEST_F(ServeModelTest, MixedDasAndBatchedModelSessions) {
  const std::vector<Tensor> expected_das =
      solo_frames(cine(3), das(), pipeline_config());
  const std::vector<Tensor> expected_vbf =
      solo_frames(cine(3, 16e-3), beamformer_, pipeline_config());

  ServerConfig cfg;
  cfg.num_workers = 2;
  Server server(cfg);
  std::vector<Tensor> got_das, got_vbf;
  server.add_session({cine(3), das(), pipeline_config(), capture(got_das)});
  server.add_session(
      {cine(3, 16e-3), beamformer_, pipeline_config(), capture(got_vbf)});
  server.run();

  ASSERT_EQ(got_das.size(), 3u);
  ASSERT_EQ(got_vbf.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(max_abs_diff(got_das[k], expected_das[k]), 0.0f);
    EXPECT_EQ(max_abs_diff(got_vbf[k], expected_vbf[k]), 0.0f);
  }
}

// ---- telemetry sampler -----------------------------------------------------

TEST_F(ServeTest, TelemetrySamplerDeliversPeriodicAndFinalSnapshots) {
  telemetry::Registry::instance().reset();
  std::mutex mu;
  std::vector<std::int64_t> frame_counts;  // serve.frames per snapshot
  ServerConfig cfg;
  cfg.telemetry_period_s = 1e-3;
  cfg.telemetry_sink = [&](const telemetry::Snapshot& snap) {
    const auto* frames = snap.counter("serve.frames");
    std::lock_guard<std::mutex> lock(mu);
    frame_counts.push_back(frames != nullptr ? frames->value : 0);
  };
  Server server(cfg);
  const std::int64_t frames = 6;
  server.add_session({replay(frames), das(), pipeline_config(), {}});
  const ServerReport report = server.run();

  EXPECT_EQ(report.frames, frames);
  // At minimum the guaranteed final snapshot arrived, it reflects every
  // delivered frame, and the per-snapshot counts are monotone.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(frame_counts.empty());
  EXPECT_EQ(frame_counts.back(), frames);
  for (std::size_t i = 1; i < frame_counts.size(); ++i)
    EXPECT_LE(frame_counts[i - 1], frame_counts[i]);
}

// ---- async sink ------------------------------------------------------------

TEST_F(ServeTest, AsyncSinkWritesEveryFrameInOrder) {
  std::vector<SinkFrame> written;  // writer thread only; read after close()
  AsyncSink sink([&](const SinkFrame& f) { written.push_back(f); });

  Tensor iq({4, 3, 2}), env({4, 3});
  for (std::int64_t k = 0; k < 5; ++k) {
    Tensor db({4, 3}, static_cast<float>(-k));
    const rt::FrameOutput out{k, 0.1 * static_cast<double>(k), iq, env, db};
    sink.push(out);
  }
  sink.close();

  const AsyncSink::Stats stats = sink.stats();
  EXPECT_EQ(stats.pushed, 5);
  EXPECT_EQ(stats.written, 5);
  EXPECT_EQ(stats.dropped, 0);
  ASSERT_EQ(written.size(), 5u);
  for (std::int64_t k = 0; k < 5; ++k) {
    EXPECT_EQ(written[k].index, k);
    EXPECT_EQ(written[k].db.at(0, 0), static_cast<float>(-k));
  }
}

TEST_F(ServeTest, AsyncSinkDropsOldestWhenConfigured) {
  std::atomic<int> written{0};
  AsyncSink::Options options;
  options.queue_depth = 1;
  options.drop_when_full = true;
  AsyncSink sink(
      [&](const SinkFrame&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ++written;
      },
      options);

  Tensor iq({2, 2, 2}), env({2, 2}), db({2, 2});
  for (std::int64_t k = 0; k < 20; ++k)
    sink.push(rt::FrameOutput{k, 0.0, iq, env, db});
  sink.close();

  const AsyncSink::Stats stats = sink.stats();
  EXPECT_EQ(stats.pushed, 20);
  EXPECT_GT(stats.dropped, 0);
  EXPECT_EQ(stats.written, written.load());
  EXPECT_EQ(stats.written + stats.dropped, stats.pushed);
}

TEST_F(ServeTest, AsyncSinkWriterErrorPropagatesOnClose) {
  AsyncSink sink([](const SinkFrame&) {
    throw std::runtime_error("writer failed");
  });
  Tensor iq({2, 2, 2}), env({2, 2}), db({2, 2});
  sink.push(rt::FrameOutput{0, 0.0, iq, env, db});
  EXPECT_THROW(sink.close(), std::runtime_error);
  sink.close();  // idempotent: the error is reported once
  EXPECT_THROW(sink.push(rt::FrameOutput{1, 0.0, iq, env, db}),
               InvalidArgument);
}

TEST_F(ServeTest, AsyncSinkFeedsFromPipeline) {
  std::vector<Tensor> written;
  const std::vector<Tensor> expected =
      solo_frames(replay(3), das(), pipeline_config());
  {
    AsyncSink sink([&](const SinkFrame& f) { written.push_back(f.db); });
    rt::Pipeline pipeline(replay(3), das(), pipeline_config());
    pipeline.run(sink.sink());
    sink.close();
  }
  ASSERT_EQ(written.size(), 3u);
  for (std::size_t k = 0; k < written.size(); ++k)
    EXPECT_EQ(max_abs_diff(written[k], expected[k]), 0.0f);
}

// ---- PlanCache under contention --------------------------------------------

TEST_F(ServeTest, PlanCacheSingleFlightCoalescesRacingMisses) {
  auto& cache = us::PlanCache::instance();
  constexpr int kThreads = 8;
  std::latch start(kThreads);
  std::vector<std::shared_ptr<const us::TofPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      plans[t] = cache.get_for(acq_, grid_);
    });
  for (auto& t : threads) t.join();

  // Single-flight: every caller gets the one plan instance — the build ran
  // at most once, and every coalesced waiter is counted.
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(plans[t].get(), plans[0].get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.duplicate_builds, stats.misses - 1);
}

TEST_F(ServeTest, PlanCacheEvictionUnderContention) {
  auto& cache = us::PlanCache::instance();
  // Six keys, capacity for about two plans: constant eviction pressure.
  std::vector<us::ImagingGrid> grids;
  for (int k = 0; k < 6; ++k)
    grids.push_back(
        us::ImagingGrid::reduced(probe_, 36 + 2 * k, 32, 12e-3, 24e-3));
  const auto probe_plan = cache.get_for(acq_, grids[0]);
  cache.clear();
  cache.set_capacity(probe_plan->bytes() * 2 + probe_plan->bytes() / 2);

  constexpr int kThreads = 6;
  std::latch start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < 30; ++i) {
        const auto& grid = grids[(t * 7 + i * 3) % grids.size()];
        const auto plan = cache.get_for(acq_, grid);
        ASSERT_NE(plan, nullptr);
        ASSERT_EQ(plan->key().grid.nz, grid.nz);
      }
    });
  for (auto& t : threads) t.join();

  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  EXPECT_EQ(stats.hits + stats.misses, 6u * 30u + 0u);
  // Every surviving entry still gathers correctly.
  const auto plan = cache.get_for(acq_, grids[0]);
  EXPECT_GT(max_abs(plan->apply(acq_, false).real), 0.0f);
}

// ---- fair-share pool tagging & serial scope --------------------------------

TEST_F(ServeTest, ScopedSerialKeepsWorkInline) {
  const std::thread::id self = std::this_thread::get_id();
  std::atomic<bool> stayed_inline{true};
  {
    const ScopedSerial serial;
    parallel_for_each(0, 4096, [&](std::size_t) {
      if (std::this_thread::get_id() != self) stayed_inline = false;
    }, 1);
  }
  EXPECT_TRUE(stayed_inline.load());
}

TEST_F(ServeTest, TaggedConcurrentParallelForsComputeCorrectly) {
  set_thread_count(3);
  constexpr int kClients = 4;
  constexpr std::size_t kN = 20000;
  std::vector<std::int64_t> sums(kClients, 0);
  std::latch start(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      set_job_tag(static_cast<std::uint64_t>(c) + 1);
      EXPECT_EQ(job_tag(), static_cast<std::uint64_t>(c) + 1);
      start.arrive_and_wait();
      for (int round = 0; round < 5; ++round) {
        std::vector<std::int64_t> partial(kN, 0);
        parallel_for_each(0, kN, [&](std::size_t i) {
          partial[i] = static_cast<std::int64_t>(i) + c;
        }, 64);
        std::int64_t total = 0;
        for (const std::int64_t v : partial) total += v;
        sums[c] = total;
      }
    });
  for (auto& t : clients) t.join();
  set_thread_count(0);

  const auto n = static_cast<std::int64_t>(kN);
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(sums[c], n * (n - 1) / 2 + n * c);
}

}  // namespace
}  // namespace tvbf::serve
