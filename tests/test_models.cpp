// Tests for the model zoo: Tiny-VBF, Tiny-CNN, FCNN — shapes, op counts
// (the paper's GOPs/frame comparison), adapters, dataset and training.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "models/complexity.hpp"
#include "models/dataset.hpp"
#include "models/fcnn.hpp"
#include "models/neural_beamformer.hpp"
#include "models/tiny_cnn.hpp"
#include "models/tiny_vbf.hpp"
#include "models/trainer.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::models {
namespace {

Tensor random_input(std::int64_t nz, std::int64_t nx, std::int64_t nch,
                    Rng& rng) {
  Tensor t({nz, nx, nch});
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(TinyVbfConfig, ValidationAndPresets) {
  TinyVbfConfig c = TinyVbfConfig::paper();
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.num_patches(), 32);
  c.patch_size = 5;  // 128 % 5 != 0
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = TinyVbfConfig::test();
  EXPECT_NO_THROW(c.validate());
  c.d_model = 15;  // not divisible by heads
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(TinyVbf, ForwardShapeAndDeterminism) {
  Rng rng(1);
  const TinyVbf model(TinyVbfConfig::test(8, 16), rng);
  Rng drng(2);
  const Tensor x = random_input(12, 16, 8, drng);
  const Tensor y1 = model.infer(x);
  const Tensor y2 = model.infer(x);
  ASSERT_EQ(y1.shape(), (Shape{12, 16, 2}));
  EXPECT_TRUE(allclose(y1, y2, 0.0f, 0.0f));
}

TEST(TinyVbf, RejectsWrongInputShape) {
  Rng rng(3);
  const TinyVbf model(TinyVbfConfig::test(8, 16), rng);
  EXPECT_THROW(model.infer(Tensor({12, 16, 4})), InvalidArgument);
  EXPECT_THROW(model.infer(Tensor({12, 8, 8})), InvalidArgument);
  EXPECT_THROW(model.infer(Tensor({12, 16})), InvalidArgument);
}

TEST(TinyVbf, ParameterListIsStableAndComplete) {
  Rng rng(4);
  const TinyVbf model(TinyVbfConfig::test(8, 16), rng);
  const auto params = model.parameters();
  std::int64_t total = 0;
  for (const auto& p : params) total += p.value().size();
  EXPECT_EQ(total, model.num_parameters());
  EXPECT_GT(total, 1000);
  for (const auto& p : params) EXPECT_TRUE(p.requires_grad());
}

TEST(TinyVbf, PaperConfigOpsMatchReportedRegime) {
  // The paper reports 0.34 GOPs/frame at 368 x 128; our tuned config must
  // land in that regime (same order, 0.2 .. 0.6).
  Rng rng(5);
  const TinyVbf model(TinyVbfConfig::paper(), rng);
  const double gops =
      static_cast<double>(model.ops_per_frame(368)) / 1e9;
  EXPECT_GT(gops, 0.15) << "model unrealistically small";
  EXPECT_LT(gops, 0.6) << "model too heavy vs paper's 0.34";
}

TEST(TinyVbf, AttentionGivesGlobalReceptiveField) {
  // Perturbing a far lateral patch changes the output at patch 0 — the ViT
  // property the paper contrasts against CNN locality.
  Rng rng(6);
  const TinyVbf model(TinyVbfConfig::test(8, 32), rng);
  Rng drng(7);
  Tensor x = random_input(4, 32, 8, drng);
  const Tensor y0 = model.infer(x);
  for (std::int64_t c = 0; c < 8; ++c) x.at(2, 31, c) += 1.0f;  // far patch
  const Tensor y1 = model.infer(x);
  double delta = 0.0;
  for (std::int64_t c = 0; c < 2; ++c)
    delta += std::fabs(y1.at(2, 0, c) - y0.at(2, 0, c));
  EXPECT_GT(delta, 1e-6);
}

TEST(TinyCnn, ForwardShapeAndOps) {
  Rng rng(8);
  const TinyCnn model(TinyCnnConfig::test(8), rng);
  Rng drng(9);
  const Tensor x = random_input(10, 12, 8, drng);
  const Tensor y = model.infer(x);
  ASSERT_EQ(y.shape(), (Shape{10, 12}));
  EXPECT_THROW(model.infer(Tensor({10, 12, 4})), InvalidArgument);
  EXPECT_GT(model.ops_per_frame(10, 12), 0);
}

TEST(TinyCnn, PaperConfigOpsMatchReportedRegime) {
  // Paper: Tiny-CNN = 11.7 GOPs/frame at 368 x 128.
  const TinyCnnConfig cfg = TinyCnnConfig::paper();
  Rng rng(10);
  const TinyCnn model(cfg, rng);
  const double gops =
      static_cast<double>(model.ops_per_frame(368, 128)) / 1e9;
  EXPECT_GT(gops, 6.0);
  EXPECT_LT(gops, 20.0);
}

TEST(Fcnn, ForwardShapeAndOps) {
  Rng rng(11);
  const Fcnn model(FcnnConfig::test(8), rng);
  Rng drng(12);
  const Tensor x = random_input(10, 12, 8, drng);
  const Tensor y = model.infer(x);
  ASSERT_EQ(y.shape(), (Shape{10, 12}));
  // Paper: FCNN = 1.4 GOPs/frame at 368 x 128.
  Rng rng2(13);
  const Fcnn paper_model(FcnnConfig::paper(), rng2);
  const double gops =
      static_cast<double>(paper_model.ops_per_frame(368, 128)) / 1e9;
  EXPECT_GT(gops, 0.7);
  EXPECT_LT(gops, 3.0);
}

TEST(Complexity, OrderingMatchesPaper) {
  // Tiny-VBF < FCNN < Tiny-CNN < MVDR in ops/frame (the headline claim).
  Rng rng(14);
  const TinyVbf vbf(TinyVbfConfig::paper(), rng);
  const TinyCnn cnn(TinyCnnConfig::paper(), rng);
  const Fcnn fcnn(FcnnConfig::paper(), rng);
  const auto vbf_ops = vbf.ops_per_frame(368);
  const auto cnn_ops = cnn.ops_per_frame(368, 128);
  const auto fcnn_ops = fcnn.ops_per_frame(368, 128);
  const auto mvdr_ops = mvdr_ops_per_frame(368, 128, 128, 64);
  EXPECT_LT(vbf_ops, fcnn_ops);
  EXPECT_LT(fcnn_ops, cnn_ops);
  EXPECT_LT(cnn_ops, mvdr_ops);
  // MVDR should be tens of GOPs (paper quotes 98.78 for a GPU variant).
  EXPECT_GT(static_cast<double>(mvdr_ops) / 1e9, 20.0);
}

TEST(Complexity, LiteratureEntriesPresent) {
  const auto lit = literature_complexity();
  ASSERT_EQ(lit.size(), 3u);
  EXPECT_DOUBLE_EQ(lit[0].gops_per_frame, 50.0);
  EXPECT_DOUBLE_EQ(lit[1].gops_per_frame, 199.0);
  EXPECT_FALSE(lit[0].measured);
  EXPECT_THROW(mvdr_ops_per_frame(0, 128, 128, 64), InvalidArgument);
  EXPECT_THROW(das_ops_per_frame(368, 128, 0), InvalidArgument);
}

class ModelPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    probe_ = us::Probe::test_probe(16);
    grid_ = us::ImagingGrid::reduced(probe_, 48, 16, 12e-3, 26e-3);
    params_.sim.add_noise = false;
    params_.sim.max_depth = 30e-3;
    params_.mvdr.subaperture = 8;
    Rng rng(100);
    us::Region region;
    region.x_min = probe_.element_x(0);
    region.x_max = probe_.element_x(15);
    region.z_min = grid_.z0;
    region.z_max = grid_.z_end();
    us::SpeckleOptions opt;
    opt.density_per_mm2 = 0.5;
    phantom_ = us::make_speckle(region, opt, rng);
  }

  us::Probe probe_;
  us::ImagingGrid grid_;
  DatasetParams params_;
  us::Phantom phantom_;
};

TEST_F(ModelPipeline, MakeFrameShapesAndNormalization) {
  const TrainingFrame frame = make_frame(probe_, grid_, phantom_, params_);
  EXPECT_EQ(frame.input.shape(), (Shape{48, 16, 16}));
  EXPECT_EQ(frame.target_iq.shape(), (Shape{48, 16, 2}));
  EXPECT_EQ(frame.target_rf.shape(), (Shape{48, 16}));
  EXPECT_LE(max_abs(frame.input), 1.0f);
  EXPECT_LE(max_abs(frame.target_iq), 1.0f);
  EXPECT_GT(max_abs(frame.input), 0.1f);   // normalized to peak 1
  EXPECT_GT(max_abs(frame.target_iq), 0.1f);
  // target_rf is the real (I) plane of target_iq.
  EXPECT_FLOAT_EQ(frame.target_rf.at(10, 5), frame.target_iq.at(10, 5, 0));
}

TEST_F(ModelPipeline, TrainingSetIsDeterministic) {
  const auto set1 = make_training_set(probe_, grid_, 2, params_);
  const auto set2 = make_training_set(probe_, grid_, 2, params_);
  ASSERT_EQ(set1.size(), 2u);
  EXPECT_TRUE(allclose(set1[0].input, set2[0].input, 0.0f, 0.0f));
  EXPECT_TRUE(allclose(set1[1].target_iq, set2[1].target_iq, 0.0f, 0.0f));
  EXPECT_THROW(make_training_set(probe_, grid_, 0, params_), InvalidArgument);
}

TEST_F(ModelPipeline, TrainingReducesLossTinyVbf) {
  const auto frames = make_training_set(probe_, grid_, 2, params_);
  Rng rng(200);
  const TinyVbf model(TinyVbfConfig::test(16, 16), rng);
  TrainOptions opt;
  opt.epochs = 30;
  opt.initial_lr = 3e-3;
  opt.final_lr = 1e-4;
  const TrainReport rep = train_model(
      [&](const Tensor& in) { return model.forward(nn::constant(in)); },
      model.parameters(), frames, TargetKind::kIq, opt);
  ASSERT_EQ(rep.epoch_loss.size(), 30u);
  EXPECT_LT(rep.final_loss, rep.epoch_loss.front() * 0.5);
}

TEST_F(ModelPipeline, TrainingReducesLossFcnn) {
  const auto frames = make_training_set(probe_, grid_, 2, params_);
  Rng rng(201);
  const Fcnn model(FcnnConfig::test(16), rng);
  TrainOptions opt;
  opt.epochs = 30;
  opt.initial_lr = 3e-3;
  opt.final_lr = 1e-4;
  const TrainReport rep = train_model(
      [&](const Tensor& in) { return model.forward(nn::constant(in)); },
      model.parameters(), frames, TargetKind::kRf, opt);
  EXPECT_LT(rep.final_loss, rep.epoch_loss.front());
}

TEST_F(ModelPipeline, AdaptersProduceIqImages) {
  const us::Acquisition acq =
      us::simulate_plane_wave(probe_, phantom_, 0.0, params_.sim);
  const us::TofCube cube = us::tof_correct(acq, grid_, {});
  Rng rng(300);
  const TinyVbfBeamformer vbf(
      std::make_shared<TinyVbf>(TinyVbfConfig::test(16, 16), rng));
  const TinyCnnBeamformer cnn(
      std::make_shared<TinyCnn>(TinyCnnConfig::test(16), rng));
  const FcnnBeamformer fcnn(
      std::make_shared<Fcnn>(FcnnConfig::test(16), rng));
  for (const bf::Beamformer* b :
       {static_cast<const bf::Beamformer*>(&vbf),
        static_cast<const bf::Beamformer*>(&cnn),
        static_cast<const bf::Beamformer*>(&fcnn)}) {
    const Tensor iq = b->beamform(cube);
    EXPECT_EQ(iq.shape(), (Shape{48, 16, 2})) << b->name();
    EXPECT_GT(max_abs(iq), 0.0f) << b->name();
  }
  EXPECT_EQ(vbf.name(), "Tiny-VBF");
  EXPECT_EQ(cnn.name(), "Tiny-CNN");
  EXPECT_EQ(fcnn.name(), "FCNN");
}

TEST(Adapters, RejectNullModel) {
  EXPECT_THROW(TinyVbfBeamformer(nullptr), InvalidArgument);
  EXPECT_THROW(TinyCnnBeamformer(nullptr), InvalidArgument);
  EXPECT_THROW(FcnnBeamformer(nullptr), InvalidArgument);
}

TEST(Adapters, RfToIqPreservesSignalEnvelope) {
  // rf_image_to_iq on a modulated column gives I == input.
  Tensor rf({64, 1});
  for (std::int64_t z = 0; z < 64; ++z)
    rf.at(z, 0) = static_cast<float>(
        std::exp(-(z - 32.0) * (z - 32.0) / 50.0) *
        std::cos(2.0 * M_PI * 0.2 * z));
  const Tensor iq = rf_image_to_iq(rf);
  ASSERT_EQ(iq.shape(), (Shape{64, 1, 2}));
  for (std::int64_t z = 8; z < 56; ++z)
    EXPECT_NEAR(iq.at(z, 0, 0), rf.at(z, 0), 5e-2);
}

TEST(Trainer, ValidatesArguments) {
  Rng rng(400);
  const Fcnn model(FcnnConfig::test(4), rng);
  TrainOptions opt;
  opt.epochs = 0;
  std::vector<TrainingFrame> frames(1);
  frames[0].input = Tensor({4, 4, 4});
  frames[0].target_rf = Tensor({4, 4});
  frames[0].target_iq = Tensor({4, 4, 2});
  EXPECT_THROW(
      train_model([&](const Tensor& in) { return model.forward(nn::constant(in)); },
                  model.parameters(), frames, TargetKind::kRf, opt),
      InvalidArgument);
  opt.epochs = 1;
  EXPECT_THROW(
      train_model([&](const Tensor& in) { return model.forward(nn::constant(in)); },
                  model.parameters(), {}, TargetKind::kRf, opt),
      InvalidArgument);
}

}  // namespace
}  // namespace tvbf::models
