// Property sweeps across acquisition configurations: the simulate -> ToF ->
// DAS chain must localize targets correctly for any steering angle, probe
// width and target position — the geometric core every experiment rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "beamform/das.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/resolution.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/tof.hpp"

namespace tvbf {
namespace {

struct Located {
  double z;
  double x;
  float peak;
};

/// Runs the full chain on a single point target and returns the B-mode peak
/// location in meters.
Located locate_point(std::int64_t channels, double angle_rad, double px,
                     double pz) {
  const us::Probe probe = us::Probe::test_probe(channels);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 128, 64, 10e-3, 30e-3);
  us::SimParams sim = us::SimParams::in_silico();
  sim.add_noise = false;
  sim.max_depth = 34e-3;
  us::Region region{grid.x0 * 1.5, grid.x_end() * 1.5, grid.z0, grid.z_end()};
  const us::Phantom ph = us::make_single_point(pz, px, region);
  const us::Acquisition acq = us::simulate_plane_wave(probe, ph, angle_rad, sim);
  const us::TofCube cube = us::tof_correct(acq, grid, {});
  const bf::DasBeamformer das(probe);
  const Tensor env = dsp::envelope_iq(das.beamform(cube));
  std::int64_t best = 0;
  for (std::int64_t p = 1; p < env.size(); ++p)
    if (env.flat(p) > env.flat(best)) best = p;
  return {grid.z_at(best / grid.nx), grid.x_at(best % grid.nx),
          env.flat(best)};
}

class SteeringSweep : public ::testing::TestWithParam<double> {};

TEST_P(SteeringSweep, PointLocalizedUnderSteering) {
  // ToF correction must compensate the transmit steering exactly: the peak
  // stays at the true target position for every angle.
  const double angle = GetParam();
  const Located loc = locate_point(32, angle, 2e-3, 20e-3);
  EXPECT_NEAR(loc.z, 20e-3, 0.5e-3) << "angle " << angle;
  EXPECT_NEAR(loc.x, 2e-3, 0.6e-3) << "angle " << angle;
  EXPECT_GT(loc.peak, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Angles, SteeringSweep,
                         ::testing::Values(-0.15, -0.05, 0.0, 0.05, 0.15));

class ProbeSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, double>> {};

TEST_P(ProbeSweep, PointLocalizedAcrossProbesAndPositions) {
  // Lateral offsets are scaled to the aperture: targets near the aperture
  // edge of a small probe have asymmetric PSFs whose peak biases inward.
  const auto [channels, frac] = GetParam();
  const us::Probe probe = us::Probe::test_probe(channels);
  const double x = frac * probe.aperture() / 2.0;
  const Located loc = locate_point(channels, 0.0, x, 18e-3);
  EXPECT_NEAR(loc.z, 18e-3, 0.5e-3);
  EXPECT_NEAR(loc.x, x, 0.6e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ProbeSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(16, 32, 64),
                       ::testing::Values(-0.5, 0.0, 0.5)));

TEST(PipelineProperties, DeeperTargetsArriveLater) {
  // Axial monotonicity: image depth tracks true depth across the grid.
  double prev_z = 0.0;
  for (double z : {14e-3, 18e-3, 22e-3, 26e-3}) {
    const Located loc = locate_point(32, 0.0, 0.0, z);
    EXPECT_GT(loc.z, prev_z);
    EXPECT_NEAR(loc.z, z, 0.5e-3);
    prev_z = loc.z;
  }
}

TEST(PipelineProperties, PsfWidthGrowsOffAxisOnlyMildly) {
  // Lateral FWHM should be comparable on-axis and a few mm off-axis (the
  // dynamic aperture keeps the f-number constant).
  const us::Probe probe = us::Probe::test_probe(32);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 128, 64, 10e-3, 30e-3);
  us::SimParams sim = us::SimParams::in_silico();
  sim.add_noise = false;
  sim.max_depth = 34e-3;
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  const bf::DasBeamformer das(probe);
  auto width_at = [&](double x) {
    const us::Phantom ph = us::make_single_point(20e-3, x, region);
    const us::Acquisition acq = us::simulate_plane_wave(probe, ph, 0.0, sim);
    const Tensor env =
        dsp::envelope_iq(das.beamform(us::tof_correct(acq, grid, {})));
    const auto w = metrics::psf_widths(env, grid, x, 20e-3, 2.0);
    EXPECT_TRUE(w.valid);
    return w.lateral_mm;
  };
  const double on_axis = width_at(0.0);
  const double off_axis = width_at(3e-3);
  EXPECT_LT(off_axis, on_axis * 1.6);
}

TEST(PipelineProperties, NoiseFloorScalesWithSnr) {
  // Lowering the SNR must raise the background level of the B-mode image.
  const us::Probe probe = us::Probe::test_probe(16);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 96, 32, 10e-3, 30e-3);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  const us::Phantom ph = us::make_single_point(20e-3, 0.0, region);
  const bf::DasBeamformer das(probe);
  auto background_db = [&](double snr) {
    us::SimParams sim = us::SimParams::in_silico();
    sim.max_depth = 34e-3;
    sim.snr_db = snr;
    const us::Acquisition acq = us::simulate_plane_wave(probe, ph, 0.0, sim);
    const Tensor env =
        dsp::envelope_iq(das.beamform(us::tof_correct(acq, grid, {})));
    const Tensor db = dsp::log_compress(env, 80.0);
    // Mean level far from the target (top-left corner block).
    double acc = 0.0;
    std::int64_t n = 0;
    for (std::int64_t iz = 0; iz < 20; ++iz)
      for (std::int64_t ix = 0; ix < 8; ++ix) {
        acc += db.at(iz, ix);
        ++n;
      }
    return acc / static_cast<double>(n);
  };
  EXPECT_GT(background_db(20.0), background_db(50.0) + 5.0);
}

TEST(PipelineProperties, ChannelGainSpreadPreservesLocalization) {
  // Element sensitivity variation (in-vitro preset) must not move the peak.
  const us::Probe probe = us::Probe::test_probe(32);
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(probe, 128, 64, 10e-3, 30e-3);
  us::Region region{grid.x0, grid.x_end(), grid.z0, grid.z_end()};
  const us::Phantom ph = us::make_single_point(20e-3, 0.0, region);
  us::SimParams sim = us::SimParams::in_vitro();
  sim.max_depth = 34e-3;
  const us::Acquisition acq = us::simulate_plane_wave(probe, ph, 0.0, sim);
  const bf::DasBeamformer das(probe);
  const Tensor env =
      dsp::envelope_iq(das.beamform(us::tof_correct(acq, grid, {})));
  std::int64_t best = 0;
  for (std::int64_t p = 1; p < env.size(); ++p)
    if (env.flat(p) > env.flat(best)) best = p;
  EXPECT_NEAR(grid.z_at(best / grid.nx), 20e-3, 0.7e-3);
  EXPECT_NEAR(grid.x_at(best % grid.nx), 0.0, 0.7e-3);
}

}  // namespace
}  // namespace tvbf
