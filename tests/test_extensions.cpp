// Tests for the extension beamformers: coherence-factor weighted DAS and
// coherent plane-wave compounding (CPWC).
#include <gtest/gtest.h>

#include <cmath>

#include "beamform/coherence_factor.hpp"
#include "beamform/compounding.hpp"
#include "beamform/das.hpp"
#include "common/rng.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::bf {
namespace {

class ExtensionPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    probe_ = new us::Probe(us::Probe::test_probe(32));
    grid_ = new us::ImagingGrid(
        us::ImagingGrid::reduced(*probe_, 128, 64, 12e-3, 26e-3));
    sim_ = new us::SimParams(us::SimParams::in_silico());
    sim_->max_depth = 30e-3;
    Rng rng(3);
    us::Region region{grid_->x0, grid_->x_end(), grid_->z0, grid_->z_end()};
    cyst_ = new us::Cyst{0.0, 19e-3, 2.5e-3};
    us::SpeckleOptions opt;
    opt.density_per_mm2 = 3.0;
    cyst_phantom_ =
        new us::Phantom(us::make_speckle(region, opt, rng, {*cyst_}));
    point_phantom_ = new us::Phantom(us::make_single_point(19e-3, 0.0, region));
    const us::Acquisition acq =
        us::simulate_plane_wave(*probe_, *cyst_phantom_, 0.0, *sim_);
    iq_cube_ = new us::TofCube(
        us::tof_correct(acq, *grid_, {.analytic = true}));
    rf_cube_ = new us::TofCube(us::tof_correct(acq, *grid_, {}));
  }
  static void TearDownTestSuite() {
    delete probe_;
    delete grid_;
    delete sim_;
    delete cyst_;
    delete cyst_phantom_;
    delete point_phantom_;
    delete iq_cube_;
    delete rf_cube_;
  }

  static us::Probe* probe_;
  static us::ImagingGrid* grid_;
  static us::SimParams* sim_;
  static us::Cyst* cyst_;
  static us::Phantom* cyst_phantom_;
  static us::Phantom* point_phantom_;
  static us::TofCube* iq_cube_;
  static us::TofCube* rf_cube_;
};

us::Probe* ExtensionPipeline::probe_ = nullptr;
us::ImagingGrid* ExtensionPipeline::grid_ = nullptr;
us::SimParams* ExtensionPipeline::sim_ = nullptr;
us::Cyst* ExtensionPipeline::cyst_ = nullptr;
us::Phantom* ExtensionPipeline::cyst_phantom_ = nullptr;
us::Phantom* ExtensionPipeline::point_phantom_ = nullptr;
us::TofCube* ExtensionPipeline::iq_cube_ = nullptr;
us::TofCube* ExtensionPipeline::rf_cube_ = nullptr;

TEST_F(ExtensionPipeline, CfRequiresAnalyticCube) {
  const CoherenceFactorBeamformer cf(*probe_);
  EXPECT_THROW(cf.beamform(*rf_cube_), InvalidArgument);
  EXPECT_THROW(CoherenceFactorBeamformer(*probe_, 0.0), InvalidArgument);
}

TEST_F(ExtensionPipeline, CfImprovesContrastOverDas) {
  const DasBeamformer das(*probe_);
  const CoherenceFactorBeamformer cf(*probe_);
  const auto m_das = metrics::contrast_metrics(
      dsp::envelope_iq(das.beamform(*iq_cube_)), *grid_, *cyst_);
  const auto m_cf = metrics::contrast_metrics(
      dsp::envelope_iq(cf.beamform(*iq_cube_)), *grid_, *cyst_);
  EXPECT_GT(m_cf.cr_db, m_das.cr_db);
}

TEST_F(ExtensionPipeline, CfGammaControlsAggressiveness) {
  const CoherenceFactorBeamformer soft(*probe_, 0.5);
  const CoherenceFactorBeamformer hard(*probe_, 2.0);
  const auto m_soft = metrics::contrast_metrics(
      dsp::envelope_iq(soft.beamform(*iq_cube_)), *grid_, *cyst_);
  const auto m_hard = metrics::contrast_metrics(
      dsp::envelope_iq(hard.beamform(*iq_cube_)), *grid_, *cyst_);
  EXPECT_GT(m_hard.cr_db, m_soft.cr_db);
}

TEST_F(ExtensionPipeline, CfHandlesSilentCube) {
  us::TofCube silent = *iq_cube_;
  silent.real.fill(0.0f);
  silent.imag.fill(0.0f);
  const CoherenceFactorBeamformer cf(*probe_);
  const Tensor iq = cf.beamform(silent);
  EXPECT_FLOAT_EQ(max_abs(iq), 0.0f);
}

TEST(CompoundingParams, AngleGeneration) {
  CompoundingParams p;
  p.num_angles = 5;
  p.max_angle_rad = 0.2;
  const auto a = p.angles();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a.front(), -0.2);
  EXPECT_DOUBLE_EQ(a.back(), 0.2);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
  p.num_angles = 1;
  EXPECT_EQ(p.angles(), std::vector<double>{0.0});
  p.num_angles = 0;
  EXPECT_THROW(p.angles(), InvalidArgument);
  p.num_angles = 3;
  p.max_angle_rad = 2.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST_F(ExtensionPipeline, SingleAngleCompoundEqualsDas) {
  CompoundingParams p;
  p.num_angles = 1;
  us::SimParams clean = *sim_;
  clean.add_noise = false;
  const Tensor compound =
      compound_plane_waves(*probe_, *point_phantom_, *grid_, clean, p);
  const us::Acquisition acq =
      us::simulate_plane_wave(*probe_, *point_phantom_, 0.0, clean);
  const DasBeamformer das(*probe_, p.apodization);
  const Tensor direct = das.beamform(us::tof_correct(acq, *grid_, p.tof));
  EXPECT_TRUE(allclose(compound, direct, 1e-4f, 1e-5f));
}

TEST_F(ExtensionPipeline, CompoundingImprovesResolutionAndContrast) {
  // The paper's motivating trade-off: more angles -> better image.
  CompoundingParams one;
  one.num_angles = 1;
  CompoundingParams many;
  many.num_angles = 7;
  const Tensor iq1 =
      compound_plane_waves(*probe_, *point_phantom_, *grid_, *sim_, one);
  const Tensor iq7 =
      compound_plane_waves(*probe_, *point_phantom_, *grid_, *sim_, many);
  const auto w1 = metrics::psf_widths(dsp::envelope_iq(iq1), *grid_, 0.0,
                                      19e-3, 2.0);
  const auto w7 = metrics::psf_widths(dsp::envelope_iq(iq7), *grid_, 0.0,
                                      19e-3, 2.0);
  ASSERT_TRUE(w1.valid && w7.valid);
  EXPECT_LE(w7.lateral_mm, w1.lateral_mm * 1.05);

  const Tensor c1 =
      compound_plane_waves(*probe_, *cyst_phantom_, *grid_, *sim_, one);
  const Tensor c7 =
      compound_plane_waves(*probe_, *cyst_phantom_, *grid_, *sim_, many);
  const auto m1 = metrics::contrast_metrics(dsp::envelope_iq(c1), *grid_, *cyst_);
  const auto m7 = metrics::contrast_metrics(dsp::envelope_iq(c7), *grid_, *cyst_);
  EXPECT_GT(m7.cr_db, m1.cr_db);
}

TEST(Compounding, RejectsEmptyAndMismatched) {
  CompoundingParams p;
  const us::ImagingGrid grid =
      us::ImagingGrid::reduced(us::Probe::test_probe(16), 32, 16);
  EXPECT_THROW(compound_acquisitions({}, grid, p), InvalidArgument);
  // Mismatched probes across acquisitions.
  const us::Phantom ph = us::make_single_point(20e-3);
  us::SimParams sim = us::SimParams::in_silico();
  sim.max_depth = 30e-3;
  const auto a16 =
      us::simulate_plane_wave(us::Probe::test_probe(16), ph, 0.0, sim);
  const auto a32 =
      us::simulate_plane_wave(us::Probe::test_probe(32), ph, 0.0, sim);
  EXPECT_THROW(compound_acquisitions({a16, a32}, grid, p), InvalidArgument);
}

}  // namespace
}  // namespace tvbf::bf
