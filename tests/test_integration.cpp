// Integration tests across the whole stack: simulate -> ToF -> beamform ->
// metrics, short end-to-end training, quantized pipeline, accelerator
// consistency and failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "beamform/das.hpp"
#include "beamform/mvdr.hpp"
#include "common/rng.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"
#include "models/dataset.hpp"
#include "models/neural_beamformer.hpp"
#include "models/trainer.hpp"
#include "quant/quantized_tiny_vbf.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/tof.hpp"

namespace tvbf {
namespace {

/// Shared small-scale scene: 16-channel probe, 64 x 16 grid, one cyst in
/// speckle plus a point target. Built once for the whole suite (expensive).
class FullPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    probe_ = new us::Probe(us::Probe::test_probe(16));
    grid_ = new us::ImagingGrid(
        us::ImagingGrid::reduced(*probe_, 64, 16, 12e-3, 26e-3));
    us::SimParams sim = us::SimParams::in_silico();
    sim.max_depth = 30e-3;
    // Cyst phantom.
    Rng rng(11);
    us::Region region;
    region.x_min = probe_->element_x(0) * 1.2;
    region.x_max = probe_->element_x(15) * 1.2;
    region.z_min = 12e-3;
    region.z_max = 26e-3;
    us::SpeckleOptions opt;
    opt.density_per_mm2 = 3.0;
    cyst_ = new us::Cyst{0.0, 19e-3, 2.5e-3};
    const us::Phantom ph = us::make_speckle(region, opt, rng, {*cyst_});
    const us::Acquisition acq = us::simulate_plane_wave(*probe_, ph, 0.0, sim);
    rf_cube_ = new us::TofCube(us::tof_correct(acq, *grid_, {}));
    iq_cube_ = new us::TofCube(us::tof_correct(acq, *grid_, {.analytic = true}));
    // Point phantom for PSF checks.
    const us::Phantom pt = us::make_single_point(19e-3, 0.0, region);
    const us::Acquisition acq_pt =
        us::simulate_plane_wave(*probe_, pt, 0.0, sim);
    rf_point_ = new us::TofCube(us::tof_correct(acq_pt, *grid_, {}));
    iq_point_ =
        new us::TofCube(us::tof_correct(acq_pt, *grid_, {.analytic = true}));
  }

  static void TearDownTestSuite() {
    delete probe_;
    delete grid_;
    delete cyst_;
    delete rf_cube_;
    delete iq_cube_;
    delete rf_point_;
    delete iq_point_;
    probe_ = nullptr;
  }

  static bf::MvdrParams mvdr_params() {
    bf::MvdrParams p;
    p.subaperture = 8;
    return p;
  }

  static us::Probe* probe_;
  static us::ImagingGrid* grid_;
  static us::Cyst* cyst_;
  static us::TofCube* rf_cube_;
  static us::TofCube* iq_cube_;
  static us::TofCube* rf_point_;
  static us::TofCube* iq_point_;
};

us::Probe* FullPipeline::probe_ = nullptr;
us::ImagingGrid* FullPipeline::grid_ = nullptr;
us::Cyst* FullPipeline::cyst_ = nullptr;
us::TofCube* FullPipeline::rf_cube_ = nullptr;
us::TofCube* FullPipeline::iq_cube_ = nullptr;
us::TofCube* FullPipeline::rf_point_ = nullptr;
us::TofCube* FullPipeline::iq_point_ = nullptr;

TEST_F(FullPipeline, DasResolvesCystWithPositiveContrast) {
  const bf::DasBeamformer das(*probe_);
  const Tensor env = metrics::envelope_of_iq(das.beamform(*rf_cube_));
  const auto m = metrics::contrast_metrics(env, *grid_, *cyst_);
  EXPECT_GT(m.cr_db, 5.0);   // anechoic cyst clearly visible
  EXPECT_GT(m.gcnr, 0.3);
}

TEST_F(FullPipeline, MvdrImprovesContrastOverDas) {
  const bf::DasBeamformer das(*probe_);
  const bf::MvdrBeamformer mvdr(mvdr_params());
  const Tensor env_das = metrics::envelope_of_iq(das.beamform(*rf_cube_));
  const Tensor env_mvdr = metrics::envelope_of_iq(mvdr.beamform(*iq_cube_));
  const auto m_das = metrics::contrast_metrics(env_das, *grid_, *cyst_);
  const auto m_mvdr = metrics::contrast_metrics(env_mvdr, *grid_, *cyst_);
  // The paper's Table I shape: MVDR CR > DAS CR.
  EXPECT_GT(m_mvdr.cr_db, m_das.cr_db);
}

TEST_F(FullPipeline, MvdrSharpensPsf) {
  const bf::DasBeamformer das(*probe_);
  const bf::MvdrBeamformer mvdr(mvdr_params());
  const Tensor env_das = metrics::envelope_of_iq(das.beamform(*rf_point_));
  const Tensor env_mvdr = metrics::envelope_of_iq(mvdr.beamform(*iq_point_));
  const auto w_das = metrics::psf_widths(env_das, *grid_, 0.0, 19e-3, 2.0);
  const auto w_mvdr = metrics::psf_widths(env_mvdr, *grid_, 0.0, 19e-3, 2.0);
  ASSERT_TRUE(w_das.valid && w_mvdr.valid);
  EXPECT_LE(w_mvdr.lateral_mm, w_das.lateral_mm);
}

TEST_F(FullPipeline, TrainedTinyVbfApproachesMvdrLabel) {
  // Train briefly on this very scene and verify the prediction moves toward
  // the MVDR label (the paper's training objective).
  models::TrainingFrame frame;
  us::TofCube in_cube = *rf_cube_;
  us::normalize_cube(in_cube);
  frame.input = in_cube.real;
  const bf::MvdrBeamformer mvdr(mvdr_params());
  Tensor label = mvdr.beamform(*iq_cube_);
  const float m = max_abs(label);
  for (auto& v : label.data()) v /= m;
  frame.target_iq = label;

  Rng rng(21);
  const models::TinyVbf model(models::TinyVbfConfig::test(16, 16), rng);
  const Tensor before = model.infer(frame.input);
  const float err_before = max_abs_diff(before, frame.target_iq);

  models::TrainOptions opt;
  opt.epochs = 60;
  opt.initial_lr = 3e-3;
  opt.final_lr = 1e-4;
  const auto rep = models::train_model(
      [&](const Tensor& in) { return model.forward(nn::constant(in)); },
      model.parameters(), {frame}, models::TargetKind::kIq, opt);
  const Tensor after = model.infer(frame.input);
  const float err_after = max_abs_diff(after, frame.target_iq);
  EXPECT_LT(rep.final_loss, rep.epoch_loss.front() * 0.3);
  EXPECT_LT(err_after, err_before);
}

TEST_F(FullPipeline, QuantizedPipelinePreservesImageAt24Bits) {
  Rng rng(22);
  const auto model = std::make_shared<models::TinyVbf>(
      models::TinyVbfConfig::test(16, 16), rng);
  const Tensor input = models::normalized_input(*rf_cube_);
  const Tensor ref = model->infer(input);
  const quant::QuantizedTinyVbf q24(*model, quant::QuantScheme::uniform(24));
  const quant::QuantizedTinyVbf q12(*model, quant::QuantScheme::uniform(12));
  const double err24 = quant::relative_quant_error(ref, q24.infer(input));
  const double err12 = quant::relative_quant_error(ref, q12.infer(input));
  EXPECT_LT(err24, 0.01);
  EXPECT_GT(err12, err24);
}

TEST_F(FullPipeline, DeadChannelsDegradeGracefully) {
  // Failure injection: zero out a quarter of the channels; DAS must still
  // produce a finite image with the cyst visible.
  us::TofCube damaged = *rf_cube_;
  const std::int64_t nch = damaged.channels();
  for (std::int64_t p = 0; p < damaged.nz() * damaged.nx(); ++p)
    for (std::int64_t e = 0; e < nch / 4; ++e)
      damaged.real.raw()[p * nch + e] = 0.0f;
  const bf::DasBeamformer das(*probe_);
  const Tensor env = metrics::envelope_of_iq(das.beamform(damaged));
  for (float v : env.data()) EXPECT_TRUE(std::isfinite(v));
  const auto m = metrics::contrast_metrics(env, *grid_, *cyst_);
  EXPECT_GT(m.cr_db, 2.0);
}

TEST_F(FullPipeline, SaturatedRfStillFinite) {
  // Clip the RF hard (ADC saturation) and verify the chain stays finite.
  us::TofCube clipped = *rf_cube_;
  const float limit = 0.2f * max_abs(clipped.real);
  for (auto& v : clipped.real.data())
    v = std::clamp(v, -limit, limit);
  const bf::DasBeamformer das(*probe_);
  const Tensor env = metrics::envelope_of_iq(das.beamform(clipped));
  for (float v : env.data()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(max_value(env), 0.0f);
}

TEST_F(FullPipeline, InVitroPresetDegradesContrastVsInSilico) {
  // Matches the paper's sim-vs-phantom gap: noisy, attenuated acquisitions
  // yield lower CR than clean ones for the same scene.
  Rng rng(33);
  us::Region region;
  region.x_min = probe_->element_x(0) * 1.2;
  region.x_max = probe_->element_x(15) * 1.2;
  region.z_min = 12e-3;
  region.z_max = 26e-3;
  us::SpeckleOptions opt;
  opt.density_per_mm2 = 3.0;
  const us::Cyst cyst{0.0, 19e-3, 2.5e-3};
  Rng r1(44), r2(44);
  const us::Phantom ph1 = us::make_speckle(region, opt, r1, {cyst});
  us::SimParams silico = us::SimParams::in_silico();
  silico.max_depth = 30e-3;
  us::SimParams vitro = us::SimParams::in_vitro();
  vitro.max_depth = 30e-3;
  vitro.snr_db = 20.0;
  const bf::DasBeamformer das(*probe_);
  const auto env_s = metrics::envelope_of_iq(das.beamform(
      us::tof_correct(us::simulate_plane_wave(*probe_, ph1, 0.0, silico),
                      *grid_, {})));
  const auto env_v = metrics::envelope_of_iq(das.beamform(
      us::tof_correct(us::simulate_plane_wave(*probe_, ph1, 0.0, vitro),
                      *grid_, {})));
  const auto m_s = metrics::contrast_metrics(env_s, *grid_, cyst);
  const auto m_v = metrics::contrast_metrics(env_v, *grid_, cyst);
  EXPECT_GT(m_s.cr_db, m_v.cr_db);
}

TEST(FailureInjection, EmptyPhantomRejectedEarly) {
  const us::Probe probe = us::Probe::test_probe(8);
  us::Phantom empty;
  EXPECT_THROW(
      us::simulate_plane_wave(empty.scatterers.empty() ? probe : probe, empty,
                              0.0, us::SimParams::in_silico()),
      InvalidArgument);
}

TEST(FailureInjection, DegenerateGridRejected) {
  us::ImagingGrid g;
  g.nz = 0;
  EXPECT_THROW(g.validate(), InvalidArgument);
  g = us::ImagingGrid{};
  g.z0 = -1e-3;
  EXPECT_THROW(g.validate(), InvalidArgument);
}

}  // namespace
}  // namespace tvbf
