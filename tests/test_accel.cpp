// Tests for the accelerator simulator: PE numerics, cycle model properties,
// the Tiny-VBF schedule and the resource model (Table VI shapes).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/pe.hpp"
#include "accel/resource_model.hpp"
#include "common/rng.hpp"

namespace tvbf::accel {
namespace {

TEST(Pe, Dot16MatchesSerialSum) {
  Rng rng(1);
  std::vector<float> a(16), b(16);
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal());
    b[static_cast<std::size_t>(i)] = static_cast<float>(rng.normal());
  }
  double ref = 0.0;
  for (int i = 0; i < 16; ++i)
    ref += static_cast<double>(a[static_cast<std::size_t>(i)]) *
           b[static_cast<std::size_t>(i)];
  EXPECT_NEAR(ProcessingElement::dot16(a, b), ref, 1e-4);
}

TEST(Pe, Dot16ShortVectorsPadWithZero) {
  std::vector<float> a{1.0f, 2.0f}, b{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(ProcessingElement::dot16(a, b), 11.0f);
  EXPECT_THROW(ProcessingElement::dot16(a, std::vector<float>{1.0f}),
               InvalidArgument);
  std::vector<float> too_long(17, 1.0f);
  EXPECT_THROW(ProcessingElement::dot16(too_long, too_long), InvalidArgument);
}

TEST(Pe, FixedDotTracksFloatWithinQuantError) {
  Rng rng(2);
  const quant::FixedFormat fmt{16, 11};
  std::vector<float> a(16), b(16);
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform(-1, 1));
    b[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform(-1, 1));
  }
  const float fref = ProcessingElement::dot16(a, b);
  const float ffix = ProcessingElement::dot16_fixed(a, b, fmt);
  // 16 products each off by <= step, plus input rounding.
  EXPECT_NEAR(ffix, fref, 40.0 * fmt.step());
}

TEST(Pe, DotCycles) {
  EXPECT_EQ(ProcessingElement::dot_cycles(1),
            1 + ProcessingElement::kPipelineDepth);
  EXPECT_EQ(ProcessingElement::dot_cycles(16),
            1 + ProcessingElement::kPipelineDepth);
  EXPECT_EQ(ProcessingElement::dot_cycles(17),
            2 + ProcessingElement::kPipelineDepth);
  EXPECT_THROW(ProcessingElement::dot_cycles(0), InvalidArgument);
}

TEST(AccelConfig, Validation) {
  AccelConfig c;
  EXPECT_NO_THROW(c.validate());
  c.num_pes = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = AccelConfig{};
  c.clock_hz = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(CycleModel, MatmulScalesWithWork) {
  const AcceleratorSim sim;
  const auto base = sim.matmul_cycles(1, 32, 64, 32);
  EXPECT_GT(sim.matmul_cycles(2, 32, 64, 32), base);       // batch
  EXPECT_GT(sim.matmul_cycles(1, 64, 64, 32), base);       // rows
  EXPECT_GT(sim.matmul_cycles(1, 32, 256, 32), base);      // depth
  EXPECT_THROW(sim.matmul_cycles(0, 1, 1, 1), InvalidArgument);
}

TEST(CycleModel, MatmulUsesAllPes) {
  // 4 PEs should be ~4x faster than 1 PE on the same product.
  AccelConfig one;
  one.num_pes = 1;
  const AcceleratorSim sim1(one);
  const AcceleratorSim sim4;  // default 4 PEs
  const auto c1 = sim1.matmul_cycles(1, 64, 64, 64);
  const auto c4 = sim4.matmul_cycles(1, 64, 64, 64);
  EXPECT_NEAR(static_cast<double>(c1) / static_cast<double>(c4), 4.0, 0.5);
}

TEST(CycleModel, AncillaryOps) {
  const AcceleratorSim sim;
  EXPECT_GT(sim.elementwise_cycles(1000), 0);
  EXPECT_GT(sim.softmax_cycles(10, 32), sim.softmax_cycles(1, 32));
  EXPECT_GT(sim.layernorm_cycles(10, 32), 0);
  EXPECT_THROW(sim.elementwise_cycles(0), InvalidArgument);
  EXPECT_THROW(sim.softmax_cycles(1, 0), InvalidArgument);
}

TEST(TinyVbfSchedule, TotalsAreConsistent) {
  const AcceleratorSim sim;
  const models::TinyVbfConfig cfg = models::TinyVbfConfig::test(16, 32);
  const AccelReport rep = sim.run_tiny_vbf(cfg, 48);
  ASSERT_FALSE(rep.ops.empty());
  std::int64_t cycles = 0, macs = 0;
  for (const auto& op : rep.ops) {
    EXPECT_GT(op.cycles, 0) << op.name;
    cycles += op.cycles;
    macs += op.macs;
  }
  EXPECT_EQ(cycles, rep.total_cycles);
  EXPECT_EQ(macs, rep.total_macs);
  EXPECT_NEAR(rep.latency_seconds, cycles / 100e6, 1e-12);
  EXPECT_GT(rep.utilization, 0.0);
  EXPECT_LE(rep.utilization, 1.0);
}

TEST(TinyVbfSchedule, LatencyScalesWithFrameDepth) {
  const AcceleratorSim sim;
  const models::TinyVbfConfig cfg = models::TinyVbfConfig::test(16, 32);
  const auto r1 = sim.run_tiny_vbf(cfg, 32);
  const auto r2 = sim.run_tiny_vbf(cfg, 64);
  EXPECT_NEAR(static_cast<double>(r2.total_cycles) / r1.total_cycles, 2.0,
              0.2);
}

TEST(TinyVbfSchedule, MacsMatchAnalyticCount) {
  // Scheduled MAC total must equal the model's matmul MACs
  // (ops_per_frame counts 2 ops per MAC plus non-matmul extras).
  const AcceleratorSim sim;
  const models::TinyVbfConfig cfg = models::TinyVbfConfig::paper();
  const AccelReport rep = sim.run_tiny_vbf(cfg, 368);
  Rng rng(1);
  const models::TinyVbf model(cfg, rng);
  const double ratio = 2.0 * static_cast<double>(rep.total_macs) /
                       static_cast<double>(model.ops_per_frame(368));
  EXPECT_GT(ratio, 0.85);
  EXPECT_LE(ratio, 1.0);
}

TEST(TinyVbfSchedule, PaperScaleRealTimeCapable) {
  // At 100 MHz the accelerator should beat the paper's 0.23 s CPU time by a
  // wide margin (that is the point of the deployment).
  const AcceleratorSim sim;
  const AccelReport rep = sim.run_tiny_vbf(models::TinyVbfConfig::paper(), 368);
  EXPECT_LT(rep.latency_seconds, 0.23);
  EXPECT_GT(rep.latency_seconds, 1e-5);
}

class ResourceLevels : public ::testing::Test {
 protected:
  ResourceModel model_;
  std::vector<ResourceReport> reports_ = model_.estimate_paper_levels();
  // Order: Float, 24, 20, 16, Hybrid-1, Hybrid-2.
};

TEST_F(ResourceLevels, FloatIsMostExpensive) {
  const auto& f = reports_[0];
  for (std::size_t i = 1; i < reports_.size(); ++i) {
    EXPECT_GT(f.lut, reports_[i].lut) << reports_[i].scheme;
    EXPECT_GT(f.ff, reports_[i].ff) << reports_[i].scheme;
    EXPECT_GT(f.lutram, reports_[i].lutram) << reports_[i].scheme;
    EXPECT_GE(f.power_w, reports_[i].power_w) << reports_[i].scheme;
    EXPECT_GE(f.bram36, reports_[i].bram36) << reports_[i].scheme;
  }
}

TEST_F(ResourceLevels, UniformLevelsDecreaseWithWidth) {
  // 24 >= 20 >= 16 for LUT/FF/power.
  EXPECT_GE(reports_[1].lut, reports_[2].lut);
  EXPECT_GE(reports_[2].lut, reports_[3].lut);
  EXPECT_GE(reports_[1].ff, reports_[2].ff);
  EXPECT_GE(reports_[2].ff, reports_[3].ff);
  EXPECT_GE(reports_[1].power_w, reports_[3].power_w);
}

TEST_F(ResourceLevels, BramCliffAt16Bits) {
  // <= 18-bit values pack two per BRAM word: 16-bit needs ~half the BRAM of
  // 20-bit (paper: 82 vs 156).
  EXPECT_LT(reports_[3].bram36, 0.65 * reports_[2].bram36);
}

TEST_F(ResourceLevels, Hybrid2SavesHalfVsFloat) {
  // The headline claim: > 50% resource reduction (Fig 1b).
  const auto& f = reports_[0];
  const auto& h2 = reports_[5];
  EXPECT_LT(h2.ff, 0.5 * f.ff);
  EXPECT_LT(h2.lut, 0.55 * f.lut);
  EXPECT_LT(h2.dsp, 0.55 * f.dsp);
  EXPECT_LT(h2.lutram, 0.35 * f.lutram);
}

TEST_F(ResourceLevels, DspMappingMatchesPaperQuirk) {
  // The paper reports fewer DSPs at 20-bit (148) than at 16-bit (274); the
  // model encodes that synthesis mapping.
  EXPECT_LT(reports_[2].dsp, reports_[3].dsp);
  EXPECT_NEAR(reports_[0].dsp, 533.0, 40.0);
  EXPECT_NEAR(reports_[2].dsp, 148.0, 30.0);
}

TEST_F(ResourceLevels, FitsOnZcu104) {
  const auto cap = ResourceModel::zcu104();
  for (const auto& r : reports_) {
    EXPECT_LT(r.lut, cap.lut) << r.scheme;
    EXPECT_LT(r.ff, cap.ff) << r.scheme;
    EXPECT_LT(r.bram36, cap.bram36) << r.scheme;
    EXPECT_LT(r.dsp, cap.dsp) << r.scheme;
  }
}

TEST(ResourceModelScaling, LanesScaleDatapathCosts) {
  const ResourceModel small(32), big(64);
  const auto s = small.estimate(quant::QuantScheme::uniform(16));
  const auto b = big.estimate(quant::QuantScheme::uniform(16));
  EXPECT_LT(s.lut, b.lut);
  EXPECT_LT(s.dsp, b.dsp);
  EXPECT_THROW(ResourceModel(0), InvalidArgument);
}

}  // namespace
}  // namespace tvbf::accel
