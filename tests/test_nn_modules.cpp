// Tests for the layer modules: shapes, parameter bookkeeping, attention
// structure and end-to-end gradient flow.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/modules.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double sigma = 1.0) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, sigma));
  return t;
}

TEST(Dense, ShapesAndParameterCount) {
  Rng rng(1);
  const Dense d(8, 3, rng);
  EXPECT_EQ(d.num_parameters(), 8 * 3 + 3);
  const Variable y2 = d.forward(constant(random_tensor({5, 8}, rng)));
  EXPECT_EQ(y2.shape(), (Shape{5, 3}));
  const Variable y3 = d.forward(constant(random_tensor({2, 5, 8}, rng)));
  EXPECT_EQ(y3.shape(), (Shape{2, 5, 3}));
  EXPECT_THROW(d.forward(constant(Tensor({5, 4}))), InvalidArgument);
  EXPECT_THROW(Dense(0, 3, rng), InvalidArgument);
}

TEST(Dense, GlorotInitBounded) {
  Rng rng(2);
  const Dense d(100, 100, rng);
  const double limit = std::sqrt(6.0 / 200.0);
  for (float v : d.weight().value().data()) {
    EXPECT_GE(v, -limit - 1e-6);
    EXPECT_LE(v, limit + 1e-6);
  }
  for (float v : d.bias().value().data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(LayerNormModule, ParametersAndForward) {
  Rng rng(3);
  LayerNorm ln(6);
  EXPECT_EQ(ln.num_parameters(), 12);
  const Variable y = ln.forward(constant(random_tensor({4, 6}, rng, 5.0)));
  EXPECT_EQ(y.shape(), (Shape{4, 6}));
  // Default gamma=1, beta=0 -> rows have near-zero mean.
  for (std::int64_t r = 0; r < 4; ++r) {
    double mu = 0.0;
    for (std::int64_t j = 0; j < 6; ++j) mu += y.value().at(r, j);
    EXPECT_NEAR(mu / 6.0, 0.0, 1e-4);
  }
  EXPECT_THROW(LayerNorm(0), InvalidArgument);
}

TEST(Mha, ShapeAndHeadSplit) {
  Rng rng(4);
  const MultiHeadAttention mha(12, 3, rng);
  EXPECT_EQ(mha.head_dim(), 4);
  const Variable y = mha.forward(constant(random_tensor({2, 7, 12}, rng)));
  EXPECT_EQ(y.shape(), (Shape{2, 7, 12}));
  EXPECT_THROW(MultiHeadAttention(10, 3, rng), InvalidArgument);
  EXPECT_THROW(mha.forward(constant(Tensor({7, 12}))), InvalidArgument);
}

TEST(Mha, ParameterCountIsFourProjections) {
  Rng rng(5);
  const MultiHeadAttention mha(8, 2, rng);
  EXPECT_EQ(mha.num_parameters(), 4 * (8 * 8 + 8));
}

TEST(Mha, AttendsToMatchingKey) {
  // Build an input where patch 0's query matches patch 2's key direction;
  // with identity-like projections this is hard to force exactly, so we
  // check the structural property instead: output depends on *other*
  // patches (global receptive field), unlike a pointwise layer.
  Rng rng(6);
  const MultiHeadAttention mha(8, 2, rng);
  Tensor x = random_tensor({1, 5, 8}, rng);
  const Tensor y0 = mha.forward(constant(x)).value();
  // Perturb a different patch than the one we read out.
  Tensor x2 = x;
  for (std::int64_t j = 0; j < 8; ++j) x2.at(0, 4, j) += 2.0f;
  const Tensor y1 = mha.forward(constant(x2)).value();
  double diff_patch0 = 0.0;
  for (std::int64_t j = 0; j < 8; ++j)
    diff_patch0 += std::fabs(y1.at(0, 0, j) - y0.at(0, 0, j));
  EXPECT_GT(diff_patch0, 1e-4);  // patch 0 sees patch 4 through attention
}

TEST(TransformerBlockModule, ShapePreservingAndResidual) {
  Rng rng(7);
  const TransformerBlock blk(8, 2, 16, rng);
  Tensor x = random_tensor({3, 6, 8}, rng);
  const Variable y = blk.forward(constant(x));
  EXPECT_EQ(y.shape(), (Shape{3, 6, 8}));
  // Residual path: output correlates strongly with input at init (layers
  // are small random perturbations around the skip connection).
  double dot = 0.0, nx = 0.0, ny = 0.0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    dot += static_cast<double>(x.flat(i)) * y.value().flat(i);
    nx += static_cast<double>(x.flat(i)) * x.flat(i);
    ny += static_cast<double>(y.value().flat(i)) * y.value().flat(i);
  }
  EXPECT_GT(dot / std::sqrt(nx * ny), 0.5);
}

TEST(TransformerBlockModule, ParameterAggregation) {
  Rng rng(8);
  const TransformerBlock blk(8, 2, 16, rng);
  const std::int64_t expected = 2 * (2 * 8)          // two layer norms
                                + 4 * (8 * 8 + 8)    // attention projections
                                + (8 * 16 + 16)      // fc1
                                + (16 * 8 + 8);      // fc2
  EXPECT_EQ(blk.num_parameters(), expected);
}

TEST(Conv2DModule, ShapeAndRelu) {
  Rng rng(9);
  const Conv2D conv(3, 3, 2, 4, rng, /*relu_activation=*/true);
  const Variable y = conv.forward(constant(random_tensor({5, 6, 2}, rng)));
  EXPECT_EQ(y.shape(), (Shape{5, 6, 4}));
  for (float v : y.value().data()) EXPECT_GE(v, 0.0f);
  const Conv2D lin(3, 3, 2, 4, rng, /*relu_activation=*/false);
  const Variable y2 = lin.forward(constant(random_tensor({5, 6, 2}, rng)));
  EXPECT_LT(min_value(y2.value()), 0.0f);  // linear output goes negative
}

TEST(Conv2DModule, RejectsEvenKernel) {
  Rng rng(10);
  EXPECT_THROW(Conv2D(2, 3, 1, 1, rng), InvalidArgument);
  EXPECT_THROW(Conv2D(3, 3, 0, 1, rng), InvalidArgument);
}

TEST(Modules, GradientFlowsThroughTransformerStack) {
  // End-to-end: a loss at the output must produce nonzero gradients on the
  // earliest parameters (no vanishing/blocked path through MHA + LN + MLP).
  Rng rng(11);
  const Dense embed(4, 8, rng);
  const TransformerBlock blk(8, 2, 16, rng);
  const Dense head(8, 1, rng);
  const Tensor x = random_tensor({2, 5, 4}, rng);
  Variable h = embed.forward(constant(x));
  h = blk.forward(h);
  h = head.forward(h);
  Variable loss = mean_all(mul(h, h));
  loss.backward();
  float embed_grad = 0.0f;
  for (float v : embed.weight().grad().data()) embed_grad += std::fabs(v);
  EXPECT_GT(embed_grad, 0.0f);
}

}  // namespace
}  // namespace tvbf::nn
