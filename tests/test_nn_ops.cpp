// Autodiff correctness: every differentiable op is verified against central
// finite differences, plus forward-value unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double sigma = 1.0) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, sigma));
  return t;
}

/// Checks d(scalar_fn)/d(inputs[i]) against central differences for every
/// input marked trainable. scalar_fn must rebuild the graph on each call
/// from the current input values.
void check_gradients(std::vector<Variable>& inputs,
                     const std::function<Variable()>& scalar_fn,
                     float eps = 1e-3f, float tol = 2e-2f) {
  Variable loss = scalar_fn();
  loss.backward();
  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (auto& in : inputs) analytic.push_back(in.grad());

  for (std::size_t vi = 0; vi < inputs.size(); ++vi) {
    Tensor& val = inputs[vi].mutable_value();
    for (std::int64_t i = 0; i < val.size(); ++i) {
      const float orig = val.flat(i);
      val.flat(i) = orig + eps;
      const float up = scalar_fn().value().flat(0);
      val.flat(i) = orig - eps;
      const float down = scalar_fn().value().flat(0);
      val.flat(i) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[vi].flat(i);
      const float denom = std::max({1.0f, std::fabs(numeric), std::fabs(a)});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "input " << vi << " element " << i;
    }
  }
}

TEST(Autodiff, BackwardRequiresScalar) {
  Variable v(Tensor({2, 2}, 1.0f), true);
  EXPECT_THROW(v.backward(), InvalidArgument);
}

TEST(Autodiff, LeafProperties) {
  Variable c = constant(Tensor({2}, 3.0f));
  Variable p = parameter(Tensor({2}, 3.0f));
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(p.requires_grad());
  Variable undefined;
  EXPECT_FALSE(undefined.defined());
  EXPECT_THROW(undefined.value(), InvalidArgument);
}

TEST(Autodiff, AddSubMulGradients) {
  Rng rng(1);
  std::vector<Variable> in{parameter(random_tensor({3, 4}, rng)),
                           parameter(random_tensor({3, 4}, rng))};
  check_gradients(in, [&] {
    return mean_all(mul(add(in[0], in[1]), sub(in[0], in[1])));
  });
}

TEST(Autodiff, ScaleAndBiasGradients) {
  Rng rng(2);
  std::vector<Variable> in{parameter(random_tensor({2, 5}, rng)),
                           parameter(random_tensor({5}, rng))};
  check_gradients(in, [&] {
    return mean_all(scale(add_bias(in[0], in[1]), 1.7f));
  });
}

TEST(Autodiff, ReluGradient) {
  Rng rng(3);
  std::vector<Variable> in{parameter(random_tensor({4, 4}, rng))};
  // Keep values away from the kink for a stable finite difference.
  for (auto& v : in[0].mutable_value().data())
    if (std::fabs(v) < 0.05f) v = 0.3f;
  check_gradients(in, [&] { return mean_all(relu(in[0])); });
}

TEST(Autodiff, TanhGradient) {
  Rng rng(4);
  std::vector<Variable> in{parameter(random_tensor({3, 3}, rng, 0.5))};
  check_gradients(in, [&] { return mean_all(tanh_v(in[0])); });
}

TEST(Autodiff, MatmulGradients) {
  Rng rng(5);
  std::vector<Variable> in{parameter(random_tensor({3, 4}, rng)),
                           parameter(random_tensor({4, 2}, rng))};
  check_gradients(in, [&] { return mean_all(matmul(in[0], in[1])); });
}

TEST(Autodiff, BatchedMatmulBroadcastGradients) {
  Rng rng(6);
  std::vector<Variable> in{parameter(random_tensor({2, 3, 4}, rng)),
                           parameter(random_tensor({4, 3}, rng))};
  check_gradients(in, [&] { return mean_all(batched_matmul(in[0], in[1])); });
}

TEST(Autodiff, BatchedMatmulFullGradients) {
  Rng rng(7);
  std::vector<Variable> in{parameter(random_tensor({2, 3, 4}, rng)),
                           parameter(random_tensor({2, 4, 2}, rng))};
  check_gradients(in, [&] { return mean_all(batched_matmul(in[0], in[1])); });
}

TEST(Autodiff, ReshapeTransposeGradients) {
  Rng rng(8);
  std::vector<Variable> in{parameter(random_tensor({2, 3, 4}, rng))};
  check_gradients(in, [&] {
    return mean_all(mul(transpose_last2(in[0]),
                        reshape(in[0], {2, 4, 3})));
  });
}

TEST(Autodiff, SliceConcatGradients) {
  Rng rng(9);
  std::vector<Variable> in{parameter(random_tensor({3, 6}, rng))};
  check_gradients(in, [&] {
    const Variable a = slice_last(in[0], 0, 2);
    const Variable b = slice_last(in[0], 2, 6);
    return mean_all(mul(concat_last(b, a), in[0]));
  });
}

TEST(Autodiff, SoftmaxGradient) {
  Rng rng(10);
  std::vector<Variable> in{parameter(random_tensor({3, 5}, rng))};
  std::vector<Variable> weights{constant(random_tensor({3, 5}, rng))};
  check_gradients(in, [&] {
    return mean_all(mul(softmax_last(in[0]), weights[0]));
  });
}

TEST(Autodiff, SoftmaxRowsSumToOne) {
  Rng rng(11);
  const Variable y = softmax_last(constant(random_tensor({4, 7}, rng, 3.0)));
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) s += y.value().at(r, j);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Autodiff, SoftmaxIsStableForLargeInputs) {
  Tensor big({1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  const Variable y = softmax_last(constant(big));
  EXPECT_TRUE(std::isfinite(y.value().at(0, 0)));
  EXPECT_GT(y.value().at(0, 1), y.value().at(0, 0));
}

TEST(Autodiff, LayerNormGradients) {
  Rng rng(12);
  std::vector<Variable> in{parameter(random_tensor({4, 6}, rng)),
                           parameter(random_tensor({6}, rng, 0.5)),
                           parameter(random_tensor({6}, rng, 0.5))};
  std::vector<Variable> w{constant(random_tensor({4, 6}, rng))};
  check_gradients(
      in,
      [&] { return mean_all(mul(layer_norm(in[0], in[1], in[2]), w[0])); },
      /*eps=*/1e-2f, /*tol=*/3e-2f);
}

TEST(Autodiff, LayerNormNormalizesRows) {
  Rng rng(13);
  const Variable gamma = constant(Tensor::ones({8}));
  const Variable beta = constant(Tensor({8}));
  const Variable y =
      layer_norm(constant(random_tensor({5, 8}, rng, 4.0)), gamma, beta);
  for (std::int64_t r = 0; r < 5; ++r) {
    double mu = 0.0, var = 0.0;
    for (std::int64_t j = 0; j < 8; ++j) mu += y.value().at(r, j);
    mu /= 8.0;
    for (std::int64_t j = 0; j < 8; ++j) {
      const double d = y.value().at(r, j) - mu;
      var += d * d;
    }
    var /= 8.0;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 2e-2);
  }
}

TEST(Autodiff, Conv2dGradients) {
  Rng rng(14);
  std::vector<Variable> in{parameter(random_tensor({4, 5, 2}, rng)),
                           parameter(random_tensor({3, 3, 2, 3}, rng, 0.5)),
                           parameter(random_tensor({3}, rng, 0.5))};
  check_gradients(
      in, [&] { return mean_all(conv2d_same(in[0], in[1], in[2])); },
      /*eps=*/1e-2f, /*tol=*/3e-2f);
}

TEST(Autodiff, Conv2dIdentityKernel) {
  // A 1x1 identity kernel must reproduce the input.
  Rng rng(15);
  const Tensor x = random_tensor({3, 4, 2}, rng);
  Tensor k({1, 1, 2, 2});
  k.at(0, 0, 0, 0) = 1.0f;
  k.at(0, 0, 1, 1) = 1.0f;
  const Variable y =
      conv2d_same(constant(x), constant(k), constant(Tensor({2})));
  EXPECT_TRUE(allclose(y.value(), x));
}

TEST(Autodiff, Conv2dShapeChecks) {
  Rng rng(16);
  const Variable x = constant(random_tensor({3, 3, 2}, rng));
  EXPECT_THROW(conv2d_same(x, constant(Tensor({2, 2, 2, 1})),
                           constant(Tensor({1}))),
               InvalidArgument);  // even kernel
  EXPECT_THROW(conv2d_same(x, constant(Tensor({3, 3, 4, 1})),
                           constant(Tensor({1}))),
               InvalidArgument);  // Cin mismatch
  EXPECT_THROW(conv2d_same(x, constant(Tensor({3, 3, 2, 1})),
                           constant(Tensor({2}))),
               InvalidArgument);  // bias length
}

TEST(Autodiff, SumLastGradients) {
  Rng rng(17);
  std::vector<Variable> in{parameter(random_tensor({3, 4, 5}, rng))};
  check_gradients(in, [&] { return mean_all(sum_last(in[0])); });
}

TEST(Autodiff, SumLastForward) {
  Tensor x({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Variable y = sum_last(constant(x));
  ASSERT_EQ(y.value().shape(), (Shape{2}));
  EXPECT_FLOAT_EQ(y.value().at(0), 6.0f);
  EXPECT_FLOAT_EQ(y.value().at(1), 15.0f);
}

TEST(Autodiff, MseLossGradientsAndValue) {
  Rng rng(18);
  const Tensor target = random_tensor({3, 4}, rng);
  std::vector<Variable> in{parameter(random_tensor({3, 4}, rng))};
  check_gradients(in, [&] { return mse_loss(in[0], target); });
  const Variable zero_loss = mse_loss(constant(target), target);
  EXPECT_FLOAT_EQ(zero_loss.value().flat(0), 0.0f);
  EXPECT_THROW(mse_loss(in[0], Tensor({2, 2})), InvalidArgument);
}

TEST(Autodiff, GradientAccumulatesThroughSharedNodes) {
  // y = x * x uses x twice; dy/dx = 2x must accumulate from both paths.
  Variable x = parameter(Tensor({1}, std::vector<float>{3.0f}));
  Variable loss = mean_all(mul(x, x));
  loss.backward();
  EXPECT_NEAR(x.grad().flat(0), 6.0f, 1e-5);
}

TEST(Autodiff, ZeroGradResets) {
  Variable x = parameter(Tensor({1}, std::vector<float>{2.0f}));
  Variable loss = mean_all(mul(x, x));
  loss.backward();
  EXPECT_NE(x.grad().flat(0), 0.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad().flat(0), 0.0f);
}

TEST(Autodiff, DeepChainGradient) {
  // Long chains must not diverge: d/dx of (((x*1.01)*1.01)*...) is 1.01^n.
  Variable x = parameter(Tensor({1}, std::vector<float>{1.0f}));
  Variable y = x;
  for (int i = 0; i < 50; ++i) y = scale(y, 1.01f);
  Variable loss = mean_all(y);
  loss.backward();
  EXPECT_NEAR(x.grad().flat(0), std::pow(1.01f, 50), 1e-3);
}

}  // namespace
}  // namespace tvbf::nn
