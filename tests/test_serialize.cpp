// Weight serialization round-trip and corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hpp"
#include "nn/modules.hpp"
#include "nn/serialize.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/tvbf_weights_test.bin";
};

TEST_F(SerializeTest, RoundTripRestoresValues) {
  Rng rng(1);
  const Dense d1(6, 4, rng);
  auto params = d1.parameters();
  save_parameters(params, path_);

  Rng rng2(99);  // different init
  const Dense d2(6, 4, rng2);
  auto params2 = d2.parameters();
  ASSERT_FALSE(allclose(params2[0].value(), params[0].value()));
  load_parameters(params2, path_);
  EXPECT_TRUE(allclose(params2[0].value(), params[0].value(), 0.0f, 0.0f));
  EXPECT_TRUE(allclose(params2[1].value(), params[1].value(), 0.0f, 0.0f));
}

TEST_F(SerializeTest, CountMismatchThrows) {
  Rng rng(2);
  const Dense d(3, 3, rng);
  auto params = d.parameters();
  save_parameters(params, path_);
  std::vector<Variable> fewer{params[0]};
  EXPECT_THROW(load_parameters(fewer, path_), InvalidArgument);
}

TEST_F(SerializeTest, ShapeMismatchThrows) {
  Rng rng(3);
  const Dense d(3, 3, rng);
  auto params = d.parameters();
  save_parameters(params, path_);
  const Dense other(4, 3, rng);
  auto params2 = other.parameters();
  EXPECT_THROW(load_parameters(params2, path_), InvalidArgument);
}

TEST_F(SerializeTest, RejectsGarbageFile) {
  std::ofstream os(path_, std::ios::binary);
  os << "not a weight file";
  os.close();
  Rng rng(4);
  const Dense d(2, 2, rng);
  auto params = d.parameters();
  EXPECT_THROW(load_parameters(params, path_), InvalidArgument);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  Rng rng(5);
  const Dense d(8, 8, rng);
  auto params = d.parameters();
  save_parameters(params, path_);
  // Truncate the payload.
  std::ifstream is(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  is.close();
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  os.write(contents.data(),
           static_cast<std::streamsize>(contents.size() / 2));
  os.close();
  EXPECT_THROW(load_parameters(params, path_), InvalidArgument);
}

TEST_F(SerializeTest, MissingFileThrows) {
  Rng rng(6);
  const Dense d(2, 2, rng);
  auto params = d.parameters();
  EXPECT_THROW(load_parameters(params, "/nonexistent/dir/w.bin"),
               InvalidArgument);
  EXPECT_THROW(save_parameters(params, "/nonexistent/dir/w.bin"),
               InvalidArgument);
}

}  // namespace
}  // namespace tvbf::nn
