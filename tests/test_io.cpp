// Tests for the artifact writers (PGM images, CSV series).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/writers.hpp"

namespace tvbf::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(pgm_.c_str());
    std::remove(csv_.c_str());
  }
  std::string pgm_ = ::testing::TempDir() + "/tvbf_test.pgm";
  std::string csv_ = ::testing::TempDir() + "/tvbf_test.csv";
};

TEST_F(IoTest, PgmHeaderAndPixelMapping) {
  Tensor db({2, 3});
  db.at(0, 0) = 0.0f;     // peak -> 255
  db.at(0, 1) = -30.0f;   // mid -> ~127
  db.at(0, 2) = -60.0f;   // floor -> 0
  db.at(1, 0) = -90.0f;   // below floor -> clamped to 0
  write_pgm_db(pgm_, db, 60.0);
  std::ifstream is(pgm_, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  is >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  is.get();  // single whitespace after header
  unsigned char px[6];
  is.read(reinterpret_cast<char*>(px), 6);
  EXPECT_EQ(px[0], 255);
  EXPECT_NEAR(px[1], 128, 2);
  EXPECT_EQ(px[2], 0);
  EXPECT_EQ(px[3], 0);
}

TEST_F(IoTest, PgmRejectsBadInput) {
  EXPECT_THROW(write_pgm_db(pgm_, Tensor({4}), 60.0), InvalidArgument);
  EXPECT_THROW(write_pgm_db(pgm_, Tensor({2, 2}), -1.0), InvalidArgument);
  EXPECT_THROW(write_pgm_db("/nonexistent/x.pgm", Tensor({2, 2}), 60.0),
               InvalidArgument);
}

TEST_F(IoTest, CsvRoundTrip) {
  write_csv(csv_, {"a", "b"}, {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  std::ifstream is(csv_);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "1,4");
  std::getline(is, line);
  EXPECT_EQ(line, "2,5");
}

TEST_F(IoTest, CsvValidation) {
  EXPECT_THROW(write_csv(csv_, {"a"}, {}), InvalidArgument);
  EXPECT_THROW(write_csv(csv_, {"a", "b"}, {{1.0}}), InvalidArgument);
  EXPECT_THROW(write_csv(csv_, {"a", "b"}, {{1.0}, {1.0, 2.0}}),
               InvalidArgument);
}

TEST_F(IoTest, EnsureDirectoryCreatesNested) {
  const std::string dir = ::testing::TempDir() + "/tvbf_io_a/b/c";
  ensure_directory(dir);
  std::ofstream probe(dir + "/probe.txt");
  EXPECT_TRUE(probe.is_open());
  ensure_directory(dir);  // idempotent
}

}  // namespace
}  // namespace tvbf::io
