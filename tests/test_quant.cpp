// Tests for fixed-point quantization: formats, fake-quant vs integer
// arithmetic equivalence, schemes, and the quantized Tiny-VBF kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "quant/fixed_point.hpp"
#include "quant/quantized_tiny_vbf.hpp"
#include "quant/scheme.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::quant {
namespace {

TEST(FixedFormat, RangesAndStep) {
  FixedFormat f{16, 11};
  EXPECT_DOUBLE_EQ(f.step(), 1.0 / 2048.0);
  EXPECT_DOUBLE_EQ(f.max_value(), (32768.0 - 1.0) / 2048.0);
  EXPECT_DOUBLE_EQ(f.min_value(), -16.0);
  EXPECT_NO_THROW(f.validate());
  EXPECT_THROW((FixedFormat{1, 0}).validate(), InvalidArgument);
  EXPECT_THROW((FixedFormat{16, 16}).validate(), InvalidArgument);
}

TEST(Quantize, RoundsToNearestStep) {
  const FixedFormat f{8, 4};  // step 1/16
  EXPECT_FLOAT_EQ(quantize_value(0.5f, f), 0.5f);
  EXPECT_FLOAT_EQ(quantize_value(0.51f, f), 0.5f);
  EXPECT_FLOAT_EQ(quantize_value(0.54f, f), 0.5625f);
  EXPECT_FLOAT_EQ(quantize_value(-0.51f, f), -0.5f);
}

TEST(Quantize, Saturates) {
  const FixedFormat f{8, 4};  // range [-8, 7.9375]
  EXPECT_FLOAT_EQ(quantize_value(100.0f, f), 7.9375f);
  EXPECT_FLOAT_EQ(quantize_value(-100.0f, f), -8.0f);
  EXPECT_FLOAT_EQ(quantize_value(std::numeric_limits<float>::infinity(), f),
                  7.9375f);
}

class QuantBits : public ::testing::TestWithParam<int> {};

TEST_P(QuantBits, ErrorBoundedByHalfStep) {
  // Property: |q(x) - x| <= step/2 inside the representable range.
  const FixedFormat f = activation_format(GetParam(), 4);
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-15.0, 15.0));
    const float q = quantize_value(x, f);
    EXPECT_LE(std::fabs(q - x), f.step() / 2.0 + 1e-9) << "x=" << x;
  }
}

TEST_P(QuantBits, MoreBitsNeverWorse) {
  const FixedFormat coarse = activation_format(GetParam(), 4);
  const FixedFormat fine = activation_format(GetParam() + 4, 4);
  Rng rng(GetParam() + 100);
  double err_coarse = 0.0, err_fine = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-10.0, 10.0));
    err_coarse += std::fabs(quantize_value(x, coarse) - x);
    err_fine += std::fabs(quantize_value(x, fine) - x);
  }
  EXPECT_LE(err_fine, err_coarse);
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantBits,
                         ::testing::Values(8, 12, 16, 20, 24));

TEST(Quantize, TensorInplaceAndCopy) {
  Tensor t({3}, std::vector<float>{0.51f, -0.49f, 100.0f});
  const FixedFormat f{8, 4};
  const Tensor q = quantized(t, f);
  EXPECT_FLOAT_EQ(q.at(0), 0.5f);
  EXPECT_FLOAT_EQ(q.at(2), 7.9375f);
  EXPECT_FLOAT_EQ(t.at(0), 0.51f);  // original untouched
  quantize_tensor_inplace(t, f);
  EXPECT_FLOAT_EQ(t.at(0), 0.5f);
}

TEST(FormatFactories, ActivationAndWeightFormats) {
  const FixedFormat a = activation_format(16, 4);
  EXPECT_EQ(a.bits, 16);
  EXPECT_EQ(a.frac_bits, 11);
  EXPECT_THROW(activation_format(8, 8), InvalidArgument);
  Tensor w({2}, std::vector<float>{0.3f, -0.7f});  // max < 1 -> 0 int bits
  const FixedFormat wf = weight_format_for(w, 8);
  EXPECT_EQ(wf.frac_bits, 7);
  Tensor w2({2}, std::vector<float>{3.5f, -0.7f});  // needs 2 int bits
  EXPECT_EQ(weight_format_for(w2, 8).frac_bits, 5);
}

TEST(Fixed, IntegerMatchesFakeQuant) {
  // The Fixed value type and quantize_value must agree on construction.
  const FixedFormat f{12, 8};
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.uniform(-7.0, 7.0));
    EXPECT_FLOAT_EQ(Fixed(x, f).to_float(), quantize_value(x, f));
  }
}

TEST(Fixed, AdditionAndSaturation) {
  const FixedFormat f{8, 4};
  const Fixed a(3.0f, f), b(4.0f, f);
  EXPECT_FLOAT_EQ((a + b).to_float(), 7.0f);
  const Fixed c(7.0f, f), d(5.0f, f);
  EXPECT_FLOAT_EQ((c + d).to_float(), 7.9375f);  // saturated
}

TEST(Fixed, MultiplicationRequantizes) {
  const FixedFormat f{16, 8};
  const Fixed a(1.5f, f), b(2.25f, f);
  EXPECT_NEAR((a * b).to_float(), 3.375f, f.step());
  // Product of small values rounds toward the grid.
  const Fixed s1(0.00390625f, f), s2(0.5f, f);
  EXPECT_NEAR((s1 * s2).to_float(), 0.00390625f * 0.5f, f.step());
}

TEST(Fixed, MultiplicationMatchesNearbyintExhaustively) {
  // Regression: the old negative-tie handling (`wide + half - 1 >> shift`)
  // rounded -0.5-step products toward -inf while quantize_value rounds ties
  // to even, so the integer accelerator path disagreed with tensor
  // quantization on exactly those products. Sweep every representable pair
  // for several small widths; products of these magnitudes are exact in
  // float, so quantize_value of the real product is the ground truth.
  for (const auto& f : {FixedFormat{4, 2}, FixedFormat{5, 3}, FixedFormat{6, 3},
                        FixedFormat{6, 5}}) {
    const std::int64_t lo = -(std::int64_t{1} << (f.bits - 1));
    const std::int64_t hi = (std::int64_t{1} << (f.bits - 1)) - 1;
    for (std::int64_t ra = lo; ra <= hi; ++ra) {
      for (std::int64_t rb = lo; rb <= hi; ++rb) {
        const float av = static_cast<float>(static_cast<double>(ra) * f.step());
        const float bv = static_cast<float>(static_cast<double>(rb) * f.step());
        const Fixed a(av, f), b(bv, f);
        ASSERT_EQ(a.raw(), ra);
        ASSERT_EQ(b.raw(), rb);
        const float product = av * bv;  // exact: few mantissa bits
        EXPECT_FLOAT_EQ((a * b).to_float(), quantize_value(product, f))
            << "bits=" << f.bits << " frac=" << f.frac_bits << " a=" << av
            << " b=" << bv;
      }
    }
  }
}

TEST(Fixed, MultiplicationNegativeTieRoundsToEven) {
  // The smallest concrete disagreement case: with 2 fractional bits,
  // (-0.25) * 0.5 = -0.125 = -0.5 steps, a tie, which must round to the
  // even raw value 0, not to -1 (-0.25).
  const FixedFormat f{4, 2};
  const Fixed a(-0.25f, f), b(0.5f, f);
  EXPECT_EQ((a * b).raw(), 0);
  EXPECT_FLOAT_EQ((a * b).to_float(), quantize_value(-0.125f, f));
}

TEST(Fixed, MixedFormatAddThrows) {
  const Fixed a(1.0f, FixedFormat{8, 4});
  const Fixed b(1.0f, FixedFormat{8, 5});
  EXPECT_THROW(a + b, InvalidArgument);
}

TEST(Scheme, PaperLevels) {
  const auto levels = QuantScheme::paper_levels();
  ASSERT_EQ(levels.size(), 6u);
  EXPECT_TRUE(levels[0].is_float);
  EXPECT_EQ(levels[1].op_bits, 24);
  EXPECT_EQ(levels[3].op_bits, 16);
  // Table III: hybrids keep weights at 8 bits and softmax at 24.
  EXPECT_EQ(levels[4].weight_bits, 8);
  EXPECT_EQ(levels[4].softmax_bits, 24);
  EXPECT_EQ(levels[4].op_bits, 20);
  EXPECT_EQ(levels[5].op_bits, 16);
  EXPECT_THROW(QuantScheme::uniform(4), InvalidArgument);
}

TEST(RelativeQuantError, ZeroForIdentical) {
  Tensor a({4}, std::vector<float>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(relative_quant_error(a, a), 0.0);
  Tensor b = a;
  b.at(0) = 1.1f;
  EXPECT_NEAR(relative_quant_error(a, b), 0.1 / 4.0, 1e-6);
}

class QuantizedModel : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    model_ = std::make_unique<models::TinyVbf>(
        models::TinyVbfConfig::test(8, 16), rng);
    Rng drng(43);
    input_ = Tensor({10, 16, 8});
    for (auto& v : input_.data())
      v = static_cast<float>(drng.uniform(-1.0, 1.0));
    reference_ = model_->infer(input_);
  }

  std::unique_ptr<models::TinyVbf> model_;
  Tensor input_;
  Tensor reference_;
};

TEST_F(QuantizedModel, FloatSchemeIsExact) {
  const QuantizedTinyVbf q(*model_, QuantScheme::float_reference());
  const Tensor out = q.infer(input_);
  EXPECT_TRUE(allclose(out, reference_, 1e-6f, 1e-6f))
      << "max diff " << max_abs_diff(out, reference_);
}

TEST_F(QuantizedModel, ErrorShrinksWithWiderDatapath) {
  // The mechanism behind Tables IV/V: 24/20-bit ~ float, 16-bit degraded.
  double prev_err = 1e9;
  for (int bits : {12, 16, 20, 24}) {
    const QuantizedTinyVbf q(*model_, QuantScheme::uniform(bits));
    const double err = relative_quant_error(reference_, q.infer(input_));
    EXPECT_LT(err, prev_err * 1.5) << bits << " bits";
    prev_err = err;
  }
  const QuantizedTinyVbf q24(*model_, QuantScheme::uniform(24));
  EXPECT_LT(relative_quant_error(reference_, q24.infer(input_)), 5e-3);
  const QuantizedTinyVbf q12(*model_, QuantScheme::uniform(12));
  EXPECT_GT(relative_quant_error(reference_, q12.infer(input_)), 1e-3);
}

TEST_F(QuantizedModel, HybridsTrackTheirOpWidth) {
  const QuantizedTinyVbf h1(*model_, QuantScheme::hybrid1());
  const QuantizedTinyVbf h2(*model_, QuantScheme::hybrid2());
  const double e1 = relative_quant_error(reference_, h1.infer(input_));
  const double e2 = relative_quant_error(reference_, h2.infer(input_));
  EXPECT_LT(e1, 0.2);
  EXPECT_LE(e1, e2 * 1.5);  // hybrid-1 (20-bit ops) at least as good
}

TEST_F(QuantizedModel, WeightStorageShrinksWithHybrid) {
  const QuantizedTinyVbf f(*model_, QuantScheme::float_reference());
  const QuantizedTinyVbf h2(*model_, QuantScheme::hybrid2());
  EXPECT_EQ(h2.weight_storage_bits() * 4, f.weight_storage_bits());
}

TEST_F(QuantizedModel, RejectsWrongShape) {
  const QuantizedTinyVbf q(*model_, QuantScheme::hybrid1());
  EXPECT_THROW(q.infer(Tensor({10, 16, 4})), InvalidArgument);
}

}  // namespace
}  // namespace tvbf::quant
