// Unit tests for tvbf-check (tools/check): one fixture snippet per rule,
// the suppression/allowlist escape hatches, and a clean run over the real
// checked-in tree (the same gate CI runs via the tvbf-check binary).
#include "check/checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using tvbf::check::check_file;
using tvbf::check::check_tree;
using tvbf::check::collect_atomic_names;
using tvbf::check::Config;
using tvbf::check::Finding;
using tvbf::check::parse_config;

Config test_config() {
  return parse_config(
      "[layers]\n"
      "layer = common\n"
      "layer = dsp io\n"
      "layer = runtime\n"
      "[atomics]\n"
      "allow_implicit = tests/legacy_counters.cpp\n"
      "[threads]\n"
      "allow = src/runtime/pool.cpp\n"
      "[instruments]\n"
      "prefix = serve.\n"
      "prefix = graph.\n");
}

/// Runs the checker on one snippet, collecting atomic names from the
/// snippet itself first (as check_tree would).
std::vector<Finding> run(const std::string& path, const std::string& code) {
  std::set<std::string> atomics;
  collect_atomic_names(code, atomics);
  return check_file(test_config(), path, code, atomics);
}

bool has(const std::vector<Finding>& findings, const std::string& rule,
         int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// ---------------------------------------------------------------------------
// Config parsing

TEST(CheckConfig, ParsesLayersAndAllowlists) {
  const Config c = test_config();
  ASSERT_EQ(c.layers.size(), 3u);
  EXPECT_EQ(c.layers[1], (std::vector<std::string>{"dsp", "io"}));
  ASSERT_EQ(c.atomics_allow_implicit.size(), 1u);
  EXPECT_EQ(c.thread_allow[0], "src/runtime/pool.cpp");
  ASSERT_EQ(c.instrument_prefixes.size(), 2u);
  EXPECT_EQ(c.instrument_prefixes[0], "serve.");
}

TEST(CheckConfig, RejectsDuplicateModuleAndUnknownSection) {
  EXPECT_THROW(parse_config("[layers]\nlayer = a\nlayer = a\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config("[layers]\nlayer = a\n[bogus]\nx = y\n"),
               std::runtime_error);
  EXPECT_THROW(parse_config("# only comments\n"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Layering

TEST(CheckLayering, FlagsBackEdgeWithFileAndLine) {
  const auto f = run("src/common/util.cpp",
                     "#include <vector>\n"
                     "#include \"runtime/pipeline.hpp\"\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].file, "src/common/util.cpp");
  EXPECT_EQ(f[0].line, 2);
  EXPECT_EQ(f[0].rule, "layering");
}

TEST(CheckLayering, FlagsSameLayerCrossModuleInclude) {
  const auto f = run("src/dsp/filter.cpp", "#include \"io/loader.hpp\"\n");
  EXPECT_TRUE(has(f, "layering", 1));
}

TEST(CheckLayering, AllowsDownwardAndSameModuleIncludes) {
  const auto f = run("src/runtime/pipeline.cpp",
                     "#include \"runtime/pipeline.hpp\"\n"
                     "#include \"dsp/filter.hpp\"\n"
                     "#include \"common/error.hpp\"\n");
  EXPECT_TRUE(f.empty());
}

TEST(CheckLayering, IgnoresCommentedOutIncludes) {
  const auto f = run("src/common/util.cpp",
                     "// #include \"runtime/pipeline.hpp\"\n"
                     "/* #include \"runtime/pipeline.hpp\" */\n");
  EXPECT_TRUE(f.empty());
}

TEST(CheckLayering, FlagsUnknownModule) {
  const auto f = run("src/common/util.cpp", "#include \"mystery/x.hpp\"\n");
  EXPECT_TRUE(has(f, "layering", 1));
}

// ---------------------------------------------------------------------------
// Atomics discipline

TEST(CheckAtomics, FlagsImplicitSeqCstLoadStore) {
  const std::string code =
      "#include <atomic>\n"
      "std::atomic<int> flag{0};\n"
      "int f() { flag.store(1); return flag.load(); }\n";
  const auto f = run("src/common/flag.cpp", code);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "atomic-order");
  EXPECT_EQ(f[0].line, 3);
}

TEST(CheckAtomics, AcceptsExplicitOrders) {
  const std::string code =
      "std::atomic<int> flag{0};\n"
      "int f() {\n"
      "  flag.store(1, std::memory_order_release);\n"
      "  flag.fetch_add(1,\n"
      "                 std::memory_order_relaxed);\n"
      "  return flag.load(std::memory_order_acquire);\n"
      "}\n";
  EXPECT_TRUE(run("src/common/flag.cpp", code).empty());
}

TEST(CheckAtomics, CompareExchangeNeedsBothOrders) {
  const std::string one_order =
      "std::atomic<int> v{0};\n"
      "bool f(int& e) {\n"
      "  return v.compare_exchange_weak(e, 1, std::memory_order_acq_rel);\n"
      "}\n";
  EXPECT_TRUE(has(run("src/common/v.cpp", one_order), "atomic-order", 3));

  const std::string both =
      "std::atomic<int> v{0};\n"
      "bool f(int& e) {\n"
      "  return v.compare_exchange_strong(e, 1, std::memory_order_acq_rel,\n"
      "                                   std::memory_order_acquire);\n"
      "}\n";
  EXPECT_TRUE(run("src/common/v.cpp", both).empty());
}

TEST(CheckAtomics, IgnoresNonAtomicReceivers) {
  // `archive.load(...)` is a plain method named load; no atomic named
  // `archive` is ever declared, so this must not be flagged.
  const std::string code =
      "struct Archive { int load(const char* p); };\n"
      "int f(Archive& archive) { return archive.load(\"w.bin\"); }\n";
  EXPECT_TRUE(run("src/common/a.cpp", code).empty());
}

TEST(CheckAtomics, AllowlistPermitsImplicitSeqCst) {
  const std::string code =
      "std::atomic<int> hits{0};\n"
      "void f() { hits.fetch_add(1); }\n";
  EXPECT_FALSE(run("tests/other.cpp", code).empty());
  EXPECT_TRUE(run("tests/legacy_counters.cpp", code).empty());
}

TEST(CheckAtomics, NamesCollectedAcrossFiles) {
  // Member declared in one file, poked from another — the shared name set
  // carries the declaration across.
  std::set<std::string> atomics;
  collect_atomic_names("struct S { std::atomic<bool> done_{false}; };\n",
                       atomics);
  const auto f = check_file(test_config(), "src/common/user.cpp",
                            "void f(S& s) { s.done_.store(true); }\n",
                            atomics);
  EXPECT_TRUE(has(f, "atomic-order", 1));
}

// ---------------------------------------------------------------------------
// Hygiene: banned calls, naked new/delete, threads, pragma once, contracts

TEST(CheckHygiene, FlagsBannedCallsButNotBoundedVariants) {
  const std::string code =
      "#include <cstdio>\n"
      "void f(char* b) {\n"
      "  printf(\"x\");\n"
      "  std::snprintf(b, 4, \"y\");\n"
      "  int sprintf_count = 0; (void)sprintf_count;\n"
      "}\n";
  const auto f = run("src/common/log.cpp", code);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_TRUE(has(f, "banned-call", 3));
}

TEST(CheckHygiene, FlagsNakedNewAndDeleteButNotDeletedFunctions) {
  const std::string code =
      "struct S {\n"
      "  S(const S&) = delete;\n"
      "  S& operator=(const S&) =\n"
      "      delete;\n"
      "};\n"
      "void f() { int* p = new int(1); delete p; }\n";
  const auto f = run("src/common/s.cpp", code);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(has(f, "naked-new", 6));
  EXPECT_TRUE(has(f, "naked-delete", 6));
}

TEST(CheckHygiene, SuppressionCommentSilencesFinding) {
  const std::string same_line =
      "void f() {\n"
      "  int* p = new int(1);  // tvbf-check: allow(naked-new) leaked: why\n"
      "  (void)p;\n"
      "}\n";
  EXPECT_TRUE(run("src/common/s.cpp", same_line).empty());

  const std::string line_above =
      "void f() {\n"
      "  // tvbf-check: allow(naked-new) leaked singleton\n"
      "  int* p = new int(1);\n"
      "  (void)p;\n"
      "}\n";
  EXPECT_TRUE(run("src/common/s.cpp", line_above).empty());

  // A suppression for a DIFFERENT rule must not silence this one.
  const std::string wrong_rule =
      "void f() {\n"
      "  int* p = new int(1);  // tvbf-check: allow(thread)\n"
      "  (void)p;\n"
      "}\n";
  EXPECT_TRUE(has(run("src/common/s.cpp", wrong_rule), "naked-new", 2));
}

TEST(CheckHygiene, FlagsThreadOutsideAllowlistOnly) {
  const std::string code =
      "#include <thread>\n"
      "void f() {\n"
      "  unsigned n = std::thread::hardware_concurrency(); (void)n;\n"
      "  std::thread t([] {}); t.join();\n"
      "}\n";
  const auto flagged = run("src/common/w.cpp", code);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_TRUE(has(flagged, "thread", 4));
  EXPECT_TRUE(run("src/runtime/pool.cpp", code).empty());
}

TEST(CheckHygiene, FlagsHeaderMissingPragmaOnce) {
  EXPECT_TRUE(has(run("src/common/h.hpp", "int x();\n"), "pragma-once", 1));
  EXPECT_TRUE(run("src/common/h.hpp", "#pragma once\nint x();\n").empty());
  // Source files need no pragma.
  EXPECT_TRUE(run("src/common/h.cpp", "int x() { return 1; }\n").empty());
}

TEST(CheckContracts, FlagsSideEffectingRequire) {
  const std::string bad =
      "void f(int n) {\n"
      "  TVBF_REQUIRE(n++ < 4, \"n\");\n"
      "  TVBF_ENSURE(n = 3, \"typo'd comparison\");\n"
      "}\n";
  const auto f = run("src/common/c.cpp", bad);
  EXPECT_TRUE(has(f, "require-side-effect", 2));
  EXPECT_TRUE(has(f, "require-side-effect", 3));

  const std::string good =
      "void f(int n, int m) {\n"
      "  TVBF_REQUIRE(n <= 4 && m >= 2, \"bounds\");\n"
      "  TVBF_REQUIRE(n != m, \"distinct\");\n"
      "  TVBF_ENSURE(check(n, m), \"pure call\");\n"
      "}\n";
  EXPECT_TRUE(run("src/common/c.cpp", good).empty());
}

// ---------------------------------------------------------------------------
// Instrument naming

TEST(CheckInstruments, FlagsBadCharsetAndMissingPrefix) {
  const std::string bad =
      "void f(Registry& reg) {\n"
      "  reg.counter(\"Serve.Frames\");\n"          // uppercase
      "  reg.gauge(\"serve queue depth\");\n"       // spaces
      "  reg.histogram(\"latency_s\");\n"           // no namespace prefix
      "  reg.counter(\"serve.frames.\");\n"         // trailing dot
      "}\n";
  const auto f = run("src/runtime/r.cpp", bad);
  EXPECT_TRUE(has(f, "instrument-name", 2));
  EXPECT_TRUE(has(f, "instrument-name", 3));
  EXPECT_TRUE(has(f, "instrument-name", 4));
  EXPECT_TRUE(has(f, "instrument-name", 5));
}

TEST(CheckInstruments, AcceptsPrefixedNamesAndComposedFragments) {
  const std::string good =
      "void f(Registry& reg, const std::string& id) {\n"
      "  reg.counter(\"serve.frames\");\n"
      "  reg.gauge(\"graph.ready_queue\");\n"
      // A fragment composed with + is charset-checked only, so the
      // trailing dot is fine...
      "  reg.histogram(\"serve.session.\" + id);\n"
      // ...and a non-literal first argument is skipped entirely.
      "  reg.counter(id);\n"
      "}\n";
  EXPECT_TRUE(run("src/runtime/r.cpp", good).empty());

  // A composed fragment still fails the charset check.
  const auto f = run("src/runtime/r.cpp",
                     "void f(Registry& reg, const std::string& id) {\n"
                     "  reg.counter(\"Serve Session \" + id);\n"
                     "}\n");
  EXPECT_TRUE(has(f, "instrument-name", 2));
}

TEST(CheckInstruments, LintIsLibraryOnlyAndOffWithoutPrefixes) {
  const std::string bad = "void f(Registry& r) { r.counter(\"BAD\"); }\n";
  // Test code is free to register ad-hoc names.
  EXPECT_TRUE(run("tests/t.cpp", bad).empty());
  // An empty [instruments] section disables the pass (back-compat).
  Config c = test_config();
  c.instrument_prefixes.clear();
  std::set<std::string> atomics;
  EXPECT_TRUE(check_file(c, "src/runtime/r.cpp", bad, atomics).empty());
}

// ---------------------------------------------------------------------------
// The real tree

TEST(CheckTree, CheckedInTreeIsClean) {
  std::ifstream in(TVBF_CHECK_CONFIG);
  ASSERT_TRUE(in) << "missing " << TVBF_CHECK_CONFIG;
  std::ostringstream buf;
  buf << in.rdbuf();
  const Config config = parse_config(buf.str());
  const auto findings = check_tree(config, TVBF_SOURCE_DIR);
  for (const auto& f : findings) {
    ADD_FAILURE() << tvbf::check::format_finding(f);
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
