// Tests for the streaming imaging runtime: cached ToF plans, the plan
// cache, frame sources and the source -> ToF -> beamform -> log pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "beamform/das.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/hilbert.hpp"
#include "runtime/frame_source.hpp"
#include "runtime/pipeline.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"
#include "us/plan_cache.hpp"
#include "us/tof.hpp"
#include "us/tof_plan.hpp"

namespace tvbf::rt {
namespace {

using us::ChannelWorkspace;
using us::PlanCache;
using us::TofPlan;

class TofPlanTest : public ::testing::Test {
 protected:
  us::Probe probe_ = us::Probe::test_probe(16);
  us::SimParams clean_ = [] {
    us::SimParams p = us::SimParams::in_silico();
    p.add_noise = false;
    p.max_depth = 30e-3;
    return p;
  }();
  us::ImagingGrid grid_ = us::ImagingGrid::reduced(probe_, 96, 32, 10e-3,
                                                   28e-3);
  us::Acquisition acq_ = us::simulate_plane_wave(
      probe_, us::make_single_point(20e-3), 0.0, clean_);
};

TEST_F(TofPlanTest, ApplyIdenticalToTofCorrectRf) {
  const TofPlan plan = TofPlan::build_for(acq_, grid_);
  const us::TofCube via_plan = plan.apply(acq_, /*analytic=*/false);
  const us::TofCube one_shot = us::tof_correct(acq_, grid_, {});
  ASSERT_EQ(via_plan.real.shape(), one_shot.real.shape());
  EXPECT_EQ(max_abs_diff(via_plan.real, one_shot.real), 0.0f);
  EXPECT_FALSE(via_plan.is_analytic());
  EXPECT_GT(max_abs(via_plan.real), 0.0f);
}

TEST_F(TofPlanTest, ApplyIdenticalToTofCorrectAnalytic) {
  const TofPlan plan = TofPlan::build_for(acq_, grid_);
  const us::TofCube via_plan = plan.apply(acq_, /*analytic=*/true);
  const us::TofCube one_shot =
      us::tof_correct(acq_, grid_, {.analytic = true});
  ASSERT_TRUE(via_plan.is_analytic());
  EXPECT_EQ(max_abs_diff(via_plan.real, one_shot.real), 0.0f);
  EXPECT_EQ(max_abs_diff(via_plan.imag, one_shot.imag), 0.0f);
}

TEST_F(TofPlanTest, ApplyIdenticalToTofCorrectCubic) {
  const TofPlan plan = TofPlan::build_for(acq_, grid_, dsp::Interp::kCubic);
  const us::TofCube via_plan = plan.apply(acq_, /*analytic=*/true);
  const us::TofCube one_shot = us::tof_correct(
      acq_, grid_, {.interp = dsp::Interp::kCubic, .analytic = true});
  EXPECT_EQ(max_abs_diff(via_plan.real, one_shot.real), 0.0f);
  EXPECT_EQ(max_abs_diff(via_plan.imag, one_shot.imag), 0.0f);
}

TEST_F(TofPlanTest, SteeredPlanIdenticalToTofCorrect) {
  const us::Acquisition steered = us::simulate_plane_wave(
      probe_, us::make_single_point(20e-3, 3e-3), 0.1, clean_);
  const TofPlan plan = TofPlan::build_for(steered, grid_);
  EXPECT_EQ(max_abs_diff(plan.apply(steered, false).real,
                         us::tof_correct(steered, grid_, {}).real),
            0.0f);
}

TEST_F(TofPlanTest, ApplyReusesBuffersAcrossFrames) {
  const TofPlan plan = TofPlan::build_for(acq_, grid_);
  ChannelWorkspace ws;
  us::TofCube cube;
  plan.apply(acq_, false, cube, &ws);
  const float* data_before = cube.real.raw();
  const Tensor first = cube.real;
  plan.apply(acq_, false, cube, &ws);
  EXPECT_EQ(cube.real.raw(), data_before);  // steady state: no reallocation
  EXPECT_EQ(max_abs_diff(cube.real, first), 0.0f);
}

TEST_F(TofPlanTest, ApplyClearsImagWhenSwitchingToRf) {
  const TofPlan plan = TofPlan::build_for(acq_, grid_);
  us::TofCube cube;
  plan.apply(acq_, true, cube);
  ASSERT_TRUE(cube.is_analytic());
  plan.apply(acq_, false, cube);
  EXPECT_FALSE(cube.is_analytic());
}

TEST_F(TofPlanTest, ApplyRejectsMismatchedAcquisitions) {
  const TofPlan plan = TofPlan::build_for(acq_, grid_);
  us::TofCube cube;
  // Wrong steering angle.
  us::Acquisition steered = acq_;
  steered.steering_angle_rad = 0.05;
  EXPECT_THROW(plan.apply(steered, false, cube), InvalidArgument);
  // Wrong start time.
  us::Acquisition shifted = acq_;
  shifted.t0 = 1e-6;
  EXPECT_THROW(plan.apply(shifted, false, cube), InvalidArgument);
  // Wrong RF length.
  us::SimParams deep = clean_;
  deep.max_depth = 40e-3;
  const us::Acquisition longer = us::simulate_plane_wave(
      probe_, us::make_single_point(20e-3), 0.0, deep);
  EXPECT_THROW(plan.apply(longer, false, cube), InvalidArgument);
  // Wrong probe geometry.
  us::Acquisition other_probe = acq_;
  other_probe.probe.pitch *= 2.0;
  EXPECT_THROW(plan.apply(other_probe, false, cube), InvalidArgument);
}

TEST_F(TofPlanTest, BuildRejectsDegenerateInputs) {
  EXPECT_THROW(TofPlan::build(probe_, grid_, 0.0, 0.0, 1), InvalidArgument);
  us::Acquisition empty;
  empty.probe = probe_;
  EXPECT_THROW(TofPlan::build_for(empty, grid_), InvalidArgument);
}

TEST_F(TofPlanTest, OnePixelGridIsSupported) {
  us::ImagingGrid tiny;
  tiny.nx = 1;
  tiny.nz = 1;
  tiny.x0 = 0.0;
  tiny.z0 = 20e-3;
  tiny.dx = 0.3e-3;
  tiny.dz = 0.1e-3;
  const TofPlan plan = TofPlan::build_for(acq_, tiny);
  const us::TofCube cube = plan.apply(acq_, false);
  ASSERT_EQ(cube.real.shape(), (Shape{1, 1, probe_.num_elements}));
  EXPECT_EQ(max_abs_diff(cube.real, us::tof_correct(acq_, tiny, {}).real),
            0.0f);
}

class PlanCacheTest : public TofPlanTest {
 protected:
  void SetUp() override {
    PlanCache::instance().clear();
    default_capacity_ = PlanCache::instance().stats().capacity_bytes;
  }
  void TearDown() override {
    PlanCache::instance().set_capacity(default_capacity_);
    PlanCache::instance().clear();
  }
  std::size_t default_capacity_ = 0;
};

TEST_F(PlanCacheTest, HitsShareOnePlan) {
  auto& cache = PlanCache::instance();
  const auto a = cache.get_for(acq_, grid_);
  const auto b = cache.get_for(acq_, grid_);
  EXPECT_EQ(a.get(), b.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, a->bytes());
}

TEST_F(PlanCacheTest, DistinctKeysGetDistinctPlans) {
  auto& cache = PlanCache::instance();
  const auto a = cache.get_for(acq_, grid_);
  const auto b = cache.get_for(acq_, grid_, dsp::Interp::kCubic);
  const auto c = cache.get(probe_, grid_, 0.1, acq_.t0, acq_.num_samples());
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST_F(PlanCacheTest, EvictsLeastRecentlyUsedByBytes) {
  auto& cache = PlanCache::instance();
  const auto a = cache.get_for(acq_, grid_);
  cache.set_capacity(a->bytes());  // room for exactly one plan
  const auto b = cache.get(probe_, grid_, 0.1, acq_.t0, acq_.num_samples());
  auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
  // The evicted key misses again; the handed-out shared_ptr stayed valid.
  cache.get_for(acq_, grid_);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_GT(max_abs(a->apply(acq_, false).real), 0.0f);
}

TEST_F(PlanCacheTest, OversizedPlansAreNotRetained) {
  auto& cache = PlanCache::instance();
  cache.set_capacity(16);
  const auto plan = cache.get_for(acq_, grid_);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

class SourceTest : public TofPlanTest {};

TEST_F(SourceTest, ReplayCyclesAndResets) {
  const us::Acquisition second = us::simulate_plane_wave(
      probe_, us::make_single_point(15e-3), 0.0, clean_);
  ReplaySource source({acq_, second}, /*total_frames=*/5);
  EXPECT_EQ(source.num_frames(), 5);
  std::vector<Frame> frames(6);
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(source.next(frames[k]));
  EXPECT_FALSE(source.next(frames[5]));
  EXPECT_EQ(frames[4].index, 4);
  // Round-robin: frames 0, 2, 4 replay the first acquisition.
  EXPECT_EQ(max_abs_diff(frames[0].acq.rf, frames[2].acq.rf), 0.0f);
  EXPECT_EQ(max_abs_diff(frames[0].acq.rf, acq_.rf), 0.0f);
  EXPECT_GT(max_abs_diff(frames[0].acq.rf, frames[1].acq.rf), 0.0f);
  source.reset();
  Frame again;
  ASSERT_TRUE(source.next(again));
  EXPECT_EQ(again.index, 0);
  EXPECT_EQ(max_abs_diff(again.acq.rf, acq_.rf), 0.0f);
}

TEST_F(SourceTest, ReplayRejectsBadInput) {
  EXPECT_THROW(ReplaySource({}), InvalidArgument);
  us::Acquisition other = us::simulate_plane_wave(
      us::Probe::test_probe(32), us::make_single_point(20e-3), 0.0, clean_);
  EXPECT_THROW(ReplaySource({acq_, other}), InvalidArgument);
}

CineParams test_cine(std::int64_t frames) {
  CineParams p;
  p.num_frames = frames;
  p.frame_rate_hz = 10.0;
  p.lateral_speed_m_s = 5e-3;
  p.axial_amplitude_m = 0.5e-3;
  p.axial_period_s = 0.8;
  p.sim.add_noise = false;
  p.sim.max_depth = 30e-3;
  return p;
}

TEST_F(SourceTest, CineIsDeterministicAndMoves) {
  us::Region region{-5e-3, 5e-3, 12e-3, 26e-3};
  const us::Phantom ph = us::make_single_point(20e-3, 0.0, region);
  CineSource a(probe_, ph, test_cine(3));
  CineSource b(probe_, ph, test_cine(3));
  Frame fa, fb, fa2;
  ASSERT_TRUE(a.next(fa));
  ASSERT_TRUE(b.next(fb));
  EXPECT_EQ(max_abs_diff(fa.acq.rf, fb.acq.rf), 0.0f);
  ASSERT_TRUE(a.next(fa2));
  EXPECT_GT(max_abs_diff(fa.acq.rf, fa2.acq.rf), 0.0f);  // the target moved
  // reset() replays frame 0 bit-identically.
  a.reset();
  Frame replay;
  ASSERT_TRUE(a.next(replay));
  EXPECT_EQ(max_abs_diff(replay.acq.rf, fa.acq.rf), 0.0f);
}

TEST_F(SourceTest, CineMotionModelShiftsAndWraps) {
  us::Region region{-5e-3, 5e-3, 12e-3, 26e-3};
  us::Phantom ph = us::make_single_point(20e-3, 4e-3, region);
  ph.cysts.push_back({0.0, 18e-3, 2e-3});
  CineParams p = test_cine(4);
  CineSource source(probe_, ph, p);
  // After 1 s: lateral shift 5 mm wraps 4 mm -> -1 mm inside the 10 mm
  // region; axial oscillation at t = T returns to 0 within round-off.
  const us::Phantom moved = source.phantom_at(0.8);
  EXPECT_NEAR(moved.scatterers[0].x,
              4e-3 + 0.8 * 5e-3 - region.width(), 1e-9);
  EXPECT_NEAR(moved.scatterers[0].z, 20e-3, 1e-9);
  EXPECT_NEAR(moved.cysts[0].z, 18e-3, 1e-9);
  // Quarter period: full axial amplitude.
  const us::Phantom up = source.phantom_at(0.2);
  EXPECT_NEAR(up.scatterers[0].z, 20e-3 + 0.5e-3, 1e-9);
}

class PipelineTest : public TofPlanTest {
 protected:
  void SetUp() override { PlanCache::instance().clear(); }

  std::shared_ptr<ReplaySource> replay(std::int64_t frames) {
    return std::make_shared<ReplaySource>(
        std::vector<us::Acquisition>{acq_}, frames);
  }
  std::shared_ptr<bf::DasBeamformer> das() {
    return std::make_shared<bf::DasBeamformer>(probe_);
  }
  PipelineConfig config(bool cached, bool overlap) {
    PipelineConfig cfg;
    cfg.grid = grid_;
    cfg.use_plan_cache = cached;
    cfg.overlap = overlap;
    return cfg;
  }
};

TEST_F(PipelineTest, StreamedFramesIdenticalToOneShotDas) {
  const Tensor reference_db = dsp::log_compress(
      dsp::envelope_iq(das()->beamform(us::tof_correct(acq_, grid_, {}))),
      60.0);
  std::vector<Tensor> frames;
  Pipeline pipeline(replay(3), das(), config(true, true));
  const auto report = pipeline.run(
      [&](const FrameOutput& out) { frames.push_back(out.db); });
  ASSERT_EQ(report.frames, 3);
  ASSERT_EQ(frames.size(), 3u);
  for (const auto& db : frames)
    EXPECT_EQ(max_abs_diff(db, reference_db), 0.0f);
}

TEST_F(PipelineTest, CachedAndUncachedPathsAgree) {
  Tensor cached_db, uncached_db;
  Pipeline cached(replay(2), das(), config(true, false));
  cached.run([&](const FrameOutput& out) { cached_db = out.db; });
  Pipeline uncached(replay(2), das(), config(false, false));
  uncached.run([&](const FrameOutput& out) { uncached_db = out.db; });
  EXPECT_EQ(max_abs_diff(cached_db, uncached_db), 0.0f);
}

TEST_F(PipelineTest, OverlapDoesNotChangeResults) {
  Tensor serial_db, overlapped_db;
  Pipeline serial(replay(4), das(), config(true, false));
  serial.run([&](const FrameOutput& out) { serial_db = out.db; });
  Pipeline overlapped(replay(4), das(), config(true, true));
  overlapped.run([&](const FrameOutput& out) { overlapped_db = out.db; });
  EXPECT_EQ(max_abs_diff(serial_db, overlapped_db), 0.0f);
}

TEST_F(PipelineTest, ReportCountsStagesAndCache) {
  Pipeline pipeline(replay(4), das(), config(true, true));
  const auto report = pipeline.run();
  EXPECT_EQ(report.frames, 4);
  EXPECT_GT(report.fps(), 0.0);
  for (const char* stage : {"source", "tof", "beamform", "postprocess"})
    EXPECT_EQ(report.stage(stage).frames, 4) << stage;
  EXPECT_EQ(report.plan_cache_misses, 1u);
  EXPECT_EQ(report.plan_cache_hits, 3u);
  EXPECT_GE(report.stage("tof").max_s, report.stage("tof").min_s);
  EXPECT_THROW(report.stage("nope"), InvalidArgument);
}

TEST_F(PipelineTest, AnalyticFlavorFeedsAnalyticBeamformer) {
  PipelineConfig cfg = config(true, false);
  cfg.tof.analytic = true;
  Tensor db;
  Pipeline pipeline(replay(2), das(), cfg);
  pipeline.run([&](const FrameOutput& out) { db = out.db; });
  const Tensor reference = dsp::log_compress(
      dsp::envelope_iq(
          das()->beamform(us::tof_correct(acq_, grid_, {.analytic = true}))),
      60.0);
  EXPECT_EQ(max_abs_diff(db, reference), 0.0f);
}

TEST_F(PipelineTest, SinkExceptionsPropagateAndStopTheStream) {
  Pipeline pipeline(replay(8), das(), config(true, true));
  EXPECT_THROW(pipeline.run([](const FrameOutput& out) {
                 if (out.index == 1) throw std::runtime_error("sink failed");
               }),
               std::runtime_error);
}

TEST_F(PipelineTest, RejectsBadConstruction) {
  EXPECT_THROW(Pipeline(nullptr, das(), config(true, true)), InvalidArgument);
  EXPECT_THROW(Pipeline(replay(1), nullptr, config(true, true)),
               InvalidArgument);
  PipelineConfig cfg = config(true, true);
  cfg.dynamic_range_db = 0.0;
  EXPECT_THROW(Pipeline(replay(1), das(), cfg), InvalidArgument);
}

TEST_F(PipelineTest, CinePipelineEndToEnd) {
  us::Region region{grid_.x0, grid_.x_end(), grid_.z0, grid_.z_end()};
  Rng rng(5);
  us::SpeckleOptions opt;
  opt.density_per_mm2 = 0.5;
  const us::Phantom ph = us::make_contrast_phantom(
      rng, {19e-3}, 2.5e-3, region, opt);
  auto source = std::make_shared<CineSource>(probe_, ph, test_cine(3));
  Pipeline pipeline(source, das(), config(true, true));
  std::vector<Tensor> frames;
  const auto report = pipeline.run(
      [&](const FrameOutput& out) { frames.push_back(out.db); });
  ASSERT_EQ(report.frames, 3);
  // One plan serves the whole cine despite the moving phantom.
  EXPECT_EQ(report.plan_cache_misses, 1u);
  EXPECT_EQ(report.plan_cache_hits, 2u);
  // Frames are real images and actually differ (the phantom moved).
  EXPECT_GT(max_abs_diff(frames[0], frames[2]), 0.0f);
}

}  // namespace
}  // namespace tvbf::rt
