// Unit tests for src/common: deterministic RNG, thread pool, error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace tvbf {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(r.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(9);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng r(10);
  EXPECT_THROW(r.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[r.uniform_index(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
  EXPECT_THROW(r.uniform_index(0), InvalidArgument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child stream should not replay the parent's output.
  Rng b(42);
  (void)b.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for_each(0, hits.size(), [&](std::size_t i) { hits[i]++; },
                    /*min_grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunksPartitionRange) {
  std::atomic<std::size_t> total{0};
  parallel_for(
      0, 5000,
      [&](std::size_t b, std::size_t e) { total += e - b; },
      /*min_grain=*/16);
  EXPECT_EQ(total.load(), 5000u);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(
      parallel_for_each(0, 1000,
                        [&](std::size_t i) {
                          if (i == 500) throw std::runtime_error("boom");
                        },
                        /*min_grain=*/1),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  std::atomic<int> total{0};
  parallel_for_each(0, 64, [&](std::size_t) {
    // Nested parallel_for must not deadlock; it degrades to serial.
    parallel_for_each(0, 10, [&](std::size_t) { total++; }, 1);
  }, 1);
  EXPECT_EQ(total.load(), 640);
}

TEST(ParallelFor, NestedCallsFromWorkerThreadsRunSerially) {
  // Regression: a nested parallel_for reached on a *worker* thread (not the
  // top-level caller) must degrade to serial, or it deadlocks on the pool's
  // job serialization. The outer bodies sleep briefly so the workers — not
  // just the calling thread — actually claim chunks.
  set_thread_count(4);
  std::atomic<int> total{0};
  parallel_for_each(0, 16, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    parallel_for_each(0, 100, [&](std::size_t) { total++; }, 1);
  }, 1);
  set_thread_count(0);
  EXPECT_EQ(total.load(), 1600);
}

TEST(ParallelFor, ConcurrentTopLevelCallersDoNotCorruptEachOther) {
  // Regression: two non-worker threads entering parallel_for used to race
  // on the pool's shared job slot (job_fn_/cursor_/pending_) and silently
  // compute garbage (or hang on a lost wakeup). Hammer the pool from
  // several top-level threads and check every call sees its own full range.
  set_thread_count(4);  // single-core CI boxes would otherwise run serial
  constexpr std::size_t kCallers = 4;
  constexpr int kIters = 50;
  constexpr std::size_t kRange = 4096;
  constexpr long long kExpected =
      static_cast<long long>(kRange) * (kRange - 1) / 2;
  std::atomic<int> bad{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int it = 0; it < kIters; ++it) {
        std::atomic<long long> sum{0};
        parallel_for_each(
            0, kRange,
            [&](std::size_t i) { sum += static_cast<long long>(i); },
            /*min_grain=*/1);
        if (sum.load() != kExpected) ++bad;
      }
    });
  }
  for (auto& t : callers) t.join();
  set_thread_count(0);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelFor, ResizeDuringInFlightJobsIsSafe) {
  // set_thread_count must wait out an in-flight job instead of tearing the
  // pool down underneath it.
  set_thread_count(4);
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread hammer([&] {
    constexpr std::size_t kRange = 2048;
    constexpr long long kExpected =
        static_cast<long long>(kRange) * (kRange - 1) / 2;
    while (!stop.load()) {
      std::atomic<long long> sum{0};
      parallel_for_each(
          0, kRange, [&](std::size_t i) { sum += static_cast<long long>(i); },
          /*min_grain=*/1);
      if (sum.load() != kExpected) ++bad;
    }
  });
  for (int round = 0; round < 20; ++round) set_thread_count(2 + round % 3);
  stop = true;
  hammer.join();
  set_thread_count(0);
  EXPECT_EQ(bad.load(), 0);
}

class ThreadCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCountTest, SumIsThreadCountInvariant) {
  set_thread_count(GetParam());
  std::vector<double> data(20000);
  std::iota(data.begin(), data.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for_each(0, data.size(),
                    [&](std::size_t i) { sum += static_cast<long long>(data[i]); },
                    /*min_grain=*/8);
  EXPECT_EQ(sum.load(), 19999LL * 20000 / 2);
  set_thread_count(0);  // restore default
}

INSTANTIATE_TEST_SUITE_P(Pool, ThreadCountTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + std::sin(i);
  EXPECT_GE(t.seconds(), 0.0);
  const double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);
}

TEST(ErrorMacros, RequireThrowsInvalidArgument) {
  EXPECT_THROW(TVBF_REQUIRE(false, "message"), InvalidArgument);
  EXPECT_NO_THROW(TVBF_REQUIRE(true, "message"));
}

TEST(ErrorMacros, EnsureThrowsLogicError) {
  EXPECT_THROW(TVBF_ENSURE(false, "message"), LogicError);
}

TEST(ErrorMacros, MessageContainsContext) {
  try {
    TVBF_REQUIRE(1 == 2, "my context");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace tvbf
