// Tests for the frame-graph execution layer: FrameGraph structure and
// topological ordering, Executor readiness scheduling (diamond fan-in,
// deferred gate nodes, failure drain, stop/cancel), BufferArena reuse, and
// bit-identity of graph-scheduled frames against the linear stage path for
// DAS, float Tiny-VBF and quantized sessions — single-angle and compounded.
// Carries the `graph` ctest label and runs under the tsan CI preset.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "beamform/compounding.hpp"
#include "beamform/das.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/arena.hpp"
#include "graph/executor.hpp"
#include "graph/frame_graph.hpp"
#include "models/neural_beamformer.hpp"
#include "models/tiny_vbf.hpp"
#include "quant/quantized_tiny_vbf.hpp"
#include "runtime/frame_source.hpp"
#include "runtime/pipeline.hpp"
#include "us/plan_cache.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"

namespace tvbf::graph {
namespace {

Status done_fn() { return Status::kDone; }

// ---- FrameGraph structure --------------------------------------------------

TEST(FrameGraphTest, InsertionOrderIsTopological) {
  FrameGraph g;
  const NodeId a = g.add("a", {}, done_fn);
  const NodeId b = g.add("b", {a}, done_fn);
  const NodeId c = g.add("c", {a}, done_fn);
  const NodeId d = g.add("d", {b, c}, done_fn);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.topological_order(), (std::vector<NodeId>{a, b, c, d}));
  for (const NodeId id : g.topological_order())
    for (const NodeId dep : g.dependencies(id)) EXPECT_LT(dep, id);
}

TEST(FrameGraphTest, SuccessorsMirrorDependencies) {
  FrameGraph g;
  const NodeId a = g.add("a", {}, done_fn);
  const NodeId b = g.add("b", {a}, done_fn);
  const NodeId c = g.add("c", {a, b}, done_fn);
  EXPECT_EQ(g.successors(a), (std::vector<NodeId>{b, c}));
  EXPECT_EQ(g.successors(b), (std::vector<NodeId>{c}));
  EXPECT_TRUE(g.successors(c).empty());
  EXPECT_EQ(g.name(b), "b");
}

TEST(FrameGraphTest, UnknownDependencyThrows) {
  FrameGraph g;
  // A node may only depend on already-added nodes; self/forward references
  // (the only way to form a cycle) are rejected at add() time.
  EXPECT_THROW(g.add("a", {0}, done_fn), InvalidArgument);
  g.add("a", {}, done_fn);
  EXPECT_THROW(g.add("b", {7}, done_fn), InvalidArgument);
}

TEST(FrameGraphTest, ClearAllowsRebuildInPlace) {
  FrameGraph g;
  g.add("a", {}, done_fn);
  g.add("b", {0}, done_fn);
  g.clear();
  EXPECT_TRUE(g.empty());
  const NodeId a = g.add("a2", {}, done_fn);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(g.size(), 1u);
}

// ---- Executor readiness scheduling -----------------------------------------

/// Launches `g` and blocks until its completion fires.
std::exception_ptr run_to_completion(Executor& ex, const FrameGraph& g) {
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  std::exception_ptr error;
  ex.launch(g, [&](std::exception_ptr e) {
    std::lock_guard lock(mu);
    error = e;
    fired = true;
    cv.notify_all();
  });
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return fired; });
  return error;
}

Executor::Options two_workers() {
  Executor::Options opts;
  opts.num_workers = 2;
  opts.serialize_nodes = false;
  return opts;
}

TEST(ExecutorTest, DiamondFanInWaitsForAllDependencies) {
  Executor ex(two_workers());
  std::mutex order_mu;
  std::vector<std::string> order;
  const auto record = [&](const char* name) {
    std::lock_guard lock(order_mu);
    order.emplace_back(name);
    return Status::kDone;
  };
  FrameGraph g;
  const NodeId top = g.add("top", {}, [&] { return record("top"); });
  const NodeId left = g.add("left", {top}, [&] { return record("left"); });
  const NodeId right = g.add("right", {top}, [&] { return record("right"); });
  g.add("join", {left, right}, [&] { return record("join"); });

  ASSERT_EQ(run_to_completion(ex, g), nullptr);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "top");
  EXPECT_EQ(order.back(), "join");  // join ran after BOTH mid nodes
}

TEST(ExecutorTest, DeferredGateCompletesOnResolve) {
  Executor ex(two_workers());
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  std::atomic<int> after_gate{0};

  FrameGraph g;
  const NodeId gate = g.add("gate", {}, [&] {
    {
      std::lock_guard lock(mu);
      parked = true;
    }
    cv.notify_all();
    return Status::kDeferred;
  });
  g.add("after", {gate}, [&] {
    after_gate.fetch_add(1);
    return Status::kDone;
  });

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool fired = false;
  std::exception_ptr error;
  ex.launch(g, [&](std::exception_ptr e) {
    std::lock_guard lock(done_mu);
    error = e;
    fired = true;
    done_cv.notify_all();
  });

  {
    // The launch must NOT complete while the gate is parked.
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return parked; });
  }
  EXPECT_EQ(after_gate.load(), 0);
  ex.resolve(g, gate);

  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return fired; });
  EXPECT_EQ(error, nullptr);
  EXPECT_EQ(after_gate.load(), 1);
}

TEST(ExecutorTest, NodeFailureDrainsWithoutRunningSuccessors) {
  Executor ex(two_workers());
  std::atomic<int> downstream{0};
  FrameGraph g;
  const NodeId bad = g.add("bad", {}, []() -> Status {
    throw std::runtime_error("stage exploded");
  });
  g.add("after", {bad}, [&] {
    downstream.fetch_add(1);
    return Status::kDone;
  });

  const std::exception_ptr error = run_to_completion(ex, g);
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  EXPECT_EQ(downstream.load(), 0);
}

TEST(ExecutorTest, StopCancelsParkedLaunch) {
  // Session-retire path: a graph parked on an unresolved gate must drain
  // with an error when the executor shuts down, not hang or leak.
  Executor ex(two_workers());
  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  std::atomic<int> downstream{0};

  FrameGraph g;
  const NodeId gate = g.add("gate", {}, [&] {
    {
      std::lock_guard lock(mu);
      parked = true;
    }
    cv.notify_all();
    return Status::kDeferred;
  });
  g.add("after", {gate}, [&] {
    downstream.fetch_add(1);
    return Status::kDone;
  });

  std::atomic<bool> fired{false};
  std::exception_ptr error;
  ex.launch(g, [&](std::exception_ptr e) {
    error = e;
    fired.store(true);
  });
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return parked; });
  }
  ex.stop();
  EXPECT_TRUE(fired.load());
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), LogicError);
  EXPECT_EQ(downstream.load(), 0);
}

TEST(ExecutorTest, InterleavedGraphsAllComplete) {
  Executor ex(two_workers());
  constexpr int kGraphs = 6;
  std::atomic<int> total{0};
  std::vector<FrameGraph> graphs(kGraphs);
  for (auto& g : graphs) {
    const NodeId a = g.add("a", {}, [&] {
      total.fetch_add(1);
      return Status::kDone;
    });
    const NodeId b = g.add("b", {a}, [&] {
      total.fetch_add(1);
      return Status::kDone;
    });
    g.add("c", {a, b}, [&] {
      total.fetch_add(1);
      return Status::kDone;
    });
  }

  std::mutex mu;
  std::condition_variable cv;
  int fired = 0;
  for (auto& g : graphs) {
    ex.launch(g, [&](std::exception_ptr e) {
      EXPECT_EQ(e, nullptr);
      std::lock_guard lock(mu);
      ++fired;
      cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return fired == kGraphs; });
  EXPECT_EQ(total.load(), kGraphs * 3);
}

TEST(ExecutorTest, SameGraphRelaunchesFrameAfterFrame) {
  Executor ex(two_workers());
  std::atomic<int> runs{0};
  FrameGraph g;
  const NodeId a = g.add("a", {}, [&] {
    runs.fetch_add(1);
    return Status::kDone;
  });
  g.add("b", {a}, done_fn);
  for (int frame = 0; frame < 5; ++frame)
    ASSERT_EQ(run_to_completion(ex, g), nullptr);
  EXPECT_EQ(runs.load(), 5);
}

// ---- BufferArena -----------------------------------------------------------

TEST(ArenaTest, ReusesReleasedBufferOfSameShape) {
  BufferArena arena;
  Tensor a = arena.acquire({4, 8});
  EXPECT_EQ(a.shape(), (Shape{4, 8}));
  arena.release(std::move(a));
  EXPECT_EQ(arena.stats().free_buffers, 1u);

  const Tensor b = arena.acquire({4, 8});
  EXPECT_EQ(b.shape(), (Shape{4, 8}));
  const auto stats = arena.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.outstanding, 1u);
  EXPECT_EQ(stats.free_buffers, 0u);
}

TEST(ArenaTest, DifferentShapeAllocatesFresh) {
  BufferArena arena;
  arena.release(arena.acquire({4, 8}));
  const Tensor b = arena.acquire({8, 4});  // same numel, different shape
  EXPECT_EQ(b.shape(), (Shape{8, 4}));
  EXPECT_EQ(arena.stats().allocations, 2u);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(ArenaTest, ClearDropsFreeListKeepsOutstanding) {
  BufferArena arena;
  const Tensor held = arena.acquire({2, 2});
  arena.release(arena.acquire({2, 2}));
  ASSERT_EQ(arena.stats().free_buffers, 1u);
  arena.clear();
  EXPECT_EQ(arena.stats().free_buffers, 0u);
  EXPECT_EQ(arena.stats().outstanding, 1u);
}

TEST(ArenaTest, BudgetEvictsLeastRecentlyReleased) {
  BufferArena arena;
  // Room for exactly two 64-float buffers.
  arena.set_budget_bytes(2 * 64 * sizeof(float));
  Tensor a = arena.acquire({64});
  Tensor b = arena.acquire({64});
  Tensor c = arena.acquire({64});
  arena.release(std::move(a));
  arena.release(std::move(b));
  EXPECT_EQ(arena.stats().free_bytes, 2 * 64 * sizeof(float));
  EXPECT_EQ(arena.stats().evictions, 0u);

  // The third release pushes over budget: the oldest buffer (a) goes.
  arena.release(std::move(c));
  const auto stats = arena.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.free_buffers, 2u);
  EXPECT_EQ(stats.free_bytes, 2 * 64 * sizeof(float));
  EXPECT_EQ(stats.budget_bytes, 2 * 64 * sizeof(float));
  // The survivors still serve acquires.
  const Tensor again = arena.acquire({64});
  EXPECT_EQ(arena.stats().reuses, 1u);
}

TEST(ArenaTest, OversizedBufferIsDroppedNotPooled) {
  BufferArena arena;
  arena.set_budget_bytes(16);  // smaller than any real buffer
  arena.release(arena.acquire({1024}));
  const auto stats = arena.stats();
  EXPECT_EQ(stats.free_buffers, 0u);
  EXPECT_EQ(stats.free_bytes, 0u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ArenaTest, DefaultBudgetLeavesSteadyStateReuseUntouched) {
  // The regression guard for the streaming hot path: at the default budget
  // a frame-sized working set recycles forever without a single eviction.
  BufferArena arena;
  for (int frame = 0; frame < 16; ++frame) {
    Tensor slot_a = arena.acquire({96, 32, 16});
    Tensor slot_b = arena.acquire({96, 32, 16});
    arena.release(std::move(slot_a));
    arena.release(std::move(slot_b));
  }
  const auto stats = arena.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_EQ(stats.reuses, 30u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.budget_bytes, BufferArena::kDefaultBudgetBytes);
}

// ---- graph vs linear bit-identity ------------------------------------------

class GraphIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override { us::PlanCache::instance().clear(); }
  void TearDown() override { us::PlanCache::instance().clear(); }

  /// Cine source; `angles > 1` yields compounded multi-angle frames.
  std::shared_ptr<rt::CineSource> cine(std::int64_t frames,
                                       std::int64_t angles) const {
    us::Region region{-4e-3, 4e-3, 12e-3, 24e-3};
    rt::CineParams p;
    p.num_frames = frames;
    p.frame_rate_hz = 10.0;
    p.lateral_speed_m_s = 5e-3;
    p.axial_amplitude_m = 0.4e-3;
    p.sim = clean_;
    if (angles > 1) {
      bf::CompoundingParams compounding;
      compounding.num_angles = angles;
      p.compound_angles_rad = compounding.angles();
    }
    return std::make_shared<rt::CineSource>(
        probe_, us::make_single_point(18e-3, 0.0, region), p);
  }

  std::vector<Tensor> run(std::shared_ptr<const bf::Beamformer> beamformer,
                          rt::StageScheduling scheduling,
                          std::int64_t angles) const {
    rt::PipelineConfig cfg;
    cfg.grid = grid_;
    cfg.scheduling = scheduling;
    std::vector<Tensor> out;
    rt::Pipeline pipeline(cine(3, angles), std::move(beamformer), cfg);
    pipeline.run([&](const rt::FrameOutput& f) { out.push_back(f.db); });
    return out;
  }

  /// Asserts graph scheduling reproduces the linear path bit for bit.
  void expect_identical(std::shared_ptr<const bf::Beamformer> beamformer,
                        std::int64_t angles) {
    const std::vector<Tensor> linear =
        run(beamformer, rt::StageScheduling::kLinear, angles);
    const std::vector<Tensor> graph =
        run(beamformer, rt::StageScheduling::kGraph, angles);
    ASSERT_EQ(linear.size(), graph.size());
    for (std::size_t i = 0; i < linear.size(); ++i) {
      ASSERT_EQ(linear[i].shape(), graph[i].shape());
      EXPECT_EQ(max_abs_diff(linear[i], graph[i]), 0.0f)
          << "frame " << i << ", " << angles << " angle(s)";
    }
  }

  std::shared_ptr<models::TinyVbf> model() const {
    Rng rng(7);
    return std::make_shared<models::TinyVbf>(
        models::TinyVbfConfig::test(16, 32), rng);
  }

  us::Probe probe_ = us::Probe::test_probe(16);
  us::SimParams clean_ = [] {
    us::SimParams p = us::SimParams::in_silico();
    p.add_noise = false;
    p.max_depth = 26e-3;
    return p;
  }();
  us::ImagingGrid grid_ =
      us::ImagingGrid::reduced(probe_, 40, 32, 12e-3, 24e-3);
};

TEST_F(GraphIdentityTest, DasMatchesLinearSingleAndCompounded) {
  const auto das = std::make_shared<bf::DasBeamformer>(probe_);
  expect_identical(das, 1);
  expect_identical(das, 3);
}

TEST_F(GraphIdentityTest, TinyVbfMatchesLinearSingleAndCompounded) {
  const auto vbf = std::make_shared<models::TinyVbfBeamformer>(model());
  expect_identical(vbf, 1);
  expect_identical(vbf, 3);
}

TEST_F(GraphIdentityTest, QuantizedMatchesLinearSingleAndCompounded) {
  const auto quantized = std::make_shared<quant::QuantizedVbfBeamformer>(
      std::make_shared<quant::QuantizedTinyVbf>(*model(),
                                                quant::QuantScheme::uniform(16)));
  expect_identical(quantized, 1);
  expect_identical(quantized, 3);
}

// ---- server-level graph scheduling -----------------------------------------

TEST_F(GraphIdentityTest, ServerGraphMatchesRoundRobinMixedSessions) {
  // Mixed DAS + float VBF + quantized sessions, compounded frames: the
  // readiness scheduler must reproduce the legacy round-robin scheduler's
  // output exactly (both equal a solo pipeline by the serve contract).
  const auto shared_model = model();
  const auto das = std::make_shared<bf::DasBeamformer>(probe_);
  const auto vbf = std::make_shared<models::TinyVbfBeamformer>(shared_model);
  const auto quantized = std::make_shared<quant::QuantizedVbfBeamformer>(
      std::make_shared<quant::QuantizedTinyVbf>(*shared_model,
                                                quant::QuantScheme::uniform(16)));
  const std::vector<std::shared_ptr<const bf::Beamformer>> beamformers = {
      das, vbf, vbf, quantized};

  const auto serve_all = [&](serve::Scheduling scheduling) {
    serve::ServerConfig cfg;
    cfg.scheduling = scheduling;
    serve::Server server(cfg);
    std::vector<std::vector<Tensor>> outputs(beamformers.size());
    for (std::size_t s = 0; s < beamformers.size(); ++s) {
      rt::PipelineConfig pipeline;
      pipeline.grid = grid_;
      auto& into = outputs[s];
      server.add_session(
          {cine(3, 2), beamformers[s], pipeline,
           [&into](const rt::FrameOutput& f) { into.push_back(f.db); }});
    }
    server.run();
    return outputs;
  };

  const auto round_robin = serve_all(serve::Scheduling::kRoundRobin);
  const auto graph = serve_all(serve::Scheduling::kGraph);
  ASSERT_EQ(round_robin.size(), graph.size());
  for (std::size_t s = 0; s < graph.size(); ++s) {
    ASSERT_EQ(round_robin[s].size(), 3u) << "session " << s;
    ASSERT_EQ(graph[s].size(), 3u) << "session " << s;
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(max_abs_diff(round_robin[s][i], graph[s][i]), 0.0f)
          << "session " << s << " frame " << i;
  }
}

TEST_F(GraphIdentityTest, BatchedSessionsWithUnequalFramesDrainAfterRetire) {
  // Two sessions share one batch-capable model but run UNEQUAL frame
  // counts: once the short session retires, the survivor's gate can never
  // reach the old quorum — retirement must shrink the quorum (and the idle
  // hook must flush partial groups) so the remaining frames still drain.
  const auto vbf = std::make_shared<models::TinyVbfBeamformer>(model());
  const std::vector<std::int64_t> frame_counts = {2, 5};

  std::vector<std::vector<Tensor>> expected;
  for (const std::int64_t n : frame_counts) {
    rt::PipelineConfig cfg;
    cfg.grid = grid_;
    std::vector<Tensor> out;
    rt::Pipeline pipeline(cine(n, 1), vbf, cfg);
    pipeline.run([&](const rt::FrameOutput& f) { out.push_back(f.db); });
    expected.push_back(std::move(out));
  }

  serve::ServerConfig cfg;
  cfg.scheduling = serve::Scheduling::kGraph;
  cfg.batch_inference = true;
  serve::Server server(cfg);
  std::vector<std::vector<Tensor>> got(frame_counts.size());
  for (std::size_t s = 0; s < frame_counts.size(); ++s) {
    rt::PipelineConfig pipeline;
    pipeline.grid = grid_;
    auto& into = got[s];
    server.add_session(
        {cine(frame_counts[s], 1), vbf, pipeline,
         [&into](const rt::FrameOutput& f) { into.push_back(f.db); }});
  }
  const serve::ServerReport report = server.run();

  EXPECT_EQ(report.frames, 7);
  for (std::size_t s = 0; s < frame_counts.size(); ++s) {
    ASSERT_EQ(got[s].size(), expected[s].size()) << "session " << s;
    for (std::size_t i = 0; i < got[s].size(); ++i)
      EXPECT_EQ(max_abs_diff(got[s][i], expected[s][i]), 0.0f)
          << "session " << s << " frame " << i;
  }
}

}  // namespace
}  // namespace tvbf::graph
