// Tests for the ultrasound acquisition substrate: probe geometry, pulse,
// phantoms, the plane-wave RF simulator, grid and ToF correction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/grid.hpp"
#include "us/phantom.hpp"
#include "us/probe.hpp"
#include "us/pulse.hpp"
#include "us/simulator.hpp"
#include "us/tof.hpp"

namespace tvbf::us {
namespace {

TEST(Probe, GeometryIsCentered) {
  Probe p = Probe::l11_5v();
  EXPECT_EQ(p.num_elements, 128);
  EXPECT_NEAR(p.element_x(0), -p.element_x(127), 1e-12);
  EXPECT_NEAR(p.element_x(64) - p.element_x(63), p.pitch, 1e-12);
  EXPECT_NEAR(p.aperture(), 127 * 0.3e-3, 1e-9);
  EXPECT_THROW(p.element_x(-1), InvalidArgument);
  EXPECT_THROW(p.element_x(128), InvalidArgument);
}

TEST(Probe, ValidationCatchesBadConfigs) {
  Probe p;
  p.num_elements = 1;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = Probe{};
  p.sampling_frequency = p.center_frequency;  // below Nyquist
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = Probe{};
  p.element_width = p.pitch * 2;  // elements overlap
  EXPECT_THROW(p.validate(), InvalidArgument);
  EXPECT_NO_THROW(Probe::test_probe(16).validate());
}

TEST(Pulse, PeaksAtZeroAndDecays) {
  const Pulse p(5e6, 0.67);
  EXPECT_NEAR(p(0.0), 1.0, 1e-12);
  EXPECT_GT(std::fabs(p(0.0)), std::fabs(p(p.sigma())));
  EXPECT_FLOAT_EQ(static_cast<float>(p(p.half_support() * 1.01)), 0.0f);
}

TEST(Pulse, BandwidthSetsSigma) {
  // Wider bandwidth => shorter pulse.
  const Pulse narrow(5e6, 0.3);
  const Pulse wide(5e6, 1.0);
  EXPECT_GT(narrow.sigma(), wide.sigma());
  EXPECT_THROW(Pulse(0.0, 0.5), InvalidArgument);
  EXPECT_THROW(Pulse(5e6, 2.5), InvalidArgument);
}

TEST(Phantom, SpeckleDensityAndExclusion) {
  Rng rng(1);
  Region region;
  region.x_min = -10e-3;
  region.x_max = 10e-3;
  region.z_min = 10e-3;
  region.z_max = 30e-3;
  const Cyst cyst{0.0, 20e-3, 4e-3};
  SpeckleOptions opt;
  opt.density_per_mm2 = 1.0;
  const Phantom ph = make_speckle(region, opt, rng, {cyst});
  // Area 20 x 20 mm => ~400 scatterers.
  EXPECT_NEAR(static_cast<double>(ph.size()), 400.0, 60.0);
  for (const auto& s : ph.scatterers) {
    EXPECT_TRUE(region.contains(s.x, s.z));
    const double d2 = (s.x - cyst.x) * (s.x - cyst.x) +
                      (s.z - cyst.z) * (s.z - cyst.z);
    EXPECT_GE(d2, cyst.radius * cyst.radius);
  }
}

TEST(Phantom, ContrastPresetPlacesCysts) {
  Rng rng(2);
  const Phantom ph = make_contrast_phantom(rng);
  ASSERT_EQ(ph.cysts.size(), 3u);
  EXPECT_NEAR(ph.cysts[0].z, 13e-3, 1e-9);
  EXPECT_NEAR(ph.cysts[2].z, 37e-3, 1e-9);
  EXPECT_GT(ph.size(), 1000);
}

TEST(Phantom, ContrastRejectsCystOutsideRegion) {
  Rng rng(3);
  EXPECT_THROW(make_contrast_phantom(rng, {100e-3}), InvalidArgument);
}

TEST(Phantom, ResolutionPresetPlacesPointRows) {
  const Phantom ph = make_resolution_phantom({15e-3, 35e-3}, 5, 24e-3);
  EXPECT_EQ(ph.size(), 10);
  EXPECT_EQ(ph.points.size(), 10u);
  EXPECT_NEAR(ph.points.front().x, -12e-3, 1e-9);
  EXPECT_NEAR(ph.points[4].x, 12e-3, 1e-9);
  EXPECT_THROW(make_resolution_phantom({}, 3), InvalidArgument);
}

TEST(Phantom, SinglePointAndBounds) {
  const Phantom ph = make_single_point(20e-3);
  EXPECT_EQ(ph.size(), 1);
  EXPECT_THROW(make_single_point(500e-3), InvalidArgument);
}

TEST(Phantom, RandomTrainingPhantomIsReproducible) {
  Rng a(77), b(77);
  const Phantom p1 = make_random_training_phantom(a);
  const Phantom p2 = make_random_training_phantom(b);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::int64_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.scatterers[static_cast<std::size_t>(i)].x,
                     p2.scatterers[static_cast<std::size_t>(i)].x);
  }
}

TEST(SimParams, Presets) {
  const SimParams silico = SimParams::in_silico();
  const SimParams vitro = SimParams::in_vitro();
  EXPECT_GT(silico.snr_db, vitro.snr_db);
  EXPECT_EQ(silico.attenuation_db_cm_mhz, 0.0);
  EXPECT_GT(vitro.attenuation_db_cm_mhz, 0.0);
  EXPECT_GT(vitro.channel_gain_sigma, 0.0);
}

class SimulatorTest : public ::testing::Test {
 protected:
  Probe probe_ = Probe::test_probe(16);
  SimParams clean_ = [] {
    SimParams p = SimParams::in_silico();
    p.add_noise = false;
    p.max_depth = 30e-3;
    return p;
  }();
};

TEST_F(SimulatorTest, RejectsBadInput) {
  Phantom empty;
  EXPECT_THROW(simulate_plane_wave(probe_, empty, 0.0, clean_),
               InvalidArgument);
  const Phantom ph = make_single_point(20e-3);
  SimParams bad = clean_;
  bad.max_depth = -1.0;
  EXPECT_THROW(simulate_plane_wave(probe_, ph, 0.0, bad), InvalidArgument);
  EXPECT_THROW(simulate_plane_wave(probe_, ph, 1.5, clean_), InvalidArgument);
}

TEST_F(SimulatorTest, EchoArrivesAtExpectedSample) {
  // Point at (0, z0): center elements receive the echo at t = 2 z0 / c.
  const double z0 = 20e-3;
  const Phantom ph = make_single_point(z0);
  const Acquisition acq = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const std::int64_t e = probe_.num_elements / 2;  // near the array center
  const double xe = probe_.element_x(e);
  const double expected_t =
      (z0 + std::sqrt(xe * xe + z0 * z0)) / probe_.sound_speed;
  // Find the envelope peak of that channel.
  std::int64_t peak_i = 0;
  float peak_v = 0.0f;
  for (std::int64_t i = 0; i < acq.num_samples(); ++i) {
    const float v = std::fabs(acq.rf.at(i, e));
    if (v > peak_v) {
      peak_v = v;
      peak_i = i;
    }
  }
  const double peak_t = static_cast<double>(peak_i) / probe_.sampling_frequency;
  EXPECT_NEAR(peak_t, expected_t, 0.3e-6);  // within a couple of periods
  EXPECT_GT(peak_v, 0.0f);
}

TEST_F(SimulatorTest, FarElementsReceiveLater) {
  const Phantom ph = make_single_point(15e-3);
  const Acquisition acq = simulate_plane_wave(probe_, ph, 0.0, clean_);
  auto peak_time = [&](std::int64_t e) {
    std::int64_t pi = 0;
    float pv = 0.0f;
    for (std::int64_t i = 0; i < acq.num_samples(); ++i) {
      const float v = std::fabs(acq.rf.at(i, e));
      if (v > pv) {
        pv = v;
        pi = i;
      }
    }
    return pi;
  };
  // Edge elements are farther from the on-axis point than center elements.
  EXPECT_GT(peak_time(0), peak_time(probe_.num_elements / 2));
  EXPECT_GT(peak_time(probe_.num_elements - 1),
            peak_time(probe_.num_elements / 2));
}

TEST_F(SimulatorTest, AmplitudeScalesLinearly) {
  Phantom ph1 = make_single_point(20e-3);
  Phantom ph2 = ph1;
  ph2.scatterers[0].amplitude = 2.0;
  const Acquisition a1 = simulate_plane_wave(probe_, ph1, 0.0, clean_);
  const Acquisition a2 = simulate_plane_wave(probe_, ph2, 0.0, clean_);
  EXPECT_NEAR(max_abs(a2.rf), 2.0f * max_abs(a1.rf), 1e-5f * max_abs(a2.rf));
}

TEST_F(SimulatorTest, NoiseRaisesFloor) {
  const Phantom ph = make_single_point(20e-3);
  SimParams noisy = clean_;
  noisy.add_noise = true;
  noisy.snr_db = 10.0;
  const Acquisition a_clean = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const Acquisition a_noisy = simulate_plane_wave(probe_, ph, 0.0, noisy);
  // Clean RF is exactly zero before the first echo; noisy RF is not.
  double clean_head = 0.0, noisy_head = 0.0;
  for (std::int64_t i = 0; i < 50; ++i)
    for (std::int64_t e = 0; e < probe_.num_elements; ++e) {
      clean_head += std::fabs(a_clean.rf.at(i, e));
      noisy_head += std::fabs(a_noisy.rf.at(i, e));
    }
  EXPECT_EQ(clean_head, 0.0);
  EXPECT_GT(noisy_head, 0.0);
}

TEST_F(SimulatorTest, AttenuationReducesDeepEchoesWithoutTgc) {
  const Phantom ph = make_single_point(25e-3);
  SimParams att = clean_;
  att.attenuation_db_cm_mhz = 0.7;
  att.apply_tgc = false;
  const Acquisition a0 = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const Acquisition a1 = simulate_plane_wave(probe_, ph, 0.0, att);
  EXPECT_LT(max_abs(a1.rf), max_abs(a0.rf));
}

TEST_F(SimulatorTest, TgcRestoresDeepEchoAmplitude) {
  const Phantom ph = make_single_point(25e-3);
  SimParams att = clean_;
  att.attenuation_db_cm_mhz = 0.7;
  att.apply_tgc = true;
  const Acquisition a0 = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const Acquisition a1 = simulate_plane_wave(probe_, ph, 0.0, att);
  // Receive-chain TGC compensates the mean round-trip loss; the deep echo
  // amplitude must land within ~20% of the attenuation-free acquisition.
  EXPECT_NEAR(max_abs(a1.rf) / max_abs(a0.rf), 1.0, 0.2);
}

TEST_F(SimulatorTest, SteeredWaveShiftsArrival) {
  // With positive steering the wavefront reaches +x scatterers later than
  // with normal incidence (relative to the t=0 reference at the first
  // insonified element).
  Phantom ph = make_single_point(20e-3, 5e-3);
  const Acquisition a0 = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const Acquisition a1 = simulate_plane_wave(probe_, ph, 0.1, clean_);
  auto peak_index = [&](const Acquisition& a) {
    std::int64_t pi = 0;
    float pv = 0.0f;
    const std::int64_t e = probe_.num_elements / 2;
    for (std::int64_t i = 0; i < a.num_samples(); ++i) {
      const float v = std::fabs(a.rf.at(i, e));
      if (v > pv) {
        pv = v;
        pi = i;
      }
    }
    return pi;
  };
  EXPECT_NE(peak_index(a0), peak_index(a1));
}

TEST(Grid, PaperDimensionsAndMapping) {
  const Probe probe = Probe::l11_5v();
  const ImagingGrid g = ImagingGrid::paper(probe);
  EXPECT_EQ(g.nz, 368);
  EXPECT_EQ(g.nx, 128);
  EXPECT_NEAR(g.x0, probe.element_x(0), 1e-12);
  EXPECT_NEAR(g.x_end(), probe.element_x(127), 1e-9);
  EXPECT_EQ(g.column_of(g.x_at(17)), 17);
  EXPECT_EQ(g.row_of(g.z_at(100)), 100);
  EXPECT_EQ(g.column_of(-1.0), 0);
  EXPECT_EQ(g.column_of(1.0), g.nx - 1);
  EXPECT_NO_THROW(g.validate());
}

TEST(Grid, ColumnAndRowClampToEdges) {
  const ImagingGrid g = ImagingGrid::reduced(Probe::test_probe(16), 64, 32);
  // Far outside on both sides: clamped to the first/last pixel.
  EXPECT_EQ(g.column_of(g.x0 - 1.0), 0);
  EXPECT_EQ(g.column_of(g.x_end() + 1.0), g.nx - 1);
  EXPECT_EQ(g.row_of(0.0), 0);
  EXPECT_EQ(g.row_of(g.z_end() + 1.0), g.nz - 1);
  // Just beyond the last pixel by half a spacing still clamps.
  EXPECT_EQ(g.column_of(g.x_end() + 10.0 * g.dx), g.nx - 1);
  EXPECT_EQ(g.row_of(g.z0 - 10.0 * g.dz), 0);
  // Nearest-neighbor rounding between pixels.
  EXPECT_EQ(g.column_of(g.x_at(3) + 0.49 * g.dx), 3);
  EXPECT_EQ(g.column_of(g.x_at(3) + 0.51 * g.dx), 4);
  EXPECT_EQ(g.row_of(g.z_at(7) + 0.49 * g.dz), 7);
  EXPECT_EQ(g.row_of(g.z_at(7) + 0.51 * g.dz), 8);
}

TEST(Grid, OnePixelGridIsValid) {
  ImagingGrid g;
  g.nx = 1;
  g.nz = 1;
  g.x0 = 2e-3;
  g.z0 = 20e-3;
  g.dx = 0.3e-3;
  g.dz = 0.1e-3;
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.num_pixels(), 1);
  EXPECT_EQ(g.x_end(), g.x0);
  EXPECT_EQ(g.z_end(), g.z0);
  // Every query lands on the only pixel.
  for (const double x : {-1.0, g.x0, g.x0 + 5.0 * g.dx, 1.0})
    EXPECT_EQ(g.column_of(x), 0);
  for (const double z : {1e-6, g.z0, g.z0 + 5.0 * g.dz, 1.0})
    EXPECT_EQ(g.row_of(z), 0);
  // The factory helpers still require >= 2 pixels per axis.
  EXPECT_THROW(ImagingGrid::reduced(Probe::test_probe(16), 1, 1),
               InvalidArgument);
}

TEST(Grid, ReducedAndValidation) {
  const Probe probe = Probe::test_probe(16);
  const ImagingGrid g = ImagingGrid::reduced(probe, 64, 32, 8e-3, 30e-3);
  EXPECT_EQ(g.num_pixels(), 64 * 32);
  EXPECT_NEAR(g.z0, 8e-3, 1e-12);
  EXPECT_NEAR(g.z_end(), 30e-3, 1e-9);
  EXPECT_THROW(ImagingGrid::reduced(probe, 1, 32), InvalidArgument);
  ImagingGrid bad = g;
  bad.dz = -1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

class TofTest : public ::testing::Test {
 protected:
  Probe probe_ = Probe::test_probe(16);
  SimParams clean_ = [] {
    SimParams p = SimParams::in_silico();
    p.add_noise = false;
    p.max_depth = 30e-3;
    return p;
  }();
  ImagingGrid grid_ = ImagingGrid::reduced(probe_, 96, 32, 10e-3, 28e-3);
};

TEST_F(TofTest, AlignsEchoAcrossChannels) {
  // After ToF correction, the scatterer pixel should hold near-peak values
  // on every channel simultaneously (that is the point of the correction).
  const double z0 = 20e-3;
  const Phantom ph = make_single_point(z0);
  const Acquisition acq = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const TofCube cube = tof_correct(acq, grid_, {});
  const std::int64_t iz = grid_.row_of(z0);
  const std::int64_t ix = grid_.column_of(0.0);
  // Sum across channels at the point pixel is large (coherent)...
  double coherent = 0.0;
  for (std::int64_t e = 0; e < probe_.num_elements; ++e)
    coherent += cube.real.at(iz, ix, e);
  // ... and much larger than at a pixel 3 mm above.
  const std::int64_t iz_off = grid_.row_of(z0 - 3e-3);
  double off = 0.0;
  for (std::int64_t e = 0; e < probe_.num_elements; ++e)
    off += cube.real.at(iz_off, ix, e);
  EXPECT_GT(std::fabs(coherent), 10.0 * std::fabs(off));
}

TEST_F(TofTest, AnalyticCubeCarriesEnvelopeInfo) {
  const Phantom ph = make_single_point(18e-3);
  const Acquisition acq = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const TofCube cube = tof_correct(acq, grid_, {.analytic = true});
  ASSERT_TRUE(cube.is_analytic());
  ASSERT_EQ(cube.imag.shape(), cube.real.shape());
  // |analytic| at the point pixel must dominate a far-away pixel.
  const std::int64_t iz = grid_.row_of(18e-3), ix = grid_.column_of(0.0);
  const std::int64_t jz = grid_.row_of(26e-3), jx = grid_.column_of(4e-3);
  double mag_pt = 0.0, mag_off = 0.0;
  for (std::int64_t e = 0; e < probe_.num_elements; ++e) {
    mag_pt += std::hypot(cube.real.at(iz, ix, e), cube.imag.at(iz, ix, e));
    mag_off += std::hypot(cube.real.at(jz, jx, e), cube.imag.at(jz, jx, e));
  }
  EXPECT_GT(mag_pt, 20.0 * mag_off);
}

TEST_F(TofTest, CubicInterpolationCloseToLinear) {
  const Phantom ph = make_single_point(20e-3);
  const Acquisition acq = simulate_plane_wave(probe_, ph, 0.0, clean_);
  const TofCube lin = tof_correct(acq, grid_, {});
  const TofCube cub =
      tof_correct(acq, grid_, {.interp = dsp::Interp::kCubic});
  // RF oscillates near fc, so the two interpolants can differ noticeably at
  // isolated samples; they must still agree at the 25%-of-peak level.
  const float scale = max_abs(lin.real);
  EXPECT_LT(max_abs_diff(lin.real, cub.real), 0.25f * scale);
  EXPECT_GT(scale, 0.0f);
}

TEST_F(TofTest, NormalizeCubeBoundsData) {
  const Phantom ph = make_single_point(20e-3);
  const Acquisition acq = simulate_plane_wave(probe_, ph, 0.0, clean_);
  TofCube cube = tof_correct(acq, grid_, {.analytic = true});
  const float scale = normalize_cube(cube);
  EXPECT_GT(scale, 0.0f);
  EXPECT_LE(max_abs(cube.real), 1.0f);
  EXPECT_LE(max_abs(cube.imag), 1.0f);
  const float peak = std::max(max_abs(cube.real), max_abs(cube.imag));
  EXPECT_NEAR(peak, 1.0f, 1e-6);
}

TEST_F(TofTest, NormalizeZeroCubeIsSafe) {
  TofCube cube;
  cube.real = Tensor({2, 2, 4});
  EXPECT_FLOAT_EQ(normalize_cube(cube), 0.0f);
}

TEST_F(TofTest, RejectsEmptyAcquisition) {
  Acquisition acq;
  acq.probe = probe_;
  EXPECT_THROW(tof_correct(acq, grid_, {}), InvalidArgument);
}

TEST(TwoWayDelay, NormalIncidenceFormula) {
  const double c = 1540.0;
  const double d = two_way_delay(2e-3, 30e-3, -1e-3, 0.0, 1.0, 0.0, c);
  const double expected =
      (30e-3 + std::sqrt(9e-6 + 900e-6)) / c;
  EXPECT_NEAR(d, expected, 1e-12);
}

}  // namespace
}  // namespace tvbf::us
