// Ops-plane tests: flight-recorder ring integrity under concurrent
// dump/record, ServiceState SLO accounting, the stall watchdog (unit, via
// the fault-injection hook, and integration, on a genuinely wedged serve),
// frame-lineage flow chains in the trace export of a served run, and the
// localhost introspection endpoint queried live over a raw socket. This
// suite carries the `obs` ctest label and runs under the tsan CI preset.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "beamform/das.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/ops_server.hpp"
#include "obs/service_state.hpp"
#include "obs/watchdog.hpp"
#include "runtime/frame_source.hpp"
#include "runtime/pipeline.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"

namespace tvbf::obs {
namespace {

using std::chrono::steady_clock;

/// Spins until `pred` holds or `timeout_s` passes; true when it held.
template <typename Pred>
bool wait_for(Pred pred, double timeout_s) {
  const auto deadline =
      steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, RecordsInOrderAndOverwritesOldest) {
  FlightRecorder ring(8);
  for (int i = 0; i < 12; ++i)
    ring.record(EventKind::kMark, i, i * 10, i * 100, "m");
  EXPECT_EQ(ring.total_recorded(), 12);
  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 8u);
  // Oldest surviving event first, sequence numbers contiguous: 4..11.
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].seq, static_cast<std::int64_t>(4 + k));
    EXPECT_EQ(events[k].session, events[k].seq);
    EXPECT_EQ(events[k].a, events[k].seq * 10);
    EXPECT_EQ(events[k].b, events[k].seq * 100);
    EXPECT_EQ(events[k].kind, EventKind::kMark);
  }
  ring.clear();
  EXPECT_TRUE(ring.dump().empty());
  EXPECT_EQ(ring.total_recorded(), 0);
}

TEST(FlightRecorder, DetailTruncatesAndKindNamesCover) {
  FlightRecorder ring(4);
  ring.record(EventKind::kSessionAdmit, 1, 0, 0,
              "a-very-long-beamformer-label-that-will-truncate");
  const auto events = ring.dump();
  ASSERT_EQ(events.size(), 1u);
  // detail is 31 bytes with a guaranteed NUL.
  EXPECT_LT(std::string(events[0].detail).size(), 31u);
  EXPECT_EQ(std::string(events[0].detail).substr(0, 6), "a-very");
  for (int k = 0; k <= static_cast<int>(EventKind::kMark); ++k)
    EXPECT_NE(std::string(event_kind_name(static_cast<EventKind>(k))),
              "unknown");
}

TEST(FlightRecorder, ConcurrentDumpSeesNoTornEvents) {
  FlightRecorder ring(64);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Invariant every published event must satisfy: b == 3 * a + 1.
        ring.record(EventKind::kMark, t, i, 3 * i + 1, "w");
        ++i;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    const auto events = ring.dump();
    EXPECT_LE(events.size(), ring.capacity());
    std::int64_t last_seq = -1;
    for (const auto& e : events) {
      EXPECT_GT(e.seq, last_seq);  // strictly increasing record order
      last_seq = e.seq;
      EXPECT_EQ(e.b, 3 * e.a + 1) << "torn slot at seq " << e.seq;
      EXPECT_EQ(e.kind, EventKind::kMark);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const std::string json = ring.dump_json();
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\""), std::string::npos);
  ring.clear();
}

TEST(FlightRecorder, WriteFlightDumpComposesFlightAndTrace) {
  const std::string path = ::testing::TempDir() + "tvbf_flight_dump.json";
  FlightRecorder::instance().record(EventKind::kMark, -1, 0, 0, "dump-test");
  ASSERT_TRUE(write_flight_dump(path));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  EXPECT_NE(body.find("\"flight\""), std::string::npos);
  EXPECT_NE(body.find("\"trace\""), std::string::npos);
  EXPECT_NE(body.find("dump-test"), std::string::npos);
  std::remove(path.c_str());
  // No configured path and no explicit path: nothing to write.
  EXPECT_FALSE(write_flight_dump(""));
}

// ---------------------------------------------------------------------------
// ServiceState

TEST(ServiceState, TracksSloHealthAndGates) {
  ServiceState& st = ServiceState::instance();
  st.reset();
  EXPECT_TRUE(st.healthy());  // vacuously

  st.admit(0, "cine", "das", /*slo_frame_s=*/0.5, /*drop_budget=*/1);
  st.admit(1, "replay", "tiny_vbf", /*slo_frame_s=*/0.0,
           /*drop_budget=*/-1);
  st.heartbeat(0, 0.01);
  st.heartbeat(1, 99.0);  // no SLO: slow frames are fine
  EXPECT_TRUE(st.healthy());

  st.frame_dropped(0);
  EXPECT_TRUE(st.healthy());  // 1 drop within budget 1
  st.frame_dropped(0);
  EXPECT_FALSE(st.healthy());  // budget exceeded

  auto sessions = st.sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].dropped, 2);
  EXPECT_FALSE(sessions[0].healthy());
  EXPECT_TRUE(sessions[1].healthy());
  EXPECT_NEAR(sessions[1].last_frame_s, 99.0, 1e-9);

  st.gate_update(&st, "tiny_vbf", 3, 4);
  auto gates = st.gates();
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0].parked, 3u);
  EXPECT_EQ(gates[0].quorum, 4u);

  st.retire(1);
  EXPECT_TRUE(st.sessions()[1].retired);

  const std::string healthz = st.healthz_json();
  EXPECT_NE(healthz.find("\"healthy\": false"), std::string::npos);
  const std::string sessions_json = st.sessions_json();
  EXPECT_NE(sessions_json.find("\"gates\""), std::string::npos);
  EXPECT_NE(sessions_json.find("tiny_vbf"), std::string::npos);
  st.reset();
}

TEST(ServiceState, DeadlineMissMarksUnhealthy) {
  ServiceState& st = ServiceState::instance();
  st.reset();
  st.admit(0, "cine", "das", /*slo_frame_s=*/0.01, /*drop_budget=*/-1);
  st.heartbeat(0, 0.005);
  EXPECT_TRUE(st.healthy());
  st.heartbeat(0, 0.5);  // over the 10 ms SLO
  EXPECT_FALSE(st.healthy());
  EXPECT_EQ(st.sessions()[0].deadline_misses, 1);
  st.reset();
}

TEST(ServiceState, ThreadNotesAreVisibleAcrossThreads) {
  ServiceState& st = ServiceState::instance();
  st.reset();
  std::thread worker([&st] { st.thread_note("tof[0]"); });
  worker.join();
  st.thread_note("deliver");
  const auto notes = st.thread_notes();
  std::set<std::string> whats;
  for (const auto& n : notes) whats.insert(n.what);
  EXPECT_TRUE(whats.count("tof[0]") == 1 || whats.count("deliver") == 1);
  st.reset();
  EXPECT_TRUE(st.thread_notes().empty());
}

// ---------------------------------------------------------------------------
// Watchdog (unit, via the fault-injection hook)

TEST(Watchdog, TripsOncePerStallEpisodeAndRearmsOnProgress) {
  ServiceState::instance().reset();
  std::atomic<int> trips{0};
  Watchdog::Options opt;
  opt.period_s = 0.005;
  opt.stall_s = 0.03;
  opt.pending_override = [] { return true; };
  opt.on_trip = [&trips](const StallReport& r) {
    EXPECT_TRUE(r.pending_override);
    trips.fetch_add(1, std::memory_order_relaxed);
  };
  Watchdog dog(opt);
  EXPECT_FALSE(dog.running());
  EXPECT_EQ(dog.trips(), 0);
  dog.start();
  EXPECT_TRUE(dog.running());

  ASSERT_TRUE(wait_for(
      [&] { return trips.load(std::memory_order_relaxed) >= 1; }, 10.0));
  const StallReport report = dog.last_report();
  EXPECT_TRUE(report.pending_override);
  EXPECT_GE(report.stalled_s, opt.stall_s * 0.5);
  EXPECT_FALSE(report.describe().empty());

  // One diagnosis per stall episode: still wedged, no second trip.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(trips.load(std::memory_order_relaxed), 1);

  // Progress re-arms; the next stall trips again.
  telemetry::Registry::instance().counter("graph.nodes_executed").add();
  ASSERT_TRUE(wait_for(
      [&] { return trips.load(std::memory_order_relaxed) >= 2; }, 10.0));
  dog.stop();
  EXPECT_FALSE(dog.running());
  EXPECT_EQ(dog.trips(), trips.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Prometheus rendering

TEST(OpsServerUnit, RendersPrometheusExposition) {
  telemetry::Snapshot snap;
  snap.counters.push_back({"serve.frames", 42});
  snap.gauges.push_back({"graph.ready_queue", 3});
  telemetry::HistogramSnapshot h;
  h.name = "serve.frame_s";
  h.count = 2;
  h.sum_s = 3e-3;
  h.min_s = 1e-3;
  h.max_s = 2e-3;
  h.p50_s = 1e-3;
  h.p90_s = 2e-3;
  h.p99_s = 2e-3;
  snap.histograms.push_back(h);

  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE tvbf_serve_frames counter"), std::string::npos);
  EXPECT_NE(text.find("tvbf_serve_frames 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tvbf_graph_ready_queue gauge"),
            std::string::npos);
  EXPECT_NE(text.find("tvbf_serve_frame_s{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tvbf_serve_frame_s{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tvbf_serve_frame_s_sum"), std::string::npos);
  EXPECT_NE(text.find("tvbf_serve_frame_s_count 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ops endpoint over a raw socket

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(OpsServerUnit, ServesRoutesOnEphemeralPort) {
  ServiceState::instance().reset();
  ServiceState::instance().admit(0, "cine", "das", 0.0, -1);
  OpsServer server(OpsServer::Options{0});
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  const int port = server.port();
  ASSERT_GT(port, 0);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.find("tvbf_"), std::string::npos);

  const std::string healthz = http_get(port, "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos);

  // Blow the drop budget: /healthz flips to 503.
  ServiceState::instance().admit(1, "cine", "das", 0.0, 0);
  ServiceState::instance().frame_dropped(1);
  const std::string unhealthy = http_get(port, "/healthz");
  EXPECT_NE(unhealthy.find("503"), std::string::npos);
  EXPECT_NE(unhealthy.find("\"healthy\": false"), std::string::npos);

  const std::string sessions = http_get(port, "/sessions");
  EXPECT_NE(sessions.find("\"sessions\""), std::string::npos);

  const std::string dump = http_get(port, "/dump");
  EXPECT_NE(dump.find("\"flight\""), std::string::npos);
  EXPECT_NE(dump.find("\"trace\""), std::string::npos);

  const std::string missing = http_get(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  ServiceState::instance().reset();
}

// ---------------------------------------------------------------------------
// Served-run integration

class ObsServeTest : public ::testing::Test {
 protected:
  std::shared_ptr<rt::CineSource> cine(std::int64_t frames) const {
    us::Region region{-4e-3, 4e-3, 12e-3, 24e-3};
    rt::CineParams p;
    p.num_frames = frames;
    p.frame_rate_hz = 10.0;
    p.lateral_speed_m_s = 5e-3;
    p.axial_amplitude_m = 0.4e-3;
    p.axial_period_s = 0.8;
    p.sim = clean_;
    return std::make_shared<rt::CineSource>(
        probe_, us::make_single_point(18e-3, 0.0, region), p);
  }

  std::shared_ptr<bf::DasBeamformer> das() const {
    return std::make_shared<bf::DasBeamformer>(probe_);
  }

  rt::PipelineConfig pipeline_config() const {
    rt::PipelineConfig cfg;
    cfg.grid = grid_;
    return cfg;
  }

  us::Probe probe_ = us::Probe::test_probe(16);
  us::SimParams clean_ = [] {
    us::SimParams p = us::SimParams::in_silico();
    p.add_noise = false;
    p.max_depth = 26e-3;
    return p;
  }();
  us::ImagingGrid grid_ =
      us::ImagingGrid::reduced(probe_, 40, 32, 12e-3, 24e-3);
};

TEST_F(ObsServeTest, ServedRunExportsConnectedFrameChains) {
  telemetry::trace_start(1 << 16);
  serve::Server server;
  std::vector<std::uint64_t> ids;
  server.add_session({cine(3), das(), pipeline_config(),
                      [&ids](const rt::FrameOutput& f) {
                        ids.push_back(f.trace_id);
                      }});
  const serve::ServerReport report = server.run();
  telemetry::trace_stop();
  EXPECT_EQ(report.frames, 3);

  // Every frame minted a distinct nonzero lineage id at the source...
  ASSERT_EQ(ids.size(), 3u);
  for (const std::uint64_t id : ids) EXPECT_NE(id, 0u);
  EXPECT_EQ(std::set<std::uint64_t>(ids.begin(), ids.end()).size(), 3u);

  // ...and each renders as one connected chain in the Chrome export: a
  // flow start, at least one through, and an enclosing finish per frame.
  const std::string json = telemetry::trace_export_json();
  for (const std::uint64_t id : ids) {
    const std::string tag = "\"id\": " + std::to_string(id);
    EXPECT_NE(json.find("\"ph\": \"s\", " + tag), std::string::npos)
        << "no flow start for frame " << id;
    EXPECT_NE(json.find("\"ph\": \"t\", " + tag), std::string::npos)
        << "no flow step for frame " << id;
    EXPECT_NE(json.find("\"ph\": \"f\", " + tag), std::string::npos)
        << "no flow finish for frame " << id;
  }
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  // The chain reaches from acquisition into the graph nodes.
  EXPECT_NE(json.find("serve.acquire"), std::string::npos);
  EXPECT_NE(json.find("deliver"), std::string::npos);
}

TEST_F(ObsServeTest, WatchdogFiresOnStalledServe) {
  const std::string dump_path =
      ::testing::TempDir() + "tvbf_watchdog_trip.json";
  std::remove(dump_path.c_str());

  serve::ServerConfig cfg;
  cfg.watchdog_stall_s = 0.05;
  cfg.watchdog_period_s = 0.01;
  cfg.watchdog_dump_path = dump_path;
  std::atomic<bool> wedged{false};
  std::atomic<bool> tripped{false};
  // Injection hook: while the sink holds the deliver node hostage, tell
  // the watchdog work is pending even if the queue gauges read idle.
  cfg.watchdog_pending_override = [&wedged] {
    return wedged.load(std::memory_order_relaxed);
  };
  cfg.watchdog_on_trip = [&tripped](const StallReport& report) {
    EXPECT_FALSE(report.describe().empty());
    tripped.store(true, std::memory_order_relaxed);
  };

  serve::Server server(cfg);
  std::int64_t delivered = 0;
  server.add_session(
      {cine(2), das(), pipeline_config(),
       [&](const rt::FrameOutput& f) {
         ++delivered;
         if (f.index == 0) {
           // Wedge frame 0's deliver node until the watchdog notices (the
           // executor makes no progress while we sit here).
           wedged.store(true, std::memory_order_relaxed);
           EXPECT_TRUE(wait_for(
               [&] { return tripped.load(std::memory_order_relaxed); },
               20.0));
           wedged.store(false, std::memory_order_relaxed);
         }
       }});
  const serve::ServerReport report = server.run();
  EXPECT_TRUE(tripped.load(std::memory_order_relaxed));
  EXPECT_EQ(report.frames, 2);
  EXPECT_EQ(delivered, 2);

  // The trip wrote the flight dump with the kWatchdogTrip breadcrumb.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in) << "watchdog trip did not write " << dump_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("watchdog_trip"), std::string::npos);
  std::remove(dump_path.c_str());
}

TEST_F(ObsServeTest, OpsEndpointLiveDuringRunAndOutputBitIdentical) {
  // Reference frames from a solo pipeline of an identical source.
  std::vector<Tensor> expected;
  rt::Pipeline solo(cine(4), das(), pipeline_config());
  solo.run([&](const rt::FrameOutput& f) { expected.push_back(f.db); });

  serve::ServerConfig cfg;
  cfg.ops_port = 0;  // ephemeral
  serve::Server server(cfg);
  std::vector<Tensor> got;
  std::atomic<bool> queried{false};
  std::string metrics, healthz, sessions;
  server.add_session(
      {cine(4), das(), pipeline_config(),
       [&](const rt::FrameOutput& f) {
         if (!queried.exchange(true, std::memory_order_acq_rel)) {
           // The endpoint is up before any frame is delivered.
           const int port = server.ops_port();
           EXPECT_GT(port, 0);
           metrics = http_get(port, "/metrics");
           healthz = http_get(port, "/healthz");
           sessions = http_get(port, "/sessions");
         }
         got.push_back(f.db);
       }});
  const serve::ServerReport report = server.run();

  EXPECT_EQ(report.frames, 4);
  EXPECT_EQ(server.ops_port(), -1);  // torn down with the run
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("tvbf_"), std::string::npos);
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos);
  EXPECT_NE(sessions.find("\"sessions\""), std::string::npos);
  EXPECT_NE(sessions.find("DAS"), std::string::npos);

  // The ops plane observes; it must not perturb: bit-identical frames.
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < got.size(); ++k)
    EXPECT_EQ(max_abs_diff(got[k], expected[k]), 0.0f) << "frame " << k;
}

}  // namespace
}  // namespace tvbf::obs
