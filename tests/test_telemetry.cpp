// Telemetry instrument tests: sharded counters under parallel hammering,
// histogram bucket boundaries and quantile accuracy against a sorted
// reference, snapshot-while-recording consistency, trace-event JSON
// well-formedness, and the disabled-instrument no-op guarantee.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace {

using tvbf::telemetry::Counter;
using tvbf::telemetry::Gauge;
using tvbf::telemetry::HistogramSnapshot;
using tvbf::telemetry::LatencyHistogram;
using tvbf::telemetry::Registry;
using tvbf::telemetry::Snapshot;
using tvbf::telemetry::TraceBuffer;

/// Every test leaves the process-wide switch enabled for the next one.
class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override { tvbf::telemetry::set_enabled(true); }
};

// ---------------------------------------------------------------------------
// Counter / Gauge sharding

TEST_F(TelemetryTest, CounterCountsExactlyUnderParallelHammering) {
  Counter& c = Registry::instance().counter("test.hammer_counter");
  c.reset();
  constexpr std::size_t kIters = 200000;
  // parallel_for spreads the range across the pool; every add() must land.
  tvbf::parallel_for(
      0, kIters,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) c.add();
      },
      1024);
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kIters));
}

TEST_F(TelemetryTest, CounterExactAcrossDedicatedThreads) {
  Counter& c = Registry::instance().counter("test.thread_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(TelemetryTest, GaugeBalancedAddsSubsReturnToZero) {
  Gauge& g = Registry::instance().gauge("test.balance_gauge");
  g.reset();
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) {
        g.add(3);
        g.sub(2);
        g.sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
  g.add(7);
  EXPECT_EQ(g.value(), 7);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries

TEST_F(TelemetryTest, HistogramBucketBoundaries) {
  // Bucket 0 is [0, 1 µs); each lower bound is inclusive.
  EXPECT_EQ(LatencyHistogram::bucket_index(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(0.5e-6), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e-6), 1u);

  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lower_bound(0), 0.0);
  EXPECT_NEAR(LatencyHistogram::bucket_lower_bound(1), 1e-6, 1e-12);

  // Exactly on a lower edge lands in that bucket; just below lands in the
  // previous one. Quantized to integer nanoseconds, so test edges >= 1 µs.
  for (std::size_t i = 1; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const double edge = LatencyHistogram::bucket_lower_bound(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(edge), i) << "edge " << edge;
    EXPECT_EQ(LatencyHistogram::bucket_index(edge - 1.5e-9), i - 1)
        << "below edge " << edge;
  }

  // Bounds grow monotonically by the octave ratio.
  for (std::size_t i = 2; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const double lo = LatencyHistogram::bucket_lower_bound(i - 1);
    const double hi = LatencyHistogram::bucket_lower_bound(i);
    EXPECT_GT(hi, lo);
    EXPECT_NEAR(hi / lo, std::exp2(0.25), 0.01);
  }

  // Far beyond the finite range: the overflow bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(100.0),
            LatencyHistogram::kNumBuckets - 1);
}

TEST_F(TelemetryTest, HistogramCountSumMinMax) {
  LatencyHistogram h;
  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_NEAR(s.sum_s, 7e-3, 1e-9);
  EXPECT_NEAR(s.min_s, 1e-3, 1e-9);
  EXPECT_NEAR(s.max_s, 4e-3, 1e-9);
  EXPECT_NEAR(s.mean_s(), 7e-3 / 3.0, 1e-9);

  h.reset();
  const HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.min_s, 0.0);
  EXPECT_EQ(empty.p99_s, 0.0);
}

TEST_F(TelemetryTest, HistogramQuantilesMatchSortedReference) {
  // Log-uniform latencies spanning 10 µs .. 100 ms: the histogram's
  // quantiles must track a sorted-array reference within the bucket
  // resolution (ratio 2^0.25 per bucket → <= ~19 % relative error).
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> log_u(std::log(1e-5),
                                               std::log(1e-1));
  LatencyHistogram h;
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(log_u(rng));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const auto exact = [&](double q) {
    return values[static_cast<std::size_t>(
        std::min<double>(q * static_cast<double>(values.size()),
                         static_cast<double>(values.size() - 1)))];
  };
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 20000);
  for (const auto& [want, got] :
       {std::pair{exact(0.50), s.p50_s}, std::pair{exact(0.90), s.p90_s},
        std::pair{exact(0.99), s.p99_s}}) {
    EXPECT_GT(got, want / std::exp2(0.5));
    EXPECT_LT(got, want * std::exp2(0.5));
  }
  // Quantiles are ordered and clamped to the observed range.
  EXPECT_LE(s.min_s, s.p50_s);
  EXPECT_LE(s.p50_s, s.p90_s);
  EXPECT_LE(s.p90_s, s.p99_s);
  EXPECT_LE(s.p99_s, s.max_s);
}

TEST_F(TelemetryTest, SnapshotWhileRecordingIsConsistent) {
  LatencyHistogram& h =
      Registry::instance().histogram("test.live_snapshot_hist");
  h.reset();
  Counter& c = Registry::instance().counter("test.live_snapshot_count");
  c.reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::mt19937 rng(std::random_device{}());
      std::uniform_real_distribution<double> u(1e-6, 1e-2);
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(u(rng));
        c.add();
      }
    });
  }
  // Snapshots taken mid-stream: counts grow monotonically and every
  // derived figure stays internally consistent (quantiles within
  // [min, max], count matching the bucket sum by construction).
  std::int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot s = h.snapshot();
    EXPECT_GE(s.count, last_count);
    last_count = s.count;
    if (s.count > 0) {
      EXPECT_GE(s.p50_s, s.min_s);
      EXPECT_LE(s.p99_s, s.max_s);
      EXPECT_GT(s.sum_s, 0.0);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, h.count());
}

// ---------------------------------------------------------------------------
// Registry and rendering

TEST_F(TelemetryTest, RegistryReturnsStableReferences) {
  Counter& a = Registry::instance().counter("test.stable");
  Counter& b = Registry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(5);
  const Snapshot snap = Registry::instance().snapshot();
  const auto* v = snap.counter("test.stable");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 5);
  EXPECT_EQ(snap.counter("test.no_such_name"), nullptr);
}

TEST_F(TelemetryTest, RenderTableAndJsonContainInstruments) {
  Registry::instance().counter("test.render_counter").reset();
  Registry::instance().counter("test.render_counter").add(3);
  Registry::instance().histogram("test.render_hist").record(2e-3);
  const Snapshot snap = Registry::instance().snapshot();
  const std::string table = tvbf::telemetry::render_table(snap);
  EXPECT_NE(table.find("test.render_counter"), std::string::npos);
  EXPECT_NE(table.find("test.render_hist"), std::string::npos);
  const std::string json = tvbf::telemetry::to_json(snap);
  EXPECT_NE(json.find("\"test.render_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.render_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled instruments

TEST_F(TelemetryTest, DisabledInstrumentsRecordNothing) {
  Counter& c = Registry::instance().counter("test.disabled_counter");
  LatencyHistogram& h =
      Registry::instance().histogram("test.disabled_hist");
  c.reset();
  h.reset();
  tvbf::telemetry::set_enabled(false);
  EXPECT_FALSE(tvbf::telemetry::enabled());
  c.add(100);
  h.record(1e-3);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  tvbf::telemetry::set_enabled(true);
  c.add(1);
  h.record(1e-3);
  EXPECT_EQ(c.value(), 1);
  EXPECT_EQ(h.count(), 1);
}

// ---------------------------------------------------------------------------
// Trace buffer

// Minimal structural JSON scan: balanced braces/brackets outside strings,
// non-empty, and the expected top-level key. A parser without a parser.
void expect_well_formed_trace_json(const std::string& json) {
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TelemetryTest, TraceBufferRecordsAndExports) {
  TraceBuffer buf(64);
  const auto t0 = std::chrono::steady_clock::now();
  buf.record("alpha", t0, t0 + std::chrono::microseconds(100));
  buf.record("beta", t0 + std::chrono::microseconds(50),
             t0 + std::chrono::microseconds(70));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);
  const std::string json = buf.to_chrome_json();
  expect_well_formed_trace_json(json);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Earliest event anchors ts at 0.
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
}

TEST_F(TelemetryTest, TraceBufferDropsWhenFullAndClears) {
  TraceBuffer buf(4);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i)
    buf.record("x", t0, t0 + std::chrono::microseconds(1));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  buf.record("y", t0, t0 + std::chrono::microseconds(1));
  EXPECT_EQ(buf.size(), 1u);
}

TEST_F(TelemetryTest, TraceBufferConcurrentRecordsAllLand) {
  TraceBuffer buf(100000);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buf, t0] {
      for (int i = 0; i < kPerThread; ++i)
        buf.record("span", t0, t0 + std::chrono::microseconds(2));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(buf.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(buf.dropped(), 0u);
  expect_well_formed_trace_json(buf.to_chrome_json());
}

TEST_F(TelemetryTest, HistogramSingleSampleQuantilesCollapse) {
  LatencyHistogram h;
  h.record(1e-3);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  // One sample: min == max, and every quantile clamps to the sample.
  EXPECT_DOUBLE_EQ(s.min_s, s.max_s);
  EXPECT_NEAR(s.min_s, 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(s.p50_s, s.min_s);
  EXPECT_DOUBLE_EQ(s.p90_s, s.min_s);
  EXPECT_DOUBLE_EQ(s.p99_s, s.min_s);
}

TEST_F(TelemetryTest, HistogramUnderflowBucketQuantiles) {
  // All mass in bucket 0 ([0, 1 µs), lower edge 0): the geometric
  // interpolation cannot take log(0) — the quantile falls back to linear
  // and clamps into [min, max]. Zero and negative samples clamp to 0 ns.
  LatencyHistogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(0.5e-6);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.min_s, 0.0);
  EXPECT_NEAR(s.max_s, 0.5e-6, 1e-12);
  for (double q : {s.p50_s, s.p90_s, s.p99_s}) {
    EXPECT_TRUE(std::isfinite(q));
    EXPECT_GE(q, s.min_s);
    EXPECT_LE(q, s.max_s);
  }
}

TEST_F(TelemetryTest, TraceFlowEventsFormConnectedChain) {
  TraceBuffer buf(64);
  const auto t0 = std::chrono::steady_clock::now();
  const auto us = [&](int n) { return t0 + std::chrono::microseconds(n); };
  // Three spans of flow 7 (out of begin-time order on purpose) and one
  // lone span of flow 9.
  buf.record("mid", us(10), us(20), 7);
  buf.record("head", us(0), us(5), 7);
  buf.record("tail", us(30), us(40), 7);
  buf.record("lone", us(0), us(1), 9);
  const std::string json = buf.to_chrome_json();
  expect_well_formed_trace_json(json);
  // One start, one through, one finish (enclosing binding), all id 7.
  EXPECT_NE(json.find("\"ph\": \"s\", \"id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"t\", \"id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\", \"id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  // The chain starts at the earliest-beginning span (midpoint 2.5 µs).
  const std::size_t s_pos = json.find("\"ph\": \"s\", \"id\": 7");
  EXPECT_NE(json.find("\"ts\": 2.500", s_pos), std::string::npos);
  // A single-span flow draws no arrow.
  EXPECT_EQ(json.find("\"id\": 9"), std::string::npos);
}

TEST_F(TelemetryTest, TraceBufferDumpThenRearmUnderConcurrentWriters) {
  // Live dumps (the /dump route) and clear-then-reuse (re-arming a capture)
  // must hold up against concurrent writers: every export is structurally
  // sound and clear() resets both the span count and the drop accounting.
  TraceBuffer buf(256);
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&buf, &stop, t0] {
      std::uint64_t flow = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        buf.record("w", t0, t0 + std::chrono::microseconds(3), flow);
        flow = flow % 5 + 1;
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    expect_well_formed_trace_json(buf.to_chrome_json());
    buf.clear();
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_LE(buf.size(), buf.capacity());
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
  // Re-armed: the next record lands with fresh accounting.
  buf.record("fresh", t0, t0 + std::chrono::microseconds(1));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST_F(TelemetryTest, SnapshotSurfacesTraceDroppedSpans) {
  tvbf::telemetry::trace_start(16);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 40; ++i)
    tvbf::telemetry::trace_record("spam", t0,
                                  t0 + std::chrono::microseconds(1));
  tvbf::telemetry::trace_stop();
  EXPECT_GE(tvbf::telemetry::trace_dropped(), 24);
  const Snapshot snap = Registry::instance().snapshot();
  const auto* v = snap.counter("telemetry.trace.dropped_spans");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, tvbf::telemetry::trace_dropped());
  // The synthetic counter keeps the sorted-by-name invariant.
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST_F(TelemetryTest, GlobalTraceCaptureViaScopedSpan) {
  tvbf::telemetry::trace_start(1024);
  EXPECT_TRUE(tvbf::telemetry::trace_active());
  {
    tvbf::telemetry::ScopedSpan span(nullptr, "test.traced_span");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tvbf::telemetry::trace_stop();
  EXPECT_FALSE(tvbf::telemetry::trace_active());
  const std::string json = tvbf::telemetry::trace_export_json();
  expect_well_formed_trace_json(json);
  EXPECT_NE(json.find("\"test.traced_span\""), std::string::npos);

  // Disarmed: spans are not captured.
  {
    tvbf::telemetry::ScopedSpan span(nullptr, "test.not_captured");
  }
  EXPECT_EQ(tvbf::telemetry::trace_export_json().find("test.not_captured"),
            std::string::npos);
}

}  // namespace
