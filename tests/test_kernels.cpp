// Equivalence suite for the blocked kernel layer (src/kernels): the tiled
// GEMM and conv2d kernels must match the preserved naive `*_reference`
// implementations across odd shapes — non-multiple-of-tile sizes, single
// channels, 1x1 and 5x5 kernels — and the parallelized backward kernels
// must agree with both the serial references and finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "kernels/conv.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::kernels {
namespace {

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

/// Max |a - b| relative to max |b| over raw buffers.
float rel_err(const Tensor& a, const Tensor& b) {
  float m = 0.0f, scale = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.raw()[i] - b.raw()[i]));
    scale = std::max(scale, std::fabs(b.raw()[i]));
  }
  return scale > 0.0f ? m / scale : m;
}

// ---- GEMM ------------------------------------------------------------------

class GemmShapes : public ::testing::TestWithParam<
                       std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(GemmShapes, BlockedMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n}), ref({m, n});
  gemm_rows(a.raw(), b.raw(), c.raw(), m, k, n, 0, m);
  gemm_reference_rows(a.raw(), b.raw(), ref.raw(), m, k, n, 0, m);
  EXPECT_LT(rel_err(c, ref), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 7, 1},
                      std::tuple{3, 5, 2}, std::tuple{4, 16, 16},
                      std::tuple{5, 3, 9}, std::tuple{7, 13, 17},
                      std::tuple{8, 8, 8}, std::tuple{13, 1, 13},
                      std::tuple{17, 31, 15}, std::tuple{33, 65, 33},
                      std::tuple{64, 64, 64}, std::tuple{65, 127, 129},
                      std::tuple{128, 128, 128}, std::tuple{100, 300, 24}));

TEST(Gemm, AccumulateAddsOntoExistingOutput) {
  Rng rng(7);
  const std::int64_t m = 9, k = 21, n = 13;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor c = random_tensor({m, n}, rng);
  Tensor expected = c;
  gemm_rows(a.raw(), b.raw(), c.raw(), m, k, n, 0, m, /*accumulate=*/true);
  Tensor prod({m, n});
  gemm_reference_rows(a.raw(), b.raw(), prod.raw(), m, k, n, 0, m);
  add_inplace(expected, prod);
  EXPECT_LT(rel_err(c, expected), 1e-5f);
}

TEST(Gemm, RowRangeTouchesOnlyItsRows) {
  Rng rng(8);
  const std::int64_t m = 11, k = 17, n = 19;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n}, 42.0f);
  gemm_rows(a.raw(), b.raw(), c.raw(), m, k, n, 3, 8);
  Tensor ref({m, n});
  gemm_reference_rows(a.raw(), b.raw(), ref.raw(), m, k, n, 0, m);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      if (i < 3 || i >= 8)
        EXPECT_FLOAT_EQ(c.at(i, j), 42.0f) << i << "," << j;
      else
        EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-4f) << i << "," << j;
    }
}

TEST(Gemm, ThreadedGemmMatchesReference) {
  Rng rng(9);
  const std::int64_t m = 93, k = 71, n = 55;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n}), ref({m, n});
  gemm(a.raw(), b.raw(), c.raw(), m, k, n);
  gemm_reference_rows(a.raw(), b.raw(), ref.raw(), m, k, n, 0, m);
  EXPECT_LT(rel_err(c, ref), 1e-5f);
}

TEST(Gemm, NtMatchesReferenceWithExplicitTranspose) {
  for (const auto& [m, k, n] :
       std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>{
           {1, 1, 1}, {3, 8, 5}, {7, 16, 4}, {13, 31, 17}, {32, 64, 32}}) {
    Rng rng(static_cast<std::uint64_t>(m + k + n));
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor bt = random_tensor({n, k}, rng);  // rhs stored transposed
    Tensor c({m, n});
    gemm_nt_rows(a.raw(), bt.raw(), c.raw(), m, k, n, 0, m);
    const Tensor b = transpose(bt);  // (k, n)
    Tensor ref({m, n});
    gemm_reference_rows(a.raw(), b.raw(), ref.raw(), m, k, n, 0, m);
    EXPECT_LT(rel_err(c, ref), 1e-5f) << m << "x" << k << "x" << n;
  }
}

TEST(Gemm, TnAccumulateMatchesReferenceWithExplicitTranspose) {
  for (const auto& [m, k, n] :
       std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>>{
           {1, 1, 1}, {5, 3, 7}, {16, 9, 8}, {31, 13, 27}, {64, 32, 48}}) {
    Rng rng(static_cast<std::uint64_t>(m * 3 + k * 5 + n * 7));
    const Tensor a = random_tensor({m, k}, rng);
    const Tensor b = random_tensor({m, n}, rng);
    Tensor c({k, n}, 0.5f);  // nonzero start: must accumulate
    Tensor expected = c;
    gemm_tn_accumulate(a.raw(), b.raw(), c.raw(), m, k, n);
    const Tensor at = transpose(a);  // (k, m)
    Tensor prod({k, n});
    gemm_reference_rows(at.raw(), b.raw(), prod.raw(), k, m, n, 0, k);
    add_inplace(expected, prod);
    EXPECT_LT(rel_err(c, expected), 1e-5f) << m << "x" << k << "x" << n;
  }
}

// ---- conv2d ----------------------------------------------------------------

// (H, W, Ci, kh, kw, Co): odd spatial sizes, single channels, 1x1 and 5x5.
const Conv2dShape kConvShapes[] = {
    {.H = 1, .W = 1, .Ci = 1, .kh = 1, .kw = 1, .Co = 1},
    {.H = 5, .W = 3, .Ci = 1, .kh = 3, .kw = 3, .Co = 1},
    {.H = 7, .W = 9, .Ci = 2, .kh = 1, .kw = 1, .Co = 5},
    {.H = 9, .W = 7, .Ci = 3, .kh = 5, .kw = 5, .Co = 2},
    {.H = 13, .W = 11, .Ci = 4, .kh = 3, .kw = 5, .Co = 3},
    {.H = 17, .W = 16, .Ci = 8, .kh = 3, .kw = 3, .Co = 8},
    {.H = 4, .W = 32, .Ci = 16, .kh = 5, .kw = 3, .Co = 4},
    {.H = 2, .W = 2, .Ci = 1, .kh = 5, .kw = 5, .Co = 1},  // kernel > image
};

class ConvShapes : public ::testing::TestWithParam<Conv2dShape> {};

TEST_P(ConvShapes, ForwardMatchesReference) {
  const Conv2dShape s = GetParam();
  Rng rng(static_cast<std::uint64_t>(s.H * 100 + s.W * 10 + s.Ci));
  const Tensor in = random_tensor({s.H, s.W, s.Ci}, rng);
  const Tensor k = random_tensor({s.kh, s.kw, s.Ci, s.Co}, rng);
  Tensor out({s.H, s.W, s.Co}), ref({s.H, s.W, s.Co});
  conv2d_same_forward(in.raw(), k.raw(), out.raw(), s);
  conv2d_same_forward_reference(in.raw(), k.raw(), ref.raw(), s);
  EXPECT_LT(rel_err(out, ref), 1e-5f);
}

TEST_P(ConvShapes, BackwardKernelMatchesReference) {
  const Conv2dShape s = GetParam();
  Rng rng(static_cast<std::uint64_t>(s.H + s.W * 7 + s.Co * 3));
  const Tensor in = random_tensor({s.H, s.W, s.Ci}, rng);
  const Tensor dy = random_tensor({s.H, s.W, s.Co}, rng);
  Tensor gk({s.kh, s.kw, s.Ci, s.Co}, 0.25f);  // nonzero: must accumulate
  Tensor ref = gk;
  conv2d_same_backward_kernel(in.raw(), dy.raw(), gk.raw(), s);
  conv2d_same_backward_kernel_reference(in.raw(), dy.raw(), ref.raw(), s);
  EXPECT_LT(rel_err(gk, ref), 1e-4f);
}

TEST_P(ConvShapes, BackwardInputMatchesReference) {
  const Conv2dShape s = GetParam();
  Rng rng(static_cast<std::uint64_t>(s.H * 3 + s.W + s.Ci * 11));
  const Tensor k = random_tensor({s.kh, s.kw, s.Ci, s.Co}, rng);
  const Tensor dy = random_tensor({s.H, s.W, s.Co}, rng);
  Tensor gx({s.H, s.W, s.Ci}, -0.5f);
  Tensor ref = gx;
  conv2d_same_backward_input(k.raw(), dy.raw(), gx.raw(), s);
  conv2d_same_backward_input_reference(k.raw(), dy.raw(), ref.raw(), s);
  EXPECT_LT(rel_err(gx, ref), 1e-4f);
}

TEST_P(ConvShapes, BackwardBiasSumsEveryPixel) {
  const Conv2dShape s = GetParam();
  Rng rng(static_cast<std::uint64_t>(s.Co * 13 + s.W));
  const Tensor dy = random_tensor({s.H, s.W, s.Co}, rng);
  Tensor gb({s.Co}, 1.0f);
  conv2d_same_backward_bias(dy.raw(), gb.raw(), s);
  for (std::int64_t co = 0; co < s.Co; ++co) {
    double expected = 1.0;
    for (std::int64_t p = 0; p < s.H * s.W; ++p)
      expected += dy.raw()[p * s.Co + co];
    EXPECT_NEAR(gb.at(co), expected, 1e-4) << "co=" << co;
  }
}

INSTANTIATE_TEST_SUITE_P(OddShapes, ConvShapes,
                         ::testing::ValuesIn(kConvShapes));

// ---- finite-difference checks of the parallelized backward kernels --------

TEST(ConvGradients, BackwardKernelsMatchFiniteDifferences) {
  // Independent of the serial references: perturb one element at a time and
  // compare the parallel backward kernels against central differences of
  // the forward pass under the loss L = sum(out * w) with fixed weights w.
  const Conv2dShape s{.H = 5, .W = 4, .Ci = 2, .kh = 3, .kw = 3, .Co = 2};
  Rng rng(99);
  Tensor in = random_tensor({s.H, s.W, s.Ci}, rng);
  Tensor k = random_tensor({s.kh, s.kw, s.Ci, s.Co}, rng);
  const Tensor w = random_tensor({s.H, s.W, s.Co}, rng);

  auto loss = [&] {
    Tensor out({s.H, s.W, s.Co});
    conv2d_same_forward(in.raw(), k.raw(), out.raw(), s);
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i)
      acc += static_cast<double>(out.raw()[i]) * w.raw()[i];
    return acc;
  };

  // dL/dout = w feeds both backward kernels.
  Tensor gk({s.kh, s.kw, s.Ci, s.Co});
  Tensor gx({s.H, s.W, s.Ci});
  conv2d_same_backward_kernel(in.raw(), w.raw(), gk.raw(), s);
  conv2d_same_backward_input(k.raw(), w.raw(), gx.raw(), s);

  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < k.size(); ++i) {
    const float orig = k.raw()[i];
    k.raw()[i] = orig + eps;
    const double up = loss();
    k.raw()[i] = orig - eps;
    const double down = loss();
    k.raw()[i] = orig;
    EXPECT_NEAR(gk.raw()[i], (up - down) / (2.0 * eps), 2e-2)
        << "kernel grad " << i;
  }
  for (std::int64_t i = 0; i < in.size(); ++i) {
    const float orig = in.raw()[i];
    in.raw()[i] = orig + eps;
    const double up = loss();
    in.raw()[i] = orig - eps;
    const double down = loss();
    in.raw()[i] = orig;
    EXPECT_NEAR(gx.raw()[i], (up - down) / (2.0 * eps), 2e-2)
        << "input grad " << i;
  }
}

}  // namespace
}  // namespace tvbf::kernels
