// Unit and property tests for the tensor container and kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double sigma = 1.0) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, sigma));
  return t;
}

/// Naive reference matmul.
Tensor matmul_ref(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      c.at(i, j) = static_cast<float>(acc);
    }
  return c;
}

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(numel({2, 3, 4}), 24);
  EXPECT_EQ(numel({}), 1);
  EXPECT_EQ(numel({0, 5}), 0);
  EXPECT_EQ(to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(numel({-1, 2}), InvalidArgument);
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (float v : t.data()) EXPECT_FLOAT_EQ(v, 1.5f);
  t.fill(-2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), -2.0f);
}

TEST(Tensor, ValueMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), InvalidArgument);
}

TEST(Tensor, RankLimit) {
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), InvalidArgument);
}

TEST(Tensor, IndexingRoundTrip) {
  Tensor t({2, 3, 4});
  float v = 0.0f;
  for (std::int64_t i = 0; i < 2; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      for (std::int64_t k = 0; k < 4; ++k) t.at(i, j, k) = v++;
  EXPECT_FLOAT_EQ(t.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 23.0f);
  EXPECT_THROW(t.at(2, 0, 0), InvalidArgument);
  EXPECT_THROW(t.at(0, 0), InvalidArgument);  // rank mismatch
  EXPECT_THROW(t.flat(24), InvalidArgument);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t.flat(i) = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_FLOAT_EQ(r.at(2, 3), 11.0f);
  EXPECT_THROW(t.reshaped({5, 5}), InvalidArgument);
}

TEST(TensorOps, ElementwiseAndShapesChecked) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  EXPECT_FLOAT_EQ(add(a, b).at(1, 1), 12.0f);
  EXPECT_FLOAT_EQ(sub(a, b).at(0, 0), -4.0f);
  EXPECT_FLOAT_EQ(mul(a, b).at(0, 1), 12.0f);
  EXPECT_FLOAT_EQ(scale(a, 2.0f).at(1, 0), 6.0f);
  Tensor c({3});
  EXPECT_THROW(add(a, c), InvalidArgument);
}

TEST(TensorOps, InplaceVariants) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{10, 20, 30});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(2), 33.0f);
  axpy_inplace(a, -1.0f, b);
  EXPECT_FLOAT_EQ(a.at(2), 3.0f);
}

TEST(TensorOps, AddBiasBroadcastsOverRows) {
  Tensor a({2, 3}, std::vector<float>{0, 0, 0, 1, 1, 1});
  Tensor bias({3}, std::vector<float>{1, 2, 3});
  const Tensor y = add_bias(a, bias);
  EXPECT_FLOAT_EQ(y.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 2.0f);
  EXPECT_THROW(add_bias(a, Tensor({2})), InvalidArgument);
}

TEST(TensorOps, ReluAndTanh) {
  Tensor a({4}, std::vector<float>{-1, 0, 2, -3});
  const Tensor r = relu(a);
  EXPECT_FLOAT_EQ(r.at(0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(2), 2.0f);
  const Tensor t = tanh_t(a);
  EXPECT_NEAR(t.at(2), std::tanh(2.0f), 1e-6);
}

TEST(TensorOps, Reductions) {
  Tensor a({4}, std::vector<float>{1, -2, 3, -4});
  EXPECT_FLOAT_EQ(sum(a), -2.0f);
  EXPECT_FLOAT_EQ(mean(a), -0.5f);
  EXPECT_FLOAT_EQ(min_value(a), -4.0f);
  EXPECT_FLOAT_EQ(max_value(a), 3.0f);
  EXPECT_FLOAT_EQ(max_abs(a), 4.0f);
  EXPECT_THROW(mean(Tensor({0})), InvalidArgument);
}

TEST(TensorOps, MatmulMatchesReference) {
  Rng rng(3);
  const Tensor a = random_tensor({7, 11}, rng);
  const Tensor b = random_tensor({11, 5}, rng);
  EXPECT_TRUE(allclose(matmul(a, b), matmul_ref(a, b), 1e-5f, 1e-5f));
}

TEST(TensorOps, MatmulShapeErrors) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(matmul(a, b), InvalidArgument);
  EXPECT_THROW(matmul(a.reshaped({6}), b), InvalidArgument);
}

class MatmulSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, DistributesOverAddition) {
  // Property: A (B + C) == A B + A C for all sizes.
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const Tensor c = random_tensor({k, n}, rng);
  const Tensor lhs = matmul(a, add(b, c));
  const Tensor rhs = add(matmul(a, b), matmul(a, c));
  EXPECT_TRUE(allclose(lhs, rhs, 1e-4f, 1e-4f))
      << "max diff " << max_abs_diff(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulSizes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{16, 16, 16},
                                           std::tuple{33, 17, 9},
                                           std::tuple{64, 128, 32},
                                           std::tuple{1, 257, 3}));

TEST(TensorOps, BatchedMatmulBroadcastAndFull) {
  Rng rng(5);
  const Tensor a = random_tensor({3, 4, 6}, rng);
  const Tensor w = random_tensor({6, 2}, rng);
  const Tensor y = batched_matmul(a, w);
  ASSERT_EQ(y.shape(), (Shape{3, 4, 2}));
  // Each batch must equal the 2-D product.
  for (std::int64_t b = 0; b < 3; ++b) {
    const Tensor ab = slice0(a, b, b + 1).reshaped({4, 6});
    const Tensor yb = slice0(y, b, b + 1).reshaped({4, 2});
    EXPECT_TRUE(allclose(yb, matmul(ab, w), 1e-5f, 1e-5f));
  }
  // Full rank-3 x rank-3.
  const Tensor b3 = random_tensor({3, 6, 2}, rng);
  const Tensor y3 = batched_matmul(a, b3);
  for (std::int64_t b = 0; b < 3; ++b) {
    const Tensor ab = slice0(a, b, b + 1).reshaped({4, 6});
    const Tensor bb = slice0(b3, b, b + 1).reshaped({6, 2});
    const Tensor yb = slice0(y3, b, b + 1).reshaped({4, 2});
    EXPECT_TRUE(allclose(yb, matmul(ab, bb), 1e-5f, 1e-5f));
  }
}

TEST(TensorOps, BatchedMatmulShapeErrors) {
  Tensor a({2, 3, 4}), bad({3, 4, 2});
  EXPECT_THROW(batched_matmul(a, bad), InvalidArgument);
  EXPECT_THROW(batched_matmul(a.reshaped({6, 4}), bad), InvalidArgument);
}

TEST(TensorOps, TransposeInvolution) {
  Rng rng(6);
  const Tensor a = random_tensor({5, 9}, rng);
  EXPECT_TRUE(allclose(transpose(transpose(a)), a));
  EXPECT_FLOAT_EQ(transpose(a).at(3, 4), a.at(4, 3));
}

TEST(TensorOps, TransposeLast2) {
  Rng rng(7);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor t = transpose_last2(a);
  ASSERT_EQ(t.shape(), (Shape{2, 4, 3}));
  EXPECT_FLOAT_EQ(t.at(1, 2, 1), a.at(1, 1, 2));
  EXPECT_TRUE(allclose(transpose_last2(t), a));
}

TEST(TensorOps, SliceAndConcatRoundTrip) {
  Rng rng(8);
  const Tensor a = random_tensor({6, 3}, rng);
  const Tensor top = slice0(a, 0, 2);
  const Tensor bottom = slice0(a, 2, 6);
  EXPECT_TRUE(allclose(concat0(top, bottom), a));
  EXPECT_THROW(slice0(a, 4, 2), InvalidArgument);
  EXPECT_THROW(slice0(a, 0, 7), InvalidArgument);
  EXPECT_THROW(concat0(a, Tensor({2, 4})), InvalidArgument);
}

TEST(TensorOps, NormsAndAllclose) {
  Tensor a({3}, std::vector<float>{3, 0, 4});
  EXPECT_FLOAT_EQ(l2_norm(a), 5.0f);
  Tensor b = a;
  b.at(1) = 1e-7f;
  EXPECT_TRUE(allclose(a, b, 1e-5f, 1e-6f));
  b.at(1) = 0.5f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_FALSE(allclose(a, Tensor({4})));
}

}  // namespace
}  // namespace tvbf
