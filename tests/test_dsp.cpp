// Unit and property tests for the DSP substrate: FFT, Hilbert/envelope,
// IQ demodulation, log compression, interpolation and windows.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/hilbert.hpp"
#include "dsp/interpolate.hpp"
#include "dsp/window.hpp"

namespace tvbf::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> x(3);
  EXPECT_THROW(fft_inplace(x), tvbf::InvalidArgument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto spec = fft(x);
  for (const auto& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<std::complex<double>> x(n);
  const std::size_t k0 = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double ph = 2.0 * M_PI * static_cast<double>(k0 * t) / n;
    x[t] = {std::cos(ph), std::sin(ph)};
  }
  const auto spec = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0)
      EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

class FftSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSize, MatchesReferenceDft) {
  tvbf::Rng rng(GetParam());
  std::vector<std::complex<double>> x(GetParam());
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto fast = fft(x);
  const auto ref = dft_reference(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(fast[i] - ref[i]), 0.0, 1e-8 * x.size());
}

TEST_P(FftSize, RoundTripIsIdentity) {
  tvbf::Rng rng(GetParam() + 1);
  std::vector<std::complex<double>> x(GetParam());
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto back = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-10 * x.size());
}

TEST_P(FftSize, ParsevalHolds) {
  tvbf::Rng rng(GetParam() + 2);
  std::vector<std::complex<double>> x(GetParam());
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto spec = fft(x);
  double time_e = 0.0, freq_e = 0.0;
  for (const auto& v : x) time_e += std::norm(v);
  for (const auto& v : spec) freq_e += std::norm(v);
  EXPECT_NEAR(freq_e / static_cast<double>(x.size()), time_e,
              1e-9 * time_e * x.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSize,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 512));

TEST(Hilbert, RealPartReproducesInput) {
  tvbf::Rng rng(12);
  std::vector<float> x(300);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  const auto a = analytic_signal(x);
  ASSERT_EQ(a.size(), x.size());
  // Zero-padding to 512 perturbs the tail slightly; interior must match.
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(a[i].real(), x[i], 2e-2) << "at " << i;
}

TEST(Hilbert, EnvelopeOfToneIsConstant) {
  // envelope(cos(wt)) == 1 away from the edges.
  const std::size_t n = 512;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(std::cos(2.0 * M_PI * 40.0 * i / n));
  const auto env = envelope(x);
  for (std::size_t i = n / 8; i < 7 * n / 8; ++i)
    EXPECT_NEAR(env[i], 1.0f, 5e-3) << "at " << i;
}

TEST(Hilbert, EnvelopeRecoversGaussianPulse) {
  // envelope(gauss(t) * cos(w t)) ~= gauss(t).
  const std::size_t n = 1024;
  std::vector<float> x(n);
  const double c = n / 2.0, sigma = 40.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double g = std::exp(-(i - c) * (i - c) / (2 * sigma * sigma));
    x[i] = static_cast<float>(g * std::cos(2.0 * M_PI * 0.2 * i));
  }
  const auto env = envelope(x);
  for (std::size_t i = 100; i + 100 < n; ++i) {
    const double g = std::exp(-(i - c) * (i - c) / (2 * sigma * sigma));
    EXPECT_NEAR(env[i], g, 0.02);
  }
}

TEST(Hilbert, EmptyInputThrows) {
  EXPECT_THROW(analytic_signal({}), tvbf::InvalidArgument);
}

/// Exact analytic signal on the sequence's own n-point spectrum via the
/// O(n^2) reference DFT (inverse computed with the conjugation identity).
std::vector<std::complex<double>> analytic_reference(
    const std::vector<float>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = {static_cast<double>(x[i]), 0.0};
  ref = dft_reference(ref);
  for (std::size_t k = 1; k < (n + 1) / 2; ++k) ref[k] *= 2.0;
  for (std::size_t k = n / 2 + 1; k < n; ++k) ref[k] = {0.0, 0.0};
  for (auto& v : ref) v = std::conj(v);
  ref = dft_reference(ref);
  for (auto& v : ref) v = std::conj(v) / static_cast<double>(n);
  return ref;
}

TEST(Hilbert, NonPow2TailMatchesExactDftReference) {
  // Documents the zero-padding artifact for non-power-of-two lengths: the
  // padded fast path rings at the edges relative to the exact n-point
  // analytic signal. The bound below is the contract — a full-scale
  // un-windowed tone (the worst case) stays within ~0.4 of full scale on
  // the outermost tail samples while the interior is essentially exact.
  const std::size_t n = 300;  // pads to 512
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(std::sin(2.0 * M_PI * 37.0 * i / n) +
                              0.3 * std::cos(2.0 * M_PI * 11.0 * i / n));
  const auto ref = analytic_reference(x);
  const auto fast = analytic_signal(x);
  ASSERT_EQ(fast.size(), n);
  double tail_err = 0.0;
  for (std::size_t i = n - 32; i < n; ++i)
    tail_err = std::max(tail_err, std::abs(fast[i] - ref[i]));
  EXPECT_LT(tail_err, 0.5) << "tail ringing vs exact analytic signal";
  double mid_err = 0.0;
  for (std::size_t i = n / 4; i < 3 * n / 4; ++i)
    mid_err = std::max(mid_err, std::abs(fast[i] - ref[i]));
  EXPECT_LT(mid_err, 0.02) << "interior must be essentially exact";
}

TEST(Hilbert, NonPow2WindowedPulseIsNearlyExact) {
  // Realistic RF data is pulse-shaped (windowed to zero at the edges); for
  // such signals the padded fast path matches the exact analytic signal to
  // well under 0.1% everywhere, tail included.
  const std::size_t n = 300;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double g =
        std::exp(-0.5 * std::pow((static_cast<double>(i) - 160.0) / 40.0, 2));
    x[i] = static_cast<float>(g * std::cos(2.0 * M_PI * 0.2 * i));
  }
  const auto ref = analytic_reference(x);
  const auto fast = analytic_signal(x);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(fast[i] - ref[i]));
  EXPECT_LT(err, 1e-3);
}

TEST(IqDemod, ShiftsToneToBaseband) {
  // A tone at fc demodulates to a (nearly) constant complex value.
  const double fs = 20e6, fc = 5e6;
  const std::size_t n = 1024;
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(std::cos(2.0 * M_PI * fc * i / fs));
  const auto iq = iq_demodulate(x, fc, fs);
  for (std::size_t i = 64; i + 64 < n; ++i) {
    EXPECT_NEAR(std::abs(iq[i]), 1.0, 1e-2);
    EXPECT_NEAR(iq[i].real(), 1.0, 2e-2);  // phase ~ 0
  }
}

TEST(IqDemod, ValidatesFrequencies) {
  std::vector<float> x(16, 1.0f);
  EXPECT_THROW(iq_demodulate(x, -1.0, 10.0), tvbf::InvalidArgument);
  EXPECT_THROW(iq_demodulate(x, 6.0, 10.0), tvbf::InvalidArgument);
}

TEST(EnvelopeColumns, PerColumnMatchesVectorEnvelope) {
  const std::int64_t nz = 128, nx = 3;
  Tensor rf({nz, nx});
  tvbf::Rng rng(13);
  for (auto& v : rf.data()) v = static_cast<float>(rng.normal());
  const Tensor env = envelope_columns(rf);
  for (std::int64_t x = 0; x < nx; ++x) {
    std::vector<float> col(static_cast<std::size_t>(nz));
    for (std::int64_t z = 0; z < nz; ++z)
      col[static_cast<std::size_t>(z)] = rf.at(z, x);
    const auto ref = envelope(col);
    for (std::int64_t z = 0; z < nz; ++z)
      EXPECT_NEAR(env.at(z, x), ref[static_cast<std::size_t>(z)], 1e-5);
  }
}

TEST(EnvelopeIq, Magnitude) {
  Tensor iq({1, 2, 2}, std::vector<float>{3, 4, 0, -2});
  const Tensor env = envelope_iq(iq);
  EXPECT_FLOAT_EQ(env.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(env.at(0, 1), 2.0f);
  EXPECT_THROW(envelope_iq(Tensor({2, 2})), tvbf::InvalidArgument);
}

TEST(LogCompress, NormalizesAndClips) {
  Tensor env({1, 3}, std::vector<float>{1.0f, 0.1f, 1e-9f});
  const Tensor db = log_compress(env, 40.0);
  EXPECT_FLOAT_EQ(db.at(0, 0), 0.0f);
  EXPECT_NEAR(db.at(0, 1), -20.0f, 1e-4);
  EXPECT_FLOAT_EQ(db.at(0, 2), -40.0f);  // clipped at the dynamic range
}

TEST(LogCompress, AllZeroEnvelopeYieldsFloorImage) {
  // Degenerate but valid input (e.g. a fully zero acquisition) must produce
  // the floor image, not crash the pipeline.
  const Tensor db = log_compress(Tensor({2, 2}), 60.0);
  for (std::int64_t i = 0; i < db.size(); ++i)
    EXPECT_FLOAT_EQ(db.raw()[i], -60.0f);
}

TEST(LogCompress, RejectsInvalidInput) {
  Tensor neg({1, 1}, std::vector<float>{-1.0f});
  EXPECT_THROW(log_compress(neg, 60.0), tvbf::InvalidArgument);
  Tensor ok({1, 1}, std::vector<float>{1.0f});
  EXPECT_THROW(log_compress(ok, -5.0), tvbf::InvalidArgument);
}

TEST(Interpolate, LinearIsExactOnLines) {
  std::vector<float> x{0.0f, 2.0f, 4.0f, 6.0f};
  EXPECT_FLOAT_EQ(interp_linear(x, 1.5), 3.0f);
  EXPECT_FLOAT_EQ(interp_linear(x, 0.25), 0.5f);
  EXPECT_FLOAT_EQ(interp_linear(x, 3.0), 6.0f);
}

TEST(Interpolate, OutOfRangeReturnsZero) {
  std::vector<float> x{1.0f, 2.0f};
  EXPECT_FLOAT_EQ(interp_linear(x, -0.1), 0.0f);
  EXPECT_FLOAT_EQ(interp_linear(x, 1.1), 0.0f);
  EXPECT_FLOAT_EQ(interp_cubic(x, 5.0), 0.0f);
  EXPECT_FLOAT_EQ(interp_linear({}, 0.0), 0.0f);
}

TEST(Interpolate, CubicReproducesQuadratics) {
  // Catmull-Rom is exact for polynomials up to degree 3 on interior spans.
  std::vector<float> x(10);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(0.5 * i * i - i + 2.0);
  for (double t = 2.0; t <= 7.0; t += 0.13) {
    const double expect = 0.5 * t * t - t + 2.0;
    EXPECT_NEAR(interp_cubic(x, t), expect, 1e-4) << "t=" << t;
  }
}

TEST(Interpolate, CubicFallsBackToLinearAtEdges) {
  std::vector<float> x{0.0f, 1.0f, 2.0f, 3.0f};
  EXPECT_FLOAT_EQ(interp_cubic(x, 0.5), interp_linear(x, 0.5));
}

class WindowCase : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowCase, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 33);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], 0.0f);
    EXPECT_LE(w[i], 1.0f + 1e-6f);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6) << "at " << i;
  }
  // Center of a symmetric window is its maximum.
  EXPECT_NEAR(w[16], *std::max_element(w.begin(), w.end()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WindowCase,
                         ::testing::Values(WindowKind::kBoxcar,
                                           WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kTukey25));

TEST(Window, KnownValues) {
  EXPECT_FLOAT_EQ(window_at(WindowKind::kBoxcar, 0.5), 1.0f);
  EXPECT_NEAR(window_at(WindowKind::kHann, 0.5), 1.0, 1e-6);
  EXPECT_NEAR(window_at(WindowKind::kHann, 0.0), 0.0, 1e-6);
  EXPECT_NEAR(window_at(WindowKind::kHamming, 0.0), 0.08, 1e-6);
  EXPECT_FLOAT_EQ(window_at(WindowKind::kHann, -0.1), 0.0f);
  EXPECT_FLOAT_EQ(window_at(WindowKind::kHann, 1.1), 0.0f);
}

TEST(Window, SingleAndZeroLength) {
  EXPECT_EQ(make_window(WindowKind::kHann, 1), std::vector<float>{1.0f});
  EXPECT_THROW(make_window(WindowKind::kHann, 0), tvbf::InvalidArgument);
}

}  // namespace
}  // namespace tvbf::dsp
