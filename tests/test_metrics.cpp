// Tests for the image-quality metrics on synthetic images with known
// ground-truth values: CR, CNR, GCNR, FWHM, profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "metrics/image_quality.hpp"
#include "metrics/resolution.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::metrics {
namespace {

us::ImagingGrid make_grid(std::int64_t nz = 100, std::int64_t nx = 100) {
  us::ImagingGrid g;
  g.nz = nz;
  g.nx = nx;
  g.x0 = -10e-3;
  g.z0 = 10e-3;
  g.dx = 20e-3 / static_cast<double>(nx - 1);
  g.dz = 20e-3 / static_cast<double>(nz - 1);
  return g;
}

/// Envelope with a dark disc (value `inside`) in a bright field (`outside`).
Tensor cyst_image(const us::ImagingGrid& g, const us::Cyst& c, float inside,
                  float outside, Rng* rng = nullptr, float jitter = 0.0f) {
  Tensor env({g.nz, g.nx});
  for (std::int64_t iz = 0; iz < g.nz; ++iz)
    for (std::int64_t ix = 0; ix < g.nx; ++ix) {
      const double dx = g.x_at(ix) - c.x;
      const double dz = g.z_at(iz) - c.z;
      const bool in = dx * dx + dz * dz < c.radius * c.radius;
      float v = in ? inside : outside;
      if (rng != nullptr && jitter > 0.0f)
        v *= static_cast<float>(
            std::max(0.05, 1.0 + jitter * rng->normal()));
      env.at(iz, ix) = v;
    }
  return env;
}

TEST(RoiSampling, DiscAndAnnulusCountsAreSane) {
  const auto g = make_grid();
  Tensor img({g.nz, g.nx}, 1.0f);
  const auto disc = disc_samples(img, g, 0.0, 20e-3, 3e-3);
  const auto ring = annulus_samples(img, g, 0.0, 20e-3, 3e-3, 5e-3);
  // Areas: pi*9 vs pi*(25-9) mm^2 => ring / disc ~ 16/9.
  EXPECT_GT(disc.size(), 50u);
  EXPECT_NEAR(static_cast<double>(ring.size()) / disc.size(), 16.0 / 9.0, 0.3);
  EXPECT_THROW(disc_samples(img, g, 0.0, 20e-3, -1e-3), InvalidArgument);
  EXPECT_THROW(annulus_samples(img, g, 0.0, 20e-3, 5e-3, 3e-3),
               InvalidArgument);
}

TEST(RoiStats, MeanAndStddev) {
  const auto g = make_grid();
  Tensor img({g.nz, g.nx}, 2.0f);
  const RoiStats s = disc_stats(img, g, 0.0, 20e-3, 4e-3);
  EXPECT_GT(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Contrast, CrMatchesConstructedRatio) {
  // mu_out / mu_in = 10 -> CR = 20 dB exactly.
  const auto g = make_grid();
  const us::Cyst c{0.0, 20e-3, 4e-3};
  const Tensor env = cyst_image(g, c, 0.1f, 1.0f);
  const ContrastMetrics m = contrast_metrics(env, g, c);
  EXPECT_NEAR(m.cr_db, 20.0, 0.2);
}

TEST(Contrast, GcnrOneForSeparableZeroForIdentical) {
  const auto g = make_grid();
  const us::Cyst c{0.0, 20e-3, 4e-3};
  // Fully separable distributions -> GCNR ~ 1.
  const Tensor sep = cyst_image(g, c, 0.01f, 1.0f);
  EXPECT_GT(contrast_metrics(sep, g, c).gcnr, 0.95);
  // Identical distributions -> GCNR ~ 0 (no cyst at all).
  Rng rng(5);
  const Tensor flat = cyst_image(g, c, 1.0f, 1.0f, &rng, 0.3f);
  EXPECT_LT(contrast_metrics(flat, g, c).gcnr, 0.25);
}

TEST(Contrast, CnrGrowsWithSeparation) {
  const auto g = make_grid();
  const us::Cyst c{0.0, 20e-3, 4e-3};
  Rng rng1(6), rng2(7);
  const Tensor weak = cyst_image(g, c, 0.7f, 1.0f, &rng1, 0.2f);
  const Tensor strong = cyst_image(g, c, 0.1f, 1.0f, &rng2, 0.2f);
  EXPECT_GT(contrast_metrics(strong, g, c).cnr,
            contrast_metrics(weak, g, c).cnr);
}

TEST(Contrast, GcnrSampleHelperBounds) {
  EXPECT_THROW(gcnr_from_samples({}, {1.0f}), InvalidArgument);
  EXPECT_THROW(gcnr_from_samples({1.0f}, {1.0f}, 1), InvalidArgument);
  const double g = gcnr_from_samples({0.0f, 0.1f}, {5.0f, 5.1f});
  EXPECT_NEAR(g, 1.0, 1e-9);
  EXPECT_NEAR(gcnr_from_samples({1.0f, 1.0f}, {1.0f, 1.0f}), 0.0, 1e-9);
}

TEST(Contrast, RoiOutsideGridThrows) {
  const auto g = make_grid();
  const Tensor env({g.nz, g.nx}, 1.0f);
  const us::Cyst far{0.5, 0.5, 1e-3};  // far outside the grid
  EXPECT_THROW(contrast_metrics(env, g, far), InvalidArgument);
}

TEST(Contrast, MeanAcrossCysts) {
  const auto g = make_grid();
  const us::Cyst c1{-4e-3, 16e-3, 2.5e-3};
  const us::Cyst c2{4e-3, 24e-3, 2.5e-3};
  Tensor env({g.nz, g.nx}, 1.0f);
  // Paint both cysts dark.
  for (std::int64_t iz = 0; iz < g.nz; ++iz)
    for (std::int64_t ix = 0; ix < g.nx; ++ix)
      for (const auto& c : {c1, c2}) {
        const double dx = g.x_at(ix) - c.x, dz = g.z_at(iz) - c.z;
        if (dx * dx + dz * dz < c.radius * c.radius) env.at(iz, ix) = 0.1f;
      }
  const ContrastMetrics m = mean_contrast(env, g, {c1, c2});
  EXPECT_NEAR(m.cr_db, 20.0, 0.5);
  EXPECT_THROW(mean_contrast(env, g, {}), InvalidArgument);
}

TEST(Resolution, FwhmOfGaussianBlobIsExact) {
  // A separable Gaussian with sigma_z, sigma_x has FWHM 2.355 sigma.
  const auto g = make_grid(200, 200);
  const double cz = 20e-3, cx = 0.0;
  const double sz = 0.5e-3, sx = 1.0e-3;
  Tensor env({g.nz, g.nx});
  for (std::int64_t iz = 0; iz < g.nz; ++iz)
    for (std::int64_t ix = 0; ix < g.nx; ++ix) {
      const double dz = g.z_at(iz) - cz, dx = g.x_at(ix) - cx;
      env.at(iz, ix) = static_cast<float>(
          std::exp(-dz * dz / (2 * sz * sz) - dx * dx / (2 * sx * sx)));
    }
  const PsfWidths w = psf_widths(env, g, cx, cz);
  ASSERT_TRUE(w.valid);
  EXPECT_NEAR(w.axial_mm, 2.3548 * sz * 1e3, 0.05);
  EXPECT_NEAR(w.lateral_mm, 2.3548 * sx * 1e3, 0.05);
}

TEST(Resolution, InvalidWhenNoPeak) {
  const auto g = make_grid();
  const Tensor env({g.nz, g.nx});  // all zeros
  const PsfWidths w = psf_widths(env, g, 0.0, 20e-3);
  EXPECT_FALSE(w.valid);
}

TEST(Resolution, InvalidWhenCrossingsMissing) {
  // A plateau image never crosses half maximum inside the frame.
  const auto g = make_grid();
  const Tensor env({g.nz, g.nx}, 1.0f);
  const PsfWidths w = psf_widths(env, g, 0.0, 20e-3);
  EXPECT_FALSE(w.valid);
}

TEST(Resolution, MeanSkipsInvalidPoints) {
  const auto g = make_grid(200, 200);
  Tensor env({g.nz, g.nx});
  // One measurable blob at (0, 20mm).
  for (std::int64_t iz = 0; iz < g.nz; ++iz)
    for (std::int64_t ix = 0; ix < g.nx; ++ix) {
      const double dz = g.z_at(iz) - 20e-3, dx = g.x_at(ix);
      env.at(iz, ix) = static_cast<float>(
          std::exp(-(dz * dz + dx * dx) / (2 * 0.6e-3 * 0.6e-3)));
    }
  const std::vector<us::Scatterer> pts{{0.0, 20e-3, 1.0},
                                       {8e-3, 28e-3, 1.0}};  // second: no blob
  const PsfWidths w = mean_psf_widths(env, g, pts);
  EXPECT_TRUE(w.valid);
  EXPECT_NEAR(w.axial_mm, 2.3548 * 0.6, 0.1);
  // All-invalid input throws.
  const Tensor zeros({g.nz, g.nx});
  EXPECT_THROW(mean_psf_widths(zeros, g, pts), InvalidArgument);
  EXPECT_THROW(mean_psf_widths(env, g, {}), InvalidArgument);
}

TEST(Profiles, LateralProfileNormalizedPeakOne) {
  const auto g = make_grid();
  Rng rng(8);
  Tensor env({g.nz, g.nx});
  for (auto& v : env.data())
    v = static_cast<float>(std::fabs(rng.normal()) + 0.01);
  const auto prof = lateral_profile(env, g, 20e-3);
  ASSERT_EQ(prof.size(), static_cast<std::size_t>(g.nx));
  float peak = 0.0f;
  for (float v : prof) peak = std::max(peak, v);
  EXPECT_FLOAT_EQ(peak, 1.0f);
}

TEST(Profiles, DbProfileReferencesImagePeak) {
  const auto g = make_grid();
  Tensor env({g.nz, g.nx}, 0.1f);
  env.at(g.row_of(20e-3), 50) = 1.0f;  // global peak on the profile row
  const auto prof = lateral_profile_db(env, g, 20e-3, 60.0);
  EXPECT_NEAR(prof[50], 0.0, 1e-4);
  EXPECT_NEAR(prof[10], -20.0, 0.1);
}

TEST(Bmode, EnvelopeAndCompression) {
  Tensor iq({1, 2, 2}, std::vector<float>{3, 4, 0.5f, 0});
  const Tensor env = envelope_of_iq(iq);
  EXPECT_FLOAT_EQ(env.at(0, 0), 5.0f);
  const Tensor db = bmode_db(env, 40.0);
  EXPECT_FLOAT_EQ(db.at(0, 0), 0.0f);
  EXPECT_NEAR(db.at(0, 1), -20.0, 1e-4);
}

}  // namespace
}  // namespace tvbf::metrics
