// Tests for the optimizers and the polynomial-decay schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/modules.hpp"
#include "nn/optimizer.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {
namespace {

TEST(PolynomialDecay, EndpointsAndMonotonicity) {
  const PolynomialDecay s(1e-4, 1e-6, 1000, 1.0, /*cyclic=*/false);
  EXPECT_DOUBLE_EQ(s.at(0), 1e-4);
  EXPECT_NEAR(s.at(1000), 1e-6, 1e-12);
  EXPECT_NEAR(s.at(5000), 1e-6, 1e-12);  // clamps after the horizon
  for (int t = 1; t <= 1000; ++t) EXPECT_LE(s.at(t), s.at(t - 1));
}

TEST(PolynomialDecay, PowerShapesCurve) {
  const PolynomialDecay lin(1e-2, 1e-4, 100, 1.0, false);
  const PolynomialDecay quad(1e-2, 1e-4, 100, 2.0, false);
  // Quadratic decay drops faster early on.
  EXPECT_LT(quad.at(50), lin.at(50));
}

TEST(PolynomialDecay, CyclicRestartsExtendHorizon) {
  const PolynomialDecay s(1e-4, 1e-6, 100, 1.0, /*cyclic=*/true);
  // After the first horizon the TF cycle behaviour stretches the decay, so
  // the rate climbs back above the floor.
  EXPECT_GT(s.at(150), s.at(100) - 1e-15);
  EXPECT_GT(s.at(150), 1e-6);
  EXPECT_THROW(s.at(-1), InvalidArgument);
}

TEST(PolynomialDecay, Validation) {
  EXPECT_THROW(PolynomialDecay(0.0, 1e-6, 10), InvalidArgument);
  EXPECT_THROW(PolynomialDecay(1e-6, 1e-4, 10), InvalidArgument);
  EXPECT_THROW(PolynomialDecay(1e-4, 1e-6, 0), InvalidArgument);
  EXPECT_THROW(PolynomialDecay(1e-4, 1e-6, 10, -1.0), InvalidArgument);
}

TEST(Optimizer, RejectsNonTrainableAndEmpty) {
  EXPECT_THROW(Sgd(std::vector<Variable>{}), InvalidArgument);
  Variable c = constant(Tensor({2}));
  EXPECT_THROW(Sgd({c}), InvalidArgument);
}

/// Minimizes ||x - target||^2; any sane optimizer must converge.
template <typename Opt>
double run_quadratic(Opt& opt, Variable& x, const Tensor& target, int steps,
                     double lr) {
  double loss_val = 0.0;
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    Variable loss = mse_loss(x, target);
    loss.backward();
    opt.step(lr);
    loss_val = loss.value().flat(0);
  }
  return loss_val;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Rng rng(1);
  Tensor target({8});
  for (auto& v : target.data()) v = static_cast<float>(rng.normal());
  Variable x = parameter(Tensor({8}));
  Sgd sgd({x});
  const double final_loss = run_quadratic(sgd, x, target, 200, 0.2);
  EXPECT_LT(final_loss, 1e-6);
  EXPECT_EQ(sgd.step_count(), 200);
}

TEST(Adam, ConvergesOnQuadratic) {
  Rng rng(2);
  Tensor target({8});
  for (auto& v : target.data()) v = static_cast<float>(rng.normal());
  Variable x = parameter(Tensor({8}));
  Adam adam({x});
  const double final_loss = run_quadratic(adam, x, target, 500, 0.05);
  EXPECT_LT(final_loss, 1e-5);
}

TEST(Adam, HandlesIllConditionedScales) {
  // Loss = (1e3*a - 1)^2 + (0.1*b - 1)^2: the two gradients differ by four
  // orders of magnitude; Adam's per-parameter scaling handles both (plain
  // SGD with any single rate either diverges on a or stalls on b).
  Variable a = parameter(Tensor({1}));
  Variable b = parameter(Tensor({1}));
  Adam adam({a, b});
  for (int i = 0; i < 3000; ++i) {
    adam.zero_grad();
    Variable ta = scale(a, 1000.0f);
    Variable tb = scale(b, 0.1f);
    Variable loss = add(mse_loss(ta, Tensor({1}, 1.0f)),
                        mse_loss(tb, Tensor({1}, 1.0f)));
    Variable total = mean_all(loss);
    total.backward();
    adam.step(0.05);
  }
  EXPECT_NEAR(a.value().flat(0) * 1000.0f, 1.0f, 0.05f);
  EXPECT_NEAR(b.value().flat(0) * 0.1f, 1.0f, 0.05f);
}

TEST(Adam, ValidatesHyperparameters) {
  Variable x = parameter(Tensor({1}));
  EXPECT_THROW(Adam({x}, 1.5), InvalidArgument);
  EXPECT_THROW(Adam({x}, 0.9, -0.1), InvalidArgument);
  EXPECT_THROW(Adam({x}, 0.9, 0.999, 0.0), InvalidArgument);
  Adam adam({x});
  EXPECT_THROW(adam.step(0.0), InvalidArgument);
}

class DecaySteps : public ::testing::TestWithParam<int> {};

TEST_P(DecaySteps, LossDecreasesUnderScheduledAdam) {
  // Property: training a small dense regressor with the paper's schedule
  // reduces the loss for any reasonable horizon.
  Rng rng(GetParam());
  const Dense net(4, 1, rng);
  const Tensor x = [&] {
    Tensor t({16, 4});
    for (auto& v : t.data()) v = static_cast<float>(rng.normal());
    return t;
  }();
  Tensor y({16, 1});
  for (std::int64_t i = 0; i < 16; ++i)
    y.at(i, 0) = x.at(i, 0) - 2.0f * x.at(i, 2);
  Adam adam(net.parameters());
  const PolynomialDecay sched(3e-2, 1e-4, GetParam(), 1.0, true);
  double first = 0.0, last = 0.0;
  for (int t = 0; t < GetParam(); ++t) {
    adam.zero_grad();
    Variable loss = mse_loss(net.forward(constant(x)), y);
    loss.backward();
    adam.step(sched.at(t));
    if (t == 0) first = loss.value().flat(0);
    last = loss.value().flat(0);
  }
  EXPECT_LT(last, first * 0.6) << "no progress over " << GetParam() << " steps";
}

INSTANTIATE_TEST_SUITE_P(Horizons, DecaySteps,
                         ::testing::Values(100, 200, 400));

}  // namespace
}  // namespace tvbf::nn
