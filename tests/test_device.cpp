// Device-layer suite: the CpuDevice backend must be bit-identical to the
// direct kernel calls the hot paths used before the command-list refactor;
// AccelDevice must execute identically while serving cycle-model latency
// estimates whose per-frame cost is monotone in batch size — the property
// the serving layer's cost-aware quorum sizing rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "accel/accel_device.hpp"
#include "device/cpu_device.hpp"
#include "device/device.hpp"
#include "kernels/conv.hpp"
#include "kernels/gemm.hpp"
#include "models/neural_beamformer.hpp"
#include "models/tiny_vbf.hpp"
#include "serve/inference_batcher.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::device {
namespace {

using accel::AccelDevice;

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

// ---- CpuDevice bit-identity ------------------------------------------------

TEST(CpuDevice, GemmBitIdenticalToDirectKernel) {
  Rng rng(1);
  const std::int64_t m = 33, k = 65, n = 17;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor via_device({m, n}), direct({m, n});
  cpu().submit(
      CommandEncoder().gemm(a.raw(), b.raw(), via_device.raw(), m, k, n)
          .finish());
  kernels::gemm(a.raw(), b.raw(), direct.raw(), m, k, n);
  EXPECT_EQ(max_abs_diff(via_device, direct), 0.0f);
}

TEST(CpuDevice, BatchedGemmBitIdenticalToPerBatchKernel) {
  Rng rng(2);
  const std::int64_t batch = 5, m = 9, k = 21, n = 13;
  const Tensor a = random_tensor({batch, m, k}, rng);
  const Tensor b = random_tensor({batch, k, n}, rng);
  Tensor via_device({batch, m, n}), direct({batch, m, n});
  cpu().submit(CommandEncoder()
                   .batched_gemm(a.raw(), b.raw(), via_device.raw(), batch, m,
                                 k, n)
                   .finish());
  for (std::int64_t i = 0; i < batch; ++i)
    kernels::gemm_rows(a.raw() + i * m * k, b.raw() + i * k * n,
                       direct.raw() + i * m * n, m, k, n, 0, m);
  EXPECT_EQ(max_abs_diff(via_device, direct), 0.0f);
}

TEST(CpuDevice, BatchedGemmNtBitIdenticalToPerBatchKernel) {
  Rng rng(3);
  const std::int64_t batch = 4, m = 7, k = 15, n = 11;
  const Tensor a = random_tensor({batch, m, k}, rng);
  const Tensor b = random_tensor({batch, n, k}, rng);  // (n, k) rows: B^T
  Tensor via_device({batch, m, n}), direct({batch, m, n});
  cpu().submit(CommandEncoder()
                   .batched_gemm(a.raw(), b.raw(), via_device.raw(), batch, m,
                                 k, n, /*transpose_b=*/true)
                   .finish());
  for (std::int64_t i = 0; i < batch; ++i)
    kernels::gemm_nt_rows(a.raw() + i * m * k, b.raw() + i * n * k,
                          direct.raw() + i * m * n, m, k, n, 0, m);
  EXPECT_EQ(max_abs_diff(via_device, direct), 0.0f);
}

TEST(CpuDevice, GemmTnAccumulatesBitIdentically) {
  Rng rng(4);
  const std::int64_t m = 19, k = 12, n = 23;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({m, n}, rng);
  Tensor via_device = random_tensor({k, n}, rng);  // C += A^T.B
  Tensor direct = via_device;
  cpu().submit(
      CommandEncoder().gemm_tn(a.raw(), b.raw(), via_device.raw(), m, k, n)
          .finish());
  kernels::gemm_tn_accumulate(a.raw(), b.raw(), direct.raw(), m, k, n);
  EXPECT_EQ(max_abs_diff(via_device, direct), 0.0f);
}

TEST(CpuDevice, ConvCommandsBitIdenticalToDirectKernels) {
  Rng rng(5);
  const kernels::Conv2dShape s{11, 9, 3, 3, 5, 4};
  const Tensor in = random_tensor({s.H, s.W, s.Ci}, rng);
  const Tensor kernel = random_tensor({s.kh, s.kw, s.Ci, s.Co}, rng);
  const Tensor dy = random_tensor({s.H, s.W, s.Co}, rng);

  Tensor out_dev({s.H, s.W, s.Co}), out_direct({s.H, s.W, s.Co});
  Tensor gb_dev({s.Co}), gb_direct({s.Co});
  Tensor gk_dev({s.kh, s.kw, s.Ci, s.Co}), gk_direct({s.kh, s.kw, s.Ci, s.Co});
  Tensor gx_dev({s.H, s.W, s.Ci}), gx_direct({s.H, s.W, s.Ci});

  cpu().submit(
      CommandEncoder()
          .encode(Conv2dForwardCmd{in.raw(), kernel.raw(), out_dev.raw(), s})
          .encode(Conv2dBackwardBiasCmd{dy.raw(), gb_dev.raw(), s})
          .encode(Conv2dBackwardKernelCmd{in.raw(), dy.raw(), gk_dev.raw(), s})
          .encode(
              Conv2dBackwardInputCmd{kernel.raw(), dy.raw(), gx_dev.raw(), s})
          .finish());
  kernels::conv2d_same_forward(in.raw(), kernel.raw(), out_direct.raw(), s);
  kernels::conv2d_same_backward_bias(dy.raw(), gb_direct.raw(), s);
  kernels::conv2d_same_backward_kernel(in.raw(), dy.raw(), gk_direct.raw(), s);
  kernels::conv2d_same_backward_input(kernel.raw(), dy.raw(), gx_direct.raw(),
                                      s);
  EXPECT_EQ(max_abs_diff(out_dev, out_direct), 0.0f);
  EXPECT_EQ(max_abs_diff(gb_dev, gb_direct), 0.0f);
  EXPECT_EQ(max_abs_diff(gk_dev, gk_direct), 0.0f);
  EXPECT_EQ(max_abs_diff(gx_dev, gx_direct), 0.0f);
}

/// Serial reference for one gather entry, re-deriving the plan encoding
/// (kOutOfRange -> 0, idx >= 0 -> interior interp, biased -> linear edge).
float reference_gather(const float* line, std::int32_t idx, float frac,
                       dsp::Interp interp) {
  if (idx == TofGatherCmd::kOutOfRange) return 0.0f;
  if (idx >= 0 && interp == dsp::Interp::kCubic) {
    const double u = frac;
    const double p0 = line[idx - 1], p1 = line[idx], p2 = line[idx + 1],
                 p3 = line[idx + 2];
    const double a = -0.5 * p0 + 1.5 * p1 - 1.5 * p2 + 0.5 * p3;
    const double b = p0 - 2.5 * p1 + 2.0 * p2 - 0.5 * p3;
    const double c = -0.5 * p0 + 0.5 * p2;
    return static_cast<float>(((a * u + b) * u + c) * u + p1);
  }
  const std::int32_t base =
      idx >= 0 ? idx : TofGatherCmd::kLinearBias - idx;
  const double f = frac;
  return static_cast<float>((1.0 - f) * line[base] + f * line[base + 1]);
}

class TofGatherTest : public ::testing::TestWithParam<dsp::Interp> {};

TEST_P(TofGatherTest, MatchesSerialReferenceWithAllEncodings) {
  const dsp::Interp interp = GetParam();
  Rng rng(6);
  const std::int64_t nz = 7, nx = 5, nch = 3, nsamples = 64;
  const Tensor lines_re = random_tensor({nch, nsamples}, rng);
  const Tensor lines_im = random_tensor({nch, nsamples}, rng);
  const std::int64_t entries = nz * nx * nch;
  std::vector<std::int32_t> idx(static_cast<std::size_t>(entries));
  std::vector<float> frac(static_cast<std::size_t>(entries));
  for (std::int64_t i = 0; i < entries; ++i) {
    frac[static_cast<std::size_t>(i)] =
        static_cast<float>(0.5 + 0.4 * std::sin(static_cast<double>(i)));
    switch (i % 4) {
      case 0:  // interior sample (cubic needs idx-1 .. idx+2 in range)
        idx[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>(1 + i % (nsamples - 3));
        break;
      case 1:  // out of range -> zero
        idx[static_cast<std::size_t>(i)] = TofGatherCmd::kOutOfRange;
        break;
      default:  // biased linear fallback at the edges
        idx[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
            TofGatherCmd::kLinearBias - i % (nsamples - 1));
        break;
    }
  }

  Tensor out_re({nz, nx, nch}), out_im({nz, nx, nch});
  cpu().submit(
      CommandEncoder()
          .encode(TofGatherCmd{idx.data(), frac.data(), lines_re.raw(),
                               lines_im.raw(), out_re.raw(), out_im.raw(), nz,
                               nx, nch, nsamples, interp})
          .finish());

  for (std::int64_t i = 0; i < entries; ++i) {
    const std::int64_t e = i % nch;
    const auto u = static_cast<std::size_t>(i);
    EXPECT_EQ(out_re.raw()[i],
              reference_gather(lines_re.raw() + e * nsamples, idx[u], frac[u],
                               interp))
        << "entry " << i;
    EXPECT_EQ(out_im.raw()[i],
              reference_gather(lines_im.raw() + e * nsamples, idx[u], frac[u],
                               interp))
        << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Interps, TofGatherTest,
                         ::testing::Values(dsp::Interp::kLinear,
                                           dsp::Interp::kCubic));

/// Pixel-dependent test weights for DasApplyCmd (stands in for the
/// apodization callback beamform/ binds).
struct TestWeights {
  std::int64_t nch = 0;

  static void fill(const void* ctx, std::int64_t iz, std::int64_t ix,
                   std::vector<float>& w) {
    const auto& self = *static_cast<const TestWeights*>(ctx);
    w.assign(static_cast<std::size_t>(self.nch), 0.0f);
    for (std::int64_t e = 0; e < self.nch; ++e)
      w[static_cast<std::size_t>(e)] =
          1.0f / static_cast<float>(1 + e + (iz + ix) % 3);
  }
};

TEST(CpuDevice, DasApplyRfMatchesSerialReference) {
  Rng rng(7);
  const std::int64_t nz = 9, nx = 6, nch = 4;
  const Tensor re = random_tensor({nz, nx, nch}, rng);
  const TestWeights ctx{nch};
  Tensor out({nz, nx});
  cpu().submit(CommandEncoder()
                   .encode(DasApplyCmd{re.raw(), nullptr, out.raw(), nz, nx,
                                       nch, &ctx, TestWeights::fill})
                   .finish());
  std::vector<float> w;
  for (std::int64_t iz = 0; iz < nz; ++iz)
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      TestWeights::fill(&ctx, iz, ix, w);
      double acc = 0.0;
      for (std::int64_t e = 0; e < nch; ++e)
        acc += static_cast<double>(w[static_cast<std::size_t>(e)]) *
               re.raw()[(iz * nx + ix) * nch + e];
      EXPECT_EQ(out.raw()[iz * nx + ix], static_cast<float>(acc))
          << iz << "," << ix;
    }
}

TEST(CpuDevice, DasApplyIqMatchesSerialReference) {
  Rng rng(8);
  const std::int64_t nz = 8, nx = 5, nch = 3;
  const Tensor re = random_tensor({nz, nx, nch}, rng);
  const Tensor im = random_tensor({nz, nx, nch}, rng);
  const TestWeights ctx{nch};
  Tensor out({nz, nx, 2});
  cpu().submit(CommandEncoder()
                   .encode(DasApplyCmd{re.raw(), im.raw(), out.raw(), nz, nx,
                                       nch, &ctx, TestWeights::fill})
                   .finish());
  std::vector<float> w;
  for (std::int64_t iz = 0; iz < nz; ++iz)
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      TestWeights::fill(&ctx, iz, ix, w);
      double acc_re = 0.0, acc_im = 0.0;
      for (std::int64_t e = 0; e < nch; ++e) {
        const auto we =
            static_cast<double>(w[static_cast<std::size_t>(e)]);
        acc_re += we * re.raw()[(iz * nx + ix) * nch + e];
        acc_im += we * im.raw()[(iz * nx + ix) * nch + e];
      }
      EXPECT_EQ(out.raw()[(iz * nx + ix) * 2], static_cast<float>(acc_re));
      EXPECT_EQ(out.raw()[(iz * nx + ix) * 2 + 1],
                static_cast<float>(acc_im));
    }
}

// ---- Routing, stats and probe discipline -----------------------------------

TEST(Routing, CurrentFallsBackToProcessCpuDevice) {
  EXPECT_EQ(&current(), &cpu());
  EXPECT_EQ(cpu().name(), "cpu");
  EXPECT_EQ(cpu_shared().get(), &cpu());
}

TEST(Routing, ScopedDeviceNestsAndRestores) {
  AccelDevice outer, inner;
  {
    const ScopedDevice a(outer);
    EXPECT_EQ(&current(), &outer);
    {
      const ScopedDevice b(inner);
      EXPECT_EQ(&current(), &inner);
    }
    EXPECT_EQ(&current(), &outer);
  }
  EXPECT_EQ(&current(), &cpu());
}

TEST(Device, SubmitCountsListsAndCommands) {
  CpuDevice dev;
  Rng rng(9);
  const Tensor a = random_tensor({2, 3}, rng);
  const Tensor b = random_tensor({3, 2}, rng);
  Tensor c({2, 2}), d({2, 2});
  dev.submit(CommandEncoder()
                 .gemm(a.raw(), b.raw(), c.raw(), 2, 3, 2)
                 .gemm(a.raw(), b.raw(), d.raw(), 2, 3, 2)
                 .finish());
  EXPECT_EQ(dev.stats().lists, 1);
  EXPECT_EQ(dev.stats().commands, 2);
  // Estimation is not a submission: counters stay put.
  dev.estimate_seconds(
      CommandEncoder().gemm(nullptr, nullptr, nullptr, 8, 8, 8).finish());
  EXPECT_EQ(dev.stats().lists, 1);
}

TEST(Device, NullPointerProbesEstimateButNeverExecute) {
  CpuDevice dev;
  const CommandList probe =
      CommandEncoder().gemm(nullptr, nullptr, nullptr, 64, 64, 64).finish();
  EXPECT_GT(dev.estimate_seconds(probe), 0.0);
  EXPECT_THROW(dev.submit(probe), InvalidArgument);
}

TEST(Device, MacCountsFollowCommandDimensions) {
  const Command gemm = GemmCmd{nullptr, nullptr, nullptr, 4, 5, 6};
  EXPECT_EQ(command_macs(gemm), 4 * 5 * 6);
  const Command batched =
      BatchedGemmCmd{nullptr, nullptr, nullptr, 3, 4, 5, 6, false};
  EXPECT_EQ(command_macs(batched), 3 * 4 * 5 * 6);
  EXPECT_EQ(list_macs({gemm, batched}), 4 * 5 * 6 + 3 * 4 * 5 * 6);
}

// ---- AccelDevice -----------------------------------------------------------

TEST(AccelDevice, ExecutesBitIdenticalToCpu) {
  Rng rng(10);
  const std::int64_t m = 15, k = 31, n = 12;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor via_cpu({m, n}), via_accel({m, n});
  cpu().submit(
      CommandEncoder().gemm(a.raw(), b.raw(), via_cpu.raw(), m, k, n)
          .finish());
  AccelDevice accel;
  accel.submit(
      CommandEncoder().gemm(a.raw(), b.raw(), via_accel.raw(), m, k, n)
          .finish());
  EXPECT_EQ(max_abs_diff(via_cpu, via_accel), 0.0f);
  EXPECT_EQ(accel.name(), "accel");
  EXPECT_EQ(accel.stats().lists, 1);
}

class TinyVbfCostTest : public ::testing::Test {
 protected:
  TinyVbfCostTest() {
    Rng rng(11);
    auto model = std::make_shared<models::TinyVbf>(
        models::TinyVbfConfig::test(16, 32), rng);
    vbf_ = std::make_shared<models::TinyVbfBeamformer>(model);
  }

  /// Estimated per-frame seconds for a b-frame stack of nz-row frames.
  double per_frame(const Device& dev, std::int64_t nz, std::int64_t b) {
    CommandEncoder enc;
    EXPECT_TRUE(vbf_->encode_cost_probe(enc, nz * b));
    return dev.estimate_seconds(enc.finish()) / static_cast<double>(b);
  }

  std::shared_ptr<models::TinyVbfBeamformer> vbf_;
};

TEST_F(TinyVbfCostTest, AccelPerFrameEstimateMonotoneInBatchSize) {
  const AccelDevice accel;
  const CpuDevice cpu_dev;
  for (const std::int64_t nz : {40, 96}) {
    double prev_accel = per_frame(accel, nz, 1);
    double prev_cpu = per_frame(cpu_dev, nz, 1);
    for (std::int64_t b = 2; b <= 8; ++b) {
      const double cur_accel = per_frame(accel, nz, b);
      const double cur_cpu = per_frame(cpu_dev, nz, b);
      EXPECT_LE(cur_accel, prev_accel) << "accel nz=" << nz << " b=" << b;
      EXPECT_LE(cur_cpu, prev_cpu) << "cpu nz=" << nz << " b=" << b;
      prev_accel = cur_accel;
      prev_cpu = cur_cpu;
    }
  }
}

TEST_F(TinyVbfCostTest, AccelDispatchOverheadDwarfsCpuOverhead) {
  // The modeled host->accelerator round trip is what makes deep batches
  // worthwhile: the overhead amortized per frame must shrink much faster
  // on accel than the (already small) CPU list overhead.
  const AccelDevice accel;
  const double solo = per_frame(accel, 96, 1);
  const double batched = per_frame(accel, 96, 8);
  EXPECT_LT(batched, solo);
  EXPECT_GT(solo - batched, 0.5 * AccelDevice::kDispatchOverheadSeconds);
}

TEST_F(TinyVbfCostTest, PreferredBatchLargerUnderAccelEstimates) {
  const serve::InferenceBatcher batcher(16);
  const AccelDevice accel;
  const CpuDevice cpu_dev;
  const std::int64_t nz = 96;
  const std::size_t on_cpu = batcher.preferred_batch(cpu_dev, *vbf_, nz, 16);
  const std::size_t on_accel =
      batcher.preferred_batch(accel, *vbf_, nz, 16);
  EXPECT_GE(on_cpu, 1u);
  EXPECT_LE(on_accel, 16u);
  // The deterministic cost models must make the accelerator prefer deeper
  // stacks than the CPU at identical load — the serving-layer property the
  // quorum gate exploits.
  EXPECT_GT(on_accel, on_cpu);
  EXPECT_EQ(batcher.stats().preferred_batch,
            static_cast<std::int64_t>(on_accel));
  // Cached: a second query returns the same sizing.
  EXPECT_EQ(batcher.preferred_batch(accel, *vbf_, nz, 16), on_accel);
}

/// A batch-capable method with no cost probe: sizing falls back to the cap.
class ProbelessBeamformer : public bf::BatchedBeamformer {
 public:
  std::string name() const override { return "probeless"; }
  Tensor beamform(const us::TofCube&) const override { return Tensor(); }
  std::vector<Tensor> beamform_batch(
      const std::vector<const us::TofCube*>& cubes) const override {
    return std::vector<Tensor>(cubes.size());
  }
};

TEST(InferenceBatcher, PreferredBatchFallsBackToCapWithoutProbe) {
  const serve::InferenceBatcher batcher(8);
  const ProbelessBeamformer probeless;
  EXPECT_EQ(batcher.preferred_batch(cpu(), probeless, 96, 8), 8u);
}

}  // namespace
}  // namespace tvbf::device
