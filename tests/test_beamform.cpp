// Tests for the classical beamformers: apodization, DAS, the complex
// Hermitian solver and MVDR — including the key shape property that MVDR
// sharpens the PSF relative to DAS.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "beamform/apodization.hpp"
#include "beamform/das.hpp"
#include "beamform/hermitian.hpp"
#include "beamform/mvdr.hpp"
#include "common/rng.hpp"
#include "dsp/hilbert.hpp"
#include "metrics/resolution.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/phantom.hpp"
#include "us/simulator.hpp"
#include "us/tof.hpp"

namespace tvbf::bf {
namespace {

TEST(Apodization, WeightsSumToOne) {
  const us::Probe probe = us::Probe::test_probe(32);
  const Apodization apod(probe, {});
  const auto w = apod.weights(0.0, 20e-3);
  ASSERT_EQ(w.size(), 32u);
  double sum = 0.0;
  for (float v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(Apodization, FNumberGrowsApertureWithDepth) {
  const us::Probe probe = us::Probe::test_probe(32);
  ApodizationParams params;
  params.f_number = 2.0;
  const Apodization apod(probe, params);
  auto active = [&](double z) {
    int n = 0;
    for (float v : apod.weights(0.0, z)) n += (v > 0.0f);
    return n;
  };
  EXPECT_LT(active(5e-3), active(20e-3));
}

TEST(Apodization, ZeroFNumberUsesFullAperture) {
  const us::Probe probe = us::Probe::test_probe(16);
  ApodizationParams params;
  params.f_number = 0.0;
  params.window = dsp::WindowKind::kBoxcar;
  const Apodization apod(probe, params);
  const auto w = apod.weights(3e-3, 10e-3);
  for (float v : w) EXPECT_NEAR(v, 1.0 / 16.0, 1e-6);
}

TEST(Apodization, OffCenterPixelShiftsAperture) {
  const us::Probe probe = us::Probe::test_probe(32);
  ApodizationParams params;
  params.f_number = 1.5;
  const Apodization apod(probe, params);
  const auto w_left = apod.weights(probe.element_x(4), 10e-3);
  const auto w_right = apod.weights(probe.element_x(27), 10e-3);
  // The heaviest element should track the pixel.
  const auto argmax = [](const std::vector<float>& w) {
    return std::distance(w.begin(), std::max_element(w.begin(), w.end()));
  };
  EXPECT_LT(argmax(w_left), argmax(w_right));
}

TEST(Apodization, InvalidInputsThrow) {
  const us::Probe probe = us::Probe::test_probe(16);
  ApodizationParams bad;
  bad.f_number = -1.0;
  EXPECT_THROW(Apodization(probe, bad), InvalidArgument);
  const Apodization apod(probe, {});
  EXPECT_THROW(apod.weights(0.0, -1e-3), InvalidArgument);
}

TEST(Hermitian, CholeskySolvesKnownSystem) {
  // A = L L^H with a hand-built HPD matrix.
  ComplexMatrix a(3);
  a.at(0, 0) = {4.0, 0.0};
  a.at(0, 1) = {1.0, -1.0};
  a.at(0, 2) = {0.5, 0.25};
  a.at(1, 0) = std::conj(a.at(0, 1));
  a.at(1, 1) = {5.0, 0.0};
  a.at(1, 2) = {1.0, 0.5};
  a.at(2, 0) = std::conj(a.at(0, 2));
  a.at(2, 1) = std::conj(a.at(1, 2));
  a.at(2, 2) = {6.0, 0.0};
  const std::vector<cd> x_true{{1.0, 2.0}, {-0.5, 0.25}, {3.0, -1.0}};
  // b = A x.
  std::vector<cd> b(3, {0.0, 0.0});
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) b[i] += a.at(i, j) * x_true[j];
  const auto x = solve_hpd(a, b);
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(i)] -
                         x_true[static_cast<std::size_t>(i)]),
                0.0, 1e-10);
}

TEST(Hermitian, RejectsIndefiniteMatrix) {
  ComplexMatrix a(2);
  a.at(0, 0) = {1.0, 0.0};
  a.at(0, 1) = {3.0, 0.0};
  a.at(1, 0) = {3.0, 0.0};
  a.at(1, 1) = {1.0, 0.0};  // eigenvalues 4 and -2
  EXPECT_FALSE(cholesky_inplace(a));
  ComplexMatrix b(2);
  b.at(0, 0) = {1.0, 0.0};
  b.at(1, 1) = {1.0, 0.0};
  EXPECT_THROW(solve_hpd(a, {cd{1, 0}, cd{1, 0}}), InvalidArgument);
}

TEST(Hermitian, Rank1UpdateAndTrace) {
  ComplexMatrix a(2);
  const cd v[] = {{1.0, 1.0}, {2.0, -1.0}};
  a.rank1_update(v, 2.0);
  EXPECT_NEAR(a.at(0, 0).real(), 4.0, 1e-12);   // 2 * |1+i|^2
  EXPECT_NEAR(a.at(1, 1).real(), 10.0, 1e-12);  // 2 * |2-i|^2
  EXPECT_NEAR(a.trace_real(), 14.0, 1e-12);
  // Hermitian symmetry of off-diagonals.
  EXPECT_NEAR(std::abs(a.at(0, 1) - std::conj(a.at(1, 0))), 0.0, 1e-12);
  a.add_diagonal(1.0);
  EXPECT_NEAR(a.trace_real(), 16.0, 1e-12);
}

/// Shared fixture running the full sim -> ToF -> beamform chain once.
class BeamformPipeline : public ::testing::Test {
 protected:
  static constexpr double kPointDepth = 19e-3;

  void SetUp() override {
    probe_ = us::Probe::test_probe(32);
    us::SimParams sim = us::SimParams::in_silico();
    sim.add_noise = false;
    sim.max_depth = 30e-3;
    // Lateral sampling must out-resolve the MVDR mainlobe (~0.4 mm) for
    // the PSF comparisons: 64 columns over the 9.3 mm aperture.
    grid_ = us::ImagingGrid::reduced(probe_, 128, 64, 12e-3, 26e-3);
    const us::Phantom ph = us::make_single_point(kPointDepth);
    acq_ = us::simulate_plane_wave(probe_, ph, 0.0, sim);
    rf_cube_ = us::tof_correct(acq_, grid_, {});
    iq_cube_ = us::tof_correct(acq_, grid_, {.analytic = true});
  }

  us::Probe probe_;
  us::ImagingGrid grid_;
  us::Acquisition acq_;
  us::TofCube rf_cube_;
  us::TofCube iq_cube_;
};

TEST_F(BeamformPipeline, DasPeaksAtPointTarget) {
  const DasBeamformer das(probe_);
  const Tensor iq = das.beamform(rf_cube_);
  ASSERT_EQ(iq.shape(), (Shape{grid_.nz, grid_.nx, 2}));
  const Tensor env = dsp::envelope_iq(iq);
  // Peak pixel should be at the point target location.
  std::int64_t best = 0;
  for (std::int64_t p = 1; p < env.size(); ++p)
    if (env.flat(p) > env.flat(best)) best = p;
  const std::int64_t pz = best / grid_.nx;
  const std::int64_t px = best % grid_.nx;
  EXPECT_NEAR(static_cast<double>(pz), grid_.row_of(kPointDepth), 3.0);
  EXPECT_NEAR(static_cast<double>(px), grid_.column_of(0.0), 1.0);
}

TEST_F(BeamformPipeline, DasAnalyticAndRfPathsAgreeOnEnvelope) {
  const DasBeamformer das(probe_);
  const Tensor env_rf = dsp::envelope_iq(das.beamform(rf_cube_));
  const Tensor env_iq = dsp::envelope_iq(das.beamform(iq_cube_));
  // The two IQ paths (Hilbert after the sum along depth vs Hilbert per
  // channel along time) are equivalent only approximately — peak magnitude
  // must agree within ~25% and peak position must coincide.
  const float peak_rf = max_value(env_rf);
  const float peak_iq = max_value(env_iq);
  EXPECT_NEAR(peak_rf / peak_iq, 1.0, 0.25);
  std::int64_t arg_rf = 0, arg_iq = 0;
  for (std::int64_t p = 1; p < env_rf.size(); ++p) {
    if (env_rf.flat(p) > env_rf.flat(arg_rf)) arg_rf = p;
    if (env_iq.flat(p) > env_iq.flat(arg_iq)) arg_iq = p;
  }
  EXPECT_NEAR(static_cast<double>(arg_rf / grid_.nx),
              static_cast<double>(arg_iq / grid_.nx), 2.0);
}

TEST_F(BeamformPipeline, DasLinearity) {
  // DAS(alpha * cube) == alpha * DAS(cube).
  const DasBeamformer das(probe_);
  us::TofCube scaled = rf_cube_;
  for (auto& v : scaled.real.data()) v *= 2.5f;
  const Tensor a = das.beamform(rf_cube_);
  const Tensor b = das.beamform(scaled);
  EXPECT_TRUE(allclose(scale(a, 2.5f), b, 1e-4f, 1e-4f));
}

TEST_F(BeamformPipeline, MvdrRequiresAnalyticCube) {
  const MvdrBeamformer mvdr;
  EXPECT_THROW(mvdr.beamform(rf_cube_), InvalidArgument);
}

TEST_F(BeamformPipeline, MvdrPeaksAtPointTarget) {
  MvdrParams params;
  params.subaperture = 16;
  const MvdrBeamformer mvdr(params);
  const Tensor env = dsp::envelope_iq(mvdr.beamform(iq_cube_));
  std::int64_t best = 0;
  for (std::int64_t p = 1; p < env.size(); ++p)
    if (env.flat(p) > env.flat(best)) best = p;
  EXPECT_NEAR(static_cast<double>(best / grid_.nx), grid_.row_of(kPointDepth),
              3.0);
  EXPECT_NEAR(static_cast<double>(best % grid_.nx), grid_.column_of(0.0), 1.0);
}

TEST_F(BeamformPipeline, MvdrNarrowsLateralPsfVsDas) {
  // The core image-quality relationship the paper builds on (Fig 12).
  const DasBeamformer das(probe_);
  const MvdrBeamformer mvdr;
  const Tensor env_das = dsp::envelope_iq(das.beamform(rf_cube_));
  const Tensor env_mvdr = dsp::envelope_iq(mvdr.beamform(iq_cube_));
  const auto w_das =
      metrics::psf_widths(env_das, grid_, 0.0, kPointDepth, 2.0);
  const auto w_mvdr =
      metrics::psf_widths(env_mvdr, grid_, 0.0, kPointDepth, 2.0);
  ASSERT_TRUE(w_das.valid);
  ASSERT_TRUE(w_mvdr.valid);
  EXPECT_LT(w_mvdr.lateral_mm, w_das.lateral_mm);
}

TEST_F(BeamformPipeline, MvdrParameterValidation) {
  EXPECT_THROW(MvdrBeamformer({.subaperture = -1}), InvalidArgument);
  EXPECT_THROW(MvdrBeamformer({.diagonal_loading = -0.5}), InvalidArgument);
  MvdrParams too_big;
  too_big.subaperture = 64;  // > 32 channels
  const MvdrBeamformer mvdr(too_big);
  EXPECT_THROW(mvdr.beamform(iq_cube_), InvalidArgument);
}

TEST_F(BeamformPipeline, MvdrHandlesSilentRegions) {
  // A cube of zeros (no echoes) must produce a zero image, not NaNs.
  us::TofCube silent = iq_cube_;
  silent.real.fill(0.0f);
  silent.imag.fill(0.0f);
  const MvdrBeamformer mvdr;
  const Tensor iq = mvdr.beamform(silent);
  EXPECT_FLOAT_EQ(max_abs(iq), 0.0f);
}

TEST_F(BeamformPipeline, DasChannelCountMismatchThrows) {
  const DasBeamformer das(us::Probe::test_probe(16));
  EXPECT_THROW(das.beamform(rf_cube_), InvalidArgument);
}

}  // namespace
}  // namespace tvbf::bf
