// tvbf-check: repo-specific static analysis for the Tiny-VBF tree.
//
// Three passes over src/ (plus the atomics pass over tests/, bench/ and
// examples/), enforcing conventions a generic linter cannot:
//
//  1. include-layering DAG — modules (src/ subdirectories) are assigned to
//     ordered layers in tools/check/tvbf-check.conf; a quoted include may
//     only reach into the same module or a strictly lower layer. Back-edges
//     and same-layer cross-module includes fail, which also rules out any
//     transitive cycle.
//  2. atomics discipline — every load/store/exchange/fetch_*/
//     compare_exchange_* on a std::atomic must pass an explicit
//     std::memory_order; compare_exchange must pass BOTH the success and
//     the failure order. Files listed in the config's [atomics] section may
//     use implicit seq_cst deliberately (test counters).
//  3. contract/hygiene — banned identifiers in library code (printf family,
//     rand/srand, naked new/delete, std::thread outside the [threads]
//     allowlist), #pragma once in every header, and side-effecting
//     TVBF_REQUIRE/TVBF_ENSURE conditions.
//  4. instrument naming — string literals registering telemetry
//     instruments (.counter/.gauge/.histogram) must be dotted lowercase
//     ([a-z0-9_.]) and start with a namespace prefix from the config's
//     [instruments] section, so /metrics and snapshot names stay coherent.
//     Composed names (literal followed by +) are charset-checked only.
//
// A finding on line N can be suppressed with a comment on line N or N-1:
//   // tvbf-check: allow(<rule>)
// Always pair a suppression with a reason in the surrounding comment.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace tvbf::check {

/// One diagnostic, anchored to a repo-relative file and 1-based line.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  ///< "layering", "atomic-order", "banned-call",
                     ///< "naked-new", "naked-delete", "thread",
                     ///< "pragma-once", "require-side-effect",
                     ///< "instrument-name"
  std::string message;
};

/// Parsed tvbf-check.conf.
struct Config {
  /// Bottom-up layer list; each layer holds one or more src/ modules.
  std::vector<std::vector<std::string>> layers;
  /// Path prefixes allowed to use implicit (seq_cst) atomic operations.
  std::vector<std::string> atomics_allow_implicit;
  /// Path prefixes allowed to own std::thread / std::jthread objects.
  std::vector<std::string> thread_allow;
  /// Allowed instrument-name namespaces ("serve.", "graph.", ...). Empty
  /// disables the instrument-name pass.
  std::vector<std::string> instrument_prefixes;
};

/// Parses the config text; throws std::runtime_error on malformed input
/// (unknown section/key, module listed in two layers, empty layer list).
Config parse_config(const std::string& text);

/// Formats "file:line: [rule] message".
std::string format_finding(const Finding& f);

/// Collects the names of variables and members declared std::atomic<...>
/// in `content` into `out`. The atomics pass only inspects method calls
/// whose receiver is a collected name, so `archive.load(path)` on a
/// non-atomic type is never flagged. Run over every file first: members
/// are frequently declared in one file and poked from another.
void collect_atomic_names(const std::string& content,
                          std::set<std::string>& out);

/// Runs every applicable pass on one file. `path` must be repo-relative
/// ("src/...", "tests/...", ...); it selects the passes (layering and
/// hygiene cover src/ only, atomics also covers tests/bench/examples) and
/// is matched against the config allowlists.
std::vector<Finding> check_file(const Config& config, const std::string& path,
                                const std::string& content,
                                const std::set<std::string>& atomic_names);

/// Walks root/{src,tests,bench,examples}, collects atomic names, checks
/// every .hpp/.cpp, and verifies each src/ module is assigned to a layer.
/// Findings are sorted by (file, line).
std::vector<Finding> check_tree(const Config& config, const std::string& root);

}  // namespace tvbf::check
