// tvbf-check CLI: scan a Tiny-VBF source tree and print findings.
//
// Usage: tvbf-check [--root DIR] [--config FILE]
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/config/IO error.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "check/checker.hpp"

namespace {

int run(int argc, char** argv) {
  std::string root = ".";
  std::string config_path = "tools/check/tvbf-check.conf";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: tvbf-check [--root DIR] [--config FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "tvbf-check: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::ifstream in(config_path);
  if (!in) {
    std::fprintf(stderr, "tvbf-check: cannot open config '%s'\n",
                 config_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  const tvbf::check::Config config = tvbf::check::parse_config(buf.str());
  const auto findings = tvbf::check::check_tree(config, root);
  for (const auto& f : findings) {
    std::printf("%s\n", tvbf::check::format_finding(f).c_str());
  }
  if (findings.empty()) {
    std::printf("tvbf-check: clean\n");
    return 0;
  }
  std::printf("tvbf-check: %zu finding(s)\n", findings.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvbf-check: %s\n", e.what());
    return 2;
  }
}
