#include "check/checker.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tvbf::check {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// Comment/string-free view of a source file. Comments and the contents of
/// string/char literals are blanked to spaces (newlines preserved, so
/// offsets map to the same line numbers), and `tvbf-check: allow(<rule>)`
/// markers found inside comments are recorded by line.
struct Stripped {
  std::string text;
  /// line -> rules suppressed on that line and the next.
  std::map<int, std::set<std::string>> suppressions;
};

void record_suppressions(const std::string& comment, int line,
                         Stripped& out) {
  const std::string tag = "tvbf-check: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(tag, pos)) != std::string::npos) {
    const std::size_t open = pos + tag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    out.suppressions[line].insert(comment.substr(open, close - open));
    pos = close;
  }
}

Stripped strip(const std::string& src) {
  Stripped out;
  out.text.assign(src.size(), ' ');
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto copy = [&](std::size_t at) { out.text[at] = src[at]; };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      out.text[i] = '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      record_suppressions(src.substr(start, i - start), line, out);
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          out.text[i] = '\n';
          ++line;
        }
        ++i;
      }
      i = std::min(n, i + 2);
      record_suppressions(src.substr(start, i - start), start_line, out);
    } else if (c == '"') {
      // Raw strings are not used in the tree; plain escapes only. Literals
      // on preprocessor-directive lines (#include paths) are kept verbatim
      // so the layering pass can read them; all others are blanked.
      std::size_t bol = i;
      while (bol > 0 && src[bol - 1] != '\n') --bol;
      while (bol < i && (src[bol] == ' ' || src[bol] == '\t')) ++bol;
      const bool directive = src[bol] == '#';
      copy(i);
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        if (directive) copy(i);
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
          if (directive) copy(i);
        }
        ++i;
      }
      if (i < n && src[i] == '"') {
        copy(i);
        ++i;
      }
    } else if (c == '\'' && (i == 0 || !is_ident(src[i - 1]))) {
      // The identifier-char guard keeps digit separators (1'000) out.
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n && src[i] == '\'') ++i;
    } else {
      copy(i);
      ++i;
    }
  }
  return out;
}

int line_at(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() +
                                static_cast<std::ptrdiff_t>(pos),
                            '\n'));
}

bool word_boundary_before(const std::string& text, std::size_t pos) {
  return pos == 0 || !is_ident(text[pos - 1]);
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0)
    ++pos;
  return pos;
}

/// Returns the position just past the ')' matching the '(' at `open`, or
/// npos when unbalanced.
std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool path_allowed(const std::vector<std::string>& prefixes,
                  const std::string& path) {
  for (const auto& p : prefixes)
    if (starts_with(path, p)) return true;
  return false;
}

struct PassContext {
  const Config& config;
  const std::string& path;
  const std::string& raw;
  const Stripped& stripped;
  const std::set<std::string>& atomic_names;
  std::vector<Finding>& findings;

  bool suppressed(int line, const std::string& rule) const {
    for (int l : {line, line - 1}) {
      auto it = stripped.suppressions.find(l);
      if (it != stripped.suppressions.end() && it->second.count(rule) > 0)
        return true;
    }
    return false;
  }

  void emit(int line, const std::string& rule, std::string message) {
    if (!suppressed(line, rule)) {
      findings.push_back({path, line, rule, std::move(message)});
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 1: include-layering DAG

std::map<std::string, int> layer_index(const Config& config) {
  std::map<std::string, int> index;
  for (std::size_t l = 0; l < config.layers.size(); ++l)
    for (const auto& mod : config.layers[l])
      index[mod] = static_cast<int>(l);
  return index;
}

void pass_layering(PassContext& ctx) {
  const std::string mod =
      ctx.path.substr(4, ctx.path.find('/', 4) - 4);  // src/<mod>/...
  const auto layers = layer_index(ctx.config);
  const auto self = layers.find(mod);
  // A module missing from the config is reported once per tree in
  // check_tree; per-file we only check the edges we can rank.
  std::istringstream lines(ctx.stripped.text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::size_t pos = skip_ws(line, 0);
    if (pos >= line.size() || line[pos] != '#') continue;
    pos = skip_ws(line, pos + 1);
    if (line.compare(pos, 7, "include") != 0) continue;
    pos = skip_ws(line, pos + 7);
    if (pos >= line.size() || line[pos] != '"') continue;  // <system> is free
    const std::size_t close = line.find('"', pos + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(pos + 1, close - pos - 1);
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) {
      ctx.emit(line_no, "layering",
               "quoted include \"" + target +
                   "\" is not module-qualified (use \"module/header.hpp\")");
      continue;
    }
    const std::string target_mod = target.substr(0, slash);
    if (target_mod == mod) continue;
    const auto it = layers.find(target_mod);
    if (it == layers.end()) {
      ctx.emit(line_no, "layering",
               "include of unknown module \"" + target_mod +
                   "\" (add it to a layer in tvbf-check.conf)");
      continue;
    }
    if (self == layers.end()) continue;
    if (it->second > self->second) {
      ctx.emit(line_no, "layering",
               "back-edge: module \"" + mod + "\" (layer " +
                   std::to_string(self->second) + ") includes \"" + target +
                   "\" from higher layer " + std::to_string(it->second));
    } else if (it->second == self->second) {
      ctx.emit(line_no, "layering",
               "same-layer cross-module include: \"" + mod +
                   "\" and \"" + target_mod +
                   "\" share layer " + std::to_string(self->second));
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: atomics discipline

struct AtomicOp {
  const char* name;
  int required_orders;
};

constexpr AtomicOp kAtomicOps[] = {
    {"load", 1},          {"store", 1},
    {"exchange", 1},      {"fetch_add", 1},
    {"fetch_sub", 1},     {"fetch_and", 1},
    {"fetch_or", 1},      {"fetch_xor", 1},
    {"compare_exchange_weak", 2},
    {"compare_exchange_strong", 2},
};

/// Reads the identifier that ends just before `end` (exclusive); empty when
/// the receiver is not a plain identifier (e.g. a call-chain result).
std::string receiver_before(const std::string& text, std::size_t end) {
  std::size_t i = end;
  if (i > 0 && text[i - 1] == ']') {  // skip an index: name[expr].op(...)
    int depth = 0;
    while (i > 0) {
      --i;
      if (text[i] == ']') ++depth;
      if (text[i] == '[' && --depth == 0) break;
    }
  }
  std::size_t stop = i;
  while (stop > 0 && is_ident(text[stop - 1])) --stop;
  return text.substr(stop, i - stop);
}

void pass_atomics(PassContext& ctx) {
  if (path_allowed(ctx.config.atomics_allow_implicit, ctx.path)) return;
  const std::string& text = ctx.stripped.text;
  for (const AtomicOp& op : kAtomicOps) {
    const std::string needle = op.name;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += needle.size();
      // Must be an exact member-call token: `.name(` or `->name(`.
      if (!word_boundary_before(text, start) || start == 0) continue;
      const bool dot = text[start - 1] == '.';
      const bool arrow = start >= 2 && text[start - 1] == '>' &&
                         text[start - 2] == '-';
      if (!dot && !arrow) continue;
      const std::size_t after = skip_ws(text, start + needle.size());
      if (after >= text.size() || text[after] != '(') continue;
      const std::string recv =
          receiver_before(text, start - (dot ? 1 : 2));
      if (ctx.atomic_names.count(recv) == 0) continue;
      const std::size_t close = match_paren(text, after);
      if (close == std::string::npos) continue;
      const std::string args = text.substr(after, close - after);
      int orders = 0;
      for (std::size_t p = 0; (p = args.find("memory_order", p)) !=
                              std::string::npos;
           p += 12)
        ++orders;
      if (orders < op.required_orders) {
        const int line = line_at(text, start);
        std::string msg = "atomic " + std::string(op.name) + " on '" + recv +
                          "' ";
        if (op.required_orders == 2) {
          msg += orders == 0
                     ? "needs explicit success AND failure std::memory_order "
                       "arguments"
                     : "needs an explicit failure std::memory_order (the "
                       "two-argument form)";
        } else {
          msg += "needs an explicit std::memory_order argument (implicit "
                 "seq_cst; allowlist the file if deliberate)";
        }
        ctx.emit(line, "atomic-order", msg);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: contract / hygiene

void pass_pragma_once(PassContext& ctx) {
  if (ctx.path.size() < 4 ||
      ctx.path.compare(ctx.path.size() - 4, 4, ".hpp") != 0)
    return;
  std::istringstream lines(ctx.raw);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t pos = skip_ws(line, 0);
    if (line.compare(pos, 12, "#pragma once") == 0) return;
  }
  ctx.emit(1, "pragma-once", "header is missing #pragma once");
}

void pass_banned_calls(PassContext& ctx) {
  // Call-like identifiers banned in library code. snprintf/vsnprintf are
  // allowed (bounded, no stream side effects); common/rng.hpp replaces
  // rand(); naked stdout writes belong in examples/, not src/.
  static const char* const kBanned[] = {"printf", "fprintf", "vprintf",
                                        "sprintf", "vsprintf", "puts",
                                        "rand",   "srand"};
  const std::string& text = ctx.stripped.text;
  for (const char* name : kBanned) {
    const std::string needle = name;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += needle.size();
      if (!word_boundary_before(text, start)) continue;
      const std::size_t end = start + needle.size();
      if (end < text.size() && is_ident(text[end])) continue;
      if (skip_ws(text, end) >= text.size() ||
          text[skip_ws(text, end)] != '(')
        continue;
      ctx.emit(line_at(text, start), "banned-call",
               std::string(name) +
                   " is banned in library code (snprintf for formatting, "
                   "common/rng.hpp for randomness, a caller-provided sink "
                   "for output)");
    }
  }
}

void pass_naked_new_delete(PassContext& ctx) {
  const std::string& text = ctx.stripped.text;
  for (const char* name : {"new", "delete"}) {
    const std::string needle = name;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += needle.size();
      if (!word_boundary_before(text, start)) continue;
      const std::size_t end = start + needle.size();
      if (end < text.size() && is_ident(text[end])) continue;
      if (needle == "delete") {
        // `= delete;` (deleted special member) is not a deallocation.
        std::size_t before = start;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 text[before - 1])) != 0)
          --before;
        if (before > 0 && text[before - 1] == '=') continue;
        ctx.emit(line_at(text, start), "naked-delete",
                 "naked delete in library code (own memory with "
                 "unique_ptr/containers)");
      } else {
        ctx.emit(line_at(text, start), "naked-new",
                 "naked new in library code (use std::make_unique; "
                 "deliberate leaks need a tvbf-check: allow(naked-new) "
                 "comment with a reason)");
      }
    }
  }
}

void pass_threads(PassContext& ctx) {
  if (path_allowed(ctx.config.thread_allow, ctx.path)) return;
  const std::string& text = ctx.stripped.text;
  for (const char* name : {"std::thread", "std::jthread"}) {
    const std::string needle = name;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += needle.size();
      const std::size_t end = start + needle.size();
      if (end < text.size() && is_ident(text[end])) continue;
      // std::thread::hardware_concurrency() is type access, not ownership.
      if (end + 1 < text.size() && text[end] == ':' && text[end + 1] == ':')
        continue;
      ctx.emit(line_at(text, start), "thread",
               std::string(name) +
                   " outside the thread-owner allowlist (fan work out via "
                   "common/parallel.hpp, or add the file to [threads] in "
                   "tvbf-check.conf with a reason)");
    }
  }
}

void pass_require_side_effects(PassContext& ctx) {
  const std::string& text = ctx.stripped.text;
  for (const char* name : {"TVBF_REQUIRE", "TVBF_ENSURE"}) {
    const std::string needle = name;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += needle.size();
      if (!word_boundary_before(text, start)) continue;
      const std::size_t open = skip_ws(text, start + needle.size());
      if (open >= text.size() || text[open] != '(') continue;
      // First macro argument: balanced up to a top-level comma.
      std::size_t i = open + 1;
      int depth = 0;
      const std::size_t cond_begin = i;
      while (i < text.size()) {
        const char c = text[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          if (c == ')' && depth == 0) break;
          --depth;
        }
        if (c == ',' && depth == 0) break;
        ++i;
      }
      const std::string cond = text.substr(cond_begin, i - cond_begin);
      bool side_effect = cond.find("++") != std::string::npos ||
                         cond.find("--") != std::string::npos;
      for (std::size_t p = 0; !side_effect && p < cond.size(); ++p) {
        if (cond[p] != '=') continue;
        const char prev = p > 0 ? cond[p - 1] : ' ';
        const char next = p + 1 < cond.size() ? cond[p + 1] : ' ';
        if (next == '=' ||
            std::string("=!<>+-*/%&|^").find(prev) != std::string::npos)
          continue;  // comparison or compound operator
        side_effect = true;
      }
      if (side_effect) {
        ctx.emit(line_at(text, start), "require-side-effect",
                 std::string(name) +
                     " condition has a side effect (++/--/assignment); "
                     "contracts must be pure — hoist the mutation out");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 4: instrument naming

void pass_instruments(PassContext& ctx) {
  if (ctx.config.instrument_prefixes.empty()) return;
  const std::string& text = ctx.stripped.text;
  for (const char* method : {"counter", "gauge", "histogram"}) {
    const std::string needle = method;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += needle.size();
      // Must be an exact member-call token: `.name(` or `->name(`.
      if (!word_boundary_before(text, start) || start == 0) continue;
      const bool dot = text[start - 1] == '.';
      const bool arrow =
          start >= 2 && text[start - 1] == '>' && text[start - 2] == '-';
      if (!dot && !arrow) continue;
      const std::size_t end = start + needle.size();
      if (end < text.size() && is_ident(text[end])) continue;
      const std::size_t open = skip_ws(text, end);
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t arg = skip_ws(text, open + 1);
      // Only a string-literal first argument is checkable here; a name
      // forwarded through a variable was someone else's literal.
      if (arg >= text.size() || text[arg] != '"') continue;
      // strip() blanks literal contents at identical offsets, so the name
      // is read back from the raw text.
      std::size_t close = arg + 1;
      std::string name;
      while (close < ctx.raw.size() && ctx.raw[close] != '"' &&
             ctx.raw[close] != '\n') {
        name += ctx.raw[close];
        ++close;
      }
      if (close >= ctx.raw.size() || ctx.raw[close] != '"') continue;
      const int line = line_at(text, start);
      bool charset_ok = !name.empty();
      for (char c : name) {
        const bool lower = c >= 'a' && c <= 'z';
        const bool digit = c >= '0' && c <= '9';
        if (!lower && !digit && c != '_' && c != '.') charset_ok = false;
      }
      if (!charset_ok) {
        ctx.emit(line, "instrument-name",
                 "instrument name \"" + name +
                     "\" must be dotted lowercase ([a-z0-9_.])");
        continue;
      }
      // Prefix and dot-shape checks apply only when the literal is the
      // whole name; a fragment composed with + ("device.submit." + kind)
      // gets the charset check alone.
      const std::size_t after = skip_ws(text, close + 1);
      if (after >= text.size() || (text[after] != ')' && text[after] != ','))
        continue;
      if (name.front() == '.' || name.back() == '.' ||
          name.find("..") != std::string::npos) {
        ctx.emit(line, "instrument-name",
                 "instrument name \"" + name +
                     "\" has a leading, trailing or doubled dot");
        continue;
      }
      if (!path_allowed(ctx.config.instrument_prefixes, name)) {
        ctx.emit(line, "instrument-name",
                 "instrument name \"" + name +
                     "\" lacks a namespace prefix from [instruments] in "
                     "tvbf-check.conf");
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

Config parse_config(const std::string& text) {
  Config config;
  std::set<std::string> seen_modules;
  std::istringstream lines(text);
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::size_t begin = skip_ws(line, 0);
    std::size_t end = line.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(line[end - 1])) != 0)
      --end;
    line = line.substr(begin, end - begin);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error("tvbf-check.conf:" + std::to_string(line_no) +
                                 ": malformed section header");
      section = line.substr(1, line.size() - 2);
      if (section != "layers" && section != "atomics" &&
          section != "threads" && section != "instruments")
        throw std::runtime_error("tvbf-check.conf:" + std::to_string(line_no) +
                                 ": unknown section [" + section + "]");
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("tvbf-check.conf:" + std::to_string(line_no) +
                               ": expected key = value");
    std::string key = line.substr(0, eq);
    while (!key.empty() &&
           std::isspace(static_cast<unsigned char>(key.back())) != 0)
      key.pop_back();
    std::string value = line.substr(eq + 1);
    std::istringstream words(value);
    if (section == "layers" && key == "layer") {
      std::vector<std::string> mods;
      std::string mod;
      while (words >> mod) {
        if (!seen_modules.insert(mod).second)
          throw std::runtime_error("tvbf-check.conf:" +
                                   std::to_string(line_no) + ": module \"" +
                                   mod + "\" listed in two layers");
        mods.push_back(mod);
      }
      if (mods.empty())
        throw std::runtime_error("tvbf-check.conf:" + std::to_string(line_no) +
                                 ": empty layer");
      config.layers.push_back(std::move(mods));
    } else if (section == "atomics" && key == "allow_implicit") {
      std::string path;
      words >> path;
      config.atomics_allow_implicit.push_back(path);
    } else if (section == "threads" && key == "allow") {
      std::string path;
      words >> path;
      config.thread_allow.push_back(path);
    } else if (section == "instruments" && key == "prefix") {
      std::string prefix;
      words >> prefix;
      config.instrument_prefixes.push_back(prefix);
    } else {
      throw std::runtime_error("tvbf-check.conf:" + std::to_string(line_no) +
                               ": unknown key \"" + key + "\" in section [" +
                               section + "]");
    }
  }
  if (config.layers.empty())
    throw std::runtime_error("tvbf-check.conf: no [layers] declared");
  return config;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

void collect_atomic_names(const std::string& content,
                          std::set<std::string>& out) {
  const Stripped stripped = strip(content);
  const std::string& text = stripped.text;
  const std::string needle = "std::atomic";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    std::size_t i = pos + needle.size();
    pos = i;
    // Accept std::atomic_bool and friends as well as std::atomic<...>.
    while (i < text.size() && is_ident(text[i])) ++i;
    i = skip_ws(text, i);
    if (i < text.size() && text[i] == '<') {
      int depth = 0;
      while (i < text.size()) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    }
    i = skip_ws(text, i);
    while (i < text.size() && (text[i] == '&' || text[i] == '*'))
      i = skip_ws(text, i + 1);
    const std::size_t name_begin = i;
    while (i < text.size() && is_ident(text[i])) ++i;
    if (i > name_begin) out.insert(text.substr(name_begin, i - name_begin));
  }
}

std::vector<Finding> check_file(const Config& config, const std::string& path,
                                const std::string& content,
                                const std::set<std::string>& atomic_names) {
  std::vector<Finding> findings;
  const Stripped stripped = strip(content);
  PassContext ctx{config, path, content, stripped, atomic_names, findings};
  const bool library = starts_with(path, "src/");
  if (library) {
    pass_layering(ctx);
    pass_pragma_once(ctx);
    pass_banned_calls(ctx);
    pass_naked_new_delete(ctx);
    pass_threads(ctx);
    pass_instruments(ctx);
  }
  pass_atomics(ctx);
  pass_require_side_effects(ctx);
  return findings;
}

std::vector<Finding> check_tree(const Config& config,
                                const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::pair<std::string, std::string>> sources;  // relpath, text
  sources.reserve(files.size());
  std::set<std::string> atomic_names;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = fs::relative(file, root).generic_string();
    sources.emplace_back(std::move(rel), buf.str());
    collect_atomic_names(sources.back().second, atomic_names);
  }
  for (const auto& [rel, text] : sources) {
    auto file_findings = check_file(config, rel, text, atomic_names);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  // Every src/ module must be ranked, or the layering pass silently skips
  // its edges.
  const auto layers = layer_index(config);
  const fs::path src = fs::path(root) / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::directory_iterator(src)) {
      if (!entry.is_directory()) continue;
      const std::string mod = entry.path().filename().string();
      if (layers.find(mod) == layers.end()) {
        findings.push_back({"src/" + mod, 1, "layering",
                            "module \"" + mod +
                                "\" is not assigned to any layer in "
                                "tvbf-check.conf"});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace tvbf::check
