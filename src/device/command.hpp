// Typed command set of the device layer.
//
// Every hot-path operation of the repo — the GEMM family behind the
// tensor/nn/quant matmuls, the SAME-conv2d forward/backward kernels, the
// ToF-plan gather and the DAS apply — is expressed as a plain-struct
// command over raw pointers and dimensions. A CommandEncoder records
// commands into a CommandList; a device::Device consumes the list, either
// executing it (CpuDevice, AccelDevice) or pricing it (estimate_seconds,
// which reads only the dimensions — commands encoded with null pointers
// are legal as estimate-only cost probes and must never be submitted).
//
// The command structs sit below every compute module: they depend only on
// kernels/ (Conv2dShape) and common/ (Interp), so tensor, dsp, nn,
// beamform, runtime and serve can all encode against them without cycles.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/interp.hpp"
#include "kernels/conv.hpp"

namespace tvbf::device {

// ---- GEMM family -----------------------------------------------------------

/// C = A.B with a (m, k), b (k, n), c (m, n), all row-major packed.
struct GemmCmd {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  std::int64_t m = 0, k = 0, n = 0;
};

/// Per-batch C[i] = A[i].B[i] (or A[i].B[i]^T when transpose_b): a is
/// (batch, m, k); b is (batch, k, n), or (batch, n, k) transposed; c is
/// (batch, m, n).
struct BatchedGemmCmd {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  std::int64_t batch = 0, m = 0, k = 0, n = 0;
  bool transpose_b = false;
};

/// C += A^T.B with a (m, k), b (m, n), c (k, n) — the dB shape of the
/// matmul backward pass.
struct GemmTnCmd {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  std::int64_t m = 0, k = 0, n = 0;
};

// ---- SAME conv2d -----------------------------------------------------------

/// out = conv2d_same(in, kernel); overwrites out.
struct Conv2dForwardCmd {
  const float* in = nullptr;
  const float* kernel = nullptr;
  float* out = nullptr;
  kernels::Conv2dShape shape;
};

/// gb(co) += sum_{h,w} dy(h, w, co).
struct Conv2dBackwardBiasCmd {
  const float* dy = nullptr;
  float* gb = nullptr;
  kernels::Conv2dShape shape;
};

/// gk += d(conv)/d(kernel) contraction of in with dy.
struct Conv2dBackwardKernelCmd {
  const float* in = nullptr;
  const float* dy = nullptr;
  float* gk = nullptr;
  kernels::Conv2dShape shape;
};

/// gx += d(conv)/d(input) contraction of kernel with dy.
struct Conv2dBackwardInputCmd {
  const float* kernel = nullptr;
  const float* dy = nullptr;
  float* gx = nullptr;
  kernels::Conv2dShape shape;
};

// ---- Beamforming -----------------------------------------------------------

/// Gathers a ToF plan over channel-major RF lines into a (nz, nx, nch)
/// cube. idx/frac are the plan tables (nz * nx * nch entries, pixel-major);
/// lines_re/lines_im are (nch, nsamples) contiguous channel lines (im may
/// be null for RF cubes, then out_im must be null too). Entry encoding
/// follows the plan builder's contract exactly:
///   idx == kOutOfRange              -> the sample is 0
///   idx >= 0, interp == kCubic      -> interior Catmull-Rom at idx
///   idx >= 0, interp == kLinear     -> linear at idx
///   idx <= kLinearBias              -> linear fallback at (kLinearBias - idx)
struct TofGatherCmd {
  static constexpr std::int32_t kOutOfRange = -1;
  static constexpr std::int32_t kLinearBias = -2;

  const std::int32_t* idx = nullptr;
  const float* frac = nullptr;
  const float* lines_re = nullptr;
  const float* lines_im = nullptr;
  float* out_re = nullptr;
  float* out_im = nullptr;
  std::int64_t nz = 0, nx = 0, nch = 0, nsamples = 0;
  Interp interp = Interp::kLinear;
};

/// Weighted channel sum of a ToF cube (DAS apply). re/im are (nz, nx, nch)
/// cube planes (im null for RF); out is (nz, nx) beamformed RF when im is
/// null, interleaved (nz, nx, 2) IQ otherwise. Apodization weights stay
/// with the caller: `weights(ctx, iz, ix, w)` must fill w with nch per-
/// channel weights for that pixel (w is a reusable per-row scratch vector,
/// mirroring the pre-refactor loop's allocation pattern).
struct DasApplyCmd {
  const float* re = nullptr;
  const float* im = nullptr;
  float* out = nullptr;
  std::int64_t nz = 0, nx = 0, nch = 0;
  const void* ctx = nullptr;
  void (*weights)(const void* ctx, std::int64_t iz, std::int64_t ix,
                  std::vector<float>& w) = nullptr;
};

// ---- Command list / encoder ------------------------------------------------

using Command =
    std::variant<GemmCmd, BatchedGemmCmd, GemmTnCmd, Conv2dForwardCmd,
                 Conv2dBackwardBiasCmd, Conv2dBackwardKernelCmd,
                 Conv2dBackwardInputCmd, TofGatherCmd, DasApplyCmd>;

using CommandList = std::vector<Command>;

/// Records commands in submission order. The encoder is cheap and
/// stack-local by design: encode, finish(), submit.
class CommandEncoder {
 public:
  CommandEncoder& encode(Command cmd) {
    list_.push_back(std::move(cmd));
    return *this;
  }

  CommandEncoder& gemm(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t k, std::int64_t n) {
    return encode(GemmCmd{a, b, c, m, k, n});
  }

  CommandEncoder& batched_gemm(const float* a, const float* b, float* c,
                               std::int64_t batch, std::int64_t m,
                               std::int64_t k, std::int64_t n,
                               bool transpose_b = false) {
    return encode(BatchedGemmCmd{a, b, c, batch, m, k, n, transpose_b});
  }

  CommandEncoder& gemm_tn(const float* a, const float* b, float* c,
                          std::int64_t m, std::int64_t k, std::int64_t n) {
    return encode(GemmTnCmd{a, b, c, m, k, n});
  }

  std::size_t size() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

  /// Moves the recorded list out; the encoder is empty afterwards.
  CommandList finish() { return std::move(list_); }

 private:
  CommandList list_;
};

}  // namespace tvbf::device
