// Reference CPU backend.
//
// Executes every command with the blocked kernels in src/kernels/ and the
// exact loop structures (chunking, grain sizes, double accumulators) the
// pre-refactor callers used inline, so output through CpuDevice is
// bit-identical to the old direct-call paths — test_device gates this.
//
// The cost model is deliberately NOT tied to the host (hardware_threads,
// clock): a fixed documented MAC throughput plus small per-command and
// per-list overheads, so cost-aware batching decisions made against
// CpuDevice estimates are deterministic across machines.
#pragma once

#include "device/device.hpp"

namespace tvbf::device {

class CpuDevice : public Device {
 public:
  /// Modeled sustained MAC throughput (order-of-magnitude for a desktop
  /// core complex running the blocked f32 kernels).
  static constexpr double kMacsPerSecond = 20e9;
  /// Modeled per-command dispatch overhead (kernel entry, pool fan-out).
  static constexpr double kCommandOverheadSeconds = 2e-6;
  /// Modeled per-list overhead (allocation, graph-node bookkeeping around
  /// one dispatched op group).
  static constexpr double kListOverheadSeconds = 20e-6;

  std::string name() const override { return "cpu"; }

  /// Prices one command on the CPU model (compute + per-command overhead).
  static double estimate_command_seconds(const Command& cmd);

 protected:
  void execute(const CommandList& list) override;
  double estimate_list(const CommandList& list) const override;
};

}  // namespace tvbf::device
