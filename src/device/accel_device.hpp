// Modeled-accelerator backend.
//
// AccelDevice is the cycle model in src/accel/ wearing the Device
// interface: submit() executes on the CPU reference path (outputs stay
// bit-identical to CpuDevice — there is no FPGA to run on, see DESIGN.md),
// while estimate_seconds() prices the list on the 4-PE / 16-MAC array at
// 100 MHz plus a per-list host->accelerator dispatch overhead (DMA of the
// operands and one invocation round trip, paid once per submitted list).
//
// That dispatch term is what makes batching economics differ between
// backends: stacking B frames into one list amortizes ~1 ms across B
// frames on the accelerator, whereas the CPU's per-list cost is ~20 us —
// so serve::InferenceBatcher derives a much larger preferred batch from
// AccelDevice estimates than from CpuDevice ones.
#pragma once

#include "accel/accelerator.hpp"
#include "device/cpu_device.hpp"
#include "device/device.hpp"

namespace tvbf::device {

class AccelDevice : public Device {
 public:
  /// Modeled host->accelerator round trip per submitted command list
  /// (operand DMA + invocation + readback posting), amortized across
  /// everything stacked into the list.
  static constexpr double kDispatchOverheadSeconds = 1e-3;

  explicit AccelDevice(accel::AccelConfig config = {}) : sim_(config) {}

  std::string name() const override { return "accel"; }

  const accel::AcceleratorSim& simulator() const { return sim_; }

  /// Modeled cycles for one command on the PE array.
  std::int64_t command_cycles(const Command& cmd) const;

 protected:
  void execute(const CommandList& list) override;
  double estimate_list(const CommandList& list) const override;

 private:
  accel::AcceleratorSim sim_;
  CpuDevice cpu_;  ///< functional execution (bit-identical reference path)
};

}  // namespace tvbf::device
