// Device interface: one backend boundary for every hot-path kernel.
//
// A Device consumes CommandLists (see command.hpp) two ways: submit()
// executes the list synchronously, estimate_seconds() prices it from the
// command dimensions alone. CpuDevice is the reference backend — it runs
// the exact blocked kernels the callers used to invoke directly, so
// routing through it is bit-identical to the pre-refactor direct calls.
// AccelDevice executes on CPU too (identical output) but prices lists with
// the accel/ cycle model, which the serving layer uses for cost-aware
// batch sizing.
//
// Routing: compute entry points (tensor_ops, nn ops, DAS, ToF apply) are
// free functions, so the active backend is a thread-local — current()
// returns the innermost ScopedDevice on this thread, falling back to the
// process-wide CpuDevice (cpu()). The runtime/serving layers install a
// ScopedDevice around each stage they drive, which is how a per-session
// PipelineConfig::device reaches the kernels under it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "device/command.hpp"

namespace tvbf::device {

/// Abstract command-list backend.
class Device {
 public:
  /// Lifetime usage counters (lists/commands submitted for execution;
  /// estimate-only probes are not counted).
  struct Stats {
    std::int64_t lists = 0;
    std::int64_t commands = 0;
  };

  virtual ~Device() = default;

  virtual std::string name() const = 0;

  /// Executes the list synchronously, in order, on the calling thread
  /// (backends may fan individual commands out across the common pool).
  void submit(const CommandList& list);

  /// Predicted wall-clock seconds to execute `list` on this backend. Pure
  /// dimension arithmetic: safe on lists whose pointers are null (cost
  /// probes) and deterministic across hosts.
  double estimate_seconds(const CommandList& list) const {
    return estimate_list(list);
  }

  Stats stats() const {
    return {lists_.load(std::memory_order_relaxed),
            commands_.load(std::memory_order_relaxed)};
  }

 protected:
  virtual void execute(const CommandList& list) = 0;
  virtual double estimate_list(const CommandList& list) const = 0;

 private:
  std::atomic<std::int64_t> lists_{0};
  std::atomic<std::int64_t> commands_{0};
};

/// Multiply-accumulate count of one command / list (shared by the backend
/// cost models and tests). Elementwise gathers count one MAC per tap.
std::int64_t command_macs(const Command& cmd);
std::int64_t list_macs(const CommandList& list);

/// Number of Command alternatives (the variant size). Telemetry attributes
/// each submit() to the kind of the list's first command.
inline constexpr std::size_t kNumCommandKinds = std::variant_size_v<Command>;

/// Short stable name for a Command alternative, by variant index (e.g.
/// "gemm", "tof_gather"); "unknown" past the end.
const char* command_kind_name(std::size_t kind);

/// The process-wide reference CpuDevice every thread falls back to.
Device& cpu();

/// cpu() as a non-owning shared_ptr, for configs that hold device handles.
std::shared_ptr<Device> cpu_shared();

/// The calling thread's active device: the innermost live ScopedDevice,
/// else cpu().
Device& current();

/// RAII thread-local backend override (nests; restores on destruction).
class ScopedDevice {
 public:
  explicit ScopedDevice(Device& device);
  ~ScopedDevice();
  ScopedDevice(const ScopedDevice&) = delete;
  ScopedDevice& operator=(const ScopedDevice&) = delete;

 private:
  Device* previous_;
};

}  // namespace tvbf::device
