#include "device/device.hpp"

#include "device/cpu_device.hpp"

namespace tvbf::device {

namespace {
thread_local Device* t_current = nullptr;
}  // namespace

void Device::submit(const CommandList& list) {
  execute(list);
  lists_.fetch_add(1, std::memory_order_relaxed);
  commands_.fetch_add(static_cast<std::int64_t>(list.size()),
                      std::memory_order_relaxed);
}

std::int64_t command_macs(const Command& cmd) {
  struct Macs {
    std::int64_t operator()(const GemmCmd& c) const { return c.m * c.k * c.n; }
    std::int64_t operator()(const BatchedGemmCmd& c) const {
      return c.batch * c.m * c.k * c.n;
    }
    std::int64_t operator()(const GemmTnCmd& c) const {
      return c.m * c.k * c.n;
    }
    std::int64_t operator()(const Conv2dForwardCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.kh * s.kw * s.Ci * s.Co;
    }
    std::int64_t operator()(const Conv2dBackwardBiasCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.Co;
    }
    std::int64_t operator()(const Conv2dBackwardKernelCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.kh * s.kw * s.Ci * s.Co;
    }
    std::int64_t operator()(const Conv2dBackwardInputCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.kh * s.kw * s.Ci * s.Co;
    }
    std::int64_t operator()(const TofGatherCmd& c) const {
      // Up to 4 taps (Catmull-Rom) per gathered sample, both planes.
      const std::int64_t taps = c.interp == dsp::Interp::kCubic ? 4 : 2;
      const std::int64_t planes = c.lines_im != nullptr ? 2 : 1;
      return c.nz * c.nx * c.nch * taps * planes;
    }
    std::int64_t operator()(const DasApplyCmd& c) const {
      const std::int64_t planes = c.im != nullptr ? 2 : 1;
      return c.nz * c.nx * c.nch * planes;
    }
  };
  return std::visit(Macs{}, cmd);
}

std::int64_t list_macs(const CommandList& list) {
  std::int64_t total = 0;
  for (const Command& cmd : list) total += command_macs(cmd);
  return total;
}

Device& cpu() {
  static CpuDevice instance;
  return instance;
}

std::shared_ptr<Device> cpu_shared() {
  // Aliasing a static: the process-wide device outlives every holder.
  return {std::shared_ptr<Device>{}, &cpu()};
}

Device& current() { return t_current != nullptr ? *t_current : cpu(); }

ScopedDevice::ScopedDevice(Device& device) : previous_(t_current) {
  t_current = &device;
}

ScopedDevice::~ScopedDevice() { t_current = previous_; }

}  // namespace tvbf::device
