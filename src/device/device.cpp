#include "device/device.hpp"

#include <chrono>
#include <cmath>
#include <string>

#include "device/cpu_device.hpp"
#include "obs/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace tvbf::device {

namespace {
thread_local Device* t_current = nullptr;

// Per-kind submit instruments, resolved once. Measured and estimated
// nanoseconds accumulate side by side so a snapshot yields the
// measured-vs-model error per command kind (the calibration signal for
// the cycle-model work).
struct SubmitInstruments {
  telemetry::LatencyHistogram* latency[kNumCommandKinds];
  telemetry::Counter* measured_ns[kNumCommandKinds];
  telemetry::Counter* estimated_ns[kNumCommandKinds];

  SubmitInstruments() {
    auto& reg = telemetry::Registry::instance();
    for (std::size_t i = 0; i < kNumCommandKinds; ++i) {
      const std::string base =
          std::string("device.submit.") + command_kind_name(i);
      latency[i] = &reg.histogram(base + "_s");
      measured_ns[i] = &reg.counter(base + ".measured_ns");
      estimated_ns[i] = &reg.counter(base + ".estimated_ns");
    }
  }
};

SubmitInstruments& submit_instruments() {
  static SubmitInstruments instruments;
  return instruments;
}
}  // namespace

const char* command_kind_name(std::size_t kind) {
  // Order mirrors the Command variant (command.hpp).
  static constexpr const char* kNames[kNumCommandKinds] = {
      "gemm",        "batched_gemm",     "gemm_tn",
      "conv2d_fwd",  "conv2d_bwd_bias",  "conv2d_bwd_kernel",
      "conv2d_bwd_input", "tof_gather",  "das_apply"};
  return kind < kNumCommandKinds ? kNames[kind] : "unknown";
}

void Device::submit(const CommandList& list) {
  if (telemetry::enabled() && !list.empty()) {
    SubmitInstruments& si = submit_instruments();
    const std::size_t kind = list.front().index();
    const double estimated_s = estimate_seconds(list);
    const auto t0 = std::chrono::steady_clock::now();
    execute(list);
    const double measured_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    si.latency[kind]->record(measured_s);
    si.measured_ns[kind]->add(
        static_cast<std::int64_t>(std::llround(measured_s * 1e9)));
    si.estimated_ns[kind]->add(
        static_cast<std::int64_t>(std::llround(estimated_s * 1e9)));
    // A submit far over its cost-model estimate is a calibration outlier
    // worth a post-mortem breadcrumb; the 50 µs floor keeps scheduler
    // noise on micro-submits out of the ring.
    if (measured_s > 2.0 * estimated_s && measured_s > 50e-6) {
      obs::FlightRecorder::instance().record(
          obs::EventKind::kDeviceOverEstimate, -1,
          static_cast<std::int64_t>(std::llround(measured_s * 1e9)),
          static_cast<std::int64_t>(std::llround(estimated_s * 1e9)),
          command_kind_name(kind));
    }
  } else {
    execute(list);
  }
  lists_.fetch_add(1, std::memory_order_relaxed);
  commands_.fetch_add(static_cast<std::int64_t>(list.size()),
                      std::memory_order_relaxed);
}

std::int64_t command_macs(const Command& cmd) {
  struct Macs {
    std::int64_t operator()(const GemmCmd& c) const { return c.m * c.k * c.n; }
    std::int64_t operator()(const BatchedGemmCmd& c) const {
      return c.batch * c.m * c.k * c.n;
    }
    std::int64_t operator()(const GemmTnCmd& c) const {
      return c.m * c.k * c.n;
    }
    std::int64_t operator()(const Conv2dForwardCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.kh * s.kw * s.Ci * s.Co;
    }
    std::int64_t operator()(const Conv2dBackwardBiasCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.Co;
    }
    std::int64_t operator()(const Conv2dBackwardKernelCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.kh * s.kw * s.Ci * s.Co;
    }
    std::int64_t operator()(const Conv2dBackwardInputCmd& c) const {
      const auto& s = c.shape;
      return s.H * s.W * s.kh * s.kw * s.Ci * s.Co;
    }
    std::int64_t operator()(const TofGatherCmd& c) const {
      // Up to 4 taps (Catmull-Rom) per gathered sample, both planes.
      const std::int64_t taps = c.interp == Interp::kCubic ? 4 : 2;
      const std::int64_t planes = c.lines_im != nullptr ? 2 : 1;
      return c.nz * c.nx * c.nch * taps * planes;
    }
    std::int64_t operator()(const DasApplyCmd& c) const {
      const std::int64_t planes = c.im != nullptr ? 2 : 1;
      return c.nz * c.nx * c.nch * planes;
    }
  };
  return std::visit(Macs{}, cmd);
}

std::int64_t list_macs(const CommandList& list) {
  std::int64_t total = 0;
  for (const Command& cmd : list) total += command_macs(cmd);
  return total;
}

Device& cpu() {
  static CpuDevice instance;
  return instance;
}

std::shared_ptr<Device> cpu_shared() {
  // Aliasing a static: the process-wide device outlives every holder.
  return {std::shared_ptr<Device>{}, &cpu()};
}

Device& current() { return t_current != nullptr ? *t_current : cpu(); }

ScopedDevice::ScopedDevice(Device& device) : previous_(t_current) {
  t_current = &device;
}

ScopedDevice::~ScopedDevice() { t_current = previous_; }

}  // namespace tvbf::device
