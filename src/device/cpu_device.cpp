#include "device/cpu_device.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "kernels/gemm.hpp"

namespace tvbf::device {

namespace {

// Gathers one plan entry from a contiguous channel line (moved verbatim
// from the pre-refactor us::TofPlan::apply; the encoding contract lives on
// TofGatherCmd).
inline float gather(const float* line, std::int32_t idx, float frac,
                    Interp interp) {
  if (idx == TofGatherCmd::kOutOfRange) return 0.0f;
  if (idx >= 0 && interp == Interp::kCubic) {
    const double u = frac;
    const double p0 = line[idx - 1], p1 = line[idx], p2 = line[idx + 1],
                 p3 = line[idx + 2];
    const double a = -0.5 * p0 + 1.5 * p1 - 1.5 * p2 + 0.5 * p3;
    const double b = p0 - 2.5 * p1 + 2.0 * p2 - 0.5 * p3;
    const double c = -0.5 * p0 + 0.5 * p2;
    return static_cast<float>(((a * u + b) * u + c) * u + p1);
  }
  const std::int32_t base =
      idx >= 0 ? idx : TofGatherCmd::kLinearBias - idx;
  const double f = frac;
  return static_cast<float>((1.0 - f) * line[base] + f * line[base + 1]);
}

void run(const GemmCmd& cmd) {
  TVBF_REQUIRE(cmd.a != nullptr && cmd.b != nullptr && cmd.c != nullptr,
               "gemm command has null operands (estimate-only probe?)");
  kernels::gemm(cmd.a, cmd.b, cmd.c, cmd.m, cmd.k, cmd.n);
}

void run(const BatchedGemmCmd& cmd) {
  TVBF_REQUIRE(cmd.a != nullptr && cmd.b != nullptr && cmd.c != nullptr,
               "batched gemm command has null operands");
  const std::int64_t m = cmd.m, k = cmd.k, n = cmd.n;
  const float* a = cmd.a;
  const float* b = cmd.b;
  float* c = cmd.c;
  // Chunk the flat (batch, row) range, then hand each per-batch span of
  // consecutive rows to the blocked kernel in one call.
  parallel_for(
      0, static_cast<std::size_t>(cmd.batch * m),
      [&](std::size_t rb, std::size_t re) {
        std::size_t r = rb;
        while (r < re) {
          const auto batch = static_cast<std::int64_t>(r) / m;
          const auto row = static_cast<std::int64_t>(r) % m;
          const auto rows = std::min<std::int64_t>(
              static_cast<std::int64_t>(re - r), m - row);
          if (cmd.transpose_b) {
            kernels::gemm_nt_rows(a + batch * m * k, b + batch * n * k,
                                  c + batch * m * n, m, k, n, row,
                                  row + rows);
          } else {
            kernels::gemm_rows(a + batch * m * k, b + batch * k * n,
                               c + batch * m * n, m, k, n, row, row + rows);
          }
          r += static_cast<std::size_t>(rows);
        }
      },
      /*min_grain=*/8);
}

void run(const GemmTnCmd& cmd) {
  TVBF_REQUIRE(cmd.a != nullptr && cmd.b != nullptr && cmd.c != nullptr,
               "gemm_tn command has null operands");
  kernels::gemm_tn_accumulate(cmd.a, cmd.b, cmd.c, cmd.m, cmd.k, cmd.n);
}

void run(const Conv2dForwardCmd& cmd) {
  TVBF_REQUIRE(cmd.in != nullptr && cmd.kernel != nullptr &&
                   cmd.out != nullptr,
               "conv2d forward command has null operands");
  kernels::conv2d_same_forward(cmd.in, cmd.kernel, cmd.out, cmd.shape);
}

void run(const Conv2dBackwardBiasCmd& cmd) {
  TVBF_REQUIRE(cmd.dy != nullptr && cmd.gb != nullptr,
               "conv2d backward-bias command has null operands");
  kernels::conv2d_same_backward_bias(cmd.dy, cmd.gb, cmd.shape);
}

void run(const Conv2dBackwardKernelCmd& cmd) {
  TVBF_REQUIRE(cmd.in != nullptr && cmd.dy != nullptr && cmd.gk != nullptr,
               "conv2d backward-kernel command has null operands");
  kernels::conv2d_same_backward_kernel(cmd.in, cmd.dy, cmd.gk, cmd.shape);
}

void run(const Conv2dBackwardInputCmd& cmd) {
  TVBF_REQUIRE(cmd.kernel != nullptr && cmd.dy != nullptr &&
                   cmd.gx != nullptr,
               "conv2d backward-input command has null operands");
  kernels::conv2d_same_backward_input(cmd.kernel, cmd.dy, cmd.gx, cmd.shape);
}

void run(const TofGatherCmd& cmd) {
  TVBF_REQUIRE(cmd.idx != nullptr && cmd.frac != nullptr &&
                   cmd.lines_re != nullptr && cmd.out_re != nullptr,
               "tof gather command has null operands");
  TVBF_REQUIRE((cmd.lines_im != nullptr) == (cmd.out_im != nullptr),
               "tof gather imag planes must be both set or both null");
  const std::int64_t nx = cmd.nx, nch = cmd.nch, n = cmd.nsamples;
  const Interp interp = cmd.interp;
  parallel_for_each(0, static_cast<std::size_t>(cmd.nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      const std::size_t row =
          static_cast<std::size_t>((iz * nx + ix) * nch);
      float* out_re = cmd.out_re + static_cast<std::int64_t>(row);
      float* out_im = cmd.out_im != nullptr
                          ? cmd.out_im + static_cast<std::int64_t>(row)
                          : nullptr;
      for (std::int64_t e = 0; e < nch; ++e) {
        const std::size_t i = row + static_cast<std::size_t>(e);
        const float* line =
            cmd.lines_re + static_cast<std::size_t>(e) *
                               static_cast<std::size_t>(n);
        out_re[e] = gather(line, cmd.idx[i], cmd.frac[i], interp);
        if (out_im != nullptr) {
          const float* line_im =
              cmd.lines_im + static_cast<std::size_t>(e) *
                                 static_cast<std::size_t>(n);
          out_im[e] = gather(line_im, cmd.idx[i], cmd.frac[i], interp);
        }
      }
    }
  }, /*min_grain=*/1);
}

void run(const DasApplyCmd& cmd) {
  TVBF_REQUIRE(cmd.re != nullptr && cmd.out != nullptr &&
                   cmd.weights != nullptr,
               "das apply command has null operands");
  const std::int64_t nx = cmd.nx, nch = cmd.nch;
  if (cmd.im == nullptr) {
    parallel_for_each(0, static_cast<std::size_t>(cmd.nz),
                      [&](std::size_t zi) {
      const auto iz = static_cast<std::int64_t>(zi);
      std::vector<float> w;
      for (std::int64_t ix = 0; ix < nx; ++ix) {
        cmd.weights(cmd.ctx, iz, ix, w);
        const float* re = cmd.re + (iz * nx + ix) * nch;
        double acc_re = 0.0;
        for (std::int64_t e = 0; e < nch; ++e)
          acc_re +=
              static_cast<double>(w[static_cast<std::size_t>(e)]) * re[e];
        cmd.out[iz * nx + ix] = static_cast<float>(acc_re);
      }
    }, /*min_grain=*/4);
    return;
  }
  parallel_for_each(0, static_cast<std::size_t>(cmd.nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    std::vector<float> w;
    for (std::int64_t ix = 0; ix < nx; ++ix) {
      cmd.weights(cmd.ctx, iz, ix, w);
      const float* re = cmd.re + (iz * nx + ix) * nch;
      const float* im = cmd.im + (iz * nx + ix) * nch;
      double acc_re = 0.0, acc_im = 0.0;
      for (std::int64_t e = 0; e < nch; ++e) {
        const auto we = static_cast<double>(w[static_cast<std::size_t>(e)]);
        acc_re += we * re[e];
        acc_im += we * im[e];
      }
      cmd.out[(iz * nx + ix) * 2] = static_cast<float>(acc_re);
      cmd.out[(iz * nx + ix) * 2 + 1] = static_cast<float>(acc_im);
    }
  }, /*min_grain=*/4);
}

}  // namespace

void CpuDevice::execute(const CommandList& list) {
  for (const Command& cmd : list)
    std::visit([](const auto& c) { run(c); }, cmd);
}

double CpuDevice::estimate_command_seconds(const Command& cmd) {
  return static_cast<double>(command_macs(cmd)) / kMacsPerSecond +
         kCommandOverheadSeconds;
}

double CpuDevice::estimate_list(const CommandList& list) const {
  double s = kListOverheadSeconds;
  for (const Command& cmd : list) s += estimate_command_seconds(cmd);
  return s;
}

}  // namespace tvbf::device
