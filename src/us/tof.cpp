#include "us/tof.hpp"

#include <algorithm>
#include <cmath>

#include "us/tof_plan.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::us {

std::int64_t ImagingGrid::column_of(double x) const {
  const auto ix = static_cast<std::int64_t>(std::llround((x - x0) / dx));
  return std::clamp<std::int64_t>(ix, 0, nx - 1);
}

std::int64_t ImagingGrid::row_of(double z) const {
  const auto iz = static_cast<std::int64_t>(std::llround((z - z0) / dz));
  return std::clamp<std::int64_t>(iz, 0, nz - 1);
}

void ImagingGrid::validate() const {
  TVBF_REQUIRE(nx >= 1 && nz >= 1, "grid must have at least one pixel");
  TVBF_REQUIRE(dx > 0.0 && dz > 0.0, "grid spacings must be positive");
  TVBF_REQUIRE(z0 > 0.0, "grid must start below the array (z0 > 0)");
}

ImagingGrid ImagingGrid::paper(const Probe& probe) {
  ImagingGrid g;
  g.nx = 128;
  g.nz = 368;
  g.x0 = probe.element_x(0);
  g.dx = probe.aperture() / static_cast<double>(g.nx - 1);
  g.z0 = 5e-3;
  g.dz = (42e-3 - 5e-3) / static_cast<double>(g.nz - 1);
  return g;
}

ImagingGrid ImagingGrid::reduced(const Probe& probe, std::int64_t nz,
                                 std::int64_t nx, double z_min, double z_max) {
  TVBF_REQUIRE(nz >= 2 && nx >= 2, "reduced grid needs nz, nx >= 2");
  TVBF_REQUIRE(z_max > z_min && z_min > 0.0, "invalid depth range");
  ImagingGrid g;
  g.nx = nx;
  g.nz = nz;
  g.x0 = probe.element_x(0);
  g.dx = probe.aperture() / static_cast<double>(nx - 1);
  g.z0 = z_min;
  g.dz = (z_max - z_min) / static_cast<double>(nz - 1);
  return g;
}

double two_way_delay(double x, double z, double xe, double sin_theta,
                     double cos_theta, double tx_offset, double sound_speed) {
  const double t_tx = (z * cos_theta + x * sin_theta - tx_offset) / sound_speed;
  const double dx = x - xe;
  const double t_rx = std::sqrt(dx * dx + z * z) / sound_speed;
  return t_tx + t_rx;
}

TofCube tof_correct(const Acquisition& acq, const ImagingGrid& grid,
                    const TofParams& params) {
  grid.validate();
  // One-shot path: build the geometric plan and apply it to this frame.
  // Streaming callers (runtime pipeline, compounding, dataset generation)
  // fetch the same plan from us::PlanCache instead and amortize the build
  // across frames; results are identical either way.
  const us::TofPlan plan = us::TofPlan::build_for(acq, grid, params.interp);
  return plan.apply(acq, params.analytic);
}

float normalize_cube(TofCube& cube) {
  float m = max_abs(cube.real);
  if (cube.is_analytic()) m = std::max(m, max_abs(cube.imag));
  if (m == 0.0f) return 0.0f;
  const float inv = 1.0f / m;
  for (auto& v : cube.real.data()) v *= inv;
  if (cube.is_analytic())
    for (auto& v : cube.imag.data()) v *= inv;
  return m;
}

}  // namespace tvbf::us
