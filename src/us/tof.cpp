#include "us/tof.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "dsp/hilbert.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::us {

std::int64_t ImagingGrid::column_of(double x) const {
  const auto ix = static_cast<std::int64_t>(std::llround((x - x0) / dx));
  return std::clamp<std::int64_t>(ix, 0, nx - 1);
}

std::int64_t ImagingGrid::row_of(double z) const {
  const auto iz = static_cast<std::int64_t>(std::llround((z - z0) / dz));
  return std::clamp<std::int64_t>(iz, 0, nz - 1);
}

void ImagingGrid::validate() const {
  TVBF_REQUIRE(nx >= 1 && nz >= 1, "grid must have at least one pixel");
  TVBF_REQUIRE(dx > 0.0 && dz > 0.0, "grid spacings must be positive");
  TVBF_REQUIRE(z0 > 0.0, "grid must start below the array (z0 > 0)");
}

ImagingGrid ImagingGrid::paper(const Probe& probe) {
  ImagingGrid g;
  g.nx = 128;
  g.nz = 368;
  g.x0 = probe.element_x(0);
  g.dx = probe.aperture() / static_cast<double>(g.nx - 1);
  g.z0 = 5e-3;
  g.dz = (42e-3 - 5e-3) / static_cast<double>(g.nz - 1);
  return g;
}

ImagingGrid ImagingGrid::reduced(const Probe& probe, std::int64_t nz,
                                 std::int64_t nx, double z_min, double z_max) {
  TVBF_REQUIRE(nz >= 2 && nx >= 2, "reduced grid needs nz, nx >= 2");
  TVBF_REQUIRE(z_max > z_min && z_min > 0.0, "invalid depth range");
  ImagingGrid g;
  g.nx = nx;
  g.nz = nz;
  g.x0 = probe.element_x(0);
  g.dx = probe.aperture() / static_cast<double>(nx - 1);
  g.z0 = z_min;
  g.dz = (z_max - z_min) / static_cast<double>(nz - 1);
  return g;
}

double two_way_delay(double x, double z, double xe, double sin_theta,
                     double cos_theta, double tx_offset, double sound_speed) {
  const double t_tx = (z * cos_theta + x * sin_theta - tx_offset) / sound_speed;
  const double dx = x - xe;
  const double t_rx = std::sqrt(dx * dx + z * z) / sound_speed;
  return t_tx + t_rx;
}

TofCube tof_correct(const Acquisition& acq, const ImagingGrid& grid,
                    const TofParams& params) {
  grid.validate();
  TVBF_REQUIRE(acq.rf.rank() == 2 && acq.num_samples() > 1,
               "acquisition holds no RF data");
  const std::int64_t n_samples = acq.num_samples();
  const std::int64_t n_ch = acq.num_channels();
  TVBF_REQUIRE(n_ch == acq.probe.num_elements,
               "RF channel count does not match the probe");

  const double fs = acq.probe.sampling_frequency;
  const double c = acq.probe.sound_speed;
  const auto xs = acq.probe.element_positions();
  const double sin_th = std::sin(acq.steering_angle_rad);
  const double cos_th = std::cos(acq.steering_angle_rad);
  const double tx_offset =
      sin_th >= 0.0 ? xs.front() * sin_th : xs.back() * sin_th;

  // Re-layout channel data as (nch, nsamples) so per-channel interpolation
  // reads contiguously; optionally build the analytic signal per channel.
  std::vector<std::vector<float>> ch_re(static_cast<std::size_t>(n_ch));
  std::vector<std::vector<float>> ch_im;
  if (params.analytic) ch_im.resize(static_cast<std::size_t>(n_ch));
  parallel_for_each(0, static_cast<std::size_t>(n_ch), [&](std::size_t e) {
    std::vector<float> line(static_cast<std::size_t>(n_samples));
    for (std::int64_t i = 0; i < n_samples; ++i)
      line[static_cast<std::size_t>(i)] =
          acq.rf.raw()[i * n_ch + static_cast<std::int64_t>(e)];
    if (params.analytic) {
      const auto a = dsp::analytic_signal(line);
      ch_re[e].resize(a.size());
      ch_im[e].resize(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ch_re[e][i] = static_cast<float>(a[i].real());
        ch_im[e][i] = static_cast<float>(a[i].imag());
      }
    } else {
      ch_re[e] = std::move(line);
    }
  }, /*min_grain=*/1);

  TofCube cube;
  cube.grid = grid;
  cube.real = Tensor({grid.nz, grid.nx, n_ch});
  if (params.analytic) cube.imag = Tensor({grid.nz, grid.nx, n_ch});

  parallel_for_each(0, static_cast<std::size_t>(grid.nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    const double z = grid.z_at(iz);
    for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
      const double x = grid.x_at(ix);
      float* out_re = cube.real.raw() + (iz * grid.nx + ix) * n_ch;
      float* out_im =
          params.analytic ? cube.imag.raw() + (iz * grid.nx + ix) * n_ch
                          : nullptr;
      for (std::int64_t e = 0; e < n_ch; ++e) {
        const double tau = two_way_delay(
            x, z, xs[static_cast<std::size_t>(e)], sin_th, cos_th, tx_offset, c);
        const double idx = (tau - acq.t0) * fs;
        out_re[e] = dsp::interp(ch_re[static_cast<std::size_t>(e)], idx,
                                params.interp);
        if (out_im != nullptr)
          out_im[e] = dsp::interp(ch_im[static_cast<std::size_t>(e)], idx,
                                  params.interp);
      }
    }
  }, /*min_grain=*/1);

  return cube;
}

float normalize_cube(TofCube& cube) {
  float m = max_abs(cube.real);
  if (cube.is_analytic()) m = std::max(m, max_abs(cube.imag));
  if (m == 0.0f) return 0.0f;
  const float inv = 1.0f / m;
  for (auto& v : cube.real.data()) v *= inv;
  if (cube.is_analytic())
    for (auto& v : cube.imag.data()) v *= inv;
  return m;
}

}  // namespace tvbf::us
