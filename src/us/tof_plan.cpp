#include "us/tof_plan.hpp"

#include <bit>
#include <cmath>
#include <cstddef>
#include <span>

#include "common/parallel.hpp"
#include "device/device.hpp"
#include "dsp/hilbert.hpp"

namespace tvbf::us {

namespace {

using detail::kTofLinearBias;
using detail::kTofOutOfRange;

// The plan tables are consumed by device::TofGatherCmd; the encoding here
// and the gather in the device backends share one sentinel contract.
static_assert(kTofOutOfRange == device::TofGatherCmd::kOutOfRange);
static_assert(kTofLinearBias == device::TofGatherCmd::kLinearBias);

// Encodes the fractional sample position `t` into a plan entry, mirroring
// the boundary conventions of dsp::interp_linear / dsp::interp_cubic
// exactly: outside [0, n-1] the sample is zero; cubic falls back to linear
// near the edges; t landing on the last sample reads it via frac == 1 so
// the gather never touches x[n] (n >= 2 is guaranteed by build()).
void encode_entry(double t, std::int64_t n, dsp::Interp interp,
                  std::int32_t& idx, float& frac) {
  if (!(t >= 0.0) || t > static_cast<double>(n - 1)) {
    idx = kTofOutOfRange;
    frac = 0.0f;
    return;
  }
  const auto i0 = static_cast<std::int64_t>(t);
  const bool last = i0 + 1 >= n;
  const std::int64_t base = last ? n - 2 : i0;
  const float f = last ? 1.0f
                       : static_cast<float>(t - static_cast<double>(i0));
  if (interp == dsp::Interp::kCubic && !last && i0 != 0 && i0 + 2 < n) {
    idx = static_cast<std::int32_t>(i0);  // interior Catmull-Rom
    frac = f;
    return;
  }
  // Linear entry: in linear plans this is the only non-zero kind (idx >= 0
  // means linear there); cubic plans mark edge fallbacks with the bias.
  idx = interp == dsp::Interp::kCubic
            ? kTofLinearBias - static_cast<std::int32_t>(base)
            : static_cast<std::int32_t>(base);
  frac = f;
}

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

std::size_t hash_double(double v) {
  // Normalize -0.0 so equal keys hash equally.
  if (v == 0.0) v = 0.0;
  return std::hash<std::uint64_t>{}(std::bit_cast<std::uint64_t>(v));
}

}  // namespace

bool TofPlanKey::operator==(const TofPlanKey& o) const {
  return num_elements == o.num_elements && pitch == o.pitch &&
         sampling_frequency == o.sampling_frequency &&
         sound_speed == o.sound_speed &&
         steering_angle_rad == o.steering_angle_rad && t0 == o.t0 &&
         n_samples == o.n_samples && interp == o.interp &&
         grid.x0 == o.grid.x0 && grid.z0 == o.grid.z0 &&
         grid.dx == o.grid.dx && grid.dz == o.grid.dz &&
         grid.nx == o.grid.nx && grid.nz == o.grid.nz;
}

std::size_t hash_key(const TofPlanKey& key) {
  std::size_t h = std::hash<std::int64_t>{}(key.num_elements);
  h = hash_combine(h, hash_double(key.pitch));
  h = hash_combine(h, hash_double(key.sampling_frequency));
  h = hash_combine(h, hash_double(key.sound_speed));
  h = hash_combine(h, hash_double(key.steering_angle_rad));
  h = hash_combine(h, hash_double(key.t0));
  h = hash_combine(h, std::hash<std::int64_t>{}(key.n_samples));
  h = hash_combine(h, hash_double(key.grid.x0));
  h = hash_combine(h, hash_double(key.grid.z0));
  h = hash_combine(h, hash_double(key.grid.dx));
  h = hash_combine(h, hash_double(key.grid.dz));
  h = hash_combine(h, std::hash<std::int64_t>{}(key.grid.nx));
  h = hash_combine(h, std::hash<std::int64_t>{}(key.grid.nz));
  return hash_combine(h, static_cast<std::size_t>(key.interp));
}

TofPlan TofPlan::build(const us::Probe& probe, const us::ImagingGrid& grid,
                       double steering_angle_rad, double t0,
                       std::int64_t n_samples, dsp::Interp interp) {
  probe.validate();
  grid.validate();
  TVBF_REQUIRE(n_samples > 1, "ToF plan needs more than one RF sample");

  TofPlan plan;
  plan.key_.num_elements = probe.num_elements;
  plan.key_.pitch = probe.pitch;
  plan.key_.sampling_frequency = probe.sampling_frequency;
  plan.key_.sound_speed = probe.sound_speed;
  plan.key_.steering_angle_rad = steering_angle_rad;
  plan.key_.t0 = t0;
  plan.key_.n_samples = n_samples;
  plan.key_.grid = grid;
  plan.key_.interp = interp;

  const std::int64_t n_ch = probe.num_elements;
  const double fs = probe.sampling_frequency;
  const double c = probe.sound_speed;
  const auto xs = probe.element_positions();
  const double sin_th = std::sin(steering_angle_rad);
  const double cos_th = std::cos(steering_angle_rad);
  const double tx_offset =
      sin_th >= 0.0 ? xs.front() * sin_th : xs.back() * sin_th;

  plan.idx_.resize(static_cast<std::size_t>(grid.num_pixels() * n_ch));
  plan.frac_.resize(plan.idx_.size());

  parallel_for_each(0, static_cast<std::size_t>(grid.nz), [&](std::size_t zi) {
    const auto iz = static_cast<std::int64_t>(zi);
    const double z = grid.z_at(iz);
    for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
      const double x = grid.x_at(ix);
      const std::size_t row =
          static_cast<std::size_t>((iz * grid.nx + ix) * n_ch);
      for (std::int64_t e = 0; e < n_ch; ++e) {
        const double tau = us::two_way_delay(
            x, z, xs[static_cast<std::size_t>(e)], sin_th, cos_th, tx_offset,
            c);
        encode_entry((tau - t0) * fs, n_samples, interp,
                     plan.idx_[row + static_cast<std::size_t>(e)],
                     plan.frac_[row + static_cast<std::size_t>(e)]);
      }
    }
  }, /*min_grain=*/1);
  return plan;
}

TofPlan TofPlan::build_for(const us::Acquisition& acq,
                           const us::ImagingGrid& grid, dsp::Interp interp) {
  TVBF_REQUIRE(acq.rf.rank() == 2 && acq.num_samples() > 1,
               "acquisition holds no RF data");
  TVBF_REQUIRE(acq.num_channels() == acq.probe.num_elements,
               "RF channel count does not match the probe");
  return build(acq.probe, grid, acq.steering_angle_rad, acq.t0,
               acq.num_samples(), interp);
}

void TofPlan::apply(const us::Acquisition& acq, bool analytic,
                    us::TofCube& out, ChannelWorkspace* workspace) const {
  TVBF_REQUIRE(acq.rf.rank() == 2, "acquisition holds no RF data");
  TVBF_REQUIRE(acq.num_samples() == key_.n_samples &&
                   acq.num_channels() == key_.num_elements,
               "acquisition shape does not match the plan");
  TVBF_REQUIRE(acq.probe.num_elements == key_.num_elements &&
                   acq.probe.pitch == key_.pitch &&
                   acq.probe.sampling_frequency == key_.sampling_frequency &&
                   acq.probe.sound_speed == key_.sound_speed,
               "acquisition probe does not match the plan");
  TVBF_REQUIRE(acq.steering_angle_rad == key_.steering_angle_rad &&
                   acq.t0 == key_.t0,
               "acquisition steering/t0 does not match the plan");

  const std::int64_t n = key_.n_samples;
  const std::int64_t n_ch = key_.num_elements;
  const us::ImagingGrid& grid = key_.grid;

  ChannelWorkspace local;
  ChannelWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.re.resize(static_cast<std::size_t>(n_ch * n));
  if (analytic) ws.im.resize(static_cast<std::size_t>(n_ch * n));

  // Re-layout channel data as (nch, nsamples) so the gather reads each
  // channel contiguously; optionally build the analytic signal per channel.
  parallel_for_each(0, static_cast<std::size_t>(n_ch), [&](std::size_t e) {
    float* re = ws.re.data() + e * static_cast<std::size_t>(n);
    for (std::int64_t i = 0; i < n; ++i)
      re[i] = acq.rf.raw()[i * n_ch + static_cast<std::int64_t>(e)];
    if (analytic) {
      float* im = ws.im.data() + e * static_cast<std::size_t>(n);
      const auto a = dsp::analytic_signal(
          std::span<const float>(re, static_cast<std::size_t>(n)));
      for (std::int64_t i = 0; i < n; ++i) {
        re[i] = static_cast<float>(a[static_cast<std::size_t>(i)].real());
        im[i] = static_cast<float>(a[static_cast<std::size_t>(i)].imag());
      }
    }
  }, /*min_grain=*/1);

  out.grid = grid;
  const Shape cube_shape{grid.nz, grid.nx, n_ch};
  if (out.real.shape() != cube_shape) out.real = Tensor(cube_shape);
  if (analytic) {
    if (out.imag.shape() != cube_shape) out.imag = Tensor(cube_shape);
  } else if (!out.imag.empty()) {
    out.imag = Tensor();
  }

  device::current().submit(
      device::CommandEncoder()
          .encode(device::TofGatherCmd{
              .idx = idx_.data(),
              .frac = frac_.data(),
              .lines_re = ws.re.data(),
              .lines_im = analytic ? ws.im.data() : nullptr,
              .out_re = out.real.raw(),
              .out_im = analytic ? out.imag.raw() : nullptr,
              .nz = grid.nz,
              .nx = grid.nx,
              .nch = n_ch,
              .nsamples = n,
              .interp = key_.interp})
          .finish());
}

us::TofCube TofPlan::apply(const us::Acquisition& acq, bool analytic) const {
  us::TofCube cube;
  apply(acq, analytic, cube);
  return cube;
}

}  // namespace tvbf::us
