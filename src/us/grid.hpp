// Imaging grid: the pixel lattice every beamformer and the network write to.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "us/probe.hpp"

namespace tvbf::us {

/// Regular pixel lattice over (depth z, lateral x).
struct ImagingGrid {
  double x0 = -19e-3;  ///< first column lateral position [m]
  double z0 = 5e-3;    ///< first row depth [m]
  double dx = 0.3e-3;  ///< lateral pixel spacing [m]
  double dz = 0.1e-3;  ///< axial pixel spacing [m]
  std::int64_t nx = 128;  ///< columns (lateral)
  std::int64_t nz = 368;  ///< rows (depth)

  double x_at(std::int64_t ix) const { return x0 + dx * static_cast<double>(ix); }
  double z_at(std::int64_t iz) const { return z0 + dz * static_cast<double>(iz); }
  double x_end() const { return x_at(nx - 1); }
  double z_end() const { return z_at(nz - 1); }
  std::int64_t num_pixels() const { return nx * nz; }

  /// Nearest column index for a lateral position (clamped).
  std::int64_t column_of(double x) const;
  /// Nearest row index for a depth (clamped).
  std::int64_t row_of(double z) const;

  void validate() const;

  /// Paper-scale grid: 368 x 128 pixels spanning the probe aperture,
  /// depths ~5-42 mm (matches the reported frame size).
  static ImagingGrid paper(const Probe& probe);

  /// Reduced grid for fast tests/benches.
  static ImagingGrid reduced(const Probe& probe, std::int64_t nz, std::int64_t nx,
                             double z_min = 5e-3, double z_max = 42e-3);
};

}  // namespace tvbf::us
