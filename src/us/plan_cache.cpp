#include "us/plan_cache.hpp"

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace tvbf::us {

namespace {
constexpr std::size_t kDefaultCapacityBytes = 768ull << 20;

// Process-wide mirrors of the cache's own Stats: the telemetry registry is
// how a running Server (or its sampler thread) watches these without a
// PlanCache handle. Monotonic — unlike Impl's fields, clear() never zeroes
// them.
struct CacheInstruments {
  telemetry::Counter& hits =
      telemetry::Registry::instance().counter("plan_cache.hits");
  telemetry::Counter& misses =
      telemetry::Registry::instance().counter("plan_cache.misses");
  telemetry::Counter& evictions =
      telemetry::Registry::instance().counter("plan_cache.evictions");
  telemetry::Counter& duplicate_builds =
      telemetry::Registry::instance().counter("plan_cache.duplicate_builds");
};

CacheInstruments& cache_instruments() {
  static CacheInstruments instruments;
  return instruments;
}

struct KeyHasher {
  std::size_t operator()(const TofPlanKey& k) const { return hash_key(k); }
};

/// Single-flight latch for one in-progress plan build. The builder fills
/// plan/error and flips done; joiners wait on the latch's own mutex so a
/// slow build never blocks the cache lock.
struct InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const TofPlan> plan;
  std::exception_ptr error;
};
}  // namespace

struct PlanCache::Impl {
  using Entry = std::pair<TofPlanKey, std::shared_ptr<const TofPlan>>;

  mutable std::mutex mu;
  std::size_t capacity = kDefaultCapacityBytes;
  std::size_t bytes = 0;
  std::uint64_t hits = 0, misses = 0, evictions = 0;
  std::uint64_t duplicate_builds = 0;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<TofPlanKey, std::list<Entry>::iterator, KeyHasher> map;
  /// Builds in flight, keyed like the cache itself.
  std::unordered_map<TofPlanKey, std::shared_ptr<InFlight>, KeyHasher>
      building;

  // Evicts from the back until the budget is met. Caller holds mu.
  void evict_to_fit() {
    while (bytes > capacity && !lru.empty()) {
      const Entry& victim = lru.back();
      bytes -= victim.second->bytes();
      map.erase(victim.first);
      lru.pop_back();
      ++evictions;
      cache_instruments().evictions.add();
    }
  }
};

PlanCache::PlanCache() : impl_(std::make_unique<Impl>()) {}
PlanCache::~PlanCache() = default;

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const TofPlan> PlanCache::get(const us::Probe& probe,
                                              const us::ImagingGrid& grid,
                                              double steering_angle_rad,
                                              double t0,
                                              std::int64_t n_samples,
                                              dsp::Interp interp) {
  TofPlanKey key;
  key.num_elements = probe.num_elements;
  key.pitch = probe.pitch;
  key.sampling_frequency = probe.sampling_frequency;
  key.sound_speed = probe.sound_speed;
  key.steering_angle_rad = steering_angle_rad;
  key.t0 = t0;
  key.n_samples = n_samples;
  key.grid = grid;
  key.interp = interp;

  std::shared_ptr<InFlight> flight;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    if (const auto it = impl_->map.find(key); it != impl_->map.end()) {
      ++impl_->hits;
      cache_instruments().hits.add();
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      return it->second->second;
    }
    ++impl_->misses;
    cache_instruments().misses.add();
    if (const auto it = impl_->building.find(key);
        it != impl_->building.end()) {
      ++impl_->duplicate_builds;  // coalesced onto the in-flight build
      cache_instruments().duplicate_builds.add();
      flight = it->second;
    } else {
      // The latch is constructed before it enters the map: if either
      // allocation throws, nothing is inserted and a later get() simply
      // retries the build (a null latch in the map would poison the key).
      flight = std::make_shared<InFlight>();
      impl_->building.emplace(key, flight);
      builder = true;
    }
  }

  if (!builder) {
    // Single-flight: join the build already running for this key instead of
    // duplicating the expensive geometry pass.
    std::unique_lock<std::mutex> wait_lock(flight->mu);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->plan;
  }

  // Built outside the cache lock so a slow paper-scale geometry pass never
  // stalls O(1) hits on other keys.
  std::shared_ptr<const TofPlan> plan;
  try {
    plan = std::make_shared<const TofPlan>(TofPlan::build(
        probe, grid, steering_angle_rad, t0, n_samples, interp));
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      if (const auto it = impl_->building.find(key);
          it != impl_->building.end() && it->second == flight)
        impl_->building.erase(it);
    }
    {
      const std::lock_guard<std::mutex> done_lock(flight->mu);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    // Erase only our own latch: clear() may have dropped it and a later
    // get() may have started a fresh build under the same key.
    if (const auto it = impl_->building.find(key);
        it != impl_->building.end() && it->second == flight)
      impl_->building.erase(it);
    if (const std::size_t plan_bytes = plan->bytes();
        plan_bytes <= impl_->capacity &&
        impl_->map.find(key) == impl_->map.end()) {
      impl_->lru.emplace_front(key, plan);
      impl_->map.emplace(key, impl_->lru.begin());
      impl_->bytes += plan_bytes;
      impl_->evict_to_fit();
    }
  }
  {
    const std::lock_guard<std::mutex> done_lock(flight->mu);
    flight->plan = plan;
    flight->done = true;
  }
  flight->cv.notify_all();
  return plan;
}

std::shared_ptr<const TofPlan> PlanCache::get_for(const us::Acquisition& acq,
                                                  const us::ImagingGrid& grid,
                                                  dsp::Interp interp) {
  TVBF_REQUIRE(acq.rf.rank() == 2 && acq.num_samples() > 1,
               "acquisition holds no RF data");
  TVBF_REQUIRE(acq.num_channels() == acq.probe.num_elements,
               "RF channel count does not match the probe");
  return get(acq.probe, grid, acq.steering_angle_rad, acq.t0,
             acq.num_samples(), interp);
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Stats s;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.evictions = impl_->evictions;
  s.duplicate_builds = impl_->duplicate_builds;
  s.bytes = impl_->bytes;
  s.entries = impl_->lru.size();
  s.capacity_bytes = impl_->capacity;
  return s;
}

void PlanCache::set_capacity(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = bytes;
  impl_->evict_to_fit();
}

void PlanCache::clear() {
  // In-flight builds are left to finish: their latches were handed out to
  // waiters already. Each builder erases only its own latch, so a build
  // racing a clear() completes normally (it just may not be retained).
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->lru.clear();
  impl_->map.clear();
  impl_->bytes = 0;
  impl_->hits = impl_->misses = impl_->evictions = 0;
  impl_->duplicate_builds = 0;
}

}  // namespace tvbf::us
