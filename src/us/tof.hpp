// Time-of-flight correction: channel RF -> per-pixel aligned channel cube.
//
// This is the shared front end of every beamformer in the paper (DAS, MVDR,
// FCNN, Tiny-CNN and Tiny-VBF all consume ToF-corrected data): for each
// pixel and element, the two-way propagation delay under the plane-wave
// transmit is computed and the channel signal is sampled there.
#pragma once

#include "tensor/tensor.hpp"
#include "dsp/interpolate.hpp"
#include "us/grid.hpp"
#include "us/simulator.hpp"

namespace tvbf::us {

/// ToF-corrected data cube over a pixel grid.
/// `real` has shape (nz, nx, nch). When built from the analytic signal,
/// `imag` has the same shape; otherwise it is empty.
struct TofCube {
  Tensor real;
  Tensor imag;
  ImagingGrid grid;

  bool is_analytic() const { return !imag.empty(); }
  std::int64_t nz() const { return real.dim(0); }
  std::int64_t nx() const { return real.dim(1); }
  std::int64_t channels() const { return real.dim(2); }
};

/// ToF correction options.
struct TofParams {
  dsp::Interp interp = dsp::Interp::kLinear;
  /// When true, channels are converted to their analytic signal before
  /// sampling, producing a complex cube (required by MVDR).
  bool analytic = false;
};

/// Computes the two-way delay [s] from plane-wave transmit to pixel (x, z)
/// and back to an element at lateral position xe.
double two_way_delay(double x, double z, double xe, double sin_theta,
                     double cos_theta, double tx_offset, double sound_speed);

/// Builds the ToF-corrected cube of `acq` over `grid`. Internally this
/// builds a geometric us::TofPlan and applies it to the frame; streaming
/// callers should fetch the plan from us::PlanCache once and apply it per
/// frame instead of paying the geometry pass every call.
TofCube tof_correct(const Acquisition& acq, const ImagingGrid& grid,
                    const TofParams& params = {});

/// Normalizes cube data (real and imag jointly) to [-1, 1] by the max
/// absolute value, in place; returns the scale that was divided out.
/// A zero cube is left untouched (returns 0).
float normalize_cube(TofCube& cube);

}  // namespace tvbf::us
