// Process-wide LRU cache of ToF plans.
//
// Plans are pure functions of their key, so one global cache serves every
// consumer: the streaming pipeline (one plan per cine sequence), coherent
// compounding (one plan per steering angle, reused across frames) and
// training-set generation (one plan for the whole corpus, applied to both
// the RF and the analytic cube of every frame). Entries are evicted
// least-recently-used by byte footprint; handed-out shared_ptrs keep
// evicted plans alive for callers still holding them.
#pragma once

#include <cstdint>
#include <memory>

#include "us/tof_plan.hpp"

namespace tvbf::us {

/// Global ToF-plan cache. All methods are thread-safe; a miss builds the
/// plan outside the cache lock (hits on other keys are never stalled by a
/// build). Builds are single-flight per key: concurrent misses on one key
/// coalesce onto the first caller's build instead of duplicating the
/// expensive geometry pass — the joiners block until the build completes
/// and are counted in Stats::duplicate_builds.
class PlanCache {
 public:
  /// The process-wide instance.
  static PlanCache& instance();

  /// Cache usage counters (cumulative since construction or clear()).
  struct Stats {
    std::uint64_t hits = 0;
    /// get() calls that could not be served from the resident cache
    /// (includes calls that joined another thread's in-flight build).
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Misses that found an in-flight build for their key and waited for
    /// it instead of building again — each one is a duplicated geometry
    /// pass the single-flight latch avoided.
    std::uint64_t duplicate_builds = 0;
    std::size_t bytes = 0;          ///< current resident plan bytes
    std::size_t entries = 0;        ///< current resident plan count
    std::size_t capacity_bytes = 0;
  };

  /// Returns the cached plan for the key, building it on a miss. Plans
  /// larger than the whole capacity are built and returned but not
  /// retained.
  std::shared_ptr<const TofPlan> get(const us::Probe& probe,
                                     const us::ImagingGrid& grid,
                                     double steering_angle_rad, double t0,
                                     std::int64_t n_samples,
                                     dsp::Interp interp = dsp::Interp::kLinear);

  /// Convenience overload deriving the key from an acquisition.
  std::shared_ptr<const TofPlan> get_for(
      const us::Acquisition& acq, const us::ImagingGrid& grid,
      dsp::Interp interp = dsp::Interp::kLinear);

  Stats stats() const;

  /// Sets the byte budget (evicting immediately if over it). The default
  /// of 768 MiB fits a paper-scale 11-angle compounding working set.
  void set_capacity(std::size_t bytes);

  /// Drops every entry and resets the counters.
  void clear();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

 private:
  PlanCache();
  ~PlanCache();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::us
