#include "us/simulator.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "us/pulse.hpp"

namespace tvbf::us {

SimParams SimParams::in_silico() {
  SimParams p;
  p.snr_db = 60.0;
  p.attenuation_db_cm_mhz = 0.0;
  p.channel_gain_sigma = 0.0;
  p.seed = 1234;
  return p;
}

SimParams SimParams::in_vitro() {
  SimParams p;
  p.snr_db = 35.0;
  p.attenuation_db_cm_mhz = 0.5;
  p.channel_gain_sigma = 0.05;
  p.seed = 5678;
  return p;
}

namespace {

/// Soft-baffle element directivity: sinc of the projected element width
/// times the obliquity factor cos(phi).
double directivity(double sin_phi, double cos_phi, double width,
                   double wavelength) {
  const double arg = M_PI * width / wavelength * sin_phi;
  const double s = arg == 0.0 ? 1.0 : std::sin(arg) / arg;
  return s * cos_phi;
}

}  // namespace

Acquisition simulate_plane_wave(const Probe& probe, const Phantom& phantom,
                                double steering_angle_rad,
                                const SimParams& params) {
  probe.validate();
  TVBF_REQUIRE(!phantom.scatterers.empty(),
               "cannot simulate an empty phantom (no scatterers)");
  TVBF_REQUIRE(params.max_depth > 0.0, "max_depth must be positive");
  TVBF_REQUIRE(std::fabs(steering_angle_rad) < M_PI / 3.0,
               "steering angle beyond +/-60 degrees is not supported");

  const double c = probe.sound_speed;
  const double fs = probe.sampling_frequency;
  const Pulse pulse(probe.center_frequency, probe.fractional_bandwidth);

  // Acquisition window: two-way time to max depth plus pulse tails.
  const double t_max = 2.0 * params.max_depth / c + 2.0 * pulse.half_support();
  const auto n_samples = static_cast<std::int64_t>(std::ceil(t_max * fs)) + 1;
  const std::int64_t n_ch = probe.num_elements;

  Acquisition acq;
  acq.probe = probe;
  acq.steering_angle_rad = steering_angle_rad;
  acq.t0 = 0.0;
  acq.rf = Tensor({n_samples, n_ch});

  const auto xs = probe.element_positions();
  const double sin_th = std::sin(steering_angle_rad);
  const double cos_th = std::cos(steering_angle_rad);
  const double lambda = probe.wavelength();
  // Plane-wave transmit reference: t=0 when the wavefront crosses the point
  // of the aperture it reaches first, so transmit delays are non-negative.
  const double tx_offset =
      sin_th >= 0.0 ? xs.front() * sin_th : xs.back() * sin_th;

  // Amplitude attenuation coefficient in nepers per meter at fc.
  const double alpha_np_per_m =
      params.attenuation_db_cm_mhz * (probe.center_frequency / 1e6) * 100.0 /
      8.685889638;

  // Per-channel gain (element sensitivity spread).
  Rng gain_rng(params.seed ^ 0xabcdef12345ULL);
  std::vector<double> gain(static_cast<std::size_t>(n_ch), 1.0);
  if (params.channel_gain_sigma > 0.0)
    for (auto& g : gain)
      g = std::max(0.1, gain_rng.normal(1.0, params.channel_gain_sigma));

  const double support = pulse.half_support();
  float* rf = acq.rf.raw();

  parallel_for_each(0, static_cast<std::size_t>(n_ch), [&](std::size_t ei) {
    const auto e = static_cast<std::int64_t>(ei);
    const double xe = xs[ei];
    for (const auto& s : phantom.scatterers) {
      // Transmit: plane wave reaches (x, z) after projecting on the
      // propagation direction; receive: spherical return to the element.
      const double t_tx = (s.z * cos_th + s.x * sin_th - tx_offset) / c;
      const double dx = s.x - xe;
      const double r_rx = std::sqrt(dx * dx + s.z * s.z);
      const double t_arrival = t_tx + r_rx / c;
      const double total_path = t_tx * c + r_rx;

      double amp = s.amplitude;
      if (params.spreading) amp /= std::max(r_rx, 1e-4);
      if (params.directivity && r_rx > 0.0)
        amp *= directivity(dx / r_rx, s.z / r_rx, probe.element_width, lambda);
      if (alpha_np_per_m > 0.0) amp *= std::exp(-alpha_np_per_m * total_path);
      amp *= gain[ei];
      if (amp == 0.0) continue;

      // Accumulate the pulse over its finite support only.
      const auto i_lo = static_cast<std::int64_t>(
          std::floor((t_arrival - support) * fs));
      const auto i_hi = static_cast<std::int64_t>(
          std::ceil((t_arrival + support) * fs));
      const std::int64_t lo = std::max<std::int64_t>(0, i_lo);
      const std::int64_t hi = std::min(n_samples - 1, i_hi);
      for (std::int64_t i = lo; i <= hi; ++i) {
        const double t = static_cast<double>(i) / fs - t_arrival;
        rf[i * n_ch + e] += static_cast<float>(amp * pulse(t));
      }
    }
  }, /*min_grain=*/1);

  // Time-gain compensation: undo the mean attenuation profile so deep
  // echoes match the shallow ones (receive-chain TGC). Applied before the
  // noise stage mirrors an analog TGC amplifier ahead of the ADC; the noise
  // term below is ADC-referred and unaffected.
  if (params.apply_tgc && alpha_np_per_m > 0.0) {
    for (std::int64_t i = 0; i < n_samples; ++i) {
      const double t = static_cast<double>(i) / fs;
      const double gain = std::exp(alpha_np_per_m * c * t);
      for (std::int64_t e = 0; e < n_ch; ++e)
        rf[i * n_ch + e] = static_cast<float>(rf[i * n_ch + e] * gain);
    }
  }

  // Additive white noise at the requested RF SNR (relative to signal RMS).
  if (params.add_noise && params.snr_db > 0.0) {
    double power = 0.0;
    for (std::int64_t i = 0; i < acq.rf.size(); ++i) {
      const double v = rf[i];
      power += v * v;
    }
    power /= static_cast<double>(acq.rf.size());
    if (power > 0.0) {
      const double noise_sigma =
          std::sqrt(power / std::pow(10.0, params.snr_db / 10.0));
      Rng noise_rng(params.seed);
      for (std::int64_t i = 0; i < acq.rf.size(); ++i)
        rf[i] += static_cast<float>(noise_rng.normal(0.0, noise_sigma));
    }
  }

  return acq;
}

}  // namespace tvbf::us
