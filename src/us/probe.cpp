#include "us/probe.hpp"

#include "common/error.hpp"

namespace tvbf::us {

double Probe::element_x(std::int64_t e) const {
  TVBF_REQUIRE(e >= 0 && e < num_elements, "element index out of range");
  const double center = static_cast<double>(num_elements - 1) / 2.0;
  return (static_cast<double>(e) - center) * pitch;
}

std::vector<double> Probe::element_positions() const {
  std::vector<double> xs(static_cast<std::size_t>(num_elements));
  for (std::int64_t e = 0; e < num_elements; ++e)
    xs[static_cast<std::size_t>(e)] = element_x(e);
  return xs;
}

void Probe::validate() const {
  TVBF_REQUIRE(num_elements >= 2, "probe needs at least 2 elements");
  TVBF_REQUIRE(pitch > 0.0, "pitch must be positive");
  TVBF_REQUIRE(element_width > 0.0 && element_width <= pitch,
               "element width must be in (0, pitch]");
  TVBF_REQUIRE(center_frequency > 0.0, "center frequency must be positive");
  TVBF_REQUIRE(sampling_frequency > 2.0 * center_frequency,
               "sampling frequency must exceed Nyquist for the pulse");
  TVBF_REQUIRE(sound_speed > 0.0, "sound speed must be positive");
  TVBF_REQUIRE(fractional_bandwidth > 0.0 && fractional_bandwidth < 2.0,
               "fractional bandwidth must be in (0, 2)");
}

Probe Probe::test_probe(std::int64_t elements) {
  Probe p;
  p.num_elements = elements;
  p.pitch = 0.3e-3;
  p.element_width = 0.27e-3;
  p.center_frequency = 5.0e6;
  p.sampling_frequency = 20.0e6;
  return p;
}

}  // namespace tvbf::us
