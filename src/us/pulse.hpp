// Transmit pulse model: Gaussian-modulated sinusoid.
//
// The two-way (transmit convolved with receive impulse response) pulse is
// approximated by a single Gaussian envelope whose -6 dB bandwidth matches
// the probe's fractional bandwidth — the standard Field-II-style surrogate.
#pragma once

namespace tvbf::us {

/// Gaussian-modulated cosine pulse centered at t = 0.
class Pulse {
 public:
  /// fc: center frequency [Hz]; fractional_bw: -6 dB fractional bandwidth.
  Pulse(double fc, double fractional_bw);

  /// Pulse amplitude at time t [s].
  double operator()(double t) const;

  /// Half-width of the effective support (|t| > half_support() => ~0).
  double half_support() const { return 4.0 * sigma_; }

  double sigma() const { return sigma_; }
  double center_frequency() const { return fc_; }

 private:
  double fc_;
  double sigma_;  // Gaussian envelope std-dev [s]
};

}  // namespace tvbf::us
