// Cached time-of-flight plans: the geometric half of ToF correction,
// precomputed once and replayed against any number of RF frames.
//
// us::tof_correct does two separable things per frame: (1) evaluate the
// purely geometric per-pixel/per-channel two-way delay and turn it into a
// fractional sample index, and (2) sample each channel there. In a streaming
// scanner (1) depends only on (probe, grid, steering angle, t0, sample
// count, interpolation flavor) — never on the RF — so a TofPlan bakes it
// into a flat table of sample indices + interpolation fractions that
// apply() gathers through. One plan serves every frame of a cine sequence,
// every frame of a training corpus, and (per angle) every compounded frame.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/interpolate.hpp"
#include "us/simulator.hpp"
#include "us/tof.hpp"

namespace tvbf::us {

namespace detail {
/// Plan-entry sentinels shared by the encode (build) and gather (apply)
/// sides — see the idx_ encoding comment on TofPlan.
inline constexpr std::int32_t kTofOutOfRange = -1;
inline constexpr std::int32_t kTofLinearBias = -2;
}  // namespace detail

/// Everything a plan's table depends on. Two acquisitions with equal keys
/// can share one plan; the cache hashes and compares this struct directly.
struct TofPlanKey {
  std::int64_t num_elements = 0;
  double pitch = 0.0;
  double sampling_frequency = 0.0;
  double sound_speed = 0.0;
  double steering_angle_rad = 0.0;
  double t0 = 0.0;
  std::int64_t n_samples = 0;
  us::ImagingGrid grid;
  dsp::Interp interp = dsp::Interp::kLinear;

  bool operator==(const TofPlanKey& o) const;
};

/// Hash for unordered containers keyed on TofPlanKey.
std::size_t hash_key(const TofPlanKey& key);

/// Reusable per-frame scratch for TofPlan::apply (channel re-layout and,
/// for analytic cubes, the per-channel analytic signal). Passing the same
/// workspace across frames avoids reallocating ~n_ch * n_samples floats
/// per frame.
struct ChannelWorkspace {
  std::vector<float> re;  ///< (n_ch, n_samples) row-major channel data
  std::vector<float> im;  ///< same layout; filled only for analytic frames
};

/// Precomputed ToF gather table for one (probe, grid, angle, interp) tuple.
class TofPlan {
 public:
  /// Builds the plan from explicit geometry. `n_samples` is the RF length
  /// the plan will be applied to (boundary handling depends on it).
  static TofPlan build(const us::Probe& probe, const us::ImagingGrid& grid,
                       double steering_angle_rad, double t0,
                       std::int64_t n_samples,
                       dsp::Interp interp = dsp::Interp::kLinear);

  /// Convenience: derives the geometry from an acquisition.
  static TofPlan build_for(const us::Acquisition& acq,
                           const us::ImagingGrid& grid,
                           dsp::Interp interp = dsp::Interp::kLinear);

  /// Applies the plan to one frame, writing into `out` (buffers are reused
  /// when already correctly shaped — no allocation in the steady state).
  /// The acquisition must match the plan key (probe geometry, angle, t0,
  /// sample count); mismatches throw InvalidArgument. Results are
  /// numerically identical to us::tof_correct with the same parameters.
  void apply(const us::Acquisition& acq, bool analytic, us::TofCube& out,
             ChannelWorkspace* workspace = nullptr) const;

  /// Applies into a freshly allocated cube.
  us::TofCube apply(const us::Acquisition& acq, bool analytic) const;

  const TofPlanKey& key() const { return key_; }

  /// Table footprint in bytes (what the cache budget counts).
  std::size_t bytes() const {
    return idx_.capacity() * sizeof(std::int32_t) +
           frac_.capacity() * sizeof(float);
  }

 private:
  TofPlan() = default;

  TofPlanKey key_;
  // One entry per (pixel, channel), laid out (nz, nx, nch) to match the
  // cube. idx_ encodes both the base sample and the interpolation mode:
  //   idx == detail::kTofOutOfRange -> sample is 0 (outside the RF window)
  //   idx >= 0                      -> plan-kind interpolation at base idx
  //   idx <= detail::kTofLinearBias -> linear fallback at base
  //                                    (kTofLinearBias - idx); used by
  //                                    cubic plans near the edges
  // frac_ holds the fractional offset in [0, 1].
  std::vector<std::int32_t> idx_;
  std::vector<float> frac_;
};

}  // namespace tvbf::us
