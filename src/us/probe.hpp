// Linear-array transducer model.
//
// Defaults follow the acquisition setup of the paper: a 128-element L11-5v
// style linear array at 7.6 MHz center frequency sampled at 31.25 MHz
// (Verasonics Vantage 128). All geometry is in SI units (meters, seconds).
#pragma once

#include <cstdint>
#include <vector>

namespace tvbf::us {

/// Linear-array probe description.
struct Probe {
  std::int64_t num_elements = 128;   ///< transducer channel count
  double pitch = 0.3e-3;             ///< element center spacing [m]
  double element_width = 0.27e-3;    ///< element aperture [m] (kerf ~0.03 mm)
  double center_frequency = 7.6e6;   ///< pulse center frequency [Hz]
  double sampling_frequency = 31.25e6;  ///< ADC rate [Hz]
  double sound_speed = 1540.0;       ///< assumed medium speed of sound [m/s]
  double fractional_bandwidth = 0.67;  ///< -6 dB pulse bandwidth / fc

  /// Lateral position of element `e`, centered on the array middle.
  double element_x(std::int64_t e) const;

  /// All element positions.
  std::vector<double> element_positions() const;

  /// Total aperture width [m].
  double aperture() const { return pitch * static_cast<double>(num_elements - 1); }

  /// Wavelength at the center frequency [m].
  double wavelength() const { return sound_speed / center_frequency; }

  /// Validates physical plausibility; throws InvalidArgument otherwise.
  void validate() const;

  /// The paper's acquisition configuration (alias of the defaults).
  static Probe l11_5v() { return Probe{}; }

  /// Reduced probe for fast tests/benches: fewer channels, lower fs.
  static Probe test_probe(std::int64_t elements = 32);
};

}  // namespace tvbf::us
