#include "us/pulse.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::us {

Pulse::Pulse(double fc, double fractional_bw) : fc_(fc) {
  TVBF_REQUIRE(fc > 0.0, "pulse center frequency must be positive");
  TVBF_REQUIRE(fractional_bw > 0.0 && fractional_bw < 2.0,
               "fractional bandwidth must be in (0, 2)");
  // A Gaussian envelope exp(-t^2 / (2 sigma^2)) has a -6 dB spectral width
  // of bw = fc * fbw when sigma = 2 sqrt(ln 2) / (pi * bw) (power spectrum
  // halves at bw/2 from the carrier).
  const double bw = fc * fractional_bw;
  sigma_ = 2.0 * std::sqrt(std::log(2.0)) / (M_PI * bw);
}

double Pulse::operator()(double t) const {
  if (std::fabs(t) > half_support()) return 0.0;
  const double env = std::exp(-t * t / (2.0 * sigma_ * sigma_));
  return env * std::cos(2.0 * M_PI * fc_ * t);
}

}  // namespace tvbf::us
