// Numerical phantoms: collections of point scatterers.
//
// The PICMUS-style presets mirror the geometry the paper evaluates on:
//  * resolution-distortion: rows of isolated point targets at two depth
//    bands against an anechoic background (Figs 11-14, Table II);
//  * contrast: anechoic cysts embedded in fully-developed speckle at three
//    depths (Figs 9-10, Table I).
// An "in-vitro" preset re-seeds the speckle and enables attenuation/noise in
// the simulator parameters to mimic experimental phantom acquisitions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace tvbf::us {

/// Point scatterer at (x, z) with reflectivity `amplitude`.
struct Scatterer {
  double x = 0.0;          ///< lateral position [m]
  double z = 0.0;          ///< depth [m] (z > 0 below the array)
  double amplitude = 1.0;  ///< reflectivity (arbitrary linear units)
};

/// Axis-aligned lateral/depth region.
struct Region {
  double x_min = -19.0e-3;
  double x_max = 19.0e-3;
  double z_min = 5.0e-3;
  double z_max = 45.0e-3;

  double width() const { return x_max - x_min; }
  double depth_extent() const { return z_max - z_min; }
  bool contains(double x, double z) const {
    return x >= x_min && x <= x_max && z >= z_min && z <= z_max;
  }
};

/// Circular inclusion (cyst) description.
struct Cyst {
  double x = 0.0;       ///< center lateral position [m]
  double z = 0.0;       ///< center depth [m]
  double radius = 4e-3; ///< radius [m]
};

/// A phantom is a set of scatterers plus metadata used by the metric ROIs.
struct Phantom {
  std::vector<Scatterer> scatterers;
  std::vector<Cyst> cysts;          ///< anechoic inclusions (for ROI placement)
  std::vector<Scatterer> points;    ///< isolated targets (for PSF metrics)
  Region region;

  std::int64_t size() const { return static_cast<std::int64_t>(scatterers.size()); }
};

/// Options controlling speckle generation.
struct SpeckleOptions {
  /// Mean scatterer count per square millimeter. ~2/mm^2 gives fully
  /// developed speckle for a 7.6 MHz probe at PICMUS-like resolution cells.
  double density_per_mm2 = 2.0;
  /// Reflectivity amplitudes are N(0, amplitude_sigma).
  double amplitude_sigma = 1.0;
};

/// Uniform speckle over `region`, excluding the interiors of `cysts`.
Phantom make_speckle(const Region& region, const SpeckleOptions& opt, Rng& rng,
                     const std::vector<Cyst>& cysts = {});

/// PICMUS-like contrast phantom: anechoic cysts at the given depths on the
/// array axis, embedded in speckle. Default depths follow Fig. 9 (13/25/37 mm).
Phantom make_contrast_phantom(Rng& rng,
                              const std::vector<double>& cyst_depths_m =
                                  {13e-3, 25e-3, 37e-3},
                              double cyst_radius_m = 4e-3,
                              const Region& region = {},
                              const SpeckleOptions& opt = {});

/// PICMUS-like resolution-distortion phantom: horizontal rows of point
/// targets at two depth bands (defaults follow Fig. 11: 15 mm and 35 mm),
/// anechoic background.
Phantom make_resolution_phantom(const std::vector<double>& row_depths_m =
                                    {15e-3, 35e-3},
                                std::int64_t points_per_row = 5,
                                double lateral_span_m = 24e-3,
                                const Region& region = {});

/// Single on-axis point target (unit amplitude) — PSF calibration target.
Phantom make_single_point(double z_m, double x_m = 0.0,
                          const Region& region = {});

/// Random training phantom: a mix of speckle, 0-2 cysts and 0-4 bright point
/// targets, randomized within the region — used to build training corpora.
Phantom make_random_training_phantom(Rng& rng, const Region& region = {},
                                     const SpeckleOptions& opt = {});

}  // namespace tvbf::us
