// Plane-wave RF channel-data simulator.
//
// Replaces the Verasonics/Field-II acquisitions of the paper (see DESIGN.md
// substitution table): for every (scatterer, element) pair the two-way
// arrival time under a steered plane-wave transmit is computed and the
// transmit pulse is accumulated into the element's RF line, weighted by
// element directivity, spherical spreading and frequency-dependent
// attenuation. Thermal noise is added per the configured SNR.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"
#include "us/phantom.hpp"
#include "us/probe.hpp"

namespace tvbf::us {

/// One plane-wave transmit/receive event: RF channel data plus metadata.
struct Acquisition {
  Probe probe;
  double steering_angle_rad = 0.0;  ///< plane-wave steering angle
  double t0 = 0.0;                  ///< time of the first RF sample [s]
  /// RF channel data, shape (num_samples, num_elements).
  Tensor rf;

  std::int64_t num_samples() const { return rf.rank() == 2 ? rf.dim(0) : 0; }
  std::int64_t num_channels() const { return rf.rank() == 2 ? rf.dim(1) : 0; }
};

/// Simulator controls.
struct SimParams {
  double max_depth = 45e-3;       ///< acquisition window covers 2*max_depth/c
  double snr_db = 60.0;           ///< RF SNR; <= 0 disables noise entirely
  bool add_noise = true;
  /// Amplitude attenuation [dB / (cm * MHz)]; 0 disables. In-vitro presets
  /// use ~0.5 (tissue-mimicking phantom).
  double attenuation_db_cm_mhz = 0.0;
  /// Time-gain compensation: the receive chain amplifies late samples by
  /// exp(+alpha c t) to undo `attenuation_db_cm_mhz`, exactly as a real
  /// scanner's TGC stage does (noise at depth is amplified along with the
  /// signal). Ignored when attenuation is 0.
  bool apply_tgc = true;
  /// Per-channel gain spread (std-dev, multiplicative); models element
  /// sensitivity variation in experimental probes. 0 disables.
  double channel_gain_sigma = 0.0;
  /// Element directivity on/off (soft-baffle sinc model).
  bool directivity = true;
  /// 1/r spherical spreading on/off.
  bool spreading = true;
  std::uint64_t seed = 1234;      ///< noise / gain seed

  /// Paper-like in-silico settings (clean, Field-II-style).
  static SimParams in_silico();
  /// Experimental-phantom settings: attenuation, noise, gain spread.
  static SimParams in_vitro();
};

/// Simulates one single-angle plane-wave acquisition of `phantom`.
/// Throws InvalidArgument for empty phantoms or non-physical parameters.
Acquisition simulate_plane_wave(const Probe& probe, const Phantom& phantom,
                                double steering_angle_rad,
                                const SimParams& params);

}  // namespace tvbf::us
