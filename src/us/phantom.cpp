#include "us/phantom.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tvbf::us {
namespace {

bool inside_any_cyst(double x, double z, const std::vector<Cyst>& cysts) {
  for (const auto& c : cysts) {
    const double dx = x - c.x;
    const double dz = z - c.z;
    if (dx * dx + dz * dz < c.radius * c.radius) return true;
  }
  return false;
}

}  // namespace

Phantom make_speckle(const Region& region, const SpeckleOptions& opt, Rng& rng,
                     const std::vector<Cyst>& cysts) {
  TVBF_REQUIRE(region.width() > 0.0 && region.depth_extent() > 0.0,
               "speckle region must have positive area");
  TVBF_REQUIRE(opt.density_per_mm2 > 0.0, "speckle density must be positive");
  const double area_mm2 = region.width() * region.depth_extent() * 1e6;
  const auto target =
      static_cast<std::int64_t>(std::llround(area_mm2 * opt.density_per_mm2));
  Phantom ph;
  ph.region = region;
  ph.cysts = cysts;
  ph.scatterers.reserve(static_cast<std::size_t>(target));
  // Rejection-sample positions outside cysts so inclusions are anechoic.
  std::int64_t placed = 0;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = target * 20 + 1000;
  while (placed < target && attempts < max_attempts) {
    ++attempts;
    const double x = rng.uniform(region.x_min, region.x_max);
    const double z = rng.uniform(region.z_min, region.z_max);
    if (inside_any_cyst(x, z, cysts)) continue;
    ph.scatterers.push_back({x, z, rng.normal(0.0, opt.amplitude_sigma)});
    ++placed;
  }
  return ph;
}

Phantom make_contrast_phantom(Rng& rng, const std::vector<double>& cyst_depths_m,
                              double cyst_radius_m, const Region& region,
                              const SpeckleOptions& opt) {
  TVBF_REQUIRE(!cyst_depths_m.empty(), "contrast phantom needs >= 1 cyst");
  TVBF_REQUIRE(cyst_radius_m > 0.0, "cyst radius must be positive");
  std::vector<Cyst> cysts;
  cysts.reserve(cyst_depths_m.size());
  for (double z : cyst_depths_m) {
    TVBF_REQUIRE(z - cyst_radius_m > region.z_min &&
                     z + cyst_radius_m < region.z_max,
                 "cyst at depth " + std::to_string(z) + " m leaves the region");
    cysts.push_back({0.0, z, cyst_radius_m});
  }
  return make_speckle(region, opt, rng, cysts);
}

Phantom make_resolution_phantom(const std::vector<double>& row_depths_m,
                                std::int64_t points_per_row,
                                double lateral_span_m, const Region& region) {
  TVBF_REQUIRE(!row_depths_m.empty(), "resolution phantom needs >= 1 row");
  TVBF_REQUIRE(points_per_row >= 1, "need >= 1 point per row");
  TVBF_REQUIRE(lateral_span_m >= 0.0, "lateral span must be non-negative");
  Phantom ph;
  ph.region = region;
  for (double z : row_depths_m) {
    TVBF_REQUIRE(z > region.z_min && z < region.z_max,
                 "point row depth outside region");
    for (std::int64_t i = 0; i < points_per_row; ++i) {
      const double x =
          points_per_row == 1
              ? 0.0
              : -lateral_span_m / 2.0 +
                    lateral_span_m * static_cast<double>(i) /
                        static_cast<double>(points_per_row - 1);
      const Scatterer s{x, z, 1.0};
      ph.scatterers.push_back(s);
      ph.points.push_back(s);
    }
  }
  return ph;
}

Phantom make_single_point(double z_m, double x_m, const Region& region) {
  TVBF_REQUIRE(region.contains(x_m, z_m), "point target outside region");
  Phantom ph;
  ph.region = region;
  const Scatterer s{x_m, z_m, 1.0};
  ph.scatterers.push_back(s);
  ph.points.push_back(s);
  return ph;
}

Phantom make_random_training_phantom(Rng& rng, const Region& region,
                                     const SpeckleOptions& opt) {
  // 0-2 cysts at random positions, kept inside the region; the radius is
  // capped so a cyst always fits (small test regions would otherwise
  // invert the placement bounds).
  std::vector<Cyst> cysts;
  const double r_cap = std::min(
      {5e-3, region.width() / 4.0, region.depth_extent() / 4.0});
  const auto n_cysts =
      r_cap >= 1e-3 ? static_cast<std::int64_t>(rng.uniform_index(3)) : 0;
  for (std::int64_t i = 0; i < n_cysts; ++i) {
    const double r = rng.uniform(std::min(2e-3, r_cap * 0.5), r_cap);
    Cyst c;
    c.radius = r;
    c.x = rng.uniform(region.x_min + r * 1.5, region.x_max - r * 1.5);
    c.z = rng.uniform(region.z_min + r * 1.5, region.z_max - r * 1.5);
    cysts.push_back(c);
  }
  Phantom ph = make_speckle(region, opt, rng, cysts);
  // 0-4 bright point targets sharpen the PSF-matching part of the loss.
  const auto n_points = static_cast<std::int64_t>(rng.uniform_index(5));
  const double margin_x = 0.1 * region.width();
  const double margin_z = 0.1 * region.depth_extent();
  for (std::int64_t i = 0; i < n_points; ++i) {
    Scatterer s;
    s.x = rng.uniform(region.x_min + margin_x, region.x_max - margin_x);
    s.z = rng.uniform(region.z_min + margin_z, region.z_max - margin_z);
    // Moderately bright targets: strong enough to shape the PSF loss term,
    // weak enough that frame normalization stays speckle-dominated (the
    // evaluation phantoms contain no isolated bright reflectors).
    s.amplitude = rng.uniform(3.0, 6.0);
    ph.scatterers.push_back(s);
    ph.points.push_back(s);
  }
  return ph;
}

}  // namespace tvbf::us
