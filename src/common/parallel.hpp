// Minimal work-sharing thread pool.
//
// The simulator, classical beamformers and matmul kernels are all
// embarrassingly parallel over rows/pixels; parallel_for chunks an index
// range across a process-wide pool. Exceptions thrown by workers are
// captured and rethrown on the calling thread (first one wins).
#pragma once

#include <cstddef>
#include <functional>

namespace tvbf {

/// Number of worker threads in the process-wide pool (>= 1).
std::size_t hardware_threads();

/// Overrides the pool size (test hook; 0 restores the hardware default).
/// Safe against in-flight jobs from other threads (the pool is resized
/// between jobs), but must not be called from inside a parallel_for body
/// on any thread — that throws InvalidArgument instead of deadlocking.
void set_thread_count(std::size_t n);

/// Runs fn(begin..end) split into contiguous chunks across the pool.
/// Falls back to serial execution for small ranges or single-thread pools.
/// fn must be safe to invoke concurrently on disjoint ranges. Concurrent
/// top-level callers are serialized on the pool's single job slot (nested
/// calls from inside a parallel region still degrade to serial inline
/// execution).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t min_grain = 256);

/// Convenience wrapper calling fn(i) per index.
void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t min_grain = 256);

}  // namespace tvbf
