// Minimal work-sharing thread pool.
//
// The simulator, classical beamformers and matmul kernels are all
// embarrassingly parallel over rows/pixels; parallel_for chunks an index
// range across a process-wide pool. Exceptions thrown by workers are
// captured and rethrown on the calling thread (first one wins).
//
// The pool runs one job at a time; concurrent top-level callers queue for
// the job slot. Admission is fair-share by tag: each caller thread carries a
// job tag (set_job_tag), and the slot rotates round-robin across the tags of
// the waiting callers (FIFO within a tag). The serving layer tags pool work
// by session so no session can starve the others.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace tvbf {

/// Number of worker threads in the process-wide pool (>= 1).
std::size_t hardware_threads();

/// Overrides the pool size (test hook; 0 restores the hardware default).
/// Safe against in-flight jobs from other threads (the pool is resized
/// between jobs), but must not be called from inside a parallel_for body
/// on any thread — that throws InvalidArgument instead of deadlocking.
void set_thread_count(std::size_t n);

/// Sets this thread's fair-share job tag (thread-local; 0 = untagged).
/// Callers waiting for the pool's job slot are admitted round-robin across
/// distinct tags instead of in arrival order.
void set_job_tag(std::uint64_t tag);

/// This thread's current fair-share job tag.
std::uint64_t job_tag();

/// RAII guard marking the current thread as inside a parallel region: every
/// parallel_for issued while the guard is alive degrades to serial inline
/// execution instead of fanning out to the pool. Server workers use this to
/// process whole frames serially per thread, so concurrent sessions scale
/// across cores instead of contending for the single shared job slot.
class ScopedSerial {
 public:
  ScopedSerial();
  ~ScopedSerial();
  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;

 private:
  bool previous_;
};

/// RAII guard reverting an enclosing ScopedSerial: parallel_fors issued
/// while this guard is alive fan out to the pool again. Only valid on
/// threads that are NOT pool workers (a worker's serial marker is a
/// correctness requirement, not a policy); use it to let a large batched
/// job — e.g. a stacked inference forward collected from many serialized
/// per-session workers — use the whole pool.
class ScopedParallel {
 public:
  ScopedParallel();
  ~ScopedParallel();
  ScopedParallel(const ScopedParallel&) = delete;
  ScopedParallel& operator=(const ScopedParallel&) = delete;

 private:
  bool previous_;
};

/// Runs fn(begin..end) split into contiguous chunks across the pool.
/// Falls back to serial execution for small ranges or single-thread pools.
/// fn must be safe to invoke concurrently on disjoint ranges. Concurrent
/// top-level callers are serialized on the pool's single job slot (nested
/// calls from inside a parallel region still degrade to serial inline
/// execution).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t min_grain = 256);

/// Convenience wrapper calling fn(i) per index.
void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t min_grain = 256);

}  // namespace tvbf
