// Interpolation-flavor vocabulary shared across layers.
//
// The enum lives in common/ (not dsp/) so the device layer's TofGatherCmd
// can name the flavor without pulling dsp/ — and transitively tensor/ —
// into the bottom of the include-layering DAG. dsp/interpolate.hpp aliases
// it back into tvbf::dsp, which is the spelling most call sites use.
#pragma once

namespace tvbf {

/// Interpolation flavors selectable in the ToF-correction stage.
enum class Interp { kLinear, kCubic };

}  // namespace tvbf
