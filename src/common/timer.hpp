// Wall-clock stopwatch used by the inference-time benchmarks.
#pragma once

#include <chrono>

namespace tvbf {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tvbf
