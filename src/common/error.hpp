// Error handling primitives shared across the Tiny-VBF library.
//
// Contract violations (bad shapes, out-of-range arguments) throw
// tvbf::InvalidArgument; violated internal invariants throw tvbf::LogicError.
// Following the C++ Core Guidelines (E.2, I.5) preconditions are checked at
// API boundaries with TVBF_REQUIRE so misuse is reported where it happens.
#pragma once

#include <stdexcept>
#include <string>

namespace tvbf {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void raise_invalid(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement failed (" + cond + "): " + msg);
}
[[noreturn]] inline void raise_logic(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  throw LogicError(std::string(file) + ":" + std::to_string(line) +
                   ": invariant failed (" + cond + "): " + msg);
}
}  // namespace detail

}  // namespace tvbf

/// Precondition check at a public API boundary; always enabled.
#define TVBF_REQUIRE(cond, msg)                                       \
  do {                                                                \
    if (!(cond))                                                      \
      ::tvbf::detail::raise_invalid(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Internal invariant check; always enabled (cheap relative to DSP work).
#define TVBF_ENSURE(cond, msg)                                      \
  do {                                                              \
    if (!(cond))                                                    \
      ::tvbf::detail::raise_logic(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
