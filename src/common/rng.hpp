// Deterministic random number generation.
//
// All stochastic components (phantom scatterers, measurement noise, weight
// initialization) draw from tvbf::Rng so experiments are reproducible from a
// single seed. The generator is xoshiro256** — small, fast, and identical
// across platforms (unlike std::normal_distribution, whose output is
// implementation-defined, so we implement the transforms ourselves).
#pragma once

#include <cstdint>
#include <vector>

namespace tvbf {

/// Deterministic, platform-stable PRNG with normal/uniform helpers.
class Rng {
 public:
  /// Seeds the state via splitmix64 so nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (platform-stable).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Fills a buffer with N(0, stddev) samples.
  void fill_normal(std::vector<float>& out, double stddev);

  /// Derives an independent child stream (for per-worker determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tvbf
