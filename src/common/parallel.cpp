#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace tvbf {
namespace {

// parallel_for must not be re-entered from inside the pool: set on the
// top-level calling thread for the duration of a job, and permanently on
// worker threads.
thread_local bool in_parallel_region = false;

// Fair-share tag of jobs submitted from this thread (0 = untagged).
thread_local std::uint64_t current_job_tag = 0;

/// Long-lived pool: workers block on a condition variable between jobs.
/// A "job" is a shared chunked index range claimed via an atomic cursor.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t thread_count() const {
    return size_.load(std::memory_order_relaxed);
  }

  void resize(std::size_t n) {
    // Acquiring the job slot first makes resizing safe against an in-flight
    // job: the pool is only torn down between jobs.
    const SlotGuard slot(*this, current_job_tag);
    shutdown();
    start(n);
  }

  void run(std::size_t begin, std::size_t end,
           const std::function<void(std::size_t, std::size_t)>& fn,
           std::size_t grain) {
    // Serialize concurrent top-level callers: job_fn_/cursor_/pending_ are
    // one shared job slot, so without this two non-worker threads calling
    // parallel_for simultaneously would overwrite each other's job and
    // silently compute garbage. Admission is round-robin across job tags,
    // not arrival order — see acquire_slot().
    const SlotGuard slot(*this, current_job_tag);
    {
      std::lock_guard lock(mutex_);
      job_begin_ = begin;
      job_end_ = end;
      job_fn_ = &fn;
      job_grain_ = grain;
      cursor_.store(begin, std::memory_order_relaxed);
      pending_ = threads_.size();
      ++generation_;
      first_error_ = nullptr;
    }
    cv_.notify_all();
    work();  // calling thread participates
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  Pool() { start(std::max<std::size_t>(1, std::thread::hardware_concurrency())); }
  ~Pool() { shutdown(); }

  /// One waiting top-level caller of the job slot.
  struct Waiter {
    std::uint64_t tag = 0;
    bool admitted = false;
  };

  /// Scoped ownership of the pool's single job slot.
  class SlotGuard {
   public:
    SlotGuard(Pool& pool, std::uint64_t tag) : pool_(pool) {
      pool_.acquire_slot(tag);
    }
    ~SlotGuard() { pool_.release_slot(); }
    SlotGuard(const SlotGuard&) = delete;
    SlotGuard& operator=(const SlotGuard&) = delete;

   private:
    Pool& pool_;
  };

  void acquire_slot(std::uint64_t tag) {
    std::unique_lock lock(slot_mutex_);
    if (!slot_busy_ && slot_waiters_.empty()) {
      slot_busy_ = true;
      slot_last_tag_ = tag;
      return;
    }
    Waiter self{tag, false};
    slot_waiters_.push_back(&self);
    slot_cv_.wait(lock, [&] { return self.admitted; });
  }

  void release_slot() {
    std::lock_guard lock(slot_mutex_);
    if (slot_waiters_.empty()) {
      slot_busy_ = false;
      return;
    }
    // Round-robin across tags: admit the waiter whose tag is cyclically
    // next after the last admitted tag (a waiter with the same tag goes
    // last). Ties keep list order, i.e. FIFO within a tag.
    auto best = slot_waiters_.begin();
    std::uint64_t best_rank = std::numeric_limits<std::uint64_t>::max();
    for (auto it = slot_waiters_.begin(); it != slot_waiters_.end(); ++it) {
      const std::uint64_t distance = (*it)->tag - slot_last_tag_;  // wraps
      const std::uint64_t rank =
          distance == 0 ? std::numeric_limits<std::uint64_t>::max()
                        : distance - 1;
      if (rank < best_rank) {
        best_rank = rank;
        best = it;
      }
    }
    Waiter* next = *best;
    slot_waiters_.erase(best);
    slot_last_tag_ = next->tag;
    next->admitted = true;
    slot_cv_.notify_all();
  }

  void start(std::size_t n) {
    stop_ = false;
    const std::size_t workers = n > 0 ? n - 1 : 0;
    threads_.reserve(workers);
    // Seed each worker with the generation at spawn time (stable here:
    // callers hold the job slot, and generation_ only advances inside run()
    // under the same slot). A worker starting from literal 0 after a
    // resize would see the persisted generation as a phantom "new job",
    // run work() against whatever job state exists, and corrupt pending_.
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this, g = generation_] { worker_loop(g); });
    }
    size_.store(workers + 1, std::memory_order_relaxed);
  }

  void shutdown() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  void worker_loop(std::uint64_t seen) {
    // Workers are pool members for life: any parallel_for reached from a
    // job fn on this thread must degrade to serial inline execution, or it
    // would block on jobs_mutex_ (held by the very caller waiting on us).
    in_parallel_region = true;
    while (true) {
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      work();
      {
        std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  void work() {
    const auto* fn = job_fn_;
    if (fn == nullptr) return;
    while (true) {
      const std::size_t chunk_begin =
          cursor_.fetch_add(job_grain_, std::memory_order_relaxed);
      if (chunk_begin >= job_end_) break;
      const std::size_t chunk_end = std::min(job_end_, chunk_begin + job_grain_);
      try {
        (*fn)(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        cursor_.store(job_end_, std::memory_order_relaxed);  // abandon rest
      }
    }
  }

  std::vector<std::thread> threads_;
  /// Job-slot admission state: one job at a time, held for the full
  /// duration of run() and resize(), granted round-robin across tags.
  std::mutex slot_mutex_;
  std::condition_variable slot_cv_;
  std::vector<Waiter*> slot_waiters_;
  bool slot_busy_ = false;
  std::uint64_t slot_last_tag_ = 0;
  /// Pool size snapshot; thread_count() must not touch threads_ itself, or
  /// it would race with a concurrent resize's vector surgery.
  std::atomic<std::size_t> size_{1};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;

  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::size_t job_grain_ = 1;
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr first_error_;
};

}  // namespace

std::size_t hardware_threads() {
  return Pool::instance().thread_count();
}

void set_job_tag(std::uint64_t tag) { current_job_tag = tag; }

std::uint64_t job_tag() { return current_job_tag; }

ScopedSerial::ScopedSerial() : previous_(in_parallel_region) {
  in_parallel_region = true;
}

ScopedSerial::~ScopedSerial() { in_parallel_region = previous_; }

ScopedParallel::ScopedParallel() : previous_(in_parallel_region) {
  in_parallel_region = false;
}

ScopedParallel::~ScopedParallel() { in_parallel_region = previous_; }

void set_thread_count(std::size_t n) {
  // Resizing from inside a parallel_for body would self-deadlock: resize
  // blocks on the job slot held by the very run() waiting on this body.
  TVBF_REQUIRE(!in_parallel_region,
               "set_thread_count must not be called from inside a "
               "parallel_for body or pool worker");
  Pool::instance().resize(
      n == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
             : n);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t min_grain) {
  if (begin >= end) return;
  TVBF_REQUIRE(min_grain > 0, "parallel_for needs min_grain > 0");
  const std::size_t n = end - begin;
  const std::size_t threads = hardware_threads();
  if (in_parallel_region || threads <= 1 || n <= min_grain) {
    fn(begin, end);
    return;
  }
  // Aim for ~4 chunks per thread for load balance, floor at min_grain.
  const std::size_t grain =
      std::max(min_grain, n / (threads * 4) + ((n % (threads * 4)) != 0));
  in_parallel_region = true;
  try {
    Pool::instance().run(begin, end, fn, grain);
  } catch (...) {
    in_parallel_region = false;
    throw;
  }
  in_parallel_region = false;
}

void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t min_grain) {
  parallel_for(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      min_grain);
}

}  // namespace tvbf
