#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace tvbf {
namespace {

/// Long-lived pool: workers block on a condition variable between jobs.
/// A "job" is a shared chunked index range claimed via an atomic cursor.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t thread_count() const { return threads_.size() + 1; }

  void resize(std::size_t n) {
    shutdown();
    start(n);
  }

  void run(std::size_t begin, std::size_t end,
           const std::function<void(std::size_t, std::size_t)>& fn,
           std::size_t grain) {
    {
      std::lock_guard lock(mutex_);
      job_begin_ = begin;
      job_end_ = end;
      job_fn_ = &fn;
      job_grain_ = grain;
      cursor_.store(begin, std::memory_order_relaxed);
      pending_ = threads_.size();
      ++generation_;
      first_error_ = nullptr;
    }
    cv_.notify_all();
    work();  // calling thread participates
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  Pool() { start(std::max<std::size_t>(1, std::thread::hardware_concurrency())); }
  ~Pool() { shutdown(); }

  void start(std::size_t n) {
    stop_ = false;
    const std::size_t workers = n > 0 ? n - 1 : 0;
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void shutdown() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      work();
      {
        std::lock_guard lock(mutex_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  void work() {
    const auto* fn = job_fn_;
    if (fn == nullptr) return;
    while (true) {
      const std::size_t chunk_begin =
          cursor_.fetch_add(job_grain_, std::memory_order_relaxed);
      if (chunk_begin >= job_end_) break;
      const std::size_t chunk_end = std::min(job_end_, chunk_begin + job_grain_);
      try {
        (*fn)(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        cursor_.store(job_end_, std::memory_order_relaxed);  // abandon rest
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;

  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::size_t job_grain_ = 1;
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr first_error_;
};

// parallel_for must not be re-entered from a worker; detect with a flag.
thread_local bool in_parallel_region = false;

}  // namespace

std::size_t hardware_threads() {
  return Pool::instance().thread_count();
}

void set_thread_count(std::size_t n) {
  Pool::instance().resize(
      n == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
             : n);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t min_grain) {
  if (begin >= end) return;
  TVBF_REQUIRE(min_grain > 0, "parallel_for needs min_grain > 0");
  const std::size_t n = end - begin;
  const std::size_t threads = hardware_threads();
  if (in_parallel_region || threads <= 1 || n <= min_grain) {
    fn(begin, end);
    return;
  }
  // Aim for ~4 chunks per thread for load balance, floor at min_grain.
  const std::size_t grain =
      std::max(min_grain, n / (threads * 4) + ((n % (threads * 4)) != 0));
  in_parallel_region = true;
  try {
    Pool::instance().run(begin, end, fn, grain);
  } catch (...) {
    in_parallel_region = false;
    throw;
  }
  in_parallel_region = false;
}

void parallel_for_each(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t)>& fn,
                       std::size_t min_grain) {
  parallel_for(
      begin, end,
      [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(i);
      },
      min_grain);
}

}  // namespace tvbf
