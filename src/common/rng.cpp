#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TVBF_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  TVBF_REQUIRE(stddev >= 0.0, "normal() needs stddev >= 0");
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  TVBF_REQUIRE(n > 0, "uniform_index(n) needs n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = 0;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

void Rng::fill_normal(std::vector<float>& out, double stddev) {
  for (auto& v : out) v = static_cast<float>(normal(0.0, stddev));
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace tvbf
