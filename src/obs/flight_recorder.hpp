// Always-on flight recorder: a fixed-budget ring of structured serving
// events kept for post-mortems.
//
// Metrics aggregate and traces must be armed; the flight recorder is the
// third leg — it is always recording (no arming step), holds the last N
// discrete events that explain server behavior (session admit/retire,
// frame drops, batch-gate resolutions, device submits blowing their cost
// estimate, watchdog observations and trips), and can be dumped as JSON at
// any time: from the /dump ops route, on a watchdog trip, or from the
// terminate/signal hook installed by install_crash_dump().
//
// record() is wait-free: one fetch_add claims a slot, a per-slot seqlock
// (version counter stamped odd while writing, even+claim-index when
// published) lets a concurrent dump skip torn or mid-overwrite slots
// instead of racing them. The ring overwrites oldest-first; overwritten
// events are the price of the fixed budget and are counted. Record sites
// are gated on telemetry::enabled() like every other instrument.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tvbf::obs {

/// What happened. Keep in sync with event_kind_name().
enum class EventKind : std::uint8_t {
  kSessionAdmit = 0,
  kSessionRetire,
  kFrameDrop,
  kGateParked,
  kGateQuorumFired,
  kGateIdleFlush,
  kGateRetireFlush,
  kDeviceOverEstimate,
  kWatchdogObserve,
  kWatchdogTrip,
  kMark,  ///< free-form caller annotation
};

const char* event_kind_name(EventKind kind);

/// Fixed-budget structured event ring. All methods are safe to call
/// concurrently; record() never blocks and never allocates.
class FlightRecorder {
 public:
  /// One recorded event. `a` and `b` are kind-specific scalars (documented
  /// at the record sites); `detail` is a short truncated label.
  struct Event {
    std::int64_t seq = 0;    ///< global record order (0-based)
    std::int64_t t_ns = 0;   ///< steady_clock nanoseconds
    std::int64_t session = -1;
    std::int64_t a = 0;
    std::int64_t b = 0;
    EventKind kind = EventKind::kMark;
    char detail[31] = {};
  };

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The process-wide recorder (leaked, default capacity).
  static FlightRecorder& instance();

  explicit FlightRecorder(std::size_t capacity);
  ~FlightRecorder();

  /// Records one event; no-op while telemetry is disabled.
  void record(EventKind kind, std::int64_t session = -1, std::int64_t a = 0,
              std::int64_t b = 0, const char* detail = nullptr);

  /// Stable snapshot of the ring in record order (oldest surviving event
  /// first). Slots a writer holds mid-record are skipped, not torn.
  std::vector<Event> dump() const;

  /// {"events": [...], "recorded": N, "capacity": C} — events as in
  /// dump(), timestamps in µs relative to the oldest dumped event.
  std::string dump_json() const;

  std::int64_t total_recorded() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  /// Every payload field is an atomic (detail packed into words): a dump
  /// racing a writer performs no non-atomic access, and the version check
  /// discards slots that changed under the copy.
  struct Slot {
    /// Seqlock: 0 = never written; odd = writer inside; even = published
    /// as 2 * (claim index + 1). Readers accept a slot only when the
    /// version read before and after the payload match and are even.
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::int64_t> t_ns{0};
    std::atomic<std::int64_t> session{0};
    std::atomic<std::int64_t> a{0};
    std::atomic<std::int64_t> b{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint64_t> detail[4] = {};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Installs a std::set_terminate handler and SIGTERM/SIGINT handlers that
/// write the process-wide recorder's dump_json() (plus the trace export,
/// when armed) to `path` before the process dies, then chain to the
/// previous handler. Best-effort: the dump allocates, which is fine for
/// terminate and almost always fine for a signal arriving at steady state.
/// Idempotent; later calls only update the path.
void install_crash_dump(const std::string& path);

/// Writes dump_json() + trace export to the crash-dump path (or `path`
/// when given). Returns false when no path is configured or the write
/// fails. Exposed so tests and the watchdog share the crash-hook's writer.
bool write_flight_dump(const std::string& path = "");

}  // namespace tvbf::obs
