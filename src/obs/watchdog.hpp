// Stall watchdog: a monitor thread that notices when the serving stack has
// work but stops making progress, and says why.
//
// Progress is counter advancement (graph.nodes_executed + serve.frames);
// pending work is gauge level (graph.ready_queue + serve.in_flight) or the
// test-only pending_override. A stall is "pending work and no progress for
// stall_s": the watchdog then assembles a StallReport — last per-thread
// activity stamps with ages, the gate parking-lot state, queue levels —
// records a kWatchdogTrip flight event, optionally writes the flight dump,
// and invokes on_trip. One trip per stall episode: the watchdog re-arms
// only after progress resumes, so a wedged server produces one diagnosis,
// not one per period.
//
// The monitor costs a handful of relaxed counter reads per period (default
// 250 ms) and holds no lock any worker path takes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/service_state.hpp"

namespace tvbf::obs {

/// Everything the watchdog knows at the moment it declares a stall.
struct StallReport {
  double stalled_s = 0.0;  ///< time since the last observed progress
  std::int64_t nodes_executed = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t ready_queue = 0;  ///< graph.ready_queue at trip time
  std::int64_t in_flight = 0;    ///< serve.in_flight at trip time
  bool pending_override = false;  ///< trip forced by the injection hook
  std::vector<ThreadNote> threads;
  std::vector<GateState> gates;

  /// Multi-line human-readable diagnosis.
  std::string describe() const;
};

/// Monitor-thread stall detector over the telemetry counters.
class Watchdog {
 public:
  struct Options {
    double period_s = 0.25;  ///< poll interval
    double stall_s = 2.0;    ///< pending-without-progress time that trips
    /// Written on every trip when non-empty (flight dump + trace export).
    std::string dump_path;
    /// Fault-injection hook: when set and returning true, the watchdog
    /// treats work as pending even with idle queues. Lets tests trip the
    /// watchdog without wedging a real executor.
    std::function<bool()> pending_override;
    /// Called from the monitor thread on each trip.
    std::function<void(const StallReport&)> on_trip;
  };

  explicit Watchdog(Options options);
  ~Watchdog();  ///< stops the monitor if still running

  void start();
  void stop();
  bool running() const;

  /// Trips since construction.
  std::int64_t trips() const;

  /// The report from the most recent trip (empty report when trips() == 0).
  StallReport last_report() const;

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::obs
