// Live introspection endpoint: a dependency-free localhost HTTP server
// exposing the ops plane while the serving stack runs.
//
// Routes:
//   /metrics   Prometheus text exposition of the telemetry registry
//              (counters, gauges, histograms as summaries);
//   /healthz   per-session SLO state from ServiceState — 200 while every
//              session is within its deadline-miss and drop budgets,
//              503 otherwise, JSON body either way;
//   /sessions  admitted sessions and batch-gate parking lots as JSON;
//   /dump      the flight-recorder ring plus the trace export, the same
//              body the crash hook writes.
//
// Binds 127.0.0.1 only — this is an operator loopback port, not a public
// surface. One accept thread serves requests sequentially (scrapes and
// health probes are rare and tiny); port 0 picks an ephemeral port,
// readable via port() after start(). No third-party HTTP stack: the
// request parsing is "first line of a GET", which is all a scraper sends.
#pragma once

#include <memory>
#include <string>

#include "telemetry/telemetry.hpp"

namespace tvbf::obs {

/// Prometheus text exposition (version 0.0.4) of a registry snapshot.
/// Instrument dots become underscores under a tvbf_ prefix; histograms
/// render as summaries (p50/p90/p99 quantile labels, _sum, _count).
std::string render_prometheus(const telemetry::Snapshot& snapshot);

/// Localhost ops endpoint. start() binds and spawns the accept thread;
/// stop() (or destruction) joins it.
class OpsServer {
 public:
  struct Options {
    int port = 0;  ///< TCP port on 127.0.0.1; 0 = ephemeral
  };

  explicit OpsServer(Options options);
  ~OpsServer();

  /// Binds and starts serving. False when the port cannot be bound (the
  /// server is then inert; the serving stack keeps running without it).
  bool start();
  void stop();
  bool running() const;

  /// Bound port (the ephemeral pick when Options::port was 0); -1 before
  /// start() or after a failed bind.
  int port() const;

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::obs
