#include "obs/watchdog.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace tvbf::obs {

std::string StallReport::describe() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "stall: no progress for %.2fs with work pending%s\n"
                "  nodes_executed=%lld frames_delivered=%lld "
                "ready_queue=%lld in_flight=%lld\n",
                stalled_s, pending_override ? " (injected)" : "",
                static_cast<long long>(nodes_executed),
                static_cast<long long>(frames_delivered),
                static_cast<long long>(ready_queue),
                static_cast<long long>(in_flight));
  std::string out = buf;
  for (const GateState& g : gates) {
    std::snprintf(buf, sizeof(buf),
                  "  gate model=%s parked=%zu quorum=%zu parked_age=%.2fs\n",
                  g.model.c_str(), g.parked, g.quorum, g.parked_age_s);
    out += buf;
  }
  for (const ThreadNote& t : threads) {
    std::snprintf(buf, sizeof(buf), "  thread %zu: last \"%s\" %.2fs ago\n",
                  t.thread, t.what.c_str(), t.age_s);
    out += buf;
  }
  return out;
}

struct Watchdog::Impl {
  Options options;

  telemetry::Counter& nodes =
      telemetry::Registry::instance().counter("graph.nodes_executed");
  telemetry::Counter& frames =
      telemetry::Registry::instance().counter("serve.frames");
  telemetry::Gauge& ready = telemetry::Registry::instance().gauge(
      "graph.ready_queue");
  telemetry::Gauge& in_flight =
      telemetry::Registry::instance().gauge("serve.in_flight");

  std::mutex mu;
  std::condition_variable cv;
  std::thread monitor;
  bool run = false;

  std::atomic<std::int64_t> trips{0};
  mutable std::mutex report_mu;
  StallReport last_report;

  void loop();
};

void Watchdog::Impl::loop() {
  using Clock = std::chrono::steady_clock;
  std::int64_t last_progress = nodes.value() + frames.value();
  Clock::time_point progress_at = Clock::now();
  bool armed = true;
  std::unique_lock<std::mutex> lock(mu);
  while (run) {
    cv.wait_for(lock, std::chrono::duration<double>(options.period_s),
                [this] { return !run; });
    if (!run) break;
    lock.unlock();

    const std::int64_t progress = nodes.value() + frames.value();
    const bool injected =
        options.pending_override && options.pending_override();
    const bool pending =
        ready.value() > 0 || in_flight.value() > 0 || injected;
    const Clock::time_point now = Clock::now();
    if (progress != last_progress) {
      last_progress = progress;
      progress_at = now;
      armed = true;  // new stall episodes may trip again
    } else if (pending) {
      const double stalled_s =
          std::chrono::duration<double>(now - progress_at).count();
      FlightRecorder::instance().record(EventKind::kWatchdogObserve, -1,
                                        ready.value(), in_flight.value(),
                                        injected ? "injected" : nullptr);
      if (armed && stalled_s >= options.stall_s) {
        armed = false;
        StallReport report;
        report.stalled_s = stalled_s;
        report.nodes_executed = nodes.value();
        report.frames_delivered = frames.value();
        report.ready_queue = ready.value();
        report.in_flight = in_flight.value();
        report.pending_override = injected;
        report.threads = ServiceState::instance().thread_notes();
        report.gates = ServiceState::instance().gates();
        FlightRecorder::instance().record(
            EventKind::kWatchdogTrip, -1, report.ready_queue,
            report.in_flight, injected ? "injected" : nullptr);
        {
          const std::lock_guard<std::mutex> report_lock(report_mu);
          last_report = report;
        }
        trips.fetch_add(1, std::memory_order_release);
        if (!options.dump_path.empty()) write_flight_dump(options.dump_path);
        if (options.on_trip) options.on_trip(report);
      }
    }

    lock.lock();
  }
}

Watchdog::Watchdog(Options options) : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  if (impl_->options.period_s <= 0.0) impl_->options.period_s = 0.25;
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->run) return;
  impl_->run = true;
  impl_->monitor = std::thread([this] { impl_->loop(); });
}

void Watchdog::stop() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->run) return;
    impl_->run = false;
  }
  impl_->cv.notify_all();
  impl_->monitor.join();
}

bool Watchdog::running() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->run;
}

std::int64_t Watchdog::trips() const {
  return impl_->trips.load(std::memory_order_acquire);
}

StallReport Watchdog::last_report() const {
  const std::lock_guard<std::mutex> lock(impl_->report_mu);
  return impl_->last_report;
}

}  // namespace tvbf::obs
