// Live serving state the ops plane introspects: per-session SLO health,
// batch-gate parking, and per-thread last activity.
//
// The serving layer pushes tiny updates here while the ops plane is
// active (a heartbeat per delivered frame, a gate update per parking-lot
// change); the watchdog and the /healthz and /sessions ops routes read
// coherent snapshots back. One process-wide instance, reset() at the
// start of each Server::run — the ops plane observes the server that is
// currently running, exactly like the telemetry registry.
//
// Everything is mutex-guarded except thread_note(), which worker threads
// call per node: that path is a per-thread seqlock slot (two relaxed
// stores and a clock read) so it stays off every lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tvbf::obs {

/// One admitted session as the ops plane sees it.
struct SessionState {
  int id = -1;
  std::string source;
  std::string beamformer;
  std::int64_t frames = 0;
  std::int64_t dropped = 0;
  std::int64_t deadline_misses = 0;  ///< frames over slo_frame_s
  double slo_frame_s = 0.0;          ///< latency SLO; 0 = none
  std::int64_t drop_budget = -1;     ///< allowed drops; < 0 = none
  double last_frame_s = 0.0;         ///< latency of the last frame
  double heartbeat_age_s = 0.0;      ///< since the last delivered frame
  bool retired = false;

  /// Within both SLOs (sessions without SLOs are always healthy; retired
  /// sessions report their final state).
  bool healthy() const {
    return (drop_budget < 0 || dropped <= drop_budget) &&
           (slo_frame_s <= 0.0 || deadline_misses == 0);
  }
};

/// One batch domain's parking lot.
struct GateState {
  std::string model;
  std::size_t parked = 0;
  std::size_t quorum = 0;
  double parked_age_s = 0.0;  ///< since the lot last became non-empty
};

/// One worker thread's most recent activity (diagnosis, not profiling).
struct ThreadNote {
  std::size_t thread = 0;  ///< telemetry::thread_index()
  std::string what;        ///< last node/stage label the thread stamped
  double age_s = 0.0;
};

/// Process-wide, mutex-guarded (thread_note excepted) serving state.
class ServiceState {
 public:
  static ServiceState& instance();

  /// Forgets every session, gate and thread note (new run / tests).
  void reset();

  void admit(int id, std::string source, std::string beamformer,
             double slo_frame_s, std::int64_t drop_budget);
  /// One delivered frame: latency sample + liveness heartbeat.
  void heartbeat(int id, double frame_s);
  void frame_dropped(int id);
  void retire(int id);

  /// Replaces one batch domain's parking-lot state (keyed by `domain`,
  /// any stable per-domain address).
  void gate_update(const void* domain, const std::string& model,
                   std::size_t parked, std::size_t quorum);

  std::vector<SessionState> sessions() const;
  std::vector<GateState> gates() const;
  /// Every admitted session healthy()?
  bool healthy() const;

  /// {"healthy": ..., "sessions": [...]} for the /healthz route.
  std::string healthz_json() const;
  /// {"sessions": [...], "gates": [...]} for the /sessions route.
  std::string sessions_json() const;

  /// Stamps the calling thread's activity slot (lock-free; `what` should
  /// be short and is copied). Workers call this per node; the watchdog
  /// reports each thread's last stamp and its age on a stall.
  void thread_note(const char* what);
  std::vector<ThreadNote> thread_notes() const;

  ServiceState(const ServiceState&) = delete;
  ServiceState& operator=(const ServiceState&) = delete;

 private:
  ServiceState();
  ~ServiceState();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::obs
