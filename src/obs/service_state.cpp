#include "obs/service_state.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace tvbf::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double age_s(std::int64_t since_ns, std::int64_t now_ns) {
  return since_ns > 0 ? static_cast<double>(now_ns - since_ns) * 1e-9 : 0.0;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '_';
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_session(std::string& out, const SessionState& s) {
  out += "{\"id\": " + std::to_string(s.id) + ", \"source\": ";
  append_escaped(out, s.source);
  out += ", \"beamformer\": ";
  append_escaped(out, s.beamformer);
  out += ", \"frames\": " + std::to_string(s.frames);
  out += ", \"dropped\": " + std::to_string(s.dropped);
  out += ", \"deadline_misses\": " + std::to_string(s.deadline_misses);
  out += ", \"slo_frame_s\": ";
  append_double(out, s.slo_frame_s);
  out += ", \"drop_budget\": " + std::to_string(s.drop_budget);
  out += ", \"last_frame_s\": ";
  append_double(out, s.last_frame_s);
  out += ", \"heartbeat_age_s\": ";
  append_double(out, s.heartbeat_age_s);
  out += std::string(", \"retired\": ") + (s.retired ? "true" : "false");
  out += std::string(", \"healthy\": ") + (s.healthy() ? "true" : "false");
  out += "}";
}

/// Per-thread activity slot: single writer (the owning thread), seqlock
/// versioned so readers discard a slot caught mid-stamp. All fields are
/// atomics — no plain memory is shared (see flight_recorder.cpp).
struct ThreadSlot {
  std::atomic<std::uint32_t> version{0};  ///< odd while stamping
  std::atomic<std::int64_t> t_ns{0};
  std::atomic<std::uint64_t> what[3] = {};  ///< 23 chars + NUL, packed
};

constexpr std::size_t kMaxThreads = 256;
constexpr std::size_t kNoteWords = 3;
constexpr std::size_t kNoteChars = kNoteWords * 8;

struct SessionRec {
  SessionState s;
  std::int64_t last_ns = 0;
};

struct GateRec {
  const void* key = nullptr;
  GateState g;
  std::int64_t since_ns = 0;  ///< when the lot last became non-empty
};

}  // namespace

struct ServiceState::Impl {
  mutable std::mutex mu;
  std::vector<SessionRec> sessions;
  std::vector<GateRec> gates;
  ThreadSlot threads[kMaxThreads];

  SessionRec* find(int id) {
    for (auto& r : sessions)
      if (r.s.id == id) return &r;
    return nullptr;
  }
};

ServiceState::ServiceState() : impl_(std::make_unique<Impl>()) {}
ServiceState::~ServiceState() = default;  // never runs: instance is leaked

ServiceState& ServiceState::instance() {
  // Leaked on purpose: worker threads stamp activity slots past main's
  // static teardown.
  static ServiceState* const state =
      new ServiceState();  // tvbf-check: allow(naked-new)
  return *state;
}

void ServiceState::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sessions.clear();
  impl_->gates.clear();
  for (auto& slot : impl_->threads) {
    slot.version.store(0, std::memory_order_relaxed);
    slot.t_ns.store(0, std::memory_order_relaxed);
  }
}

void ServiceState::admit(int id, std::string source, std::string beamformer,
                         double slo_frame_s, std::int64_t drop_budget) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  SessionRec rec;
  rec.s.id = id;
  rec.s.source = std::move(source);
  rec.s.beamformer = std::move(beamformer);
  rec.s.slo_frame_s = slo_frame_s;
  rec.s.drop_budget = drop_budget;
  rec.last_ns = steady_ns();
  impl_->sessions.push_back(std::move(rec));
}

void ServiceState::heartbeat(int id, double frame_s) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  SessionRec* rec = impl_->find(id);
  if (rec == nullptr) return;
  ++rec->s.frames;
  rec->s.last_frame_s = frame_s;
  if (rec->s.slo_frame_s > 0.0 && frame_s > rec->s.slo_frame_s)
    ++rec->s.deadline_misses;
  rec->last_ns = steady_ns();
}

void ServiceState::frame_dropped(int id) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  SessionRec* rec = impl_->find(id);
  if (rec != nullptr) ++rec->s.dropped;
}

void ServiceState::retire(int id) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  SessionRec* rec = impl_->find(id);
  if (rec != nullptr) rec->s.retired = true;
}

void ServiceState::gate_update(const void* domain, const std::string& model,
                               std::size_t parked, std::size_t quorum) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  GateRec* rec = nullptr;
  for (auto& g : impl_->gates)
    if (g.key == domain) rec = &g;
  if (rec == nullptr) {
    impl_->gates.push_back(GateRec{domain, GateState{model, 0, 0, 0.0}, 0});
    rec = &impl_->gates.back();
  }
  const bool was_empty = rec->g.parked == 0;
  rec->g.parked = parked;
  rec->g.quorum = quorum;
  if (parked == 0) {
    rec->since_ns = 0;
  } else if (was_empty) {
    rec->since_ns = steady_ns();
  }
}

std::vector<SessionState> ServiceState::sessions() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const std::int64_t now = steady_ns();
  std::vector<SessionState> out;
  out.reserve(impl_->sessions.size());
  for (const auto& rec : impl_->sessions) {
    SessionState s = rec.s;
    s.heartbeat_age_s = age_s(rec.last_ns, now);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<GateState> ServiceState::gates() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const std::int64_t now = steady_ns();
  std::vector<GateState> out;
  out.reserve(impl_->gates.size());
  for (const auto& rec : impl_->gates) {
    GateState g = rec.g;
    g.parked_age_s = age_s(rec.since_ns, now);
    out.push_back(std::move(g));
  }
  return out;
}

bool ServiceState::healthy() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& rec : impl_->sessions)
    if (!rec.s.healthy()) return false;
  return true;
}

std::string ServiceState::healthz_json() const {
  const std::vector<SessionState> all = sessions();
  bool ok = true;
  for (const auto& s : all) ok = ok && s.healthy();
  std::string out =
      std::string("{\"healthy\": ") + (ok ? "true" : "false") +
      ",\n \"sessions\": [";
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    append_session(out, all[i]);
  }
  out += all.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string ServiceState::sessions_json() const {
  const std::vector<SessionState> all = sessions();
  const std::vector<GateState> gs = gates();
  std::string out = "{\"sessions\": [";
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    append_session(out, all[i]);
  }
  out += all.empty() ? "],\n \"gates\": [" : "\n],\n \"gates\": [";
  for (std::size_t i = 0; i < gs.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += "{\"model\": ";
    append_escaped(out, gs[i].model);
    out += ", \"parked\": " + std::to_string(gs[i].parked);
    out += ", \"quorum\": " + std::to_string(gs[i].quorum);
    out += ", \"parked_age_s\": ";
    append_double(out, gs[i].parked_age_s);
    out += "}";
  }
  out += gs.empty() ? "]}\n" : "\n]}\n";
  return out;
}

void ServiceState::thread_note(const char* what) {
  if (!telemetry::enabled()) return;
  const std::size_t idx = telemetry::thread_index();
  if (idx >= kMaxThreads) return;
  ThreadSlot& slot = impl_->threads[idx];
  // Single writer per slot (this thread); the odd/even stamp only protects
  // readers from a torn copy.
  const std::uint32_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.t_ns.store(steady_ns(), std::memory_order_relaxed);
  char packed[kNoteChars] = {};
  if (what != nullptr) std::strncpy(packed, what, kNoteChars - 1);
  for (std::size_t w = 0; w < kNoteWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed + w * 8, 8);
    slot.what[w].store(word, std::memory_order_relaxed);
  }
  slot.version.store(v + 2, std::memory_order_release);
}

std::vector<ThreadNote> ServiceState::thread_notes() const {
  const std::int64_t now = steady_ns();
  std::vector<ThreadNote> out;
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    const ThreadSlot& slot = impl_->threads[i];
    const std::uint32_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;
    const std::int64_t t = slot.t_ns.load(std::memory_order_relaxed);
    char packed[kNoteChars];
    for (std::size_t w = 0; w < kNoteWords; ++w) {
      const std::uint64_t word = slot.what[w].load(std::memory_order_relaxed);
      std::memcpy(packed + w * 8, &word, 8);
    }
    packed[kNoteChars - 1] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != v1) continue;
    ThreadNote note;
    note.thread = i;
    note.what = packed;
    note.age_s = age_s(t, now);
    out.push_back(std::move(note));
  }
  return out;
}

}  // namespace tvbf::obs
