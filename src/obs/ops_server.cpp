#include "obs/ops_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/service_state.hpp"
#include "telemetry/trace.hpp"

namespace tvbf::obs {

namespace {

/// tvbf_ prefix, dots (and anything else Prometheus rejects) to
/// underscores.
std::string prom_name(const std::string& name) {
  std::string out = "tvbf_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

void append_line(std::string& out, const std::string& name,
                 const char* suffix, const char* labels, double value) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s%s%s %.9g\n", name.c_str(), suffix,
                labels, value);
  out += buf;
}

std::string http_response(int status, const char* content_type,
                          const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 503 ? "Service Unavailable"
                                       : "Error";
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                status, reason, content_type, body.size());
  return head + body;
}

}  // namespace

std::string render_prometheus(const telemetry::Snapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prom_name(c.name);
    out += "# TYPE " + name + " counter\n";
    append_line(out, name, "", "", static_cast<double>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    append_line(out, name, "", "", static_cast<double>(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    out += "# TYPE " + name + " summary\n";
    append_line(out, name, "", "{quantile=\"0.5\"}", h.p50_s);
    append_line(out, name, "", "{quantile=\"0.9\"}", h.p90_s);
    append_line(out, name, "", "{quantile=\"0.99\"}", h.p99_s);
    append_line(out, name, "_sum", "", h.sum_s);
    append_line(out, name, "_count", "", static_cast<double>(h.count));
  }
  return out;
}

struct OpsServer::Impl {
  Options options;
  int listen_fd = -1;
  std::atomic<int> bound_port{-1};
  std::atomic<bool> run{false};
  std::thread accept_thread;

  void loop();
  void serve_one(int fd);
  static std::string route(const std::string& path, int& status,
                           const char*& content_type);
};

std::string OpsServer::Impl::route(const std::string& path, int& status,
                                   const char*& content_type) {
  status = 200;
  content_type = "application/json";
  if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4";
    return render_prometheus(telemetry::Registry::instance().snapshot());
  }
  if (path == "/healthz") {
    if (!ServiceState::instance().healthy()) status = 503;
    return ServiceState::instance().healthz_json();
  }
  if (path == "/sessions") {
    return ServiceState::instance().sessions_json();
  }
  if (path == "/dump") {
    return "{\"flight\": " + FlightRecorder::instance().dump_json() +
           ", \"trace\": " + telemetry::trace_export_json() + "}\n";
  }
  status = 404;
  return "{\"error\": \"no such route\"}\n";
}

void OpsServer::Impl::serve_one(int fd) {
  // Read the request head; a scrape's GET fits one read, but poll a
  // little for slow writers.
  char req[1024];
  std::size_t have = 0;
  while (have < sizeof(req) - 1) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) break;
    const ssize_t n = ::recv(fd, req + have, sizeof(req) - 1 - have, 0);
    if (n <= 0) break;
    have += static_cast<std::size_t>(n);
    req[have] = '\0';
    if (std::strstr(req, "\r\n\r\n") != nullptr) break;
  }
  req[have] = '\0';

  std::string body;
  int status = 400;
  const char* content_type = "application/json";
  if (std::strncmp(req, "GET ", 4) == 0) {
    const char* start = req + 4;
    const char* end = std::strchr(start, ' ');
    if (end != nullptr) {
      body = route(std::string(start, end), status, content_type);
    }
  }
  if (body.empty() && status == 400) body = "{\"error\": \"bad request\"}\n";

  const std::string response = http_response(status, content_type, body);
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

void OpsServer::Impl::loop() {
  while (run.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    serve_one(fd);
  }
}

OpsServer::OpsServer(Options options) : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

OpsServer::~OpsServer() { stop(); }

bool OpsServer::start() {
  if (impl_->run.load(std::memory_order_acquire)) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(std::max(impl_->options.port, 0)));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 8) < 0) {
    ::close(fd);
    return false;
  }
  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
      0) {
    impl_->bound_port.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  impl_->listen_fd = fd;
  impl_->run.store(true, std::memory_order_release);
  impl_->accept_thread = std::thread([this] { impl_->loop(); });
  return true;
}

void OpsServer::stop() {
  if (!impl_->run.exchange(false, std::memory_order_acq_rel)) return;
  impl_->accept_thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->bound_port.store(-1, std::memory_order_release);
}

bool OpsServer::running() const {
  return impl_->run.load(std::memory_order_acquire);
}

int OpsServer::port() const {
  return impl_->bound_port.load(std::memory_order_acquire);
}

}  // namespace tvbf::obs
