#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace tvbf::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSessionAdmit: return "session_admit";
    case EventKind::kSessionRetire: return "session_retire";
    case EventKind::kFrameDrop: return "frame_drop";
    case EventKind::kGateParked: return "gate_parked";
    case EventKind::kGateQuorumFired: return "gate_quorum_fired";
    case EventKind::kGateIdleFlush: return "gate_idle_flush";
    case EventKind::kGateRetireFlush: return "gate_retire_flush";
    case EventKind::kDeviceOverEstimate: return "device_over_estimate";
    case EventKind::kWatchdogObserve: return "watchdog_observe";
    case EventKind::kWatchdogTrip: return "watchdog_trip";
    case EventKind::kMark: return "mark";
  }
  return "unknown";
}

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// detail[] packed into words so every slot field is an atomic: the whole
/// ring is readable mid-write without a single non-atomic access (the
/// seqlock version check then discards torn slots — and TSan, which does
/// not model seqlocks over plain memory, sees only atomics).
constexpr std::size_t kDetailWords = 4;
constexpr std::size_t kDetailChars = kDetailWords * 8;  // 31 chars + NUL

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  // Leaked on purpose: record sites (sessions, devices, the watchdog) may
  // outlive main's static teardown.
  static FlightRecorder* const rec =
      new FlightRecorder(kDefaultCapacity);  // tvbf-check: allow(naked-new)
  return *rec;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

FlightRecorder::~FlightRecorder() = default;

void FlightRecorder::record(EventKind kind, std::int64_t session,
                            std::int64_t a, std::int64_t b,
                            const char* detail) {
  if (!telemetry::enabled()) return;
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[idx % capacity_];
  // Seqlock write: stamp odd, fence so the payload stores cannot move
  // above the stamp, write the payload, publish even. A reader that saw
  // the odd stamp — or mismatched stamps — discards the slot.
  s.version.store(2 * idx + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.t_ns.store(steady_ns(), std::memory_order_relaxed);
  s.session.store(session, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  char packed[kDetailChars] = {};
  if (detail != nullptr) {
    std::strncpy(packed, detail, kDetailChars - 1);
  }
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed + w * 8, 8);
    s.detail[w].store(word, std::memory_order_relaxed);
  }
  s.version.store(2 * idx + 2, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::dump() const {
  std::vector<Event> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t v1 = s.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;
    Event e;
    e.t_ns = s.t_ns.load(std::memory_order_relaxed);
    e.session = s.session.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
    char packed[kDetailChars];
    for (std::size_t w = 0; w < kDetailWords; ++w) {
      const std::uint64_t word = s.detail[w].load(std::memory_order_relaxed);
      std::memcpy(packed + w * 8, &word, 8);
    }
    packed[kDetailChars - 1] = '\0';
    std::memcpy(e.detail, packed, sizeof(e.detail) - 1);
    e.detail[sizeof(e.detail) - 1] = '\0';
    // The payload loads may not sink below the re-read of the version:
    // same-stamp means the slot was stable across the copy.
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t v2 = s.version.load(std::memory_order_relaxed);
    if (v1 != v2) continue;
    e.seq = static_cast<std::int64_t>(v1 / 2 - 1);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::string FlightRecorder::dump_json() const {
  const std::vector<Event> events = dump();
  std::int64_t base_ns = 0;
  if (!events.empty()) base_ns = events.front().t_ns;
  const std::int64_t recorded = total_recorded();
  std::string out = "{\"recorded\": " + std::to_string(recorded) +
                    ", \"capacity\": " + std::to_string(capacity_) +
                    ", \"overwritten\": " +
                    std::to_string(std::max<std::int64_t>(
                        0, recorded - static_cast<std::int64_t>(capacity_))) +
                    ",\n \"events\": [";
  char buf[256];
  bool first = true;
  for (const Event& e : events) {
    char safe[sizeof(e.detail)];
    std::size_t w = 0;
    for (std::size_t r = 0; e.detail[r] != '\0' && w + 1 < sizeof(safe);
         ++r) {
      const char c = e.detail[r];
      if (c == '"' || c == '\\') {
        safe[w++] = '_';
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        safe[w++] = c;
      }
    }
    safe[w] = '\0';
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"seq\": %lld, \"t_us\": %.3f, \"kind\": \"%s\", "
                  "\"session\": %lld, \"a\": %lld, \"b\": %lld, "
                  "\"detail\": \"%s\"}",
                  first ? "" : ",", static_cast<long long>(e.seq),
                  static_cast<double>(e.t_ns - base_ns) * 1e-3,
                  event_kind_name(e.kind), static_cast<long long>(e.session),
                  static_cast<long long>(e.a), static_cast<long long>(e.b),
                  safe);
    out += buf;
    first = false;
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::int64_t FlightRecorder::total_recorded() const {
  return static_cast<std::int64_t>(head_.load(std::memory_order_relaxed));
}

void FlightRecorder::clear() {
  // Not safe against concurrent record(); a test/startup hook, like
  // Registry::reset().
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].version.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Crash-dump hook

namespace {

std::mutex g_dump_mu;
std::string& dump_path() {
  // Leaked on purpose: the terminate/signal handlers may fire during
  // static teardown, after a plain global string would be destroyed.
  static std::string* const path =
      new std::string();  // tvbf-check: allow(naked-new)
  return *path;
}

std::terminate_handler g_prev_terminate = nullptr;
using SignalHandler = void (*)(int);
SignalHandler g_prev_sigterm = SIG_DFL;
SignalHandler g_prev_sigint = SIG_DFL;

[[noreturn]] void crash_terminate() {
  write_flight_dump();
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void crash_signal(int sig) {
  write_flight_dump();
  const SignalHandler prev =
      sig == SIGTERM ? g_prev_sigterm : g_prev_sigint;
  std::signal(sig, prev != nullptr ? prev : SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_crash_dump(const std::string& path) {
  const std::lock_guard<std::mutex> lock(g_dump_mu);
  const bool installed = !dump_path().empty();
  dump_path() = path;
  if (installed) return;
  g_prev_terminate = std::set_terminate(&crash_terminate);
  g_prev_sigterm = std::signal(SIGTERM, &crash_signal);
  g_prev_sigint = std::signal(SIGINT, &crash_signal);
}

bool write_flight_dump(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    const std::lock_guard<std::mutex> lock(g_dump_mu);
    target = dump_path();
  }
  if (target.empty()) return false;
  const std::string body = "{\"flight\": " + FlightRecorder::instance().dump_json() +
                           ", \"trace\": " + telemetry::trace_export_json() +
                           "}\n";
  std::FILE* f = std::fopen(target.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace tvbf::obs
