#include "runtime/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/timer.hpp"
#include "dsp/hilbert.hpp"
#include "runtime/plan_cache.hpp"
#include "us/tof.hpp"

namespace tvbf::rt {

namespace {
// Stage indices into PipelineReport::stages.
enum Stage : std::size_t { kSource, kTof, kBeamform, kPost, kSink };
}  // namespace

void StageStats::record(double seconds) {
  ++frames;
  total_s += seconds;
  min_s = std::min(min_s, seconds);
  max_s = std::max(max_s, seconds);
}

const StageStats& PipelineReport::stage(const std::string& name) const {
  for (const auto& s : stages)
    if (s.name == name) return s;
  throw InvalidArgument("no pipeline stage named '" + name + "'");
}

FrameProcessor::FrameProcessor(std::shared_ptr<const bf::Beamformer> beamformer,
                               PipelineConfig config)
    : beamformer_(std::move(beamformer)), config_(std::move(config)) {
  TVBF_REQUIRE(beamformer_ != nullptr, "frame processor needs a beamformer");
  config_.grid.validate();
  TVBF_REQUIRE(config_.dynamic_range_db > 0.0,
               "dynamic range must be positive");
}

const us::TofCube& FrameProcessor::apply_tof(const Frame& frame) {
  if (config_.use_plan_cache) {
    // The cache makes repeated keys O(1); holding the shared_ptr keeps the
    // stream's plan alive even if a larger working set evicts it.
    plan_ = PlanCache::instance().get_for(frame.acq, config_.grid,
                                          config_.tof.interp);
    plan_->apply(frame.acq, config_.tof.analytic, cube_, &workspace_);
  } else {
    cube_ = us::tof_correct(frame.acq, config_.grid, config_.tof);
  }
  return cube_;
}

FrameOutput FrameProcessor::finish(const Frame& frame, Tensor iq) {
  iq_ = std::move(iq);
  envelope_ = dsp::envelope_iq(iq_);
  db_ = dsp::log_compress(envelope_, config_.dynamic_range_db);
  return FrameOutput{frame.index, frame.time_s, iq_, envelope_, db_};
}

FrameOutput FrameProcessor::process(const Frame& frame, StageTimes* times) {
  Timer t;
  apply_tof(frame);
  if (times) times->tof_s = t.seconds();

  t.reset();
  iq_ = beamformer_->beamform(cube_);
  if (times) times->beamform_s = t.seconds();

  t.reset();
  envelope_ = dsp::envelope_iq(iq_);
  db_ = dsp::log_compress(envelope_, config_.dynamic_range_db);
  if (times) times->post_s = t.seconds();
  return FrameOutput{frame.index, frame.time_s, iq_, envelope_, db_};
}

Pipeline::Pipeline(std::shared_ptr<FrameSource> source,
                   std::shared_ptr<const bf::Beamformer> beamformer,
                   PipelineConfig config)
    : source_(std::move(source)),
      processor_(std::move(beamformer), std::move(config)) {
  TVBF_REQUIRE(source_ != nullptr, "pipeline needs a frame source");
}

void Pipeline::process_frame(Frame& frame, const Sink& sink,
                             PipelineReport& report) {
  FrameProcessor::StageTimes times;
  const FrameOutput out = processor_.process(frame, &times);
  report.stages[kTof].record(times.tof_s);
  report.stages[kBeamform].record(times.beamform_s);
  report.stages[kPost].record(times.post_s);

  Timer t;
  if (sink) sink(out);
  report.stages[kSink].record(t.seconds());
  ++report.frames;
}

PipelineReport Pipeline::run(const Sink& sink) {
  PipelineReport report;
  for (const char* name : {"source", "tof", "beamform", "postprocess", "sink"})
    report.stages.push_back(StageStats{.name = name});

  const auto cache_before = PlanCache::instance().stats();
  source_->reset();
  Timer wall;

  if (!processor_.config().overlap) {
    Frame frame;
    while (true) {
      Timer t;
      const bool have = source_->next(frame);
      if (!have) break;
      report.stages[kSource].record(t.seconds());
      process_frame(frame, sink, report);
    }
  } else {
    // Producer/consumer with a depth-2 queue: the source acquires frame
    // k+1 while this thread processes frame k. Both sides may issue
    // parallel_for jobs; the pool serializes top-level jobs, so overlap
    // shrinks wall time whenever either side has serial work (RF copy,
    // FFT setup, sink I/O) and never changes results.
    constexpr std::size_t kQueueDepth = 2;
    std::mutex mu;
    std::condition_variable cv_space, cv_data;
    std::deque<Frame> queue;
    bool done = false;
    bool stop = false;
    std::exception_ptr source_error;
    StageStats source_stats{.name = "source"};

    std::thread producer([&] {
      try {
        while (true) {
          Frame frame;
          Timer t;
          const bool have = source_->next(frame);
          if (!have) break;
          source_stats.record(t.seconds());
          std::unique_lock<std::mutex> lock(mu);
          cv_space.wait(lock,
                        [&] { return queue.size() < kQueueDepth || stop; });
          if (stop) break;
          queue.push_back(std::move(frame));
          cv_data.notify_one();
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        source_error = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv_data.notify_all();
    });

    try {
      while (true) {
        Frame frame;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_data.wait(lock, [&] { return !queue.empty() || done; });
          if (queue.empty()) break;
          frame = std::move(queue.front());
          queue.pop_front();
          cv_space.notify_one();
        }
        process_frame(frame, sink, report);
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        stop = true;
        cv_space.notify_all();
      }
      producer.join();
      throw;
    }
    producer.join();
    if (source_error) std::rethrow_exception(source_error);
    report.stages[kSource] = source_stats;
  }

  report.wall_s = wall.seconds();
  const auto cache_after = PlanCache::instance().stats();
  report.plan_cache_hits = cache_after.hits - cache_before.hits;
  report.plan_cache_misses = cache_after.misses - cache_before.misses;
  return report;
}

}  // namespace tvbf::rt
