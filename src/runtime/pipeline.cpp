#include "runtime/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "beamform/compounding.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "device/device.hpp"
#include "dsp/hilbert.hpp"
#include "graph/executor.hpp"
#include "us/plan_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "us/tof.hpp"

namespace tvbf::rt {

namespace {
// Stage indices into PipelineReport::stages.
enum Stage : std::size_t { kSource, kTof, kCompound, kBeamform, kPost, kSink };

// Process-wide stage histograms, shared by every FrameProcessor (solo
// pipelines and server sessions alike). These subsume the min/mean/max of
// StageStats with full latency distributions; the per-report StageStats
// remain the exact per-run figures.
struct StageInstruments {
  telemetry::LatencyHistogram& source =
      telemetry::Registry::instance().histogram("pipeline.source_s");
  telemetry::LatencyHistogram& tof =
      telemetry::Registry::instance().histogram("pipeline.tof_s");
  telemetry::LatencyHistogram& compound =
      telemetry::Registry::instance().histogram("pipeline.compound_s");
  telemetry::LatencyHistogram& beamform =
      telemetry::Registry::instance().histogram("pipeline.beamform_s");
  telemetry::LatencyHistogram& post =
      telemetry::Registry::instance().histogram("pipeline.post_s");
  telemetry::LatencyHistogram& sink =
      telemetry::Registry::instance().histogram("pipeline.sink_s");
};

StageInstruments& stage_instruments() {
  static StageInstruments instruments;
  return instruments;
}
}  // namespace

void StageStats::record(double seconds) {
  ++frames;
  total_s += seconds;
  min_s = std::min(min_s, seconds);
  max_s = std::max(max_s, seconds);
}

const StageStats& PipelineReport::stage(const std::string& name) const {
  for (const auto& s : stages)
    if (s.name == name) return s;
  throw InvalidArgument("no pipeline stage named '" + name + "'");
}

FrameProcessor::FrameProcessor(std::shared_ptr<const bf::Beamformer> beamformer,
                               PipelineConfig config)
    : beamformer_(std::move(beamformer)),
      config_(std::move(config)),
      device_(config_.device != nullptr ? config_.device.get()
                                        : &device::cpu()) {
  TVBF_REQUIRE(beamformer_ != nullptr, "frame processor needs a beamformer");
  config_.grid.validate();
  TVBF_REQUIRE(config_.dynamic_range_db > 0.0,
               "dynamic range must be positive");
}

void FrameProcessor::prepare(const Frame& frame) {
  num_angles_ = frame.num_acquisitions();
  times_ = StageTimes{};
  angle_tof_s_.assign(num_angles_, 0.0);
  workspaces_.resize(num_angles_);
  plans_.assign(num_angles_, nullptr);
  if (config_.use_plan_cache) {
    // One cached plan per steering angle; holding the shared_ptrs keeps the
    // stream's plans alive even if a larger working set evicts them.
    for (std::size_t i = 0; i < num_angles_; ++i)
      plans_[i] = us::PlanCache::instance().get_for(
          frame.acquisition(i), config_.grid, config_.tof.interp);
  }
  slots_.clear();
  if (num_angles_ > 1) {
    // Per-angle destination cubes, recycled through the arena frame after
    // frame (apply() reuses correctly-shaped buffers without allocating).
    const Shape cube_shape{config_.grid.nz, config_.grid.nx,
                           frame.acq.probe.num_elements};
    slots_.resize(num_angles_);
    for (auto& slot : slots_) {
      slot.real = arena_.acquire(cube_shape);
      slot.imag = config_.tof.analytic ? arena_.acquire(cube_shape) : Tensor();
      slot.grid = config_.grid;
    }
  }
}

void FrameProcessor::apply_tof_angle(const Frame& frame, std::size_t angle) {
  TVBF_REQUIRE(angle < num_angles_, "angle index out of range");
  // The stage may run on any scheduler/executor thread: route its kernels
  // (the plan's gather command) through this stream's backend.
  const device::ScopedDevice scope(*device_);
  Timer t;
  us::TofCube& target = num_angles_ > 1 ? slots_[angle] : cube_;
  if (config_.use_plan_cache) {
    plans_[angle]->apply(frame.acquisition(angle), config_.tof.analytic,
                         target, &workspaces_[angle]);
  } else {
    target = us::tof_correct(frame.acquisition(angle), config_.grid,
                             config_.tof);
  }
  angle_tof_s_[angle] = t.seconds();
}

const us::TofCube& FrameProcessor::compound() {
  Timer t;
  times_.tof_s = 0.0;
  for (const double s : angle_tof_s_) times_.tof_s += s;
  if (num_angles_ > 1) {
    std::vector<const us::TofCube*> cubes;
    cubes.reserve(slots_.size());
    for (const auto& slot : slots_) cubes.push_back(&slot);
    bf::compound_cubes(cubes, cube_);
    for (auto& slot : slots_) {
      arena_.release(std::move(slot.real));
      arena_.release(std::move(slot.imag));
    }
    slots_.clear();
  }
  times_.compound_s = t.seconds();
  return cube_;
}

void FrameProcessor::beamform() {
  const device::ScopedDevice scope(*device_);
  Timer t;
  iq_ = beamformer_->beamform(cube_);
  times_.beamform_s = t.seconds();
}

FrameOutput FrameProcessor::finish(const Frame& frame) {
  Timer t;
  envelope_ = dsp::envelope_iq(iq_);
  db_ = dsp::log_compress(envelope_, config_.dynamic_range_db);
  times_.post_s = t.seconds();
  // The frame's stage set is complete here, in every scheduling mode.
  // Zero durations are stages this frame did not run locally (batched
  // sessions beamform in the cross-session stacked pass) — recording them
  // would pollute the distributions.
  StageInstruments& si = stage_instruments();
  if (times_.tof_s > 0.0) si.tof.record(times_.tof_s);
  if (times_.compound_s > 0.0) si.compound.record(times_.compound_s);
  if (times_.beamform_s > 0.0) si.beamform.record(times_.beamform_s);
  if (times_.post_s > 0.0) si.post.record(times_.post_s);
  return FrameOutput{frame.index, frame.time_s, iq_, envelope_, db_,
                     frame.trace_id};
}

FrameOutput FrameProcessor::finish(const Frame& frame, Tensor iq) {
  iq_ = std::move(iq);
  return finish(frame);
}

const us::TofCube& FrameProcessor::apply_tof(const Frame& frame) {
  prepare(frame);
  for (std::size_t i = 0; i < num_angles_; ++i) apply_tof_angle(frame, i);
  return compound();
}

FrameOutput FrameProcessor::process(const Frame& frame, StageTimes* times) {
  apply_tof(frame);
  beamform();
  const FrameOutput out = finish(frame);
  if (times) *times = times_;
  return out;
}

Pipeline::Pipeline(std::shared_ptr<FrameSource> source,
                   std::shared_ptr<const bf::Beamformer> beamformer,
                   PipelineConfig config)
    : source_(std::move(source)),
      processor_(std::move(beamformer), std::move(config)) {
  TVBF_REQUIRE(source_ != nullptr, "pipeline needs a frame source");
}

Pipeline::~Pipeline() = default;

void Pipeline::record_stage_times(PipelineReport& report) {
  const FrameProcessor::StageTimes& times = processor_.last_times();
  report.stages[kTof].record(times.tof_s);
  report.stages[kCompound].record(times.compound_s);
  report.stages[kBeamform].record(times.beamform_s);
  report.stages[kPost].record(times.post_s);
}

void Pipeline::process_frame(Frame& frame, const Sink& sink,
                             PipelineReport& report) {
  FrameProcessor::StageTimes times;
  const FrameOutput out = processor_.process(frame, &times);
  record_stage_times(report);

  Timer t;
  if (sink) sink(out);
  const double sink_s = t.seconds();
  report.stages[kSink].record(sink_s);
  if (sink_s > 0.0) stage_instruments().sink.record(sink_s);
  ++report.frames;
}

void Pipeline::build_graph(std::size_t num_angles) {
  // One ToF node per steering angle -> compound -> beamform -> postprocess.
  // Node bodies read the current frame through graph_frame_ (stable slot
  // rebound per launch) and leave the FrameOutput in graph_out_; the sink
  // stays on the driving thread to preserve the run() contract.
  graph_->clear();
  std::vector<graph::NodeId> tof_ids;
  tof_ids.reserve(num_angles);
  for (std::size_t i = 0; i < num_angles; ++i) {
    tof_ids.push_back(graph_->add(
        "tof[" + std::to_string(i) + "]", {}, [this, i] {
          processor_.apply_tof_angle(*graph_frame_, i);
          return graph::Status::kDone;
        }));
  }
  const graph::NodeId compound = graph_->add("compound", tof_ids, [this] {
    processor_.compound();
    return graph::Status::kDone;
  });
  const graph::NodeId beamform = graph_->add("beamform", {compound}, [this] {
    processor_.beamform();
    return graph::Status::kDone;
  });
  graph_->add("postprocess", {beamform}, [this] {
    graph_out_.emplace(processor_.finish(*graph_frame_));
    return graph::Status::kDone;
  });
}

void Pipeline::process_frame_graph(Frame& frame, const Sink& sink,
                                   PipelineReport& report) {
  processor_.prepare(frame);
  if (processor_.num_angles() != graph_angles_) {
    build_graph(processor_.num_angles());
    graph_angles_ = processor_.num_angles();
  }
  graph_frame_ = &frame;
  graph_out_.reset();

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  executor_->launch(
      *graph_,
      [&](std::exception_ptr e) {
        const std::lock_guard<std::mutex> lock(mu);
        error = e;
        done = true;
        cv.notify_all();
      },
      frame.trace_id);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  if (error) std::rethrow_exception(error);

  record_stage_times(report);
  Timer t;
  if (sink) sink(*graph_out_);
  const double sink_s = t.seconds();
  report.stages[kSink].record(sink_s);
  if (sink_s > 0.0) stage_instruments().sink.record(sink_s);
  ++report.frames;
}

PipelineReport Pipeline::run(const Sink& sink) {
  PipelineReport report;
  for (const char* name :
       {"source", "tof", "compound", "beamform", "postprocess", "sink"})
    report.stages.push_back(StageStats{.name = name});

  const bool graph_mode =
      processor_.config().scheduling == StageScheduling::kGraph;
  if (graph_mode && !executor_) {
    // A solo stream wants latency, not throughput: node bodies keep their
    // pool fan-out (serialize_nodes=false) and the executor only needs
    // enough workers to cover concurrent ToF-angle nodes.
    graph::Executor::Options opts;
    opts.num_workers = hardware_threads();
    opts.serialize_nodes = false;
    executor_ = std::make_unique<graph::Executor>(opts);
    graph_ = std::make_unique<graph::FrameGraph>();
    graph_angles_ = 0;
  }
  const auto step = [&](Frame& frame) {
    if (graph_mode)
      process_frame_graph(frame, sink, report);
    else
      process_frame(frame, sink, report);
  };

  const auto cache_before = us::PlanCache::instance().stats();
  source_->reset();
  Timer wall;

  if (!processor_.config().overlap) {
    Frame frame;
    while (true) {
      Timer t;
      const bool have = source_->next(frame);
      if (!have) break;
      const double source_s = t.seconds();
      report.stages[kSource].record(source_s);
      if (source_s > 0.0) stage_instruments().source.record(source_s);
      step(frame);
    }
  } else {
    // Producer/consumer with a depth-2 queue: the source acquires frame
    // k+1 while this thread processes frame k. Both sides may issue
    // parallel_for jobs; the pool serializes top-level jobs, so overlap
    // shrinks wall time whenever either side has serial work (RF copy,
    // FFT setup, sink I/O) and never changes results.
    constexpr std::size_t kQueueDepth = 2;
    std::mutex mu;
    std::condition_variable cv_space, cv_data;
    std::deque<Frame> queue;
    bool done = false;
    bool stop = false;
    std::exception_ptr source_error;
    StageStats source_stats{.name = "source"};

    std::thread producer([&] {
      try {
        while (true) {
          Frame frame;
          Timer t;
          const bool have = source_->next(frame);
          if (!have) break;
          const double source_s = t.seconds();
          source_stats.record(source_s);
          if (source_s > 0.0) stage_instruments().source.record(source_s);
          std::unique_lock<std::mutex> lock(mu);
          cv_space.wait(lock,
                        [&] { return queue.size() < kQueueDepth || stop; });
          if (stop) break;
          queue.push_back(std::move(frame));
          cv_data.notify_one();
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        source_error = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv_data.notify_all();
    });

    try {
      while (true) {
        Frame frame;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_data.wait(lock, [&] { return !queue.empty() || done; });
          if (queue.empty()) break;
          frame = std::move(queue.front());
          queue.pop_front();
          cv_space.notify_one();
        }
        step(frame);
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        stop = true;
        cv_space.notify_all();
      }
      producer.join();
      throw;
    }
    producer.join();
    if (source_error) std::rethrow_exception(source_error);
    report.stages[kSource] = source_stats;
  }

  report.wall_s = wall.seconds();
  const auto cache_after = us::PlanCache::instance().stats();
  report.plan_cache_hits = cache_after.hits - cache_before.hits;
  report.plan_cache_misses = cache_after.misses - cache_before.misses;
  return report;
}

}  // namespace tvbf::rt
