// Streaming image-formation pipeline.
//
// Chains source -> ToF apply (cached plan) -> Beamformer -> envelope /
// log-compression -> sink over reusable frame buffers, with optional
// producer/consumer overlap: the next frame is acquired (simulated or
// replayed) while the current one is beamformed, both sides sharing the
// process-wide thread pool. Per-stage latency statistics and plan-cache
// counters come back in a PipelineReport, which is how bench_pipeline
// quantifies the plan-caching win over per-frame us::tof_correct.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "beamform/beamformer.hpp"
#include "graph/arena.hpp"
#include "runtime/frame_source.hpp"
#include "us/tof_plan.hpp"

namespace tvbf::device {
class Device;
}  // namespace tvbf::device

namespace tvbf::graph {
class Executor;
class FrameGraph;
}  // namespace tvbf::graph

namespace tvbf::rt {

/// How the per-frame stages are executed.
enum class StageScheduling {
  /// Build a graph::FrameGraph per frame shape and run it on a readiness
  /// executor: one ToF node per steering angle (parallel for compounded
  /// frames) feeding compound -> beamform -> postprocess. The default.
  kGraph,
  /// Run the stages inline on the driving thread in a fixed chain (the
  /// pre-graph path, kept for A/B benchmarking). Output is bit-identical
  /// to kGraph.
  kLinear,
};

/// Pipeline controls.
struct PipelineConfig {
  us::ImagingGrid grid;
  us::TofParams tof;  ///< interp flavor + cube kind the beamformer needs
  double dynamic_range_db = 60.0;
  /// When true, ToF correction runs through the global PlanCache; when
  /// false every frame pays the full us::tof_correct geometry pass (the
  /// pre-streaming baseline, kept for A/B benchmarking).
  bool use_plan_cache = true;
  /// Acquire frame k+1 on a producer thread while frame k is processed.
  bool overlap = true;
  StageScheduling scheduling = StageScheduling::kGraph;
  /// Backend executing this stream's kernels (ToF gather, beamform, the
  /// model matmuls): the FrameProcessor installs it as the thread's
  /// device::ScopedDevice around each compute stage. Null selects the
  /// process-wide CPU reference device. Every stock backend produces
  /// bit-identical output; they differ in the cost model the serving
  /// layer's batcher consults.
  std::shared_ptr<device::Device> device;
};

/// Latency accumulator for one pipeline stage.
struct StageStats {
  std::string name;
  std::int64_t frames = 0;
  double total_s = 0.0;
  double min_s = std::numeric_limits<double>::infinity();
  double max_s = 0.0;

  double mean_s() const { return frames > 0 ? total_s / static_cast<double>(frames) : 0.0; }
  void record(double seconds);
};

/// What one pipeline run did.
struct PipelineReport {
  std::int64_t frames = 0;
  double wall_s = 0.0;
  /// source, tof, compound, beamform, postprocess, sink — in flow order.
  /// With overlap the source stage runs concurrently, so stage totals can
  /// exceed wall_s. The tof stage records the summed per-angle time of
  /// each frame; compound is zero-cost for single-angle streams.
  std::vector<StageStats> stages;
  std::uint64_t plan_cache_hits = 0;    ///< delta over this run
  std::uint64_t plan_cache_misses = 0;  ///< delta over this run

  double fps() const { return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0; }
  const StageStats& stage(const std::string& name) const;
};

/// Per-frame result handed to the sink. The references point at
/// pipeline-owned buffers that are overwritten by the next frame; Tensor
/// copies are deep, so assigning e.g. `out.db` to a local keeps the data.
struct FrameOutput {
  std::int64_t index = 0;
  double time_s = 0.0;
  const Tensor& iq;        ///< (nz, nx, 2) beamformed IQ
  const Tensor& envelope;  ///< (nz, nx)
  const Tensor& db;        ///< (nz, nx) log-compressed B-mode
  /// The source frame's lineage id (Frame::trace_id), carried through so
  /// downstream consumers (the async sink) chain their spans to it.
  std::uint64_t trace_id = 0;
};

/// Reusable per-frame processing state for one stream: the cached per-angle
/// ToF plan handles, per-angle cube slots (arena-recycled), the compounded
/// cube + channel workspaces and the output image tensors. Pipeline drives
/// one FrameProcessor internally; the serving layer (src/serve) owns one
/// per session and steps it from its scheduler.
///
/// Stepping is exposed at graph-node granularity so a frame graph can run
/// the stages by readiness: prepare() latches one frame's plans and slots,
/// then apply_tof_angle() is safe to call concurrently for DISTINCT angle
/// indices, and compound() / beamform() / finish() complete the frame in
/// order. Everything else is not thread-safe — one frame is stepped by one
/// logical owner at a time.
class FrameProcessor {
 public:
  /// Wall-clock seconds spent per stage by the last step. `tof_s` is the
  /// sum over the frame's angles (the work done, not the critical path).
  struct StageTimes {
    double tof_s = 0.0;
    double compound_s = 0.0;
    double beamform_s = 0.0;
    double post_s = 0.0;
  };

  /// The beamformer must accept the cube flavor `config.tof` produces
  /// (analytic for MVDR/CF, RF for DAS and the learned models).
  FrameProcessor(std::shared_ptr<const bf::Beamformer> beamformer,
                 PipelineConfig config);

  /// Full per-frame step: ToF (all angles) -> compound -> beamform ->
  /// envelope/log-compression. The returned FrameOutput references
  /// processor-owned buffers that the next step overwrites.
  FrameOutput process(const Frame& frame, StageTimes* times = nullptr);

  // ---- graph-node stepping -------------------------------------------------

  /// Latches `frame`: fetches one cached plan per steering angle and
  /// acquires per-angle cube slots from the arena (multi-angle only).
  void prepare(const Frame& frame);

  /// ToF-corrects acquisition `angle` of the prepared frame into its slot
  /// (or straight into the processor cube for single-angle frames).
  /// Thread-safe across distinct angles of one prepared frame.
  void apply_tof_angle(const Frame& frame, std::size_t angle);

  /// Folds the per-angle slots into the processor cube (coherent mean) and
  /// releases the slots back to the arena. Single-angle: no-op on the
  /// data. Returns the compounded cube.
  const us::TofCube& compound();

  /// Runs the beamformer on the compounded cube (stores the IQ image).
  void beamform();

  /// Envelope/log-compression over the stored IQ image.
  FrameOutput finish(const Frame& frame);

  // ---- linear/batched stepping ---------------------------------------------

  /// prepare + every apply_tof_angle + compound, inline: fills the
  /// processor's cube so an external caller can beamform it (possibly
  /// stacked with other sessions' cubes) and finish() the frame.
  const us::TofCube& apply_tof(const Frame& frame);

  /// finish() on an externally produced IQ image (batched inference).
  FrameOutput finish(const Frame& frame, Tensor iq);

  const us::TofCube& cube() const { return cube_; }
  /// Angle count latched by the last prepare().
  std::size_t num_angles() const { return num_angles_; }
  /// Per-stage times of the frame most recently stepped to finish().
  const StageTimes& last_times() const { return times_; }
  graph::BufferArena::Stats arena_stats() const { return arena_.stats(); }

  const PipelineConfig& config() const { return config_; }
  const bf::Beamformer& beamformer() const { return *beamformer_; }
  /// The stream's resolved backend (config().device or the CPU default).
  device::Device& device() const { return *device_; }

 private:
  std::shared_ptr<const bf::Beamformer> beamformer_;
  PipelineConfig config_;
  device::Device* device_ = nullptr;  ///< resolved once in the constructor

  // Frame state. The ToF cubes, channel workspaces and angle slots — the
  // large buffers — are reused across frames (slots recycle through the
  // arena); the beamformer/postprocess stages still return fresh
  // image-sized tensors per frame.
  std::size_t num_angles_ = 1;
  std::vector<std::shared_ptr<const us::TofPlan>> plans_;
  std::vector<us::ChannelWorkspace> workspaces_;
  std::vector<us::TofCube> slots_;  ///< per-angle cubes (multi-angle only)
  graph::BufferArena arena_;
  std::vector<double> angle_tof_s_;
  StageTimes times_;
  us::TofCube cube_;
  Tensor iq_, envelope_, db_;
};

/// Drives frames from a source through ToF correction, a beamformer and
/// envelope/log-compression, invoking the sink once per frame.
class Pipeline {
 public:
  using Sink = std::function<void(const FrameOutput&)>;

  /// The beamformer must accept the cube flavor `config.tof` produces
  /// (analytic for MVDR/CF, RF for DAS and the learned models).
  Pipeline(std::shared_ptr<FrameSource> source,
           std::shared_ptr<const bf::Beamformer> beamformer,
           PipelineConfig config);

  /// Runs the source dry, calling `sink` (when set) once per frame on the
  /// driving thread, in frame order. Source exceptions and sink/stage
  /// exceptions propagate to the caller. Output is bit-identical across
  /// scheduling modes.
  PipelineReport run(const Sink& sink = {});

  const PipelineConfig& config() const { return processor_.config(); }

  ~Pipeline();

 private:
  void process_frame(Frame& frame, const Sink& sink, PipelineReport& report);
  void process_frame_graph(Frame& frame, const Sink& sink,
                           PipelineReport& report);
  void record_stage_times(PipelineReport& report);
  void build_graph(std::size_t num_angles);

  std::shared_ptr<FrameSource> source_;
  FrameProcessor processor_;

  // Graph-mode state: the per-shape frame graph (rebuilt when the angle
  // count changes), its executor, and the frame/output slots the node
  // bodies read and write through.
  std::unique_ptr<graph::Executor> executor_;
  std::unique_ptr<graph::FrameGraph> graph_;
  std::size_t graph_angles_ = 0;
  const Frame* graph_frame_ = nullptr;
  std::optional<FrameOutput> graph_out_;
};

}  // namespace tvbf::rt
