// Streaming image-formation pipeline.
//
// Chains source -> ToF apply (cached plan) -> Beamformer -> envelope /
// log-compression -> sink over reusable frame buffers, with optional
// producer/consumer overlap: the next frame is acquired (simulated or
// replayed) while the current one is beamformed, both sides sharing the
// process-wide thread pool. Per-stage latency statistics and plan-cache
// counters come back in a PipelineReport, which is how bench_pipeline
// quantifies the plan-caching win over per-frame us::tof_correct.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "beamform/beamformer.hpp"
#include "runtime/frame_source.hpp"
#include "runtime/tof_plan.hpp"

namespace tvbf::rt {

/// Pipeline controls.
struct PipelineConfig {
  us::ImagingGrid grid;
  us::TofParams tof;  ///< interp flavor + cube kind the beamformer needs
  double dynamic_range_db = 60.0;
  /// When true, ToF correction runs through the global PlanCache; when
  /// false every frame pays the full us::tof_correct geometry pass (the
  /// pre-streaming baseline, kept for A/B benchmarking).
  bool use_plan_cache = true;
  /// Acquire frame k+1 on a producer thread while frame k is processed.
  bool overlap = true;
};

/// Latency accumulator for one pipeline stage.
struct StageStats {
  std::string name;
  std::int64_t frames = 0;
  double total_s = 0.0;
  double min_s = std::numeric_limits<double>::infinity();
  double max_s = 0.0;

  double mean_s() const { return frames > 0 ? total_s / static_cast<double>(frames) : 0.0; }
  void record(double seconds);
};

/// What one pipeline run did.
struct PipelineReport {
  std::int64_t frames = 0;
  double wall_s = 0.0;
  /// source, tof, beamform, postprocess, sink — in flow order. With
  /// overlap the source stage runs concurrently, so stage totals can
  /// exceed wall_s.
  std::vector<StageStats> stages;
  std::uint64_t plan_cache_hits = 0;    ///< delta over this run
  std::uint64_t plan_cache_misses = 0;  ///< delta over this run

  double fps() const { return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0; }
  const StageStats& stage(const std::string& name) const;
};

/// Per-frame result handed to the sink. The references point at
/// pipeline-owned buffers that are overwritten by the next frame; Tensor
/// copies are deep, so assigning e.g. `out.db` to a local keeps the data.
struct FrameOutput {
  std::int64_t index = 0;
  double time_s = 0.0;
  const Tensor& iq;        ///< (nz, nx, 2) beamformed IQ
  const Tensor& envelope;  ///< (nz, nx)
  const Tensor& db;        ///< (nz, nx) log-compressed B-mode
};

/// Reusable per-frame processing state for one stream: the cached ToF plan
/// handle, the ToF cube + channel workspace and the output image tensors.
/// Pipeline drives one FrameProcessor internally; the serving layer
/// (src/serve) owns one per session and steps it from its scheduler.
/// Not thread-safe — one FrameProcessor is stepped by one thread at a time.
class FrameProcessor {
 public:
  /// Wall-clock seconds spent per stage by the last step.
  struct StageTimes {
    double tof_s = 0.0;
    double beamform_s = 0.0;
    double post_s = 0.0;
  };

  /// The beamformer must accept the cube flavor `config.tof` produces
  /// (analytic for MVDR/CF, RF for DAS and the learned models).
  FrameProcessor(std::shared_ptr<const bf::Beamformer> beamformer,
                 PipelineConfig config);

  /// Full per-frame step: ToF -> beamform -> envelope/log-compression.
  /// The returned FrameOutput references processor-owned buffers that the
  /// next step overwrites.
  FrameOutput process(const Frame& frame, StageTimes* times = nullptr);

  /// Split stepping for externally batched beamforming: apply_tof() fills
  /// the processor's cube, the caller beamforms it (possibly stacked with
  /// other sessions' cubes), and finish() runs envelope/log-compression on
  /// the externally produced IQ image.
  const us::TofCube& apply_tof(const Frame& frame);
  FrameOutput finish(const Frame& frame, Tensor iq);

  const PipelineConfig& config() const { return config_; }
  const bf::Beamformer& beamformer() const { return *beamformer_; }

 private:
  std::shared_ptr<const bf::Beamformer> beamformer_;
  PipelineConfig config_;

  // Frame state. The ToF cube and channel workspace — the large buffers —
  // are reused across frames; the beamformer/postprocess stages still
  // return fresh image-sized tensors per frame.
  us::TofCube cube_;
  ChannelWorkspace workspace_;
  std::shared_ptr<const TofPlan> plan_;
  Tensor iq_, envelope_, db_;
};

/// Drives frames from a source through ToF correction, a beamformer and
/// envelope/log-compression, invoking the sink once per frame.
class Pipeline {
 public:
  using Sink = std::function<void(const FrameOutput&)>;

  /// The beamformer must accept the cube flavor `config.tof` produces
  /// (analytic for MVDR/CF, RF for DAS and the learned models).
  Pipeline(std::shared_ptr<FrameSource> source,
           std::shared_ptr<const bf::Beamformer> beamformer,
           PipelineConfig config);

  /// Runs the source dry, calling `sink` (when set) once per frame on the
  /// driving thread, in frame order. Source exceptions and sink/stage
  /// exceptions propagate to the caller.
  PipelineReport run(const Sink& sink = {});

  const PipelineConfig& config() const { return processor_.config(); }

 private:
  void process_frame(Frame& frame, const Sink& sink, PipelineReport& report);

  std::shared_ptr<FrameSource> source_;
  FrameProcessor processor_;
};

}  // namespace tvbf::rt
