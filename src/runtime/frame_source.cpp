#include "runtime/frame_source.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "telemetry/trace.hpp"

namespace tvbf::rt {

ReplaySource::ReplaySource(std::vector<us::Acquisition> acquisitions,
                           std::int64_t total_frames, double frame_rate_hz,
                           std::size_t angles_per_frame)
    : acquisitions_(std::move(acquisitions)),
      angles_per_frame_(angles_per_frame) {
  TVBF_REQUIRE(!acquisitions_.empty(), "replay source needs acquisitions");
  TVBF_REQUIRE(frame_rate_hz > 0.0, "frame rate must be positive");
  TVBF_REQUIRE(angles_per_frame_ >= 1, "replay needs >= 1 angle per frame");
  TVBF_REQUIRE(acquisitions_.size() % angles_per_frame_ == 0,
               "replay recording length must be a whole number of "
               "angles_per_frame groups");
  for (const auto& acq : acquisitions_) {
    TVBF_REQUIRE(acq.rf.rank() == 2 && acq.num_samples() > 1,
                 "replay acquisition holds no RF data");
    TVBF_REQUIRE(
        acq.probe.num_elements == acquisitions_.front().probe.num_elements,
        "replay acquisitions use different probes");
  }
  total_frames_ =
      total_frames < 0 ? static_cast<std::int64_t>(acquisitions_.size() /
                                                   angles_per_frame_)
                       : total_frames;
  frame_interval_s_ = 1.0 / frame_rate_hz;
}

const us::Probe& ReplaySource::probe() const {
  return acquisitions_.front().probe;
}

bool ReplaySource::next(Frame& frame) {
  if (produced_ >= total_frames_) return false;
  const std::size_t num_groups = acquisitions_.size() / angles_per_frame_;
  const std::size_t group = static_cast<std::size_t>(
      produced_ % static_cast<std::int64_t>(num_groups));
  frame.index = produced_;
  frame.time_s = static_cast<double>(produced_) * frame_interval_s_;
  frame.trace_id = telemetry::next_flow_id();
  frame.acq = acquisitions_[group * angles_per_frame_];
  frame.extra.assign(
      acquisitions_.begin() +
          static_cast<std::ptrdiff_t>(group * angles_per_frame_ + 1),
      acquisitions_.begin() +
          static_cast<std::ptrdiff_t>((group + 1) * angles_per_frame_));
  ++produced_;
  return true;
}

CineSource::CineSource(us::Probe probe, us::Phantom base, CineParams params)
    : probe_(std::move(probe)), base_(std::move(base)),
      params_(std::move(params)) {
  probe_.validate();
  TVBF_REQUIRE(params_.num_frames >= 1, "cine needs at least one frame");
  TVBF_REQUIRE(params_.frame_rate_hz > 0.0, "frame rate must be positive");
  TVBF_REQUIRE(params_.axial_period_s > 0.0, "axial period must be positive");
  TVBF_REQUIRE(!base_.scatterers.empty(), "cine phantom is empty");
}

us::Phantom CineSource::phantom_at(double time_s) const {
  const double shift_x = params_.lateral_speed_m_s * time_s;
  const double shift_z =
      params_.axial_amplitude_m *
      std::sin(2.0 * M_PI * time_s / params_.axial_period_s);
  const double width = base_.region.width();
  // Wrap laterally inside the region so a drifting phantom loops forever;
  // axial motion is a bounded oscillation and needs no wrapping.
  auto wrap_x = [&](double x) {
    if (width <= 0.0) return x;
    double u = std::fmod(x + shift_x - base_.region.x_min, width);
    if (u < 0.0) u += width;
    return base_.region.x_min + u;
  };
  us::Phantom moved = base_;
  for (auto& s : moved.scatterers) {
    s.x = wrap_x(s.x);
    s.z += shift_z;
  }
  for (auto& c : moved.cysts) {
    c.x = wrap_x(c.x);
    c.z += shift_z;
  }
  for (auto& p : moved.points) {
    p.x = wrap_x(p.x);
    p.z += shift_z;
  }
  return moved;
}

bool CineSource::next(Frame& frame) {
  if (produced_ >= params_.num_frames) return false;
  const double t = static_cast<double>(produced_) / params_.frame_rate_hz;
  us::SimParams sim = params_.sim;
  if (params_.reseed_noise_per_frame)
    sim.seed = params_.sim.seed + 0x9e3779b9u * static_cast<std::uint64_t>(
                                                    produced_ + 1);
  frame.index = produced_;
  frame.time_s = t;
  frame.trace_id = telemetry::next_flow_id();
  frame.extra.clear();
  if (params_.compound_angles_rad.empty()) {
    frame.acq = us::simulate_plane_wave(probe_, phantom_at(t),
                                        params_.steering_angle_rad, sim);
  } else {
    // One steered transmit per angle of the same cine instant, with noise
    // decorrelated across transmits exactly as bf::compound_plane_waves
    // does for its independent receive events.
    const us::Phantom moved = phantom_at(t);
    us::SimParams per_angle = sim;
    bool first = true;
    for (const double a : params_.compound_angles_rad) {
      per_angle.seed = sim.seed + static_cast<std::uint64_t>(
                                      std::llround(a * 1e6)) * 7919u;
      us::Acquisition acq =
          us::simulate_plane_wave(probe_, moved, a, per_angle);
      if (first) {
        frame.acq = std::move(acq);
        first = false;
      } else {
        frame.extra.push_back(std::move(acq));
      }
    }
  }
  ++produced_;
  return true;
}

}  // namespace tvbf::rt
