// Frame sources feeding the streaming pipeline.
//
// A FrameSource produces a sequence of plane-wave acquisitions that share
// one probe and transmit geometry, which is exactly the precondition for
// reusing a single cached ToF plan across the whole stream. Two concrete
// sources cover the common scenarios: ReplaySource cycles pre-acquired RF
// (scanner playback / benchmark input), CineSource re-simulates a phantom
// advected by a simple motion model every frame (moving-target B-mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "us/phantom.hpp"
#include "us/simulator.hpp"

namespace tvbf::rt {

/// One unit of work flowing through the pipeline. A frame normally holds a
/// single plane-wave acquisition; for coherent compounding it carries one
/// steered transmit per angle (`acq` plus `extra`), which the frame graph
/// ToF-corrects in parallel and folds through one compound node.
struct Frame {
  std::int64_t index = 0;  ///< 0-based position in the stream
  double time_s = 0.0;     ///< acquisition timestamp within the cine
  /// Lineage id minted by the source (telemetry::next_flow_id); every
  /// trace span recorded while this frame is processed carries it, so the
  /// exported trace chains the frame's stages across threads. 0 = untraced.
  std::uint64_t trace_id = 0;
  us::Acquisition acq;     ///< first (or only) steered transmit
  /// Additional steered transmits of the same event (compounding).
  std::vector<us::Acquisition> extra;

  std::size_t num_acquisitions() const { return 1 + extra.size(); }
  const us::Acquisition& acquisition(std::size_t i) const {
    return i == 0 ? acq : extra[i - 1];
  }
};

/// Produces a finite stream of acquisitions sharing one probe.
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  virtual std::string name() const = 0;

  /// Probe shared by every frame of the stream.
  virtual const us::Probe& probe() const = 0;

  /// Total frames the stream will produce.
  virtual std::int64_t num_frames() const = 0;

  /// Fills `frame` with the next acquisition; false once exhausted.
  virtual bool next(Frame& frame) = 0;

  /// Rewinds the stream to the first frame.
  virtual void reset() = 0;
};

/// Replays pre-acquired acquisitions round-robin until `total_frames` have
/// been produced (defaults to one pass over the recording). With
/// `angles_per_frame > 1` consecutive acquisitions are grouped into one
/// multi-angle frame (recording order: all angles of event 0, then event 1,
/// ...), so a compounded recording replays as compounded frames.
class ReplaySource : public FrameSource {
 public:
  explicit ReplaySource(std::vector<us::Acquisition> acquisitions,
                        std::int64_t total_frames = -1,
                        double frame_rate_hz = 30.0,
                        std::size_t angles_per_frame = 1);

  std::string name() const override { return "replay"; }
  const us::Probe& probe() const override;
  std::int64_t num_frames() const override { return total_frames_; }
  bool next(Frame& frame) override;
  void reset() override { produced_ = 0; }

 private:
  std::vector<us::Acquisition> acquisitions_;
  std::int64_t total_frames_ = 0;
  double frame_interval_s_ = 0.0;
  std::size_t angles_per_frame_ = 1;
  std::int64_t produced_ = 0;
};

/// Motion/acquisition controls for a cine sequence.
struct CineParams {
  std::int64_t num_frames = 32;
  double frame_rate_hz = 30.0;       ///< cine timestamp spacing
  /// Constant lateral drift of every scatterer [m/s]; scatterers wrap
  /// around the phantom region so the sequence can loop indefinitely.
  double lateral_speed_m_s = 2e-3;
  /// Axial oscillation amplitude [m] (breathing/pulsation-like motion).
  double axial_amplitude_m = 0.5e-3;
  double axial_period_s = 1.0;       ///< oscillation period
  double steering_angle_rad = 0.0;
  /// When non-empty, every frame carries one steered transmit per listed
  /// angle (coherent-compounding input; `steering_angle_rad` is ignored).
  /// Noise is additionally decorrelated across the angles of one frame,
  /// matching bf::compound_plane_waves' independent receive events.
  std::vector<double> compound_angles_rad;
  us::SimParams sim = us::SimParams::in_silico();
  /// Decorrelate thermal noise across frames (a real receive chain does);
  /// switch off for bit-reproducible frame pairs.
  bool reseed_noise_per_frame = true;
};

/// Re-simulates a phantom under rigid lateral drift + axial oscillation.
/// Deterministic: frame k is a pure function of (base phantom, params, k).
class CineSource : public FrameSource {
 public:
  CineSource(us::Probe probe, us::Phantom base, CineParams params);

  std::string name() const override { return "cine"; }
  const us::Probe& probe() const override { return probe_; }
  std::int64_t num_frames() const override { return params_.num_frames; }
  bool next(Frame& frame) override;
  void reset() override { produced_ = 0; }

  /// The phantom advected to cine time `t` (exposed so demos can place
  /// metric ROIs on the moved cysts).
  us::Phantom phantom_at(double time_s) const;

 private:
  us::Probe probe_;
  us::Phantom base_;
  CineParams params_;
  std::int64_t produced_ = 0;
};

}  // namespace tvbf::rt
