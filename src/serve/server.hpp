// Multi-session imaging server.
//
// The Server admits N concurrent sessions and drives them to completion
// over shared resources: each session gets a producer thread (acquisition
// prefetch with bounded in-flight frames and a backpressure policy), ready
// frames are scheduled round-robin across sessions, and sessions sharing a
// batch-capable learned beamformer have their frames stacked through one
// cross-session forward pass per dispatch (InferenceBatcher). Scheduling
// modes:
//
//  - throughput: each frame is processed serially on its worker thread
//    (common::ScopedSerial), so concurrent sessions scale across cores
//    instead of contending for the pool's single job slot;
//  - latency: frames fan out on the shared pool via parallel_for, with
//    pool-slot admission tagged by session id so the fair-share rotation
//    keeps any one session from starving the rest.
//
// The default picks per run: throughput when there are at least as many
// direct sessions as pool threads (enough streams to fill the cores),
// latency otherwise (serializing a lone session would idle every other
// core and regress far below a solo Pipeline::run).
//
// Either way each session's frames are processed one at a time, in order,
// by its own FrameProcessor — so per-session output is bit-identical to a
// solo rt::Pipeline::run of the same source.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/inference_batcher.hpp"
#include "serve/session.hpp"

namespace tvbf::serve {

/// How a direct session's frame stages execute (see the file comment).
enum class FrameParallelism {
  kAuto,             ///< throughput when direct sessions >= pool threads
  kSerialPerWorker,  ///< throughput mode, always
  kPool,             ///< latency mode, always
};

/// Server-wide scheduling knobs.
struct ServerConfig {
  /// Worker threads for direct (non-batched) sessions; 0 = one per direct
  /// session, capped at the pool size.
  std::size_t num_workers = 0;
  /// Per-session bound on acquired-but-unprocessed frames (>= 1).
  std::size_t max_in_flight = 2;
  Backpressure backpressure = Backpressure::kBlock;
  /// Batch frames of sessions sharing a bf::BatchedBeamformer through one
  /// forward pass. Off, those sessions are scheduled like any other.
  bool batch_inference = true;
  std::size_t max_batch = 16;  ///< cap on one cross-session batch
  FrameParallelism frame_parallelism = FrameParallelism::kAuto;
};

/// What one Server::run did.
struct ServerReport {
  double wall_s = 0.0;
  std::int64_t frames = 0;   ///< across all sessions
  std::int64_t dropped = 0;  ///< across all sessions
  std::vector<SessionReport> sessions;
  InferenceBatcher::Stats batches;
  std::uint64_t plan_cache_hits = 0;    ///< delta over this run
  std::uint64_t plan_cache_misses = 0;  ///< delta over this run

  double aggregate_fps() const {
    return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
};

/// Tunes the process allocator for steady-state serving (glibc: raises the
/// malloc mmap/trim thresholds so frame-sized tensors recycle through the
/// heap instead of being mmapped and unmapped — page faults + kernel
/// zeroing — on every allocation). Stacked batch tensors cross the default
/// 128 KiB threshold long before solo frames do, so serving processes
/// should call this once at startup, as bench_serve and serve_demo do.
/// No-op on non-glibc platforms.
void tune_allocator();

/// Admits sessions, then drives them all concurrently in run().
class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  /// Admits a session (before run() only). Returns its session id.
  int add_session(SessionConfig config);

  std::size_t num_sessions() const;
  const ServerConfig& config() const;

  /// Runs every session's source dry and returns the aggregate report.
  /// Single-shot: a Server instance runs once. The first exception from
  /// any source, stage or sink stops all sessions and propagates.
  ServerReport run();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::serve
