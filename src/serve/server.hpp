// Multi-session imaging server.
//
// The Server admits N concurrent sessions and drives them to completion
// over shared resources: each session gets a producer thread (acquisition
// prefetch with bounded in-flight frames and a backpressure policy), and
// sessions sharing a batch-capable learned beamformer have their frames
// stacked through one cross-session forward pass per dispatch
// (InferenceBatcher).
//
// Frame execution is graph-scheduled by default: each session's frame is a
// graph::FrameGraph (prepare -> one ToF node per steering angle ->
// compound -> beamform -> deliver) and one shared graph::Executor drains
// ready nodes across ALL sessions by readiness, instead of the legacy
// per-session whole-frame round-robin (kept as Scheduling::kRoundRobin for
// A/B benchmarking). Under readiness scheduling a session parked behind
// the cross-session inference gate never blocks another session's ToF
// work, and multi-angle frames ToF-correct their transmits in parallel.
// Cross-session batching is an ordinary graph node: a batched session's
// gate node parks until enough sessions sharing its model are ready
// (quorum = min(max_batch, live sessions)), then one stacked forward pass
// fires and every parked graph resumes; the executor's idle hook and
// session retirement flush partial groups so parked frames never stall.
//
// Stage-parallelism modes (both schedulers):
//
//  - throughput: each work item runs serially on its worker thread
//    (common::ScopedSerial), so concurrent sessions scale across cores
//    instead of contending for the pool's single job slot (batched
//    forward passes still fan out — common::ScopedParallel);
//  - latency: stages fan out on the shared pool via parallel_for, with
//    pool-slot admission tagged by session id so the fair-share rotation
//    keeps any one session from starving the rest.
//
// The default picks per run: throughput when there are at least as many
// sessions as pool threads (enough streams to fill the cores), latency
// otherwise (serializing a lone session would idle every other core and
// regress far below a solo Pipeline::run).
//
// Either way each session's frames are processed one at a time, in order,
// by its own FrameProcessor — so per-session output is bit-identical to a
// solo rt::Pipeline::run of the same source.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/watchdog.hpp"
#include "serve/inference_batcher.hpp"
#include "serve/session.hpp"
#include "telemetry/telemetry.hpp"

namespace tvbf::serve {

/// How a session's frame stages execute (see the file comment).
enum class FrameParallelism {
  kAuto,             ///< throughput when sessions >= pool threads
  kSerialPerWorker,  ///< throughput mode, always
  kPool,             ///< latency mode, always
};

/// Which scheduler drives per-frame work (see the file comment).
enum class Scheduling {
  kGraph,       ///< readiness-scheduled stage graphs across all sessions
  kRoundRobin,  ///< legacy per-session whole-frame turn-taking
};

/// Server-wide scheduling knobs.
struct ServerConfig {
  /// Worker threads (kGraph: shared executor workers across all sessions;
  /// kRoundRobin: direct-session workers); 0 = one per session, capped at
  /// the pool size.
  std::size_t num_workers = 0;
  /// Per-session bound on acquired-but-unprocessed frames (>= 1).
  std::size_t max_in_flight = 2;
  Backpressure backpressure = Backpressure::kBlock;
  /// Batch frames of sessions sharing a bf::BatchedBeamformer through one
  /// forward pass. Off, those sessions are scheduled like any other.
  bool batch_inference = true;
  std::size_t max_batch = 16;  ///< cap on one cross-session batch
  /// Cap the batch quorum further by InferenceBatcher::preferred_batch
  /// (device cost estimates, marginal-gain rule). Off, the quorum is the
  /// structural min(max_batch, live sessions) — useful for A/B lanes that
  /// must differ only in max_batch.
  bool cost_aware_batching = true;
  FrameParallelism frame_parallelism = FrameParallelism::kAuto;
  Scheduling scheduling = Scheduling::kGraph;
  /// With a sink set and a positive period, run() keeps a background
  /// sampler thread that emits a telemetry Registry snapshot to the sink
  /// every period (plus one final snapshot as the run finishes). The sink
  /// runs on the sampler thread; keep it cheap and non-blocking.
  double telemetry_period_s = 0.0;
  std::function<void(const telemetry::Snapshot&)> telemetry_sink = {};

  // ---- ops plane -----------------------------------------------------------
  /// Localhost introspection endpoint (obs::OpsServer: /metrics, /healthz,
  /// /sessions, /dump) served for the duration of run(). -1 = off;
  /// 0 = ephemeral port, readable via Server::ops_port() while running.
  int ops_port = -1;
  /// Stall watchdog: trips after this many seconds of pending work with no
  /// progress (see obs::Watchdog). <= 0 = off.
  double watchdog_stall_s = 0.0;
  double watchdog_period_s = 0.25;  ///< watchdog poll interval
  /// Written on every watchdog trip (flight-recorder dump + trace export).
  std::string watchdog_dump_path;
  /// Test-only fault injection and trip callback, forwarded verbatim to
  /// obs::Watchdog::Options.
  std::function<bool()> watchdog_pending_override;
  std::function<void(const obs::StallReport&)> watchdog_on_trip;
};

/// What one Server::run did.
struct ServerReport {
  double wall_s = 0.0;
  std::int64_t frames = 0;   ///< across all sessions
  std::int64_t dropped = 0;  ///< across all sessions
  std::vector<SessionReport> sessions;
  InferenceBatcher::Stats batches;
  std::uint64_t plan_cache_hits = 0;    ///< delta over this run
  std::uint64_t plan_cache_misses = 0;  ///< delta over this run

  double aggregate_fps() const {
    return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
};

/// Tunes the process allocator for steady-state serving (glibc: raises the
/// malloc mmap/trim thresholds so frame-sized tensors recycle through the
/// heap instead of being mmapped and unmapped — page faults + kernel
/// zeroing — on every allocation). Stacked batch tensors cross the default
/// 128 KiB threshold long before solo frames do, so serving processes
/// should call this once at startup, as bench_serve and serve_demo do.
/// No-op on non-glibc platforms.
void tune_allocator();

/// Admits sessions, then drives them all concurrently in run().
class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  /// Admits a session (before run() only). Returns its session id.
  int add_session(SessionConfig config);

  std::size_t num_sessions() const;
  const ServerConfig& config() const;

  /// Runs every session's source dry and returns the aggregate report.
  /// Single-shot: a Server instance runs once. The first exception from
  /// any source, stage or sink stops all sessions and propagates.
  ServerReport run();

  /// Port the ops endpoint is bound to while run() is live (the ephemeral
  /// pick when ServerConfig::ops_port == 0); -1 when the endpoint is off,
  /// failed to bind, or the run has finished.
  int ops_port() const;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::serve
