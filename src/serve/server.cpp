#include "serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "runtime/plan_cache.hpp"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace tvbf::serve {

void tune_allocator() {
#if defined(__GLIBC__)
  // 64 MiB covers paper-scale stacked activations; anything below keeps
  // recycling through the heap arena.
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
  mallopt(M_TRIM_THRESHOLD, 64 << 20);
#endif
}

struct Server::Impl {
  ServerConfig config;
  InferenceBatcher batcher;
  std::vector<std::unique_ptr<Session>> sessions;
  bool started = false;

  // ---- run() scheduler state ----------------------------------------------
  std::mutex mu;
  std::condition_variable cv_work;   // schedulers: frames ready / done
  std::condition_variable cv_space;  // producers: queue slot freed
  bool stop = false;
  std::exception_ptr first_error;
  std::vector<Session*> direct;   // scheduled by the worker threads
  std::vector<Session*> batched;  // scheduled by the inference thread
  std::size_t direct_cursor = 0;
  std::size_t batched_cursor = 0;
  bool serialize_frames = true;  // resolved from config.frame_parallelism

  explicit Impl(ServerConfig cfg)
      : config(cfg), batcher(cfg.max_batch) {}

  void fail(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = error;
      stop = true;
    }
    cv_work.notify_all();
    cv_space.notify_all();
  }

  static bool all_done(const std::vector<Session*>& set) {
    return std::all_of(set.begin(), set.end(),
                       [](const Session* s) { return s->done(); });
  }

  // ---- acquisition producers (one thread per session) ---------------------

  void produce(Session& s) {
    try {
      s.config().source->reset();
      while (true) {
        rt::Frame frame;
        Timer t;
        const bool have = s.config().source->next(frame);
        if (!have) break;
        s.source_stats.record(t.seconds());
        std::unique_lock<std::mutex> lock(mu);
        if (stop) break;
        if (s.ready.size() >= config.max_in_flight) {
          if (config.backpressure == Backpressure::kBlock) {
            cv_space.wait(lock, [&] {
              return stop || s.ready.size() < config.max_in_flight;
            });
            if (stop) break;
          } else {
            s.ready.pop_front();  // freshest frames win
            ++s.dropped;
          }
        }
        s.ready.push_back(std::move(frame));
        lock.unlock();
        cv_work.notify_all();
      }
    } catch (...) {
      fail(std::current_exception());
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      s.exhausted = true;
    }
    cv_work.notify_all();
  }

  // ---- direct sessions: round-robin worker threads ------------------------

  /// Next direct session with a ready frame, rotating fairly. Caller holds
  /// mu; marks nothing — the caller claims the session.
  Session* pick_direct() {
    const std::size_t n = direct.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (direct_cursor + k) % n;
      Session* s = direct[i];
      if (!s->busy && !s->ready.empty()) {
        direct_cursor = (i + 1) % n;
        return s;
      }
    }
    return nullptr;
  }

  void work_direct() {
    // Throughput mode: the whole frame runs serially on this thread, so W
    // workers process W sessions' frames truly concurrently instead of
    // taking turns on the pool's single job slot. Latency mode leaves the
    // pool fan-out on and relies on tagged fair-share slot admission.
    std::optional<ScopedSerial> serial;
    if (serialize_frames) serial.emplace();
    while (true) {
      Session* s = nullptr;
      rt::Frame frame;
      {
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
          if (stop) return;
          if ((s = pick_direct()) != nullptr) break;
          if (all_done(direct)) return;
          cv_work.wait(lock);
        }
        frame = std::move(s->ready.front());
        s->ready.pop_front();
        s->busy = true;
      }
      cv_space.notify_all();

      rt::FrameProcessor::StageTimes times;
      double sink_s = 0.0;
      try {
        set_job_tag(static_cast<std::uint64_t>(s->id()) + 1);
        const rt::FrameOutput out = s->processor().process(frame, &times);
        Timer t;
        if (s->config().sink) s->config().sink(out);
        sink_s = t.seconds();
        set_job_tag(0);
      } catch (...) {
        set_job_tag(0);
        fail(std::current_exception());
        return;
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        s->busy = false;
        ++s->frames;
        s->tof_stats.record(times.tof_s);
        s->beamform_stats.record(times.beamform_s);
        s->post_stats.record(times.post_s);
        s->sink_stats.record(sink_s);
      }
      cv_work.notify_all();
    }
  }

  // ---- batched sessions: one inference thread -----------------------------

  void work_inference() {
    while (true) {
      const bf::BatchedBeamformer* model = nullptr;
      std::vector<Session*> group;
      std::vector<rt::Frame> frames;
      {
        std::unique_lock<std::mutex> lock(mu);
        const std::size_t n = batched.size();
        std::size_t leader = n;
        while (true) {
          if (stop) return;
          leader = n;
          for (std::size_t k = 0; k < n; ++k) {
            const std::size_t i = (batched_cursor + k) % n;
            if (!batched[i]->busy && !batched[i]->ready.empty()) {
              leader = i;
              break;
            }
          }
          if (leader < n) break;
          if (all_done(batched)) return;
          cv_work.wait(lock);
        }
        batched_cursor = (leader + 1) % batched.size();
        model = batched[leader]->batched();
        // One ready frame from every session sharing the leader's model —
        // the cross-session batch. Per-session order holds: one frame per
        // session per dispatch, FIFO queues, busy until finished.
        for (std::size_t k = 0;
             k < batched.size() && group.size() < config.max_batch; ++k) {
          Session* s = batched[(leader + k) % batched.size()];
          if (s->batched() == model && !s->busy && !s->ready.empty()) {
            group.push_back(s);
            frames.push_back(std::move(s->ready.front()));
            s->ready.pop_front();
            s->busy = true;
          }
        }
      }
      cv_space.notify_all();

      std::vector<double> tof_s(group.size()), post_s(group.size()),
          sink_s(group.size());
      double forward_each_s = 0.0;
      try {
        std::vector<const us::TofCube*> cubes(group.size());
        for (std::size_t i = 0; i < group.size(); ++i) {
          Timer t;
          cubes[i] = &group[i]->processor().apply_tof(frames[i]);
          tof_s[i] = t.seconds();
        }
        Timer fwd;
        std::vector<Tensor> iqs = batcher.dispatch(*model, cubes);
        forward_each_s = fwd.seconds() / static_cast<double>(group.size());
        for (std::size_t i = 0; i < group.size(); ++i) {
          Timer t;
          const rt::FrameOutput out =
              group[i]->processor().finish(frames[i], std::move(iqs[i]));
          post_s[i] = t.seconds();
          t.reset();
          if (group[i]->config().sink) group[i]->config().sink(out);
          sink_s[i] = t.seconds();
        }
      } catch (...) {
        fail(std::current_exception());
        return;
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < group.size(); ++i) {
          Session* s = group[i];
          s->busy = false;
          ++s->frames;
          s->tof_stats.record(tof_s[i]);
          s->beamform_stats.record(forward_each_s);
          s->post_stats.record(post_s[i]);
          s->sink_stats.record(sink_s[i]);
        }
      }
      cv_work.notify_all();
    }
  }
};

Server::Server(ServerConfig config) : impl_(std::make_unique<Impl>(config)) {
  TVBF_REQUIRE(config.max_in_flight >= 1,
               "server max_in_flight must be >= 1");
}

Server::~Server() = default;

int Server::add_session(SessionConfig config) {
  TVBF_REQUIRE(!impl_->started, "add_session after Server::run");
  const int id = static_cast<int>(impl_->sessions.size());
  impl_->sessions.push_back(std::make_unique<Session>(
      id, std::move(config), impl_->config.batch_inference));
  return id;
}

std::size_t Server::num_sessions() const { return impl_->sessions.size(); }

const ServerConfig& Server::config() const { return impl_->config; }

ServerReport Server::run() {
  Impl& im = *impl_;
  TVBF_REQUIRE(!im.started, "Server::run is single-shot");
  TVBF_REQUIRE(!im.sessions.empty(), "server has no sessions");
  im.started = true;

  for (const auto& s : im.sessions)
    (s->batched() != nullptr ? im.batched : im.direct).push_back(s.get());

  switch (im.config.frame_parallelism) {
    case FrameParallelism::kSerialPerWorker:
      im.serialize_frames = true;
      break;
    case FrameParallelism::kPool:
      im.serialize_frames = false;
      break;
    case FrameParallelism::kAuto:
      // Serializing frames only pays when there are enough concurrent
      // streams to fill the cores; below that it would idle cores and
      // regress behind a solo Pipeline::run.
      im.serialize_frames = im.direct.size() >= hardware_threads();
      break;
  }

  const auto cache_before = rt::PlanCache::instance().stats();
  Timer wall;

  std::vector<std::thread> threads;
  threads.reserve(im.sessions.size() + 1);
  for (const auto& s : im.sessions)
    threads.emplace_back([&im, session = s.get()] { im.produce(*session); });

  if (!im.direct.empty()) {
    const std::size_t workers = std::max<std::size_t>(
        1, im.config.num_workers != 0
               ? im.config.num_workers
               : std::min(im.direct.size(), hardware_threads()));
    for (std::size_t i = 0; i < workers; ++i)
      threads.emplace_back([&im] { im.work_direct(); });
  }
  if (!im.batched.empty())
    threads.emplace_back([&im] { im.work_inference(); });

  for (auto& t : threads) t.join();

  const double wall_s = wall.seconds();
  if (im.first_error) std::rethrow_exception(im.first_error);

  ServerReport report;
  report.wall_s = wall_s;
  const auto cache_after = rt::PlanCache::instance().stats();
  report.plan_cache_hits = cache_after.hits - cache_before.hits;
  report.plan_cache_misses = cache_after.misses - cache_before.misses;
  report.batches = im.batcher.stats();
  for (const auto& s : im.sessions) {
    report.sessions.push_back(s->report());
    report.frames += s->frames;
    report.dropped += s->dropped;
  }
  return report;
}

}  // namespace tvbf::serve
