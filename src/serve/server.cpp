#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "device/device.hpp"
#include "graph/executor.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/ops_server.hpp"
#include "obs/service_state.hpp"
#include "telemetry/trace.hpp"
#include "us/plan_cache.hpp"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace tvbf::serve {

void tune_allocator() {
#if defined(__GLIBC__)
  // 64 MiB covers paper-scale stacked activations; anything below keeps
  // recycling through the heap arena.
  mallopt(M_MMAP_THRESHOLD, 64 << 20);
  mallopt(M_TRIM_THRESHOLD, 64 << 20);
#endif
}

struct Server::Impl {
  ServerConfig config;
  InferenceBatcher batcher;
  std::vector<std::unique_ptr<Session>> sessions;
  bool started = false;

  // ---- run() scheduler state ----------------------------------------------
  std::mutex mu;
  std::condition_variable cv_work;   // schedulers: frames ready / done
  std::condition_variable cv_space;  // producers: queue slot freed
  bool stop = false;
  std::exception_ptr first_error;
  std::vector<Session*> direct;   // round-robin: worker threads
  std::vector<Session*> batched;  // round-robin: the inference thread
  std::size_t direct_cursor = 0;
  std::size_t batched_cursor = 0;
  bool serialize_frames = true;  // resolved from config.frame_parallelism
  bool graph_mode = true;        // resolved from config.scheduling
  // Ops plane: true while run() feeds obs::ServiceState (endpoint or
  // watchdog configured); ops_port_live publishes the bound port.
  bool ops_active = false;
  std::atomic<int> ops_port_live{-1};

  // ---- graph scheduling ----------------------------------------------------
  /// One per distinct BatchedBeamformer shared by batched sessions: the
  /// cross-session inference gate's parking lot and quorum bookkeeping.
  struct BatchDomain {
    const bf::BatchedBeamformer* model = nullptr;
    std::vector<Session*> parked;  ///< sessions whose gate node is parked
    std::size_t live = 0;          ///< admitted sessions not yet retired
  };
  std::unique_ptr<graph::Executor> executor;
  std::mutex domain_mu;   // guards domains' parked/live
  std::mutex batcher_mu;  // InferenceBatcher::dispatch is single-threaded
  std::vector<BatchDomain> domains;

  // ---- telemetry -----------------------------------------------------------
  // Server-wide instruments (per-session frame histograms live on the
  // Session). in_flight counts frames acquired but not yet delivered or
  // dropped; frame_s is dispatch-to-delivery across all sessions.
  telemetry::Counter& t_frames =
      telemetry::Registry::instance().counter("serve.frames");
  telemetry::Counter& t_dropped =
      telemetry::Registry::instance().counter("serve.dropped");
  telemetry::Gauge& t_in_flight =
      telemetry::Registry::instance().gauge("serve.in_flight");
  telemetry::LatencyHistogram& t_frame_s =
      telemetry::Registry::instance().histogram("serve.frame_s");
  // Batch-gate decisions: parked (below quorum), fired at quorum, and the
  // two partial-group flush paths (executor idle, session retirement).
  telemetry::Counter& t_gate_parked =
      telemetry::Registry::instance().counter("serve.batch.parked");
  telemetry::Counter& t_gate_quorum =
      telemetry::Registry::instance().counter("serve.batch.quorum_fired");
  telemetry::Counter& t_gate_idle_flush =
      telemetry::Registry::instance().counter("serve.batch.idle_flush");
  telemetry::Counter& t_gate_retire_flush =
      telemetry::Registry::instance().counter("serve.batch.retire_flush");

  // Background sampler (run() starts it when config asks for one).
  std::thread sampler;
  std::mutex sampler_mu;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;

  void start_sampler() {
    if (config.telemetry_period_s <= 0.0 || !config.telemetry_sink) return;
    sampler = std::thread([this] {
      const auto period = std::chrono::duration<double>(
          config.telemetry_period_s);
      std::unique_lock<std::mutex> lock(sampler_mu);
      while (!sampler_stop) {
        if (sampler_cv.wait_for(lock, period,
                                [this] { return sampler_stop; }))
          break;
        lock.unlock();
        config.telemetry_sink(telemetry::Registry::instance().snapshot());
        lock.lock();
      }
    });
  }

  void stop_sampler() {
    if (!sampler.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(sampler_mu);
      sampler_stop = true;
    }
    sampler_cv.notify_all();
    sampler.join();
    // A guaranteed final snapshot: short runs see at least one emission,
    // and the last one always reflects the finished run.
    config.telemetry_sink(telemetry::Registry::instance().snapshot());
  }

  explicit Impl(ServerConfig cfg)
      : config(cfg), batcher(cfg.max_batch) {}

  void fail(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = error;
      stop = true;
    }
    cv_work.notify_all();
    cv_space.notify_all();
  }

  static bool all_done(const std::vector<Session*>& set) {
    return std::all_of(set.begin(), set.end(),
                       [](const Session* s) { return s->done(); });
  }

  bool all_sessions_done() const {
    return std::all_of(sessions.begin(), sessions.end(),
                       [](const auto& s) { return s->done(); });
  }

  // ---- acquisition producers (one thread per session) ---------------------

  void produce(Session& s) {
    try {
      s.config().source->reset();
      while (true) {
        rt::Frame frame;
        const auto acq0 = std::chrono::steady_clock::now();
        const bool have = s.config().source->next(frame);
        if (!have) break;
        const auto acq1 = std::chrono::steady_clock::now();
        s.source_stats.record(
            std::chrono::duration<double>(acq1 - acq0).count());
        // Head of the frame's lineage chain: the acquisition span carries
        // the trace id the source just minted.
        telemetry::trace_record_flow("serve.acquire", acq0, acq1,
                                     frame.trace_id);
        std::unique_lock<std::mutex> lock(mu);
        if (stop) break;
        if (s.ready.size() >= config.max_in_flight) {
          if (config.backpressure == Backpressure::kBlock) {
            cv_space.wait(lock, [&] {
              return stop || s.ready.size() < config.max_in_flight;
            });
            if (stop) break;
          } else {
            s.ready.pop_front();  // freshest frames win
            ++s.dropped;
            t_dropped.add();
            t_in_flight.sub();
            obs::FlightRecorder::instance().record(
                obs::EventKind::kFrameDrop, s.id(), s.dropped,
                static_cast<std::int64_t>(s.ready.size()));
            if (ops_active)
              obs::ServiceState::instance().frame_dropped(s.id());
          }
        }
        s.ready.push_back(std::move(frame));
        t_in_flight.add();
        if (graph_mode) try_launch_locked(s);
        lock.unlock();
        cv_work.notify_all();
      }
    } catch (...) {
      fail(std::current_exception());
    }
    const bf::BatchedBeamformer* retire = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mu);
      s.exhausted = true;
      retire = check_retired_locked(s);
    }
    cv_work.notify_all();
    if (retire != nullptr) on_retire(retire);
  }

  // ==========================================================================
  // Graph scheduling: per-session stage graphs drained by readiness across
  // all sessions on one shared executor.
  // ==========================================================================

  /// Wraps a stage body as a graph node fn: tags this thread's pool work
  /// with the session id (fair-share admission in latency mode), runs the
  /// body, untags.
  static std::function<graph::Status()> tagged(Session& s,
                                               std::function<void()> fn) {
    return [&s, fn = std::move(fn)]() {
      set_job_tag(static_cast<std::uint64_t>(s.id()) + 1);
      try {
        fn();
      } catch (...) {
        set_job_tag(0);
        throw;
      }
      set_job_tag(0);
      return graph::Status::kDone;
    };
  }

  /// (Re)builds a session's stage graph for `angles` steering angles:
  /// prepare -> tof[0..angles) -> compound -> (beamform | batch gate) ->
  /// deliver. Caller holds mu (node bodies only run after launch).
  void build_graph(Session& s, std::size_t angles) {
    s.graph.clear();
    const graph::NodeId prep = s.graph.add(
        "prepare", {}, tagged(s, [&s] { s.processor().prepare(s.frame); }));
    std::vector<graph::NodeId> tof_ids;
    tof_ids.reserve(angles);
    for (std::size_t i = 0; i < angles; ++i) {
      tof_ids.push_back(s.graph.add(
          "tof[" + std::to_string(i) + "]", {prep},
          tagged(s, [&s, i] { s.processor().apply_tof_angle(s.frame, i); })));
    }
    const graph::NodeId comp = s.graph.add(
        "compound", std::move(tof_ids),
        tagged(s, [&s] { s.processor().compound(); }));
    graph::NodeId pre_deliver;
    if (s.batched() != nullptr) {
      s.batch_node =
          s.graph.add("batch", {comp}, [this, &s] { return batch_gate(s); });
      pre_deliver = s.batch_node;
    } else {
      pre_deliver = s.graph.add("beamform", {comp},
                                tagged(s, [&s] { s.processor().beamform(); }));
    }
    s.graph.add("deliver", {pre_deliver}, tagged(s, [&s] {
                  const rt::FrameOutput out =
                      s.batched() != nullptr
                          ? s.processor().finish(s.frame,
                                                 std::move(s.batched_iq))
                          : s.processor().finish(s.frame);
                  Timer t;
                  if (s.config().sink) s.config().sink(out);
                  s.sink_s = t.seconds();
                }));
  }

  /// Pops the session's next ready frame into the graph and launches it.
  /// Caller holds mu.
  void try_launch_locked(Session& s) {
    if (stop || s.busy || s.ready.empty()) return;
    s.frame = std::move(s.ready.front());
    s.ready.pop_front();
    s.busy = true;
    s.dispatch_time = std::chrono::steady_clock::now();
    cv_space.notify_all();
    const std::size_t angles = s.frame.num_acquisitions();
    if (angles != s.graph_angles) {
      build_graph(s, angles);
      s.graph_angles = angles;
    }
    executor->launch(
        s.graph,
        [this, &s](std::exception_ptr error) { on_frame_done(s, error); },
        s.frame.trace_id);
  }

  /// Marks the session retired exactly once; returns its model when the
  /// retirement must be reported to the batch domain. Caller holds mu.
  const bf::BatchedBeamformer* check_retired_locked(Session& s) {
    if (!graph_mode || s.retired || !s.done()) return nullptr;
    s.retired = true;
    obs::FlightRecorder::instance().record(obs::EventKind::kSessionRetire,
                                           s.id(), s.frames, s.dropped);
    if (ops_active) obs::ServiceState::instance().retire(s.id());
    return s.batched();
  }

  /// Completion of one session frame graph: records stage stats, launches
  /// the session's next ready frame, reports retirement.
  void on_frame_done(Session& s, std::exception_ptr error) {
    if (error) fail(error);
    const bf::BatchedBeamformer* retire = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mu);
      s.busy = false;
      if (!error) {
        ++s.frames;
        t_frames.add();
        t_in_flight.sub();
        const double frame_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          s.dispatch_time)
                .count();
        s.frame_latency.record(frame_s);
        t_frame_s.record(frame_s);
        if (ops_active)
          obs::ServiceState::instance().heartbeat(s.id(), frame_s);
        const auto& t = s.processor().last_times();
        s.tof_stats.record(t.tof_s);
        s.compound_stats.record(t.compound_s);
        s.beamform_stats.record(s.batched() != nullptr ? s.forward_each_s
                                                       : t.beamform_s);
        s.post_stats.record(t.post_s);
        s.sink_stats.record(s.sink_s);
        try_launch_locked(s);
      }
      retire = check_retired_locked(s);
    }
    cv_work.notify_all();
    cv_space.notify_all();
    if (retire != nullptr) on_retire(retire);
  }

  BatchDomain& domain_of(const bf::BatchedBeamformer* model) {
    for (auto& d : domains)
      if (d.model == model) return d;
    throw LogicError("no batch domain for model");
  }

  /// Quorum for one batch domain: the structural ceiling (live sessions,
  /// configured cap) intersected with the batch size `ref`'s backend cost
  /// model prefers. On the CPU reference device the per-dispatch overhead
  /// amortizes quickly, so the gate fires small groups early; under the
  /// accelerator model's host-DMA overhead the preferred batch is larger
  /// and the gate holds out for deeper stacks.
  std::size_t quorum_of(const BatchDomain& d, Session& ref) {
    const std::size_t structural =
        std::max<std::size_t>(1, std::min(config.max_batch, d.live));
    if (!config.cost_aware_batching) return structural;
    const std::size_t preferred = batcher.preferred_batch(
        ref.device(), *ref.batched(), ref.processor().config().grid.nz,
        config.max_batch);
    return std::max<std::size_t>(1, std::min(structural, preferred));
  }

  /// The cross-session inference gate. Parks the session's frame until
  /// enough sessions sharing the model are parked (quorum = min(max_batch,
  /// live sessions, cost-preferred batch)); the quorum-completing session
  /// fires the stacked forward pass inline and resolves the other parked
  /// graphs.
  graph::Status batch_gate(Session& s) {
    std::unique_lock<std::mutex> lock(domain_mu);
    BatchDomain& d = domain_of(s.batched());
    d.parked.push_back(&s);
    const std::size_t quorum = quorum_of(d, s);
    if (d.parked.size() < quorum) {
      t_gate_parked.add();
      obs::FlightRecorder::instance().record(
          obs::EventKind::kGateParked, s.id(),
          static_cast<std::int64_t>(d.parked.size()),
          static_cast<std::int64_t>(quorum));
      if (ops_active)
        obs::ServiceState::instance().gate_update(
            &d, s.config().beamformer->name(), d.parked.size(), quorum);
      return graph::Status::kDeferred;
    }
    t_gate_quorum.add();
    obs::FlightRecorder::instance().record(
        obs::EventKind::kGateQuorumFired, s.id(),
        static_cast<std::int64_t>(d.parked.size()),
        static_cast<std::int64_t>(quorum));
    if (ops_active)
      obs::ServiceState::instance().gate_update(
          &d, s.config().beamformer->name(), 0, quorum);
    std::vector<Session*> group = std::move(d.parked);
    d.parked.clear();
    lock.unlock();
    fire_group(group, &s);
    return graph::Status::kDone;
  }

  /// Runs one stacked forward pass over the parked group and resumes every
  /// member but `self` (null when fired externally: idle flush / retire).
  /// On dispatch failure every other member's launch is failed; the error
  /// propagates through `self`'s node (or fail()) so the server stops.
  void fire_group(const std::vector<Session*>& group, Session* self) {
    try {
      std::vector<const us::TofCube*> cubes(group.size());
      for (std::size_t i = 0; i < group.size(); ++i)
        cubes[i] = &group[i]->processor().cube();
      const bf::BatchedBeamformer* model = group.front()->batched();
      const auto fwd0 = std::chrono::steady_clock::now();
      Timer fwd;
      std::vector<Tensor> iqs;
      {
        // One stacked pass for the whole group: revert this worker's
        // serial marker so the batch forward fans out across the pool,
        // untagged (it serves every parked session at once).
        ScopedParallel parallel;
        // The stacked forward runs on the group's backend (all members of
        // a domain share the model; the gate groups by model, and stock
        // backends are bit-identical, so the leader's device is
        // representative).
        const device::ScopedDevice scope(group.front()->device());
        const std::uint64_t prev = job_tag();
        set_job_tag(0);
        const std::lock_guard<std::mutex> fire_lock(batcher_mu);
        try {
          iqs = batcher.dispatch(*model, cubes);
        } catch (...) {
          set_job_tag(prev);
          throw;
        }
        set_job_tag(prev);
      }
      const auto fwd1 = std::chrono::steady_clock::now();
      const double each =
          fwd.seconds() / static_cast<double>(group.size());
      for (std::size_t i = 0; i < group.size(); ++i) {
        group[i]->batched_iq = std::move(iqs[i]);
        group[i]->forward_each_s = each;
        // The stacked pass serves every member frame at once: record one
        // span per member so each frame's lineage chain passes through it.
        telemetry::trace_record_flow("serve.batch.forward", fwd0, fwd1,
                                     group[i]->frame.trace_id);
      }
      // batched_iq is written above, before resolve: the member's deliver
      // node only becomes runnable through resolve(), which orders the
      // read after the write via the executor lock.
      for (Session* m : group)
        if (m != self) executor->resolve(m->graph, m->batch_node);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (Session* m : group)
        if (m != self) executor->fail(m->graph, error);
      if (self != nullptr) std::rethrow_exception(error);
      fail(error);
    }
  }

  /// Executor idle hook: with the ready queue drained and no node running,
  /// fire any parked group (even below quorum) so deferred frames never
  /// stall the stream. Returns true when it made progress.
  bool flush_batches() {
    std::unique_lock<std::mutex> lock(domain_mu);
    for (auto& d : domains) {
      if (d.parked.empty()) continue;
      t_gate_idle_flush.add();
      obs::FlightRecorder::instance().record(
          obs::EventKind::kGateIdleFlush, d.parked.front()->id(),
          static_cast<std::int64_t>(d.parked.size()));
      if (ops_active)
        obs::ServiceState::instance().gate_update(
            &d, d.parked.front()->config().beamformer->name(), 0, 0);
      std::vector<Session*> group = std::move(d.parked);
      d.parked.clear();
      lock.unlock();
      fire_group(group, nullptr);
      return true;
    }
    return false;
  }

  /// A batched session retired: shrink its domain's quorum and fire the
  /// parked group if it now meets it (drain on session retire).
  void on_retire(const bf::BatchedBeamformer* model) {
    std::unique_lock<std::mutex> lock(domain_mu);
    BatchDomain& d = domain_of(model);
    if (d.live > 0) --d.live;
    if (d.parked.empty()) return;
    const std::size_t quorum = quorum_of(d, *d.parked.front());
    if (d.parked.size() < quorum) return;
    t_gate_retire_flush.add();
    obs::FlightRecorder::instance().record(
        obs::EventKind::kGateRetireFlush, d.parked.front()->id(),
        static_cast<std::int64_t>(d.parked.size()),
        static_cast<std::int64_t>(quorum));
    if (ops_active)
      obs::ServiceState::instance().gate_update(
          &d, d.parked.front()->config().beamformer->name(), 0, quorum);
    std::vector<Session*> group = std::move(d.parked);
    d.parked.clear();
    lock.unlock();
    fire_group(group, nullptr);
  }

  void run_graph() {
    for (const auto& s : sessions) {
      if (s->batched() == nullptr) continue;
      auto it = std::find_if(domains.begin(), domains.end(), [&](auto& d) {
        return d.model == s->batched();
      });
      if (it == domains.end()) {
        domains.push_back(BatchDomain{s->batched(), {}, 1});
      } else {
        ++it->live;
      }
    }

    graph::Executor::Options opts;
    opts.num_workers = std::max<std::size_t>(
        1, config.num_workers != 0
               ? config.num_workers
               : std::min(sessions.size(), hardware_threads()));
    opts.serialize_nodes = serialize_frames;
    if (!domains.empty()) opts.idle_work = [this] { return flush_batches(); };
    executor = std::make_unique<graph::Executor>(opts);

    std::vector<std::thread> producers;
    producers.reserve(sessions.size());
    for (const auto& s : sessions)
      producers.emplace_back([this, session = s.get()] { produce(*session); });

    {
      std::unique_lock<std::mutex> lock(mu);
      cv_work.wait(lock, [&] { return stop || all_sessions_done(); });
    }
    for (auto& t : producers) t.join();
    // Fails any launch still in flight after an error stop, fires its
    // completion, and joins the workers. A clean finish reaches here with
    // the executor idle.
    executor->stop();
  }

  // ==========================================================================
  // Round-robin scheduling (legacy, kept for A/B benchmarking).
  // ==========================================================================

  /// Next direct session with a ready frame, rotating fairly. Caller holds
  /// mu; marks nothing — the caller claims the session.
  Session* pick_direct() {
    const std::size_t n = direct.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (direct_cursor + k) % n;
      Session* s = direct[i];
      if (!s->busy && !s->ready.empty()) {
        direct_cursor = (i + 1) % n;
        return s;
      }
    }
    return nullptr;
  }

  void work_direct() {
    // Throughput mode: the whole frame runs serially on this thread, so W
    // workers process W sessions' frames truly concurrently instead of
    // taking turns on the pool's single job slot. Latency mode leaves the
    // pool fan-out on and relies on tagged fair-share slot admission.
    std::optional<ScopedSerial> serial;
    if (serialize_frames) serial.emplace();
    while (true) {
      Session* s = nullptr;
      rt::Frame frame;
      {
        std::unique_lock<std::mutex> lock(mu);
        while (true) {
          if (stop) return;
          if ((s = pick_direct()) != nullptr) break;
          if (all_done(direct)) return;
          cv_work.wait(lock);
        }
        frame = std::move(s->ready.front());
        s->ready.pop_front();
        s->busy = true;
      }
      cv_space.notify_all();
      const auto dispatch_tp = std::chrono::steady_clock::now();

      rt::FrameProcessor::StageTimes times;
      double sink_s = 0.0;
      try {
        set_job_tag(static_cast<std::uint64_t>(s->id()) + 1);
        const rt::FrameOutput out = s->processor().process(frame, &times);
        Timer t;
        if (s->config().sink) s->config().sink(out);
        sink_s = t.seconds();
        set_job_tag(0);
      } catch (...) {
        set_job_tag(0);
        fail(std::current_exception());
        return;
      }
      const double frame_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 dispatch_tp)
                                 .count();
      s->frame_latency.record(frame_s);
      t_frame_s.record(frame_s);
      t_frames.add();
      t_in_flight.sub();
      if (ops_active)
        obs::ServiceState::instance().heartbeat(s->id(), frame_s);
      {
        const std::lock_guard<std::mutex> lock(mu);
        s->busy = false;
        ++s->frames;
        s->tof_stats.record(times.tof_s);
        s->compound_stats.record(times.compound_s);
        s->beamform_stats.record(times.beamform_s);
        s->post_stats.record(times.post_s);
        s->sink_stats.record(sink_s);
      }
      cv_work.notify_all();
    }
  }

  void work_inference() {
    while (true) {
      const bf::BatchedBeamformer* model = nullptr;
      std::vector<Session*> group;
      std::vector<rt::Frame> frames;
      {
        std::unique_lock<std::mutex> lock(mu);
        const std::size_t n = batched.size();
        std::size_t leader = n;
        while (true) {
          if (stop) return;
          leader = n;
          for (std::size_t k = 0; k < n; ++k) {
            const std::size_t i = (batched_cursor + k) % n;
            if (!batched[i]->busy && !batched[i]->ready.empty()) {
              leader = i;
              break;
            }
          }
          if (leader < n) break;
          if (all_done(batched)) return;
          cv_work.wait(lock);
        }
        batched_cursor = (leader + 1) % batched.size();
        model = batched[leader]->batched();
        // One ready frame from every session sharing the leader's model —
        // the cross-session batch. Per-session order holds: one frame per
        // session per dispatch, FIFO queues, busy until finished.
        for (std::size_t k = 0;
             k < batched.size() && group.size() < config.max_batch; ++k) {
          Session* s = batched[(leader + k) % batched.size()];
          if (s->batched() == model && !s->busy && !s->ready.empty()) {
            group.push_back(s);
            frames.push_back(std::move(s->ready.front()));
            s->ready.pop_front();
            s->busy = true;
          }
        }
      }
      cv_space.notify_all();
      const auto dispatch_tp = std::chrono::steady_clock::now();

      std::vector<double> tof_s(group.size()), comp_s(group.size()),
          post_s(group.size()), sink_s(group.size());
      double forward_each_s = 0.0;
      try {
        std::vector<const us::TofCube*> cubes(group.size());
        for (std::size_t i = 0; i < group.size(); ++i) {
          cubes[i] = &group[i]->processor().apply_tof(frames[i]);
          const auto& lt = group[i]->processor().last_times();
          tof_s[i] = lt.tof_s;
          comp_s[i] = lt.compound_s;
        }
        Timer fwd;
        std::vector<Tensor> iqs = batcher.dispatch(*model, cubes);
        forward_each_s = fwd.seconds() / static_cast<double>(group.size());
        for (std::size_t i = 0; i < group.size(); ++i) {
          Timer t;
          const rt::FrameOutput out =
              group[i]->processor().finish(frames[i], std::move(iqs[i]));
          post_s[i] = t.seconds();
          t.reset();
          if (group[i]->config().sink) group[i]->config().sink(out);
          sink_s[i] = t.seconds();
        }
      } catch (...) {
        fail(std::current_exception());
        return;
      }
      const double frame_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 dispatch_tp)
                                 .count();
      for (Session* s : group) {
        s->frame_latency.record(frame_s);
        t_frame_s.record(frame_s);
        t_frames.add();
        t_in_flight.sub();
        if (ops_active)
          obs::ServiceState::instance().heartbeat(s->id(), frame_s);
      }
      {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < group.size(); ++i) {
          Session* s = group[i];
          s->busy = false;
          ++s->frames;
          s->tof_stats.record(tof_s[i]);
          s->compound_stats.record(comp_s[i]);
          s->beamform_stats.record(forward_each_s);
          s->post_stats.record(post_s[i]);
          s->sink_stats.record(sink_s[i]);
        }
      }
      cv_work.notify_all();
    }
  }

  void run_round_robin() {
    std::vector<std::thread> threads;
    threads.reserve(sessions.size() + 1);
    for (const auto& s : sessions)
      threads.emplace_back([this, session = s.get()] { produce(*session); });

    if (!direct.empty()) {
      const std::size_t workers = std::max<std::size_t>(
          1, config.num_workers != 0
                 ? config.num_workers
                 : std::min(direct.size(), hardware_threads()));
      for (std::size_t i = 0; i < workers; ++i)
        threads.emplace_back([this] { work_direct(); });
    }
    if (!batched.empty())
      threads.emplace_back([this] { work_inference(); });

    for (auto& t : threads) t.join();
  }
};

Server::Server(ServerConfig config) : impl_(std::make_unique<Impl>(config)) {
  TVBF_REQUIRE(config.max_in_flight >= 1,
               "server max_in_flight must be >= 1");
}

Server::~Server() = default;

int Server::add_session(SessionConfig config) {
  TVBF_REQUIRE(!impl_->started, "add_session after Server::run");
  const int id = static_cast<int>(impl_->sessions.size());
  impl_->sessions.push_back(std::make_unique<Session>(
      id, std::move(config), impl_->config.batch_inference));
  return id;
}

std::size_t Server::num_sessions() const { return impl_->sessions.size(); }

int Server::ops_port() const {
  return impl_->ops_port_live.load(std::memory_order_acquire);
}

const ServerConfig& Server::config() const { return impl_->config; }

ServerReport Server::run() {
  Impl& im = *impl_;
  TVBF_REQUIRE(!im.started, "Server::run is single-shot");
  TVBF_REQUIRE(!im.sessions.empty(), "server has no sessions");
  im.started = true;
  im.graph_mode = im.config.scheduling == Scheduling::kGraph;

  for (const auto& s : im.sessions)
    (s->batched() != nullptr ? im.batched : im.direct).push_back(s.get());

  switch (im.config.frame_parallelism) {
    case FrameParallelism::kSerialPerWorker:
      im.serialize_frames = true;
      break;
    case FrameParallelism::kPool:
      im.serialize_frames = false;
      break;
    case FrameParallelism::kAuto:
      // Serializing stages only pays when there are enough concurrent
      // streams to fill the cores; below that it would idle cores and
      // regress behind a solo Pipeline::run. The round-robin scheduler
      // counts direct sessions only (its batched sessions run on one
      // dedicated inference thread); the graph scheduler shares its
      // workers across every session.
      im.serialize_frames =
          (im.graph_mode ? im.sessions.size() : im.direct.size()) >=
          hardware_threads();
      break;
  }

  // ---- ops plane -----------------------------------------------------------
  // ServiceState is fed only while an ops consumer (endpoint or watchdog)
  // is configured; flight-recorder events are always on (gated internally
  // on telemetry::enabled like every instrument).
  im.ops_active =
      im.config.ops_port >= 0 || im.config.watchdog_stall_s > 0.0;
  if (im.ops_active) {
    auto& state = obs::ServiceState::instance();
    state.reset();
    for (const auto& s : im.sessions)
      state.admit(s->id(), s->config().source->name(),
                  s->config().beamformer->name(), s->config().slo_frame_s,
                  s->config().drop_budget);
  }
  for (const auto& s : im.sessions)
    obs::FlightRecorder::instance().record(
        obs::EventKind::kSessionAdmit, s->id(),
        s->config().source->num_frames(), 0,
        s->config().beamformer->name().c_str());
  std::unique_ptr<obs::OpsServer> ops;
  if (im.config.ops_port >= 0) {
    ops = std::make_unique<obs::OpsServer>(
        obs::OpsServer::Options{im.config.ops_port});
    if (ops->start())
      im.ops_port_live.store(ops->port(), std::memory_order_release);
  }
  std::unique_ptr<obs::Watchdog> watchdog;
  if (im.config.watchdog_stall_s > 0.0) {
    obs::Watchdog::Options wopts;
    wopts.period_s = im.config.watchdog_period_s;
    wopts.stall_s = im.config.watchdog_stall_s;
    wopts.dump_path = im.config.watchdog_dump_path;
    wopts.pending_override = im.config.watchdog_pending_override;
    wopts.on_trip = im.config.watchdog_on_trip;
    watchdog = std::make_unique<obs::Watchdog>(std::move(wopts));
    watchdog->start();
  }

  const auto cache_before = us::PlanCache::instance().stats();
  Timer wall;

  im.start_sampler();
  if (im.graph_mode)
    im.run_graph();
  else
    im.run_round_robin();

  const double wall_s = wall.seconds();
  im.stop_sampler();
  if (watchdog) watchdog->stop();
  if (ops) {
    ops->stop();
    im.ops_port_live.store(-1, std::memory_order_release);
  }
  if (im.first_error) std::rethrow_exception(im.first_error);

  ServerReport report;
  report.wall_s = wall_s;
  const auto cache_after = us::PlanCache::instance().stats();
  report.plan_cache_hits = cache_after.hits - cache_before.hits;
  report.plan_cache_misses = cache_after.misses - cache_before.misses;
  report.batches = im.batcher.stats();
  for (const auto& s : im.sessions) {
    report.sessions.push_back(s->report());
    report.frames += s->frames;
    report.dropped += s->dropped;
  }
  return report;
}

}  // namespace tvbf::serve
