// One admitted imaging session of the multi-session server.
//
// A Session binds a FrameSource to a beamformer and grid/ToF configuration
// and owns the per-stream frame state (cached ToF plan handle, cube,
// workspace, output tensors) through a rt::FrameProcessor — exactly the
// state a solo rt::Pipeline would own, so a served session produces
// bit-identical frames to running its source through Pipeline::run alone.
// The Server schedules sessions; a Session itself is passive state plus a
// bounded ready-frame queue filled by the session's producer thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "graph/frame_graph.hpp"
#include "runtime/frame_source.hpp"
#include "runtime/pipeline.hpp"
#include "telemetry/telemetry.hpp"

namespace tvbf::serve {

/// What happens when a session's bounded in-flight queue is full.
enum class Backpressure {
  kBlock,       ///< the producer waits for a slot (lossless)
  kDropOldest,  ///< the oldest undispatched frame is dropped (freshest wins)
};

/// Everything needed to admit one session.
struct SessionConfig {
  std::shared_ptr<rt::FrameSource> source;
  std::shared_ptr<const bf::Beamformer> beamformer;
  /// Grid/ToF flavor/dynamic range for this stream. `overlap` is ignored —
  /// the server always overlaps acquisition with processing.
  rt::PipelineConfig pipeline;
  /// Invoked once per processed frame, in frame order, from a server
  /// scheduler thread (at most one frame of a session is in flight at a
  /// time). The FrameOutput references session-owned buffers overwritten
  /// by the session's next frame.
  rt::Pipeline::Sink sink;
  /// Per-frame latency SLO for the ops plane's /healthz: frames slower
  /// than this count as deadline misses and any miss marks the session
  /// unhealthy. <= 0 = no latency SLO.
  double slo_frame_s = 0.0;
  /// Drop budget for /healthz: more dropped frames than this marks the
  /// session unhealthy. < 0 = no drop SLO.
  std::int64_t drop_budget = -1;
};

/// Per-session half of the server report.
struct SessionReport {
  int id = -1;
  std::string source;      ///< source name
  std::string beamformer;  ///< beamformer name
  std::int64_t frames = 0;   ///< frames processed and delivered to the sink
  std::int64_t dropped = 0;  ///< frames dropped by kDropOldest backpressure
  /// source, tof, compound, beamform, postprocess, sink — in flow order
  /// (source runs on the producer thread, so stage totals can exceed the
  /// server wall).
  std::vector<rt::StageStats> stages;

  const rt::StageStats& stage(const std::string& name) const;
};

/// Server-internal session state. Locking discipline: `ready`, `busy`,
/// `exhausted`, `dropped` and the scheduler-side stage stats mutate only
/// under the server mutex; `source_stats` belongs to the producer thread
/// until it is joined; `processor` belongs to whichever scheduler thread
/// currently holds `busy`.
class Session {
 public:
  Session(int id, SessionConfig config, bool batching_enabled);

  int id() const { return id_; }
  const SessionConfig& config() const { return config_; }
  rt::FrameProcessor& processor() { return processor_; }
  /// The session's resolved backend (pipeline.device or the CPU default);
  /// its cost model drives the batch gate's quorum sizing.
  device::Device& device() const { return processor_.device(); }

  /// Non-null when the beamformer is batch-capable and server-side
  /// batching is on: the session's frames then flow through the
  /// cross-session InferenceBatcher instead of the direct workers.
  const bf::BatchedBeamformer* batched() const { return batched_; }

  /// True once the producer is done and every frame has been processed.
  bool done() const { return exhausted && ready.empty() && !busy; }

  SessionReport report() const;

  // ---- scheduler state (see locking discipline above) ----
  std::deque<rt::Frame> ready;  ///< acquired frames awaiting processing
  bool exhausted = false;       ///< producer ran the source dry
  bool busy = false;            ///< a scheduler thread holds a frame
  std::int64_t frames = 0;
  std::int64_t dropped = 0;
  rt::StageStats source_stats{.name = "source"};
  rt::StageStats tof_stats{.name = "tof"};
  rt::StageStats compound_stats{.name = "compound"};
  rt::StageStats beamform_stats{.name = "beamform"};
  rt::StageStats post_stats{.name = "postprocess"};
  rt::StageStats sink_stats{.name = "sink"};

  // ---- graph-scheduling scratch (owned by the graph while `busy`) ----
  rt::Frame frame;          ///< frame currently flowing through the graph
  graph::FrameGraph graph;  ///< stage graph, rebuilt on angle-count change
  std::size_t graph_angles = 0;    ///< angle count `graph` was built for
  graph::NodeId batch_node = 0;    ///< gate node id (batched sessions)
  Tensor batched_iq;               ///< IQ delivered by a cross-session fire
  double forward_each_s = 0.0;     ///< per-frame share of the batch forward
  double sink_s = 0.0;             ///< sink time of the frame in flight
  bool retired = false;            ///< retirement reported to the domain

  // ---- telemetry ----
  /// Per-session frame latency ("serve.session.<id>.frame_s"): dispatch
  /// (leaving the ready queue) to delivery. Registered at admission; the
  /// registry keeps the reference valid for the process lifetime.
  telemetry::LatencyHistogram& frame_latency;
  /// When the in-flight frame left the ready queue (graph scheduling).
  std::chrono::steady_clock::time_point dispatch_time{};

 private:
  int id_ = -1;
  SessionConfig config_;
  rt::FrameProcessor processor_;
  const bf::BatchedBeamformer* batched_ = nullptr;
};

}  // namespace tvbf::serve
