#include "serve/inference_batcher.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace tvbf::serve {

namespace {
// Batcher occupancy: dispatched frames over batch slots tells how full the
// stacked forwards run; the forward histogram is the per-dispatch latency.
struct BatcherInstruments {
  telemetry::Counter& batches =
      telemetry::Registry::instance().counter("batcher.batches");
  telemetry::Counter& frames =
      telemetry::Registry::instance().counter("batcher.frames");
  telemetry::Counter& slots =
      telemetry::Registry::instance().counter("batcher.slots");
  telemetry::LatencyHistogram& forward =
      telemetry::Registry::instance().histogram("batcher.forward_s");
};

BatcherInstruments& batcher_instruments() {
  static BatcherInstruments instruments;
  return instruments;
}
}  // namespace

struct InferenceBatcher::Impl {
  std::size_t max_batch;
  mutable std::mutex mu;
  Stats stats;
  /// preferred_batch memo: the estimate is pure dimension arithmetic, so
  /// one (device, model, nz, cap) probe is valid for the server's lifetime.
  using SizingKey =
      std::tuple<const device::Device*, const bf::BatchedBeamformer*,
                 std::int64_t, std::size_t>;
  mutable std::map<SizingKey, std::size_t> sizing_cache;
};

InferenceBatcher::InferenceBatcher(std::size_t max_batch)
    : impl_(std::make_shared<Impl>()) {
  TVBF_REQUIRE(max_batch >= 1, "InferenceBatcher max_batch must be >= 1");
  impl_->max_batch = max_batch;
}

std::vector<Tensor> InferenceBatcher::dispatch(
    const bf::BatchedBeamformer& beamformer,
    const std::vector<const us::TofCube*>& cubes) {
  TVBF_REQUIRE(!cubes.empty(), "dispatch needs at least one cube");
  std::vector<Tensor> results;
  results.reserve(cubes.size());
  for (std::size_t begin = 0; begin < cubes.size();
       begin += impl_->max_batch) {
    const std::size_t end =
        std::min(cubes.size(), begin + impl_->max_batch);
    const std::vector<const us::TofCube*> chunk(cubes.begin() + begin,
                                                cubes.begin() + end);
    Timer t;
    std::vector<Tensor> chunk_out = beamformer.beamform_batch(chunk);
    const double forward_s = t.seconds();
    TVBF_REQUIRE(chunk_out.size() == chunk.size(),
                 "beamform_batch returned a wrong-sized batch");
    for (Tensor& iq : chunk_out) results.push_back(std::move(iq));

    BatcherInstruments& bi = batcher_instruments();
    bi.batches.add();
    bi.frames.add(static_cast<std::int64_t>(chunk.size()));
    bi.slots.add(static_cast<std::int64_t>(impl_->max_batch));
    bi.forward.record(forward_s);

    const std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->stats.batches;
    impl_->stats.frames += static_cast<std::int64_t>(chunk.size());
    impl_->stats.max_batch = std::max(impl_->stats.max_batch,
                                      static_cast<std::int64_t>(chunk.size()));
    impl_->stats.forward_s += forward_s;
  }
  return results;
}

std::size_t InferenceBatcher::preferred_batch(
    const device::Device& device, const bf::BatchedBeamformer& beamformer,
    std::int64_t nz_frame, std::size_t cap) const {
  TVBF_REQUIRE(nz_frame > 0, "preferred_batch needs a positive frame depth");
  TVBF_REQUIRE(cap >= 1, "preferred_batch cap must be >= 1");
  const Impl::SizingKey key{&device, &beamformer, nz_frame, cap};
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    const auto it = impl_->sizing_cache.find(key);
    if (it != impl_->sizing_cache.end()) return it->second;
  }

  // Estimated seconds for one stacked forward of b frames. The batcher
  // stacks along the depth axis, so a b-frame batch is one forward of
  // nz_frame * b rows.
  const auto estimate = [&](std::size_t b) -> double {
    device::CommandEncoder enc;
    if (!beamformer.encode_cost_probe(
            enc, nz_frame * static_cast<std::int64_t>(b)))
      return -1.0;
    return device.estimate_seconds(enc.finish());
  };

  std::size_t preferred = cap;
  const double first = estimate(1);
  if (first < 0.0) {
    // No cost probe: keep the structural sizing (fill to the cap).
    preferred = cap;
  } else {
    preferred = 1;
    double per_frame = first;
    while (preferred < cap) {
      const std::size_t next = preferred + 1;
      const double candidate =
          estimate(next) / static_cast<double>(next);
      // Stop at the first batch size whose marginal per-frame gain drops
      // below the threshold: queueing delay then outweighs the win.
      if (candidate > per_frame * (1.0 - kMarginalGain)) break;
      preferred = next;
      per_frame = candidate;
    }
  }

  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sizing_cache.emplace(key, preferred);
  impl_->stats.preferred_batch = static_cast<std::int64_t>(preferred);
  return preferred;
}

InferenceBatcher::Stats InferenceBatcher::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

}  // namespace tvbf::serve
