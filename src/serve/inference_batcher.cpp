#include "serve/inference_batcher.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace tvbf::serve {

struct InferenceBatcher::Impl {
  std::size_t max_batch;
  mutable std::mutex mu;
  Stats stats;
};

InferenceBatcher::InferenceBatcher(std::size_t max_batch)
    : impl_(std::make_shared<Impl>()) {
  TVBF_REQUIRE(max_batch >= 1, "InferenceBatcher max_batch must be >= 1");
  impl_->max_batch = max_batch;
}

std::vector<Tensor> InferenceBatcher::dispatch(
    const bf::BatchedBeamformer& beamformer,
    const std::vector<const us::TofCube*>& cubes) {
  TVBF_REQUIRE(!cubes.empty(), "dispatch needs at least one cube");
  std::vector<Tensor> results;
  results.reserve(cubes.size());
  for (std::size_t begin = 0; begin < cubes.size();
       begin += impl_->max_batch) {
    const std::size_t end =
        std::min(cubes.size(), begin + impl_->max_batch);
    const std::vector<const us::TofCube*> chunk(cubes.begin() + begin,
                                                cubes.begin() + end);
    Timer t;
    std::vector<Tensor> chunk_out = beamformer.beamform_batch(chunk);
    const double forward_s = t.seconds();
    TVBF_REQUIRE(chunk_out.size() == chunk.size(),
                 "beamform_batch returned a wrong-sized batch");
    for (Tensor& iq : chunk_out) results.push_back(std::move(iq));

    const std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->stats.batches;
    impl_->stats.frames += static_cast<std::int64_t>(chunk.size());
    impl_->stats.max_batch = std::max(impl_->stats.max_batch,
                                      static_cast<std::int64_t>(chunk.size()));
    impl_->stats.forward_s += forward_s;
  }
  return results;
}

InferenceBatcher::Stats InferenceBatcher::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

}  // namespace tvbf::serve
