#include "serve/session.hpp"

#include <utility>

#include "common/error.hpp"

namespace tvbf::serve {

const rt::StageStats& SessionReport::stage(const std::string& name) const {
  for (const auto& s : stages)
    if (s.name == name) return s;
  throw InvalidArgument("no session stage named '" + name + "'");
}

Session::Session(int id, SessionConfig config, bool batching_enabled)
    : frame_latency(telemetry::Registry::instance().histogram(
          "serve.session." + std::to_string(id) + ".frame_s")),
      id_(id),
      config_(std::move(config)),
      processor_(config_.beamformer, config_.pipeline) {
  TVBF_REQUIRE(config_.source != nullptr, "session needs a frame source");
  if (batching_enabled)
    batched_ = dynamic_cast<const bf::BatchedBeamformer*>(
        config_.beamformer.get());
}

SessionReport Session::report() const {
  SessionReport r;
  r.id = id_;
  r.source = config_.source->name();
  r.beamformer = config_.beamformer->name();
  r.frames = frames;
  r.dropped = dropped;
  r.stages = {source_stats, tof_stats, compound_stats, beamform_stats,
              post_stats, sink_stats};
  return r;
}

}  // namespace tvbf::serve
