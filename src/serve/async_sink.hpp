// Double-buffered asynchronous frame sink.
//
// The streaming pipeline invokes its sink inline, so a slow writer (PGM to
// disk, network egress) stalls the frame clock. AsyncSink decouples them
// with the same pattern as the source prefetch thread: push() deep-copies
// the frame's dB image into a small bounded queue and returns; a dedicated
// writer thread drains the queue. With the default depth of 2 the writer
// works on frame k while the pipeline fills frame k+1 — classic double
// buffering. The queue can either block the producer when the writer falls
// behind (lossless file output) or drop the oldest queued frame (display
// sinks that only want the freshest image).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "runtime/pipeline.hpp"

namespace tvbf::serve {

/// One frame as handed to the writer: deep copies, safe to keep after the
/// pipeline has overwritten its buffers.
struct SinkFrame {
  std::int64_t index = 0;
  double time_s = 0.0;
  std::uint64_t trace_id = 0;  ///< frame lineage (rt::FrameOutput::trace_id)
  Tensor db;  ///< (nz, nx) log-compressed B-mode
};

/// Writer-thread sink. All public methods are safe to call from one
/// producer thread; the writer callback runs on the sink's own thread.
class AsyncSink {
 public:
  using WriteFn = std::function<void(const SinkFrame&)>;

  struct Options {
    std::size_t queue_depth = 2;  ///< bounded buffer (>= 1); 2 = double buffer
    /// When the queue is full: false blocks push() until the writer frees a
    /// slot (lossless); true drops the oldest queued frame instead (the
    /// freshest frames win, counted in Stats::dropped).
    bool drop_when_full = false;
  };

  struct Stats {
    std::int64_t pushed = 0;   ///< frames accepted by push()
    std::int64_t written = 0;  ///< frames the writer completed
    std::int64_t dropped = 0;  ///< frames dropped under drop_when_full
    double copy_s = 0.0;       ///< producer-side deep-copy time
    double blocked_s = 0.0;    ///< producer-side time blocked on a full queue
    double write_s = 0.0;      ///< writer-side time inside the callback
  };

  explicit AsyncSink(WriteFn write);
  AsyncSink(WriteFn write, Options options);
  ~AsyncSink();  // closes; writer errors are swallowed (use close() to see them)

  /// Enqueues a deep copy of the frame. Blocks or drops per Options when
  /// the queue is full. Rethrows a pending writer error.
  void push(const rt::FrameOutput& frame);

  /// Adapter usable directly as a rt::Pipeline::Sink.
  rt::Pipeline::Sink sink();

  /// Drains the queue, joins the writer and rethrows the first writer
  /// error (once). Idempotent; push() after close() throws.
  void close();

  Stats stats() const;

  AsyncSink(const AsyncSink&) = delete;
  AsyncSink& operator=(const AsyncSink&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::serve
