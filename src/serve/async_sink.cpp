#include "serve/async_sink.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace tvbf::serve {

struct AsyncSink::Impl {
  WriteFn write;
  Options options;

  std::mutex mu;
  std::condition_variable cv_data;   // writer waits for frames
  std::condition_variable cv_space;  // producer waits for a slot
  std::deque<SinkFrame> queue;
  bool closed = false;           // no more push() accepted
  bool error_reported = false;   // close() already rethrew
  std::exception_ptr error;
  Stats stats;
  std::thread writer;

  void writer_loop() {
    while (true) {
      SinkFrame frame;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_data.wait(lock, [&] { return !queue.empty() || closed; });
        if (queue.empty()) return;  // closed and drained
        frame = std::move(queue.front());
        queue.pop_front();
      }
      cv_space.notify_all();
      Timer t;
      try {
        static telemetry::LatencyHistogram& write_hist =
            telemetry::Registry::instance().histogram("sink.write_s");
        // The write span is the tail of the frame's lineage chain.
        telemetry::ScopedFlow flow(frame.trace_id);
        telemetry::ScopedSpan span(&write_hist, "sink.write");
        write(frame);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        // Discard what is queued: the producer must not block forever on a
        // writer that will never drain again.
        queue.clear();
        cv_space.notify_all();
        return;
      }
      const std::lock_guard<std::mutex> lock(mu);
      ++stats.written;
      stats.write_s += t.seconds();
    }
  }
};

AsyncSink::AsyncSink(WriteFn write) : AsyncSink(std::move(write), Options{}) {}

AsyncSink::AsyncSink(WriteFn write, Options options)
    : impl_(std::make_unique<Impl>()) {
  TVBF_REQUIRE(write != nullptr, "AsyncSink needs a writer callback");
  TVBF_REQUIRE(options.queue_depth >= 1, "AsyncSink queue_depth must be >= 1");
  impl_->write = std::move(write);
  impl_->options = options;
  impl_->writer = std::thread([this] { impl_->writer_loop(); });
}

AsyncSink::~AsyncSink() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() reports writer errors when called
    // explicitly.
  }
}

void AsyncSink::push(const rt::FrameOutput& frame) {
  Timer t;
  SinkFrame copy{frame.index, frame.time_s, frame.trace_id,
                 frame.db};  // deep copy
  const double copy_s = t.seconds();

  std::unique_lock<std::mutex> lock(impl_->mu);
  TVBF_REQUIRE(!impl_->closed, "AsyncSink::push after close");
  if (impl_->error) {
    impl_->error_reported = true;
    std::rethrow_exception(impl_->error);
  }
  impl_->stats.copy_s += copy_s;
  if (impl_->queue.size() >= impl_->options.queue_depth) {
    if (impl_->options.drop_when_full) {
      impl_->queue.pop_front();
      ++impl_->stats.dropped;
    } else {
      t.reset();
      impl_->cv_space.wait(lock, [&] {
        return impl_->queue.size() < impl_->options.queue_depth ||
               impl_->error != nullptr;
      });
      impl_->stats.blocked_s += t.seconds();
      if (impl_->error) {
        impl_->error_reported = true;
        std::rethrow_exception(impl_->error);
      }
    }
  }
  impl_->queue.push_back(std::move(copy));
  ++impl_->stats.pushed;
  impl_->cv_data.notify_one();
}

rt::Pipeline::Sink AsyncSink::sink() {
  return [this](const rt::FrameOutput& frame) { push(frame); };
}

void AsyncSink::close() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->closed = true;
  }
  impl_->cv_data.notify_all();
  if (impl_->writer.joinable()) impl_->writer.join();
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->error && !impl_->error_reported) {
    impl_->error_reported = true;
    std::rethrow_exception(impl_->error);
  }
}

AsyncSink::Stats AsyncSink::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

}  // namespace tvbf::serve
