// Cross-session inference batching.
//
// Sessions running learned beamformers produce one (nz, nx, nch) patch
// tensor per frame. Dispatching each alone wastes most of the forward
// pass on per-op overhead (autograd graph nodes, GEMM packing, thread
// fan-out) — the same per-frame fixed cost the PlanCache removes from the
// geometry stage. The batcher stacks every cube that is ready across
// sessions along the depth axis and runs ONE forward pass through the
// tensor/kernels datapath, splitting the IQ images back per frame. The
// stack axis is the row-independent one, so batched outputs stay
// bit-identical to per-frame calls (bf::BatchedBeamformer contract).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "beamform/beamformer.hpp"
#include "device/device.hpp"

namespace tvbf::serve {

/// Stateless dispatch + usage counters. dispatch() may be called from any
/// one thread at a time per batcher; stats() and preferred_batch() are
/// thread-safe.
class InferenceBatcher {
 public:
  struct Stats {
    std::int64_t batches = 0;    ///< forward passes dispatched
    std::int64_t frames = 0;     ///< frames across all batches
    std::int64_t max_batch = 0;  ///< largest single batch
    double forward_s = 0.0;      ///< wall time inside beamform_batch
    /// Last cost-derived preferred batch (0 until preferred_batch runs).
    std::int64_t preferred_batch = 0;

    double mean_batch() const {
      return batches > 0 ? static_cast<double>(frames) /
                               static_cast<double>(batches)
                         : 0.0;
    }
  };

  /// Minimum relative per-frame latency gain a larger batch must deliver
  /// to keep growing the preferred batch (see preferred_batch).
  static constexpr double kMarginalGain = 0.03;

  /// Caps one dispatch; larger groups are split into max_batch chunks.
  explicit InferenceBatcher(std::size_t max_batch = 16);

  /// Runs one batched pass (chunked at max_batch) over the cubes and
  /// returns one IQ image per cube, in order.
  std::vector<Tensor> dispatch(const bf::BatchedBeamformer& beamformer,
                               const std::vector<const us::TofCube*>& cubes);

  /// Cost-aware batch sizing: the batch size in [1, cap] that `device`'s
  /// cost model prefers for stacking `beamformer` frames of nz_frame depth
  /// rows. Grows the batch while the estimated per-frame latency
  /// est(b)/b keeps improving by at least kMarginalGain — on backends with
  /// a large per-dispatch overhead (the modeled accelerator's host DMA)
  /// that sustains far longer than on the CPU, so the preferred batch is
  /// correspondingly larger. Falls back to `cap` (structural sizing) when
  /// the beamformer cannot encode a cost probe. Deterministic (pure
  /// dimension arithmetic) and cached per (device, beamformer, nz, cap).
  std::size_t preferred_batch(const device::Device& device,
                              const bf::BatchedBeamformer& beamformer,
                              std::int64_t nz_frame, std::size_t cap) const;

  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace tvbf::serve
