// Cross-session inference batching.
//
// Sessions running learned beamformers produce one (nz, nx, nch) patch
// tensor per frame. Dispatching each alone wastes most of the forward
// pass on per-op overhead (autograd graph nodes, GEMM packing, thread
// fan-out) — the same per-frame fixed cost the PlanCache removes from the
// geometry stage. The batcher stacks every cube that is ready across
// sessions along the depth axis and runs ONE forward pass through the
// tensor/kernels datapath, splitting the IQ images back per frame. The
// stack axis is the row-independent one, so batched outputs stay
// bit-identical to per-frame calls (bf::BatchedBeamformer contract).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "beamform/beamformer.hpp"

namespace tvbf::serve {

/// Stateless dispatch + usage counters. dispatch() may be called from any
/// one thread at a time per batcher; stats() is thread-safe.
class InferenceBatcher {
 public:
  struct Stats {
    std::int64_t batches = 0;    ///< forward passes dispatched
    std::int64_t frames = 0;     ///< frames across all batches
    std::int64_t max_batch = 0;  ///< largest single batch
    double forward_s = 0.0;      ///< wall time inside beamform_batch

    double mean_batch() const {
      return batches > 0 ? static_cast<double>(frames) /
                               static_cast<double>(batches)
                         : 0.0;
    }
  };

  /// Caps one dispatch; larger groups are split into max_batch chunks.
  explicit InferenceBatcher(std::size_t max_batch = 16);

  /// Runs one batched pass (chunked at max_batch) over the cubes and
  /// returns one IQ image per cube, in order.
  std::vector<Tensor> dispatch(const bf::BatchedBeamformer& beamformer,
                               const std::vector<const us::TofCube*>& cubes);

  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace tvbf::serve
