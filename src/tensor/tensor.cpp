#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

namespace tvbf {

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    TVBF_REQUIRE(d >= 0, "shape dimensions must be non-negative");
    n *= d;
  }
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(numel(shape_)), 0.0f) {
  TVBF_REQUIRE(shape_.size() <= 4, "tensor rank is limited to 4");
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(numel(shape_)), fill) {
  TVBF_REQUIRE(shape_.size() <= 4, "tensor rank is limited to 4");
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  TVBF_REQUIRE(shape_.size() <= 4, "tensor rank is limited to 4");
  TVBF_REQUIRE(static_cast<std::int64_t>(data_.size()) == numel(shape_),
               "value count " + std::to_string(data_.size()) +
                   " does not match shape " + to_string(shape_));
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const auto n = static_cast<std::int64_t>(values.size());
  return Tensor({n}, std::move(values));
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  TVBF_REQUIRE(axis >= 0 && axis < rank(),
               "axis " + std::to_string(axis) + " out of range for " +
                   to_string(shape_));
  return shape_[static_cast<std::size_t>(axis)];
}

float& Tensor::flat(std::int64_t i) {
  TVBF_REQUIRE(i >= 0 && i < size(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::flat(std::int64_t i) const {
  TVBF_REQUIRE(i >= 0 && i < size(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::span<const std::int64_t> idx) const {
  TVBF_REQUIRE(static_cast<std::int64_t>(idx.size()) == rank(),
               "index rank mismatch: got " + std::to_string(idx.size()) +
                   " for shape " + to_string(shape_));
  std::int64_t flat = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    TVBF_REQUIRE(idx[a] >= 0 && idx[a] < shape_[a],
                 "index " + std::to_string(idx[a]) + " out of range on axis " +
                     std::to_string(a) + " of " + to_string(shape_));
    flat = flat * shape_[a] + idx[a];
  }
  return flat;
}

float& Tensor::at(std::int64_t i) {
  const std::int64_t idx[] = {i};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i) const {
  const std::int64_t idx[] = {i};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::at(std::int64_t i, std::int64_t j) {
  const std::int64_t idx[] = {i, j};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i, std::int64_t j) const {
  const std::int64_t idx[] = {i, j};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  const std::int64_t idx[] = {i, j, k};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  const std::int64_t idx[] = {i, j, k};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
                  std::int64_t l) {
  const std::int64_t idx[] = {i, j, k, l};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k,
                 std::int64_t l) const {
  const std::int64_t idx[] = {i, j, k, l};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

void Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::reshape(Shape new_shape) {
  TVBF_REQUIRE(numel(new_shape) == size(),
               "reshape from " + to_string(shape_) + " to " +
                   to_string(new_shape) + " changes element count");
  TVBF_REQUIRE(new_shape.size() <= 4, "tensor rank is limited to 4");
  shape_ = std::move(new_shape);
}

}  // namespace tvbf
