// Dense row-major float tensor, rank 0..4.
//
// This is the single numeric container shared by the DSP chain, the
// beamformers, the neural-network stack and the quantized kernels. It is a
// value type (copy = deep copy) per Core Guidelines C.10; views are expressed
// with std::span over the flat storage where zero-copy access matters.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace tvbf {

/// Tensor extents, outermost dimension first. Rank 0 (scalar) is `{}`.
using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for rank 0).
std::int64_t numel(const Shape& shape);

/// Human-readable "[a, b, c]" form for diagnostics.
std::string to_string(const Shape& shape);

/// True if both shapes are identical.
inline bool same_shape(const Shape& a, const Shape& b) { return a == b; }

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty rank-1 tensor of zero elements.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor wrapping a copy of `values`; size must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  /// Convenience factory for rank-1 data.
  static Tensor from_vector(std::vector<float> values);

  /// Uninitialized-shape helpers.
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  std::int64_t dim(std::int64_t axis) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Flat element access with bounds check.
  float& flat(std::int64_t i);
  float flat(std::int64_t i) const;

  /// Multi-dimensional access; rank must match the argument count.
  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const;

  /// Sets every element.
  void fill(float v);

  /// Returns a tensor with the same data and a new shape of equal numel.
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape (numel must be preserved).
  void reshape(Shape new_shape);

  bool empty() const { return data_.empty(); }

 private:
  std::int64_t flat_index(std::span<const std::int64_t> idx) const;

  Shape shape_{0};
  std::vector<float> data_;
};

}  // namespace tvbf
