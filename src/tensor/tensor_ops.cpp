#include "tensor/tensor_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "device/device.hpp"

namespace tvbf {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  TVBF_REQUIRE(same_shape(a.shape(), b.shape()),
               std::string(op) + ": shape mismatch " + to_string(a.shape()) +
                   " vs " + to_string(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor c(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] + pb[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor c(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] - pb[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor c(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] * pb[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c(a.shape());
  const float* pa = a.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] * s;
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  require_same_shape(a, b, "axpy_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] += s * pb[i];
}

Tensor add_bias(const Tensor& a, const Tensor& bias) {
  TVBF_REQUIRE(a.rank() >= 1, "add_bias needs rank >= 1 input");
  TVBF_REQUIRE(bias.rank() == 1, "bias must be rank 1");
  const std::int64_t n = a.shape().back();
  TVBF_REQUIRE(bias.size() == n,
               "bias length " + std::to_string(bias.size()) +
                   " does not match trailing dim " + std::to_string(n));
  Tensor c = a;
  float* pc = c.raw();
  const float* pb = bias.raw();
  const std::int64_t rows = a.size() / n;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = pc + r * n;
    for (std::int64_t j = 0; j < n; ++j) row[j] += pb[j];
  }
  return c;
}

Tensor relu(const Tensor& a) {
  Tensor c(a.shape());
  const float* pa = a.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
  return c;
}

Tensor tanh_t(const Tensor& a) {
  Tensor c(a.shape());
  const float* pa = a.raw();
  float* pc = c.raw();
  for (std::int64_t i = 0; i < a.size(); ++i) pc[i] = std::tanh(pa[i]);
  return c;
}

float sum(const Tensor& a) {
  double s = 0.0;  // double accumulator: stable for large tensors
  for (float v : a.data()) s += v;
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  TVBF_REQUIRE(a.size() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.size());
}

float min_value(const Tensor& a) {
  TVBF_REQUIRE(a.size() > 0, "min of empty tensor");
  return *std::min_element(a.data().begin(), a.data().end());
}

float max_value(const Tensor& a) {
  TVBF_REQUIRE(a.size() > 0, "max of empty tensor");
  return *std::max_element(a.data().begin(), a.data().end());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.data()) m = std::max(m, std::fabs(v));
  return m;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TVBF_REQUIRE(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 inputs");
  const std::int64_t m = a.dim(0), k = a.dim(1);
  TVBF_REQUIRE(b.dim(0) == k, "matmul inner dims differ: " +
                                  to_string(a.shape()) + " x " +
                                  to_string(b.shape()));
  const std::int64_t n = b.dim(1);
  Tensor c({m, n});
  device::current().submit(
      device::CommandEncoder().gemm(a.raw(), b.raw(), c.raw(), m, k, n)
          .finish());
  return c;
}

Tensor batched_matmul(const Tensor& a, const Tensor& b) {
  TVBF_REQUIRE(a.rank() == 3, "batched_matmul needs rank-3 lhs");
  const std::int64_t B = a.dim(0), m = a.dim(1), k = a.dim(2);
  const bool broadcast = b.rank() == 2;
  TVBF_REQUIRE(broadcast || b.rank() == 3,
               "batched_matmul rhs must be rank 2 or 3");
  if (!broadcast)
    TVBF_REQUIRE(b.dim(0) == B, "batch sizes differ: " + to_string(a.shape()) +
                                    " x " + to_string(b.shape()));
  const std::int64_t bk = broadcast ? b.dim(0) : b.dim(1);
  const std::int64_t n = broadcast ? b.dim(1) : b.dim(2);
  TVBF_REQUIRE(bk == k, "batched_matmul inner dims differ: " +
                            to_string(a.shape()) + " x " + to_string(b.shape()));
  Tensor c({B, m, n});
  device::CommandEncoder enc;
  if (broadcast) {
    // One rhs for every batch: fold the batch into the rows and run a single
    // flat GEMM, so the packed B panels are reused across the whole batch.
    enc.gemm(a.raw(), b.raw(), c.raw(), B * m, k, n);
  } else {
    enc.batched_gemm(a.raw(), b.raw(), c.raw(), B, m, k, n);
  }
  device::current().submit(enc.finish());
  return c;
}

Tensor batched_matmul_nt(const Tensor& a, const Tensor& b) {
  TVBF_REQUIRE(a.rank() == 3 && b.rank() == 3,
               "batched_matmul_nt needs rank-3 inputs");
  const std::int64_t B = a.dim(0), m = a.dim(1), k = a.dim(2);
  TVBF_REQUIRE(b.dim(0) == B, "batch sizes differ: " + to_string(a.shape()) +
                                  " x " + to_string(b.shape()));
  TVBF_REQUIRE(b.dim(2) == k, "batched_matmul_nt inner dims differ: " +
                                  to_string(a.shape()) + " x " +
                                  to_string(b.shape()));
  const std::int64_t n = b.dim(1);
  Tensor c({B, m, n});
  device::current().submit(
      device::CommandEncoder()
          .batched_gemm(a.raw(), b.raw(), c.raw(), B, m, k, n,
                        /*transpose_b=*/true)
          .finish());
  return c;
}

Tensor transpose(const Tensor& a) {
  TVBF_REQUIRE(a.rank() == 2, "transpose needs a rank-2 tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor c({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) c.raw()[j * m + i] = a.raw()[i * n + j];
  return c;
}

Tensor transpose_last2(const Tensor& a) {
  TVBF_REQUIRE(a.rank() == 3, "transpose_last2 needs a rank-3 tensor");
  const std::int64_t B = a.dim(0), m = a.dim(1), n = a.dim(2);
  Tensor c({B, n, m});
  for (std::int64_t b = 0; b < B; ++b) {
    const float* pa = a.raw() + b * m * n;
    float* pc = c.raw() + b * m * n;
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) pc[j * m + i] = pa[i * n + j];
  }
  return c;
}

Tensor slice0(const Tensor& a, std::int64_t begin, std::int64_t end) {
  TVBF_REQUIRE(a.rank() >= 1, "slice0 needs rank >= 1");
  TVBF_REQUIRE(begin >= 0 && begin <= end && end <= a.dim(0),
               "slice0 range [" + std::to_string(begin) + ", " +
                   std::to_string(end) + ") out of bounds for " +
                   to_string(a.shape()));
  Shape s = a.shape();
  s[0] = end - begin;
  Tensor c(s);
  const std::int64_t stride = a.size() / a.dim(0);
  std::copy(a.raw() + begin * stride, a.raw() + end * stride, c.raw());
  return c;
}

Tensor concat0(const Tensor& a, const Tensor& b) {
  TVBF_REQUIRE(a.rank() == b.rank() && a.rank() >= 1,
               "concat0 needs equal ranks >= 1");
  for (std::int64_t ax = 1; ax < a.rank(); ++ax)
    TVBF_REQUIRE(a.dim(ax) == b.dim(ax),
                 "concat0 trailing shape mismatch: " + to_string(a.shape()) +
                     " vs " + to_string(b.shape()));
  Shape s = a.shape();
  s[0] = a.dim(0) + b.dim(0);
  Tensor c(s);
  std::copy(a.data().begin(), a.data().end(), c.raw());
  std::copy(b.data().begin(), b.data().end(), c.raw() + a.size());
  return c;
}

Tensor concat0_all(const std::vector<const Tensor*>& parts) {
  TVBF_REQUIRE(!parts.empty(), "concat0_all needs at least one tensor");
  const Tensor& first = *parts.front();
  TVBF_REQUIRE(first.rank() >= 1, "concat0_all needs rank >= 1");
  std::int64_t rows = 0;
  for (const Tensor* p : parts) {
    TVBF_REQUIRE(p != nullptr, "concat0_all got a null tensor");
    TVBF_REQUIRE(p->rank() == first.rank(), "concat0_all rank mismatch");
    for (std::int64_t ax = 1; ax < first.rank(); ++ax)
      TVBF_REQUIRE(p->dim(ax) == first.dim(ax),
                   "concat0_all trailing shape mismatch: " +
                       to_string(first.shape()) + " vs " +
                       to_string(p->shape()));
    rows += p->dim(0);
  }
  Shape s = first.shape();
  s[0] = rows;
  Tensor c(s);
  float* out = c.raw();
  for (const Tensor* p : parts) {
    std::copy(p->data().begin(), p->data().end(), out);
    out += p->size();
  }
  return c;
}

float l2_norm(const Tensor& a) {
  double s = 0.0;
  for (float v : a.data()) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "max_abs_diff");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a.raw()[i] - b.raw()[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!same_shape(a.shape(), b.shape())) return false;
  return max_abs_diff(a, b) <= atol + rtol * max_abs(b);
}

}  // namespace tvbf
