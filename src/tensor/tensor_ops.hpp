// Free-function kernels over Tensor.
//
// These are the raw numeric kernels; the autodiff layer in src/nn builds its
// differentiable ops on top of them. Matmul is blocked and threaded via the
// common thread pool — it dominates both training and inference time.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace tvbf {

// ---- elementwise -----------------------------------------------------------

/// c = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a * b elementwise (same shape).
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * s.
Tensor scale(const Tensor& a, float s);
/// In-place a += b (same shape).
void add_inplace(Tensor& a, const Tensor& b);
/// In-place a += s * b (axpy, same shape).
void axpy_inplace(Tensor& a, float s, const Tensor& b);

/// Adds a rank-1 bias of length `a.shape().back()` to each trailing row.
Tensor add_bias(const Tensor& a, const Tensor& bias);

/// max(a, 0) elementwise.
Tensor relu(const Tensor& a);
/// tanh elementwise.
Tensor tanh_t(const Tensor& a);

// ---- reductions ------------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float min_value(const Tensor& a);
float max_value(const Tensor& a);
/// Maximum |a_i|; 0 for empty tensors.
float max_abs(const Tensor& a);

// ---- linear algebra --------------------------------------------------------

/// Row-major matrix product: a (m,k) x b (k,n) -> (m,n). Threaded.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Batched matmul: a (B,m,k) x b (B,k,n) -> (B,m,n). If b has rank 2 it is
/// broadcast across the batch.
Tensor batched_matmul(const Tensor& a, const Tensor& b);

/// Batched matmul against the transposed rhs: a (B,m,k) x b (B,n,k)^T ->
/// (B,m,n), i.e. c[b](i,j) = dot(a[b] row i, b[b] row j). Attention scores
/// (Q.K^T) consume K directly without materializing the transpose.
Tensor batched_matmul_nt(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// Swaps the last two axes of a rank-3 tensor.
Tensor transpose_last2(const Tensor& a);

// ---- shaping ---------------------------------------------------------------

/// Extracts rows [begin, end) along axis 0.
Tensor slice0(const Tensor& a, std::int64_t begin, std::int64_t end);

/// Concatenates along axis 0 (shapes must otherwise match).
Tensor concat0(const Tensor& a, const Tensor& b);

/// N-ary concat0: stacks all parts along axis 0 with a single allocation
/// (the batch-of-frames entry points stack whole frames this way).
Tensor concat0_all(const std::vector<const Tensor*>& parts);

// ---- norms & comparisons ---------------------------------------------------

/// Frobenius / L2 norm.
float l2_norm(const Tensor& a);

/// Max |a-b|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True if max |a-b| <= atol + rtol * max|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace tvbf
