#include "kernels/conv.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "kernels/gemm.hpp"

namespace tvbf::kernels {
namespace {

/// Column range [wlo, whi) of *output* pixels whose input column
/// w + c - pw stays inside [0, W).
inline void valid_out_cols(std::int64_t W, std::int64_t c, std::int64_t pw,
                           std::int64_t& wlo, std::int64_t& whi) {
  wlo = std::max<std::int64_t>(0, pw - c);
  whi = std::min(W, W + pw - c);
}

}  // namespace

void conv2d_same_forward_rows(const float* in, const float* k, float* out,
                              const Conv2dShape& s, std::int64_t h_begin,
                              std::int64_t h_end) {
  const std::int64_t ph = s.kh / 2, pw = s.kw / 2;
  std::fill(out + h_begin * s.W * s.Co, out + h_end * s.W * s.Co, 0.0f);
  for (std::int64_t h = h_begin; h < h_end; ++h) {
    for (std::int64_t r = 0; r < s.kh; ++r) {
      const std::int64_t ih = h + r - ph;
      if (ih < 0 || ih >= s.H) continue;
      for (std::int64_t c = 0; c < s.kw; ++c) {
        std::int64_t wlo, whi;
        valid_out_cols(s.W, c, pw, wlo, whi);
        if (wlo >= whi) continue;
        // out[h, wlo:whi, :] += in[ih, wlo+c-pw : whi+c-pw, :] . K[r, c]
        const float* a = in + (ih * s.W + wlo + c - pw) * s.Ci;
        const float* b = k + (r * s.kw + c) * s.Ci * s.Co;
        float* o = out + (h * s.W + wlo) * s.Co;
        gemm_rows(a, b, o, whi - wlo, s.Ci, s.Co, 0, whi - wlo,
                  /*accumulate=*/true);
      }
    }
  }
}

void conv2d_same_forward(const float* in, const float* k, float* out,
                         const Conv2dShape& s) {
  parallel_for(
      0, static_cast<std::size_t>(s.H),
      [&](std::size_t hb, std::size_t he) {
        conv2d_same_forward_rows(in, k, out, s, static_cast<std::int64_t>(hb),
                                 static_cast<std::int64_t>(he));
      },
      /*min_grain=*/1);
}

void conv2d_same_forward_reference(const float* in, const float* k, float* out,
                                   const Conv2dShape& s) {
  const std::int64_t H = s.H, W = s.W, Ci = s.Ci;
  const std::int64_t kh = s.kh, kw = s.kw, Co = s.Co;
  const std::int64_t ph = kh / 2, pw = kw / 2;
  std::fill(out, out + H * W * Co, 0.0f);
  for (std::int64_t h = 0; h < H; ++h) {
    for (std::int64_t w = 0; w < W; ++w) {
      float* o = out + (h * W + w) * Co;
      for (std::int64_t r = 0; r < kh; ++r) {
        const std::int64_t ih = h + r - ph;
        if (ih < 0 || ih >= H) continue;
        for (std::int64_t c = 0; c < kw; ++c) {
          const std::int64_t iw = w + c - pw;
          if (iw < 0 || iw >= W) continue;
          const float* x = in + (ih * W + iw) * Ci;
          const float* kk = k + (r * kw + c) * Ci * Co;
          for (std::int64_t ci = 0; ci < Ci; ++ci) {
            const float xv = x[ci];
            if (xv == 0.0f) continue;
            const float* krow = kk + ci * Co;
            for (std::int64_t co = 0; co < Co; ++co) o[co] += xv * krow[co];
          }
        }
      }
    }
  }
}

void conv2d_same_backward_bias(const float* dy, float* gb,
                               const Conv2dShape& s) {
  const std::int64_t pixels = s.H * s.W, Co = s.Co;
  parallel_for_each(
      0, static_cast<std::size_t>(Co),
      [&](std::size_t co) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < pixels; ++p)
          acc += dy[p * Co + static_cast<std::int64_t>(co)];
        gb[co] += static_cast<float>(acc);
      },
      /*min_grain=*/1);
}

void conv2d_same_backward_kernel(const float* in, const float* dy, float* gk,
                                 const Conv2dShape& s) {
  const std::int64_t ph = s.kh / 2, pw = s.kw / 2;
  parallel_for_each(
      0, static_cast<std::size_t>(s.kh * s.kw),
      [&](std::size_t idx) {
        const std::int64_t r = static_cast<std::int64_t>(idx) / s.kw;
        const std::int64_t c = static_cast<std::int64_t>(idx) % s.kw;
        float* gkk = gk + static_cast<std::int64_t>(idx) * s.Ci * s.Co;
        std::int64_t wlo, whi;
        valid_out_cols(s.W, c, pw, wlo, whi);
        if (wlo >= whi) return;
        for (std::int64_t h = 0; h < s.H; ++h) {
          const std::int64_t ih = h + r - ph;
          if (ih < 0 || ih >= s.H) continue;
          // gk[r, c] += in[ih, seg]^T . dy[h, seg]
          const float* a = in + (ih * s.W + wlo + c - pw) * s.Ci;
          const float* b = dy + (h * s.W + wlo) * s.Co;
          gemm_tn_panel(a, b, gkk, whi - wlo, s.Ci, s.Co, 0, s.Ci);
        }
      },
      /*min_grain=*/1);
}

void conv2d_same_backward_kernel_reference(const float* in, const float* dy,
                                           float* gk, const Conv2dShape& s) {
  const std::int64_t H = s.H, W = s.W, Ci = s.Ci;
  const std::int64_t kh = s.kh, kw = s.kw, Co = s.Co;
  const std::int64_t ph = kh / 2, pw = kw / 2;
  for (std::int64_t r = 0; r < kh; ++r)
    for (std::int64_t c = 0; c < kw; ++c)
      for (std::int64_t h = 0; h < H; ++h) {
        const std::int64_t ih = h + r - ph;
        if (ih < 0 || ih >= H) continue;
        for (std::int64_t w = 0; w < W; ++w) {
          const std::int64_t iw = w + c - pw;
          if (iw < 0 || iw >= W) continue;
          const float* x = in + (ih * W + iw) * Ci;
          const float* dyo = dy + (h * W + w) * Co;
          float* gkk = gk + (r * kw + c) * Ci * Co;
          for (std::int64_t ci = 0; ci < Ci; ++ci)
            for (std::int64_t co = 0; co < Co; ++co)
              gkk[ci * Co + co] += x[ci] * dyo[co];
        }
      }
}

void conv2d_same_backward_input(const float* k, const float* dy, float* gx,
                                const Conv2dShape& s) {
  const std::int64_t ph = s.kh / 2, pw = s.kw / 2;
  parallel_for_each(
      0, static_cast<std::size_t>(s.H),
      [&](std::size_t ihi) {
        const auto ih = static_cast<std::int64_t>(ihi);
        for (std::int64_t r = 0; r < s.kh; ++r) {
          const std::int64_t h = ih - r + ph;
          if (h < 0 || h >= s.H) continue;
          for (std::int64_t c = 0; c < s.kw; ++c) {
            // Input columns [wlo, whi) whose source w = iw - c + pw is valid.
            const std::int64_t wlo = std::max<std::int64_t>(0, c - pw);
            const std::int64_t whi = std::min(s.W, s.W + c - pw);
            if (wlo >= whi) continue;
            // gx[ih, wlo:whi, :] += dy[h, seg] . K[r, c]^T
            const float* a = dy + (h * s.W + wlo - c + pw) * s.Co;
            const float* b = k + (r * s.kw + c) * s.Ci * s.Co;
            float* o = gx + (ih * s.W + wlo) * s.Ci;
            gemm_nt_rows(a, b, o, whi - wlo, s.Co, s.Ci, 0, whi - wlo,
                         /*accumulate=*/true);
          }
        }
      },
      /*min_grain=*/1);
}

void conv2d_same_backward_input_reference(const float* k, const float* dy,
                                          float* gx, const Conv2dShape& s) {
  const std::int64_t H = s.H, W = s.W, Ci = s.Ci;
  const std::int64_t kh = s.kh, kw = s.kw, Co = s.Co;
  const std::int64_t ph = kh / 2, pw = kw / 2;
  for (std::int64_t ih = 0; ih < H; ++ih)
    for (std::int64_t iw = 0; iw < W; ++iw) {
      float* gxo = gx + (ih * W + iw) * Ci;
      for (std::int64_t r = 0; r < kh; ++r) {
        const std::int64_t h = ih - r + ph;
        if (h < 0 || h >= H) continue;
        for (std::int64_t c = 0; c < kw; ++c) {
          const std::int64_t w = iw - c + pw;
          if (w < 0 || w >= W) continue;
          const float* dyo = dy + (h * W + w) * Co;
          const float* kk = k + (r * kw + c) * Ci * Co;
          for (std::int64_t ci = 0; ci < Ci; ++ci) {
            double acc = 0.0;
            const float* krow = kk + ci * Co;
            for (std::int64_t co = 0; co < Co; ++co)
              acc += static_cast<double>(dyo[co]) * krow[co];
            gxo[ci] += static_cast<float>(acc);
          }
        }
      }
    }
}

}  // namespace tvbf::kernels
