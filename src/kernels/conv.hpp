// Tiled direct conv2d (SAME padding) kernels, forward and backward.
//
// Layout matches the nn layer: input (H, W, Ci), kernel (kh, kw, Ci, Co)
// with odd extents, output (H, W, Co). Each kernel offset (r, c) contributes
// a shifted row-segment matmul — out[h, wlo:whi, :] += in[ih, ...] .
// K[r, c, :, :] — so the forward and both backward passes reduce to the
// register-blocked GEMM panels in kernels/gemm.hpp, with the padding borders
// folded into the segment bounds instead of per-pixel branches. The
// `_reference` entry points preserve the original naive serial loops for
// equivalence testing.
#pragma once

#include <cstdint>

namespace tvbf::kernels {

/// Dimensions of a SAME conv2d: input (H, W, Ci), kernel (kh, kw, Ci, Co).
struct Conv2dShape {
  std::int64_t H = 0;
  std::int64_t W = 0;
  std::int64_t Ci = 0;
  std::int64_t kh = 0;
  std::int64_t kw = 0;
  std::int64_t Co = 0;
};

/// Serial forward for output rows [h_begin, h_end); overwrites those rows.
void conv2d_same_forward_rows(const float* in, const float* k, float* out,
                              const Conv2dShape& s, std::int64_t h_begin,
                              std::int64_t h_end);

/// Forward pass, threaded over output rows. Overwrites `out`.
void conv2d_same_forward(const float* in, const float* k, float* out,
                         const Conv2dShape& s);

/// Original naive serial forward (seed implementation). Overwrites `out`.
void conv2d_same_forward_reference(const float* in, const float* k, float* out,
                                   const Conv2dShape& s);

/// gb(co) += sum_{h,w} dy(h, w, co); threaded over output channels.
void conv2d_same_backward_bias(const float* dy, float* gb,
                               const Conv2dShape& s);

/// gk(r, c, ci, co) += sum in(ih, iw, ci) dy(h, w, co); threaded over the
/// (r, c) kernel offsets (each owns a disjoint gk slice).
void conv2d_same_backward_kernel(const float* in, const float* dy, float* gk,
                                 const Conv2dShape& s);

/// Original serial kernel-gradient loop (seed implementation); accumulates.
void conv2d_same_backward_kernel_reference(const float* in, const float* dy,
                                           float* gk, const Conv2dShape& s);

/// gx(ih, iw, ci) += sum dy(h, w, co) k(r, c, ci, co); threaded over input
/// rows (each owns a disjoint gx row).
void conv2d_same_backward_input(const float* k, const float* dy, float* gx,
                                const Conv2dShape& s);

/// Original serial input-gradient loop (seed implementation); accumulates.
void conv2d_same_backward_input_reference(const float* k, const float* dy,
                                          float* gx, const Conv2dShape& s);

}  // namespace tvbf::kernels
