#include "kernels/gemm.hpp"

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/parallel.hpp"

namespace tvbf::kernels {
namespace {

// Blocking parameters. The register accumulator tile is kMr rows by two
// vectors of kVw floats, held in named locals so the compiler keeps them in
// vector registers across the whole inner-dimension sweep (an acc[MR][NR]
// array defeats scalar replacement once the loop vectorizes — gcc leaves it
// on the stack with a load+store per step). kKc bounds the inner-dimension
// slice so the B panel a tile sweeps stays cache-resident.
//
// TVBF_KERNEL_SIMD compiles this TU with -mavx2 -mfma, making the vector
// type a single YMM register; without it the 16-byte type maps to XMM.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 128;

#if defined(__GNUC__) || defined(__clang__)
#define TVBF_GEMM_VECTOR_EXT 1
#ifdef __AVX2__
typedef float vf __attribute__((vector_size(32)));
#else
typedef float vf __attribute__((vector_size(16)));
#endif
constexpr std::int64_t kVw = sizeof(vf) / sizeof(float);

inline vf loadu(const float* p) {
  vf v;
  std::memcpy(&v, p, sizeof(vf));
  return v;
}

inline void storeu(float* p, vf v) { std::memcpy(p, &v, sizeof(vf)); }

inline vf splat(float x) {
#ifdef __AVX2__
  // One vbroadcastss; the portable element loop lowers to a 128-bit
  // broadcast plus vinsertf128 and costs ~2x in the micro-kernel.
  return reinterpret_cast<vf>(_mm256_set1_ps(x));
#else
  vf v;
  for (std::int64_t i = 0; i < kVw; ++i) v[i] = x;
  return v;
#endif
}

inline float hsum(vf v) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < kVw; ++i) s += v[i];
  return s;
}
#else
constexpr std::int64_t kVw = 8;  // scalar fallback tile width
#endif

constexpr std::int64_t kNr = 2 * kVw;

#ifdef TVBF_GEMM_VECTOR_EXT

/// Full register tile: C[0:kMr, 0:2*kVw] += A_panel . B_panel over kc inner
/// steps. A is addressed through runtime strides (a_rs between C rows, a_cs
/// between inner steps) so the same kernel serves both A.B (a_rs = k,
/// a_cs = 1) and A^T.B (a_rs = 1, a_cs = k) panel sweeps.
void micro_tile2(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                 const float* b, std::int64_t ldb, float* c, std::int64_t ldc,
                 std::int64_t kc) {
  vf c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    const vf b0 = loadu(brow);
    const vf b1 = loadu(brow + kVw);
    const float* ap = a + p * a_cs;
    const vf a0 = splat(ap[0]);
    const vf a1 = splat(ap[a_rs]);
    const vf a2 = splat(ap[2 * a_rs]);
    const vf a3 = splat(ap[3 * a_rs]);
    c00 += b0 * a0;
    c01 += b1 * a0;
    c10 += b0 * a1;
    c11 += b1 * a1;
    c20 += b0 * a2;
    c21 += b1 * a2;
    c30 += b0 * a3;
    c31 += b1 * a3;
  }
  storeu(c, loadu(c) + c00);
  storeu(c + kVw, loadu(c + kVw) + c01);
  float* c1 = c + ldc;
  storeu(c1, loadu(c1) + c10);
  storeu(c1 + kVw, loadu(c1 + kVw) + c11);
  float* c2 = c + 2 * ldc;
  storeu(c2, loadu(c2) + c20);
  storeu(c2 + kVw, loadu(c2 + kVw) + c21);
  float* c3 = c + 3 * ldc;
  storeu(c3, loadu(c3) + c30);
  storeu(c3 + kVw, loadu(c3 + kVw) + c31);
}

/// Half-width tile: C[0:kMr, 0:kVw] += A_panel . B_panel.
void micro_tile1(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                 const float* b, std::int64_t ldb, float* c, std::int64_t ldc,
                 std::int64_t kc) {
  vf c0{}, c1{}, c2{}, c3{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const vf b0 = loadu(b + p * ldb);
    const float* ap = a + p * a_cs;
    c0 += b0 * splat(ap[0]);
    c1 += b0 * splat(ap[a_rs]);
    c2 += b0 * splat(ap[2 * a_rs]);
    c3 += b0 * splat(ap[3 * a_rs]);
  }
  storeu(c, loadu(c) + c0);
  storeu(c + ldc, loadu(c + ldc) + c1);
  storeu(c + 2 * ldc, loadu(c + 2 * ldc) + c2);
  storeu(c + 3 * ldc, loadu(c + 3 * ldc) + c3);
}

#endif  // TVBF_GEMM_VECTOR_EXT

/// Ragged edge tile with runtime extents (mr <= kMr, nr <= kNr).
void micro_edge(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                const float* b, std::int64_t ldb, float* c, std::int64_t ldc,
                std::int64_t kc, std::int64_t mr, std::int64_t nr) {
  float acc[kMr][kNr] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* brow = b + p * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const float av = a[i * a_rs + p * a_cs];
      for (std::int64_t j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i)
    for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
}

/// Width of the next packed B panel given the remaining columns: full
/// double-vector panels, then a single-vector panel, then the ragged rest.
inline std::int64_t panel_width(std::int64_t remaining) {
  if (remaining >= 2 * kVw) return 2 * kVw;
  if (remaining >= kVw) return kVw;
  return remaining;
}

/// Shared panel sweep: C[row_begin:row_end) (+)= Aview . B where Aview is
/// (m, depth) addressed through (a_rs, a_cs) and B is (depth, n).
///
/// B is packed into contiguous (kc x panel) strips once per (Kc, Nc) block
/// and reused across every row tile. Besides the cache-footprint argument,
/// packing sidesteps the power-of-two-stride conflict misses that cripple
/// unpacked sweeps at n = 128/256 (rows 512 B apart map to a handful of L1
/// sets) — this, not the FLOP count, is where the naive kernel loses.
void gemm_panel(const float* a, std::int64_t a_rs, std::int64_t a_cs,
                const float* b, float* c, std::int64_t depth, std::int64_t n,
                std::int64_t row_begin, std::int64_t row_end,
                bool accumulate) {
  if (!accumulate)
    std::fill(c + row_begin * n, c + row_end * n, 0.0f);
  // Per-thread pack buffer: gemm_panel never nests on one thread, and each
  // pool worker gets its own copy.
  thread_local std::vector<float> packed;
  packed.resize(static_cast<std::size_t>(
      std::min(kKc, depth) * std::min(kNc, ((n + kNr - 1) / kNr) * kNr)));
  for (std::int64_t p0 = 0; p0 < depth; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, depth - p0);
    const float* ap = a + p0 * a_cs;
    for (std::int64_t jc = 0; jc < n; jc += kNc) {
      const std::int64_t nc = std::min(kNc, n - jc);
      float* dst = packed.data();
      for (std::int64_t j = 0; j < nc;) {
        const std::int64_t pw = panel_width(nc - j);
        const float* src = b + p0 * n + jc + j;
        for (std::int64_t p = 0; p < kc; ++p)
          std::memcpy(dst + p * pw, src + p * n,
                      static_cast<std::size_t>(pw) * sizeof(float));
        dst += kc * pw;
        j += pw;
      }
      for (std::int64_t i0 = row_begin; i0 < row_end; i0 += kMr) {
        const std::int64_t mr = std::min(kMr, row_end - i0);
        const float* ai = ap + i0 * a_rs;
        const float* bp = packed.data();
        for (std::int64_t j = 0; j < nc;) {
          const std::int64_t pw = panel_width(nc - j);
          float* ci = c + i0 * n + jc + j;
#ifdef TVBF_GEMM_VECTOR_EXT
          if (mr == kMr && pw == 2 * kVw)
            micro_tile2(ai, a_rs, a_cs, bp, pw, ci, n, kc);
          else if (mr == kMr && pw == kVw)
            micro_tile1(ai, a_rs, a_cs, bp, pw, ci, n, kc);
          else
            micro_edge(ai, a_rs, a_cs, bp, pw, ci, n, kc, mr, pw);
#else
          micro_edge(ai, a_rs, a_cs, bp, pw, ci, n, kc, mr, pw);
#endif
          bp += kc * pw;
          j += pw;
        }
      }
    }
  }
}

}  // namespace

void gemm_rows(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int64_t row_begin,
               std::int64_t row_end, bool accumulate) {
  (void)m;
  gemm_panel(a, /*a_rs=*/k, /*a_cs=*/1, b, c, k, n, row_begin, row_end,
             accumulate);
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  parallel_for(
      0, static_cast<std::size_t>(m),
      [&](std::size_t rb, std::size_t re) {
        gemm_rows(a, b, c, m, k, n, static_cast<std::int64_t>(rb),
                  static_cast<std::int64_t>(re));
      },
      /*min_grain=*/8);
}

void gemm_reference_rows(const float* a, const float* b, float* c,
                         [[maybe_unused]] std::int64_t m, std::int64_t k,
                         std::int64_t n, std::int64_t row_begin,
                         std::int64_t row_end) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    float* crow = c + i * n;
    std::fill(crow, crow + n, 0.0f);
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt_rows(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, std::int64_t row_begin,
                  std::int64_t row_end, bool accumulate) {
  (void)m;
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t j = 0;
    // Four simultaneous dot products share each load of arow.
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      std::int64_t p = 0;
#ifdef TVBF_GEMM_VECTOR_EXT
      vf v0{}, v1{}, v2{}, v3{};
      for (; p + kVw <= k; p += kVw) {
        const vf va = loadu(arow + p);
        v0 += va * loadu(b0 + p);
        v1 += va * loadu(b1 + p);
        v2 += va * loadu(b2 + p);
        v3 += va * loadu(b3 + p);
      }
      s0 = hsum(v0);
      s1 = hsum(v1);
      s2 = hsum(v2);
      s3 = hsum(v3);
#endif
      for (; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      if (accumulate) {
        crow[j] += s0;
        crow[j + 1] += s1;
        crow[j + 2] += s2;
        crow[j + 3] += s3;
      } else {
        crow[j] = s0;
        crow[j + 1] = s1;
        crow[j + 2] = s2;
        crow[j + 3] = s3;
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + s : s;
    }
  }
}

void gemm_tn_panel(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n, std::int64_t p_begin,
                   std::int64_t p_end) {
  gemm_panel(a, /*a_rs=*/1, /*a_cs=*/k, b, c, /*depth=*/m, n, p_begin, p_end,
             /*accumulate=*/true);
}

void gemm_tn_accumulate(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n) {
  parallel_for(
      0, static_cast<std::size_t>(k),
      [&](std::size_t pb, std::size_t pe) {
        gemm_tn_panel(a, b, c, m, k, n, static_cast<std::int64_t>(pb),
                      static_cast<std::int64_t>(pe));
      },
      /*min_grain=*/8);
}

}  // namespace tvbf::kernels
