// Register-blocked float32 GEMM micro-kernels.
//
// This is the hot-path layer the tensor/nn/quant matmuls are built on. All
// matrices are row-major and fully packed (leading dimension == column
// count). The blocked kernels tile C into MR x NR register accumulator
// panels swept over Kc-sized slices of the inner dimension, with no
// data-dependent branches in the inner loops, so the compiler can keep the
// accumulators in vector registers. The `_reference` entry points preserve
// the original naive loops for equivalence testing and benchmarking.
//
// Serial `_rows`/`_panel` variants compute a sub-range of output rows so
// callers can parallelize across the process-wide pool; the plain entry
// points do that parallelization themselves.
#pragma once

#include <cstdint>

namespace tvbf::kernels {

// ---- C = A.B ---------------------------------------------------------------

/// Serial blocked kernel for output rows [row_begin, row_end):
/// C = A.B (accumulate == false zeroes the rows first) or C += A.B.
/// a is (m, k), b is (k, n), c is (m, n).
void gemm_rows(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n, std::int64_t row_begin,
               std::int64_t row_end, bool accumulate = false);

/// C = A.B, threaded over row blocks via the common pool.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// Original naive ikj kernel (seed implementation), kept as the reference
/// for equivalence tests and bench baselines. C rows are overwritten.
void gemm_reference_rows(const float* a, const float* b, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         std::int64_t row_begin, std::int64_t row_end);

// ---- C = A.B^T -------------------------------------------------------------

/// Serial kernel for output rows [row_begin, row_end) of C (+)= A.B^T where
/// a is (m, k) and b is (n, k): c(i, j) = dot(a row i, b row j). Lets
/// attention score kernels consume K directly without materializing K^T.
void gemm_nt_rows(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, std::int64_t row_begin,
                  std::int64_t row_end, bool accumulate = false);

// ---- C += A^T.B ------------------------------------------------------------

/// Serial kernel for output rows [p_begin, p_end) of C += A^T.B where
/// a is (m, k) and b is (m, n), so c is (k, n). This is the dB shape of the
/// matmul backward pass: dB += A^T.dC.
void gemm_tn_panel(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n, std::int64_t p_begin,
                   std::int64_t p_end);

/// C += A^T.B, threaded over the k rows of C via the common pool.
void gemm_tn_accumulate(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace tvbf::kernels
