#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tvbf::nn {

PolynomialDecay::PolynomialDecay(double initial_lr, double final_lr,
                                 std::int64_t decay_steps, double power,
                                 bool cyclic)
    : initial_lr_(initial_lr),
      final_lr_(final_lr),
      decay_steps_(decay_steps),
      power_(power),
      cyclic_(cyclic) {
  TVBF_REQUIRE(initial_lr > 0.0 && final_lr > 0.0,
               "learning rates must be positive");
  TVBF_REQUIRE(initial_lr >= final_lr,
               "polynomial decay expects initial_lr >= final_lr");
  TVBF_REQUIRE(decay_steps > 0, "decay_steps must be positive");
  TVBF_REQUIRE(power > 0.0, "decay power must be positive");
}

double PolynomialDecay::at(std::int64_t step) const {
  TVBF_REQUIRE(step >= 0, "schedule step must be non-negative");
  double horizon = static_cast<double>(decay_steps_);
  if (cyclic_) {
    // TF `cycle=True`: horizon = decay_steps * ceil(step / decay_steps).
    const double mult = std::ceil(static_cast<double>(step) / horizon);
    horizon *= std::max(1.0, mult);
  }
  const double s = std::min(static_cast<double>(step), horizon);
  const double frac = 1.0 - s / horizon;
  return (initial_lr_ - final_lr_) * std::pow(frac, power_) + final_lr_;
}

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  TVBF_REQUIRE(!params_.empty(), "optimizer needs at least one parameter");
  for (const auto& p : params_)
    TVBF_REQUIRE(p.requires_grad(), "optimizer parameter lacks requires_grad");
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Sgd::step(double lr) {
  TVBF_REQUIRE(lr > 0.0, "learning rate must be positive");
  for (auto& p : params_) {
    const Tensor& g = p.grad();
    float* w = p.mutable_value().raw();
    const float* gp = g.raw();
    for (std::int64_t i = 0; i < g.size(); ++i)
      w[i] -= static_cast<float>(lr) * gp[i];
  }
  ++t_;
}

Adam::Adam(std::vector<Variable> params, double beta1, double beta2,
           double epsilon)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  TVBF_REQUIRE(beta1 > 0.0 && beta1 < 1.0, "beta1 must be in (0, 1)");
  TVBF_REQUIRE(beta2 > 0.0 && beta2 < 1.0, "beta2 must be in (0, 1)");
  TVBF_REQUIRE(epsilon > 0.0, "epsilon must be positive");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::step(double lr) {
  TVBF_REQUIRE(lr > 0.0, "learning rate must be positive");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    const Tensor& g = params_[pi].grad();
    float* w = params_[pi].mutable_value().raw();
    float* m = m_[pi].raw();
    float* v = v_[pi].raw();
    const float* gp = g.raw();
    for (std::int64_t i = 0; i < g.size(); ++i) {
      const double gi = gp[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * gi);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * gi * gi);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + epsilon_));
    }
  }
}

}  // namespace tvbf::nn
