#include <cmath>
#include <vector>

#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {

using detail::Node;

Variable softmax_last(const Variable& a) {
  const Tensor& x = a.value();
  TVBF_REQUIRE(x.rank() >= 1, "softmax_last needs rank >= 1");
  const std::int64_t w = x.shape().back();
  TVBF_REQUIRE(w >= 1, "softmax over an empty axis");
  Tensor out(x.shape());
  const std::int64_t rows = x.size() / w;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xi = x.raw() + r * w;
    float* yi = out.raw() + r * w;
    float m = xi[0];
    for (std::int64_t j = 1; j < w; ++j) m = std::max(m, xi[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < w; ++j) {
      yi[j] = std::exp(xi[j] - m);
      denom += yi[j];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < w; ++j) yi[j] *= inv;
  }
  return Variable::make_op(
      std::move(out), {a},
      [w](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor& gx = n.parents[0]->ensure_grad();
        const float* y = n.value.raw();
        const float* dy = n.grad.raw();
        const std::int64_t rows = n.value.size() / w;
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* yr = y + r * w;
          const float* dyr = dy + r * w;
          float* gr = gx.raw() + r * w;
          double dot = 0.0;
          for (std::int64_t j = 0; j < w; ++j)
            dot += static_cast<double>(dyr[j]) * yr[j];
          for (std::int64_t j = 0; j < w; ++j)
            gr[j] += yr[j] * (dyr[j] - static_cast<float>(dot));
        }
      },
      "softmax_last");
}

Variable layer_norm(const Variable& a, const Variable& gamma,
                    const Variable& beta, float epsilon) {
  const Tensor& x = a.value();
  TVBF_REQUIRE(x.rank() >= 1, "layer_norm needs rank >= 1");
  const std::int64_t w = x.shape().back();
  TVBF_REQUIRE(gamma.value().rank() == 1 && gamma.value().size() == w,
               "layer_norm gamma must be rank 1 of trailing-dim length");
  TVBF_REQUIRE(beta.value().rank() == 1 && beta.value().size() == w,
               "layer_norm beta must be rank 1 of trailing-dim length");
  TVBF_REQUIRE(epsilon > 0.0f, "layer_norm epsilon must be positive");
  const std::int64_t rows = x.size() / w;
  Tensor out(x.shape());
  // Cache the normalized activations and inverse std-dev for backward.
  auto xhat = std::make_shared<Tensor>(x.shape());
  auto inv_std = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(rows));
  const float* g = gamma.value().raw();
  const float* b = beta.value().raw();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * w;
    float* yr = out.raw() + r * w;
    float* hr = xhat->raw() + r * w;
    double mu = 0.0;
    for (std::int64_t j = 0; j < w; ++j) mu += xr[j];
    mu /= static_cast<double>(w);
    double var = 0.0;
    for (std::int64_t j = 0; j < w; ++j) {
      const double d = xr[j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(w);
    const auto istd = static_cast<float>(1.0 / std::sqrt(var + epsilon));
    (*inv_std)[static_cast<std::size_t>(r)] = istd;
    for (std::int64_t j = 0; j < w; ++j) {
      hr[j] = (xr[j] - static_cast<float>(mu)) * istd;
      yr[j] = g[j] * hr[j] + b[j];
    }
  }
  return Variable::make_op(
      std::move(out), {a, gamma, beta},
      [w, xhat, inv_std](Node& n) {
        const std::int64_t rows = n.value.size() / w;
        const float* dy = n.grad.raw();
        const float* h = xhat->raw();
        const float* g = n.parents[1]->value.raw();
        if (n.parents[2]->requires_grad) {
          float* gb = n.parents[2]->ensure_grad().raw();
          for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t j = 0; j < w; ++j) gb[j] += dy[r * w + j];
        }
        if (n.parents[1]->requires_grad) {
          float* gg = n.parents[1]->ensure_grad().raw();
          for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t j = 0; j < w; ++j)
              gg[j] += dy[r * w + j] * h[r * w + j];
        }
        if (n.parents[0]->requires_grad) {
          float* gx = n.parents[0]->ensure_grad().raw();
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* dyr = dy + r * w;
            const float* hr = h + r * w;
            float* gxr = gx + r * w;
            const float istd = (*inv_std)[static_cast<std::size_t>(r)];
            // dxhat = dy * gamma; dx = istd*(dxhat - mean(dxhat)
            //                                - xhat * mean(dxhat*xhat)).
            double m1 = 0.0, m2 = 0.0;
            for (std::int64_t j = 0; j < w; ++j) {
              const double dxh = static_cast<double>(dyr[j]) * g[j];
              m1 += dxh;
              m2 += dxh * hr[j];
            }
            m1 /= static_cast<double>(w);
            m2 /= static_cast<double>(w);
            for (std::int64_t j = 0; j < w; ++j) {
              const double dxh = static_cast<double>(dyr[j]) * g[j];
              gxr[j] += static_cast<float>(istd * (dxh - m1 - hr[j] * m2));
            }
          }
        }
      },
      "layer_norm");
}

}  // namespace tvbf::nn
