// Weight (de)serialization.
//
// A simple versioned little-endian binary container: magic, tensor count,
// then per tensor rank, dims and float data. Used to checkpoint trained
// beamformers so the quantization/accelerator benches can reuse them.
#pragma once

#include <string>
#include <vector>

#include "nn/variable.hpp"

namespace tvbf::nn {

/// Writes the parameter values to `path`. Throws on I/O failure.
void save_parameters(const std::vector<Variable>& params,
                     const std::string& path);

/// Loads values into the parameters (shapes must match exactly).
/// Throws InvalidArgument on count/shape mismatch or corrupt files.
void load_parameters(std::vector<Variable>& params, const std::string& path);

}  // namespace tvbf::nn
