// Tape-based reverse-mode automatic differentiation.
//
// A Variable is a shared handle to a graph node holding a value tensor, an
// optional gradient, and a backward closure that scatters the node's
// gradient into its parents. backward() runs the closures in reverse
// topological order. The graph is rebuilt every forward pass (define-by-run,
// like the TensorFlow eager / PyTorch model the paper trained with).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace tvbf::nn {

class Variable;

namespace detail {

struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  bool grad_ready = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Accumulates this node's grad into the parents' grads.
  std::function<void(Node&)> backward_fn;
  const char* op = "leaf";

  /// Gradient tensor, allocating zeros on first touch.
  Tensor& ensure_grad();
};

using NodePtr = std::shared_ptr<Node>;

}  // namespace detail

/// Differentiable tensor handle (cheap to copy; shares the node).
class Variable {
 public:
  Variable() = default;

  /// Leaf from a value; set requires_grad for trainable parameters.
  explicit Variable(Tensor value, bool requires_grad = false);

  const Tensor& value() const;
  Tensor& mutable_value();

  /// Gradient of the last backward() (zeros if untouched).
  /// Only meaningful on requires_grad leaves after backward().
  const Tensor& grad() const;

  bool requires_grad() const;
  const Shape& shape() const { return value().shape(); }
  bool defined() const { return node_ != nullptr; }

  /// Zeroes the stored gradient (optimizers call this between steps).
  void zero_grad();

  /// Runs reverse-mode differentiation from this (scalar) variable.
  /// Throws InvalidArgument if the value is not a single element.
  void backward();

  /// Internal: builds an op node. Exposed for the op library.
  static Variable make_op(Tensor value, std::vector<Variable> parents,
                          std::function<void(detail::Node&)> backward_fn,
                          const char* op_name);

  detail::NodePtr node() const { return node_; }

 private:
  detail::NodePtr node_;
};

}  // namespace tvbf::nn
