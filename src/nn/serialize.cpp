#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace tvbf::nn {
namespace {

constexpr std::uint32_t kMagic = 0x54564246;  // "TVBF"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TVBF_REQUIRE(static_cast<bool>(is), "unexpected end of weight file");
  return v;
}

}  // namespace

void save_parameters(const std::vector<Variable>& params,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  TVBF_REQUIRE(os.is_open(), "cannot open '" + path + "' for writing");
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    const Tensor& t = p.value();
    write_pod(os, static_cast<std::uint32_t>(t.rank()));
    for (auto d : t.shape()) write_pod(os, static_cast<std::int64_t>(d));
    os.write(reinterpret_cast<const char*>(t.raw()),
             static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  TVBF_REQUIRE(static_cast<bool>(os), "write to '" + path + "' failed");
}

void load_parameters(std::vector<Variable>& params, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TVBF_REQUIRE(is.is_open(), "cannot open '" + path + "' for reading");
  TVBF_REQUIRE(read_pod<std::uint32_t>(is) == kMagic,
               "'" + path + "' is not a Tiny-VBF weight file");
  TVBF_REQUIRE(read_pod<std::uint32_t>(is) == kVersion,
               "unsupported weight file version in '" + path + "'");
  const auto count = read_pod<std::uint64_t>(is);
  TVBF_REQUIRE(count == params.size(),
               "weight file holds " + std::to_string(count) +
                   " tensors, model expects " + std::to_string(params.size()));
  for (auto& p : params) {
    const auto rank = read_pod<std::uint32_t>(is);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(is);
    TVBF_REQUIRE(same_shape(shape, p.value().shape()),
                 "weight tensor shape " + to_string(shape) +
                     " does not match parameter " + to_string(p.value().shape()));
    Tensor& t = p.mutable_value();
    is.read(reinterpret_cast<char*>(t.raw()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    TVBF_REQUIRE(static_cast<bool>(is), "unexpected end of weight file");
  }
}

}  // namespace tvbf::nn
