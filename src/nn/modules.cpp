#include "nn/modules.hpp"

#include <cmath>

namespace tvbf::nn {

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.value().size();
  return n;
}

namespace {

/// Glorot (Xavier) uniform initialization.
Tensor glorot_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng) {
  Tensor t(std::move(shape));
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& v : t.data())
    v = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

}  // namespace

Dense::Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  TVBF_REQUIRE(in_features > 0 && out_features > 0,
               "Dense needs positive feature counts");
  w_ = parameter(glorot_uniform({in_, out_}, in_, out_, rng));
  b_ = parameter(Tensor({out_}));
}

Variable Dense::forward(const Variable& x) const {
  TVBF_REQUIRE(x.shape().back() == in_,
               "Dense expects trailing dim " + std::to_string(in_) + ", got " +
                   to_string(x.shape()));
  const Variable y = x.value().rank() == 3 ? batched_matmul(x, w_)
                                           : matmul(x, w_);
  return add_bias(y, b_);
}

std::vector<Variable> Dense::parameters() const { return {w_, b_}; }

LayerNorm::LayerNorm(std::int64_t features) {
  TVBF_REQUIRE(features > 0, "LayerNorm needs a positive feature count");
  gamma_ = parameter(Tensor::ones({features}));
  beta_ = parameter(Tensor({features}));
}

Variable LayerNorm::forward(const Variable& x) const {
  return layer_norm(x, gamma_, beta_);
}

std::vector<Variable> LayerNorm::parameters() const { return {gamma_, beta_}; }

MultiHeadAttention::MultiHeadAttention(std::int64_t d_model,
                                       std::int64_t num_heads, Rng& rng)
    : d_model_(d_model), heads_(num_heads) {
  TVBF_REQUIRE(d_model > 0 && num_heads > 0, "MHA needs positive dimensions");
  TVBF_REQUIRE(d_model % num_heads == 0,
               "d_model " + std::to_string(d_model) +
                   " must be divisible by heads " + std::to_string(num_heads));
  wq_ = std::make_unique<Dense>(d_model, d_model, rng);
  wk_ = std::make_unique<Dense>(d_model, d_model, rng);
  wv_ = std::make_unique<Dense>(d_model, d_model, rng);
  wo_ = std::make_unique<Dense>(d_model, d_model, rng);
}

Variable MultiHeadAttention::forward(const Variable& x) const {
  TVBF_REQUIRE(x.value().rank() == 3,
               "MHA expects (B, np, d_model), got " + to_string(x.shape()));
  const std::int64_t dk = head_dim();
  const Variable q = wq_->forward(x);
  const Variable k = wk_->forward(x);
  const Variable v = wv_->forward(x);
  const float inv_sqrt_dk =
      1.0f / std::sqrt(static_cast<float>(dk));
  Variable heads_out;  // built by concatenation across heads
  for (std::int64_t h = 0; h < heads_; ++h) {
    const Variable qh = slice_last(q, h * dk, (h + 1) * dk);
    const Variable kh = slice_last(k, h * dk, (h + 1) * dk);
    const Variable vh = slice_last(v, h * dk, (h + 1) * dk);
    // scores (B, np, np) = qh kh^T / sqrt(dk)
    const Variable scores =
        scale(batched_matmul(qh, transpose_last2(kh)), inv_sqrt_dk);
    const Variable attn = softmax_last(scores);
    const Variable oh = batched_matmul(attn, vh);  // (B, np, dk)
    heads_out = h == 0 ? oh : concat_last(heads_out, oh);
  }
  return wo_->forward(heads_out);
}

std::vector<Variable> MultiHeadAttention::parameters() const {
  std::vector<Variable> out;
  for (const auto* d : {wq_.get(), wk_.get(), wv_.get(), wo_.get()}) {
    const auto p = d->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

TransformerBlock::TransformerBlock(std::int64_t d_model, std::int64_t num_heads,
                                   std::int64_t mlp_hidden, Rng& rng) {
  TVBF_REQUIRE(mlp_hidden > 0, "transformer MLP hidden size must be positive");
  ln1_ = std::make_unique<LayerNorm>(d_model);
  ln2_ = std::make_unique<LayerNorm>(d_model);
  mha_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  fc1_ = std::make_unique<Dense>(d_model, mlp_hidden, rng);
  fc2_ = std::make_unique<Dense>(mlp_hidden, d_model, rng);
}

Variable TransformerBlock::forward(const Variable& x) const {
  // Skip connection 1: attention sublayer.
  const Variable a = add(x, mha_->forward(ln1_->forward(x)));
  // Skip connection 2: position-wise MLP sublayer.
  const Variable m =
      fc2_->forward(relu(fc1_->forward(ln2_->forward(a))));
  return add(a, m);
}

std::vector<Variable> TransformerBlock::parameters() const {
  std::vector<Variable> out;
  for (const Module* m :
       {static_cast<const Module*>(ln1_.get()),
        static_cast<const Module*>(mha_.get()),
        static_cast<const Module*>(ln2_.get()),
        static_cast<const Module*>(fc1_.get()),
        static_cast<const Module*>(fc2_.get())}) {
    const auto p = m->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

Conv2D::Conv2D(std::int64_t kernel_h, std::int64_t kernel_w, std::int64_t in_ch,
               std::int64_t out_ch, Rng& rng, bool relu_activation)
    : relu_(relu_activation) {
  TVBF_REQUIRE(kernel_h > 0 && kernel_w > 0 && in_ch > 0 && out_ch > 0,
               "Conv2D needs positive dimensions");
  TVBF_REQUIRE(kernel_h % 2 == 1 && kernel_w % 2 == 1,
               "Conv2D uses SAME padding and requires odd kernels");
  const std::int64_t fan_in = kernel_h * kernel_w * in_ch;
  const std::int64_t fan_out = kernel_h * kernel_w * out_ch;
  k_ = parameter(
      glorot_uniform({kernel_h, kernel_w, in_ch, out_ch}, fan_in, fan_out, rng));
  b_ = parameter(Tensor({out_ch}));
}

Variable Conv2D::forward(const Variable& x) const {
  const Variable y = conv2d_same(x, k_, b_);
  return relu_ ? relu(y) : y;
}

std::vector<Variable> Conv2D::parameters() const { return {k_, b_}; }

}  // namespace tvbf::nn
