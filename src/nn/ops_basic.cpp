#include <cmath>

#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {

using detail::Node;

Variable constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable parameter(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/true);
}

Variable add(const Variable& a, const Variable& b) {
  Tensor out = tvbf::add(a.value(), b.value());
  return Variable::make_op(
      std::move(out), {a, b},
      [](Node& n) {
        for (auto& p : n.parents)
          if (p->requires_grad) add_inplace(p->ensure_grad(), n.grad);
      },
      "add");
}

Variable sub(const Variable& a, const Variable& b) {
  Tensor out = tvbf::sub(a.value(), b.value());
  return Variable::make_op(
      std::move(out), {a, b},
      [](Node& n) {
        if (n.parents[0]->requires_grad)
          add_inplace(n.parents[0]->ensure_grad(), n.grad);
        if (n.parents[1]->requires_grad)
          axpy_inplace(n.parents[1]->ensure_grad(), -1.0f, n.grad);
      },
      "sub");
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor out = tvbf::mul(a.value(), b.value());
  return Variable::make_op(
      std::move(out), {a, b},
      [](Node& n) {
        if (n.parents[0]->requires_grad)
          add_inplace(n.parents[0]->ensure_grad(),
                      tvbf::mul(n.grad, n.parents[1]->value));
        if (n.parents[1]->requires_grad)
          add_inplace(n.parents[1]->ensure_grad(),
                      tvbf::mul(n.grad, n.parents[0]->value));
      },
      "mul");
}

Variable scale(const Variable& a, float s) {
  Tensor out = tvbf::scale(a.value(), s);
  return Variable::make_op(
      std::move(out), {a},
      [s](Node& n) {
        if (n.parents[0]->requires_grad)
          axpy_inplace(n.parents[0]->ensure_grad(), s, n.grad);
      },
      "scale");
}

Variable relu(const Variable& a) {
  Tensor out = tvbf::relu(a.value());
  return Variable::make_op(
      std::move(out), {a},
      [](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor& g = n.parents[0]->ensure_grad();
        const float* x = n.parents[0]->value.raw();
        const float* dy = n.grad.raw();
        float* gx = g.raw();
        for (std::int64_t i = 0; i < g.size(); ++i)
          if (x[i] > 0.0f) gx[i] += dy[i];
      },
      "relu");
}

Variable tanh_v(const Variable& a) {
  Tensor out = tvbf::tanh_t(a.value());
  return Variable::make_op(
      std::move(out), {a},
      [](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor& g = n.parents[0]->ensure_grad();
        const float* y = n.value.raw();
        const float* dy = n.grad.raw();
        float* gx = g.raw();
        for (std::int64_t i = 0; i < g.size(); ++i)
          gx[i] += dy[i] * (1.0f - y[i] * y[i]);
      },
      "tanh");
}

Variable add_bias(const Variable& a, const Variable& bias) {
  Tensor out = tvbf::add_bias(a.value(), bias.value());
  return Variable::make_op(
      std::move(out), {a, bias},
      [](Node& n) {
        if (n.parents[0]->requires_grad)
          add_inplace(n.parents[0]->ensure_grad(), n.grad);
        if (n.parents[1]->requires_grad) {
          Tensor& gb = n.parents[1]->ensure_grad();
          const std::int64_t nf = gb.size();
          const std::int64_t rows = n.grad.size() / nf;
          const float* dy = n.grad.raw();
          float* g = gb.raw();
          for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t j = 0; j < nf; ++j) g[j] += dy[r * nf + j];
        }
      },
      "add_bias");
}

Variable sum_last(const Variable& a) {
  const Tensor& x = a.value();
  TVBF_REQUIRE(x.rank() >= 2, "sum_last needs rank >= 2");
  const std::int64_t w = x.shape().back();
  Shape s(x.shape().begin(), x.shape().end() - 1);
  Tensor out(s);
  const std::int64_t rows = out.size();
  for (std::int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const float* xr = x.raw() + r * w;
    for (std::int64_t j = 0; j < w; ++j) acc += xr[j];
    out.raw()[r] = static_cast<float>(acc);
  }
  return Variable::make_op(
      std::move(out), {a},
      [w](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor& gx = n.parents[0]->ensure_grad();
        const float* dy = n.grad.raw();
        const std::int64_t rows = n.grad.size();
        for (std::int64_t r = 0; r < rows; ++r) {
          float* gr = gx.raw() + r * w;
          const float g = dy[r];
          for (std::int64_t j = 0; j < w; ++j) gr[j] += g;
        }
      },
      "sum_last");
}

Variable mean_all(const Variable& a) {
  const float m = tvbf::mean(a.value());
  const auto count = static_cast<float>(a.value().size());
  return Variable::make_op(
      Tensor({}, std::vector<float>{m}), {a},
      [count](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        const float g = n.grad.raw()[0] / count;
        Tensor& gx = n.parents[0]->ensure_grad();
        for (std::int64_t i = 0; i < gx.size(); ++i) gx.raw()[i] += g;
      },
      "mean_all");
}

Variable sum_all(const Variable& a) {
  const float s = tvbf::sum(a.value());
  return Variable::make_op(
      Tensor({}, std::vector<float>{s}), {a},
      [](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        const float g = n.grad.raw()[0];
        Tensor& gx = n.parents[0]->ensure_grad();
        for (std::int64_t i = 0; i < gx.size(); ++i) gx.raw()[i] += g;
      },
      "sum_all");
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  TVBF_REQUIRE(same_shape(pred.shape(), target.shape()),
               "mse_loss: prediction shape " + to_string(pred.shape()) +
                   " does not match target " + to_string(target.shape()));
  const std::int64_t count = target.size();
  TVBF_REQUIRE(count > 0, "mse_loss of empty tensors");
  double acc = 0.0;
  const float* p = pred.value().raw();
  const float* t = target.raw();
  for (std::int64_t i = 0; i < count; ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    acc += d * d;
  }
  const float loss = static_cast<float>(acc / static_cast<double>(count));
  Tensor target_copy = target;  // keep alive in the closure
  return Variable::make_op(
      Tensor({}, std::vector<float>{loss}), {pred},
      [target = std::move(target_copy), count](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        const float g = 2.0f * n.grad.raw()[0] / static_cast<float>(count);
        Tensor& gx = n.parents[0]->ensure_grad();
        const float* p = n.parents[0]->value.raw();
        const float* t = target.raw();
        for (std::int64_t i = 0; i < count; ++i)
          gx.raw()[i] += g * (p[i] - t[i]);
      },
      "mse_loss");
}

}  // namespace tvbf::nn
