#include "nn/variable.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace tvbf::nn {

namespace detail {

Tensor& Node::ensure_grad() {
  if (!same_shape(grad.shape(), value.shape())) grad = Tensor(value.shape());
  return grad;
}

}  // namespace detail

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<detail::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  TVBF_REQUIRE(node_ != nullptr, "use of an undefined Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  TVBF_REQUIRE(node_ != nullptr, "use of an undefined Variable");
  return node_->value;
}

const Tensor& Variable::grad() const {
  TVBF_REQUIRE(node_ != nullptr, "use of an undefined Variable");
  return node_->ensure_grad();
}

bool Variable::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

void Variable::zero_grad() {
  TVBF_REQUIRE(node_ != nullptr, "use of an undefined Variable");
  if (same_shape(node_->grad.shape(), node_->value.shape()))
    node_->grad.fill(0.0f);
}

Variable Variable::make_op(Tensor value, std::vector<Variable> parents,
                           std::function<void(detail::Node&)> backward_fn,
                           const char* op_name) {
  Variable out(std::move(value));
  bool any_grad = false;
  out.node_->parents.reserve(parents.size());
  for (const auto& p : parents) {
    TVBF_REQUIRE(p.defined(), "op input is an undefined Variable");
    any_grad = any_grad || p.node_->requires_grad;
    out.node_->parents.push_back(p.node_);
  }
  out.node_->requires_grad = any_grad;
  if (any_grad) out.node_->backward_fn = std::move(backward_fn);
  out.node_->op = op_name;
  return out;
}

void Variable::backward() {
  TVBF_REQUIRE(node_ != nullptr, "backward() on an undefined Variable");
  TVBF_REQUIRE(node_->value.size() == 1,
               "backward() requires a scalar loss, got shape " +
                   to_string(node_->value.shape()));
  // Topological order via iterative DFS.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, next_child] = stack.back();
    if (next_child < n->parents.size()) {
      detail::Node* child = n->parents[next_child++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  for (auto* n : order) n->ensure_grad().fill(0.0f);
  node_->ensure_grad().fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

}  // namespace tvbf::nn
