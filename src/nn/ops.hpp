// Differentiable op library over Variable.
//
// Every op returns a new Variable whose backward closure accumulates
// gradients into its inputs. Shapes follow the conventions of src/tensor;
// "last dim" ops (softmax, layer_norm, bias) operate on the trailing axis
// of an arbitrary-rank tensor, which is how the per-pixel / per-patch
// feature dimension is laid out throughout the models.
#pragma once

#include "nn/variable.hpp"

namespace tvbf::nn {

// ---- leaf constructors -----------------------------------------------------

/// Non-trainable input.
Variable constant(Tensor value);

/// Trainable parameter.
Variable parameter(Tensor value);

// ---- elementwise -----------------------------------------------------------

Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable scale(const Variable& a, float s);
Variable relu(const Variable& a);
Variable tanh_v(const Variable& a);

/// Adds a rank-1 bias along the trailing axis.
Variable add_bias(const Variable& a, const Variable& bias);

// ---- matmul ----------------------------------------------------------------

/// (m,k) x (k,n) -> (m,n).
Variable matmul(const Variable& a, const Variable& b);

/// (B,m,k) x (k,n) -> (B,m,n)  [rank-2 rhs broadcast over the batch], or
/// (B,m,k) x (B,k,n) -> (B,m,n).
Variable batched_matmul(const Variable& a, const Variable& b);

// ---- shape -----------------------------------------------------------------

Variable reshape(const Variable& a, Shape new_shape);

/// Swaps the last two axes of a rank-3 tensor.
Variable transpose_last2(const Variable& a);

/// Slices [begin, end) of the trailing axis.
Variable slice_last(const Variable& a, std::int64_t begin, std::int64_t end);

/// Concatenates two tensors along the trailing axis.
Variable concat_last(const Variable& a, const Variable& b);

// ---- normalization / attention helpers --------------------------------------

/// Softmax over the trailing axis.
Variable softmax_last(const Variable& a);

/// Layer normalization over the trailing axis with learned gamma/beta
/// (rank-1, length == trailing dim). epsilon stabilizes the variance.
Variable layer_norm(const Variable& a, const Variable& gamma,
                    const Variable& beta, float epsilon = 1e-5f);

// ---- convolution -------------------------------------------------------------

/// 2-D convolution with SAME zero padding, stride 1.
/// input (H, W, Cin), kernel (kh, kw, Cin, Cout), bias (Cout) -> (H, W, Cout).
Variable conv2d_same(const Variable& input, const Variable& kernel,
                     const Variable& bias);

// ---- reductions / losses -----------------------------------------------------

/// Sums over the trailing axis: (..., w) -> (...). Rank must be >= 2.
/// Used by the apodization-weight baselines (sum of w .* x over channels).
Variable sum_last(const Variable& a);

/// Mean of all elements (scalar output).
Variable mean_all(const Variable& a);

/// Sum of all elements (scalar output).
Variable sum_all(const Variable& a);

/// Mean squared error between prediction and a constant target (scalar).
Variable mse_loss(const Variable& pred, const Tensor& target);

}  // namespace tvbf::nn
