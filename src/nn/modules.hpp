// Layer modules composing the differentiable ops into the building blocks
// the paper's architecture uses: dense layers, layer normalization,
// multi-head attention, the transformer encoder block, and 2-D convolutions
// (for the Tiny-CNN baseline).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/ops.hpp"

namespace tvbf::nn {

/// Base class exposing the trainable parameters of a layer.
class Module {
 public:
  virtual ~Module() = default;

  /// Trainable parameters, in a stable order (serialization relies on it).
  virtual std::vector<Variable> parameters() const = 0;

  /// Total trainable scalar count.
  std::int64_t num_parameters() const;
};

/// Fully connected layer acting on the trailing axis: y = x W + b.
class Dense : public Module {
 public:
  /// Glorot-uniform initialized weights; zero bias.
  Dense(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  /// Input rank 2 (rows, in) or rank 3 (B, rows, in).
  Variable forward(const Variable& x) const;

  std::vector<Variable> parameters() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const Variable& weight() const { return w_; }
  const Variable& bias() const { return b_; }

 private:
  std::int64_t in_ = 0;
  std::int64_t out_ = 0;
  Variable w_;  // (in, out)
  Variable b_;  // (out)
};

/// Layer normalization over the trailing axis with learned gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t features);

  Variable forward(const Variable& x) const;
  std::vector<Variable> parameters() const override;

  const Variable& gamma() const { return gamma_; }
  const Variable& beta() const { return beta_; }

 private:
  Variable gamma_;
  Variable beta_;
};

/// Multi-head self-attention (the paper's MHAL).
///
/// Input (B, np, d_model); each head h computes softmax(Q K^T / sqrt(dk)) V
/// on its d_model/heads slice; head outputs are concatenated and passed
/// through the output projection.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(std::int64_t d_model, std::int64_t num_heads, Rng& rng);

  Variable forward(const Variable& x) const;
  std::vector<Variable> parameters() const override;

  std::int64_t d_model() const { return d_model_; }
  std::int64_t num_heads() const { return heads_; }
  std::int64_t head_dim() const { return d_model_ / heads_; }
  const Dense& wq() const { return *wq_; }
  const Dense& wk() const { return *wk_; }
  const Dense& wv() const { return *wv_; }
  const Dense& wo() const { return *wo_; }

 private:
  std::int64_t d_model_ = 0;
  std::int64_t heads_ = 0;
  std::unique_ptr<Dense> wq_, wk_, wv_, wo_;
};

/// Pre-norm transformer encoder block:
/// x + MHA(LN(x)); then x + Dense(ReLU(Dense(LN(x)))).
class TransformerBlock : public Module {
 public:
  TransformerBlock(std::int64_t d_model, std::int64_t num_heads,
                   std::int64_t mlp_hidden, Rng& rng);

  Variable forward(const Variable& x) const;
  std::vector<Variable> parameters() const override;

  const MultiHeadAttention& attention() const { return *mha_; }
  const Dense& mlp_in() const { return *fc1_; }
  const Dense& mlp_out() const { return *fc2_; }
  const LayerNorm& norm1() const { return *ln1_; }
  const LayerNorm& norm2() const { return *ln2_; }

 private:
  std::unique_ptr<LayerNorm> ln1_, ln2_;
  std::unique_ptr<MultiHeadAttention> mha_;
  std::unique_ptr<Dense> fc1_, fc2_;
};

/// SAME-padded stride-1 conv layer with optional ReLU.
class Conv2D : public Module {
 public:
  Conv2D(std::int64_t kernel_h, std::int64_t kernel_w, std::int64_t in_ch,
         std::int64_t out_ch, Rng& rng, bool relu_activation = true);

  /// Input (H, W, Cin) -> (H, W, Cout).
  Variable forward(const Variable& x) const;
  std::vector<Variable> parameters() const override;

  const Variable& kernel() const { return k_; }
  const Variable& bias() const { return b_; }
  bool has_relu() const { return relu_; }

 private:
  Variable k_;  // (kh, kw, Cin, Cout)
  Variable b_;  // (Cout)
  bool relu_ = true;
};

}  // namespace tvbf::nn
