#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {

using detail::Node;

Variable reshape(const Variable& a, Shape new_shape) {
  Tensor out = a.value().reshaped(std::move(new_shape));
  return Variable::make_op(
      std::move(out), {a},
      [](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        add_inplace(n.parents[0]->ensure_grad(),
                    n.grad.reshaped(n.parents[0]->value.shape()));
      },
      "reshape");
}

Variable transpose_last2(const Variable& a) {
  Tensor out = tvbf::transpose_last2(a.value());
  return Variable::make_op(
      std::move(out), {a},
      [](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        add_inplace(n.parents[0]->ensure_grad(), tvbf::transpose_last2(n.grad));
      },
      "transpose_last2");
}

namespace {

/// Copies the [begin, end) band of the trailing axis of `src` (width w_src)
/// into `dst` (width w_dst) at offset dst_off, accumulating when `acc`.
void copy_last_band(const float* src, std::int64_t w_src, std::int64_t s_off,
                    float* dst, std::int64_t w_dst, std::int64_t d_off,
                    std::int64_t band, std::int64_t rows, bool acc) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* sp = src + r * w_src + s_off;
    float* dp = dst + r * w_dst + d_off;
    if (acc)
      for (std::int64_t j = 0; j < band; ++j) dp[j] += sp[j];
    else
      for (std::int64_t j = 0; j < band; ++j) dp[j] = sp[j];
  }
}

}  // namespace

Variable slice_last(const Variable& a, std::int64_t begin, std::int64_t end) {
  const Tensor& x = a.value();
  TVBF_REQUIRE(x.rank() >= 1, "slice_last needs rank >= 1");
  const std::int64_t w = x.shape().back();
  TVBF_REQUIRE(begin >= 0 && begin < end && end <= w,
               "slice_last range [" + std::to_string(begin) + ", " +
                   std::to_string(end) + ") invalid for width " +
                   std::to_string(w));
  Shape s = x.shape();
  s.back() = end - begin;
  Tensor out(s);
  const std::int64_t rows = x.size() / w;
  copy_last_band(x.raw(), w, begin, out.raw(), end - begin, 0, end - begin,
                 rows, /*acc=*/false);
  return Variable::make_op(
      std::move(out), {a},
      [begin, end](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor& g = n.parents[0]->ensure_grad();
        const std::int64_t w = g.shape().back();
        const std::int64_t band = end - begin;
        const std::int64_t rows = g.size() / w;
        copy_last_band(n.grad.raw(), band, 0, g.raw(), w, begin, band, rows,
                       /*acc=*/true);
      },
      "slice_last");
}

Variable concat_last(const Variable& a, const Variable& b) {
  const Tensor& x = a.value();
  const Tensor& y = b.value();
  TVBF_REQUIRE(x.rank() == y.rank() && x.rank() >= 1,
               "concat_last needs equal ranks >= 1");
  for (std::int64_t ax = 0; ax + 1 < x.rank(); ++ax)
    TVBF_REQUIRE(x.dim(ax) == y.dim(ax),
                 "concat_last leading shape mismatch: " + to_string(x.shape()) +
                     " vs " + to_string(y.shape()));
  const std::int64_t wa = x.shape().back();
  const std::int64_t wb = y.shape().back();
  Shape s = x.shape();
  s.back() = wa + wb;
  Tensor out(s);
  const std::int64_t rows = x.size() / wa;
  copy_last_band(x.raw(), wa, 0, out.raw(), wa + wb, 0, wa, rows, false);
  copy_last_band(y.raw(), wb, 0, out.raw(), wa + wb, wa, wb, rows, false);
  return Variable::make_op(
      std::move(out), {a, b},
      [wa, wb](Node& n) {
        const std::int64_t rows = n.grad.size() / (wa + wb);
        if (n.parents[0]->requires_grad)
          copy_last_band(n.grad.raw(), wa + wb, 0,
                         n.parents[0]->ensure_grad().raw(), wa, 0, wa, rows,
                         /*acc=*/true);
        if (n.parents[1]->requires_grad)
          copy_last_band(n.grad.raw(), wa + wb, wa,
                         n.parents[1]->ensure_grad().raw(), wb, 0, wb, rows,
                         /*acc=*/true);
      },
      "concat_last");
}

}  // namespace tvbf::nn
