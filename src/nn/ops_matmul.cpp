#include "device/device.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {

using detail::Node;

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = tvbf::matmul(a.value(), b.value());
  return Variable::make_op(
      std::move(out), {a, b},
      [](Node& n) {
        const Tensor& A = n.parents[0]->value;
        const Tensor& B = n.parents[1]->value;
        if (n.parents[0]->requires_grad)  // dA = dC B^T
          add_inplace(n.parents[0]->ensure_grad(),
                      tvbf::matmul(n.grad, transpose(B)));
        if (n.parents[1]->requires_grad)  // dB = A^T dC
          add_inplace(n.parents[1]->ensure_grad(),
                      tvbf::matmul(transpose(A), n.grad));
      },
      "matmul");
}

Variable batched_matmul(const Variable& a, const Variable& b) {
  Tensor out = tvbf::batched_matmul(a.value(), b.value());
  const bool broadcast = b.value().rank() == 2;
  return Variable::make_op(
      std::move(out), {a, b},
      [broadcast](Node& n) {
        const Tensor& A = n.parents[0]->value;  // (B,m,k)
        const Tensor& B = n.parents[1]->value;  // (k,n) or (B,k,n)
        const std::int64_t batch = A.dim(0), m = A.dim(1), k = A.dim(2);
        const std::int64_t nn = broadcast ? B.dim(1) : B.dim(2);
        if (n.parents[0]->requires_grad) {
          // dA[b] = dC[b] B(^T per batch)
          Tensor bt = broadcast ? transpose(B) : transpose_last2(B);
          add_inplace(n.parents[0]->ensure_grad(),
                      tvbf::batched_matmul(n.grad, bt));
        }
        if (n.parents[1]->requires_grad) {
          Tensor& gb = n.parents[1]->ensure_grad();
          if (broadcast) {
            // dB = sum_b A[b]^T dC[b] = A_flat^T dC_flat with the batch
            // folded into the rows; threaded over the k rows of dB.
            device::current().submit(
                device::CommandEncoder()
                    .gemm_tn(A.raw(), n.grad.raw(), gb.raw(), batch * m, k,
                             nn)
                    .finish());
          } else {
            add_inplace(gb, tvbf::batched_matmul(transpose_last2(A), n.grad));
          }
        }
      },
      "batched_matmul");
}

}  // namespace tvbf::nn
