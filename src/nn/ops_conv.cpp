#include "device/device.hpp"
#include "kernels/conv.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {

using detail::Node;

namespace {

kernels::Conv2dShape conv_shape(const Tensor& in, const Tensor& k) {
  return {.H = in.dim(0),
          .W = in.dim(1),
          .Ci = in.dim(2),
          .kh = k.dim(0),
          .kw = k.dim(1),
          .Co = k.dim(3)};
}

}  // namespace

Variable conv2d_same(const Variable& input, const Variable& kernel,
                     const Variable& bias) {
  const Tensor& in = input.value();
  const Tensor& k = kernel.value();
  TVBF_REQUIRE(in.rank() == 3, "conv2d input must be (H, W, Cin)");
  TVBF_REQUIRE(k.rank() == 4, "conv2d kernel must be (kh, kw, Cin, Cout)");
  TVBF_REQUIRE(k.dim(2) == in.dim(2),
               "conv2d kernel Cin " + std::to_string(k.dim(2)) +
                   " does not match input channels " + std::to_string(in.dim(2)));
  TVBF_REQUIRE(k.dim(0) % 2 == 1 && k.dim(1) % 2 == 1,
               "SAME padding requires odd kernel extents");
  TVBF_REQUIRE(bias.value().rank() == 1 && bias.value().size() == k.dim(3),
               "conv2d bias must be rank 1 of Cout length");
  const std::int64_t H = in.dim(0), W = in.dim(1);
  const std::int64_t Co = k.dim(3);
  Tensor out({H, W, Co});
  device::current().submit(
      device::CommandEncoder()
          .encode(device::Conv2dForwardCmd{in.raw(), k.raw(), out.raw(),
                                           conv_shape(in, k)})
          .finish());
  out = tvbf::add_bias(out, bias.value());
  return Variable::make_op(
      std::move(out), {input, kernel, bias},
      [](Node& n) {
        const Tensor& in = n.parents[0]->value;
        const Tensor& k = n.parents[1]->value;
        const kernels::Conv2dShape s = conv_shape(in, k);
        const float* dy = n.grad.raw();
        device::CommandEncoder enc;
        if (n.parents[2]->requires_grad)
          enc.encode(device::Conv2dBackwardBiasCmd{
              dy, n.parents[2]->ensure_grad().raw(), s});
        if (n.parents[1]->requires_grad)
          enc.encode(device::Conv2dBackwardKernelCmd{
              in.raw(), dy, n.parents[1]->ensure_grad().raw(), s});
        if (n.parents[0]->requires_grad)
          enc.encode(device::Conv2dBackwardInputCmd{
              k.raw(), dy, n.parents[0]->ensure_grad().raw(), s});
        if (!enc.empty()) device::current().submit(enc.finish());
      },
      "conv2d_same");
}

}  // namespace tvbf::nn
