#include "common/parallel.hpp"
#include "nn/ops.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::nn {

using detail::Node;

namespace {

/// Forward SAME conv: out(h,w,co) = sum_{kh,kw,ci} in(h+kh-ph, w+kw-pw, ci)
/// * K(kh,kw,ci,co). Threaded across output rows.
void conv2d_forward(const Tensor& in, const Tensor& k, Tensor& out) {
  const std::int64_t H = in.dim(0), W = in.dim(1), Ci = in.dim(2);
  const std::int64_t kh = k.dim(0), kw = k.dim(1), Co = k.dim(3);
  const std::int64_t ph = kh / 2, pw = kw / 2;
  parallel_for_each(0, static_cast<std::size_t>(H), [&](std::size_t hi) {
    const auto h = static_cast<std::int64_t>(hi);
    for (std::int64_t w = 0; w < W; ++w) {
      float* o = out.raw() + (h * W + w) * Co;
      for (std::int64_t r = 0; r < kh; ++r) {
        const std::int64_t ih = h + r - ph;
        if (ih < 0 || ih >= H) continue;
        for (std::int64_t c = 0; c < kw; ++c) {
          const std::int64_t iw = w + c - pw;
          if (iw < 0 || iw >= W) continue;
          const float* x = in.raw() + (ih * W + iw) * Ci;
          const float* kk = k.raw() + (r * kw + c) * Ci * Co;
          for (std::int64_t ci = 0; ci < Ci; ++ci) {
            const float xv = x[ci];
            if (xv == 0.0f) continue;
            const float* krow = kk + ci * Co;
            for (std::int64_t co = 0; co < Co; ++co) o[co] += xv * krow[co];
          }
        }
      }
    }
  }, /*min_grain=*/1);
}

}  // namespace

Variable conv2d_same(const Variable& input, const Variable& kernel,
                     const Variable& bias) {
  const Tensor& in = input.value();
  const Tensor& k = kernel.value();
  TVBF_REQUIRE(in.rank() == 3, "conv2d input must be (H, W, Cin)");
  TVBF_REQUIRE(k.rank() == 4, "conv2d kernel must be (kh, kw, Cin, Cout)");
  TVBF_REQUIRE(k.dim(2) == in.dim(2),
               "conv2d kernel Cin " + std::to_string(k.dim(2)) +
                   " does not match input channels " + std::to_string(in.dim(2)));
  TVBF_REQUIRE(k.dim(0) % 2 == 1 && k.dim(1) % 2 == 1,
               "SAME padding requires odd kernel extents");
  TVBF_REQUIRE(bias.value().rank() == 1 && bias.value().size() == k.dim(3),
               "conv2d bias must be rank 1 of Cout length");
  const std::int64_t H = in.dim(0), W = in.dim(1);
  const std::int64_t Co = k.dim(3);
  Tensor out({H, W, Co});
  conv2d_forward(in, k, out);
  out = tvbf::add_bias(out, bias.value());
  return Variable::make_op(
      std::move(out), {input, kernel, bias},
      [](Node& n) {
        const Tensor& in = n.parents[0]->value;
        const Tensor& k = n.parents[1]->value;
        const std::int64_t H = in.dim(0), W = in.dim(1), Ci = in.dim(2);
        const std::int64_t kh = k.dim(0), kw = k.dim(1), Co = k.dim(3);
        const std::int64_t ph = kh / 2, pw = kw / 2;
        const float* dy = n.grad.raw();
        if (n.parents[2]->requires_grad) {
          float* gb = n.parents[2]->ensure_grad().raw();
          for (std::int64_t p = 0; p < H * W; ++p)
            for (std::int64_t co = 0; co < Co; ++co) gb[co] += dy[p * Co + co];
        }
        if (n.parents[1]->requires_grad) {
          float* gk = n.parents[1]->ensure_grad().raw();
          // dK(r,c,ci,co) = sum_{h,w} in(h+r-ph, w+c-pw, ci) dy(h,w,co)
          for (std::int64_t r = 0; r < kh; ++r)
            for (std::int64_t c = 0; c < kw; ++c)
              for (std::int64_t h = 0; h < H; ++h) {
                const std::int64_t ih = h + r - ph;
                if (ih < 0 || ih >= H) continue;
                for (std::int64_t w = 0; w < W; ++w) {
                  const std::int64_t iw = w + c - pw;
                  if (iw < 0 || iw >= W) continue;
                  const float* x = in.raw() + (ih * W + iw) * Ci;
                  const float* dyo = dy + (h * W + w) * Co;
                  float* gkk = gk + (r * kw + c) * Ci * Co;
                  for (std::int64_t ci = 0; ci < Ci; ++ci)
                    for (std::int64_t co = 0; co < Co; ++co)
                      gkk[ci * Co + co] += x[ci] * dyo[co];
                }
              }
        }
        if (n.parents[0]->requires_grad) {
          float* gx = n.parents[0]->ensure_grad().raw();
          // dX(ih,iw,ci) = sum_{r,c,co} dy(ih-r+ph, iw-c+pw, co) K(r,c,ci,co)
          for (std::int64_t ih = 0; ih < H; ++ih)
            for (std::int64_t iw = 0; iw < W; ++iw) {
              float* gxo = gx + (ih * W + iw) * Ci;
              for (std::int64_t r = 0; r < kh; ++r) {
                const std::int64_t h = ih - r + ph;
                if (h < 0 || h >= H) continue;
                for (std::int64_t c = 0; c < kw; ++c) {
                  const std::int64_t w = iw - c + pw;
                  if (w < 0 || w >= W) continue;
                  const float* dyo = dy + (h * W + w) * Co;
                  const float* kk = k.raw() + (r * kw + c) * Ci * Co;
                  for (std::int64_t ci = 0; ci < Ci; ++ci) {
                    double acc = 0.0;
                    const float* krow = kk + ci * Co;
                    for (std::int64_t co = 0; co < Co; ++co)
                      acc += static_cast<double>(dyo[co]) * krow[co];
                    gxo[ci] += static_cast<float>(acc);
                  }
                }
              }
            }
        }
      },
      "conv2d_same");
}

}  // namespace tvbf::nn
