// Optimizers and learning-rate schedules.
//
// The paper trains with Adam under a cyclic polynomial-decay schedule from
// 1e-4 to 1e-6; both pieces are implemented here.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/variable.hpp"

namespace tvbf::nn {

/// Polynomial decay from initial_lr to final_lr over decay_steps, with
/// optional cyclic restarts (the decay horizon doubles each cycle, the
/// TensorFlow `cycle=True` behaviour).
class PolynomialDecay {
 public:
  PolynomialDecay(double initial_lr, double final_lr, std::int64_t decay_steps,
                  double power = 1.0, bool cyclic = true);

  /// Learning rate at a global step (>= 0).
  double at(std::int64_t step) const;

 private:
  double initial_lr_;
  double final_lr_;
  std::int64_t decay_steps_;
  double power_;
  bool cyclic_;
};

/// Optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the gradients currently stored on the
  /// parameters, then advances the step counter.
  virtual void step(double lr) = 0;

  /// Clears all parameter gradients.
  void zero_grad();

  std::int64_t step_count() const { return t_; }

 protected:
  std::vector<Variable> params_;
  std::int64_t t_ = 0;
};

/// Plain SGD (used by tests as a sanity reference).
class Sgd : public Optimizer {
 public:
  using Optimizer::Optimizer;
  void step(double lr) override;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(std::vector<Variable> params, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);
  void step(double lr) override;

 private:
  double beta1_, beta2_, epsilon_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace tvbf::nn
