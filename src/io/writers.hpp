// Artifact writers: PGM grayscale images (the B-mode figures) and CSV series
// (profiles, tables). The benches write figure data into bench_out/.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace tvbf::io {

/// Writes a dB image (values in [-dr, 0]) as an 8-bit binary PGM, mapping
/// -dynamic_range -> 0 and 0 dB -> 255.
void write_pgm_db(const std::string& path, const Tensor& db_image,
                  double dynamic_range_db = 60.0);

/// Writes named columns of equal length as CSV with a header row.
void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns);

/// Writes a string verbatim (telemetry/trace JSON exports).
void write_text(const std::string& path, const std::string& text);

/// Creates a directory (and parents); no-op if it exists.
void ensure_directory(const std::string& path);

}  // namespace tvbf::io
