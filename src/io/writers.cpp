#include "io/writers.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace tvbf::io {

void write_pgm_db(const std::string& path, const Tensor& db_image,
                  double dynamic_range_db) {
  TVBF_REQUIRE(db_image.rank() == 2, "PGM writer expects a 2-D image");
  TVBF_REQUIRE(dynamic_range_db > 0.0, "dynamic range must be positive");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  TVBF_REQUIRE(os.is_open(), "cannot open '" + path + "' for writing");
  const std::int64_t h = db_image.dim(0), w = db_image.dim(1);
  os << "P5\n" << w << ' ' << h << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(w));
  for (std::int64_t i = 0; i < h; ++i) {
    for (std::int64_t j = 0; j < w; ++j) {
      const double v = db_image.raw()[i * w + j];
      const double t = std::clamp(1.0 + v / dynamic_range_db, 0.0, 1.0);
      row[static_cast<std::size_t>(j)] =
          static_cast<unsigned char>(std::lround(t * 255.0));
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  TVBF_REQUIRE(static_cast<bool>(os), "write to '" + path + "' failed");
}

void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns) {
  TVBF_REQUIRE(!columns.empty(), "CSV writer needs at least one column");
  TVBF_REQUIRE(column_names.size() == columns.size(),
               "CSV header/column count mismatch");
  const std::size_t rows = columns.front().size();
  for (const auto& c : columns)
    TVBF_REQUIRE(c.size() == rows, "CSV columns have unequal lengths");
  std::ofstream os(path, std::ios::trunc);
  TVBF_REQUIRE(os.is_open(), "cannot open '" + path + "' for writing");
  for (std::size_t c = 0; c < column_names.size(); ++c) {
    if (c) os << ',';
    os << column_names[c];
  }
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) os << ',';
      os << columns[c][r];
    }
    os << '\n';
  }
  TVBF_REQUIRE(static_cast<bool>(os), "write to '" + path + "' failed");
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  TVBF_REQUIRE(os.is_open(), "cannot open '" + path + "' for writing");
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
  TVBF_REQUIRE(static_cast<bool>(os), "write to '" + path + "' failed");
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  TVBF_REQUIRE(!ec, "cannot create directory '" + path + "': " + ec.message());
}

}  // namespace tvbf::io
