#include "models/trainer.hpp"

#include <cstdio>

#include "nn/ops.hpp"

namespace tvbf::models {

TrainReport train_model(
    const std::function<nn::Variable(const Tensor&)>& forward,
    std::vector<nn::Variable> params, const std::vector<TrainingFrame>& frames,
    TargetKind target, const TrainOptions& options) {
  TVBF_REQUIRE(!frames.empty(), "training needs at least one frame");
  TVBF_REQUIRE(options.epochs > 0, "training needs epochs > 0");
  const std::int64_t steps_per_epoch =
      static_cast<std::int64_t>(frames.size());
  const std::int64_t decay_steps =
      options.decay_steps > 0 ? options.decay_steps
                              : options.epochs * steps_per_epoch;
  const nn::PolynomialDecay schedule(options.initial_lr, options.final_lr,
                                     decay_steps, options.decay_power,
                                     options.cyclic);
  nn::Adam adam(std::move(params));

  TrainReport report;
  report.epoch_loss.reserve(static_cast<std::size_t>(options.epochs));
  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (const auto& frame : frames) {
      adam.zero_grad();
      const nn::Variable pred = forward(frame.input);
      const Tensor& label =
          target == TargetKind::kIq ? frame.target_iq : frame.target_rf;
      nn::Variable loss = nn::mse_loss(pred, label);
      loss.backward();
      adam.step(schedule.at(step));
      epoch_loss += loss.value().raw()[0];
      ++step;
    }
    epoch_loss /= static_cast<double>(frames.size());
    report.epoch_loss.push_back(epoch_loss);
    if (options.log && (epoch % 10 == 0 || epoch == options.epochs - 1)) {
      char line[96];
      std::snprintf(line, sizeof(line), "  epoch %4lld  loss %.6f  lr %.2e",
                    static_cast<long long>(epoch), epoch_loss,
                    schedule.at(step));
      options.log(line);
    }
  }
  report.final_loss = report.epoch_loss.back();
  return report;
}

}  // namespace tvbf::models
