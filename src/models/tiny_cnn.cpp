#include "models/tiny_cnn.hpp"

namespace tvbf::models {

void TinyCnnConfig::validate() const {
  TVBF_REQUIRE(in_channels > 0, "in_channels must be positive");
  TVBF_REQUIRE(kernel > 0 && kernel % 2 == 1, "kernel must be odd positive");
  TVBF_REQUIRE(hidden1 > 0 && hidden2 > 0, "hidden widths must be positive");
}

TinyCnnConfig TinyCnnConfig::paper() { return TinyCnnConfig{}; }

TinyCnnConfig TinyCnnConfig::test(std::int64_t channels) {
  TinyCnnConfig c;
  c.in_channels = channels;
  c.kernel = 3;
  c.hidden1 = 8;
  c.hidden2 = 8;
  return c;
}

TinyCnn::TinyCnn(TinyCnnConfig config, Rng& rng) : config_(config) {
  config_.validate();
  c1_ = std::make_unique<nn::Conv2D>(config_.kernel, config_.kernel,
                                     config_.in_channels, config_.hidden1, rng,
                                     /*relu_activation=*/true);
  c2_ = std::make_unique<nn::Conv2D>(config_.kernel, config_.kernel,
                                     config_.hidden1, config_.hidden2, rng,
                                     /*relu_activation=*/true);
  // Final layer emits the apodization weights; linear activation so weights
  // can be negative (sidelobe cancellation).
  c3_ = std::make_unique<nn::Conv2D>(config_.kernel, config_.kernel,
                                     config_.hidden2, config_.in_channels, rng,
                                     /*relu_activation=*/false);
}

nn::Variable TinyCnn::forward(const nn::Variable& x) const {
  const auto& s = x.shape();
  TVBF_REQUIRE(s.size() == 3 && s[2] == config_.in_channels,
               "TinyCnn expects (nz, nx, nch=" +
                   std::to_string(config_.in_channels) + "), got " +
                   to_string(s));
  const nn::Variable w = c3_->forward(c2_->forward(c1_->forward(x)));
  // Beamformed RF: apodization weights applied to the ToF-corrected data and
  // summed along the channel axis.
  return nn::sum_last(nn::mul(w, x));
}

Tensor TinyCnn::infer(const Tensor& input) const {
  return forward(nn::constant(input)).value();
}

std::vector<nn::Variable> TinyCnn::parameters() const {
  std::vector<nn::Variable> out;
  for (const auto* c : {c1_.get(), c2_.get(), c3_.get()}) {
    const auto p = c->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::int64_t TinyCnn::ops_per_frame(std::int64_t nz, std::int64_t nx) const {
  TVBF_REQUIRE(nz > 0 && nx > 0, "ops_per_frame needs positive frame dims");
  const std::int64_t pix = nz * nx;
  const std::int64_t k2 = config_.kernel * config_.kernel;
  std::int64_t ops = 0;
  ops += 2 * k2 * config_.in_channels * config_.hidden1 * pix;  // conv1
  ops += 2 * k2 * config_.hidden1 * config_.hidden2 * pix;      // conv2
  ops += 2 * k2 * config_.hidden2 * config_.in_channels * pix;  // conv3
  ops += 2 * config_.in_channels * pix;  // weight * data + channel sum
  return ops;
}

}  // namespace tvbf::models
