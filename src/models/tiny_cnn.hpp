// Tiny-CNN baseline beamformer (Mathews & Panicker, EMBC 2021 — ref [7]).
//
// A convolutional stack over the ToF-corrected cube (nz, nx, nch) predicts
// per-channel apodization weights of the same shape; the beamformed RF image
// is the channel-wise weighted sum sum_ch(w .* x). The Hilbert transform to
// IQ happens outside the network (it is not differentiable here), exactly as
// described in Section II of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/modules.hpp"

namespace tvbf::models {

/// Tiny-CNN hyper-parameters.
struct TinyCnnConfig {
  std::int64_t in_channels = 128;  ///< transducer channels
  std::int64_t kernel = 5;         ///< square conv kernel extent
  std::int64_t hidden1 = 16;       ///< first conv width
  std::int64_t hidden2 = 16;       ///< second conv width

  void validate() const;

  static TinyCnnConfig paper();
  static TinyCnnConfig test(std::int64_t channels = 16);
};

/// The Tiny-CNN network.
class TinyCnn : public nn::Module {
 public:
  TinyCnn(TinyCnnConfig config, Rng& rng);

  /// (nz, nx, nch) -> beamformed RF (nz, nx). Differentiable.
  nn::Variable forward(const nn::Variable& x) const;

  /// Inference-only RF image.
  Tensor infer(const Tensor& input) const;

  std::vector<nn::Variable> parameters() const override;
  const TinyCnnConfig& config() const { return config_; }

  /// 2-ops-per-MAC count for one (nz, nx) frame.
  std::int64_t ops_per_frame(std::int64_t nz, std::int64_t nx) const;

 private:
  TinyCnnConfig config_;
  std::unique_ptr<nn::Conv2D> c1_, c2_, c3_;
};

}  // namespace tvbf::models
