// Training-set construction: simulated acquisitions paired with MVDR labels.
//
// Mirrors the paper's data pipeline: single-angle plane-wave RF data is
// ToF-corrected and normalized to [-1, 1]; the training target is the MVDR
// beamformed IQ-demodulated image (normalized the same way) computed from
// the analytic ToF cube.
#pragma once

#include <cstdint>
#include <vector>

#include "beamform/mvdr.hpp"
#include "tensor/tensor.hpp"
#include "us/grid.hpp"
#include "us/phantom.hpp"
#include "us/simulator.hpp"

namespace tvbf::models {

/// One supervised training example.
struct TrainingFrame {
  Tensor input;      ///< (nz, nx, nch) normalized ToF-corrected RF
  Tensor target_iq;  ///< (nz, nx, 2) normalized MVDR IQ (Tiny-VBF label)
  Tensor target_rf;  ///< (nz, nx) real part of the label (CNN/FCNN label)
};

/// Dataset generation parameters.
struct DatasetParams {
  us::SimParams sim = us::SimParams::in_silico();
  bf::MvdrParams mvdr;
  double steering_angle_rad = 0.0;
  std::uint64_t seed = 42;
  /// When true, every other frame is acquired with the in-vitro preset
  /// (noise, attenuation, gain spread) so trained models generalize to the
  /// experimental-phantom evaluation — the stand-in for the paper's CUBDL
  /// fine-tuning stage.
  bool alternate_in_vitro = false;
};

/// Builds one frame from an explicit phantom.
TrainingFrame make_frame(const us::Probe& probe, const us::ImagingGrid& grid,
                         const us::Phantom& phantom,
                         const DatasetParams& params);

/// Builds `count` frames from random training phantoms (speckle + cysts +
/// point targets), seeded deterministically from params.seed.
std::vector<TrainingFrame> make_training_set(const us::Probe& probe,
                                             const us::ImagingGrid& grid,
                                             std::int64_t count,
                                             const DatasetParams& params);

}  // namespace tvbf::models
