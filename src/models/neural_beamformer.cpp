#include "models/neural_beamformer.hpp"

#include "dsp/hilbert.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::models {

Tensor normalized_input(const us::TofCube& cube) {
  TVBF_REQUIRE(cube.real.rank() == 3, "cube holds no data");
  Tensor in = cube.real;
  const float m = max_abs(in);
  if (m > 0.0f) {
    const float inv = 1.0f / m;
    for (auto& v : in.data()) v *= inv;
  }
  return in;
}

Tensor rf_image_to_iq(const Tensor& rf) {
  return dsp::analytic_columns(rf);
}

std::vector<Tensor> stacked_forward(
    const std::vector<const Tensor*>& inputs,
    const std::function<Tensor(const Tensor&)>& infer) {
  TVBF_REQUIRE(!inputs.empty(), "infer_batch needs at least one frame");
  TVBF_REQUIRE(inputs.front() != nullptr, "infer_batch got a null frame");
  if (inputs.size() == 1) return {infer(*inputs.front())};
  const Tensor stacked = concat0_all(inputs);
  const Tensor out = infer(stacked);
  std::vector<Tensor> results;
  results.reserve(inputs.size());
  std::int64_t row = 0;
  for (const Tensor* in : inputs) {
    const std::int64_t nz = in->dim(0);
    results.push_back(slice0(out, row, row + nz));
    row += nz;
  }
  return results;
}

std::vector<Tensor> beamform_batch_normalized(
    const std::vector<const us::TofCube*>& cubes,
    const std::function<std::vector<Tensor>(const std::vector<const Tensor*>&)>&
        infer_batch) {
  std::vector<Tensor> normalized;
  normalized.reserve(cubes.size());
  for (const us::TofCube* cube : cubes) {
    TVBF_REQUIRE(cube != nullptr, "beamform_batch got a null cube");
    normalized.push_back(normalized_input(*cube));
  }
  std::vector<const Tensor*> inputs;
  inputs.reserve(normalized.size());
  for (const Tensor& n : normalized) inputs.push_back(&n);
  return infer_batch(inputs);
}

TinyVbfBeamformer::TinyVbfBeamformer(std::shared_ptr<const TinyVbf> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "TinyVbfBeamformer needs a model");
}

Tensor TinyVbfBeamformer::beamform(const us::TofCube& cube) const {
  return model_->infer(normalized_input(cube));
}

std::vector<Tensor> TinyVbfBeamformer::beamform_batch(
    const std::vector<const us::TofCube*>& cubes) const {
  return beamform_batch_normalized(
      cubes, [this](const std::vector<const Tensor*>& inputs) {
        return model_->infer_batch(inputs);
      });
}

TinyCnnBeamformer::TinyCnnBeamformer(std::shared_ptr<const TinyCnn> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "TinyCnnBeamformer needs a model");
}

Tensor TinyCnnBeamformer::beamform(const us::TofCube& cube) const {
  return rf_image_to_iq(model_->infer(normalized_input(cube)));
}

FcnnBeamformer::FcnnBeamformer(std::shared_ptr<const Fcnn> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "FcnnBeamformer needs a model");
}

Tensor FcnnBeamformer::beamform(const us::TofCube& cube) const {
  return rf_image_to_iq(model_->infer(normalized_input(cube)));
}

}  // namespace tvbf::models
