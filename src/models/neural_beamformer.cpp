#include "models/neural_beamformer.hpp"

#include "dsp/hilbert.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::models {

Tensor normalized_input(const us::TofCube& cube) {
  TVBF_REQUIRE(cube.real.rank() == 3, "cube holds no data");
  Tensor in = cube.real;
  const float m = max_abs(in);
  if (m > 0.0f) {
    const float inv = 1.0f / m;
    for (auto& v : in.data()) v *= inv;
  }
  return in;
}

Tensor rf_image_to_iq(const Tensor& rf) {
  return dsp::analytic_columns(rf);
}

TinyVbfBeamformer::TinyVbfBeamformer(std::shared_ptr<const TinyVbf> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "TinyVbfBeamformer needs a model");
}

Tensor TinyVbfBeamformer::beamform(const us::TofCube& cube) const {
  return model_->infer(normalized_input(cube));
}

TinyCnnBeamformer::TinyCnnBeamformer(std::shared_ptr<const TinyCnn> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "TinyCnnBeamformer needs a model");
}

Tensor TinyCnnBeamformer::beamform(const us::TofCube& cube) const {
  return rf_image_to_iq(model_->infer(normalized_input(cube)));
}

FcnnBeamformer::FcnnBeamformer(std::shared_ptr<const Fcnn> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "FcnnBeamformer needs a model");
}

Tensor FcnnBeamformer::beamform(const us::TofCube& cube) const {
  return rf_image_to_iq(model_->infer(normalized_input(cube)));
}

}  // namespace tvbf::models
