#include "models/neural_beamformer.hpp"

#include "dsp/hilbert.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::models {

Tensor normalized_input(const us::TofCube& cube) {
  TVBF_REQUIRE(cube.real.rank() == 3, "cube holds no data");
  Tensor in = cube.real;
  const float m = max_abs(in);
  if (m > 0.0f) {
    const float inv = 1.0f / m;
    for (auto& v : in.data()) v *= inv;
  }
  return in;
}

Tensor rf_image_to_iq(const Tensor& rf) {
  return dsp::analytic_columns(rf);
}

std::vector<Tensor> stacked_forward(
    const std::vector<const Tensor*>& inputs,
    const std::function<Tensor(const Tensor&)>& infer) {
  TVBF_REQUIRE(!inputs.empty(), "infer_batch needs at least one frame");
  TVBF_REQUIRE(inputs.front() != nullptr, "infer_batch got a null frame");
  if (inputs.size() == 1) return {infer(*inputs.front())};
  const Tensor stacked = concat0_all(inputs);
  const Tensor out = infer(stacked);
  std::vector<Tensor> results;
  results.reserve(inputs.size());
  std::int64_t row = 0;
  for (const Tensor* in : inputs) {
    const std::int64_t nz = in->dim(0);
    results.push_back(slice0(out, row, row + nz));
    row += nz;
  }
  return results;
}

std::vector<Tensor> beamform_batch_normalized(
    const std::vector<const us::TofCube*>& cubes,
    const std::function<std::vector<Tensor>(const std::vector<const Tensor*>&)>&
        infer_batch) {
  std::vector<Tensor> normalized;
  normalized.reserve(cubes.size());
  for (const us::TofCube* cube : cubes) {
    TVBF_REQUIRE(cube != nullptr, "beamform_batch got a null cube");
    normalized.push_back(normalized_input(*cube));
  }
  std::vector<const Tensor*> inputs;
  inputs.reserve(normalized.size());
  for (const Tensor& n : normalized) inputs.push_back(&n);
  return infer_batch(inputs);
}

TinyVbfBeamformer::TinyVbfBeamformer(std::shared_ptr<const TinyVbf> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "TinyVbfBeamformer needs a model");
}

Tensor TinyVbfBeamformer::beamform(const us::TofCube& cube) const {
  return model_->infer(normalized_input(cube));
}

std::vector<Tensor> TinyVbfBeamformer::beamform_batch(
    const std::vector<const us::TofCube*>& cubes) const {
  return beamform_batch_normalized(
      cubes, [this](const std::vector<const Tensor*>& inputs) {
        return model_->infer_batch(inputs);
      });
}

bool TinyVbfBeamformer::encode_cost_probe(device::CommandEncoder& encoder,
                                          std::int64_t nz_total) const {
  encode_tiny_vbf_probe(model_->config(), nz_total, encoder);
  return true;
}

void encode_tiny_vbf_probe(const TinyVbfConfig& config, std::int64_t nz_total,
                           device::CommandEncoder& encoder) {
  TVBF_REQUIRE(nz_total > 0, "cost probe needs a positive row count");
  const std::int64_t nz = nz_total;
  const std::int64_t np = config.num_patches();
  const std::int64_t d = config.d_model;
  const std::int64_t dk = d / config.num_heads;
  const std::int64_t pin = config.patch_size * config.in_channels;
  // The matmul schedule of one stacked forward pass (mirrors
  // accel::AcceleratorSim::run_tiny_vbf, which prices the same network):
  // embed, per block Q/K/V + scores + head outputs + output projection +
  // the two MLP matmuls, then the two decoder matmuls. Elementwise /
  // softmax / layer-norm stages are negligible against these and omitted.
  encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np, pin, d);
  for (std::int64_t b = 0; b < config.num_blocks; ++b) {
    for (int proj = 0; proj < 3; ++proj)  // wq, wk, wv
      encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np, d, d);
    encoder.batched_gemm(nullptr, nullptr, nullptr, nz * config.num_heads,
                         np, dk, np, /*transpose_b=*/true);  // scores
    encoder.batched_gemm(nullptr, nullptr, nullptr, nz * config.num_heads,
                         np, np, dk);  // attn . V
    encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np, d, d);  // wo
    encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np, d,
                         config.mlp_hidden);  // fc1
    encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np,
                         config.mlp_hidden, d);  // fc2
  }
  encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np, d,
                       config.decoder_hidden);  // dec1
  encoder.batched_gemm(nullptr, nullptr, nullptr, nz, np,
                       config.decoder_hidden, config.patch_size * 2);  // dec2
}

TinyCnnBeamformer::TinyCnnBeamformer(std::shared_ptr<const TinyCnn> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "TinyCnnBeamformer needs a model");
}

Tensor TinyCnnBeamformer::beamform(const us::TofCube& cube) const {
  return rf_image_to_iq(model_->infer(normalized_input(cube)));
}

FcnnBeamformer::FcnnBeamformer(std::shared_ptr<const Fcnn> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "FcnnBeamformer needs a model");
}

Tensor FcnnBeamformer::beamform(const us::TofCube& cube) const {
  return rf_image_to_iq(model_->infer(normalized_input(cube)));
}

}  // namespace tvbf::models
