#include "models/tiny_vbf.hpp"

#include "models/neural_beamformer.hpp"

namespace tvbf::models {

void TinyVbfConfig::validate() const {
  TVBF_REQUIRE(in_channels > 0, "in_channels must be positive");
  TVBF_REQUIRE(num_lateral > 0, "num_lateral must be positive");
  TVBF_REQUIRE(patch_size > 0 && num_lateral % patch_size == 0,
               "num_lateral must be divisible by patch_size");
  TVBF_REQUIRE(d_model > 0 && num_heads > 0 && d_model % num_heads == 0,
               "d_model must be divisible by num_heads");
  TVBF_REQUIRE(mlp_hidden > 0 && decoder_hidden > 0 && num_blocks > 0,
               "hidden sizes and block count must be positive");
}

TinyVbfConfig TinyVbfConfig::paper() {
  return TinyVbfConfig{};  // defaults are the paper-scale values
}

TinyVbfConfig TinyVbfConfig::test(std::int64_t channels, std::int64_t lateral) {
  TinyVbfConfig c;
  c.in_channels = channels;
  c.num_lateral = lateral;
  c.patch_size = 4;
  c.d_model = 16;
  c.num_heads = 2;
  c.mlp_hidden = 32;
  c.num_blocks = 2;
  c.decoder_hidden = 32;
  return c;
}

TinyVbf::TinyVbf(TinyVbfConfig config, Rng& rng) : config_(config) {
  config_.validate();
  const std::int64_t patch_in = config_.patch_size * config_.in_channels;
  embed_ = std::make_unique<nn::Dense>(patch_in, config_.d_model, rng);
  // Positional embedding, stored flat so it can be added via add_bias on the
  // (nz, np * d_model) view of the sequence.
  Tensor pos({config_.num_patches() * config_.d_model});
  for (auto& v : pos.data()) v = static_cast<float>(rng.normal(0.0, 0.02));
  pos_ = nn::parameter(std::move(pos));
  for (std::int64_t b = 0; b < config_.num_blocks; ++b)
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        config_.d_model, config_.num_heads, config_.mlp_hidden, rng));
  dec1_ = std::make_unique<nn::Dense>(config_.d_model, config_.decoder_hidden,
                                      rng);
  dec2_ = std::make_unique<nn::Dense>(config_.decoder_hidden,
                                      config_.patch_size * 2, rng);
}

nn::Variable TinyVbf::forward(const nn::Variable& x) const {
  const auto& s = x.shape();
  TVBF_REQUIRE(s.size() == 3, "TinyVbf expects (nz, nx, nch) input");
  TVBF_REQUIRE(s[1] == config_.num_lateral && s[2] == config_.in_channels,
               "TinyVbf configured for nx=" + std::to_string(config_.num_lateral) +
                   ", nch=" + std::to_string(config_.in_channels) + "; got " +
                   to_string(s));
  const std::int64_t nz = s[0];
  const std::int64_t np = config_.num_patches();
  const std::int64_t d = config_.d_model;

  // (nz, nx, nch) -> (nz, np, patch * nch): lateral patches are contiguous.
  nn::Variable h = nn::reshape(
      x, {nz, np, config_.patch_size * config_.in_channels});
  h = embed_->forward(h);  // (nz, np, d)
  // Positional embedding added to every depth row.
  h = nn::reshape(h, {nz, np * d});
  h = nn::add_bias(h, pos_);
  h = nn::reshape(h, {nz, np, d});
  for (const auto& block : blocks_) h = block->forward(h);
  h = nn::relu(dec1_->forward(h));            // (nz, np, dec)
  h = dec2_->forward(h);                      // (nz, np, patch * 2)
  return nn::reshape(h, {nz, config_.num_lateral, 2});
}

Tensor TinyVbf::infer(const Tensor& input) const {
  return forward(nn::constant(input)).value();
}

std::vector<Tensor> TinyVbf::infer_batch(
    const std::vector<const Tensor*>& inputs) const {
  // Frames stack along the depth axis: forward() treats nz as a pure batch
  // dimension (every op is per depth row), so the stacked pass is row-wise
  // identical to per-frame passes while paying the per-op overhead once.
  return stacked_forward(inputs,
                         [this](const Tensor& stacked) { return infer(stacked); });
}

std::vector<nn::Variable> TinyVbf::parameters() const {
  std::vector<nn::Variable> out = embed_->parameters();
  out.push_back(pos_);
  for (const auto& b : blocks_) {
    const auto p = b->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  for (const auto* d : {dec1_.get(), dec2_.get()}) {
    const auto p = d->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::int64_t TinyVbf::ops_per_frame(std::int64_t nz) const {
  TVBF_REQUIRE(nz > 0, "ops_per_frame needs nz > 0");
  const std::int64_t np = config_.num_patches();
  const std::int64_t d = config_.d_model;
  const std::int64_t dk = d / config_.num_heads;
  const std::int64_t patch_in = config_.patch_size * config_.in_channels;
  // 2 ops (mul + add) per MAC, per depth row.
  std::int64_t per_row = 0;
  per_row += 2 * np * patch_in * d;                       // patch embedding
  per_row += np * d;                                      // positional add
  std::int64_t block = 0;
  block += 4 * 2 * np * d * d;                            // Q, K, V, O proj
  block += config_.num_heads * 2 * np * np * dk * 2;      // scores + attn*V
  block += 5 * np * np * config_.num_heads;               // softmax (approx)
  block += 2 * (2 * np * d * config_.mlp_hidden);         // MLP dense pair
  block += 2 * (8 * np * d);                              // two layer norms
  per_row += config_.num_blocks * block;
  per_row += 2 * np * d * config_.decoder_hidden;         // decoder hidden
  per_row += 2 * np * config_.decoder_hidden * (config_.patch_size * 2);
  return per_row * nz;
}

}  // namespace tvbf::models
