// Training loop shared by all learned beamformers.
//
// Follows the paper's parameter setting section: Adam optimizer, MSE loss on
// the IQ-demodulated beamformed image prior to log compression, polynomial
// learning-rate decay from 1e-4 to 1e-6 with cyclic restarts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "models/dataset.hpp"
#include "nn/optimizer.hpp"

namespace tvbf::models {

/// Training controls (defaults mirror the paper; epochs scaled per use).
struct TrainOptions {
  std::int64_t epochs = 100;
  double initial_lr = 1e-4;
  double final_lr = 1e-6;
  double decay_power = 1.0;
  bool cyclic = true;
  /// Steps of the decay horizon; 0 derives it from epochs * frames.
  std::int64_t decay_steps = 0;
  /// Progress sink: called with one formatted line per reported epoch
  /// (every 10th and the last). Null trains silently — library code never
  /// writes to stdout itself; callers that want console progress pass a
  /// sink that prints (see examples/train_beamformer.cpp).
  std::function<void(const std::string& line)> log;
};

/// Result of a training run.
struct TrainReport {
  std::vector<double> epoch_loss;  ///< mean per-frame loss per epoch
  double final_loss = 0.0;
};

/// Selects which label tensor a model trains against.
enum class TargetKind { kIq, kRf };

/// Trains a model given its differentiable forward function and parameters.
/// `forward` maps an input tensor (nz, nx, nch) to the model output Variable
/// ((nz, nx, 2) for kIq targets, (nz, nx) for kRf targets).
TrainReport train_model(
    const std::function<nn::Variable(const Tensor&)>& forward,
    std::vector<nn::Variable> params, const std::vector<TrainingFrame>& frames,
    TargetKind target, const TrainOptions& options);

}  // namespace tvbf::models
