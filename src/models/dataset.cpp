#include "models/dataset.hpp"

#include "dsp/hilbert.hpp"
#include "us/plan_cache.hpp"
#include "tensor/tensor_ops.hpp"
#include "us/tof.hpp"

namespace tvbf::models {

TrainingFrame make_frame(const us::Probe& probe, const us::ImagingGrid& grid,
                         const us::Phantom& phantom,
                         const DatasetParams& params) {
  const us::Acquisition acq = us::simulate_plane_wave(
      probe, phantom, params.steering_angle_rad, params.sim);

  // One cached ToF plan serves both cubes of this frame and — because
  // every frame of a training set shares (probe, grid, angle, RF length) —
  // the whole corpus; only the per-frame sampling work remains.
  const auto plan = us::PlanCache::instance().get_for(acq, grid);

  // Network input: RF-only ToF cube, normalized.
  us::TofCube rf_cube = plan->apply(acq, /*analytic=*/false);
  us::normalize_cube(rf_cube);

  // Label: MVDR on the analytic cube.
  const us::TofCube iq_cube = plan->apply(acq, /*analytic=*/true);
  const bf::MvdrBeamformer mvdr(params.mvdr);
  Tensor target = mvdr.beamform(iq_cube);
  // Normalize the label to unit peak magnitude so the MSE scale is frame
  // independent (the paper normalizes data to [-1, 1]).
  const float m = max_abs(target);
  if (m > 0.0f) {
    const float inv = 1.0f / m;
    for (auto& v : target.data()) v *= inv;
  }

  TrainingFrame frame;
  frame.input = std::move(rf_cube.real);
  const std::int64_t nz = grid.nz, nx = grid.nx;
  frame.target_rf = Tensor({nz, nx});
  for (std::int64_t p = 0; p < nz * nx; ++p)
    frame.target_rf.raw()[p] = target.raw()[2 * p];
  frame.target_iq = std::move(target);
  return frame;
}

std::vector<TrainingFrame> make_training_set(const us::Probe& probe,
                                             const us::ImagingGrid& grid,
                                             std::int64_t count,
                                             const DatasetParams& params) {
  TVBF_REQUIRE(count > 0, "training set needs count > 0");
  std::vector<TrainingFrame> frames;
  frames.reserve(static_cast<std::size_t>(count));
  Rng rng(params.seed);
  us::Region region;
  region.x_min = probe.element_x(0);
  region.x_max = probe.element_x(probe.num_elements - 1);
  region.z_min = grid.z0;
  region.z_max = grid.z_end();
  for (std::int64_t i = 0; i < count; ++i) {
    Rng phantom_rng = rng.split();
    const us::Phantom ph = us::make_random_training_phantom(phantom_rng, region);
    DatasetParams p = params;
    if (params.alternate_in_vitro && (i % 2 == 1)) {
      const double depth = p.sim.max_depth;
      p.sim = us::SimParams::in_vitro();
      p.sim.max_depth = depth;
    }
    p.sim.seed = rng.next_u64();
    frames.push_back(make_frame(probe, grid, ph, p));
  }
  return frames;
}

}  // namespace tvbf::models
