// FCNN baseline beamformer (Luijten et al., IEEE TMI 2020 — ref [6]).
//
// A per-pixel fully connected network maps the channel vector of each pixel
// to per-channel apodization weights (adaptive-beamforming-by-deep-learning);
// the beamformed RF value is sum_ch(w .* x). As with Tiny-CNN the Hilbert
// transform to IQ is applied outside the network.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/modules.hpp"

namespace tvbf::models {

/// FCNN hyper-parameters.
struct FcnnConfig {
  std::int64_t in_channels = 128;
  std::int64_t hidden = 64;  ///< bottleneck width (paper [6] uses nch/2)

  void validate() const;

  static FcnnConfig paper();
  static FcnnConfig test(std::int64_t channels = 16);
};

/// The FCNN network.
class Fcnn : public nn::Module {
 public:
  Fcnn(FcnnConfig config, Rng& rng);

  /// (nz, nx, nch) -> beamformed RF (nz, nx). Differentiable.
  nn::Variable forward(const nn::Variable& x) const;

  Tensor infer(const Tensor& input) const;

  std::vector<nn::Variable> parameters() const override;
  const FcnnConfig& config() const { return config_; }

  /// 2-ops-per-MAC count for one (nz, nx) frame.
  std::int64_t ops_per_frame(std::int64_t nz, std::int64_t nx) const;

 private:
  FcnnConfig config_;
  std::unique_ptr<nn::Dense> fc1_, fc2_;
};

}  // namespace tvbf::models
