// Adapters exposing the learned models through the common Beamformer
// interface, so the metric/benchmark pipeline treats DAS, MVDR and the
// networks identically.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "beamform/beamformer.hpp"
#include "models/fcnn.hpp"
#include "models/tiny_cnn.hpp"
#include "models/tiny_vbf.hpp"

namespace tvbf::models {

/// Tiny-VBF as a Beamformer: normalizes the RF cube to [-1, 1] and runs the
/// network; the network output is already an IQ image. Batch-capable: the
/// per-depth-row transformer lets several frames stack into one forward
/// pass (cubes are normalized per frame first, so batched outputs are
/// bit-identical to solo beamform() calls).
class TinyVbfBeamformer : public bf::BatchedBeamformer {
 public:
  explicit TinyVbfBeamformer(std::shared_ptr<const TinyVbf> model);

  std::string name() const override { return "Tiny-VBF"; }
  Tensor beamform(const us::TofCube& cube) const override;
  std::vector<Tensor> beamform_batch(
      const std::vector<const us::TofCube*>& cubes) const override;
  bool encode_cost_probe(device::CommandEncoder& encoder,
                         std::int64_t nz_total) const override;

 private:
  std::shared_ptr<const TinyVbf> model_;
};

/// Tiny-CNN as a Beamformer: network emits beamformed RF; a per-column
/// Hilbert transform produces the IQ image (paper Section II).
class TinyCnnBeamformer : public bf::Beamformer {
 public:
  explicit TinyCnnBeamformer(std::shared_ptr<const TinyCnn> model);

  std::string name() const override { return "Tiny-CNN"; }
  Tensor beamform(const us::TofCube& cube) const override;

 private:
  std::shared_ptr<const TinyCnn> model_;
};

/// FCNN as a Beamformer (same RF -> IQ conversion as Tiny-CNN).
class FcnnBeamformer : public bf::Beamformer {
 public:
  explicit FcnnBeamformer(std::shared_ptr<const Fcnn> model);

  std::string name() const override { return "FCNN"; }
  Tensor beamform(const us::TofCube& cube) const override;

 private:
  std::shared_ptr<const Fcnn> model_;
};

/// Normalized copy of the cube's RF data (shared by the adapters and the
/// training-set builder so train/test preprocessing cannot diverge).
Tensor normalized_input(const us::TofCube& cube);

/// Shared plumbing of every batch-of-frames entry point: stacks the
/// per-frame inputs along the depth axis, runs `infer` once on the stacked
/// tensor, and splits the output back per frame. Single-frame batches skip
/// the stack/split copies.
std::vector<Tensor> stacked_forward(
    const std::vector<const Tensor*>& inputs,
    const std::function<Tensor(const Tensor&)>& infer);

/// Shared body of the batch-capable beamformer adapters: normalizes each
/// cube per frame (so batched outputs stay bit-identical to solo
/// beamform() calls) and hands the normalized tensors to `infer_batch`.
std::vector<Tensor> beamform_batch_normalized(
    const std::vector<const us::TofCube*>& cubes,
    const std::function<std::vector<Tensor>(const std::vector<const Tensor*>&)>&
        infer_batch);

/// Converts a beamformed RF image (nz, nx) to IQ (nz, nx, 2) via per-column
/// analytic signal.
Tensor rf_image_to_iq(const Tensor& rf);

/// Encodes the matmul schedule of one Tiny-VBF forward pass over nz_total
/// stacked depth rows as an estimate-only cost probe (null data pointers).
/// Shared by the float and quantized beamformer adapters so both report
/// the same command structure to the device cost models.
void encode_tiny_vbf_probe(const TinyVbfConfig& config, std::int64_t nz_total,
                           device::CommandEncoder& encoder);

}  // namespace tvbf::models
