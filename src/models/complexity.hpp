// Computational-complexity accounting (GOPs/frame comparison of the paper).
//
// Implemented models report exact analytic op counts; the two literature
// comparators the paper never evaluates on images (CNN [8], CNN [9]) are
// included as published constants for the comparison table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tvbf::models {

/// One row of the complexity comparison.
struct ComplexityEntry {
  std::string name;
  double gops_per_frame = 0.0;
  bool measured = false;  ///< true when counted from our implementation
  std::string note;
};

/// MVDR op count for an (nz, nx) frame with nch channels and subaperture L:
/// per pixel K=nch-L+1 rank-1 covariance updates (complex, 8 flops/MAC), a
/// Cholesky factorization (~4/3 L^3 complex-equivalent flops), two
/// triangular solves and the K subaperture outputs.
std::int64_t mvdr_ops_per_frame(std::int64_t nz, std::int64_t nx,
                                std::int64_t nch, std::int64_t subaperture);

/// DAS op count (apodized channel sum + Hilbert) — for context.
std::int64_t das_ops_per_frame(std::int64_t nz, std::int64_t nx,
                               std::int64_t nch);

/// Literature constants quoted by the paper (GOPs/frame at 368 x 128 unless
/// noted): CNN [8] ~50, CNN [9] ~199 (384 x 256), MVDR ~98.78 [5].
std::vector<ComplexityEntry> literature_complexity();

}  // namespace tvbf::models
