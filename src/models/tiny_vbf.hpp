// Tiny-VBF: the paper's vision-transformer beamformer.
//
// ToF-corrected RF channel data (nz, nx, nch), normalized to [-1, 1], is
// split per depth row into np = nx / patch_size lateral patches. Each patch
// (patch_size * nch values) is embedded by a dense layer, a learned
// positional embedding is added, two transformer encoder blocks attend
// across the lateral patches, and a dense decoder reconstructs the
// IQ-demodulated beamformed image (nz, nx, 2).
//
// The paper does not publish layer dimensions; TinyVbfConfig::paper() is
// tuned so the op count lands at the reported ~0.34 GOPs/frame for a
// 368 x 128 frame with 128 channels (see EXPERIMENTS.md for measured
// values). All dimensions are configurable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/modules.hpp"

namespace tvbf::models {

/// Architecture hyper-parameters of Tiny-VBF.
struct TinyVbfConfig {
  std::int64_t in_channels = 128;   ///< transducer channels (nch)
  std::int64_t num_lateral = 128;   ///< image columns (nx)
  std::int64_t patch_size = 4;      ///< lateral pixels per patch
  std::int64_t d_model = 16;        ///< embedding width
  std::int64_t num_heads = 2;       ///< attention heads
  std::int64_t mlp_hidden = 32;     ///< transformer MLP hidden width
  std::int64_t num_blocks = 2;      ///< encoder transformer blocks (paper: 2)
  std::int64_t decoder_hidden = 32; ///< decoder hidden width

  std::int64_t num_patches() const { return num_lateral / patch_size; }

  void validate() const;

  /// Paper-scale configuration (128 channels, 128 lateral pixels).
  static TinyVbfConfig paper();
  /// Reduced configuration for tests and fast benches.
  static TinyVbfConfig test(std::int64_t channels = 16,
                            std::int64_t lateral = 32);
};

/// The Tiny-VBF network.
class TinyVbf : public nn::Module {
 public:
  TinyVbf(TinyVbfConfig config, Rng& rng);

  /// Differentiable forward pass: x is a constant/leaf Variable of shape
  /// (nz, nx, nch); returns the IQ image (nz, nx, 2).
  nn::Variable forward(const nn::Variable& x) const;

  /// Inference-only convenience over a raw tensor.
  Tensor infer(const Tensor& input) const;

  /// Batch-of-frames inference: stacks the per-frame inputs (nz_i, nx, nch)
  /// along the depth axis, runs ONE forward pass, and splits the IQ output
  /// back per frame. Depth rows are independent in this architecture
  /// (attention runs across lateral patches within a row), so each result
  /// is bit-identical to infer() on that frame alone; the single pass
  /// amortizes the autograd graph and GEMM setup across the whole batch.
  std::vector<Tensor> infer_batch(
      const std::vector<const Tensor*>& inputs) const;

  std::vector<nn::Variable> parameters() const override;
  const TinyVbfConfig& config() const { return config_; }

  /// Multiply+add operation count for one frame of `nz` depth rows,
  /// counted as 2 ops per MAC (the GOPs/frame convention of the paper).
  std::int64_t ops_per_frame(std::int64_t nz) const;

  // Structured access for the quantized kernels / accelerator simulator.
  const nn::Dense& embed() const { return *embed_; }
  const nn::Variable& positional() const { return pos_; }
  const std::vector<std::unique_ptr<nn::TransformerBlock>>& blocks() const {
    return blocks_;
  }
  const nn::Dense& decoder_in() const { return *dec1_; }
  const nn::Dense& decoder_out() const { return *dec2_; }

 private:
  TinyVbfConfig config_;
  std::unique_ptr<nn::Dense> embed_;
  nn::Variable pos_;  // (np * d_model) learned positional embedding
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::Dense> dec1_, dec2_;
};

}  // namespace tvbf::models
