#include "models/fcnn.hpp"

namespace tvbf::models {

void FcnnConfig::validate() const {
  TVBF_REQUIRE(in_channels > 0 && hidden > 0,
               "FCNN dimensions must be positive");
}

FcnnConfig FcnnConfig::paper() { return FcnnConfig{}; }

FcnnConfig FcnnConfig::test(std::int64_t channels) {
  FcnnConfig c;
  c.in_channels = channels;
  c.hidden = std::max<std::int64_t>(4, channels / 2);
  return c;
}

Fcnn::Fcnn(FcnnConfig config, Rng& rng) : config_(config) {
  config_.validate();
  fc1_ = std::make_unique<nn::Dense>(config_.in_channels, config_.hidden, rng);
  fc2_ = std::make_unique<nn::Dense>(config_.hidden, config_.in_channels, rng);
}

nn::Variable Fcnn::forward(const nn::Variable& x) const {
  const auto& s = x.shape();
  TVBF_REQUIRE(s.size() == 3 && s[2] == config_.in_channels,
               "Fcnn expects (nz, nx, nch=" +
                   std::to_string(config_.in_channels) + "), got " +
                   to_string(s));
  const nn::Variable w = fc2_->forward(nn::relu(fc1_->forward(x)));
  return nn::sum_last(nn::mul(w, x));
}

Tensor Fcnn::infer(const Tensor& input) const {
  return forward(nn::constant(input)).value();
}

std::vector<nn::Variable> Fcnn::parameters() const {
  std::vector<nn::Variable> out = fc1_->parameters();
  const auto p2 = fc2_->parameters();
  out.insert(out.end(), p2.begin(), p2.end());
  return out;
}

std::int64_t Fcnn::ops_per_frame(std::int64_t nz, std::int64_t nx) const {
  TVBF_REQUIRE(nz > 0 && nx > 0, "ops_per_frame needs positive frame dims");
  const std::int64_t pix = nz * nx;
  std::int64_t ops = 0;
  ops += 2 * config_.in_channels * config_.hidden * pix;  // fc1
  ops += 2 * config_.hidden * config_.in_channels * pix;  // fc2
  ops += 2 * config_.in_channels * pix;                   // weight-sum
  return ops;
}

}  // namespace tvbf::models
