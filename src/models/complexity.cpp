#include "models/complexity.hpp"

#include "common/error.hpp"

namespace tvbf::models {

std::int64_t mvdr_ops_per_frame(std::int64_t nz, std::int64_t nx,
                                std::int64_t nch, std::int64_t subaperture) {
  TVBF_REQUIRE(nz > 0 && nx > 0 && nch > 0, "frame dims must be positive");
  const std::int64_t L = subaperture > 0 ? subaperture : nch / 2;
  TVBF_REQUIRE(L >= 1 && L <= nch, "subaperture out of range");
  const std::int64_t K = nch - L + 1;
  // Complex MAC ~= 8 real flops (4 mul + 4 add).
  std::int64_t per_pixel = 0;
  per_pixel += K * L * L * 8;          // spatially smoothed covariance
  per_pixel += (4 * L * L * L) / 3;    // Cholesky (complex ~ 4/3 n^3)
  per_pixel += 2 * L * L * 8 / 2;      // two triangular solves
  per_pixel += K * L * 8;              // w^H y_k over subapertures
  per_pixel += 2 * L;                  // normalization
  return per_pixel * nz * nx;
}

std::int64_t das_ops_per_frame(std::int64_t nz, std::int64_t nx,
                               std::int64_t nch) {
  TVBF_REQUIRE(nz > 0 && nx > 0 && nch > 0, "frame dims must be positive");
  // Apodized sum: one MAC per channel per pixel, plus the column FFTs of the
  // Hilbert stage (~5 N log N per column, negligible next to the sum).
  return (2 * nch + 10) * nz * nx;
}

std::vector<ComplexityEntry> literature_complexity() {
  return {
      {"CNN [8] (wavelet U-Net)", 50.0, false,
       "published figure, 368 x 128 frame"},
      {"CNN [9] (GoogLeNet/U-Net)", 199.0, false,
       "published figure, 384 x 256 frame"},
      {"MVDR (GPU multi-operator) [5]", 98.78, false,
       "published figure, 368 x 128 frame"},
  };
}

}  // namespace tvbf::models
