#include "graph/frame_graph.hpp"

#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace tvbf::graph {

NodeId FrameGraph::add(std::string name, std::vector<NodeId> deps,
                       std::function<Status()> fn) {
  TVBF_REQUIRE(static_cast<bool>(fn), "graph node '" + name + "' needs a body");
  const NodeId id = nodes_.size();
  for (const NodeId dep : deps) {
    TVBF_REQUIRE(dep < id, "graph node '" + name +
                               "' depends on node " + std::to_string(dep) +
                               " which has not been added yet");
  }
  Node node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  node.deps = std::move(deps);
  for (const NodeId dep : node.deps) nodes_[dep].successors.push_back(id);
  nodes_.push_back(std::move(node));
  return id;
}

const FrameGraph::Node& FrameGraph::node(NodeId id) const {
  TVBF_REQUIRE(id < nodes_.size(),
               "node id " + std::to_string(id) + " out of range");
  return nodes_[id];
}

const std::string& FrameGraph::name(NodeId id) const { return node(id).name; }

const std::vector<NodeId>& FrameGraph::dependencies(NodeId id) const {
  return node(id).deps;
}

const std::vector<NodeId>& FrameGraph::successors(NodeId id) const {
  return node(id).successors;
}

std::vector<NodeId> FrameGraph::topological_order() const {
  // Dependencies must precede their node at add() time, so insertion order
  // is already topological.
  std::vector<NodeId> order(nodes_.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  return order;
}

}  // namespace tvbf::graph
