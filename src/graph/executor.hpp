// Readiness scheduler for frame graphs.
//
// One Executor owns a small worker set and drains a shared ready queue of
// (launched graph, node) work items: a node becomes ready the moment its last
// dependency completes, regardless of which session's graph it belongs to.
// That replaces per-session whole-frame turn-taking — with many sessions in
// flight the workers always pick up whatever stage is runnable next, and a
// graph whose beamform node is still parked behind an inference-batch gate
// does not block another session's ToF nodes.
//
// Nodes may return Status::kDeferred to park themselves (e.g. a batching gate
// waiting for quorum across sessions); some external event later calls
// resolve() to complete them. The optional idle_work hook runs when the ready
// queue drains, letting the owner flush such parked work so deferred nodes
// never stall the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>

#include "graph/frame_graph.hpp"

namespace tvbf::graph {

/// Schedules launched FrameGraphs' nodes across a shared worker set by
/// readiness. Thread-safe; one launch may be in flight per graph object at a
/// time (the same graph is relaunched frame after frame).
class Executor {
 public:
  struct Options {
    /// Worker threads (0 = hardware_threads()).
    std::size_t num_workers = 0;
    /// When true each worker holds a ScopedSerial for its lifetime, so node
    /// bodies run their parallel_fors serially inline and distinct nodes
    /// scale across workers instead of contending for the pool's job slot.
    bool serialize_nodes = true;
    /// Called (unlocked) by a worker whenever the ready queue is empty,
    /// before it blocks. Return true if the hook made progress (more work
    /// may now be queued); false to let the worker sleep.
    std::function<bool()> idle_work;
  };

  /// Fired exactly once per launch, after the last node completes or the
  /// first node failure has drained. `error` is null on success. Invoked on
  /// a worker (or resolving/failing) thread with no executor lock held.
  using Completion = std::function<void(std::exception_ptr error)>;

  explicit Executor(const Options& options);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Submits one execution of `g`: all roots are enqueued immediately and
  /// `done` fires after every node has completed (or the launch failed).
  /// The graph object and all storage its node bodies capture must stay
  /// alive until `done` fires. Throws if `g` is empty or already in flight.
  /// A non-zero `flow` is installed as the ambient trace flow id around
  /// every node body, so the launch's spans chain into that frame's
  /// lineage (see telemetry::ScopedFlow).
  void launch(const FrameGraph& g, Completion done, std::uint64_t flow = 0);

  /// Completes a node that returned Status::kDeferred, making its
  /// successors eligible. Safe from any thread, including node bodies of
  /// other graphs.
  void resolve(const FrameGraph& g, NodeId id);

  /// Fails the in-flight launch of `g`: unfinished nodes are abandoned and
  /// the completion fires with `error` once running nodes drain. No-op if
  /// the graph is not in flight or already failed.
  void fail(const FrameGraph& g, std::exception_ptr error);

  /// Number of worker threads.
  std::size_t workers() const;

  /// Stops the workers. Launches still in flight fire their completions
  /// with an error. Called by the destructor.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tvbf::graph
