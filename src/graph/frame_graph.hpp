// Frame graphs: one frame's work expressed as a DAG of stage nodes.
//
// A FrameGraph holds named nodes (ToF-apply per steering angle, compound,
// beamform, postprocess, ...) connected by dependency edges. Nodes are added
// with their dependencies, which must already exist — so a FrameGraph is
// acyclic by construction and insertion order is a valid topological order.
// The graph owns only structure and callbacks; per-launch readiness state
// (pending dependency counts) lives in the Executor, which schedules every
// launched graph's ready nodes across one shared worker set. The same graph
// object is relaunched frame after frame — node callbacks read the stream's
// current frame through stable storage owned by the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace tvbf::graph {

/// Index of a node within its FrameGraph.
using NodeId = std::size_t;

/// What a node body reports back to the scheduler.
enum class Status {
  /// The node's work is complete; successors may become ready.
  kDone,
  /// Completion will be signalled later through Executor::resolve — used by
  /// gate nodes (e.g. cross-session inference batching) whose readiness
  /// depends on state outside this graph.
  kDeferred,
};

/// A DAG of stage nodes for one frame of one stream.
class FrameGraph {
 public:
  /// Adds a node that runs `fn` once every dependency has completed.
  /// Dependencies must name already-added nodes (throws InvalidArgument
  /// otherwise), which makes cycles impossible by construction.
  NodeId add(std::string name, std::vector<NodeId> deps,
             std::function<Status()> fn);

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::string& name(NodeId id) const;
  const std::vector<NodeId>& dependencies(NodeId id) const;
  const std::vector<NodeId>& successors(NodeId id) const;

  /// An execution order respecting every edge. Nodes are added after their
  /// dependencies, so insertion order is returned; callers that execute the
  /// graph inline (the linear scheduling mode) walk this order.
  std::vector<NodeId> topological_order() const;

  /// Drops every node (so a stream whose shape changed — e.g. a different
  /// steering-angle count — can rebuild in place).
  void clear() { nodes_.clear(); }

 private:
  friend class Executor;

  struct Node {
    std::string name;
    std::function<Status()> fn;
    std::vector<NodeId> deps;
    std::vector<NodeId> successors;
  };

  const Node& node(NodeId id) const;

  std::vector<Node> nodes_;
};

}  // namespace tvbf::graph
