#include "graph/executor.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/service_state.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace tvbf::graph {

struct Executor::Impl {
  /// Per-launch readiness state. Queue entries keep the Run alive via
  /// shared_ptr even after it leaves active_.
  struct Run {
    const FrameGraph* g = nullptr;
    Completion done;
    std::uint64_t flow = 0;            // frame lineage id (0 = untraced)
    std::vector<std::size_t> pending;  // unmet dependency count per node
    std::size_t remaining = 0;         // nodes not yet completed
    std::size_t running = 0;           // node bodies currently executing
    bool failed = false;
    bool fired = false;
    std::exception_ptr error;
  };
  using RunPtr = std::shared_ptr<Run>;

  explicit Impl(const Options& options) : opts(options) {
    const std::size_t n =
        opts.num_workers > 0 ? opts.num_workers : hardware_threads();
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([this] { worker(); });
    }
  }

  void worker() {
    // In throughput mode each worker processes its nodes with serial-inline
    // parallel_fors, so distinct nodes scale across workers instead of
    // queueing on the pool's single job slot.
    std::unique_ptr<ScopedSerial> serial;
    if (opts.serialize_nodes) serial = std::make_unique<ScopedSerial>();
    std::unique_lock lock(mu);
    bool idle_exhausted = false;
    while (true) {
      if (stopped) return;
      if (queue.empty()) {
        // Before sleeping, let the owner flush parked deferred work (e.g.
        // inference-batch gates below quorum) — but only once the executor
        // is fully drained, so a still-running node can't add to a group
        // the hook is about to fire.
        if (!idle_exhausted && opts.idle_work && running_total == 0 &&
            !idle_in_progress) {
          idle_in_progress = true;
          lock.unlock();
          bool progressed = false;
          try {
            progressed = opts.idle_work();
          } catch (...) {
            lock.lock();
            idle_in_progress = false;
            throw;  // a broken idle hook is a bug; don't swallow it
          }
          lock.lock();
          idle_in_progress = false;
          if (!progressed) idle_exhausted = true;
          continue;  // re-check queue/stop — state may have changed unlocked
        }
        cv.wait(lock);
        idle_exhausted = false;
        continue;
      }
      auto [run, id] = queue.front();
      queue.pop_front();
      t_queue_depth.sub();
      if (run->failed) {
        maybe_finish(lock, run);
        continue;
      }
      ++run->running;
      ++running_total;
      lock.unlock();
      Status status = Status::kDone;
      std::exception_ptr error;
      t_nodes.add();
      try {
        // Flow before span: the span's trace event (recorded at span
        // destruction) must see the run's ambient lineage id.
        telemetry::ScopedFlow flow(run->flow);
        telemetry::ScopedSpan span(&t_node_s,
                                   run->g->nodes_[id].name.c_str());
        obs::ServiceState::instance().thread_note(
            run->g->nodes_[id].name.c_str());
        status = run->g->nodes_[id].fn();
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      --run->running;
      --running_total;
      if (error) {
        if (!run->failed) {
          run->failed = true;
          run->error = error;
        }
      } else if (status == Status::kDone && !run->failed) {
        complete_locked(run, id);
      }
      // Deferred nodes stay outstanding until resolve().
      maybe_finish(lock, run);
      if (running_total == 0 && queue.empty()) cv.notify_all();  // idle hook
    }
  }

  /// Marks node `id` of `run` complete and enqueues newly-ready successors.
  /// Caller holds mu.
  void complete_locked(const RunPtr& run, NodeId id) {
    for (const NodeId succ : run->g->nodes_[id].successors) {
      if (--run->pending[succ] == 0) {
        queue.push_back({run, succ});
        t_queue_depth.add();
      }
    }
    --run->remaining;
    if (!run->g->nodes_[id].successors.empty()) cv.notify_all();
  }

  /// Fires the completion outside the lock if the run just finished
  /// (success: all nodes done; failure: running bodies drained).
  void maybe_finish(std::unique_lock<std::mutex>& lock, const RunPtr& run) {
    const bool finished = !run->fired && ((run->failed && run->running == 0) ||
                                          (!run->failed && run->remaining == 0));
    if (!finished) return;
    run->fired = true;
    active.erase(run->g);
    Completion done = std::move(run->done);
    const std::exception_ptr error = run->error;
    lock.unlock();
    if (done) done(error);
    lock.lock();
  }

  Options opts;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::thread> threads;
  std::deque<std::pair<RunPtr, NodeId>> queue;
  std::unordered_map<const FrameGraph*, RunPtr> active;
  std::size_t running_total = 0;
  bool idle_in_progress = false;
  bool stopped = false;

  // Instruments resolved once at construction; the registry keeps the
  // references valid for the process lifetime.
  telemetry::Counter& t_nodes =
      telemetry::Registry::instance().counter("graph.nodes_executed");
  telemetry::Gauge& t_queue_depth =
      telemetry::Registry::instance().gauge("graph.ready_queue");
  telemetry::LatencyHistogram& t_node_s =
      telemetry::Registry::instance().histogram("graph.node_s");
};

Executor::Executor(const Options& options)
    : impl_(std::make_unique<Impl>(options)) {}

Executor::~Executor() { stop(); }

void Executor::launch(const FrameGraph& g, Completion done,
                      std::uint64_t flow) {
  TVBF_REQUIRE(!g.empty(), "cannot launch an empty frame graph");
  auto run = std::make_shared<Impl::Run>();
  run->g = &g;
  run->done = std::move(done);
  run->flow = flow;
  run->remaining = g.size();
  run->pending.resize(g.size());
  {
    std::lock_guard lock(impl_->mu);
    TVBF_REQUIRE(!impl_->stopped, "executor is stopped");
    TVBF_REQUIRE(impl_->active.find(&g) == impl_->active.end(),
                 "frame graph is already in flight");
    impl_->active.emplace(&g, run);
    for (NodeId id = 0; id < g.size(); ++id) {
      run->pending[id] = g.dependencies(id).size();
      if (run->pending[id] == 0) {
        impl_->queue.push_back({run, id});
        impl_->t_queue_depth.add();
      }
    }
  }
  impl_->cv.notify_all();
}

void Executor::resolve(const FrameGraph& g, NodeId id) {
  std::unique_lock lock(impl_->mu);
  const auto it = impl_->active.find(&g);
  if (it == impl_->active.end()) return;
  const Impl::RunPtr run = it->second;
  if (run->failed) return;
  impl_->complete_locked(run, id);
  impl_->maybe_finish(lock, run);
  lock.unlock();
  impl_->cv.notify_all();
}

void Executor::fail(const FrameGraph& g, std::exception_ptr error) {
  std::unique_lock lock(impl_->mu);
  const auto it = impl_->active.find(&g);
  if (it == impl_->active.end()) return;
  const Impl::RunPtr run = it->second;
  if (run->failed) return;
  run->failed = true;
  run->error = std::move(error);
  impl_->maybe_finish(lock, run);
  lock.unlock();
  impl_->cv.notify_all();
}

std::size_t Executor::workers() const { return impl_->threads.size(); }

void Executor::stop() {
  std::vector<Impl::RunPtr> orphans;
  {
    std::unique_lock lock(impl_->mu);
    if (impl_->stopped) {
      lock.unlock();
    } else {
      impl_->stopped = true;
      for (auto& [g, run] : impl_->active) {
        if (!run->failed) {
          run->failed = true;
          run->error = std::make_exception_ptr(
              LogicError("graph executor stopped with launches in flight"));
        }
        if (!run->fired && run->running == 0) {
          run->fired = true;
          orphans.push_back(run);
        }
      }
      impl_->t_queue_depth.sub(
          static_cast<std::int64_t>(impl_->queue.size()));
      impl_->queue.clear();
      lock.unlock();
      impl_->cv.notify_all();
    }
  }
  for (auto& run : orphans) {
    Completion done = std::move(run->done);
    if (done) done(run->error);
  }
  for (auto& t : impl_->threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace tvbf::graph
