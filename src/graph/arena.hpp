// Reusable per-frame buffer arena.
//
// Streaming graphs need short-lived tensors whose shapes repeat every frame
// (one ToF cube plane per steering angle, scratch IQ planes). Allocating
// them per frame churns the allocator and fragments under multi-session
// load; the arena recycles released buffers by shape instead. Contents of a
// reacquired buffer are stale — every acquirer must fully overwrite it.
//
// The free list is capped: pooled bytes beyond the budget are evicted
// least-recently-released first, so a transient shape burst (a stream
// briefly switching to a larger angle count) cannot pin its peak working
// set for the rest of the process.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace tvbf::graph {

/// Thread-safe shape-keyed tensor recycler with an LRU-evicted byte budget.
class BufferArena {
 public:
  /// Default free-list budget: generous against paper-scale cubes (a
  /// 512x256x64-float plane is 32 MiB) while bounding multi-session growth.
  static constexpr std::size_t kDefaultBudgetBytes =
      static_cast<std::size_t>(256) << 20;

  struct Stats {
    std::size_t allocations = 0;  // acquires that had to allocate
    std::size_t reuses = 0;       // acquires served from the free list
    std::size_t outstanding = 0;  // acquired and not yet released
    std::size_t free_buffers = 0; // released and awaiting reuse
    std::size_t free_bytes = 0;   // bytes held by the free list
    std::size_t evictions = 0;    // buffers dropped to honor the budget
    std::size_t budget_bytes = 0; // current free-list cap
  };

  /// Returns a tensor of exactly `shape`: a recycled buffer when one of the
  /// same shape is free (contents stale!), otherwise a fresh allocation.
  Tensor acquire(const Shape& shape);

  /// Returns a buffer to the free list for reuse; the least-recently
  /// released buffers are evicted while the list exceeds the byte budget.
  /// Empty tensors are dropped (nothing to recycle).
  void release(Tensor&& t);

  /// Caps the free list (outstanding buffers are never evicted — only
  /// released ones count). Takes effect on the next release.
  void set_budget_bytes(std::size_t budget);

  Stats stats() const;

  /// Frees every pooled buffer (outstanding count is kept).
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Tensor> free_;  ///< release order: front = least recent
  std::size_t free_bytes_ = 0;
  std::size_t budget_bytes_ = kDefaultBudgetBytes;
  std::size_t allocations_ = 0;
  std::size_t reuses_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace tvbf::graph
