// Reusable per-frame buffer arena.
//
// Streaming graphs need short-lived tensors whose shapes repeat every frame
// (one ToF cube plane per steering angle, scratch IQ planes). Allocating
// them per frame churns the allocator and fragments under multi-session
// load; the arena recycles released buffers by shape instead. Contents of a
// reacquired buffer are stale — every acquirer must fully overwrite it.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace tvbf::graph {

/// Thread-safe shape-keyed tensor recycler.
class BufferArena {
 public:
  struct Stats {
    std::size_t allocations = 0;  // acquires that had to allocate
    std::size_t reuses = 0;       // acquires served from the free list
    std::size_t outstanding = 0;  // acquired and not yet released
    std::size_t free_buffers = 0; // released and awaiting reuse
  };

  /// Returns a tensor of exactly `shape`: a recycled buffer when one of the
  /// same shape is free (contents stale!), otherwise a fresh allocation.
  Tensor acquire(const Shape& shape);

  /// Returns a buffer to the free list for reuse. Empty tensors are
  /// dropped (nothing to recycle).
  void release(Tensor&& t);

  Stats stats() const;

  /// Frees every pooled buffer (outstanding count is kept).
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Tensor> free_;
  std::size_t allocations_ = 0;
  std::size_t reuses_ = 0;
  std::size_t outstanding_ = 0;
};

}  // namespace tvbf::graph
