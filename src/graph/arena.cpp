#include "graph/arena.hpp"

#include <utility>

#include "telemetry/telemetry.hpp"

namespace tvbf::graph {

namespace {

std::size_t bytes_of(const Tensor& t) {
  return static_cast<std::size_t>(t.size()) * sizeof(float);
}

// Process-wide mirrors of the per-arena Stats, aggregated across every
// BufferArena instance (each session's graph scratch has its own arena).
struct ArenaInstruments {
  telemetry::Counter& reuses =
      telemetry::Registry::instance().counter("arena.reuses");
  telemetry::Counter& allocations =
      telemetry::Registry::instance().counter("arena.allocations");
  telemetry::Counter& evictions =
      telemetry::Registry::instance().counter("arena.evictions");
};

ArenaInstruments& arena_instruments() {
  static ArenaInstruments instruments;
  return instruments;
}

}  // namespace

Tensor BufferArena::acquire(const Shape& shape) {
  {
    std::lock_guard lock(mu_);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (same_shape(it->shape(), shape)) {
        Tensor t = std::move(*it);
        free_.erase(it);
        free_bytes_ -= bytes_of(t);
        ++reuses_;
        ++outstanding_;
        arena_instruments().reuses.add();
        return t;
      }
    }
    ++allocations_;
    ++outstanding_;
    arena_instruments().allocations.add();
  }
  // Allocate outside the lock; zero-init cost is paid only on first use of
  // a shape (steady-state acquires hit the free list above).
  return Tensor(shape);
}

void BufferArena::release(Tensor&& t) {
  if (t.size() == 0) return;
  std::lock_guard lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  free_bytes_ += bytes_of(t);
  free_.push_back(std::move(t));
  // Evict least-recently-released first. A buffer larger than the whole
  // budget flushes the list and is then dropped itself — nothing is pooled
  // beyond the cap.
  while (free_bytes_ > budget_bytes_ && !free_.empty()) {
    free_bytes_ -= bytes_of(free_.front());
    free_.erase(free_.begin());
    ++evictions_;
    arena_instruments().evictions.add();
  }
}

void BufferArena::set_budget_bytes(std::size_t budget) {
  std::lock_guard lock(mu_);
  budget_bytes_ = budget;
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.allocations = allocations_;
  s.reuses = reuses_;
  s.outstanding = outstanding_;
  s.free_buffers = free_.size();
  s.free_bytes = free_bytes_;
  s.evictions = evictions_;
  s.budget_bytes = budget_bytes_;
  return s;
}

void BufferArena::clear() {
  std::lock_guard lock(mu_);
  free_.clear();
  free_bytes_ = 0;
}

}  // namespace tvbf::graph
