#include "graph/arena.hpp"

#include <utility>

namespace tvbf::graph {

Tensor BufferArena::acquire(const Shape& shape) {
  {
    std::lock_guard lock(mu_);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (same_shape(it->shape(), shape)) {
        Tensor t = std::move(*it);
        free_.erase(it);
        ++reuses_;
        ++outstanding_;
        return t;
      }
    }
    ++allocations_;
    ++outstanding_;
  }
  // Allocate outside the lock; zero-init cost is paid only on first use of
  // a shape (steady-state acquires hit the free list above).
  return Tensor(shape);
}

void BufferArena::release(Tensor&& t) {
  if (t.size() == 0) return;
  std::lock_guard lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  free_.push_back(std::move(t));
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.allocations = allocations_;
  s.reuses = reuses_;
  s.outstanding = outstanding_;
  s.free_buffers = free_.size();
  return s;
}

void BufferArena::clear() {
  std::lock_guard lock(mu_);
  free_.clear();
}

}  // namespace tvbf::graph
