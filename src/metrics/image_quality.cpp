#include "metrics/image_quality.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/hilbert.hpp"

namespace tvbf::metrics {

Tensor envelope_of_iq(const Tensor& iq) { return dsp::envelope_iq(iq); }

Tensor bmode_db(const Tensor& env, double dynamic_range_db) {
  return dsp::log_compress(env, dynamic_range_db);
}

namespace {

RoiStats stats_of(const std::vector<float>& samples) {
  RoiStats s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  double acc = 0.0;
  for (float v : samples) acc += v;
  s.mean = acc / static_cast<double>(samples.size());
  double var = 0.0;
  for (float v : samples) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

/// Collects pixels with r_in <= dist(center) <= r_out.
std::vector<float> ring_samples(const Tensor& image, const us::ImagingGrid& grid,
                                double cx, double cz, double r_in,
                                double r_out) {
  TVBF_REQUIRE(image.rank() == 2, "ROI sampling expects a 2-D image");
  TVBF_REQUIRE(image.dim(0) == grid.nz && image.dim(1) == grid.nx,
               "image shape does not match the grid");
  TVBF_REQUIRE(r_out > 0.0 && r_in >= 0.0 && r_in < r_out,
               "invalid ROI radii");
  std::vector<float> out;
  for (std::int64_t iz = 0; iz < grid.nz; ++iz) {
    const double dz = grid.z_at(iz) - cz;
    if (std::fabs(dz) > r_out) continue;
    for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
      const double dx = grid.x_at(ix) - cx;
      const double r2 = dx * dx + dz * dz;
      if (r2 <= r_out * r_out && r2 >= r_in * r_in)
        out.push_back(image.raw()[iz * grid.nx + ix]);
    }
  }
  return out;
}

}  // namespace

std::vector<float> disc_samples(const Tensor& image, const us::ImagingGrid& grid,
                                double cx, double cz, double radius) {
  return ring_samples(image, grid, cx, cz, 0.0, radius);
}

std::vector<float> annulus_samples(const Tensor& image,
                                   const us::ImagingGrid& grid, double cx,
                                   double cz, double r_in, double r_out) {
  return ring_samples(image, grid, cx, cz, r_in, r_out);
}

RoiStats disc_stats(const Tensor& image, const us::ImagingGrid& grid, double cx,
                    double cz, double radius) {
  return stats_of(disc_samples(image, grid, cx, cz, radius));
}

RoiStats annulus_stats(const Tensor& image, const us::ImagingGrid& grid,
                       double cx, double cz, double r_in, double r_out) {
  return stats_of(annulus_samples(image, grid, cx, cz, r_in, r_out));
}

double gcnr_from_samples(const std::vector<float>& inside,
                         const std::vector<float>& outside,
                         std::int64_t bins) {
  TVBF_REQUIRE(!inside.empty() && !outside.empty(),
               "GCNR needs non-empty sample sets");
  TVBF_REQUIRE(bins >= 2, "GCNR needs >= 2 histogram bins");
  float lo = inside[0], hi = inside[0];
  for (float v : inside) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (float v : outside) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;  // identical constant distributions overlap fully
  std::vector<double> h_in(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> h_out(static_cast<std::size_t>(bins), 0.0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  auto bin_of = [&](float v) {
    auto b = static_cast<std::int64_t>((v - lo) * scale);
    return std::clamp<std::int64_t>(b, 0, bins - 1);
  };
  for (float v : inside)
    h_in[static_cast<std::size_t>(bin_of(v))] +=
        1.0 / static_cast<double>(inside.size());
  for (float v : outside)
    h_out[static_cast<std::size_t>(bin_of(v))] +=
        1.0 / static_cast<double>(outside.size());
  double overlap = 0.0;
  for (std::int64_t b = 0; b < bins; ++b)
    overlap += std::min(h_in[static_cast<std::size_t>(b)],
                        h_out[static_cast<std::size_t>(b)]);
  return 1.0 - overlap;
}

ContrastMetrics contrast_metrics(const Tensor& env, const us::ImagingGrid& grid,
                                 const us::Cyst& cyst,
                                 double dynamic_range_db) {
  const double r_roi = 0.7 * cyst.radius;
  const double r_in = 1.3 * cyst.radius;
  const double r_out = 2.2 * cyst.radius;

  // CR on the linear envelope.
  const auto env_in = disc_samples(env, grid, cyst.x, cyst.z, r_roi);
  const auto env_out = annulus_samples(env, grid, cyst.x, cyst.z, r_in, r_out);
  TVBF_REQUIRE(!env_in.empty() && !env_out.empty(),
               "cyst ROI lies outside the imaging grid");
  const RoiStats lin_in = disc_stats(env, grid, cyst.x, cyst.z, r_roi);
  const RoiStats lin_out =
      annulus_stats(env, grid, cyst.x, cyst.z, r_in, r_out);
  TVBF_REQUIRE(lin_in.mean > 0.0 && lin_out.mean > 0.0,
               "degenerate envelope inside the contrast ROIs");

  // CNR / GCNR on the dB image.
  const Tensor db = bmode_db(env, dynamic_range_db);
  const RoiStats db_in = disc_stats(db, grid, cyst.x, cyst.z, r_roi);
  const RoiStats db_out = annulus_stats(db, grid, cyst.x, cyst.z, r_in, r_out);
  const auto db_in_s = disc_samples(db, grid, cyst.x, cyst.z, r_roi);
  const auto db_out_s = annulus_samples(db, grid, cyst.x, cyst.z, r_in, r_out);

  ContrastMetrics m;
  m.cr_db = 20.0 * std::log10(lin_out.mean / lin_in.mean);
  const double denom = std::sqrt(db_in.stddev * db_in.stddev +
                                 db_out.stddev * db_out.stddev);
  m.cnr = denom > 0.0 ? std::fabs(db_out.mean - db_in.mean) / denom : 0.0;
  m.gcnr = gcnr_from_samples(db_in_s, db_out_s);
  return m;
}

ContrastMetrics mean_contrast(const Tensor& env, const us::ImagingGrid& grid,
                              const std::vector<us::Cyst>& cysts,
                              double dynamic_range_db) {
  TVBF_REQUIRE(!cysts.empty(), "mean_contrast needs at least one cyst");
  ContrastMetrics acc;
  for (const auto& c : cysts) {
    const ContrastMetrics m = contrast_metrics(env, grid, c, dynamic_range_db);
    acc.cr_db += m.cr_db;
    acc.cnr += m.cnr;
    acc.gcnr += m.gcnr;
  }
  const auto n = static_cast<double>(cysts.size());
  acc.cr_db /= n;
  acc.cnr /= n;
  acc.gcnr /= n;
  return acc;
}

}  // namespace tvbf::metrics
