// Resolution metrics: axial/lateral FWHM of the point spread function
// (Table II and Table IV of the paper) and lateral profile extraction
// (Figs 9b, 12 and 14).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "us/grid.hpp"
#include "us/phantom.hpp"

namespace tvbf::metrics {

/// FWHM measurement of one point target.
struct PsfWidths {
  double axial_mm = 0.0;
  double lateral_mm = 0.0;
  bool valid = false;  ///< false when the peak or -6 dB crossings were not found
};

/// Measures the -6 dB (half-amplitude) widths of the PSF around the point
/// target nearest to (x, z). The peak is searched within `search_mm` of the
/// nominal position; widths use sub-pixel linear interpolation of the
/// half-maximum crossings.
PsfWidths psf_widths(const Tensor& env, const us::ImagingGrid& grid, double x,
                     double z, double search_mm = 1.5);

/// Mean FWHM across a list of point targets; invalid points are skipped.
/// Throws InvalidArgument when no point yields a valid measurement.
PsfWidths mean_psf_widths(const Tensor& env, const us::ImagingGrid& grid,
                          const std::vector<us::Scatterer>& points,
                          double search_mm = 1.5);

/// Lateral amplitude profile (normalized to its own maximum) through the
/// image row nearest to depth z — the "lateral point spread function" plots.
std::vector<float> lateral_profile(const Tensor& env,
                                   const us::ImagingGrid& grid, double z);

/// Lateral profile in dB relative to the image peak (for cyst edge plots).
std::vector<float> lateral_profile_db(const Tensor& env,
                                      const us::ImagingGrid& grid, double z,
                                      double dynamic_range_db = 60.0);

}  // namespace tvbf::metrics
