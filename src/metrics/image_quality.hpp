// Contrast metrics of the PICMUS evaluation: CR, CNR and GCNR over
// cyst/background regions of interest (Tables I and V of the paper).
//
// Conventions (documented because the literature varies):
//  * CR is computed on the linear envelope: CR = 20 log10(mu_bg / mu_cyst).
//  * CNR and GCNR are computed on the log-compressed (dB) image, where
//    speckle statistics are approximately Gaussian — this matches the
//    magnitude of the values reported in the paper (CNR ~ 1-2.5).
//  * The cyst ROI is a disc of 70% cyst radius; the background ROI is a
//    concentric annulus (1.3 r .. 2.2 r) clipped to the image.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "us/grid.hpp"
#include "us/phantom.hpp"

namespace tvbf::metrics {

/// Sample statistics of an ROI.
struct RoiStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::int64_t count = 0;
};

/// Contrast metrics for one cyst.
struct ContrastMetrics {
  double cr_db = 0.0;   ///< contrast ratio [dB]
  double cnr = 0.0;     ///< contrast-to-noise ratio (dB-domain)
  double gcnr = 0.0;    ///< generalized CNR in [0, 1]
};

/// Envelope image from an IQ image (nz, nx, 2).
Tensor envelope_of_iq(const Tensor& iq);

/// B-mode (dB) image from a linear envelope; peak-normalized, clipped.
Tensor bmode_db(const Tensor& env, double dynamic_range_db = 60.0);

/// Statistics over a disc ROI of the image (values: any 2-D tensor).
RoiStats disc_stats(const Tensor& image, const us::ImagingGrid& grid,
                    double cx, double cz, double radius);

/// Statistics over an annulus (r_in .. r_out) ROI.
RoiStats annulus_stats(const Tensor& image, const us::ImagingGrid& grid,
                       double cx, double cz, double r_in, double r_out);

/// Contrast metrics for a single cyst from the *linear envelope* image.
/// Throws InvalidArgument if either ROI is empty (cyst outside the grid).
ContrastMetrics contrast_metrics(const Tensor& env, const us::ImagingGrid& grid,
                                 const us::Cyst& cyst,
                                 double dynamic_range_db = 60.0);

/// Mean contrast metrics across all cysts of a phantom.
ContrastMetrics mean_contrast(const Tensor& env, const us::ImagingGrid& grid,
                              const std::vector<us::Cyst>& cysts,
                              double dynamic_range_db = 60.0);

/// GCNR between two sample sets (1 - histogram overlap, shared bins).
double gcnr_from_samples(const std::vector<float>& inside,
                         const std::vector<float>& outside,
                         std::int64_t bins = 100);

/// Raw pixel samples of a disc ROI (helper for GCNR and tests).
std::vector<float> disc_samples(const Tensor& image, const us::ImagingGrid& grid,
                                double cx, double cz, double radius);

/// Raw pixel samples of an annulus ROI.
std::vector<float> annulus_samples(const Tensor& image,
                                   const us::ImagingGrid& grid, double cx,
                                   double cz, double r_in, double r_out);

}  // namespace tvbf::metrics
