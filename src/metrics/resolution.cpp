#include "metrics/resolution.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/hilbert.hpp"

namespace tvbf::metrics {
namespace {

/// Sub-pixel half-maximum width of a 1-D profile around index `peak`.
/// Returns width in samples, or a negative value when a crossing is missing.
double fwhm_samples(const std::vector<float>& p, std::int64_t peak) {
  const float half = p[static_cast<std::size_t>(peak)] * 0.5f;
  if (half <= 0.0f) return -1.0;
  const auto n = static_cast<std::int64_t>(p.size());
  // Walk left.
  double left = -1.0;
  for (std::int64_t i = peak; i > 0; --i) {
    const float a = p[static_cast<std::size_t>(i - 1)];
    const float b = p[static_cast<std::size_t>(i)];
    if (a <= half && b >= half) {
      const double frac = (b - half) / std::max(1e-12f, b - a);
      left = static_cast<double>(i) - frac;
      break;
    }
  }
  // Walk right.
  double right = -1.0;
  for (std::int64_t i = peak; i + 1 < n; ++i) {
    const float a = p[static_cast<std::size_t>(i)];
    const float b = p[static_cast<std::size_t>(i + 1)];
    if (a >= half && b <= half) {
      const double frac = (a - half) / std::max(1e-12f, a - b);
      right = static_cast<double>(i) + frac;
      break;
    }
  }
  if (left < 0.0 || right < 0.0 || right <= left) return -1.0;
  return right - left;
}

}  // namespace

PsfWidths psf_widths(const Tensor& env, const us::ImagingGrid& grid, double x,
                     double z, double search_mm) {
  TVBF_REQUIRE(env.rank() == 2 && env.dim(0) == grid.nz && env.dim(1) == grid.nx,
               "envelope shape does not match the grid");
  TVBF_REQUIRE(search_mm > 0.0, "search window must be positive");
  PsfWidths out;
  // Locate the PSF peak within the search window around the nominal point.
  const double search_m = search_mm * 1e-3;
  const std::int64_t z_lo = grid.row_of(z - search_m);
  const std::int64_t z_hi = grid.row_of(z + search_m);
  const std::int64_t x_lo = grid.column_of(x - search_m);
  const std::int64_t x_hi = grid.column_of(x + search_m);
  std::int64_t pz = -1, px = -1;
  float peak = 0.0f;
  for (std::int64_t iz = z_lo; iz <= z_hi; ++iz)
    for (std::int64_t ix = x_lo; ix <= x_hi; ++ix) {
      const float v = env.raw()[iz * grid.nx + ix];
      if (v > peak) {
        peak = v;
        pz = iz;
        px = ix;
      }
    }
  if (pz < 0 || peak <= 0.0f) return out;  // no energy near the point

  // Axial cut through the peak column.
  std::vector<float> axial(static_cast<std::size_t>(grid.nz));
  for (std::int64_t iz = 0; iz < grid.nz; ++iz)
    axial[static_cast<std::size_t>(iz)] = env.raw()[iz * grid.nx + px];
  const double w_ax = fwhm_samples(axial, pz);

  // Lateral cut through the peak row.
  std::vector<float> lateral(static_cast<std::size_t>(grid.nx));
  for (std::int64_t ix = 0; ix < grid.nx; ++ix)
    lateral[static_cast<std::size_t>(ix)] = env.raw()[pz * grid.nx + ix];
  const double w_lat = fwhm_samples(lateral, px);

  if (w_ax <= 0.0 || w_lat <= 0.0) return out;
  out.axial_mm = w_ax * grid.dz * 1e3;
  out.lateral_mm = w_lat * grid.dx * 1e3;
  out.valid = true;
  return out;
}

PsfWidths mean_psf_widths(const Tensor& env, const us::ImagingGrid& grid,
                          const std::vector<us::Scatterer>& points,
                          double search_mm) {
  TVBF_REQUIRE(!points.empty(), "mean_psf_widths needs at least one point");
  PsfWidths acc;
  std::int64_t valid = 0;
  for (const auto& p : points) {
    const PsfWidths w = psf_widths(env, grid, p.x, p.z, search_mm);
    if (!w.valid) continue;
    acc.axial_mm += w.axial_mm;
    acc.lateral_mm += w.lateral_mm;
    ++valid;
  }
  TVBF_REQUIRE(valid > 0, "no point target produced a measurable PSF");
  acc.axial_mm /= static_cast<double>(valid);
  acc.lateral_mm /= static_cast<double>(valid);
  acc.valid = true;
  return acc;
}

std::vector<float> lateral_profile(const Tensor& env,
                                   const us::ImagingGrid& grid, double z) {
  TVBF_REQUIRE(env.rank() == 2 && env.dim(0) == grid.nz && env.dim(1) == grid.nx,
               "envelope shape does not match the grid");
  const std::int64_t iz = grid.row_of(z);
  std::vector<float> row(static_cast<std::size_t>(grid.nx));
  float peak = 0.0f;
  for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
    row[static_cast<std::size_t>(ix)] = env.raw()[iz * grid.nx + ix];
    peak = std::max(peak, row[static_cast<std::size_t>(ix)]);
  }
  if (peak > 0.0f)
    for (auto& v : row) v /= peak;
  return row;
}

std::vector<float> lateral_profile_db(const Tensor& env,
                                      const us::ImagingGrid& grid, double z,
                                      double dynamic_range_db) {
  const Tensor db = dsp::log_compress(env, dynamic_range_db);
  const std::int64_t iz = grid.row_of(z);
  std::vector<float> row(static_cast<std::size_t>(grid.nx));
  for (std::int64_t ix = 0; ix < grid.nx; ++ix)
    row[static_cast<std::size_t>(ix)] = db.raw()[iz * grid.nx + ix];
  return row;
}

}  // namespace tvbf::metrics
