#include "quant/scheme.hpp"

#include "common/error.hpp"

namespace tvbf::quant {

QuantScheme QuantScheme::float_reference() {
  QuantScheme s;
  s.name = "Float";
  s.is_float = true;
  return s;
}

QuantScheme QuantScheme::uniform(int bits) {
  TVBF_REQUIRE(bits >= 8 && bits <= 32, "uniform width must be in [8, 32]");
  QuantScheme s;
  s.name = std::to_string(bits) + " bits";
  s.is_float = false;
  s.weight_bits = bits;  // uniform levels quantize the whole datapath
  s.softmax_bits = bits;
  s.op_bits = bits;
  s.inter_bits = bits;
  return s;
}

QuantScheme QuantScheme::hybrid1() {
  QuantScheme s;
  s.name = "Hybrid-1";
  s.is_float = false;
  s.weight_bits = 8;
  s.softmax_bits = 24;
  s.op_bits = 20;
  s.inter_bits = 20;
  return s;
}

QuantScheme QuantScheme::hybrid2() {
  QuantScheme s;
  s.name = "Hybrid-2";
  s.is_float = false;
  s.weight_bits = 8;
  s.softmax_bits = 24;
  s.op_bits = 16;
  s.inter_bits = 16;
  return s;
}

std::vector<QuantScheme> QuantScheme::paper_levels() {
  return {float_reference(), uniform(24), uniform(20), uniform(16), hybrid1(),
          hybrid2()};
}

}  // namespace tvbf::quant
