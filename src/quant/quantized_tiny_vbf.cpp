#include "quant/quantized_tiny_vbf.hpp"

#include <cmath>
#include <utility>

#include "models/neural_beamformer.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::quant {
namespace {

Tensor maybe_quant_weights(const Tensor& w, const QuantScheme& s) {
  if (s.is_float) return w;
  Tensor q = w;
  quantize_weights_per_channel_inplace(q, s.weight_bits);
  return q;
}

/// Biases and layer-norm parameters are stored at the op (accumulator)
/// width, as in standard integer inference stacks (e.g. int8 weights with
/// int32 biases): they are few, but their error feeds every activation.
Tensor maybe_quant_affine(const Tensor& p, const QuantScheme& s) {
  if (s.is_float) return p;
  return quantized(p, weight_format_for(p, s.op_bits));
}

}  // namespace

QuantizedTinyVbf::QuantizedTinyVbf(const models::TinyVbf& model,
                                   QuantScheme scheme)
    : config_(model.config()), scheme_(std::move(scheme)) {
  auto grab = [&](const nn::Dense& d) {
    DenseW out;
    out.w = maybe_quant_weights(d.weight().value(), scheme_);
    out.b = maybe_quant_affine(d.bias().value(), scheme_);
    param_count_ += out.w.size() + out.b.size();
    return out;
  };
  embed_ = grab(model.embed());
  pos_ = maybe_quant_weights(model.positional().value(), scheme_);
  param_count_ += pos_.size();
  for (const auto& b : model.blocks()) {
    BlockW blk;
    blk.ln1_gamma = maybe_quant_affine(b->norm1().gamma().value(), scheme_);
    blk.ln1_beta = maybe_quant_affine(b->norm1().beta().value(), scheme_);
    blk.wq = grab(b->attention().wq());
    blk.wk = grab(b->attention().wk());
    blk.wv = grab(b->attention().wv());
    blk.wo = grab(b->attention().wo());
    blk.ln2_gamma = maybe_quant_affine(b->norm2().gamma().value(), scheme_);
    blk.ln2_beta = maybe_quant_affine(b->norm2().beta().value(), scheme_);
    blk.fc1 = grab(b->mlp_in());
    blk.fc2 = grab(b->mlp_out());
    param_count_ += blk.ln1_gamma.size() + blk.ln1_beta.size() +
                    blk.ln2_gamma.size() + blk.ln2_beta.size();
    blocks_.push_back(std::move(blk));
  }
  dec1_ = grab(model.decoder_in());
  dec2_ = grab(model.decoder_out());
}

Tensor QuantizedTinyVbf::q_op(Tensor t) const {
  if (!scheme_.is_float) quantize_tensor_inplace(t, scheme_.op_format());
  return t;
}

Tensor QuantizedTinyVbf::q_inter(Tensor t) const {
  if (!scheme_.is_float) quantize_tensor_inplace(t, scheme_.inter_format());
  return t;
}

Tensor QuantizedTinyVbf::dense(const Tensor& x, const DenseW& d) const {
  Tensor y = q_op(batched_matmul(x, d.w));
  return q_op(add_bias(y, d.b));
}

Tensor QuantizedTinyVbf::layer_norm(const Tensor& x, const Tensor& gamma,
                                    const Tensor& beta) const {
  // Mean/variance/rsqrt run at full precision (the accelerator computes the
  // non-linear ops — division, sqrt — in a dedicated wide unit); the
  // normalized output is rounded to the op width.
  const std::int64_t w = x.shape().back();
  const std::int64_t rows = x.size() / w;
  Tensor out(x.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * w;
    float* yr = out.raw() + r * w;
    double mu = 0.0;
    for (std::int64_t j = 0; j < w; ++j) mu += xr[j];
    mu /= static_cast<double>(w);
    double var = 0.0;
    for (std::int64_t j = 0; j < w; ++j) {
      const double d = xr[j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(w);
    const double istd = 1.0 / std::sqrt(var + 1e-5);
    for (std::int64_t j = 0; j < w; ++j)
      yr[j] = static_cast<float>(
          gamma.raw()[j] * (xr[j] - mu) * istd + beta.raw()[j]);
  }
  return q_op(std::move(out));
}

Tensor QuantizedTinyVbf::softmax_last(const Tensor& x) const {
  const std::int64_t w = x.shape().back();
  const std::int64_t rows = x.size() / w;
  Tensor out(x.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * w;
    float* yr = out.raw() + r * w;
    float m = xr[0];
    for (std::int64_t j = 1; j < w; ++j) m = std::max(m, xr[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < w; ++j) {
      yr[j] = std::exp(xr[j] - m);
      denom += yr[j];
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < w; ++j) yr[j] *= inv;
  }
  if (!scheme_.is_float)
    quantize_tensor_inplace(out, scheme_.softmax_format());
  return out;
}

Tensor QuantizedTinyVbf::attention(const Tensor& x, const BlockW& blk) const {
  const std::int64_t nz = x.dim(0), np = x.dim(1), d = x.dim(2);
  const std::int64_t heads = config_.num_heads;
  const std::int64_t dk = d / heads;
  const Tensor q = dense(x, blk.wq);
  const Tensor k = dense(x, blk.wk);
  const Tensor v = dense(x, blk.wv);
  const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(dk));
  Tensor heads_out({nz, np, d});
  // Per-head slices are contiguous bands of the trailing axis.
  Tensor qh({nz, np, dk}), kh({nz, np, dk}), vh({nz, np, dk});
  for (std::int64_t h = 0; h < heads; ++h) {
    for (std::int64_t r = 0; r < nz * np; ++r)
      for (std::int64_t j = 0; j < dk; ++j) {
        qh.raw()[r * dk + j] = q.raw()[r * d + h * dk + j];
        kh.raw()[r * dk + j] = k.raw()[r * d + h * dk + j];
        vh.raw()[r * dk + j] = v.raw()[r * d + h * dk + j];
      }
    // Q.K^T through the blocked NT kernel: no materialized transpose.
    Tensor scores = q_op(batched_matmul_nt(qh, kh));
    scores = q_op(scale(scores, inv_sqrt_dk));
    const Tensor attn = softmax_last(scores);
    const Tensor oh = q_op(batched_matmul(attn, vh));  // (nz, np, dk)
    for (std::int64_t r = 0; r < nz * np; ++r)
      for (std::int64_t j = 0; j < dk; ++j)
        heads_out.raw()[r * d + h * dk + j] = oh.raw()[r * dk + j];
  }
  return dense(heads_out, blk.wo);
}

Tensor QuantizedTinyVbf::infer(const Tensor& input) const {
  const auto& s = input.shape();
  TVBF_REQUIRE(s.size() == 3 && s[1] == config_.num_lateral &&
                   s[2] == config_.in_channels,
               "QuantizedTinyVbf expects (nz, " +
                   std::to_string(config_.num_lateral) + ", " +
                   std::to_string(config_.in_channels) + "); got " +
                   to_string(s));
  const std::int64_t nz = s[0];
  const std::int64_t np = config_.num_patches();
  const std::int64_t d = config_.d_model;

  // Input samples arrive through the same ADC-width path as intermediates.
  Tensor h = q_inter(input);
  h.reshape({nz, np, config_.patch_size * config_.in_channels});
  h = q_inter(dense(h, embed_));
  {  // positional embedding
    Tensor flat = h.reshaped({nz, np * d});
    flat = q_inter(add_bias(flat, pos_));
    h = flat.reshaped({nz, np, d});
  }
  for (const auto& blk : blocks_) {
    const Tensor n1 = layer_norm(h, blk.ln1_gamma, blk.ln1_beta);
    h = q_inter(add(h, attention(n1, blk)));
    const Tensor n2 = layer_norm(h, blk.ln2_gamma, blk.ln2_beta);
    Tensor m = q_op(relu(dense(n2, blk.fc1)));
    m = dense(m, blk.fc2);
    h = q_inter(add(h, m));
  }
  h = q_op(relu(dense(h, dec1_)));
  h = q_inter(dense(h, dec2_));
  return h.reshaped({nz, config_.num_lateral, 2});
}

std::vector<Tensor> QuantizedTinyVbf::infer_batch(
    const std::vector<const Tensor*>& inputs) const {
  // Same depth-axis stacking as TinyVbf::infer_batch: every fixed-point
  // stage is per depth row, so batched results match solo infer() exactly.
  return models::stacked_forward(
      inputs, [this](const Tensor& stacked) { return infer(stacked); });
}

QuantizedVbfBeamformer::QuantizedVbfBeamformer(
    std::shared_ptr<const QuantizedTinyVbf> model)
    : model_(std::move(model)) {
  TVBF_REQUIRE(model_ != nullptr, "QuantizedVbfBeamformer needs a model");
}

std::string QuantizedVbfBeamformer::name() const {
  return "Tiny-VBF[" + model_->scheme().name + "]";
}

Tensor QuantizedVbfBeamformer::beamform(const us::TofCube& cube) const {
  return model_->infer(models::normalized_input(cube));
}

std::vector<Tensor> QuantizedVbfBeamformer::beamform_batch(
    const std::vector<const us::TofCube*>& cubes) const {
  return models::beamform_batch_normalized(
      cubes, [this](const std::vector<const Tensor*>& inputs) {
        return model_->infer_batch(inputs);
      });
}

bool QuantizedVbfBeamformer::encode_cost_probe(
    device::CommandEncoder& encoder, std::int64_t nz_total) const {
  models::encode_tiny_vbf_probe(model_->config(), nz_total, encoder);
  return true;
}

std::int64_t QuantizedTinyVbf::weight_storage_bits() const {
  const std::int64_t bits_per =
      scheme_.is_float ? 32 : scheme_.weight_bits;
  return param_count_ * bits_per;
}

}  // namespace tvbf::quant
