// Fixed-point arithmetic primitives.
//
// The FPGA deployment of the paper uses signed two's-complement fixed point
// with per-component bit-widths (Table III). Two representations are
// provided:
//  * FixedFormat + quantize_value: "fake quantization" — float values
//    snapped to the representable grid with round-to-nearest and
//    saturation. The quantized inference kernels use this (it is bit-exact
//    with integer arithmetic whose products are rounded back to the same
//    format, which unit tests verify).
//  * Fixed: an actual integer-backed value type used by those tests and by
//    the accelerator's PE model.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace tvbf::quant {

/// Signed two's-complement fixed-point format: `bits` total (including
/// sign), `frac_bits` fractional. Representable step is 2^-frac_bits.
struct FixedFormat {
  int bits = 16;
  int frac_bits = 11;

  /// Largest representable value.
  double max_value() const;
  /// Smallest (most negative) representable value.
  double min_value() const;
  /// Quantization step.
  double step() const;

  void validate() const;
};

/// Rounds to the nearest representable value, saturating at the range ends.
float quantize_value(float v, const FixedFormat& fmt);

/// Quantizes every element in place.
void quantize_tensor_inplace(Tensor& t, const FixedFormat& fmt);

/// Quantized copy.
Tensor quantized(const Tensor& t, const FixedFormat& fmt);

/// Activation/datapath format with a fixed integer-bit budget (the hardware
/// datapath cannot rescale per tensor): frac = bits - 1 - integer_bits.
FixedFormat activation_format(int bits, int integer_bits = 4);

/// Per-tensor weight format: integer bits sized to the tensor's max |w|
/// (hardware stores a per-layer shift), remaining bits fractional.
FixedFormat weight_format_for(const Tensor& w, int bits);

/// Per-output-channel weight quantization: each column of a rank-2 (in, out)
/// weight matrix gets its own power-of-two scale (the hardware stores one
/// shift per output lane — negligible overhead, much lower error at 8 bits).
/// Rank-1 tensors (biases, norms) fall back to per-tensor scaling.
void quantize_weights_per_channel_inplace(Tensor& w, int bits);

/// Integer-backed fixed-point value (for tests and the PE model).
class Fixed {
 public:
  Fixed() = default;
  Fixed(float v, FixedFormat fmt);

  /// Raw two's-complement integer payload.
  std::int64_t raw() const { return raw_; }
  const FixedFormat& format() const { return fmt_; }
  float to_float() const;

  /// Sum in the common format (formats must match).
  Fixed operator+(const Fixed& o) const;
  /// Product requantized back to this value's format: the widened product is
  /// shifted back with round-to-nearest-even, bit-exact with quantize_value's
  /// std::nearbyint rounding of the same real product.
  Fixed operator*(const Fixed& o) const;

 private:
  static std::int64_t saturate(std::int64_t v, int bits);

  std::int64_t raw_ = 0;
  FixedFormat fmt_;
};

/// Max |a - b| between a tensor and its quantized counterpart, relative to
/// max |a| (quantization error diagnostic).
double relative_quant_error(const Tensor& reference, const Tensor& quantized);

/// RMS |a - b| relative to max |a| — the image-level error metric (max-based
/// error is dominated by isolated attention flips; RMS tracks what the eye
/// sees in the B-mode).
double rms_quant_error(const Tensor& reference, const Tensor& quantized);

}  // namespace tvbf::quant
