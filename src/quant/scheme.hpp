// Quantization schemes of the paper (Table III and the uniform levels of
// Tables IV-VI): per-component bit-widths for weights, softmax, multiply/add
// results and intermediate (layer output) buffers.
#pragma once

#include <string>
#include <vector>

#include "quant/fixed_point.hpp"

namespace tvbf::quant {

/// A named bit-width assignment.
struct QuantScheme {
  std::string name = "Float";
  bool is_float = true;   ///< float reference: no quantization anywhere
  int weight_bits = 8;
  int softmax_bits = 24;
  int op_bits = 20;       ///< multiply/add result width
  int inter_bits = 20;    ///< intermediate (layer output) width
  /// Integer bits reserved in the intermediate (layer output) buffers —
  /// activations are bounded by the layer-norm/skip structure.
  int integer_bits = 4;
  /// Integer (guard) bits in the multiply/add and softmax units: the
  /// accumulator must absorb worst-case dot-product growth (up to 128-term
  /// sums) and the softmax exp-sum, so the hardware reserves 8 bits. This
  /// is what makes a 16-bit op/softmax width lossy (7 fraction bits) while
  /// 20/24-bit widths stay visually lossless — the mechanism behind the
  /// paper's Tables IV/V and the wide softmax in both hybrid schemes.
  int acc_integer_bits = 8;

  FixedFormat op_format() const {
    return activation_format(op_bits, acc_integer_bits);
  }
  FixedFormat inter_format() const {
    return activation_format(inter_bits, integer_bits);
  }
  FixedFormat softmax_format() const {
    return activation_format(softmax_bits, acc_integer_bits);
  }

  // --- the paper's levels ---
  static QuantScheme float_reference();
  static QuantScheme uniform(int bits);  ///< 24-, 20- or 16-bit datapath
  static QuantScheme hybrid1();          ///< Table III column 1
  static QuantScheme hybrid2();          ///< Table III column 2

  /// All six levels in the order of Tables IV-VI:
  /// Float, 24, 20, 16, Hybrid-1, Hybrid-2.
  static std::vector<QuantScheme> paper_levels();
};

}  // namespace tvbf::quant
