#include "quant/fixed_point.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/tensor_ops.hpp"

namespace tvbf::quant {

void FixedFormat::validate() const {
  TVBF_REQUIRE(bits >= 2 && bits <= 63, "fixed-point width must be in [2, 63]");
  TVBF_REQUIRE(frac_bits >= 0 && frac_bits < bits,
               "fractional bits must be in [0, bits)");
}

double FixedFormat::step() const { return std::ldexp(1.0, -frac_bits); }

double FixedFormat::max_value() const {
  return (std::ldexp(1.0, bits - 1) - 1.0) * step();
}

double FixedFormat::min_value() const {
  return -std::ldexp(1.0, bits - 1) * step();
}

float quantize_value(float v, const FixedFormat& fmt) {
  if (!std::isfinite(v)) return v > 0 ? static_cast<float>(fmt.max_value())
                                      : static_cast<float>(fmt.min_value());
  const double scaled = std::nearbyint(static_cast<double>(v) / fmt.step());
  const double lo = -std::ldexp(1.0, fmt.bits - 1);
  const double hi = std::ldexp(1.0, fmt.bits - 1) - 1.0;
  const double clamped = std::clamp(scaled, lo, hi);
  return static_cast<float>(clamped * fmt.step());
}

void quantize_tensor_inplace(Tensor& t, const FixedFormat& fmt) {
  fmt.validate();
  for (auto& v : t.data()) v = quantize_value(v, fmt);
}

Tensor quantized(const Tensor& t, const FixedFormat& fmt) {
  Tensor out = t;
  quantize_tensor_inplace(out, fmt);
  return out;
}

FixedFormat activation_format(int bits, int integer_bits) {
  TVBF_REQUIRE(integer_bits >= 0 && integer_bits < bits - 1,
               "integer bits must leave room for sign and fraction");
  FixedFormat f;
  f.bits = bits;
  f.frac_bits = bits - 1 - integer_bits;
  f.validate();
  return f;
}

FixedFormat weight_format_for(const Tensor& w, int bits) {
  const float m = max_abs(w);
  // Integer bits needed to represent max |w| (at least 0).
  int int_bits = 0;
  if (m > 0.0f) {
    const double need = std::ceil(std::log2(static_cast<double>(m) + 1e-12));
    int_bits = std::max(0, static_cast<int>(need));
  }
  int_bits = std::min(int_bits, bits - 2);
  FixedFormat f;
  f.bits = bits;
  f.frac_bits = bits - 1 - int_bits;
  f.validate();
  return f;
}

void quantize_weights_per_channel_inplace(Tensor& w, int bits) {
  if (w.rank() != 2) {
    quantize_tensor_inplace(w, weight_format_for(w, bits));
    return;
  }
  const std::int64_t rows = w.dim(0), cols = w.dim(1);
  for (std::int64_t j = 0; j < cols; ++j) {
    Tensor col({rows});
    for (std::int64_t i = 0; i < rows; ++i) col.raw()[i] = w.raw()[i * cols + j];
    const FixedFormat fmt = weight_format_for(col, bits);
    for (std::int64_t i = 0; i < rows; ++i)
      w.raw()[i * cols + j] = quantize_value(w.raw()[i * cols + j], fmt);
  }
}

Fixed::Fixed(float v, FixedFormat fmt) : fmt_(fmt) {
  fmt_.validate();
  const double scaled = std::nearbyint(static_cast<double>(v) / fmt.step());
  raw_ = saturate(static_cast<std::int64_t>(scaled), fmt.bits);
}

std::int64_t Fixed::saturate(std::int64_t v, int bits) {
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  return std::clamp(v, lo, hi);
}

float Fixed::to_float() const {
  return static_cast<float>(static_cast<double>(raw_) * fmt_.step());
}

Fixed Fixed::operator+(const Fixed& o) const {
  TVBF_REQUIRE(fmt_.bits == o.fmt_.bits && fmt_.frac_bits == o.fmt_.frac_bits,
               "fixed-point addition requires matching formats");
  Fixed out;
  out.fmt_ = fmt_;
  out.raw_ = saturate(raw_ + o.raw_, fmt_.bits);
  return out;
}

Fixed Fixed::operator*(const Fixed& o) const {
  // Widened product has frac_bits + o.frac_bits fractional bits; shift back
  // to this format with round-to-nearest-even, matching quantize_value's
  // std::nearbyint so the integer accelerator path and the fake-quantized
  // tensor path agree on ties (the old `wide + half - 1` negative-tie
  // handling rounded -0.5 steps toward -inf instead of to even).
  Fixed out;
  out.fmt_ = fmt_;
  const std::int64_t wide = raw_ * o.raw_;
  const int shift = o.fmt_.frac_bits;
  std::int64_t rounded = wide;
  if (shift > 0) {
    const std::int64_t half = std::int64_t{1} << (shift - 1);
    std::int64_t q = wide >> shift;  // floor (arithmetic shift)
    const std::int64_t rem = wide - (q << shift);  // in [0, 2^shift)
    if (rem > half || (rem == half && (q & 1))) ++q;
    rounded = q;
  }
  out.raw_ = saturate(rounded, fmt_.bits);
  return out;
}

double relative_quant_error(const Tensor& reference, const Tensor& q) {
  const float m = max_abs(reference);
  if (m == 0.0f) return 0.0;
  return static_cast<double>(max_abs_diff(reference, q)) / m;
}

double rms_quant_error(const Tensor& reference, const Tensor& q) {
  TVBF_REQUIRE(same_shape(reference.shape(), q.shape()),
               "rms_quant_error shape mismatch");
  const float m = max_abs(reference);
  if (m == 0.0f || reference.size() == 0) return 0.0;
  double acc = 0.0;
  for (std::int64_t i = 0; i < reference.size(); ++i) {
    const double d =
        static_cast<double>(reference.raw()[i]) - q.raw()[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(reference.size())) / m;
}

}  // namespace tvbf::quant
