// Fixed-point inference of a trained Tiny-VBF under a QuantScheme.
//
// Re-implements the network forward pass with plain tensor kernels and a
// fake-quantization step after every hardware operation, mirroring the
// datapath of the accelerator (Figs 5-8): weights are stored quantized,
// every multiply/add result is rounded to the op width, softmax runs at its
// own (wider) width, and each layer writes its output BRAM buffer at the
// intermediate width. With QuantScheme::float_reference() the output is
// bit-identical to TinyVbf::infer.
#pragma once

#include <memory>
#include <vector>

#include "beamform/beamformer.hpp"
#include "models/tiny_vbf.hpp"
#include "quant/scheme.hpp"

namespace tvbf::quant {

/// Quantized view over a trained Tiny-VBF model.
class QuantizedTinyVbf {
 public:
  /// Captures (and quantizes) the model's weights; the model must outlive
  /// nothing — weights are copied.
  QuantizedTinyVbf(const models::TinyVbf& model, QuantScheme scheme);

  /// Fixed-point forward pass: (nz, nx, nch) -> IQ (nz, nx, 2).
  Tensor infer(const Tensor& input) const;

  /// Batch-of-frames fixed-point inference: stacks the per-frame inputs
  /// along the depth axis, runs one pass through the quantized datapath and
  /// splits the IQ output per frame. Every stage (dense, layer norm,
  /// softmax, fake quantization) is per depth row, so each result is
  /// bit-identical to infer() on that frame alone; the single pass
  /// amortizes GEMM packing and tensor allocation across the batch.
  std::vector<Tensor> infer_batch(
      const std::vector<const Tensor*>& inputs) const;

  const QuantScheme& scheme() const { return scheme_; }
  const models::TinyVbfConfig& config() const { return config_; }

  /// Total bits of quantized parameter storage (BRAM budget input).
  std::int64_t weight_storage_bits() const;

 private:
  struct DenseW {
    Tensor w;
    Tensor b;
  };
  struct BlockW {
    Tensor ln1_gamma, ln1_beta;
    DenseW wq, wk, wv, wo;
    Tensor ln2_gamma, ln2_beta;
    DenseW fc1, fc2;
  };

  Tensor dense(const Tensor& x, const DenseW& d) const;
  Tensor layer_norm(const Tensor& x, const Tensor& gamma,
                    const Tensor& beta) const;
  Tensor softmax_last(const Tensor& x) const;
  Tensor attention(const Tensor& x, const BlockW& blk) const;

  /// Quantizes to the multiply/add op format (no-op for float schemes).
  Tensor q_op(Tensor t) const;
  /// Quantizes to the intermediate-buffer format.
  Tensor q_inter(Tensor t) const;

  models::TinyVbfConfig config_;
  QuantScheme scheme_;
  DenseW embed_;
  Tensor pos_;
  std::vector<BlockW> blocks_;
  DenseW dec1_, dec2_;
  std::int64_t param_count_ = 0;
};

/// QuantizedTinyVbf through the common Beamformer interface, mirroring
/// models::TinyVbfBeamformer (same [-1, 1] cube normalization). Batch-
/// capable, so the serving layer's cross-session batcher can stack frames
/// through the fixed-point datapath in one pass.
class QuantizedVbfBeamformer : public bf::BatchedBeamformer {
 public:
  explicit QuantizedVbfBeamformer(std::shared_ptr<const QuantizedTinyVbf> model);

  std::string name() const override;
  Tensor beamform(const us::TofCube& cube) const override;
  std::vector<Tensor> beamform_batch(
      const std::vector<const us::TofCube*>& cubes) const override;
  /// Same matmul schedule as the float adapter: fake quantization rides
  /// the same GEMMs, so the cost probe is shared.
  bool encode_cost_probe(device::CommandEncoder& encoder,
                         std::int64_t nz_total) const override;

 private:
  std::shared_ptr<const QuantizedTinyVbf> model_;
};

}  // namespace tvbf::quant
