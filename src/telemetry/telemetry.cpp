#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "telemetry/trace.hpp"

namespace tvbf::telemetry {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t thread_index() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

// ---------------------------------------------------------------------------
// LatencyHistogram

namespace {

// Finite bucket bounds in nanoseconds: 1 µs * 2^(i/4) for i in
// [0, kNumBounds). Precomputed once so record() is a binary search over a
// read-only array.
const std::array<std::int64_t, LatencyHistogram::kNumBounds>& bounds_ns() {
  static const auto bounds = [] {
    std::array<std::int64_t, LatencyHistogram::kNumBounds> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = static_cast<std::int64_t>(
          std::llround(1e3 * std::exp2(static_cast<double>(i) /
                                       LatencyHistogram::kBucketsPerOctave)));
    }
    return b;
  }();
  return bounds;
}

std::int64_t to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  double ns = seconds * 1e9;
  if (ns >= 9e18) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(std::llround(ns));
}

std::size_t bucket_index_ns(std::int64_t ns) {
  const auto& b = bounds_ns();
  // First bound strictly greater than ns; ns == bound belongs to the
  // bucket above the bound (lower edges are inclusive).
  auto it = std::upper_bound(b.begin(), b.end(), ns);
  return static_cast<std::size_t>(it - b.begin());
}

}  // namespace

double LatencyHistogram::bucket_lower_bound(std::size_t i) {
  if (i == 0) return 0.0;
  return static_cast<double>(bounds_ns()[i - 1]) * 1e-9;
}

std::size_t LatencyHistogram::bucket_index(double seconds) {
  return bucket_index_ns(to_ns(seconds));
}

void LatencyHistogram::record(double seconds) {
  if (!enabled()) return;
  const std::int64_t ns = to_ns(seconds);
  buckets_[bucket_index_ns(ns)].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::int64_t cur = min_ns_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
  cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

std::int64_t LatencyHistogram::count() const {
  std::int64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(std::numeric_limits<std::int64_t>::max(),
                std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

namespace {

// Quantile from a merged bucket array: walk the cumulative count to the
// target rank, then interpolate geometrically inside the winning bucket
// (log buckets make the geometric midpoint the unbiased choice).
double quantile_from_buckets(
    const std::array<std::int64_t, LatencyHistogram::kNumBuckets>& counts,
    std::int64_t total, double q, double min_s, double max_s) {
  if (total <= 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::int64_t c = counts[i];
    if (c <= 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      double lo = LatencyHistogram::bucket_lower_bound(i);
      double hi = (i + 1 < counts.size())
                      ? LatencyHistogram::bucket_lower_bound(i + 1)
                      : max_s;
      if (lo <= 0.0) lo = std::min(min_s, hi);
      if (hi <= lo) hi = lo;
      // Fractional position of the target rank inside this bucket.
      const double frac =
          std::clamp((target - static_cast<double>(cum)) /
                         static_cast<double>(c),
                     0.0, 1.0);
      double v = (lo > 0.0 && hi > 0.0)
                     ? lo * std::pow(hi / lo, frac)
                     : lo + (hi - lo) * frac;
      return std::clamp(v, min_s, max_s);
    }
    cum += c;
  }
  return max_s;
}

}  // namespace

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  // Read each bucket exactly once; every derived figure (count, quantiles)
  // comes from this one consistent copy, so a snapshot taken mid-record
  // can lag but never contradict itself.
  std::array<std::int64_t, kNumBuckets> counts{};
  std::int64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  s.count = total;
  s.sum_s = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  if (total > 0) {
    const std::int64_t mn = min_ns_.load(std::memory_order_relaxed);
    s.min_s = (mn == std::numeric_limits<std::int64_t>::max())
                  ? 0.0
                  : static_cast<double>(mn) * 1e-9;
    s.max_s = static_cast<double>(max_ns_.load(std::memory_order_relaxed)) *
              1e-9;
    s.p50_s = quantile_from_buckets(counts, total, 0.50, s.min_s, s.max_s);
    s.p90_s = quantile_from_buckets(counts, total, 0.90, s.min_s, s.max_s);
    s.p99_s = quantile_from_buckets(counts, total, 0.99, s.min_s, s.max_s);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mu;
  // node-based maps: references stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;  // never runs: instance is leaked

Registry& Registry::instance() {
  // Leaked on purpose: instrument references held by worker threads and
  // static objects must stay valid through process teardown.
  static Registry* const reg = new Registry();  // tvbf-check: allow(naked-new)
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(impl_->mu);
  s.counters.reserve(impl_->counters.size() + 1);
  for (const auto& [name, c] : impl_->counters)
    s.counters.push_back({name, c->value()});
  // The trace buffer's drop count rides along as a synthetic counter so
  // --metrics tables and /metrics surface truncated traces instead of
  // silently losing spans. Inserted in place to keep the sorted order.
  const Snapshot::Value trace_drops{"telemetry.trace.dropped_spans",
                                    trace_dropped()};
  s.counters.insert(
      std::lower_bound(s.counters.begin(), s.counters.end(), trace_drops,
                       [](const Snapshot::Value& a, const Snapshot::Value& b) {
                         return a.name < b.name;
                       }),
      trace_drops);
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges)
    s.gauges.push_back({name, g->value()});
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSnapshot hs = h->snapshot();
    hs.name = name;
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

// ---------------------------------------------------------------------------
// Snapshot lookups + rendering

namespace {
template <typename Vec>
auto find_by_name(const Vec& v, std::string_view name) ->
    typename Vec::const_pointer {
  for (const auto& e : v)
    if (e.name == name) return &e;
  return nullptr;
}
}  // namespace

const Snapshot::Value* Snapshot::counter(std::string_view name) const {
  return find_by_name(counters, name);
}
const Snapshot::Value* Snapshot::gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}
const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  return find_by_name(histograms, name);
}

std::string render_table(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  if (!snapshot.counters.empty()) {
    emit("%-44s %14s\n", "counter", "value");
    for (const auto& c : snapshot.counters)
      emit("%-44s %14lld\n", c.name.c_str(),
           static_cast<long long>(c.value));
  }
  if (!snapshot.gauges.empty()) {
    if (!out.empty()) out += '\n';
    emit("%-44s %14s\n", "gauge", "value");
    for (const auto& g : snapshot.gauges)
      emit("%-44s %14lld\n", g.name.c_str(),
           static_cast<long long>(g.value));
  }
  if (!snapshot.histograms.empty()) {
    if (!out.empty()) out += '\n';
    emit("%-44s %10s %10s %10s %10s %10s %10s\n", "histogram (ms)", "count",
         "mean", "p50", "p90", "p99", "max");
    for (const auto& h : snapshot.histograms)
      emit("%-44s %10lld %10.3f %10.3f %10.3f %10.3f %10.3f\n",
           h.name.c_str(), static_cast<long long>(h.count),
           h.mean_s() * 1e3, h.p50_s * 1e3, h.p90_s * 1e3, h.p99_s * 1e3,
           h.max_s * 1e3);
  }
  return out;
}

namespace {
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}
}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, g.name);
    out += ": " + std::to_string(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, h.name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum_s\": ";
    append_double(out, h.sum_s);
    out += ", \"mean_s\": ";
    append_double(out, h.mean_s());
    out += ", \"min_s\": ";
    append_double(out, h.min_s);
    out += ", \"max_s\": ";
    append_double(out, h.max_s);
    out += ", \"p50_s\": ";
    append_double(out, h.p50_s);
    out += ", \"p90_s\": ";
    append_double(out, h.p90_s);
    out += ", \"p99_s\": ";
    append_double(out, h.p99_s);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(LatencyHistogram* hist, const char* trace_name)
    : hist_(hist), trace_name_(trace_name) {
  const bool want_hist = hist_ != nullptr && enabled();
  const bool want_trace = trace_name_ != nullptr && trace_active();
  armed_ = want_hist || want_trace;
  if (!want_trace) trace_name_ = nullptr;
  if (armed_) start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  const auto end = std::chrono::steady_clock::now();
  if (hist_ != nullptr) {
    hist_->record(std::chrono::duration<double>(end - start_).count());
  }
  if (trace_name_ != nullptr) {
    trace_record(trace_name_, start_, end);
  }
}

}  // namespace tvbf::telemetry
