#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace tvbf::telemetry {

namespace {
constexpr std::size_t kNameWords = 6;
constexpr std::size_t kNameChars = kNameWords * 8;  // 47 chars + NUL
}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      events_(std::make_unique<Event[]>(capacity_)) {}

void TraceBuffer::record(const char* name,
                         std::chrono::steady_clock::time_point begin,
                         std::chrono::steady_clock::time_point end,
                         std::uint64_t flow) {
  const std::size_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = events_[idx];
  // Seqlock write: stamp odd, fence so the payload stores cannot move
  // above the stamp, write the payload, publish even. The stamp counter
  // survives clear(), so if a pre-clear straggler still holds this slot
  // the two writers' versions differ and a reader discards the tear.
  const std::uint64_t stamp = stamps_.fetch_add(1, std::memory_order_relaxed);
  e.version.store(2 * stamp + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  e.begin_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       begin.time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  e.dur_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count(),
      std::memory_order_relaxed);
  e.flow.store(flow, std::memory_order_relaxed);
  e.tid.store(static_cast<std::uint32_t>(thread_index()),
              std::memory_order_relaxed);
  char packed[kNameChars] = {};
  if (name != nullptr) std::strncpy(packed, name, kNameChars - 1);
  for (std::size_t w = 0; w < kNameWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed + w * 8, 8);
    e.name[w].store(word, std::memory_order_relaxed);
  }
  e.version.store(2 * stamp + 2, std::memory_order_release);
}

bool TraceBuffer::read_slot(const Event& e, Snap& out) const {
  const std::uint64_t v1 = e.version.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1) != 0) return false;
  out.begin_ns = e.begin_ns.load(std::memory_order_relaxed);
  out.dur_ns = e.dur_ns.load(std::memory_order_relaxed);
  out.flow = e.flow.load(std::memory_order_relaxed);
  out.tid = e.tid.load(std::memory_order_relaxed);
  char packed[kNameChars];
  for (std::size_t w = 0; w < kNameWords; ++w) {
    const std::uint64_t word = e.name[w].load(std::memory_order_relaxed);
    std::memcpy(packed + w * 8, &word, 8);
  }
  packed[kNameChars - 1] = '\0';
  std::memcpy(out.name, packed, kNameChars);
  out.name[sizeof(out.name) - 1] = '\0';
  // The payload loads may not sink below the re-read of the version:
  // same-stamp means the slot was stable across the copy.
  std::atomic_thread_fence(std::memory_order_acquire);
  return e.version.load(std::memory_order_relaxed) == v1;
}

std::size_t TraceBuffer::size() const {
  const std::size_t claimed =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  std::size_t n = 0;
  Snap snap;
  for (std::size_t i = 0; i < claimed; ++i)
    if (read_slot(events_[i], snap)) ++n;
  return n;
}

std::size_t TraceBuffer::dropped() const {
  return static_cast<std::size_t>(drops_.load(std::memory_order_relaxed));
}

void TraceBuffer::clear() {
  const std::size_t claimed =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  for (std::size_t i = 0; i < claimed; ++i)
    events_[i].version.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
}

std::string TraceBuffer::to_chrome_json() const {
  // One stable pass over the slots up front: each slot is either copied
  // whole (version unchanged across the copy) or skipped, so the render
  // below works on immutable snapshots.
  const std::size_t claimed =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  std::vector<Snap> snaps;
  snaps.reserve(claimed);
  Snap snap;
  for (std::size_t i = 0; i < claimed; ++i)
    if (read_slot(events_[i], snap)) snaps.push_back(snap);
  // Timestamps are emitted relative to the earliest span so the viewer
  // opens at t=0 instead of hours into steady_clock's epoch.
  std::int64_t base_ns = 0;
  bool have_base = false;
  for (const Snap& e : snaps) {
    if (!have_base || e.begin_ns < base_ns) {
      base_ns = e.begin_ns;
      have_base = true;
    }
  }
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[256];
  // Spans of one flow id, ordered by begin time: the basis for the
  // "s"/"t"/"f" chain emitted after the duration slices. std::map keeps
  // the output deterministic (flows in id order).
  std::map<std::uint64_t, std::vector<std::pair<std::int64_t, std::size_t>>>
      flows;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const Snap& e = snaps[i];
    if (e.flow != 0) flows[e.flow].push_back({e.begin_ns, i});
    // Escape is unnecessary: names are identifier-style stage/node labels
    // copied from code, but guard against quotes/backslashes anyway.
    char safe[sizeof(e.name)];
    std::size_t w = 0;
    for (std::size_t r = 0; e.name[r] != '\0' && w + 1 < sizeof(safe); ++r) {
      const char c = e.name[r];
      if (c == '"' || c == '\\') {
        safe[w++] = '_';
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        safe[w++] = c;
      }
    }
    safe[w] = '\0';
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"tvbf\", \"ph\": "
                  "\"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                  "\"tid\": %u}",
                  first ? "" : ",", safe,
                  static_cast<double>(e.begin_ns - base_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3, e.tid);
    out += buf;
    first = false;
  }
  // Flow chains: earliest span starts ("s") the flow, middles continue it
  // ("t"), the latest finishes ("f", binding "e" = enclosing slice). Each
  // flow event's ts sits at the midpoint of its span so the viewer binds
  // the arrow to that slice. Single-span flows draw no arrow; skip them.
  for (auto& [flow_id, spans] : flows) {
    if (spans.size() < 2) continue;
    std::sort(spans.begin(), spans.end());
    for (std::size_t k = 0; k < spans.size(); ++k) {
      const Snap& e = snaps[spans[k].second];
      const char* ph = k == 0 ? "s" : (k + 1 == spans.size() ? "f" : "t");
      const double mid_us =
          (static_cast<double>(e.begin_ns - base_ns) +
           static_cast<double>(e.dur_ns) * 0.5) *
          1e-3;
      std::snprintf(buf, sizeof(buf),
                    "%s\n  {\"name\": \"frame\", \"cat\": \"tvbf.flow\", "
                    "\"ph\": \"%s\", \"id\": %llu, \"ts\": %.3f, "
                    "\"pid\": 1, \"tid\": %u%s}",
                    first ? "" : ",", ph,
                    static_cast<unsigned long long>(flow_id), mid_us, e.tid,
                    k + 1 == spans.size() ? ", \"bp\": \"e\"" : "");
      out += buf;
      first = false;
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Process-wide trace buffer

namespace {
std::atomic<bool> g_trace_active{false};
std::atomic<TraceBuffer*> g_trace_buffer{nullptr};
std::mutex g_trace_mu;  // serializes start/stop/export, not record

std::atomic<std::uint64_t> g_next_flow{1};
thread_local std::uint64_t t_current_flow = 0;
}  // namespace

std::uint64_t next_flow_id() {
  return g_next_flow.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_flow() { return t_current_flow; }

ScopedFlow::ScopedFlow(std::uint64_t flow) : prev_(t_current_flow) {
  t_current_flow = flow;
}

ScopedFlow::~ScopedFlow() { t_current_flow = prev_; }

bool trace_active() {
  return g_trace_active.load(std::memory_order_relaxed);
}

void trace_start(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  if (buf == nullptr) {
    // Leaked on purpose: worker threads may hold the pointer past main's
    // static teardown.
    buf = new TraceBuffer(capacity);  // tvbf-check: allow(naked-new)
    g_trace_buffer.store(buf, std::memory_order_release);
  } else {
    buf->clear();
  }
  g_trace_active.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  g_trace_active.store(false, std::memory_order_relaxed);
}

void trace_record(const char* name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end) {
  trace_record_flow(name, begin, end, t_current_flow);
}

void trace_record_flow(const char* name,
                       std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end,
                       std::uint64_t flow) {
  if (!trace_active()) return;
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  if (buf != nullptr) buf->record(name, begin, end, flow);
}

std::string trace_export_json() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  if (buf == nullptr) return "{\"traceEvents\": []}\n";
  return buf->to_chrome_json();
}

std::int64_t trace_dropped() {
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  return buf != nullptr ? static_cast<std::int64_t>(buf->dropped()) : 0;
}

}  // namespace tvbf::telemetry
