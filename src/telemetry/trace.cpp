#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "telemetry/telemetry.hpp"

namespace tvbf::telemetry {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      events_(std::make_unique<Event[]>(capacity_)) {}

void TraceBuffer::record(const char* name,
                         std::chrono::steady_clock::time_point begin,
                         std::chrono::steady_clock::time_point end) {
  const std::size_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = events_[idx];
  std::strncpy(e.name, name != nullptr ? name : "", sizeof(e.name) - 1);
  e.name[sizeof(e.name) - 1] = '\0';
  e.begin_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   begin.time_since_epoch())
                   .count();
  e.dur_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count();
  e.tid = static_cast<std::uint32_t>(thread_index());
  // Publish: readers acquire this flag before touching the slot, so a
  // half-written slot is invisible rather than racy.
  e.ready.store(1, std::memory_order_release);
}

std::size_t TraceBuffer::size() const {
  const std::size_t claimed =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < claimed; ++i)
    if (events_[i].ready.load(std::memory_order_acquire)) ++n;
  return n;
}

std::size_t TraceBuffer::dropped() const {
  return static_cast<std::size_t>(drops_.load(std::memory_order_relaxed));
}

void TraceBuffer::clear() {
  const std::size_t claimed =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  for (std::size_t i = 0; i < claimed; ++i)
    events_[i].ready.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
}

std::string TraceBuffer::to_chrome_json() const {
  const std::size_t claimed =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  // Timestamps are emitted relative to the earliest span so the viewer
  // opens at t=0 instead of hours into steady_clock's epoch.
  std::int64_t base_ns = 0;
  bool have_base = false;
  for (std::size_t i = 0; i < claimed; ++i) {
    if (!events_[i].ready.load(std::memory_order_acquire)) continue;
    if (!have_base || events_[i].begin_ns < base_ns) {
      base_ns = events_[i].begin_ns;
      have_base = true;
    }
  }
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[256];
  for (std::size_t i = 0; i < claimed; ++i) {
    const Event& e = events_[i];
    if (!e.ready.load(std::memory_order_acquire)) continue;
    // Escape is unnecessary: names are identifier-style stage/node labels
    // copied from code, but guard against quotes/backslashes anyway.
    char safe[sizeof(e.name)];
    std::size_t w = 0;
    for (std::size_t r = 0; e.name[r] != '\0' && w + 1 < sizeof(safe); ++r) {
      const char c = e.name[r];
      if (c == '"' || c == '\\') {
        safe[w++] = '_';
      } else if (static_cast<unsigned char>(c) >= 0x20) {
        safe[w++] = c;
      }
    }
    safe[w] = '\0';
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"tvbf\", \"ph\": "
                  "\"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                  "\"tid\": %u}",
                  first ? "" : ",", safe,
                  static_cast<double>(e.begin_ns - base_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3, e.tid);
    out += buf;
    first = false;
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Process-wide trace buffer

namespace {
std::atomic<bool> g_trace_active{false};
std::atomic<TraceBuffer*> g_trace_buffer{nullptr};
std::mutex g_trace_mu;  // serializes start/stop/export, not record
}  // namespace

bool trace_active() {
  return g_trace_active.load(std::memory_order_relaxed);
}

void trace_start(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  if (buf == nullptr) {
    // Leaked on purpose: worker threads may hold the pointer past main's
    // static teardown.
    buf = new TraceBuffer(capacity);  // tvbf-check: allow(naked-new)
    g_trace_buffer.store(buf, std::memory_order_release);
  } else {
    buf->clear();
  }
  g_trace_active.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  g_trace_active.store(false, std::memory_order_relaxed);
}

void trace_record(const char* name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end) {
  if (!trace_active()) return;
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  if (buf != nullptr) buf->record(name, begin, end);
}

std::string trace_export_json() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  if (buf == nullptr) return "{\"traceEvents\": []}\n";
  return buf->to_chrome_json();
}

std::int64_t trace_dropped() {
  TraceBuffer* buf = g_trace_buffer.load(std::memory_order_acquire);
  return buf != nullptr ? static_cast<std::int64_t>(buf->dropped()) : 0;
}

}  // namespace tvbf::telemetry
