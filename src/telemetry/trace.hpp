// Frame-graph trace capture: a fixed-capacity lock-free buffer of
// begin/end spans exported as Chrome trace_event JSON (load trace.json at
// chrome://tracing or https://ui.perfetto.dev).
//
// Capture is off by default and costs one relaxed load per span while off.
// trace_start() arms the process-wide buffer (allocated once, reused),
// spans recorded by ScopedSpan / trace_record() claim slots with a single
// fetch_add — when the buffer fills further spans are counted as dropped,
// never blocked — and trace_stop() disarms it. Export while armed is safe
// (a live /dump), and so is clear() (dump-then-rearm): every slot is a
// per-slot seqlock over all-atomic fields stamped with a process-unique
// claim, so a straggling pre-clear writer colliding with a fresh one is
// detected by the version check and the slot skipped, not raced.
//
// Frame lineage: every span additionally carries a flow id — either the
// calling thread's ambient ScopedFlow or one passed explicitly — and the
// export emits Chrome flow events (ph "s"/"t"/"f" sharing one id) binding
// all spans of a frame into a connected chain, so one frame's path across
// producer, graph nodes, batch gate and sink renders as arrows in
// about:tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace tvbf::telemetry {

/// Fixed-capacity span buffer. All methods are safe to call concurrently;
/// record() is wait-free (two fetch_adds, relaxed payload stores, one
/// release publish).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void record(const char* name, std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end,
              std::uint64_t flow = 0);

  std::size_t capacity() const { return capacity_; }
  /// Completed (published) events; may trail briefly behind claims while
  /// writers are mid-record.
  std::size_t size() const;
  std::size_t dropped() const;
  void clear();

  /// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  /// Timestamps are µs relative to the earliest recorded span. Spans
  /// tagged with a flow id (two or more per id) additionally emit flow
  /// events — "s" from the earliest span, "t" through the middles, "f"
  /// (binding "e", enclosing) at the latest — so each frame renders as
  /// one connected chain.
  std::string to_chrome_json() const;

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  /// Every payload field is an atomic (name packed into words): a reader
  /// racing a writer performs no non-atomic access, and the version check
  /// discards slots that changed under the copy.
  struct Event {
    /// Seqlock: 0 = never written; odd = writer inside; even = published.
    /// Stamps derive from a process-unique claim counter that clear() does
    /// NOT reset, so a pre-clear straggler and a post-clear writer on the
    /// same slot can never share a version value.
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::int64_t> begin_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<std::uint64_t> flow{0};  ///< lineage id; 0 = no frame
    std::atomic<std::uint32_t> tid{0};
    // Name is copied (truncated) into the slot: node names are owned by
    // graphs that may be destroyed before export. 47 chars + NUL.
    std::atomic<std::uint64_t> name[6] = {};
  };

  /// One published event, copied out of a slot. Internal to the readers.
  struct Snap {
    char name[49];
    std::int64_t begin_ns;
    std::int64_t dur_ns;
    std::uint64_t flow;
    std::uint32_t tid;
  };

  bool read_slot(const Event& e, Snap& out) const;

  std::size_t capacity_;
  std::unique_ptr<Event[]> events_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::uint64_t> stamps_{0};  ///< never reset; see Event::version
  std::atomic<std::int64_t> drops_{0};
};

/// True while the process-wide trace buffer is armed (relaxed load).
bool trace_active();

/// Arms the process-wide buffer, clearing any previous capture. The
/// buffer is allocated on first use with `capacity` slots and reused by
/// later captures (a larger later `capacity` does not grow it).
void trace_start(std::size_t capacity = 1 << 16);

/// Disarms capture. Call before exporting.
void trace_stop();

/// Records one span into the armed process-wide buffer, tagged with the
/// calling thread's ambient flow (see ScopedFlow); no-op while disarmed.
void trace_record(const char* name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end);

/// Records one span tagged with an explicit flow id — for work done on
/// behalf of a frame from outside its ambient scope (e.g. the stacked
/// batch forward recording one step per member frame).
void trace_record_flow(const char* name,
                       std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end,
                       std::uint64_t flow);

/// Exports the process-wide buffer as Chrome trace JSON (empty trace
/// object when nothing was captured).
std::string trace_export_json();

/// Spans dropped by the process-wide buffer since the last trace_start().
std::int64_t trace_dropped();

// ---------------------------------------------------------------------------
// Frame lineage

/// Mints a process-unique, nonzero lineage id (one per frame, at the
/// source). One relaxed fetch_add; ids are never reused in a process.
std::uint64_t next_flow_id();

/// The calling thread's ambient lineage id (0 = none). Spans recorded
/// while a flow is installed — including ScopedSpan destructors — carry it.
std::uint64_t current_flow();

/// RAII: installs `flow` as the calling thread's ambient lineage id and
/// restores the previous one on destruction. Install around each unit of
/// per-frame work (a graph node body, a sink write) so every span recorded
/// inside joins that frame's chain.
class ScopedFlow {
 public:
  explicit ScopedFlow(std::uint64_t flow);
  ~ScopedFlow();
  ScopedFlow(const ScopedFlow&) = delete;
  ScopedFlow& operator=(const ScopedFlow&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace tvbf::telemetry
