// Frame-graph trace capture: a fixed-capacity lock-free buffer of
// begin/end spans exported as Chrome trace_event JSON (load trace.json at
// chrome://tracing or https://ui.perfetto.dev).
//
// Capture is off by default and costs one relaxed load per span while off.
// trace_start() arms the process-wide buffer (allocated once, reused),
// spans recorded by ScopedSpan / trace_record() claim slots with a single
// fetch_add — when the buffer fills further spans are counted as dropped,
// never blocked — and trace_stop() disarms it. Export after stopping;
// slots publish with a per-slot release/acquire flag so a straggling
// writer is skipped, not raced.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace tvbf::telemetry {

/// Fixed-capacity span buffer. All methods are safe to call concurrently;
/// record() is wait-free (one fetch_add, one memcpy, one release store).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void record(const char* name, std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end);

  std::size_t capacity() const { return capacity_; }
  /// Completed (published) events; may trail briefly behind claims while
  /// writers are mid-record.
  std::size_t size() const;
  std::size_t dropped() const;
  void clear();

  /// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  /// Timestamps are µs relative to the earliest recorded span.
  std::string to_chrome_json() const;

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  struct Event {
    // Name is copied (truncated) into the slot: node names are owned by
    // graphs that may be destroyed before export.
    char name[48];
    std::int64_t begin_ns;
    std::int64_t dur_ns;
    std::uint32_t tid;
    std::atomic<std::uint8_t> ready{0};
  };

  std::size_t capacity_;
  std::unique_ptr<Event[]> events_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::int64_t> drops_{0};
};

/// True while the process-wide trace buffer is armed (relaxed load).
bool trace_active();

/// Arms the process-wide buffer, clearing any previous capture. The
/// buffer is allocated on first use with `capacity` slots and reused by
/// later captures (a larger later `capacity` does not grow it).
void trace_start(std::size_t capacity = 1 << 16);

/// Disarms capture. Call before exporting.
void trace_stop();

/// Records one span into the armed process-wide buffer; no-op while
/// disarmed.
void trace_record(const char* name,
                  std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end);

/// Exports the process-wide buffer as Chrome trace JSON (empty trace
/// object when nothing was captured).
std::string trace_export_json();

/// Spans dropped by the process-wide buffer since the last trace_start().
std::int64_t trace_dropped();

}  // namespace tvbf::telemetry
