// Production telemetry: lock-free instruments behind a process-wide
// registry.
//
// Not to be confused with src/metrics/ (image-quality metrics: resolution,
// contrast, gCNR) — this module is runtime observability for the serving
// stack. Three instrument kinds, all safe to record from any thread with no
// locks on the hot path:
//
//  - Counter: monotonic count, sharded over cache-line-padded per-thread
//    atomic cells so concurrent increments never contend on one CAS line;
//  - Gauge: signed level tracked as sharded deltas (queue depths, in-flight
//    frames) — add() and sub() from any thread, value() sums the shards;
//  - LatencyHistogram: fixed log-spaced buckets from 1 µs to ~4 s (4 per
//    octave), lock-free record (one bounds binary search + one relaxed
//    fetch_add), merged snapshots with interpolated p50/p90/p99.
//
// Instruments live in the process-wide Registry, keyed by name, and are
// never destroyed or moved once created — call sites resolve an instrument
// once (at setup) and keep the reference. Registry::snapshot() reads every
// instrument without stopping writers; render_table() and to_json() format
// a snapshot for humans and machines.
//
// One runtime switch gates every record path: when set_enabled(false), a
// record site costs exactly one relaxed atomic load and a predictable
// branch, which is what lets the instrumentation stay compiled in for
// production builds (bench_serve gates the enabled-vs-disabled throughput
// ratio at >= 0.97x).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tvbf::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when instruments record (the default). Relaxed load — this is the
/// whole cost of a disabled record site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide record switch. Toggling while gauges are mid
/// add/sub pair skews their level; flip between runs, not during them.
void set_enabled(bool on);

/// Small dense per-thread index (assigned on first use, never reused).
/// Picks counter shards and names trace-event lanes.
std::size_t thread_index();

/// Shard count of Counter/Gauge (power of two).
inline constexpr std::size_t kShards = 16;

namespace detail {
struct alignas(64) Cell {
  std::atomic<std::int64_t> v{0};
};

/// Sharded signed accumulator: the storage both Counter and Gauge wrap.
class ShardedSum {
 public:
  void add(std::int64_t delta) {
    if (!enabled()) return;
    cells_[thread_index() & (kShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  Cell cells_[kShards];
};
}  // namespace detail

/// Monotonic event count. Not movable; lives in the Registry.
class Counter {
 public:
  void add(std::int64_t n = 1) { sum_.add(n); }
  std::int64_t value() const { return sum_.value(); }
  void reset() { sum_.reset(); }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  detail::ShardedSum sum_;
};

/// Signed level tracked as deltas (queue depth, frames in flight). The
/// value is exact whenever every add() has a matching sub(), regardless of
/// which threads issued them.
class Gauge {
 public:
  void add(std::int64_t n = 1) { sum_.add(n); }
  void sub(std::int64_t n = 1) { sum_.add(-n); }
  std::int64_t value() const { return sum_.value(); }
  void reset() { sum_.reset(); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  detail::ShardedSum sum_;
};

/// One histogram read: merged bucket state plus interpolated quantiles.
struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  double sum_s = 0.0;
  double min_s = 0.0;  ///< 0 when count == 0
  double max_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;

  double mean_s() const {
    return count > 0 ? sum_s / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-boundary log-bucketed latency histogram (seconds).
///
/// Buckets: [0, 1 µs), then 4 per octave up to 1 µs * 2^22 ≈ 4.19 s, then
/// [4.19 s, ∞). record() is lock-free: a binary search over the static
/// bounds plus one relaxed fetch_add on the bucket (min/max keep a CAS
/// loop off the bucket path). Quantiles interpolate geometrically inside
/// the winning bucket, clamped to the observed min/max, so the relative
/// error is bounded by the bucket ratio 2^(1/4) ≈ 19 %.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBucketsPerOctave = 4;
  static constexpr std::size_t kOctaves = 22;
  /// Finite bounds between buckets; bucket count is kNumBounds + 1.
  static constexpr std::size_t kNumBounds = kBucketsPerOctave * kOctaves + 1;
  static constexpr std::size_t kNumBuckets = kNumBounds + 1;

  /// Lower edge of bucket `i` (0 for the underflow bucket).
  static double bucket_lower_bound(std::size_t i);
  /// Bucket index a value lands in: i such that
  /// bucket_lower_bound(i) <= seconds < bucket_lower_bound(i + 1).
  static std::size_t bucket_index(double seconds);

  void record(double seconds);
  /// Merged point-in-time read. Safe while other threads record; the
  /// result is a consistent set of bucket counts (each read once) whose
  /// quantiles and count agree by construction.
  HistogramSnapshot snapshot() const;
  std::int64_t count() const;
  void reset();

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

 private:
  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> min_ns_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Point-in-time read of every registered instrument.
struct Snapshot {
  struct Value {
    std::string name;
    std::int64_t value = 0;
  };
  std::vector<Value> counters;  ///< sorted by name
  std::vector<Value> gauges;    ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name

  /// Lookup helpers; null when the name is not registered.
  const Value* counter(std::string_view name) const;
  const Value* gauge(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Process-wide instrument registry. Lookup takes a mutex (call sites
/// resolve once and keep the reference); the returned instruments are
/// stable for the process lifetime — reset() zeroes them in place and
/// never invalidates references.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Reads every instrument without stopping writers.
  Snapshot snapshot() const;

  /// Zeroes every instrument in place (bench/test hook). References stay
  /// valid.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  ~Registry();
  struct Impl;
  /// Owned by the leaked singleton: instruments outlive static teardown.
  std::unique_ptr<Impl> impl_;
};

/// Human-readable table of a snapshot (counters, gauges, histogram
/// quantiles in ms).
std::string render_table(const Snapshot& snapshot);

/// Machine-readable snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
std::string to_json(const Snapshot& snapshot);

/// RAII stage timer: records the scope's wall time into a histogram on
/// destruction and, when a trace name is given and tracing is active,
/// emits one Chrome trace_event span (see trace.hpp). When telemetry is
/// disabled and tracing inactive at construction the scope costs two
/// relaxed loads and no clock reads. `hist` may be null (trace only);
/// `trace_name` must outlive the span (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(LatencyHistogram* hist,
                      const char* trace_name = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  LatencyHistogram* hist_;
  const char* trace_name_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tvbf::telemetry
