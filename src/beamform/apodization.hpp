// Receive apodization with dynamic (depth-growing) aperture.
//
// DAS with a fixed data-independent window is exactly the baseline the paper
// criticizes; the f-number controlled expanding aperture is the standard
// PICMUS receive apodization.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/window.hpp"
#include "us/grid.hpp"
#include "us/probe.hpp"

namespace tvbf::bf {

/// Apodization configuration. The default (boxcar, f/1.75) is the PICMUS
/// DAS baseline — the data-independent apodization the paper's Section I
/// criticizes; Hann/Hamming/Tukey windows are available for ablations.
struct ApodizationParams {
  dsp::WindowKind window = dsp::WindowKind::kBoxcar;
  /// Receive f-number: aperture half-width at depth z is z / (2 * f_number).
  /// 0 disables dynamic aperture (all elements, full window).
  double f_number = 1.75;
};

/// Per-pixel receive apodization weights.
class Apodization {
 public:
  Apodization(const us::Probe& probe, const ApodizationParams& params);

  /// Weights for all channels at pixel (x, z); length == num_elements.
  /// Weights are normalized to sum to 1 (unbiased amplitude estimate).
  std::vector<float> weights(double x, double z) const;

  /// Writes weights into `out` (size num_elements); avoids allocation in
  /// per-pixel loops.
  void weights_into(double x, double z, std::vector<float>& out) const;

 private:
  std::vector<double> element_x_;
  dsp::WindowKind window_;
  double f_number_;
};

}  // namespace tvbf::bf
