// Coherent plane-wave compounding (CPWC, Montaldo et al.) — the multi-angle
// quality/frame-rate trade-off the paper's introduction motivates, and the
// acquisition mode of its CUBDL fine-tuning data.
//
// Each steered plane wave is ToF-corrected and beamformed on the common
// grid; the complex images are averaged coherently. Quality approaches
// focused imaging as the angle count grows, at 1/n_angles the frame rate —
// exactly the trade-off single-angle Tiny-VBF is designed to escape.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "beamform/das.hpp"
#include "us/tof.hpp"

namespace tvbf::bf {

/// CPWC configuration.
struct CompoundingParams {
  std::int64_t num_angles = 11;       ///< steered transmits per frame
  double max_angle_rad = 16.0 * M_PI / 180.0;  ///< +/- span of steering
  ApodizationParams apodization;
  us::TofParams tof;

  /// Evenly spaced steering angles in [-max_angle, +max_angle].
  std::vector<double> angles() const;

  void validate() const;
};

/// Simulates `params.num_angles` steered transmits of `phantom` and returns
/// the coherently compounded DAS IQ image. The single-angle (num_angles=1)
/// case reduces to plain DAS at 0 degrees.
Tensor compound_plane_waves(
    const us::Probe& probe, const us::Phantom& phantom,
    const us::ImagingGrid& grid, const us::SimParams& sim,
    const CompoundingParams& params);

/// Compounds pre-acquired steered acquisitions (for callers that manage
/// their own acquisition loop). All acquisitions must share the probe.
Tensor compound_acquisitions(const std::vector<us::Acquisition>& acqs,
                             const us::ImagingGrid& grid,
                             const CompoundingParams& params);

/// Coherently compounds per-angle ToF cubes into `out`: the elementwise
/// mean over the cubes, summed in list order (deterministic regardless of
/// thread count). All cubes must share shape and analytic flavor. The
/// streaming frame graph uses this to fold N parallel ToF nodes into the
/// single cube its beamform node consumes; for linear beamformers (DAS)
/// cube-domain compounding is exactly image-domain compounding, and for
/// learned models it is the compound-then-beamform architecture.
void compound_cubes(const std::vector<const us::TofCube*>& cubes,
                    us::TofCube& out);

}  // namespace tvbf::bf
