// Coherence-factor weighted DAS (extension beyond the paper's baselines).
//
// CF(p) = |sum_ch y_ch|^2 / (N * sum_ch |y_ch|^2) in [0, 1] measures the
// coherent fraction of the received energy; multiplying the DAS output by
// CF^gamma suppresses off-axis clutter adaptively at negligible cost. Used
// by the ablation bench as a cheap adaptive comparison point between DAS
// and MVDR.
#pragma once

#include "beamform/apodization.hpp"
#include "beamform/beamformer.hpp"

namespace tvbf::bf {

/// Coherence-factor weighted delay-and-sum.
class CoherenceFactorBeamformer : public Beamformer {
 public:
  /// gamma: CF exponent (1 = classic CF; <1 softer, >1 more aggressive).
  explicit CoherenceFactorBeamformer(const us::Probe& probe,
                                     double gamma = 1.0,
                                     ApodizationParams apod = {});

  std::string name() const override { return "CF-DAS"; }

  /// Requires an analytic cube (coherence is a complex-field property).
  Tensor beamform(const us::TofCube& cube) const override;

 private:
  us::Probe probe_;
  double gamma_;
  ApodizationParams apod_params_;
};

}  // namespace tvbf::bf
